#ifndef OLTAP_EXEC_FUSED_KERNELS_H_
#define OLTAP_EXEC_FUSED_KERNELS_H_

#include <cstdint>

#include "storage/bitpack.h"
#include "storage/column_segment.h"

namespace oltap {
namespace fused {

// Pre-fused single-pass query kernels: the build-time stand-in for LLVM
// just-in-time code generation (HyPer [28], Impala [41]). A code generator
// would emit exactly these loops for the benchmarked query shapes — one
// pass, no operator boundaries, no selection-vector materialization, no
// virtual dispatch. The E7 benchmark compares them against the vectorized
// and tuple-at-a-time engines. See DESIGN.md §5 for why this substitution
// preserves the surveyed claim.

// SELECT SUM(agg) FROM t WHERE filter <op> c  — int64 filter column.
double SumWhereInt64(const ColumnSegment& filter, CompareOp op, int64_t c,
                     const ColumnSegment& agg);

// SELECT COUNT(*) FROM t WHERE filter <op> c.
int64_t CountWhereInt64(const ColumnSegment& filter, CompareOp op, int64_t c);

// SELECT SUM(a*b) FROM t WHERE filter <op> c — two-column arithmetic,
// the shape of CH-benCHmark Q1-style revenue aggregation.
double SumProductWhereInt64(const ColumnSegment& filter, CompareOp op,
                            int64_t c, const ColumnSegment& a,
                            const ColumnSegment& b);

}  // namespace fused
}  // namespace oltap

#endif  // OLTAP_EXEC_FUSED_KERNELS_H_
