#include "exec/parallel/parallel_join.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "common/logging.h"
#include "obs/metrics.h"

namespace oltap {

ParallelHashJoinOp::ParallelHashJoinOp(PhysicalOpPtr build,
                                       PhysicalOpPtr probe,
                                       std::vector<int> build_keys,
                                       std::vector<int> probe_keys,
                                       ParallelContext ctx)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)),
      ctx_(ctx) {
  OLTAP_CHECK(build_keys_.size() == probe_keys_.size());
  probe_src_ = dynamic_cast<MorselSource*>(probe_.get());
  OLTAP_CHECK(probe_src_ != nullptr);
}

std::vector<ValueType> ParallelHashJoinOp::OutputTypes() const {
  std::vector<ValueType> types = build_->OutputTypes();
  for (ValueType t : probe_->OutputTypes()) types.push_back(t);
  return types;
}

void ParallelHashJoinOp::BuildTable() {
  build_rows_ = CollectRows(build_.get());
  size_t n = build_rows_.size();
  nparts_ = std::max<size_t>(1, ctx_.dop);
  parts_.assign(nparts_, {});
  if (n == 0) return;

  // Phase 1: per-row key encoding + hashing, chunked across the pool.
  std::vector<std::string> keys(n);
  std::vector<uint64_t> hashes(n);
  std::vector<uint8_t> valid(n, 0);
  std::hash<std::string> hasher;
  auto hash_range = [&](size_t begin, size_t end) {
    Row key_row(build_keys_.size());
    for (size_t i = begin; i < end; ++i) {
      bool has_null = false;
      for (size_t k = 0; k < build_keys_.size(); ++k) {
        key_row[k] = build_rows_[i][build_keys_[k]];
        has_null |= key_row[k].is_null();
      }
      if (has_null) continue;  // NULL keys never join
      keys[i] = HashKeyOf(key_row);
      hashes[i] = hasher(keys[i]);
      valid[i] = 1;
    }
  };
  // Phase 2: one chunk per partition; each partition scans the hash array
  // and inserts its rows in ascending build-row order.
  auto insert_parts = [&](size_t pbegin, size_t pend) {
    for (size_t p = pbegin; p < pend; ++p) {
      auto& part = parts_[p];
      for (size_t i = 0; i < n; ++i) {
        if (valid[i] && hashes[i] % nparts_ == p) {
          part[std::move(keys[i])].push_back(i);
        }
      }
    }
  };
  if (ctx_.pool != nullptr && ctx_.dop >= 2) {
    ctx_.pool->ParallelForChunked(n, hash_range);
    ctx_.pool->ParallelForChunked(nparts_, insert_parts);
  } else {
    hash_range(0, n);
    insert_parts(0, nparts_);
  }
}

void ParallelHashJoinOp::PrepareMorsels() {
  if (prepared_) return;
  prepared_ = true;
  probe_src_->PrepareMorsels();
  BuildTable();
}

size_t ParallelHashJoinOp::slots() const { return probe_src_->slots(); }

void ParallelHashJoinOp::JoinBatch(size_t slot, const Batch& in,
                                   const MorselSink& sink,
                                   std::atomic<size_t>* rows,
                                   std::atomic<size_t>* batches) const {
  std::vector<ValueType> types = OutputTypes();
  Batch out;
  auto reset_out = [&] {
    out.columns.clear();
    out.columns.reserve(types.size());
    for (ValueType t : types) out.columns.emplace_back(t);
  };
  auto flush = [&] {
    if (out.num_rows() == 0) return;
    rows->fetch_add(out.num_rows(), std::memory_order_relaxed);
    batches->fetch_add(1, std::memory_order_relaxed);
    sink(slot, std::move(out));
    reset_out();
  };
  reset_out();

  Row key_row(probe_keys_.size());
  std::hash<std::string> hasher;
  for (size_t i = 0; i < in.num_rows(); ++i) {
    bool has_null = false;
    for (size_t k = 0; k < probe_keys_.size(); ++k) {
      key_row[k] = in.columns[probe_keys_[k]].GetValue(i);
      has_null |= key_row[k].is_null();
    }
    if (has_null) continue;
    std::string key = HashKeyOf(key_row);
    const auto& part = parts_[hasher(key) % nparts_];
    auto it = part.find(key);
    if (it == part.end()) continue;
    for (size_t bi : it->second) {
      const Row& b = build_rows_[bi];
      size_t c = 0;
      for (const Value& v : b) out.columns[c++].AppendValue(v);
      for (size_t pc = 0; pc < in.num_columns(); ++pc) {
        out.columns[c++].AppendValue(in.columns[pc].GetValue(i));
      }
    }
    if (out.num_rows() >= kDefaultBatchRows) flush();
  }
  flush();
}

void ParallelHashJoinOp::Drive(const MorselSink& sink) {
  DriveInternal(sink, /*account=*/true);
}

void ParallelHashJoinOp::DriveInternal(const MorselSink& sink,
                                       bool account) {
  PrepareMorsels();
  std::atomic<size_t> rows{0};
  std::atomic<size_t> batches{0};
  auto t0 = std::chrono::steady_clock::now();
  probe_src_->Drive([&](size_t slot, Batch&& in) {
    JoinBatch(slot, in, sink, &rows, &batches);
  });
  if (account) {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    AccountDriven(rows.load(), batches.load(), static_cast<uint64_t>(ns));
  }
}

void ParallelHashJoinOp::Open() {
  PrepareMorsels();
  buf_.Reset(slots());
  DriveInternal(
      [this](size_t slot, Batch&& b) { buf_.Append(slot, std::move(b)); },
      /*account=*/false);
}

bool ParallelHashJoinOp::NextBatch(Batch* out) { return buf_.Next(out); }

std::string ParallelHashJoinOp::Describe() const {
  std::string out = "ParallelHashJoin(keys=";
  for (size_t i = 0; i < build_keys_.size(); ++i) {
    if (i > 0) out += ",";
    out += "$" + std::to_string(build_keys_[i]) + "=$" +
           std::to_string(probe_keys_[i]);
  }
  return out + ", dop=" + std::to_string(ctx_.dop) + ")";
}

std::vector<const PhysicalOp*> ParallelHashJoinOp::Children() const {
  return {build_.get(), probe_.get()};
}

}  // namespace oltap
