#include "exec/parallel/parallel_scan.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/logging.h"
#include "obs/metrics.h"

namespace oltap {

ParallelScanOp::ParallelScanOp(const Table* table, Timestamp read_ts,
                               ExprPtr predicate,
                               std::vector<int> projection,
                               ParallelContext ctx)
    : table_(table),
      read_ts_(read_ts),
      predicate_(std::move(predicate)),
      projection_(std::move(projection)),
      ctx_(ctx) {
  OLTAP_CHECK(table_->column_table() != nullptr);
  const Schema& schema = table_->schema();
  if (projection_.empty()) {
    projection_.resize(schema.num_columns());
    std::iota(projection_.begin(), projection_.end(), 0);
  }
  out_types_.reserve(projection_.size());
  for (int c : projection_) {
    out_types_.push_back(schema.column(c).type);
  }
}

std::vector<ValueType> ParallelScanOp::OutputTypes() const {
  return out_types_;
}

void ParallelScanOp::PrepareMorsels() {
  if (prepared_) return;
  prepared_ = true;

  snap_ = table_->GetColumnSnapshot(read_ts_);
  OLTAP_CHECK(snap_.has_value());

  // Pushdown split, gather plan, and residual remap — same derivation as
  // the serial ScanOp.
  pushed_.clear();
  residual_ = nullptr;
  if (predicate_ != nullptr) {
    std::vector<ExprPtr> conjuncts;
    Expr::SplitConjuncts(predicate_, &conjuncts);
    std::vector<ExprPtr> residual_terms;
    for (const ExprPtr& c : conjuncts) {
      Expr::ColumnPredicate cp;
      if (c->AsColumnPredicate(&cp)) {
        pushed_.push_back(cp);
      } else {
        residual_terms.push_back(c);
      }
    }
    residual_ = Expr::CombineConjuncts(residual_terms);
  }
  needed_ = projection_;
  CollectExprColumns(residual_, &needed_);
  std::sort(needed_.begin(), needed_.end());
  needed_.erase(std::unique(needed_.begin(), needed_.end()), needed_.end());
  schema_to_batch_.assign(table_->schema().num_columns(), -1);
  for (size_t i = 0; i < needed_.size(); ++i) {
    schema_to_batch_[needed_[i]] = static_cast<int>(i);
  }
  residual_remapped_ =
      residual_ == nullptr ? nullptr
                           : RemapExprColumns(residual_, schema_to_batch_);

  // Main-fragment selection: visibility mask, then zone-pruned pushdown
  // kernels over whole segments (cheap relative to the per-row gather that
  // the morsels parallelize).
  const MainFragment& main = *snap_->main;
  main.VisibleMask(read_ts_, &main_sel_);
  rows_scanned_ += main.num_rows();
  if (main.num_rows() > 0) {
    for (const Expr::ColumnPredicate& cp : pushed_) {
      const ColumnSegment& seg = main.column(cp.column);
      BitVector hits;
      size_t pruned = 0;
      seg.ScanCompareZoned(cp.op, cp.constant, &hits, &pruned);
      zones_pruned_ += pruned;
      main_sel_.And(hits);
    }
  }

  // Delta (and frozen delta) rows: row-at-a-time with the full predicate,
  // in serial iteration order — they become the single trailing slot.
  auto consume = [&](uint32_t, const Row& row) {
    ++rows_scanned_;
    if (predicate_ != nullptr) {
      Value v = predicate_->EvalRow(row);
      if (v.is_null() || !v.AsBool()) return;
    }
    pending_rows_.push_back(row);
  };
  if (snap_->frozen != nullptr) {
    snap_->frozen->ForEachVisible(read_ts_, consume);
  }
  snap_->delta->ForEachVisible(read_ts_, consume);

  num_main_morsels_ = (main.num_rows() + kMorselRows - 1) / kMorselRows;
  num_slots_ = num_main_morsels_ + (pending_rows_.empty() ? 0 : 1);
}

size_t ParallelScanOp::slots() const { return num_slots_; }

void ParallelScanOp::ProduceMainMorsel(size_t m, const MorselSink& sink,
                                       std::atomic<size_t>* rows,
                                       std::atomic<size_t>* batches) const {
  const MainFragment& main = *snap_->main;
  const Schema& schema = table_->schema();
  size_t begin = m * kMorselRows;
  size_t end = std::min(main_sel_.size(), begin + kMorselRows);

  size_t pos = main_sel_.FindNextSet(begin);
  std::vector<uint32_t> rids;
  while (pos < end) {
    rids.clear();
    rids.reserve(kDefaultBatchRows);
    while (pos < end && rids.size() < kDefaultBatchRows) {
      rids.push_back(static_cast<uint32_t>(pos));
      pos = main_sel_.FindNextSet(pos + 1);
    }
    if (rids.empty()) break;

    // Gather needed columns, evaluate the residual, project — identical
    // per-row work to ScanOp::EmitMainBatch.
    Batch full;
    full.columns.reserve(needed_.size());
    for (int c : needed_) {
      ColumnVector cv(schema.column(c).type);
      cv.Reserve(rids.size());
      const ColumnSegment& seg = main.column(c);
      for (uint32_t rid : rids) {
        if (seg.IsNull(rid)) {
          cv.AppendNull();
          continue;
        }
        switch (seg.type()) {
          case ValueType::kInt64:
            cv.AppendInt64(seg.GetInt64(rid));
            break;
          case ValueType::kDouble:
            cv.AppendDouble(seg.GetDouble(rid));
            break;
          case ValueType::kString:
            cv.AppendString(std::string(seg.GetString(rid)));
            break;
        }
      }
      full.columns.push_back(std::move(cv));
    }

    BitVector keep;
    if (residual_remapped_ != nullptr) {
      residual_remapped_->EvalPredicate(full, &keep);
    } else {
      keep.Resize(full.num_rows());
      keep.SetAll();
    }
    if (keep.CountSet() == 0) continue;

    Batch out;
    out.columns.reserve(projection_.size());
    for (size_t p = 0; p < projection_.size(); ++p) {
      const ColumnVector& src =
          full.columns[schema_to_batch_[projection_[p]]];
      ColumnVector cv(src.type());
      for (size_t r = keep.FindNextSet(0); r < keep.size();
           r = keep.FindNextSet(r + 1)) {
        cv.AppendValue(src.GetValue(r));
      }
      out.columns.push_back(std::move(cv));
    }
    rows->fetch_add(out.num_rows(), std::memory_order_relaxed);
    batches->fetch_add(1, std::memory_order_relaxed);
    sink(m, std::move(out));
  }
}

void ParallelScanOp::ProduceDeltaSlot(size_t slot, const MorselSink& sink,
                                      std::atomic<size_t>* rows,
                                      std::atomic<size_t>* batches) const {
  for (size_t base = 0; base < pending_rows_.size();
       base += kDefaultBatchRows) {
    size_t end = std::min(pending_rows_.size(), base + kDefaultBatchRows);
    Batch out;
    out.columns.reserve(projection_.size());
    for (size_t p = 0; p < projection_.size(); ++p) {
      out.columns.emplace_back(out_types_[p]);
    }
    for (size_t i = base; i < end; ++i) {
      const Row& row = pending_rows_[i];
      for (size_t p = 0; p < projection_.size(); ++p) {
        out.columns[p].AppendValue(row[projection_[p]]);
      }
    }
    rows->fetch_add(out.num_rows(), std::memory_order_relaxed);
    batches->fetch_add(1, std::memory_order_relaxed);
    sink(slot, std::move(out));
  }
}

void ParallelScanOp::Drive(const MorselSink& sink) {
  DriveInternal(sink, /*account=*/true);
}

void ParallelScanOp::DriveInternal(const MorselSink& sink, bool account) {
  PrepareMorsels();
  static obs::Counter* dispatched =
      obs::MetricsRegistry::Default()->GetCounter("exec.morsel.dispatched");
  static obs::Counter* morsel_rows =
      obs::MetricsRegistry::Default()->GetCounter("exec.morsel.rows");

  std::atomic<size_t> cursor{0};
  std::atomic<size_t> rows{0};
  std::atomic<size_t> batches{0};
  auto t0 = std::chrono::steady_clock::now();
  size_t total = num_slots_;
  RunOnWorkers(ctx_.pool, ctx_.dop, [&](size_t) {
    for (size_t m = cursor.fetch_add(1, std::memory_order_relaxed);
         m < total; m = cursor.fetch_add(1, std::memory_order_relaxed)) {
      if (m < num_main_morsels_) {
        ProduceMainMorsel(m, sink, &rows, &batches);
      } else {
        ProduceDeltaSlot(m, sink, &rows, &batches);
      }
    }
  });
  dispatched->Add(total);
  morsel_rows->Add(rows.load());
  if (account) {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    AccountDriven(rows.load(), batches.load(), static_cast<uint64_t>(ns));
  }
}

void ParallelScanOp::Open() {
  PrepareMorsels();
  buf_.Reset(num_slots_);
  DriveInternal(
      [this](size_t slot, Batch&& b) { buf_.Append(slot, std::move(b)); },
      /*account=*/false);
}

bool ParallelScanOp::NextBatch(Batch* out) {
  out->columns.clear();
  return buf_.Next(out);
}

std::string ParallelScanOp::Describe() const {
  std::string out = "ParallelScan(" + table_->name() + " [" +
                    TableFormatToString(table_->format()) + "]";
  if (predicate_ != nullptr) out += ", pred=" + predicate_->ToString();
  out += ", path=column, dop=" + std::to_string(ctx_.dop) + ")";
  return out;
}

std::vector<const PhysicalOp*> ParallelScanOp::Children() const {
  return {};
}

}  // namespace oltap
