#ifndef OLTAP_EXEC_PARALLEL_MORSEL_H_
#define OLTAP_EXEC_PARALLEL_MORSEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "exec/batch.h"
#include "exec/operators.h"

namespace oltap {

// Morsel-driven parallelism (HyPer-style): the leaf of a parallel pipeline
// splits its input into fixed-row morsels, workers pull morsels from a
// shared atomic cursor, and every operator fused into the pipeline runs
// inside the worker on that morsel's batches with worker-local state.
//
// Determinism contract: morsel index == slot index == position of that
// morsel's rows in the *serial* scan order. Consumers either merge
// per-slot state in ascending slot order (parallel aggregate) or
// concatenate slot output in ascending slot order (materialized mode), so
// the visible row stream is byte-identical to serial execution at any DOP.

// Rows of the main fragment per morsel. A multiple of the 1024-row zone
// size and of kDefaultBatchRows; small enough that a morsel's gathered
// batches stay cache-friendly, large enough to amortize dispatch.
inline constexpr size_t kMorselRows = 8192;

// Tables below this approximate cardinality are not worth parallelizing
// (the serial prepare phase would dominate).
inline constexpr size_t kMinParallelScanRows = 4096;

// Execution resources granted to one query: the shared worker pool and the
// degree of parallelism (total workers, *including* the query thread — the
// caller always participates, so dop=1 degenerates to inline serial work
// and a saturated pool can never stall a query).
struct ParallelContext {
  ThreadPool* pool = nullptr;
  size_t dop = 1;
};

// Slot-indexed batch sink. May be invoked concurrently from different
// workers, but all batches of one slot come from a single worker, in
// order.
using MorselSink = std::function<void(size_t slot, Batch&& batch)>;

// A pipeline stage that can produce its output morsel-parallel. Every
// implementation is also a PhysicalOp whose Open()/NextBatch() fall back
// to materializing the slots and streaming them in slot order (used when
// the parent operator is serial).
class MorselSource {
 public:
  virtual ~MorselSource() = default;

  // Serial preparation on the query thread (snapshot, pushdown, hash
  // build). After this, slots() is valid. Idempotent.
  virtual void PrepareMorsels() = 0;

  // Number of output slots (morsels) this source will produce.
  virtual size_t slots() const = 0;

  // Produces every slot, calling `sink` from up to dop workers. Returns
  // after all slots are produced (worker completion synchronizes with the
  // return, so the caller may read sink-written state without locks).
  virtual void Drive(const MorselSink& sink) = 0;
};

// Runs worker(worker_index) on `dop` workers total: dop-1 pool tasks plus
// the calling thread (index 0), returning once all have finished. With a
// null pool or dop <= 1 the caller runs alone. Workers must not submit
// further pool work (queries run on scheduler threads, never on the exec
// pool itself, so morsel draining cannot deadlock).
void RunOnWorkers(ThreadPool* pool, size_t dop,
                  const std::function<void(size_t)>& worker);

// Materialized slot store backing the PhysicalOp mode of every
// MorselSource: workers append batches to their slot concurrently (the
// slot vector is pre-sized, distinct slots never alias), then NextBatch
// streams slots in ascending order — the serial row stream.
class SlotBuffer {
 public:
  void Reset(size_t num_slots);
  void Append(size_t slot, Batch&& batch);
  // Streams the next non-empty batch in slot order; false when exhausted.
  bool Next(Batch* out);

 private:
  std::vector<std::vector<Batch>> slots_;
  size_t slot_ = 0;
  size_t idx_ = 0;
};

// Morsel-parallel residual filter: fused pass-through over the child's
// morsel stream (same batch-wise predicate gather as the serial FilterOp,
// so the surviving row stream is identical).
class ParallelFilterOp final : public PhysicalOp, public MorselSource {
 public:
  // `child` must implement MorselSource.
  ParallelFilterOp(PhysicalOpPtr child, ExprPtr predicate,
                   ParallelContext ctx);

  void Open() override;
  bool NextBatch(Batch* out) override;
  std::vector<ValueType> OutputTypes() const override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> Children() const override;

  void PrepareMorsels() override;
  size_t slots() const override;
  void Drive(const MorselSink& sink) override;

 private:
  void DriveInternal(const MorselSink& sink, bool account);

  PhysicalOpPtr child_;
  MorselSource* child_src_ = nullptr;
  ExprPtr predicate_;
  ParallelContext ctx_;
  SlotBuffer buf_;
};

}  // namespace oltap

#endif  // OLTAP_EXEC_PARALLEL_MORSEL_H_
