#include "exec/parallel/morsel.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace oltap {

void RunOnWorkers(ThreadPool* pool, size_t dop,
                  const std::function<void(size_t)>& worker) {
  if (pool == nullptr || dop <= 1) {
    worker(0);
    return;
  }
  size_t helpers = dop - 1;
  // Completion is counted under a mutex, not an atomic: the waiter must not
  // observe the final count — and destroy this frame — while a finishing
  // helper still touches the captured state (same pattern as
  // ThreadPool::ParallelForChunked).
  size_t done = 0;
  std::mutex done_mu;
  std::condition_variable done_cv;
  for (size_t w = 1; w <= helpers; ++w) {
    pool->Submit([&, w] {
      worker(w);
      std::lock_guard<std::mutex> lock(done_mu);
      if (++done == helpers) done_cv.notify_all();
    });
  }
  worker(0);
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == helpers; });
}

// ------------------------------------------------------------- SlotBuffer

void SlotBuffer::Reset(size_t num_slots) {
  slots_.clear();
  slots_.resize(num_slots);
  slot_ = 0;
  idx_ = 0;
}

void SlotBuffer::Append(size_t slot, Batch&& batch) {
  OLTAP_CHECK(slot < slots_.size());
  slots_[slot].push_back(std::move(batch));
}

bool SlotBuffer::Next(Batch* out) {
  while (slot_ < slots_.size()) {
    if (idx_ < slots_[slot_].size()) {
      *out = std::move(slots_[slot_][idx_]);
      ++idx_;
      return true;
    }
    slots_[slot_].clear();
    ++slot_;
    idx_ = 0;
  }
  return false;
}

// -------------------------------------------------------- ParallelFilterOp

ParallelFilterOp::ParallelFilterOp(PhysicalOpPtr child, ExprPtr predicate,
                                   ParallelContext ctx)
    : child_(std::move(child)),
      predicate_(std::move(predicate)),
      ctx_(ctx) {
  child_src_ = dynamic_cast<MorselSource*>(child_.get());
  OLTAP_CHECK(child_src_ != nullptr);
  OLTAP_CHECK(predicate_ != nullptr);
}

void ParallelFilterOp::PrepareMorsels() { child_src_->PrepareMorsels(); }

size_t ParallelFilterOp::slots() const { return child_src_->slots(); }

void ParallelFilterOp::Drive(const MorselSink& sink) {
  DriveInternal(sink, /*account=*/true);
}

void ParallelFilterOp::DriveInternal(const MorselSink& sink, bool account) {
  PrepareMorsels();
  std::atomic<size_t> rows{0};
  std::atomic<size_t> batches{0};
  auto t0 = std::chrono::steady_clock::now();
  child_src_->Drive([&](size_t slot, Batch&& in) {
    BitVector keep;
    predicate_->EvalPredicate(in, &keep);
    if (keep.CountSet() == 0) return;
    Batch out;
    out.columns.reserve(in.num_columns());
    for (size_t c = 0; c < in.num_columns(); ++c) {
      ColumnVector cv(in.columns[c].type());
      for (size_t r = keep.FindNextSet(0); r < keep.size();
           r = keep.FindNextSet(r + 1)) {
        cv.AppendValue(in.columns[c].GetValue(r));
      }
      out.columns.push_back(std::move(cv));
    }
    rows.fetch_add(out.num_rows(), std::memory_order_relaxed);
    batches.fetch_add(1, std::memory_order_relaxed);
    sink(slot, std::move(out));
  });
  if (account) {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    AccountDriven(rows.load(), batches.load(), static_cast<uint64_t>(ns));
  }
}

void ParallelFilterOp::Open() {
  PrepareMorsels();
  buf_.Reset(slots());
  DriveInternal(
      [this](size_t slot, Batch&& b) { buf_.Append(slot, std::move(b)); },
      /*account=*/false);
}

bool ParallelFilterOp::NextBatch(Batch* out) { return buf_.Next(out); }

std::vector<ValueType> ParallelFilterOp::OutputTypes() const {
  return child_->OutputTypes();
}

std::string ParallelFilterOp::Describe() const {
  return "ParallelFilter(" + predicate_->ToString() +
         ", dop=" + std::to_string(ctx_.dop) + ")";
}

std::vector<const PhysicalOp*> ParallelFilterOp::Children() const {
  return {child_.get()};
}

}  // namespace oltap
