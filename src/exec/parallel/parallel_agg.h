#ifndef OLTAP_EXEC_PARALLEL_PARALLEL_AGG_H_
#define OLTAP_EXEC_PARALLEL_PARALLEL_AGG_H_

#include <string>
#include <vector>

#include "exec/parallel/morsel.h"

namespace oltap {

// True when every aggregate can be pre-aggregated per morsel and merged
// exactly: COUNT(*) / COUNT / MIN / MAX always, SUM only over int64
// (float addition is order-sensitive, so AVG and SUM(double) keep the
// serial fold — the planner places a serial HashAggOp over the parallel
// child instead, which is still bit-exact because the child reproduces
// the serial row stream).
bool AggsParallelMergeable(const std::vector<AggSpec>& aggs);

// Morsel-parallel hash aggregation: the child (a MorselSource) feeds each
// slot into its own AggAccumulator — worker-local, no sharing — and after
// the drive the per-slot accumulators merge in ascending slot order.
// Since slot order is the serial row-stream order and groups are kept in
// first-seen order, the merged group order (and every mergeable aggregate
// value) is byte-identical to the serial HashAggOp at any DOP.
class ParallelHashAggOp final : public PhysicalOp {
 public:
  // `child` must implement MorselSource; `aggs` must all be mergeable.
  ParallelHashAggOp(PhysicalOpPtr child, std::vector<ExprPtr> group_exprs,
                    std::vector<AggSpec> aggs, ParallelContext ctx);

  void Open() override;
  bool NextBatch(Batch* out) override;
  std::vector<ValueType> OutputTypes() const override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> Children() const override;

 private:
  PhysicalOpPtr child_;
  MorselSource* src_ = nullptr;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  ParallelContext ctx_;

  AggAccumulator merged_{&group_exprs_, &aggs_};
  size_t emit_pos_ = 0;
  bool done_ = false;
};

}  // namespace oltap

#endif  // OLTAP_EXEC_PARALLEL_PARALLEL_AGG_H_
