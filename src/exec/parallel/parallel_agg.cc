#include "exec/parallel/parallel_agg.h"

#include <algorithm>

#include "common/logging.h"

namespace oltap {

bool AggsParallelMergeable(const std::vector<AggSpec>& aggs) {
  for (const AggSpec& a : aggs) {
    switch (a.fn) {
      case AggSpec::Fn::kCountStar:
      case AggSpec::Fn::kCount:
      case AggSpec::Fn::kMin:
      case AggSpec::Fn::kMax:
        break;
      case AggSpec::Fn::kSum:
        if (a.arg->result_type() != ValueType::kInt64) return false;
        break;
      case AggSpec::Fn::kAvg:
        return false;
    }
  }
  return true;
}

ParallelHashAggOp::ParallelHashAggOp(PhysicalOpPtr child,
                                     std::vector<ExprPtr> group_exprs,
                                     std::vector<AggSpec> aggs,
                                     ParallelContext ctx)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)),
      ctx_(ctx) {
  src_ = dynamic_cast<MorselSource*>(child_.get());
  OLTAP_CHECK(src_ != nullptr);
  OLTAP_CHECK(AggsParallelMergeable(aggs_));
}

std::vector<ValueType> ParallelHashAggOp::OutputTypes() const {
  std::vector<ValueType> types;
  for (const ExprPtr& g : group_exprs_) types.push_back(g->result_type());
  for (const AggSpec& a : aggs_) types.push_back(a.OutputType());
  return types;
}

void ParallelHashAggOp::Open() {
  merged_.Clear();
  emit_pos_ = 0;
  done_ = false;

  src_->PrepareMorsels();
  size_t num_slots = src_->slots();
  // One accumulator per slot: a slot is produced entirely by one worker,
  // so each accumulator is mutated by exactly one thread during the drive.
  std::vector<AggAccumulator> accs(
      num_slots, AggAccumulator(&group_exprs_, &aggs_));
  src_->Drive([&accs](size_t slot, Batch&& batch) {
    accs[slot].Consume(batch);
  });
  // Slot order == serial row-stream order, so merging ascending
  // reproduces the serial first-seen group order exactly.
  for (const AggAccumulator& a : accs) merged_.MergeFrom(a);
  done_ = true;
}

bool ParallelHashAggOp::NextBatch(Batch* out) {
  const std::vector<AggAccumulator::Group>& groups = merged_.groups();
  bool synth_empty =
      group_exprs_.empty() && groups.empty() && emit_pos_ == 0;
  if (!synth_empty && emit_pos_ >= groups.size()) return false;

  std::vector<ValueType> types = OutputTypes();
  out->columns.clear();
  out->columns.reserve(types.size());
  for (ValueType t : types) out->columns.emplace_back(t);
  if (synth_empty) {
    // Global aggregate over zero rows still yields one output row.
    AggAccumulator::AggState empty;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      out->columns[a].AppendValue(merged_.Finalize(aggs_[a], empty));
    }
    ++emit_pos_;
    return true;
  }
  size_t end = std::min(groups.size(), emit_pos_ + kDefaultBatchRows);
  for (; emit_pos_ < end; ++emit_pos_) {
    const AggAccumulator::Group& g = groups[emit_pos_];
    size_t c = 0;
    for (size_t k = 0; k < group_exprs_.size(); ++k) {
      out->columns[c++].AppendValue(g.keys[k]);
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      out->columns[c++].AppendValue(merged_.Finalize(aggs_[a], g.states[a]));
    }
  }
  return true;
}

std::string ParallelHashAggOp::Describe() const {
  return "ParallelHashAggregate(groups=" +
         std::to_string(group_exprs_.size()) +
         ", aggs=" + std::to_string(aggs_.size()) +
         ", dop=" + std::to_string(ctx_.dop) + ")";
}

std::vector<const PhysicalOp*> ParallelHashAggOp::Children() const {
  return {child_.get()};
}

}  // namespace oltap
