#ifndef OLTAP_EXEC_PARALLEL_PARALLEL_JOIN_H_
#define OLTAP_EXEC_PARALLEL_PARALLEL_JOIN_H_

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/parallel/morsel.h"

namespace oltap {

// Morsel-parallel inner equi-join. The build side is materialized once,
// then the hash table is built in two parallel phases: (1) per-row key
// encoding + hashing chunked across the pool, (2) one worker per
// partition inserting its rows in ascending build-row order (each key
// lands in exactly one partition, so insertion order per key matches the
// serial build — the serial HashJoinOp emits duplicate-key matches in
// ascending build-row order too). The probe side must be a MorselSource;
// each probe morsel is joined inside the worker that produced it against
// the shared read-only partitioned table, preserving the probe row order
// within its slot. Output row stream == serial HashJoinOp at any DOP.
class ParallelHashJoinOp final : public PhysicalOp, public MorselSource {
 public:
  // `probe` must implement MorselSource.
  ParallelHashJoinOp(PhysicalOpPtr build, PhysicalOpPtr probe,
                     std::vector<int> build_keys,
                     std::vector<int> probe_keys, ParallelContext ctx);

  void Open() override;
  bool NextBatch(Batch* out) override;
  std::vector<ValueType> OutputTypes() const override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> Children() const override;

  void PrepareMorsels() override;
  size_t slots() const override;
  void Drive(const MorselSink& sink) override;

 private:
  void DriveInternal(const MorselSink& sink, bool account);
  void BuildTable();
  // Joins one probe batch, sinking output in kDefaultBatchRows chunks.
  void JoinBatch(size_t slot, const Batch& in, const MorselSink& sink,
                 std::atomic<size_t>* rows,
                 std::atomic<size_t>* batches) const;

  PhysicalOpPtr build_;
  PhysicalOpPtr probe_;
  MorselSource* probe_src_ = nullptr;
  std::vector<int> build_keys_;
  std::vector<int> probe_keys_;
  ParallelContext ctx_;

  std::vector<Row> build_rows_;
  size_t nparts_ = 1;
  // Partition p owns keys with hash(key) % nparts_ == p; per-key match
  // lists are in ascending build-row order.
  std::vector<std::unordered_map<std::string, std::vector<size_t>>> parts_;
  bool prepared_ = false;

  SlotBuffer buf_;
};

}  // namespace oltap

#endif  // OLTAP_EXEC_PARALLEL_PARALLEL_JOIN_H_
