#ifndef OLTAP_EXEC_PARALLEL_PARALLEL_SCAN_H_
#define OLTAP_EXEC_PARALLEL_PARALLEL_SCAN_H_

#include <atomic>
#include <optional>
#include <vector>

#include "common/bitvector.h"
#include "exec/parallel/morsel.h"
#include "storage/column_store.h"
#include "storage/table.h"

namespace oltap {

// Morsel-parallel columnar table scan. The *selection* phase — MVCC
// visibility mask plus zone-pruned pushdown kernels over whole segments —
// runs serially in PrepareMorsels() (cheap SWAR over packed data), then
// the expensive per-row work (gather of needed columns, residual
// predicate, projection) is parallelized: the main fragment is cut into
// kMorselRows-row morsels claimed from a shared atomic cursor, and the
// filtered delta/frozen rows (already collected during prepare, exactly
// as the serial ScanOp does) form one trailing slot. Slot m holds
// precisely the rows the serial ScanOp emits at that position, so
// slot-ordered consumption reproduces the serial row stream byte for
// byte at any DOP.
//
// Columnar tables only — the planner never builds this for row-format
// tables or the forced row path.
class ParallelScanOp final : public PhysicalOp, public MorselSource {
 public:
  ParallelScanOp(const Table* table, Timestamp read_ts, ExprPtr predicate,
                 std::vector<int> projection, ParallelContext ctx);

  void Open() override;
  bool NextBatch(Batch* out) override;
  std::vector<ValueType> OutputTypes() const override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> Children() const override;

  void PrepareMorsels() override;
  size_t slots() const override;
  void Drive(const MorselSink& sink) override;

  size_t rows_scanned() const { return rows_scanned_; }
  size_t zones_pruned() const { return zones_pruned_; }
  const Table* table() const { return table_; }

 private:
  void DriveInternal(const MorselSink& sink, bool account);
  // Emits every batch of main-fragment morsel m (gather → residual →
  // project, in kDefaultBatchRows chunks).
  void ProduceMainMorsel(size_t m, const MorselSink& sink,
                         std::atomic<size_t>* rows,
                         std::atomic<size_t>* batches) const;
  // Emits the trailing delta slot (filtered pending rows, projected).
  void ProduceDeltaSlot(size_t slot, const MorselSink& sink,
                        std::atomic<size_t>* rows,
                        std::atomic<size_t>* batches) const;

  const Table* table_;
  Timestamp read_ts_;
  ExprPtr predicate_;
  std::vector<int> projection_;
  std::vector<ValueType> out_types_;
  ParallelContext ctx_;

  // Pushdown split + gather plan (same derivation as ScanOp).
  std::vector<Expr::ColumnPredicate> pushed_;
  ExprPtr residual_;
  std::vector<int> needed_;
  std::vector<int> schema_to_batch_;
  ExprPtr residual_remapped_;

  std::optional<ColumnTable::Snapshot> snap_;
  BitVector main_sel_;
  std::vector<Row> pending_rows_;
  size_t num_main_morsels_ = 0;
  size_t num_slots_ = 0;
  bool prepared_ = false;

  size_t rows_scanned_ = 0;
  size_t zones_pruned_ = 0;

  SlotBuffer buf_;
};

}  // namespace oltap

#endif  // OLTAP_EXEC_PARALLEL_PARALLEL_SCAN_H_
