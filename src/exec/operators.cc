#include "exec/operators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace oltap {

std::string HashKeyOf(const Row& values) {
  std::vector<int> all(values.size());
  std::iota(all.begin(), all.end(), 0);
  return EncodeKeyColumns(values, all);
}

void CollectExprColumns(const ExprPtr& e, std::vector<int>* out) {
  if (e == nullptr) return;
  if (e->kind() == Expr::Kind::kColumn) out->push_back(e->column_index());
  for (const ExprPtr& c : e->children()) CollectExprColumns(c, out);
}

ExprPtr RemapExprColumns(const ExprPtr& e, const std::vector<int>& remap) {
  switch (e->kind()) {
    case Expr::Kind::kColumn:
      return Expr::Column(remap[e->column_index()], e->result_type());
    case Expr::Kind::kConst:
      return e;
    case Expr::Kind::kCompare:
      return Expr::Compare(e->compare_op(),
                           RemapExprColumns(e->children()[0], remap),
                           RemapExprColumns(e->children()[1], remap));
    case Expr::Kind::kAnd:
      return Expr::And(RemapExprColumns(e->children()[0], remap),
                       RemapExprColumns(e->children()[1], remap));
    case Expr::Kind::kOr:
      return Expr::Or(RemapExprColumns(e->children()[0], remap),
                      RemapExprColumns(e->children()[1], remap));
    case Expr::Kind::kNot:
      return Expr::Not(RemapExprColumns(e->children()[0], remap));
    case Expr::Kind::kIsNull:
      return Expr::IsNull(RemapExprColumns(e->children()[0], remap));
    default:
      return Expr::Arith(e->kind(),
                         RemapExprColumns(e->children()[0], remap),
                         RemapExprColumns(e->children()[1], remap));
  }
}

namespace {

void ExplainInto(const PhysicalOp* op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op->Describe());
  // Optimizer annotations only when the planner produced estimates, so
  // non-optimized plans render exactly as before.
  if (op->est_rows() >= 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " est_rows=%lld",
                  static_cast<long long>(std::llround(op->est_rows())));
    out->append(buf);
    if (op->est_cost() >= 0) {
      std::snprintf(buf, sizeof(buf), " cost=%lld",
                    static_cast<long long>(std::llround(op->est_cost())));
      out->append(buf);
    }
  }
  out->push_back('\n');
  for (const PhysicalOp* child : op->Children()) {
    ExplainInto(child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainPlan(const PhysicalOp* root) {
  std::string out;
  ExplainInto(root, 0, &out);
  return out;
}

void PhysicalOp::OpenTimed() {
  stats_.Reset();
  obs::ScopedTimer timer(&stats_.open_ns);
  Open();
}

bool PhysicalOp::NextBatchTimed(Batch* out) {
  bool more;
  {
    obs::ScopedTimer timer(&stats_.next_ns);
    more = NextBatch(out);
  }
  // Row/batch tallies are plain member increments (no clock read) and
  // stay on even under OLTAP_OBS_DISABLED, so EXPLAIN ANALYZE keeps its
  // exact row counts there; only timings degrade to zero. Only a true
  // return delivers a batch — on false `out` holds stale content from
  // the previous pull (callers never read it).
  if (more) {
    size_t n = out->num_rows();
    if (n > 0) {
      stats_.rows += n;
      ++stats_.batches;
    }
  }
  return more;
}

namespace {

void ProfileInto(const PhysicalOp* op, obs::QueryProfile::Node* node) {
  const obs::OpStats& st = op->op_stats();
  node->name = op->Describe();
  node->rows = st.rows;
  node->batches = st.batches;
  node->time_ns = st.total_ns();
  node->est_rows = op->est_rows();
  for (const PhysicalOp* child : op->Children()) {
    node->children.emplace_back();
    ProfileInto(child, &node->children.back());
  }
}

}  // namespace

obs::QueryProfile BuildQueryProfile(const PhysicalOp* root) {
  obs::QueryProfile profile;
  ProfileInto(root, &profile.root);
  return profile;
}

std::vector<Row> CollectRows(PhysicalOp* op) {
  std::vector<Row> rows;
  op->OpenTimed();
  Batch batch;
  while (op->NextBatchTimed(&batch)) {
    for (size_t i = 0; i < batch.num_rows(); ++i) {
      rows.push_back(batch.GetRow(i));
    }
  }
  return rows;
}

// ---------------------------------------------------------------- ScanOp

std::string ScanOp::Describe() const {
  std::string out = "Scan(" + table_->name() + " [" +
                    TableFormatToString(table_->format()) + "]";
  if (!pushed_.empty() || residual_ != nullptr) {
    if (predicate_ != nullptr) out += ", pred=" + predicate_->ToString();
  } else if (predicate_ != nullptr) {
    out += ", pred=" + predicate_->ToString();
  }
  if (path_ == Path::kRow) out += ", path=row";
  if (path_ == Path::kColumn) out += ", path=column";
  out += ")";
  return out;
}
std::vector<const PhysicalOp*> ScanOp::Children() const { return {}; }


ScanOp::ScanOp(const Table* table, Timestamp read_ts, ExprPtr predicate,
               std::vector<int> projection, Path path)
    : table_(table),
      read_ts_(read_ts),
      predicate_(std::move(predicate)),
      projection_(std::move(projection)),
      path_(path) {
  const Schema& schema = table_->schema();
  if (projection_.empty()) {
    projection_.resize(schema.num_columns());
    std::iota(projection_.begin(), projection_.end(), 0);
  }
  out_types_.reserve(projection_.size());
  for (int c : projection_) {
    out_types_.push_back(schema.column(c).type);
  }
}

std::vector<ValueType> ScanOp::OutputTypes() const { return out_types_; }

void ScanOp::Open() {
  rows_scanned_ = 0;
  zones_pruned_ = 0;
  main_pos_ = 0;
  pending_rows_.clear();
  pending_pos_ = 0;
  delta_done_ = false;
  row_scan_done_ = false;

  // Resolve the physical side: column whenever one exists (historical
  // behavior), unless a forced path overrides it and the table actually
  // has that mirror.
  columnar_ = table_->column_table() != nullptr;
  if (path_ == Path::kRow && table_->row_table() != nullptr) {
    columnar_ = false;
  }
  if (!columnar_) {
    // Row engine (or forced row mirror of a dual table): materialize
    // passing rows once (OLTP-sized tables).
    table_->row_table()->ScanVisible(read_ts_, [&](const Row& row) {
      ++rows_scanned_;
      if (predicate_ != nullptr) {
        Value v = predicate_->EvalRow(row);
        if (v.is_null() || !v.AsBool()) return;
      }
      pending_rows_.push_back(row);
    });
    return;
  }

  snap_ = table_->GetColumnSnapshot(read_ts_);
  OLTAP_CHECK(snap_.has_value());

  // Split the predicate into pushable single-column terms and a residual.
  pushed_.clear();
  residual_ = nullptr;
  if (predicate_ != nullptr) {
    std::vector<ExprPtr> conjuncts;
    Expr::SplitConjuncts(predicate_, &conjuncts);
    std::vector<ExprPtr> residual_terms;
    for (const ExprPtr& c : conjuncts) {
      Expr::ColumnPredicate cp;
      if (c->AsColumnPredicate(&cp)) {
        pushed_.push_back(cp);
      } else {
        residual_terms.push_back(c);
      }
    }
    residual_ = Expr::CombineConjuncts(residual_terms);
  }

  // Gather only the columns the output or the residual actually touches.
  needed_ = projection_;
  CollectExprColumns(residual_, &needed_);
  std::sort(needed_.begin(), needed_.end());
  needed_.erase(std::unique(needed_.begin(), needed_.end()), needed_.end());
  schema_to_batch_.assign(table_->schema().num_columns(), -1);
  for (size_t i = 0; i < needed_.size(); ++i) {
    schema_to_batch_[needed_[i]] = static_cast<int>(i);
  }
  residual_remapped_ =
      residual_ == nullptr ? nullptr
                           : RemapExprColumns(residual_, schema_to_batch_);

  PrepareMainSelection();

  // Delta (and frozen delta) rows: row-at-a-time with the full predicate.
  auto consume = [&](uint32_t, const Row& row) {
    ++rows_scanned_;
    if (predicate_ != nullptr) {
      Value v = predicate_->EvalRow(row);
      if (v.is_null() || !v.AsBool()) return;
    }
    pending_rows_.push_back(row);
  };
  if (snap_->frozen != nullptr) {
    snap_->frozen->ForEachVisible(read_ts_, consume);
  }
  snap_->delta->ForEachVisible(read_ts_, consume);
}

void ScanOp::PrepareMainSelection() {
  const MainFragment& main = *snap_->main;
  main.VisibleMask(read_ts_, &main_sel_);
  rows_scanned_ += main.num_rows();
  if (main.num_rows() == 0) return;  // empty main has no segments to scan
  for (const Expr::ColumnPredicate& cp : pushed_) {
    const ColumnSegment& seg = main.column(cp.column);
    // Zone-pruned storage-index scan: only zones whose min/max admit the
    // predicate are evaluated by the packed kernel.
    BitVector hits;
    size_t pruned = 0;
    seg.ScanCompareZoned(cp.op, cp.constant, &hits, &pruned);
    zones_pruned_ += pruned;
    main_sel_.And(hits);
  }
}

bool ScanOp::EmitMainBatch(Batch* out) {
  const MainFragment& main = *snap_->main;
  const Schema& schema = table_->schema();
  // Gather the next chunk of selected rowids.
  std::vector<uint32_t> rids;
  rids.reserve(kDefaultBatchRows);
  size_t i = main_sel_.FindNextSet(main_pos_);
  while (i < main_sel_.size() && rids.size() < kDefaultBatchRows) {
    rids.push_back(static_cast<uint32_t>(i));
    i = main_sel_.FindNextSet(i + 1);
  }
  main_pos_ = i;
  if (rids.empty()) return false;

  // Gather the needed columns (projection ∪ residual refs), then filter,
  // then project.
  Batch full;
  full.columns.reserve(needed_.size());
  for (int c : needed_) {
    ColumnVector cv(schema.column(c).type);
    cv.Reserve(rids.size());
    const ColumnSegment& seg = main.column(c);
    for (uint32_t rid : rids) {
      if (seg.IsNull(rid)) {
        cv.AppendNull();
        continue;
      }
      switch (seg.type()) {
        case ValueType::kInt64:
          cv.AppendInt64(seg.GetInt64(rid));
          break;
        case ValueType::kDouble:
          cv.AppendDouble(seg.GetDouble(rid));
          break;
        case ValueType::kString:
          cv.AppendString(std::string(seg.GetString(rid)));
          break;
      }
    }
    full.columns.push_back(std::move(cv));
  }

  BitVector keep;
  if (residual_remapped_ != nullptr) {
    residual_remapped_->EvalPredicate(full, &keep);
  } else {
    keep.Resize(full.num_rows());
    keep.SetAll();
  }

  out->columns.clear();
  out->columns.reserve(projection_.size());
  for (size_t p = 0; p < projection_.size(); ++p) {
    const ColumnVector& src =
        full.columns[schema_to_batch_[projection_[p]]];
    ColumnVector cv(src.type());
    for (size_t r = keep.FindNextSet(0); r < keep.size();
         r = keep.FindNextSet(r + 1)) {
      cv.AppendValue(src.GetValue(r));
    }
    out->columns.push_back(std::move(cv));
  }
  return true;
}

bool ScanOp::EmitDeltaRows(Batch* out) {
  if (pending_pos_ >= pending_rows_.size()) return false;
  out->columns.clear();
  out->columns.reserve(projection_.size());
  for (size_t p = 0; p < projection_.size(); ++p) {
    out->columns.emplace_back(out_types_[p]);
  }
  size_t end = std::min(pending_rows_.size(), pending_pos_ + kDefaultBatchRows);
  for (; pending_pos_ < end; ++pending_pos_) {
    const Row& row = pending_rows_[pending_pos_];
    for (size_t p = 0; p < projection_.size(); ++p) {
      out->columns[p].AppendValue(row[projection_[p]]);
    }
  }
  return true;
}

bool ScanOp::NextBatch(Batch* out) {
  out->columns.clear();
  if (columnar_) {
    while (true) {
      if (EmitMainBatch(out)) {
        if (out->num_rows() > 0) return true;
        continue;  // fully filtered batch; try the next chunk
      }
      break;
    }
    return EmitDeltaRows(out);
  }
  return EmitDeltaRows(out);  // pending_rows_ holds the row-engine result
}

// --------------------------------------------------------------- FilterOp

std::string FilterOp::Describe() const {
  return "Filter(" + predicate_->ToString() + ")";
}
std::vector<const PhysicalOp*> FilterOp::Children() const {
  return {child_.get()};
}


FilterOp::FilterOp(PhysicalOpPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

void FilterOp::Open() { child_->OpenTimed(); }

std::vector<ValueType> FilterOp::OutputTypes() const {
  return child_->OutputTypes();
}

bool FilterOp::NextBatch(Batch* out) {
  Batch in;
  while (child_->NextBatchTimed(&in)) {
    BitVector keep;
    predicate_->EvalPredicate(in, &keep);
    if (keep.CountSet() == 0) continue;
    out->columns.clear();
    out->columns.reserve(in.num_columns());
    for (size_t c = 0; c < in.num_columns(); ++c) {
      ColumnVector cv(in.columns[c].type());
      for (size_t r = keep.FindNextSet(0); r < keep.size();
           r = keep.FindNextSet(r + 1)) {
        cv.AppendValue(in.columns[c].GetValue(r));
      }
      out->columns.push_back(std::move(cv));
    }
    return true;
  }
  return false;
}

// -------------------------------------------------------------- ProjectOp

std::string ProjectOp::Describe() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  return out + ")";
}
std::vector<const PhysicalOp*> ProjectOp::Children() const {
  return {child_.get()};
}


ProjectOp::ProjectOp(PhysicalOpPtr child, std::vector<ExprPtr> exprs)
    : child_(std::move(child)), exprs_(std::move(exprs)) {}

void ProjectOp::Open() { child_->OpenTimed(); }

std::vector<ValueType> ProjectOp::OutputTypes() const {
  std::vector<ValueType> types;
  types.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) types.push_back(e->result_type());
  return types;
}

bool ProjectOp::NextBatch(Batch* out) {
  Batch in;
  if (!child_->NextBatchTimed(&in)) return false;
  out->columns.clear();
  out->columns.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    out->columns.push_back(e->EvalBatch(in));
  }
  return true;
}

// -------------------------------------------------------------- HashAggOp

std::string HashAggOp::Describe() const {
  std::string out = "HashAggregate(groups=";
  out += std::to_string(group_exprs_.size());
  out += ", aggs=" + std::to_string(aggs_.size()) + ")";
  return out;
}
std::vector<const PhysicalOp*> HashAggOp::Children() const {
  return {child_.get()};
}


ValueType AggSpec::OutputType() const {
  switch (fn) {
    case Fn::kCountStar:
    case Fn::kCount:
      return ValueType::kInt64;
    case Fn::kAvg:
      return ValueType::kDouble;
    case Fn::kSum:
    case Fn::kMin:
    case Fn::kMax:
      return arg->result_type();
  }
  return ValueType::kInt64;
}

HashAggOp::HashAggOp(PhysicalOpPtr child, std::vector<ExprPtr> group_exprs,
                     std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {}

std::vector<ValueType> HashAggOp::OutputTypes() const {
  std::vector<ValueType> types;
  for (const ExprPtr& g : group_exprs_) types.push_back(g->result_type());
  for (const AggSpec& a : aggs_) types.push_back(a.OutputType());
  return types;
}

void HashAggOp::Open() {
  child_->OpenTimed();
  acc_.Clear();
  emit_pos_ = 0;
  done_ = false;
}

void AggAccumulator::Clear() {
  index_.clear();
  groups_.clear();
}

void AggAccumulator::Consume(const Batch& batch) {
  const std::vector<ExprPtr>& group_exprs = *group_exprs_;
  const std::vector<AggSpec>& aggs = *aggs_;
  size_t n = batch.num_rows();
  if (n == 0) return;
  // Evaluate group keys and agg arguments once per batch.
  std::vector<ColumnVector> keys;
  keys.reserve(group_exprs.size());
  for (const ExprPtr& g : group_exprs) keys.push_back(g->EvalBatch(batch));
  std::vector<ColumnVector> args(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].arg != nullptr) args[a] = aggs[a].arg->EvalBatch(batch);
  }

  Row key_row(group_exprs.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < keys.size(); ++k) key_row[k] = keys[k].GetValue(i);
    std::string hk = HashKeyOf(key_row);
    auto [it, inserted] = index_.emplace(std::move(hk), groups_.size());
    if (inserted) {
      Group g;
      g.keys = key_row;
      g.states.resize(aggs.size());
      groups_.push_back(std::move(g));
    }
    Group& group = groups_[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& st = group.states[a];
      const AggSpec& spec = aggs[a];
      if (spec.fn == AggSpec::Fn::kCountStar) {
        ++st.count;
        continue;
      }
      if (args[a].IsNull(i)) continue;  // SQL: aggregates skip NULLs
      Value v = args[a].GetValue(i);
      ++st.count;
      switch (spec.fn) {
        case AggSpec::Fn::kSum:
        case AggSpec::Fn::kAvg:
          if (v.type() == ValueType::kInt64) {
            st.isum += v.AsInt64();
          }
          st.sum += v.AsDouble();
          break;
        case AggSpec::Fn::kMin:
          if (!st.any || v.Compare(st.min) < 0) st.min = v;
          break;
        case AggSpec::Fn::kMax:
          if (!st.any || v.Compare(st.max) > 0) st.max = v;
          break;
        default:
          break;
      }
      st.any = true;
    }
  }
}

void AggAccumulator::MergeFrom(const AggAccumulator& other) {
  const std::vector<AggSpec>& aggs = *aggs_;
  for (const Group& og : other.groups_) {
    std::string hk = HashKeyOf(og.keys);
    auto [it, inserted] = index_.emplace(std::move(hk), groups_.size());
    if (inserted) {
      Group g;
      g.keys = og.keys;
      g.states.resize(aggs.size());
      groups_.push_back(std::move(g));
    }
    Group& group = groups_[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& st = group.states[a];
      const AggState& os = og.states[a];
      st.count += os.count;
      st.isum += os.isum;
      st.sum += os.sum;
      if (os.any) {
        // `other` is the later part of the stream: on ties keep the value
        // already here, exactly as the serial first-encounter fold does.
        if (!st.any || os.min.Compare(st.min) < 0) st.min = os.min;
        if (!st.any || os.max.Compare(st.max) > 0) st.max = os.max;
        st.any = true;
      }
    }
  }
}

Value AggAccumulator::Finalize(const AggSpec& spec, const AggState& st) const {
  switch (spec.fn) {
    case AggSpec::Fn::kCountStar:
    case AggSpec::Fn::kCount:
      return Value::Int64(st.count);
    case AggSpec::Fn::kSum:
      if (st.count == 0) return Value::Null(spec.OutputType());
      return spec.arg->result_type() == ValueType::kInt64
                 ? Value::Int64(st.isum)
                 : Value::Double(st.sum);
    case AggSpec::Fn::kAvg:
      if (st.count == 0) return Value::Null(ValueType::kDouble);
      return Value::Double(st.sum / static_cast<double>(st.count));
    case AggSpec::Fn::kMin:
      return st.any ? st.min : Value::Null(spec.OutputType());
    case AggSpec::Fn::kMax:
      return st.any ? st.max : Value::Null(spec.OutputType());
  }
  return Value::Null();
}

bool HashAggOp::NextBatch(Batch* out) {
  if (!done_) {
    Batch in;
    while (child_->NextBatchTimed(&in)) acc_.Consume(in);
    done_ = true;
  }
  const std::vector<AggAccumulator::Group>& groups = acc_.groups();
  bool synth_empty =
      group_exprs_.empty() && groups.empty() && emit_pos_ == 0;
  if (!synth_empty && emit_pos_ >= groups.size()) return false;

  std::vector<ValueType> types = OutputTypes();
  out->columns.clear();
  out->columns.reserve(types.size());
  for (ValueType t : types) out->columns.emplace_back(t);
  if (synth_empty) {
    // Global aggregate over zero rows still yields one output row.
    AggAccumulator::AggState empty;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      out->columns[a].AppendValue(acc_.Finalize(aggs_[a], empty));
    }
    ++emit_pos_;
    return true;
  }
  size_t end = std::min(groups.size(), emit_pos_ + kDefaultBatchRows);
  for (; emit_pos_ < end; ++emit_pos_) {
    const AggAccumulator::Group& g = groups[emit_pos_];
    size_t c = 0;
    for (size_t k = 0; k < group_exprs_.size(); ++k) {
      out->columns[c++].AppendValue(g.keys[k]);
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      out->columns[c++].AppendValue(acc_.Finalize(aggs_[a], g.states[a]));
    }
  }
  return true;
}

// ------------------------------------------------------------- HashJoinOp

std::string HashJoinOp::Describe() const {
  std::string out = "HashJoin(keys=";
  for (size_t i = 0; i < build_keys_.size(); ++i) {
    if (i > 0) out += ",";
    out += "$" + std::to_string(build_keys_[i]) + "=$" +
           std::to_string(probe_keys_[i]);
  }
  return out + ")";
}
std::vector<const PhysicalOp*> HashJoinOp::Children() const {
  return {build_.get(), probe_.get()};
}


HashJoinOp::HashJoinOp(PhysicalOpPtr build, PhysicalOpPtr probe,
                       std::vector<int> build_keys,
                       std::vector<int> probe_keys)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)) {
  OLTAP_CHECK(build_keys_.size() == probe_keys_.size());
}

std::vector<ValueType> HashJoinOp::OutputTypes() const {
  std::vector<ValueType> types = build_->OutputTypes();
  for (ValueType t : probe_->OutputTypes()) types.push_back(t);
  return types;
}

void HashJoinOp::Open() {
  probe_->OpenTimed();
  build_rows_ = CollectRows(build_.get());  // CollectRows opens the child
  table_.clear();
  Row key_row(build_keys_.size());
  for (size_t i = 0; i < build_rows_.size(); ++i) {
    bool has_null = false;
    for (size_t k = 0; k < build_keys_.size(); ++k) {
      key_row[k] = build_rows_[i][build_keys_[k]];
      has_null |= key_row[k].is_null();
    }
    if (has_null) continue;  // NULL keys never join
    table_[HashKeyOf(key_row)].push_back(i);
  }
  probe_pos_ = 0;
  probe_done_ = false;
  probe_batch_.columns.clear();
}

bool HashJoinOp::NextBatch(Batch* out) {
  std::vector<ValueType> types = OutputTypes();
  out->columns.clear();
  out->columns.reserve(types.size());
  for (ValueType t : types) out->columns.emplace_back(t);

  size_t emitted = 0;
  Row key_row(probe_keys_.size());
  while (emitted < kDefaultBatchRows) {
    if (probe_pos_ >= probe_batch_.num_rows()) {
      if (probe_done_ || !probe_->NextBatchTimed(&probe_batch_)) {
        probe_done_ = true;
        break;
      }
      probe_pos_ = 0;
      continue;
    }
    size_t i = probe_pos_++;
    bool has_null = false;
    for (size_t k = 0; k < probe_keys_.size(); ++k) {
      key_row[k] = probe_batch_.columns[probe_keys_[k]].GetValue(i);
      has_null |= key_row[k].is_null();
    }
    if (has_null) continue;
    auto it = table_.find(HashKeyOf(key_row));
    if (it == table_.end()) continue;
    for (size_t bi : it->second) {
      const Row& b = build_rows_[bi];
      size_t c = 0;
      for (const Value& v : b) out->columns[c++].AppendValue(v);
      for (size_t pc = 0; pc < probe_batch_.num_columns(); ++pc) {
        out->columns[c++].AppendValue(probe_batch_.columns[pc].GetValue(i));
      }
      ++emitted;
    }
  }
  return emitted > 0;
}

// ----------------------------------------------------------------- SortOp

std::string SortOp::Describe() const {
  std::string out = "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "$" + std::to_string(keys_[i].column) +
           (keys_[i].descending ? " DESC" : " ASC");
  }
  return out + ")";
}
std::vector<const PhysicalOp*> SortOp::Children() const {
  return {child_.get()};
}


SortOp::SortOp(PhysicalOpPtr child, std::vector<SortKey> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {}

std::vector<ValueType> SortOp::OutputTypes() const {
  return child_->OutputTypes();
}

void SortOp::Open() {
  rows_ = CollectRows(child_.get());  // CollectRows opens the child
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const SortKey& k : keys_) {
                       int cmp = a[k.column].Compare(b[k.column]);
                       if (cmp != 0) return k.descending ? cmp > 0 : cmp < 0;
                     }
                     return false;
                   });
  pos_ = 0;
}

bool SortOp::NextBatch(Batch* out) {
  if (pos_ >= rows_.size()) return false;
  std::vector<ValueType> types = OutputTypes();
  out->columns.clear();
  out->columns.reserve(types.size());
  for (ValueType t : types) out->columns.emplace_back(t);
  size_t end = std::min(rows_.size(), pos_ + kDefaultBatchRows);
  for (; pos_ < end; ++pos_) {
    for (size_t c = 0; c < types.size(); ++c) {
      out->columns[c].AppendValue(rows_[pos_][c]);
    }
  }
  return true;
}

// ----------------------------------------------------------------- TopNOp

std::string TopNOp::Describe() const {
  std::string out = "TopN(limit=" + std::to_string(limit_) + ", keys=";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "$" + std::to_string(keys_[i].column) +
           (keys_[i].descending ? " DESC" : " ASC");
  }
  return out + ")";
}
std::vector<const PhysicalOp*> TopNOp::Children() const {
  return {child_.get()};
}


TopNOp::TopNOp(PhysicalOpPtr child, std::vector<SortOp::SortKey> keys,
               size_t limit)
    : child_(std::move(child)), keys_(std::move(keys)), limit_(limit) {}

std::vector<ValueType> TopNOp::OutputTypes() const {
  return child_->OutputTypes();
}

bool TopNOp::Before(const Row& a, const Row& b) const {
  for (const SortOp::SortKey& k : keys_) {
    int cmp = a[k.column].Compare(b[k.column]);
    if (cmp != 0) return k.descending ? cmp > 0 : cmp < 0;
  }
  return false;
}

void TopNOp::Open() {
  child_->OpenTimed();
  heap_.clear();
  pos_ = 0;
  done_ = false;
}

bool TopNOp::NextBatch(Batch* out) {
  if (!done_) {
    // heap_ is a max-heap under Before: heap_.front() is the *worst* of
    // the current top-k, evicted whenever a better row arrives.
    auto worse = [this](const Row& a, const Row& b) { return Before(a, b); };
    Batch in;
    while (child_->NextBatchTimed(&in)) {
      for (size_t i = 0; i < in.num_rows(); ++i) {
        Row row = in.GetRow(i);
        if (heap_.size() < limit_) {
          heap_.push_back(std::move(row));
          std::push_heap(heap_.begin(), heap_.end(), worse);
        } else if (limit_ > 0 && Before(row, heap_.front())) {
          std::pop_heap(heap_.begin(), heap_.end(), worse);
          heap_.back() = std::move(row);
          std::push_heap(heap_.begin(), heap_.end(), worse);
        }
      }
    }
    std::sort_heap(heap_.begin(), heap_.end(), worse);
    done_ = true;
  }
  if (pos_ >= heap_.size()) return false;
  std::vector<ValueType> types = OutputTypes();
  out->columns.clear();
  out->columns.reserve(types.size());
  for (ValueType t : types) out->columns.emplace_back(t);
  size_t end = std::min(heap_.size(), pos_ + kDefaultBatchRows);
  for (; pos_ < end; ++pos_) {
    for (size_t c = 0; c < types.size(); ++c) {
      out->columns[c].AppendValue(heap_[pos_][c]);
    }
  }
  return true;
}

// ---------------------------------------------------------------- LimitOp

std::string LimitOp::Describe() const {
  return "Limit(" + std::to_string(limit_) + ")";
}
std::vector<const PhysicalOp*> LimitOp::Children() const {
  return {child_.get()};
}


LimitOp::LimitOp(PhysicalOpPtr child, size_t limit)
    : child_(std::move(child)), limit_(limit) {}

std::vector<ValueType> LimitOp::OutputTypes() const {
  return child_->OutputTypes();
}

void LimitOp::Open() {
  child_->OpenTimed();
  emitted_ = 0;
}

bool LimitOp::NextBatch(Batch* out) {
  if (emitted_ >= limit_) return false;
  Batch in;
  if (!child_->NextBatchTimed(&in)) return false;
  size_t take = std::min(in.num_rows(), limit_ - emitted_);
  if (take == in.num_rows()) {
    *out = std::move(in);
  } else {
    out->columns.clear();
    out->columns.reserve(in.num_columns());
    for (size_t c = 0; c < in.num_columns(); ++c) {
      ColumnVector cv(in.columns[c].type());
      for (size_t r = 0; r < take; ++r) {
        cv.AppendValue(in.columns[c].GetValue(r));
      }
      out->columns.push_back(std::move(cv));
    }
  }
  emitted_ += take;
  return true;
}

}  // namespace oltap
