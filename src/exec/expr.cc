#include "exec/expr.h"

#include "common/logging.h"

namespace oltap {
namespace {

bool CompareValues(CompareOp op, const Value& a, const Value& b) {
  int cmp = a.Compare(b);
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // Eq/Ne are symmetric
  }
}

}  // namespace

ExprPtr Expr::Column(int index, ValueType type) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kColumn;
  e->column_ = index;
  e->type_ = type;
  return e;
}

ExprPtr Expr::Constant(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConst;
  e->type_ = v.type();
  e->constant_ = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kCompare;
  e->compare_op_ = op;
  e->type_ = ValueType::kInt64;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::And(ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kAnd;
  e->type_ = ValueType::kInt64;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Or(ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kOr;
  e->type_ = ValueType::kInt64;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Not(ExprPtr c) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kNot;
  e->type_ = ValueType::kInt64;
  e->children_ = {std::move(c)};
  return e;
}

ExprPtr Expr::Arith(Kind op, ExprPtr l, ExprPtr r) {
  OLTAP_CHECK(op == Kind::kAdd || op == Kind::kSub || op == Kind::kMul ||
              op == Kind::kDiv);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = op;
  // Numeric promotion: double if either side is double (or division).
  bool dbl = l->result_type() == ValueType::kDouble ||
             r->result_type() == ValueType::kDouble || op == Kind::kDiv;
  e->type_ = dbl ? ValueType::kDouble : ValueType::kInt64;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::IsNull(ExprPtr c) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kIsNull;
  e->type_ = ValueType::kInt64;
  e->children_ = {std::move(c)};
  return e;
}

Value Expr::EvalRow(const Row& row) const {
  switch (kind_) {
    case Kind::kColumn:
      OLTAP_DCHECK(column_ >= 0 &&
                   static_cast<size_t>(column_) < row.size());
      return row[column_];
    case Kind::kConst:
      return constant_;
    case Kind::kCompare: {
      Value a = children_[0]->EvalRow(row);
      Value b = children_[1]->EvalRow(row);
      if (a.is_null() || b.is_null()) return Value::Null();
      return Value::Bool(CompareValues(compare_op_, a, b));
    }
    case Kind::kAnd: {
      Value a = children_[0]->EvalRow(row);
      if (!a.is_null() && !a.AsBool()) return Value::Bool(false);
      Value b = children_[1]->EvalRow(row);
      if (!b.is_null() && !b.AsBool()) return Value::Bool(false);
      if (a.is_null() || b.is_null()) return Value::Null();
      return Value::Bool(true);
    }
    case Kind::kOr: {
      Value a = children_[0]->EvalRow(row);
      if (!a.is_null() && a.AsBool()) return Value::Bool(true);
      Value b = children_[1]->EvalRow(row);
      if (!b.is_null() && b.AsBool()) return Value::Bool(true);
      if (a.is_null() || b.is_null()) return Value::Null();
      return Value::Bool(false);
    }
    case Kind::kNot: {
      Value a = children_[0]->EvalRow(row);
      if (a.is_null()) return Value::Null();
      return Value::Bool(!a.AsBool());
    }
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
    case Kind::kDiv: {
      Value a = children_[0]->EvalRow(row);
      Value b = children_[1]->EvalRow(row);
      if (a.is_null() || b.is_null()) return Value::Null(type_);
      if (type_ == ValueType::kDouble) {
        double x = a.AsDouble(), y = b.AsDouble();
        switch (kind_) {
          case Kind::kAdd:
            return Value::Double(x + y);
          case Kind::kSub:
            return Value::Double(x - y);
          case Kind::kMul:
            return Value::Double(x * y);
          default:
            return y == 0 ? Value::Null(ValueType::kDouble)
                          : Value::Double(x / y);
        }
      }
      int64_t x = a.AsInt64(), y = b.AsInt64();
      switch (kind_) {
        case Kind::kAdd:
          return Value::Int64(x + y);
        case Kind::kSub:
          return Value::Int64(x - y);
        case Kind::kMul:
          return Value::Int64(x * y);
        default:
          return y == 0 ? Value::Null() : Value::Int64(x / y);
      }
    }
    case Kind::kIsNull:
      return Value::Bool(children_[0]->EvalRow(row).is_null());
  }
  return Value::Null();
}

ColumnVector Expr::EvalBatch(const Batch& batch) const {
  size_t n = batch.num_rows();
  switch (kind_) {
    case Kind::kColumn:
      return batch.columns[column_];
    case Kind::kConst: {
      ColumnVector cv(type_);
      cv.Reserve(n);
      for (size_t i = 0; i < n; ++i) cv.AppendValue(constant_);
      return cv;
    }
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
    case Kind::kDiv: {
      ColumnVector a = children_[0]->EvalBatch(batch);
      ColumnVector b = children_[1]->EvalBatch(batch);
      ColumnVector out(type_);
      out.Reserve(n);
      if (type_ == ValueType::kDouble) {
        for (size_t i = 0; i < n; ++i) {
          if (a.IsNull(i) || b.IsNull(i)) {
            out.AppendNull();
            continue;
          }
          double x = a.type() == ValueType::kDouble
                         ? a.GetDouble(i)
                         : static_cast<double>(a.GetInt64(i));
          double y = b.type() == ValueType::kDouble
                         ? b.GetDouble(i)
                         : static_cast<double>(b.GetInt64(i));
          switch (kind_) {
            case Kind::kAdd:
              out.AppendDouble(x + y);
              break;
            case Kind::kSub:
              out.AppendDouble(x - y);
              break;
            case Kind::kMul:
              out.AppendDouble(x * y);
              break;
            default:
              if (y == 0) {
                out.AppendNull();
              } else {
                out.AppendDouble(x / y);
              }
          }
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          if (a.IsNull(i) || b.IsNull(i)) {
            out.AppendNull();
            continue;
          }
          int64_t x = a.GetInt64(i), y = b.GetInt64(i);
          switch (kind_) {
            case Kind::kAdd:
              out.AppendInt64(x + y);
              break;
            case Kind::kSub:
              out.AppendInt64(x - y);
              break;
            case Kind::kMul:
              out.AppendInt64(x * y);
              break;
            default:
              if (y == 0) {
                out.AppendNull();
              } else {
                out.AppendInt64(x / y);
              }
          }
        }
      }
      return out;
    }
    default: {
      // Predicates and IS NULL as 0/1 column.
      BitVector bits;
      EvalPredicate(batch, &bits);
      ColumnVector out(ValueType::kInt64);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        out.AppendInt64(bits.Get(i) ? 1 : 0);
      }
      return out;
    }
  }
}

void Expr::EvalPredicate(const Batch& batch, BitVector* out) const {
  size_t n = batch.num_rows();
  switch (kind_) {
    case Kind::kAnd: {
      children_[0]->EvalPredicate(batch, out);
      BitVector rhs;
      children_[1]->EvalPredicate(batch, &rhs);
      out->And(rhs);
      return;
    }
    case Kind::kOr: {
      children_[0]->EvalPredicate(batch, out);
      BitVector rhs;
      children_[1]->EvalPredicate(batch, &rhs);
      out->Or(rhs);
      return;
    }
    case Kind::kNot: {
      children_[0]->EvalPredicate(batch, out);
      out->Not();
      // NULL-as-false asymmetry: NOT(NULL)=NULL=false, but the child
      // already collapsed NULL to false, so NOT flips it to true. For the
      // engine's two-valued semantics this is accepted and documented.
      return;
    }
    case Kind::kCompare: {
      const ExprPtr& l = children_[0];
      const ExprPtr& r = children_[1];
      out->Resize(n);
      out->ClearAll();
      // Fast path: column vs constant on numeric columns.
      if (l->kind_ == Kind::kColumn && r->kind_ == Kind::kConst &&
          !r->constant_.is_null()) {
        const ColumnVector& col = batch.columns[l->column_];
        if (col.type() == ValueType::kInt64 &&
            r->constant_.type() == ValueType::kInt64) {
          int64_t c = r->constant_.AsInt64();
          const std::vector<int64_t>& v = col.i64();
          for (size_t i = 0; i < n; ++i) {
            if (col.IsNull(i)) continue;
            bool hit = false;
            switch (compare_op_) {
              case CompareOp::kEq:
                hit = v[i] == c;
                break;
              case CompareOp::kNe:
                hit = v[i] != c;
                break;
              case CompareOp::kLt:
                hit = v[i] < c;
                break;
              case CompareOp::kLe:
                hit = v[i] <= c;
                break;
              case CompareOp::kGt:
                hit = v[i] > c;
                break;
              case CompareOp::kGe:
                hit = v[i] >= c;
                break;
            }
            if (hit) out->Set(i);
          }
          return;
        }
      }
      // General path.
      ColumnVector a = l->EvalBatch(batch);
      ColumnVector b = r->EvalBatch(batch);
      for (size_t i = 0; i < n; ++i) {
        if (a.IsNull(i) || b.IsNull(i)) continue;
        if (CompareValues(compare_op_, a.GetValue(i), b.GetValue(i))) {
          out->Set(i);
        }
      }
      return;
    }
    case Kind::kIsNull: {
      ColumnVector a = children_[0]->EvalBatch(batch);
      out->Resize(n);
      out->ClearAll();
      for (size_t i = 0; i < n; ++i) {
        if (a.IsNull(i)) out->Set(i);
      }
      return;
    }
    default: {
      // Arbitrary expression as predicate: nonzero and non-null = true.
      ColumnVector a = EvalBatch(batch);
      out->Resize(n);
      out->ClearAll();
      for (size_t i = 0; i < n; ++i) {
        if (!a.IsNull(i) && a.GetValue(i).AsBool()) out->Set(i);
      }
      return;
    }
  }
}

bool Expr::AsColumnPredicate(ColumnPredicate* out) const {
  if (kind_ != Kind::kCompare) return false;
  const Expr* l = children_[0].get();
  const Expr* r = children_[1].get();
  if (l->kind_ == Kind::kColumn && r->kind_ == Kind::kConst) {
    out->column = l->column_;
    out->op = compare_op_;
    out->constant = r->constant_;
    return true;
  }
  if (l->kind_ == Kind::kConst && r->kind_ == Kind::kColumn) {
    out->column = r->column_;
    out->op = FlipOp(compare_op_);
    out->constant = l->constant_;
    return true;
  }
  return false;
}

void Expr::SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind_ == Kind::kAnd) {
    SplitConjuncts(e->children_[0], out);
    SplitConjuncts(e->children_[1], out);
    return;
  }
  out->push_back(e);
}

ExprPtr Expr::CombineConjuncts(const std::vector<ExprPtr>& terms) {
  ExprPtr acc;
  for (const ExprPtr& t : terms) {
    acc = acc == nullptr ? t : And(acc, t);
  }
  return acc;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return "$" + std::to_string(column_);
    case Kind::kConst:
      return constant_.is_null() ? "NULL" : constant_.ToString();
    case Kind::kCompare: {
      const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
      return "(" + children_[0]->ToString() + " " +
             ops[static_cast<int>(compare_op_)] + " " +
             children_[1]->ToString() + ")";
    }
    case Kind::kAnd:
      return "(" + children_[0]->ToString() + " AND " +
             children_[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + children_[0]->ToString() + " OR " +
             children_[1]->ToString() + ")";
    case Kind::kNot:
      return "NOT " + children_[0]->ToString();
    case Kind::kAdd:
      return "(" + children_[0]->ToString() + " + " +
             children_[1]->ToString() + ")";
    case Kind::kSub:
      return "(" + children_[0]->ToString() + " - " +
             children_[1]->ToString() + ")";
    case Kind::kMul:
      return "(" + children_[0]->ToString() + " * " +
             children_[1]->ToString() + ")";
    case Kind::kDiv:
      return "(" + children_[0]->ToString() + " / " +
             children_[1]->ToString() + ")";
    case Kind::kIsNull:
      return children_[0]->ToString() + " IS NULL";
  }
  return "?";
}

}  // namespace oltap
