#ifndef OLTAP_EXEC_EXPR_H_
#define OLTAP_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "exec/batch.h"
#include "storage/bitpack.h"
#include "storage/row.h"
#include "storage/value.h"

namespace oltap {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// Scalar expression AST shared by all execution engines: the
// tuple-at-a-time interpreter calls EvalRow per tuple, the vectorized
// engine calls EvalBatch/EvalPredicate per batch, and the scan planner
// strips (column <op> constant) conjuncts off the root for pushdown into
// the storage kernels.
class Expr {
 public:
  enum class Kind : uint8_t {
    kColumn,    // input column reference
    kConst,     // literal
    kCompare,   // compare_op over two children
    kAnd,
    kOr,
    kNot,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kIsNull,
  };

  // --- Factories ---
  static ExprPtr Column(int index, ValueType type);
  static ExprPtr Constant(Value v);
  static ExprPtr Compare(CompareOp op, ExprPtr l, ExprPtr r);
  static ExprPtr And(ExprPtr l, ExprPtr r);
  static ExprPtr Or(ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr e);
  static ExprPtr Arith(Kind op, ExprPtr l, ExprPtr r);
  static ExprPtr IsNull(ExprPtr e);

  Kind kind() const { return kind_; }
  CompareOp compare_op() const { return compare_op_; }
  int column_index() const { return column_; }
  const Value& constant() const { return constant_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  // Static result type (booleans are kInt64 0/1).
  ValueType result_type() const { return type_; }

  // Tuple-at-a-time evaluation. SQL three-valued logic is collapsed to
  // two-valued at predicate boundaries: comparisons involving NULL yield
  // NULL, and NULL is treated as false wherever a predicate gates a row.
  Value EvalRow(const Row& row) const;

  // Vectorized evaluation producing a full column.
  ColumnVector EvalBatch(const Batch& batch) const;

  // Vectorized predicate evaluation: sets bit i iff the expression is true
  // for row i (NULL counts as false).
  void EvalPredicate(const Batch& batch, BitVector* out) const;

  // A single (column <op> constant) term usable by storage scan kernels.
  struct ColumnPredicate {
    int column = -1;
    CompareOp op = CompareOp::kEq;
    Value constant;
  };
  // True if this node is such a term (constant may be on either side).
  bool AsColumnPredicate(ColumnPredicate* out) const;

  // Flattens a conjunction tree into its AND-ed terms.
  static void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);
  // Rebuilds a conjunction from terms (nullptr if empty).
  static ExprPtr CombineConjuncts(const std::vector<ExprPtr>& terms);

  std::string ToString() const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kConst;
  ValueType type_ = ValueType::kInt64;
  CompareOp compare_op_ = CompareOp::kEq;
  int column_ = -1;
  Value constant_;
  std::vector<ExprPtr> children_;
};

}  // namespace oltap

#endif  // OLTAP_EXEC_EXPR_H_
