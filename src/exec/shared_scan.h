#ifndef OLTAP_EXEC_SHARED_SCAN_H_
#define OLTAP_EXEC_SHARED_SCAN_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "storage/column_store.h"

namespace oltap {

// Result of one shared-scan query: COUNT and SUM over the matching rows.
struct ScanQueryResult {
  int64_t count = 0;
  double sum = 0;
};

// One-pass batch sharing: evaluates every query in `queries` during a
// single sweep over the fragment (chunk at a time, so all queries reuse the
// chunk while it is cache-resident). The building block the clock scan
// uses, and the "shared" arm of experiment E6.
std::vector<ScanQueryResult> ExecuteSharedOnce(
    const MainFragment& main, const std::vector<SimpleAggQuery>& queries,
    size_t chunk_rows = 64 * 1024);

// Independent baseline: one full scan per query.
std::vector<ScanQueryResult> ExecuteIndependent(
    const MainFragment& main, const std::vector<SimpleAggQuery>& queries);

// Crescando-style clock scan [39] (evolution of the circular scan [12]):
// a dedicated thread sweeps the fragment continuously, chunk by chunk;
// queries attach at the current clock position at any time and complete
// after one full rotation. Throughput is therefore predictable: every
// query finishes within two rotations regardless of how many queries are
// active — the property the paper highlights ("predictable performance for
// unpredictable workloads").
class ClockScanServer {
 public:
  explicit ClockScanServer(const MainFragment* main,
                           size_t chunk_rows = 64 * 1024);
  ~ClockScanServer();

  ClockScanServer(const ClockScanServer&) = delete;
  ClockScanServer& operator=(const ClockScanServer&) = delete;

  // Attaches a query at the next chunk boundary; the future resolves after
  // the query has seen every chunk exactly once.
  std::future<ScanQueryResult> Submit(const SimpleAggQuery& query);

  uint64_t chunks_scanned() const {
    return chunks_scanned_.load(std::memory_order_relaxed);
  }

  void Stop();

 private:
  struct ActiveQuery {
    SimpleAggQuery query;
    ScanQueryResult acc;
    size_t chunks_remaining = 0;
    std::promise<ScanQueryResult> done;
  };

  void Loop();
  // Evaluates all active queries over chunk rows [lo, hi).
  void ScanChunk(size_t lo, size_t hi);

  const MainFragment* main_;
  const size_t chunk_rows_;
  const size_t num_chunks_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<ActiveQuery>> pending_;
  std::vector<std::unique_ptr<ActiveQuery>> active_;
  bool stop_ = false;

  std::atomic<uint64_t> chunks_scanned_{0};
  size_t clock_pos_ = 0;  // current chunk index
  std::thread thread_;
};

}  // namespace oltap

#endif  // OLTAP_EXEC_SHARED_SCAN_H_
