#include "exec/fused_kernels.h"

#include "common/logging.h"

namespace oltap {
namespace fused {
namespace {

// Dispatches the comparison once, instantiating the hot loop per operator —
// the same effect codegen achieves by baking the predicate into the loop.
template <typename Body>
void ForEachMatch(const ColumnSegment& filter, CompareOp op, int64_t c,
                  Body body) {
  OLTAP_CHECK(filter.type() == ValueType::kInt64);
  const size_t n = filter.size();
  auto run = [&](auto cmp) {
    for (size_t i = 0; i < n; ++i) {
      if (filter.IsNull(i)) continue;
      if (cmp(filter.GetInt64(i))) body(i);
    }
  };
  switch (op) {
    case CompareOp::kEq:
      run([c](int64_t x) { return x == c; });
      return;
    case CompareOp::kNe:
      run([c](int64_t x) { return x != c; });
      return;
    case CompareOp::kLt:
      run([c](int64_t x) { return x < c; });
      return;
    case CompareOp::kLe:
      run([c](int64_t x) { return x <= c; });
      return;
    case CompareOp::kGt:
      run([c](int64_t x) { return x > c; });
      return;
    case CompareOp::kGe:
      run([c](int64_t x) { return x >= c; });
      return;
  }
}

double NumericAt(const ColumnSegment& seg, size_t i) {
  return seg.type() == ValueType::kDouble
             ? seg.GetDouble(i)
             : static_cast<double>(seg.GetInt64(i));
}

}  // namespace

double SumWhereInt64(const ColumnSegment& filter, CompareOp op, int64_t c,
                     const ColumnSegment& agg) {
  double sum = 0;
  ForEachMatch(filter, op, c, [&](size_t i) {
    if (!agg.IsNull(i)) sum += NumericAt(agg, i);
  });
  return sum;
}

int64_t CountWhereInt64(const ColumnSegment& filter, CompareOp op,
                        int64_t c) {
  int64_t count = 0;
  ForEachMatch(filter, op, c, [&](size_t) { ++count; });
  return count;
}

double SumProductWhereInt64(const ColumnSegment& filter, CompareOp op,
                            int64_t c, const ColumnSegment& a,
                            const ColumnSegment& b) {
  double sum = 0;
  ForEachMatch(filter, op, c, [&](size_t i) {
    if (!a.IsNull(i) && !b.IsNull(i)) sum += NumericAt(a, i) * NumericAt(b, i);
  });
  return sum;
}

}  // namespace fused
}  // namespace oltap
