#include "exec/batch.h"

#include "common/logging.h"

namespace oltap {

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null(type_);
  switch (type_) {
    case ValueType::kInt64:
      return Value::Int64(i64_[i]);
    case ValueType::kDouble:
      return Value::Double(f64_[i]);
    case ValueType::kString:
      return Value::String(str_[i]);
  }
  return Value();
}

void ColumnVector::Reserve(size_t n) {
  switch (type_) {
    case ValueType::kInt64:
      i64_.reserve(n);
      break;
    case ValueType::kDouble:
      f64_.reserve(n);
      break;
    case ValueType::kString:
      str_.reserve(n);
      break;
  }
}

void ColumnVector::MarkNullable(size_t upto) {
  if (!has_nulls_) {
    has_nulls_ = true;
  }
  if (nulls_.size() < upto) nulls_.Resize(upto);
}

void ColumnVector::AppendInt64(int64_t v) {
  OLTAP_DCHECK(type_ == ValueType::kInt64);
  i64_.push_back(v);
  ++size_;
  if (has_nulls_) nulls_.Resize(size_);
}

void ColumnVector::AppendDouble(double v) {
  OLTAP_DCHECK(type_ == ValueType::kDouble);
  f64_.push_back(v);
  ++size_;
  if (has_nulls_) nulls_.Resize(size_);
}

void ColumnVector::AppendString(std::string v) {
  OLTAP_DCHECK(type_ == ValueType::kString);
  str_.push_back(std::move(v));
  ++size_;
  if (has_nulls_) nulls_.Resize(size_);
}

void ColumnVector::AppendNull() {
  switch (type_) {
    case ValueType::kInt64:
      i64_.push_back(0);
      break;
    case ValueType::kDouble:
      f64_.push_back(0);
      break;
    case ValueType::kString:
      str_.emplace_back();
      break;
  }
  ++size_;
  MarkNullable(size_);
  nulls_.Set(size_ - 1);
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ValueType::kInt64:
      AppendInt64(v.AsInt64());
      return;
    case ValueType::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case ValueType::kString:
      AppendString(v.AsString());
      return;
  }
}

ColumnVector ColumnVector::FromValues(ValueType t,
                                      const std::vector<Value>& vals) {
  ColumnVector cv(t);
  cv.Reserve(vals.size());
  for (const Value& v : vals) cv.AppendValue(v);
  return cv;
}

Row Batch::GetRow(size_t i) const {
  Row row;
  row.reserve(columns.size());
  for (const ColumnVector& c : columns) row.push_back(c.GetValue(i));
  return row;
}

void Batch::AppendRow(const Row& row, const std::vector<ValueType>& types) {
  if (columns.empty()) {
    columns.reserve(types.size());
    for (ValueType t : types) columns.emplace_back(t);
  }
  OLTAP_DCHECK(row.size() == columns.size());
  for (size_t c = 0; c < row.size(); ++c) columns[c].AppendValue(row[c]);
}

}  // namespace oltap
