#ifndef OLTAP_EXEC_BATCH_H_
#define OLTAP_EXEC_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "storage/row.h"
#include "storage/value.h"

namespace oltap {

// A typed column of execution values. Exactly one of the payload arrays is
// populated according to `type`. Vectorized operators work directly on
// these arrays; scalar fallbacks go through GetValue.
class ColumnVector {
 public:
  ColumnVector() = default;
  explicit ColumnVector(ValueType t) : type_(t) {}

  ValueType type() const { return type_; }
  size_t size() const { return size_; }

  bool IsNull(size_t i) const { return has_nulls_ && nulls_.Get(i); }
  bool has_nulls() const { return has_nulls_; }

  int64_t GetInt64(size_t i) const { return i64_[i]; }
  double GetDouble(size_t i) const { return f64_[i]; }
  const std::string& GetString(size_t i) const { return str_[i]; }
  Value GetValue(size_t i) const;

  void Reserve(size_t n);
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();
  void AppendValue(const Value& v);

  // Direct array access for kernels.
  const std::vector<int64_t>& i64() const { return i64_; }
  const std::vector<double>& f64() const { return f64_; }
  const std::vector<std::string>& str() const { return str_; }
  std::vector<int64_t>* mutable_i64() { return &i64_; }
  std::vector<double>* mutable_f64() { return &f64_; }

  // Builds a vector from a slice of per-row Values (all of type t or null).
  static ColumnVector FromValues(ValueType t, const std::vector<Value>& vals);

 private:
  void MarkNullable(size_t upto);

  ValueType type_ = ValueType::kInt64;
  size_t size_ = 0;
  bool has_nulls_ = false;
  BitVector nulls_;
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> str_;
};

// A batch of rows in columnar form flowing between operators.
struct Batch {
  std::vector<ColumnVector> columns;

  size_t num_rows() const {
    return columns.empty() ? 0 : columns[0].size();
  }
  size_t num_columns() const { return columns.size(); }

  Row GetRow(size_t i) const;
  void AppendRow(const Row& row, const std::vector<ValueType>& types);
};

// Default number of rows per batch (a few L1-friendly vectors).
inline constexpr size_t kDefaultBatchRows = 2048;

}  // namespace oltap

#endif  // OLTAP_EXEC_BATCH_H_
