#ifndef OLTAP_EXEC_SCAN_KERNELS_H_
#define OLTAP_EXEC_SCAN_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "storage/bitpack.h"

namespace oltap {
namespace kernels {

// Tight-loop primitives shared by the vectorized engine, the shared-scan
// server, and the NUMA scan dispatcher. These deliberately contain no
// virtual calls and no per-value branching beyond the comparison itself —
// they are the "vectorized" side of the E7 execution-model comparison.

// out[i] = v[i] <op> c, over raw int64 data (no nulls).
void CompareInt64(const int64_t* v, size_t n, CompareOp op, int64_t c,
                  BitVector* out);
void CompareDouble(const double* v, size_t n, CompareOp op, double c,
                   BitVector* out);

// Sum of v[i] where sel bit set (sel == nullptr means all).
int64_t SumInt64Selected(const int64_t* v, size_t n, const BitVector* sel);
double SumDoubleSelected(const double* v, size_t n, const BitVector* sel);

// Min/max over selection; returns false if no row selected.
bool MinMaxInt64Selected(const int64_t* v, size_t n, const BitVector* sel,
                         int64_t* min, int64_t* max);

}  // namespace kernels
}  // namespace oltap

#endif  // OLTAP_EXEC_SCAN_KERNELS_H_
