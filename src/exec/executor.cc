#include "exec/executor.h"

#include "common/logging.h"
#include "exec/fused_kernels.h"
#include "exec/scan_kernels.h"
#include "obs/metrics.h"

namespace oltap {

const char* ExecutionModeToString(ExecutionMode m) {
  switch (m) {
    case ExecutionMode::kTupleAtATime:
      return "tuple-at-a-time";
    case ExecutionMode::kVectorized:
      return "vectorized";
    case ExecutionMode::kFused:
      return "fused";
  }
  return "?";
}

namespace {

// Tuple-at-a-time: reconstruct each tuple, interpret the predicate tree,
// accumulate through Value boxing — faithfully paying every interpretation
// overhead the vectorized/compiled designs eliminate.
double RunTupleAtATime(const MainFragment& main, const SimpleAggQuery& q) {
  ExprPtr pred = Expr::Compare(
      q.op, Expr::Column(q.filter_col, ValueType::kInt64),
      Expr::Constant(Value::Int64(q.constant)));
  double sum = 0;
  for (size_t r = 0; r < main.num_rows(); ++r) {
    Row row = main.GetRow(static_cast<RowId>(r));
    Value hit = pred->EvalRow(row);
    if (hit.is_null() || !hit.AsBool()) continue;
    const Value& v = row[q.agg_col];
    if (!v.is_null()) sum += v.AsDouble();
  }
  return sum;
}

// Vectorized: whole-column primitives — the packed SWAR compare produces a
// selection vector, then a selected gather-and-sum consumes it.
double RunVectorized(const MainFragment& main, const SimpleAggQuery& q) {
  BitVector sel;
  main.column(q.filter_col)
      .ScanCompare(CompareOp(q.op), Value::Int64(q.constant), &sel);
  std::vector<double> values;
  main.column(q.agg_col).GatherDoubles(&sel, &values, nullptr);
  return kernels::SumDoubleSelected(values.data(), values.size(), nullptr);
}

}  // namespace

double RunSimpleAgg(const MainFragment& main, const SimpleAggQuery& query,
                    ExecutionMode mode) {
  OLTAP_CHECK(main.column(query.filter_col).type() == ValueType::kInt64);
  switch (mode) {
    case ExecutionMode::kTupleAtATime:
      return RunTupleAtATime(main, query);
    case ExecutionMode::kVectorized:
      return RunVectorized(main, query);
    case ExecutionMode::kFused:
      return fused::SumWhereInt64(main.column(query.filter_col), query.op,
                                  query.constant, main.column(query.agg_col));
  }
  return 0;
}

std::vector<Row> ExecutePlan(PhysicalOp* root) {
  static obs::Counter* queries =
      obs::MetricsRegistry::Default()->GetCounter("exec.queries");
  static obs::Counter* rows_out =
      obs::MetricsRegistry::Default()->GetCounter("exec.rows_out");
  std::vector<Row> rows = CollectRows(root);
  queries->Add(1);
  rows_out->Add(rows.size());
  return rows;
}

}  // namespace oltap
