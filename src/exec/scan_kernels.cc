#include "exec/scan_kernels.h"

#include <algorithm>

namespace oltap {
namespace kernels {
namespace {

template <typename T, typename Cmp>
void CompareImpl(const T* v, size_t n, Cmp cmp, BitVector* out) {
  out->Resize(n);
  out->ClearAll();
  uint64_t* words = out->mutable_words();
  size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    uint64_t bits = 0;
    const T* base = v + w * 64;
    for (int i = 0; i < 64; ++i) {
      bits |= static_cast<uint64_t>(cmp(base[i])) << i;
    }
    words[w] = bits;
  }
  for (size_t i = full * 64; i < n; ++i) {
    if (cmp(v[i])) out->Set(i);
  }
}

template <typename T>
void CompareDispatch(const T* v, size_t n, CompareOp op, T c,
                     BitVector* out) {
  switch (op) {
    case CompareOp::kEq:
      CompareImpl(v, n, [c](T x) { return x == c; }, out);
      return;
    case CompareOp::kNe:
      CompareImpl(v, n, [c](T x) { return x != c; }, out);
      return;
    case CompareOp::kLt:
      CompareImpl(v, n, [c](T x) { return x < c; }, out);
      return;
    case CompareOp::kLe:
      CompareImpl(v, n, [c](T x) { return x <= c; }, out);
      return;
    case CompareOp::kGt:
      CompareImpl(v, n, [c](T x) { return x > c; }, out);
      return;
    case CompareOp::kGe:
      CompareImpl(v, n, [c](T x) { return x >= c; }, out);
      return;
  }
}

}  // namespace

void CompareInt64(const int64_t* v, size_t n, CompareOp op, int64_t c,
                  BitVector* out) {
  CompareDispatch(v, n, op, c, out);
}

void CompareDouble(const double* v, size_t n, CompareOp op, double c,
                   BitVector* out) {
  CompareDispatch(v, n, op, c, out);
}

int64_t SumInt64Selected(const int64_t* v, size_t n, const BitVector* sel) {
  int64_t sum = 0;
  if (sel == nullptr) {
    for (size_t i = 0; i < n; ++i) sum += v[i];
    return sum;
  }
  for (size_t i = sel->FindNextSet(0); i < n; i = sel->FindNextSet(i + 1)) {
    sum += v[i];
  }
  return sum;
}

double SumDoubleSelected(const double* v, size_t n, const BitVector* sel) {
  double sum = 0;
  if (sel == nullptr) {
    for (size_t i = 0; i < n; ++i) sum += v[i];
    return sum;
  }
  for (size_t i = sel->FindNextSet(0); i < n; i = sel->FindNextSet(i + 1)) {
    sum += v[i];
  }
  return sum;
}

bool MinMaxInt64Selected(const int64_t* v, size_t n, const BitVector* sel,
                         int64_t* min, int64_t* max) {
  bool any = false;
  auto consider = [&](int64_t x) {
    if (!any) {
      *min = *max = x;
      any = true;
    } else {
      *min = std::min(*min, x);
      *max = std::max(*max, x);
    }
  };
  if (sel == nullptr) {
    for (size_t i = 0; i < n; ++i) consider(v[i]);
    return any;
  }
  for (size_t i = sel->FindNextSet(0); i < n; i = sel->FindNextSet(i + 1)) {
    consider(v[i]);
  }
  return any;
}

}  // namespace kernels
}  // namespace oltap
