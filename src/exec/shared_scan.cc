#include "exec/shared_scan.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace oltap {
namespace {

// Evaluates one query over chunk rows [lo, hi) directly on the segments.
void EvalChunk(const MainFragment& main, const SimpleAggQuery& q, size_t lo,
               size_t hi, ScanQueryResult* acc) {
  const ColumnSegment& filter = main.column(q.filter_col);
  const ColumnSegment& agg = main.column(q.agg_col);
  auto run = [&](auto cmp) {
    for (size_t i = lo; i < hi; ++i) {
      if (filter.IsNull(i)) continue;
      if (!cmp(filter.GetInt64(i))) continue;
      ++acc->count;
      if (!agg.IsNull(i)) {
        acc->sum += agg.type() == ValueType::kDouble
                        ? agg.GetDouble(i)
                        : static_cast<double>(agg.GetInt64(i));
      }
    }
  };
  int64_t c = q.constant;
  switch (q.op) {
    case CompareOp::kEq:
      run([c](int64_t x) { return x == c; });
      return;
    case CompareOp::kNe:
      run([c](int64_t x) { return x != c; });
      return;
    case CompareOp::kLt:
      run([c](int64_t x) { return x < c; });
      return;
    case CompareOp::kLe:
      run([c](int64_t x) { return x <= c; });
      return;
    case CompareOp::kGt:
      run([c](int64_t x) { return x > c; });
      return;
    case CompareOp::kGe:
      run([c](int64_t x) { return x >= c; });
      return;
  }
}

}  // namespace

std::vector<ScanQueryResult> ExecuteSharedOnce(
    const MainFragment& main, const std::vector<SimpleAggQuery>& queries,
    size_t chunk_rows) {
  std::vector<ScanQueryResult> results(queries.size());
  size_t n = main.num_rows();
  for (size_t lo = 0; lo < n; lo += chunk_rows) {
    size_t hi = std::min(n, lo + chunk_rows);
    // All queries visit the chunk while it is cache-resident.
    for (size_t q = 0; q < queries.size(); ++q) {
      EvalChunk(main, queries[q], lo, hi, &results[q]);
    }
  }
  return results;
}

std::vector<ScanQueryResult> ExecuteIndependent(
    const MainFragment& main, const std::vector<SimpleAggQuery>& queries) {
  std::vector<ScanQueryResult> results(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    EvalChunk(main, queries[q], 0, main.num_rows(), &results[q]);
  }
  return results;
}

ClockScanServer::ClockScanServer(const MainFragment* main, size_t chunk_rows)
    : main_(main),
      chunk_rows_(chunk_rows),
      num_chunks_((main->num_rows() + chunk_rows - 1) / chunk_rows) {
  OLTAP_CHECK(main_->num_rows() > 0) << "clock scan over empty fragment";
  thread_ = std::thread([this] { Loop(); });
}

ClockScanServer::~ClockScanServer() { Stop(); }

void ClockScanServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    cv_.notify_all();
  }
  thread_.join();
  // Fail any queries that never completed a rotation.
  for (auto& q : active_) {
    q->done.set_value(q->acc);
  }
  for (auto& q : pending_) {
    q->done.set_value(ScanQueryResult{});
  }
}

std::future<ScanQueryResult> ClockScanServer::Submit(
    const SimpleAggQuery& query) {
  auto aq = std::make_unique<ActiveQuery>();
  aq->query = query;
  aq->chunks_remaining = num_chunks_;
  std::future<ScanQueryResult> fut = aq->done.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(std::move(aq));
    cv_.notify_all();
  }
  static obs::Counter* attached =
      obs::MetricsRegistry::Default()->GetCounter("sharedscan.attached");
  attached->Add(1);
  return fut;
}

void ClockScanServer::ScanChunk(size_t lo, size_t hi) {
  for (auto& q : active_) {
    EvalChunk(*main_, q->query, lo, hi, &q->acc);
  }
}

void ClockScanServer::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Admit new queries at the chunk boundary (they attach at the
      // current clock position).
      while (!pending_.empty()) {
        active_.push_back(std::move(pending_.front()));
        pending_.pop_front();
      }
      if (active_.empty()) {
        cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      }
      if (stop_) return;
      if (active_.empty()) continue;
    }

    size_t lo = clock_pos_ * chunk_rows_;
    size_t hi = std::min(main_->num_rows(), lo + chunk_rows_);
    ScanChunk(lo, hi);
    chunks_scanned_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* chunks =
        obs::MetricsRegistry::Default()->GetCounter("sharedscan.chunks");
    chunks->Add(1);
    clock_pos_ = (clock_pos_ + 1) % num_chunks_;

    // Retire queries that completed a full rotation.
    std::vector<std::unique_ptr<ActiveQuery>> finished;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& q : active_) {
        if (--q->chunks_remaining == 0) finished.push_back(std::move(q));
      }
      active_.erase(std::remove(active_.begin(), active_.end(), nullptr),
                    active_.end());
    }
    for (auto& q : finished) {
      q->done.set_value(q->acc);
    }
  }
}

}  // namespace oltap
