#ifndef OLTAP_EXEC_EXECUTOR_H_
#define OLTAP_EXEC_EXECUTOR_H_

#include <vector>

#include "exec/expr.h"
#include "exec/operators.h"
#include "storage/column_store.h"

namespace oltap {

// The three query-execution models the tutorial surveys (E7):
//  - tuple-at-a-time: classic Volcano interpretation — materialize a Row,
//    walk the expression tree per tuple (MonetDB's foil; pre-vectorized
//    engines).
//  - vectorized: column-at-a-time primitives over batches / whole segments
//    (MonetDB/VectorWise lineage; what HANA/BLU scans do).
//  - fused: single-pass compiled loops standing in for LLVM codegen
//    (HyPer/Impala; see fused_kernels.h).
enum class ExecutionMode : uint8_t { kTupleAtATime, kVectorized, kFused };

const char* ExecutionModeToString(ExecutionMode m);

// The query shape used by the engine-comparison and shared-scan
// experiments: SELECT SUM(agg_col) FROM t WHERE filter_col <op> constant.
struct SimpleAggQuery {
  int filter_col = 0;
  CompareOp op = CompareOp::kLt;
  int64_t constant = 0;
  int agg_col = 0;
};

// Runs a SimpleAggQuery against a columnar main fragment in the requested
// execution mode. All three modes return identical results; only their
// instruction profiles differ.
double RunSimpleAgg(const MainFragment& main, const SimpleAggQuery& query,
                    ExecutionMode mode);

// Convenience: run an operator tree to completion and return all rows.
std::vector<Row> ExecutePlan(PhysicalOp* root);

}  // namespace oltap

#endif  // OLTAP_EXEC_EXECUTOR_H_
