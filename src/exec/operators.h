#ifndef OLTAP_EXEC_OPERATORS_H_
#define OLTAP_EXEC_OPERATORS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "exec/batch.h"
#include "exec/expr.h"
#include "obs/trace.h"
#include "storage/column_store.h"
#include "storage/table.h"

namespace oltap {

// Batch-iterator (vectorized Volcano) physical operator. Open() once, then
// NextBatch until it returns false. Single-threaded per pipeline; the
// scheduler layer runs whole queries on workers.
//
// Parents and the executor drive children through the instrumented
// OpenTimed/NextBatchTimed entry points, so every operator accumulates
// rows/batches/inclusive-time into op_stats() — the raw material of
// EXPLAIN ANALYZE (obs::QueryProfile). The cost is one clock read per
// batch (~2k rows), compiled out under OLTAP_OBS_DISABLED.
class PhysicalOp {
 public:
  virtual ~PhysicalOp() = default;
  virtual void Open() = 0;
  // Fills `out` (cleared first) with up to kDefaultBatchRows rows; returns
  // false when exhausted (out may still carry a final partial batch).
  virtual bool NextBatch(Batch* out) = 0;
  virtual std::vector<ValueType> OutputTypes() const = 0;
  // One-line self-description for EXPLAIN output.
  virtual std::string Describe() const = 0;
  // Child operators, for plan-tree rendering.
  virtual std::vector<const PhysicalOp*> Children() const { return {}; }

  // Instrumented pull API: Open + NextBatch with per-operator profiling.
  void OpenTimed();
  bool NextBatchTimed(Batch* out);
  const obs::OpStats& op_stats() const { return stats_; }

  // Optimizer annotations. Negative (the default) means "no estimate":
  // EXPLAIN omits the annotation entirely, which keeps non-optimized
  // plans rendering byte-for-byte as they always have.
  void set_estimates(double est_rows, double est_cost) {
    est_rows_ = est_rows;
    est_cost_ = est_cost;
  }
  double est_rows() const { return est_rows_; }
  double est_cost() const { return est_cost_; }

 protected:
  // Morsel-driven (fused) execution produces rows inside Drive() without
  // going through NextBatchTimed; parallel operators account what their
  // workers produced here so EXPLAIN ANALYZE row counts stay meaningful.
  void AccountDriven(size_t rows, size_t batches, uint64_t ns) {
    stats_.rows += rows;
    stats_.batches += batches;
    stats_.next_ns += ns;
  }

 private:
  obs::OpStats stats_;
  double est_rows_ = -1;
  double est_cost_ = -1;
};

// Renders the operator tree, one indented line per node (EXPLAIN).
std::string ExplainPlan(const PhysicalOp* root);

// Builds the EXPLAIN ANALYZE profile from an executed plan: the operator
// tree annotated with each node's op_stats(). Call after the plan has run
// through the instrumented pull API.
obs::QueryProfile BuildQueryProfile(const PhysicalOp* root);

using PhysicalOpPtr = std::unique_ptr<PhysicalOp>;

// Table scan with predicate pushdown. For columnar tables, the pushable
// (column <op> const) conjuncts run as packed-segment kernels with zone-map
// pruning, the residual predicate runs vectorized per batch, and only the
// projected columns of selected rows are gathered. Row tables fall back to
// a row-wise visible scan.
//
// `predicate` refers to columns by *table schema* index; `projection`
// selects and orders the output columns (empty = all columns).
class ScanOp final : public PhysicalOp {
 public:
  // Which mirror of a dual-format table to read. kAuto is the historical
  // behavior (column side whenever the format has one); the optimizer
  // resolves dual tables to an explicit side, and benches force the
  // wrong one to measure the access-path gap.
  enum class Path : uint8_t { kAuto, kRow, kColumn };

  ScanOp(const Table* table, Timestamp read_ts, ExprPtr predicate,
         std::vector<int> projection = {}, Path path = Path::kAuto);

  void Open() override;
  bool NextBatch(Batch* out) override;
  std::vector<ValueType> OutputTypes() const override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> Children() const override;

  // Scan statistics for tests/benches.
  size_t rows_scanned() const { return rows_scanned_; }
  size_t zones_pruned() const { return zones_pruned_; }
  const Table* table() const { return table_; }
  Path path() const { return path_; }

 private:
  void PrepareMainSelection();
  bool EmitMainBatch(Batch* out);
  bool EmitDeltaRows(Batch* out);

  const Table* table_;
  Timestamp read_ts_;
  ExprPtr predicate_;
  std::vector<int> projection_;
  Path path_ = Path::kAuto;
  std::vector<ValueType> out_types_;

  // Pushdown split (columnar path).
  std::vector<Expr::ColumnPredicate> pushed_;
  ExprPtr residual_;
  // Columns actually gathered from the main (projection ∪ residual refs),
  // and the schema-index → gathered-batch-position map.
  std::vector<int> needed_;
  std::vector<int> schema_to_batch_;
  ExprPtr residual_remapped_;  // residual with batch-position columns

  // Columnar scan state.
  bool columnar_ = false;
  std::optional<ColumnTable::Snapshot> snap_;
  BitVector main_sel_;
  size_t main_pos_ = 0;
  bool delta_done_ = false;
  std::vector<Row> pending_rows_;  // filtered delta (and row-table) rows
  size_t pending_pos_ = 0;
  bool row_scan_done_ = false;

  size_t rows_scanned_ = 0;
  size_t zones_pruned_ = 0;
};

// Residual filter (vectorized predicate + gather of passing rows).
class FilterOp final : public PhysicalOp {
 public:
  FilterOp(PhysicalOpPtr child, ExprPtr predicate);

  void Open() override;
  bool NextBatch(Batch* out) override;
  std::vector<ValueType> OutputTypes() const override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> Children() const override;

 private:
  PhysicalOpPtr child_;
  ExprPtr predicate_;
};

// Computes one output column per expression.
class ProjectOp final : public PhysicalOp {
 public:
  ProjectOp(PhysicalOpPtr child, std::vector<ExprPtr> exprs);

  void Open() override;
  bool NextBatch(Batch* out) override;
  std::vector<ValueType> OutputTypes() const override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> Children() const override;

 private:
  PhysicalOpPtr child_;
  std::vector<ExprPtr> exprs_;
};

// Aggregate function specification.
struct AggSpec {
  enum class Fn : uint8_t { kCountStar, kCount, kSum, kMin, kMax, kAvg };
  Fn fn = Fn::kCountStar;
  ExprPtr arg;  // null for COUNT(*)

  ValueType OutputType() const;
};

// The hash-aggregation state machine shared by the serial HashAggOp (one
// instance) and the morsel-parallel aggregate (one instance per morsel,
// merged in morsel order). Groups are kept in first-seen input order,
// which is what makes slot-ordered parallel merges reproduce the serial
// group order exactly.
class AggAccumulator {
 public:
  struct AggState {
    double sum = 0;
    int64_t isum = 0;
    int64_t count = 0;
    Value min, max;
    bool any = false;
  };
  struct Group {
    Row keys;
    std::vector<AggState> states;
  };

  AggAccumulator() = default;
  // Pointers must outlive the accumulator (the owning operator's members).
  AggAccumulator(const std::vector<ExprPtr>* group_exprs,
                 const std::vector<AggSpec>* aggs)
      : group_exprs_(group_exprs), aggs_(aggs) {}

  void Consume(const Batch& batch);
  // Folds `other` into this, treating its input as the stream suffix:
  // new groups append in other's first-seen order, MIN/MAX ties keep this
  // side's (earlier) value. Exact for COUNT / SUM over int64 / MIN / MAX;
  // float sums are order-sensitive, so the planner never merges those in
  // parallel.
  void MergeFrom(const AggAccumulator& other);
  Value Finalize(const AggSpec& spec, const AggState& st) const;

  const std::vector<Group>& groups() const { return groups_; }
  void Clear();

 private:
  const std::vector<ExprPtr>* group_exprs_ = nullptr;
  const std::vector<AggSpec>* aggs_ = nullptr;
  std::unordered_map<std::string, size_t> index_;
  std::vector<Group> groups_;
};

// Blocking hash aggregation: GROUP BY `group_exprs` with `aggs`. Output
// columns = group keys then aggregates. With no group keys, emits exactly
// one row (global aggregate; zero input rows yield COUNT=0 / NULL sums).
class HashAggOp final : public PhysicalOp {
 public:
  HashAggOp(PhysicalOpPtr child, std::vector<ExprPtr> group_exprs,
            std::vector<AggSpec> aggs);

  void Open() override;
  bool NextBatch(Batch* out) override;
  std::vector<ValueType> OutputTypes() const override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> Children() const override;

 private:
  PhysicalOpPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  AggAccumulator acc_{&group_exprs_, &aggs_};
  size_t emit_pos_ = 0;
  bool done_ = false;
};

// In-memory hash join (inner equi-join): materializes the build (left)
// side, streams the probe (right) side. Output = left columns ++ right
// columns.
class HashJoinOp final : public PhysicalOp {
 public:
  HashJoinOp(PhysicalOpPtr build, PhysicalOpPtr probe,
             std::vector<int> build_keys, std::vector<int> probe_keys);

  void Open() override;
  bool NextBatch(Batch* out) override;
  std::vector<ValueType> OutputTypes() const override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> Children() const override;

 private:
  PhysicalOpPtr build_;
  PhysicalOpPtr probe_;
  std::vector<int> build_keys_;
  std::vector<int> probe_keys_;

  std::vector<Row> build_rows_;
  // Matches per key in ascending build-row order: duplicate-key emission
  // order is then deterministic (unordered_multimap's equal_range order is
  // implementation-defined), which the parallel partitioned build
  // reproduces exactly.
  std::unordered_map<std::string, std::vector<size_t>> table_;
  Batch probe_batch_;
  size_t probe_pos_ = 0;
  bool probe_done_ = false;
};

// Full sort (blocking). keys = (output column index, descending?).
class SortOp final : public PhysicalOp {
 public:
  struct SortKey {
    int column;
    bool descending = false;
  };
  SortOp(PhysicalOpPtr child, std::vector<SortKey> keys);

  void Open() override;
  bool NextBatch(Batch* out) override;
  std::vector<ValueType> OutputTypes() const override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> Children() const override;

 private:
  PhysicalOpPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

// Fused ORDER BY + LIMIT: keeps only the top `limit` rows in a bounded
// heap while streaming the child — O(n log k) time and O(k) memory where
// the sort-then-limit pipeline pays O(n log n) / O(n). The planner emits
// this whenever a query has both clauses.
class TopNOp final : public PhysicalOp {
 public:
  TopNOp(PhysicalOpPtr child, std::vector<SortOp::SortKey> keys,
         size_t limit);

  void Open() override;
  bool NextBatch(Batch* out) override;
  std::vector<ValueType> OutputTypes() const override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> Children() const override;

 private:
  // True if a precedes b in the requested order.
  bool Before(const Row& a, const Row& b) const;

  PhysicalOpPtr child_;
  std::vector<SortOp::SortKey> keys_;
  size_t limit_;
  std::vector<Row> heap_;  // max-heap on Before (worst row at front)
  size_t pos_ = 0;
  bool done_ = false;
};

class LimitOp final : public PhysicalOp {
 public:
  LimitOp(PhysicalOpPtr child, size_t limit);

  void Open() override;
  bool NextBatch(Batch* out) override;
  std::vector<ValueType> OutputTypes() const override;
  std::string Describe() const override;
  std::vector<const PhysicalOp*> Children() const override;

 private:
  PhysicalOpPtr child_;
  size_t limit_;
  size_t emitted_ = 0;
};

// Runs an operator tree to completion, collecting all rows.
std::vector<Row> CollectRows(PhysicalOp* op);

// Serialized group-key encoding shared by aggregation and join (distinct
// from storage key encoding: order is irrelevant, only equality).
std::string HashKeyOf(const Row& values);

// Collects the column indices an expression references (with duplicates).
void CollectExprColumns(const ExprPtr& e, std::vector<int>* out);

// Rewrites column references through `remap` (old index → new index).
ExprPtr RemapExprColumns(const ExprPtr& e, const std::vector<int>& remap);

}  // namespace oltap

#endif  // OLTAP_EXEC_OPERATORS_H_
