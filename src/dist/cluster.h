#ifndef OLTAP_DIST_CLUSTER_H_
#define OLTAP_DIST_CLUSTER_H_

#include <deque>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "dist/raft.h"

namespace oltap {

// Deterministic step-driven harness around a set of RaftNodes: simulated
// message delivery with bounded random delay, optional message loss, node
// crashes, and network partitions. Drives all safety/liveness tests and
// lets the partition layer replicate without threads.
class RaftCluster {
 public:
  struct Options {
    int num_nodes = 3;
    uint64_t seed = 42;
    int election_timeout_ticks = 10;
    int max_delivery_delay_steps = 2;  // uniform in [1, max]
    double drop_probability = 0.0;
    // Chance a sent message is delivered twice (with independent delays).
    // Raft must tolerate duplicates by construction; this fault makes the
    // tests prove it.
    double duplicate_probability = 0.0;
  };

  explicit RaftCluster(const Options& options);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  RaftNode* node(int i) { return nodes_[i].get(); }

  // Advances the simulation by `steps`: each step ticks every live node,
  // collects outboxes, and delivers due messages (respecting crashes,
  // partitions, and drops).
  void Step(int steps = 1);

  // Runs steps until some node is leader (and a majority agrees on its
  // term), up to `max_steps`. Returns the leader id or -1.
  int AwaitLeader(int max_steps = 500);

  // Current leader id (highest term wins; -1 if none visible).
  int LeaderId() const;

  // Proposes through the current leader; false if no leader.
  bool Propose(const std::string& payload);

  // Crash / restart (restart loses volatile state but keeps the log —
  // this harness keeps nodes in memory, so "crash" just stops delivery
  // and ticking).
  void SetNodeDown(int id);
  void SetNodeUp(int id);
  bool IsDown(int id) const { return down_.count(id) > 0; }

  // Partitions the cluster into two halves: links between `group` and the
  // rest are cut. Heal() restores full connectivity.
  void PartitionAway(const std::set<int>& group);
  void Heal();

  // Entries committed (applied) at node i, in order.
  const std::vector<RaftLogEntry>& CommittedAt(int i) const {
    return committed_[i];
  }

  // Verifies the Log Matching / State Machine Safety property: every pair
  // of nodes agrees on the committed prefix. Returns false on divergence.
  bool CheckCommittedPrefixConsistency() const;

  uint64_t messages_delivered() const { return delivered_; }
  uint64_t messages_dropped() const { return dropped_; }
  uint64_t messages_duplicated() const { return duplicated_; }

 private:
  struct InFlight {
    uint64_t deliver_at;
    RaftMessage msg;
  };

  bool LinkBlocked(int from, int to) const;

  Options options_;
  Rng rng_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  std::vector<std::vector<RaftLogEntry>> committed_;
  std::deque<InFlight> in_flight_;
  std::set<int> down_;
  std::set<int> partition_group_;
  bool partitioned_ = false;
  uint64_t now_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  uint64_t duplicated_ = 0;
};

}  // namespace oltap

#endif  // OLTAP_DIST_CLUSTER_H_
