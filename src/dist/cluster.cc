#include "dist/cluster.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace oltap {

RaftCluster::RaftCluster(const Options& options)
    : options_(options), rng_(options.seed) {
  OLTAP_CHECK(options.num_nodes >= 1);
  nodes_.reserve(options.num_nodes);
  committed_.resize(options.num_nodes);
  for (int i = 0; i < options.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<RaftNode>(
        i, options.num_nodes, options.seed + 1000 + i,
        options.election_timeout_ticks));
  }
}

bool RaftCluster::LinkBlocked(int from, int to) const {
  if (down_.count(from) > 0 || down_.count(to) > 0) return true;
  if (!partitioned_) return false;
  bool from_in = partition_group_.count(from) > 0;
  bool to_in = partition_group_.count(to) > 0;
  return from_in != to_in;
}

void RaftCluster::Step(int steps) {
  for (int s = 0; s < steps; ++s) {
    ++now_;
    // Tick live nodes and collect their output.
    for (auto& node : nodes_) {
      if (down_.count(node->id()) > 0) continue;
      node->Tick();
    }
    for (auto& node : nodes_) {
      if (down_.count(node->id()) > 0) continue;
      for (RaftMessage& m : node->TakeOutbox()) {
        static obs::Counter* raft_messages =
            obs::MetricsRegistry::Default()->GetCounter("raft.messages");
        raft_messages->Add(1);
        if (options_.drop_probability > 0 &&
            rng_.Bernoulli(options_.drop_probability)) {
          ++dropped_;
          continue;
        }
        uint64_t max_delay = static_cast<uint64_t>(
            std::max(1, options_.max_delivery_delay_steps));
        if (options_.duplicate_probability > 0 &&
            rng_.Bernoulli(options_.duplicate_probability)) {
          uint64_t dup_delay = 1 + rng_.Uniform(max_delay);
          in_flight_.push_back(InFlight{now_ + dup_delay, m});
          ++duplicated_;
        }
        uint64_t delay = 1 + rng_.Uniform(max_delay);
        in_flight_.push_back(InFlight{now_ + delay, std::move(m)});
      }
    }
    // Deliver due messages.
    size_t n = in_flight_.size();
    for (size_t i = 0; i < n; ++i) {
      InFlight f = std::move(in_flight_.front());
      in_flight_.pop_front();
      if (f.deliver_at > now_) {
        in_flight_.push_back(std::move(f));
        continue;
      }
      if (LinkBlocked(f.msg.from, f.msg.to)) {
        ++dropped_;
        continue;
      }
      ++delivered_;
      nodes_[f.msg.to]->Receive(f.msg);
    }
    // Drain newly committed entries into the per-node applied logs.
    for (auto& node : nodes_) {
      for (RaftLogEntry& e : node->TakeNewlyCommitted()) {
        committed_[node->id()].push_back(std::move(e));
      }
    }
  }
}

int RaftCluster::LeaderId() const {
  int leader = -1;
  uint64_t best_term = 0;
  for (const auto& node : nodes_) {
    if (down_.count(node->id()) > 0) continue;
    if (node->role() == RaftNode::Role::kLeader && node->term() >= best_term) {
      best_term = node->term();
      leader = node->id();
    }
  }
  return leader;
}

int RaftCluster::AwaitLeader(int max_steps) {
  for (int s = 0; s < max_steps; ++s) {
    int leader = LeaderId();
    if (leader >= 0) return leader;
    Step(1);
  }
  return LeaderId();
}

bool RaftCluster::Propose(const std::string& payload) {
  int leader = LeaderId();
  if (leader < 0) return false;
  return nodes_[leader]->Propose(payload);
}

void RaftCluster::SetNodeDown(int id) { down_.insert(id); }
void RaftCluster::SetNodeUp(int id) { down_.erase(id); }

void RaftCluster::PartitionAway(const std::set<int>& group) {
  partitioned_ = true;
  partition_group_ = group;
}

void RaftCluster::Heal() {
  partitioned_ = false;
  partition_group_.clear();
}

bool RaftCluster::CheckCommittedPrefixConsistency() const {
  for (size_t a = 0; a < committed_.size(); ++a) {
    for (size_t b = a + 1; b < committed_.size(); ++b) {
      size_t n = std::min(committed_[a].size(), committed_[b].size());
      for (size_t i = 0; i < n; ++i) {
        if (!(committed_[a][i] == committed_[b][i])) return false;
      }
    }
  }
  return true;
}

}  // namespace oltap
