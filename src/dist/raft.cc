#include "dist/raft.h"

#include <algorithm>

#include "common/logging.h"

namespace oltap {

RaftNode::RaftNode(int id, int cluster_size, uint64_t seed,
                   int election_timeout_ticks)
    : id_(id),
      cluster_size_(cluster_size),
      election_timeout_(election_timeout_ticks),
      rng_(seed ^ static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ULL),
      next_index_(cluster_size, 1),
      match_index_(cluster_size, 0) {
  OLTAP_CHECK(cluster_size >= 1);
  ResetElectionTimer();
}

void RaftNode::ResetElectionTimer() {
  ticks_since_heard_ = 0;
  current_timeout_ =
      election_timeout_ +
      static_cast<int>(rng_.Uniform(static_cast<uint64_t>(election_timeout_)));
}

void RaftNode::BecomeFollower(uint64_t term) {
  role_ = Role::kFollower;
  if (term > term_) {
    term_ = term;
    voted_for_ = -1;
  }
  ResetElectionTimer();
}

void RaftNode::BecomeCandidate() {
  role_ = Role::kCandidate;
  ++term_;
  voted_for_ = id_;
  votes_from_ = {id_};  // self-vote
  ResetElectionTimer();
  if (cluster_size_ == 1) {
    BecomeLeader();
    return;
  }
  for (int peer = 0; peer < cluster_size_; ++peer) {
    if (peer == id_) continue;
    RaftMessage m;
    m.type = RaftMessage::Type::kRequestVote;
    m.from = id_;
    m.to = peer;
    m.term = term_;
    m.last_log_index = last_log_index();
    m.last_log_term = TermAt(last_log_index());
    outbox_.push_back(std::move(m));
  }
}

void RaftNode::BecomeLeader() {
  role_ = Role::kLeader;
  ticks_since_heartbeat_ = 0;
  for (int p = 0; p < cluster_size_; ++p) {
    next_index_[p] = last_log_index() + 1;
    match_index_[p] = 0;
  }
  match_index_[id_] = last_log_index();
  BroadcastAppendEntries();
}

void RaftNode::SendAppendEntries(int peer) {
  RaftMessage m;
  m.type = RaftMessage::Type::kAppendEntries;
  m.from = id_;
  m.to = peer;
  m.term = term_;
  m.prev_log_index = next_index_[peer] - 1;
  m.prev_log_term = TermAt(m.prev_log_index);
  m.leader_commit = commit_index_;
  for (uint64_t i = next_index_[peer]; i <= last_log_index(); ++i) {
    m.entries.push_back(log_[i - 1]);
  }
  outbox_.push_back(std::move(m));
}

void RaftNode::BroadcastAppendEntries() {
  for (int peer = 0; peer < cluster_size_; ++peer) {
    if (peer != id_) SendAppendEntries(peer);
  }
  ticks_since_heartbeat_ = 0;
}

void RaftNode::Tick() {
  if (role_ == Role::kLeader) {
    if (++ticks_since_heartbeat_ >= std::max(1, election_timeout_ / 3)) {
      BroadcastAppendEntries();
    }
    return;
  }
  if (++ticks_since_heard_ >= current_timeout_) {
    BecomeCandidate();
  }
}

bool RaftNode::Propose(std::string payload) {
  if (role_ != Role::kLeader) return false;
  log_.push_back(RaftLogEntry{term_, std::move(payload)});
  match_index_[id_] = last_log_index();
  if (cluster_size_ == 1) {
    MaybeAdvanceCommit();
  } else {
    BroadcastAppendEntries();
  }
  return true;
}

void RaftNode::MaybeAdvanceCommit() {
  // Find the highest N > commit_index replicated on a majority with
  // log[N].term == current term (Raft's commitment rule).
  for (uint64_t n = last_log_index(); n > commit_index_; --n) {
    if (TermAt(n) != term_) break;
    int count = 0;
    for (int p = 0; p < cluster_size_; ++p) {
      if (match_index_[p] >= n) ++count;
    }
    if (count * 2 > cluster_size_) {
      commit_index_ = n;
      break;
    }
  }
}

void RaftNode::Receive(const RaftMessage& msg) {
  if (msg.term > term_) BecomeFollower(msg.term);

  switch (msg.type) {
    case RaftMessage::Type::kRequestVote: {
      RaftMessage reply;
      reply.type = RaftMessage::Type::kVoteReply;
      reply.from = id_;
      reply.to = msg.from;
      reply.term = term_;
      bool log_ok =
          msg.last_log_term > TermAt(last_log_index()) ||
          (msg.last_log_term == TermAt(last_log_index()) &&
           msg.last_log_index >= last_log_index());
      if (msg.term == term_ && log_ok &&
          (voted_for_ == -1 || voted_for_ == msg.from)) {
        voted_for_ = msg.from;
        reply.granted = true;
        ResetElectionTimer();
      } else {
        reply.granted = false;
      }
      outbox_.push_back(std::move(reply));
      return;
    }
    case RaftMessage::Type::kVoteReply: {
      if (role_ != Role::kCandidate || msg.term != term_) return;
      if (msg.granted) {
        votes_from_.insert(msg.from);
        if (static_cast<int>(votes_from_.size()) * 2 > cluster_size_) {
          BecomeLeader();
        }
      }
      return;
    }
    case RaftMessage::Type::kAppendEntries: {
      RaftMessage reply;
      reply.type = RaftMessage::Type::kAppendReply;
      reply.from = id_;
      reply.to = msg.from;
      reply.term = term_;
      if (msg.term < term_) {
        reply.success = false;
        outbox_.push_back(std::move(reply));
        return;
      }
      // Valid leader for this term.
      if (role_ != Role::kFollower) role_ = Role::kFollower;
      ResetElectionTimer();
      if (msg.prev_log_index > last_log_index() ||
          TermAt(msg.prev_log_index) != msg.prev_log_term) {
        reply.success = false;
        outbox_.push_back(std::move(reply));
        return;
      }
      // Append, truncating conflicts.
      uint64_t index = msg.prev_log_index;
      for (const RaftLogEntry& e : msg.entries) {
        ++index;
        if (index <= last_log_index()) {
          if (TermAt(index) != e.term) {
            log_.resize(index - 1);  // conflict: drop it and everything after
            log_.push_back(e);
          }
        } else {
          log_.push_back(e);
        }
      }
      if (msg.leader_commit > commit_index_) {
        commit_index_ = std::min(msg.leader_commit, last_log_index());
      }
      reply.success = true;
      reply.match_index = msg.prev_log_index + msg.entries.size();
      outbox_.push_back(std::move(reply));
      return;
    }
    case RaftMessage::Type::kAppendReply: {
      if (role_ != Role::kLeader || msg.term != term_) return;
      if (msg.success) {
        match_index_[msg.from] =
            std::max(match_index_[msg.from], msg.match_index);
        next_index_[msg.from] = match_index_[msg.from] + 1;
        MaybeAdvanceCommit();
      } else {
        // Back off and retry.
        if (next_index_[msg.from] > 1) --next_index_[msg.from];
        SendAppendEntries(msg.from);
      }
      return;
    }
  }
}

std::vector<RaftMessage> RaftNode::TakeOutbox() {
  std::vector<RaftMessage> out;
  out.swap(outbox_);
  return out;
}

std::vector<RaftLogEntry> RaftNode::TakeNewlyCommitted() {
  std::vector<RaftLogEntry> out;
  while (applied_index_ < commit_index_) {
    ++applied_index_;
    out.push_back(log_[applied_index_ - 1]);
  }
  return out;
}

}  // namespace oltap
