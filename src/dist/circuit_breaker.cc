#include "dist/circuit_breaker.h"

#include "common/logging.h"

namespace oltap {

CircuitBreaker::CircuitBreaker(const Options& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : SystemClock::Get()) {
  OLTAP_CHECK(options_.failure_threshold >= 1);
  OLTAP_CHECK(options_.half_open_probes >= 1);
}

void CircuitBreaker::MaybePromoteLocked(int64_t now_us) {
  if (state_ == State::kOpen &&
      now_us - opened_at_us_ >= options_.open_cooldown_us) {
    state_ = State::kHalfOpen;
    probes_in_flight_ = 0;
  }
}

Status CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  MaybePromoteLocked(clock_->NowMicros());
  switch (state_) {
    case State::kClosed:
      return Status::OK();
    case State::kOpen:
      rejected_.Add(1);
      return Status::Unavailable("circuit breaker open");
    case State::kHalfOpen:
      if (probes_in_flight_ >= options_.half_open_probes) {
        rejected_.Add(1);
        return Status::Unavailable("circuit breaker half-open, probe budget used");
      }
      ++probes_in_flight_;
      return Status::OK();
  }
  return Status::OK();
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  probes_in_flight_ = 0;
  // Any success closes the breaker: in half-open it is the probe that
  // proves recovery; in closed it just clears the failure streak.
  state_ = State::kClosed;
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: the node is still dead, restart the cooldown.
    state_ = State::kOpen;
    opened_at_us_ = clock_->NowMicros();
    probes_in_flight_ = 0;
    return;
  }
  if (state_ == State::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_us_ = clock_->NowMicros();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Report promotion lazily so observers see half-open once the cooldown
  // elapsed even if no call has arrived yet.
  auto* self = const_cast<CircuitBreaker*>(this);
  self->MaybePromoteLocked(clock_->NowMicros());
  return state_;
}

const char* CircuitBreakerStateToString(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreakerSet::CircuitBreakerSet(int num_nodes,
                                     const CircuitBreaker::Options& options) {
  OLTAP_CHECK(num_nodes >= 1);
  breakers_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(options));
  }
}

Status CircuitBreakerSet::Allow(int node) {
  Status st = breakers_[node]->Allow();
  if (!st.ok()) {
    static obs::Counter* rejected =
        obs::MetricsRegistry::Default()->GetCounter("dist.breaker.rejected");
    rejected->Add(1);
  }
  return st;
}

void CircuitBreakerSet::RecordSuccess(int node) {
  breakers_[node]->RecordSuccess();
  SyncGauge();
}

void CircuitBreakerSet::RecordFailure(int node) {
  CircuitBreaker::State before = breakers_[node]->state();
  breakers_[node]->RecordFailure();
  if (before != CircuitBreaker::State::kOpen &&
      breakers_[node]->state() == CircuitBreaker::State::kOpen) {
    static obs::Counter* trips =
        obs::MetricsRegistry::Default()->GetCounter("dist.breaker.trips");
    trips->Add(1);
  }
  SyncGauge();
}

int CircuitBreakerSet::open_count() const {
  int open = 0;
  for (const auto& b : breakers_) {
    if (b->state() == CircuitBreaker::State::kOpen) ++open;
  }
  return open;
}

void CircuitBreakerSet::SyncGauge() {
  static obs::Gauge* open_gauge =
      obs::MetricsRegistry::Default()->GetGauge("dist.breaker_open");
  open_gauge->Set(open_count());
}

}  // namespace oltap
