#include "dist/network.h"

#include <chrono>
#include <thread>

namespace oltap {

void SimulatedNetwork::Transfer(int from, int to, size_t bytes) {
  if (from == to) return;
  messages_.Add(1);
  bytes_.Add(bytes);
  static obs::Counter* global_messages =
      obs::MetricsRegistry::Default()->GetCounter("net.messages");
  static obs::Counter* global_bytes =
      obs::MetricsRegistry::Default()->GetCounter("net.bytes");
  global_messages->Add(1);
  global_bytes->Add(bytes);
  int64_t us = options_.base_latency_us +
               options_.per_kb_us * static_cast<int64_t>(bytes / 1024);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void SimulatedNetwork::RoundTrip(int from, int to, size_t request_bytes,
                                 size_t reply_bytes) {
  Transfer(from, to, request_bytes);
  Transfer(to, from, reply_bytes);
}

}  // namespace oltap
