#include "dist/network.h"

#include <chrono>
#include <thread>

namespace oltap {
namespace {

struct NetCounters {
  obs::Counter* messages;
  obs::Counter* bytes;
  obs::Counter* dropped;
  obs::Counter* duplicated;
};

NetCounters& GlobalNetCounters() {
  static NetCounters c = {
      obs::MetricsRegistry::Default()->GetCounter("net.messages"),
      obs::MetricsRegistry::Default()->GetCounter("net.bytes"),
      obs::MetricsRegistry::Default()->GetCounter("net.dropped"),
      obs::MetricsRegistry::Default()->GetCounter("net.duplicated"),
  };
  return c;
}

}  // namespace

bool SimulatedNetwork::LinkCut(int from, int to) const {
  if (down_.count(from) > 0 || down_.count(to) > 0) return true;
  if (!partitioned_) return false;
  if (cut_from_.count(from) > 0 && cut_to_.count(to) > 0) return true;
  if (!one_way_ && cut_from_.count(to) > 0 && cut_to_.count(from) > 0) {
    return true;
  }
  return false;
}

bool SimulatedNetwork::Deliver(int from, int to, size_t bytes) {
  if (from == to) return true;
  NetCounters& global = GlobalNetCounters();
  messages_.Add(1);
  bytes_.Add(bytes);
  global.messages->Add(1);
  global.bytes->Add(bytes);

  int64_t extra_us = 0;
  bool delivered = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (LinkCut(from, to)) {
      delivered = false;
    } else if (faults_active_) {
      if (faults_.drop_probability > 0 &&
          rng_.Bernoulli(faults_.drop_probability)) {
        delivered = false;
      } else if (faults_.duplicate_probability > 0 &&
                 rng_.Bernoulli(faults_.duplicate_probability)) {
        // The duplicate travels in parallel — it shows up in the traffic
        // counters (receivers must tolerate redelivery) but adds no
        // serial latency to the sender.
        duplicated_.Add(1);
        global.duplicated->Add(1);
      }
      if (faults_.jitter_us > 0) {
        extra_us = static_cast<int64_t>(
            rng_.Uniform(static_cast<uint64_t>(faults_.jitter_us) + 1));
      }
    }
  }
  // The cost is charged whether or not the message arrives: a sender
  // facing a dead link burns the same wall-clock waiting for silence.
  int64_t us = options_.base_latency_us +
               options_.per_kb_us * static_cast<int64_t>(bytes / 1024) +
               extra_us;
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
  if (!delivered) {
    dropped_.Add(1);
    global.dropped->Add(1);
  }
  return delivered;
}

void SimulatedNetwork::Transfer(int from, int to, size_t bytes) {
  Deliver(from, to, bytes);
}

void SimulatedNetwork::RoundTrip(int from, int to, size_t request_bytes,
                                 size_t reply_bytes) {
  Transfer(from, to, request_bytes);
  Transfer(to, from, reply_bytes);
}

Status SimulatedNetwork::TryTransfer(int from, int to, size_t bytes) {
  if (!Deliver(from, to, bytes)) {
    return Status::Unavailable("message lost: node " + std::to_string(from) +
                               " -> node " + std::to_string(to));
  }
  return Status::OK();
}

Status SimulatedNetwork::TryRoundTrip(int from, int to, size_t request_bytes,
                                      size_t reply_bytes) {
  OLTAP_RETURN_NOT_OK(TryTransfer(from, to, request_bytes));
  return TryTransfer(to, from, reply_bytes);
}

void SimulatedNetwork::SetFaults(const FaultOptions& faults) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_ = faults;
  faults_active_ = true;
  rng_ = Rng(faults.seed);
}

void SimulatedNetwork::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  faults_active_ = false;
}

void SimulatedNetwork::Partition(const std::set<int>& group_a,
                                 const std::set<int>& group_b) {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_ = true;
  one_way_ = false;
  cut_from_ = group_a;
  cut_to_ = group_b;
}

void SimulatedNetwork::PartitionOneWay(const std::set<int>& from_group,
                                       const std::set<int>& to_group) {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_ = true;
  one_way_ = true;
  cut_from_ = from_group;
  cut_to_ = to_group;
}

void SimulatedNetwork::Heal() {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_ = false;
  one_way_ = false;
  cut_from_.clear();
  cut_to_.clear();
}

void SimulatedNetwork::SetNodeDown(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  down_.insert(node);
}

void SimulatedNetwork::SetNodeUp(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  down_.erase(node);
}

bool SimulatedNetwork::Reachable(int from, int to) const {
  if (from == to) return true;
  std::lock_guard<std::mutex> lock(mu_);
  return !LinkCut(from, to);
}

}  // namespace oltap
