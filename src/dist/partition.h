#ifndef OLTAP_DIST_PARTITION_H_
#define OLTAP_DIST_PARTITION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dist/network.h"
#include "storage/column_store.h"
#include "storage/row.h"
#include "storage/schema.h"

namespace oltap {

// Scale-out engine in the Kudu/MemSQL mold (E10): one logical table hash-
// partitioned into tablets, each tablet synchronously replicated on
// `replication_factor` nodes (leader + followers), writes routed by key
// hash, analytics executed scatter-gather across tablet leaders. Network
// hops go through SimulatedNetwork; per-tablet application is serialized
// the way a per-tablet Raft log serializes it (the consensus protocol
// itself is implemented and tested separately in dist/raft.h — here its
// cost model is one replication round trip per write batch).
class DistributedEngine {
 public:
  struct Options {
    int num_nodes = 4;
    int num_partitions = 16;
    int replication_factor = 3;  // clamped to num_nodes
    SimulatedNetwork::Options net;
  };

  DistributedEngine(Schema schema, const Options& options);

  int num_nodes() const { return options_.num_nodes; }
  int num_partitions() const { return options_.num_partitions; }
  int replication_factor() const { return rf_; }

  int PartitionOf(const std::string& key) const;
  int LeaderNode(int partition) const {
    return partition % options_.num_nodes;
  }
  std::vector<int> ReplicaNodes(int partition) const;

  // Routed write from a client co-located with `client_node`: one client→
  // leader round trip plus one leader→follower replication round trip.
  Status InsertFrom(int client_node, const Row& row);
  Status UpdateFrom(int client_node, const Row& new_row);
  Status DeleteFrom(int client_node, const Row& key_row);

  // Routed point read (leader read, one round trip).
  bool LookupFrom(int client_node, const Row& key_row, Row* out);

  // Scatter-gather SUM(agg_col) WHERE filter_col <op> constant over every
  // tablet leader, one worker thread per node, one round trip per node.
  double SumWhere(int filter_col, CompareOp op, int64_t constant,
                  int agg_col);

  // Total rows visible across tablet leaders (scatter-gather COUNT).
  size_t TotalRows();

  // Verifies every follower replica holds exactly the leader's data
  // (replication safety check used by tests).
  bool CheckReplicasConsistent();

  SimulatedNetwork* network() { return &net_; }
  Timestamp current_ts() const {
    return next_ts_.load(std::memory_order_acquire) - 1;
  }

 private:
  struct Tablet {
    std::mutex mu;  // stands in for the tablet's Raft log serialization
    std::vector<std::unique_ptr<ColumnTable>> replicas;  // [0] = leader
  };

  static size_t ApproxRowBytes(const Row& row);
  Timestamp NextTs() {
    return next_ts_.fetch_add(1, std::memory_order_acq_rel);
  }

  Schema schema_;
  Options options_;
  int rf_;
  SimulatedNetwork net_;
  std::vector<std::unique_ptr<Tablet>> tablets_;
  std::atomic<Timestamp> next_ts_{1};
};

}  // namespace oltap

#endif  // OLTAP_DIST_PARTITION_H_
