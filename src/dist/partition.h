#ifndef OLTAP_DIST_PARTITION_H_
#define OLTAP_DIST_PARTITION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "common/types.h"
#include "dist/circuit_breaker.h"
#include "dist/network.h"
#include "storage/column_store.h"
#include "storage/row.h"
#include "storage/schema.h"

namespace oltap {

// Scale-out engine in the Kudu/MemSQL mold (E10): one logical table hash-
// partitioned into tablets, each tablet synchronously replicated on
// `replication_factor` nodes (leader + followers), writes routed by key
// hash, analytics executed scatter-gather across tablet leaders. Network
// hops go through SimulatedNetwork; per-tablet application is serialized
// the way a per-tablet Raft log serializes it (the consensus protocol
// itself is implemented and tested separately in dist/raft.h — here its
// cost model is one replication round trip per write batch).
//
// Partition tolerance (PR 4): every RPC runs through a per-node circuit
// breaker plus bounded retry with exponential backoff and a deadline
// (common/retry.h). Writes commit only when the leader can ack a majority
// of replicas — a client stranded in a minority partition gets
// kUnavailable and *no* state change, so an OK result always means the
// write is durable on a quorum (the invariant the chaos torture test
// asserts). When a tablet's leader is unreachable, writes and reads fail
// over to a caught-up surviving replica (leader re-election stand-in;
// real elections are exercised in dist/cluster.h). Reads may additionally
// fall back to a *stale* follower within `max_read_staleness` logical
// timestamps. Followers that missed writes during a partition are caught
// up from the tablet op log on the next contact or via CatchUpReplicas().
class DistributedEngine {
 public:
  struct Options {
    int num_nodes = 4;
    int num_partitions = 16;
    int replication_factor = 3;  // clamped to num_nodes
    SimulatedNetwork::Options net;
    // Fault-tolerance knobs (inert on a fault-free fabric: the breaker
    // never trips and every RPC succeeds on its first attempt).
    RetryPolicy rpc_retry;
    CircuitBreaker::Options breaker;
    // FailoverLookup: max logical-timestamp lag tolerated when reading
    // from a follower because the leader is unreachable (0 = only fully
    // caught-up replicas may serve failover reads).
    int64_t max_read_staleness = 0;
  };

  DistributedEngine(Schema schema, const Options& options);

  int num_nodes() const { return options_.num_nodes; }
  int num_partitions() const { return options_.num_partitions; }
  int replication_factor() const { return rf_; }

  int PartitionOf(const std::string& key) const;
  // Static home node of the tablet (replica 0); leadership may have
  // failed over — see CurrentLeaderNode.
  int LeaderNode(int partition) const {
    return partition % options_.num_nodes;
  }
  int CurrentLeaderNode(int partition);
  std::vector<int> ReplicaNodes(int partition) const;

  // Routed write from a client co-located with `client_node`: one client→
  // leader round trip plus one leader→follower replication round trip.
  // Under faults: kUnavailable once the retry budget and failover
  // candidates are exhausted, or when no write quorum is reachable.
  Status InsertFrom(int client_node, const Row& row);
  Status UpdateFrom(int client_node, const Row& new_row);
  Status DeleteFrom(int client_node, const Row& key_row);

  // Routed point read (leader read, one round trip). Fault-oblivious:
  // always reaches the leader replica (kept for fault-free callers).
  bool LookupFrom(int client_node, const Row& key_row, Row* out);

  // Fault-aware point read: tries the tablet leader, then fails over to a
  // surviving replica within the staleness bound. kNotFound when reached
  // but absent; kUnavailable when no eligible replica is reachable.
  Result<Row> FailoverLookup(int client_node, const Row& key_row);

  // Replays the tablet op log into every replica that is currently
  // reachable from the tablet's leader (post-heal convergence; also runs
  // incrementally whenever a write contacts a lagging follower).
  void CatchUpReplicas();

  // Scatter-gather SUM(agg_col) WHERE filter_col <op> constant over every
  // tablet leader, one worker thread per node, one round trip per node.
  double SumWhere(int filter_col, CompareOp op, int64_t constant,
                  int agg_col);

  // Total rows visible across tablet leaders (scatter-gather COUNT).
  size_t TotalRows();

  // Verifies every follower replica holds exactly the leader's data
  // (replication safety check used by tests).
  bool CheckReplicasConsistent();

  SimulatedNetwork* network() { return &net_; }
  CircuitBreakerSet* breakers() { return &breakers_; }
  Timestamp current_ts() const {
    return next_ts_.load(std::memory_order_acquire) - 1;
  }

  uint64_t leader_failovers() const {
    return leader_failovers_.load(std::memory_order_relaxed);
  }
  uint64_t read_failovers() const {
    return read_failovers_.load(std::memory_order_relaxed);
  }
  uint64_t quorum_failures() const {
    return quorum_failures_.load(std::memory_order_relaxed);
  }
  uint64_t rpc_retries() const {
    return rpc_retries_.load(std::memory_order_relaxed);
  }

 private:
  // One committed mutation in a tablet's replicated log. Replicas that
  // miss the synchronous apply (unreachable during a partition) replay
  // from here when they become reachable again.
  struct Op {
    enum class Kind : uint8_t { kInsert, kUpdate, kDelete };
    Kind kind;
    std::string key;
    Row row;
    Timestamp ts;
  };

  struct Tablet {
    std::mutex mu;  // stands in for the tablet's Raft log serialization
    std::vector<std::unique_ptr<ColumnTable>> replicas;  // [0] = home leader
    std::vector<size_t> applied;        // ops applied, per replica
    std::vector<Timestamp> applied_ts;  // high-water ts, per replica
    std::vector<Op> log;                // committed ops, in ts order
    int leader_r = 0;                   // current leader's replica index
  };

  static size_t ApproxRowBytes(const Row& row);
  Timestamp NextTs() {
    return next_ts_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Round-trip RPC with circuit breaker + bounded backoff/deadline retry.
  Status Rpc(int from, int to, size_t request_bytes, size_t reply_bytes);

  // Shared routed-write path. Caller passes the already-encoded key.
  Status ReplicatedWrite(int client_node, Op::Kind kind, std::string key,
                         const Row& row);
  // Promotes a caught-up, reachable replica to tablet leader. Caller
  // holds tablet.mu.
  Status FailoverLeaderLocked(int partition, Tablet& tablet, int client_node);
  // Replays tablet.log[applied[r]..] into replica r. Caller holds
  // tablet.mu.
  void ApplyLogLocked(Tablet& tablet, int r);

  Schema schema_;
  Options options_;
  int rf_;
  SimulatedNetwork net_;
  CircuitBreakerSet breakers_;
  std::vector<std::unique_ptr<Tablet>> tablets_;
  std::atomic<Timestamp> next_ts_{1};
  std::atomic<uint64_t> leader_failovers_{0};
  std::atomic<uint64_t> read_failovers_{0};
  std::atomic<uint64_t> quorum_failures_{0};
  std::atomic<uint64_t> rpc_retries_{0};
};

}  // namespace oltap

#endif  // OLTAP_DIST_PARTITION_H_
