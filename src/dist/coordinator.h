#ifndef OLTAP_DIST_COORDINATOR_H_
#define OLTAP_DIST_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "dist/circuit_breaker.h"
#include "dist/network.h"

namespace oltap {

// Two-phase commit coordinator for distributed transactions spanning
// multiple tablet leaders (the classic protocol Oracle RAC / MemSQL run
// for cross-partition writes). Phase 1 sends PREPARE to every participant
// in parallel and collects votes; phase 2 broadcasts COMMIT or ABORT.
// Participants are callbacks so the same coordinator serves tests, the
// distributed engine, and the E10/E11 benchmarks.
//
// Fault handling: a lost PREPARE (failpoint "2pc.prepare.timeout", or a
// message the network model drops / a partition swallows) is retried with
// bounded exponential backoff under an optional wall-clock deadline
// (RetryPolicy::deadline_us); a participant that stays silent past the
// retry budget counts as a NO vote — abort-on-indecision, since aborting
// is always safe while presuming COMMIT could contradict another
// participant's outcome. A lost decision ACK (failpoint "2pc.ack.lost" or
// a network loss on the reply leg) makes the coordinator resend the
// decision, so `finish` must tolerate redelivery; the decision is fixed
// before the first send, so every delivery to a prepared participant is
// identical. A reply lost *after* `prepare` ran triggers a PREPARE
// redelivery, so under a lossy fabric `prepare` must be idempotent too.
//
// When Options::breakers is set, sends to a participant whose breaker is
// open are shed immediately (counted as a failed attempt) instead of
// burning network time on a node already known dead.
class TwoPhaseCoordinator {
 public:
  struct Options {
    // Per-participant RPC retry budget, applied to both phases.
    RetryPolicy retry;
    // Optional per-node circuit breakers (not owned).
    CircuitBreakerSet* breakers = nullptr;
  };

  TwoPhaseCoordinator(SimulatedNetwork* network, int coordinator_node)
      : net_(network), node_(coordinator_node) {}
  TwoPhaseCoordinator(SimulatedNetwork* network, int coordinator_node,
                      const Options& options)
      : net_(network), node_(coordinator_node), options_(options) {}

  // `prepare(participant)` returns OK to vote yes; any error aborts the
  // transaction. `finish(participant, commit)` applies or rolls back and
  // must be idempotent (the decision may be redelivered after a lost
  // ACK). Returns OK if committed, kAborted otherwise. Network round
  // trips are charged per participant per phase (in parallel: wall-clock
  // ≈ 2 RTT when fault-free).
  Status Run(const std::vector<int>& participant_nodes,
             const std::function<Status(int)>& prepare,
             const std::function<void(int, bool)>& finish);

  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t aborts() const { return aborts_.load(std::memory_order_relaxed); }
  // Transactions aborted because a participant never answered PREPARE.
  uint64_t indecision_aborts() const {
    return indecision_aborts_.load(std::memory_order_relaxed);
  }
  uint64_t prepare_retries() const {
    return prepare_retries_.load(std::memory_order_relaxed);
  }
  uint64_t finish_retries() const {
    return finish_retries_.load(std::memory_order_relaxed);
  }
  // Decisions that were never ACKed within the retry budget (the
  // participant is presumed reachable eventually; a real system would
  // hand these to a background resolver).
  uint64_t unacked_finishes() const {
    return unacked_finishes_.load(std::memory_order_relaxed);
  }

 private:
  SimulatedNetwork* net_;
  int node_;
  Options options_;
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
  std::atomic<uint64_t> indecision_aborts_{0};
  std::atomic<uint64_t> prepare_retries_{0};
  std::atomic<uint64_t> finish_retries_{0};
  std::atomic<uint64_t> unacked_finishes_{0};
};

}  // namespace oltap

#endif  // OLTAP_DIST_COORDINATOR_H_
