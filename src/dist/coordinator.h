#ifndef OLTAP_DIST_COORDINATOR_H_
#define OLTAP_DIST_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "dist/network.h"

namespace oltap {

// Two-phase commit coordinator for distributed transactions spanning
// multiple tablet leaders (the classic protocol Oracle RAC / MemSQL run
// for cross-partition writes). Phase 1 sends PREPARE to every participant
// in parallel and collects votes; phase 2 broadcasts COMMIT or ABORT.
// Participants are callbacks so the same coordinator serves tests, the
// distributed engine, and the E10/E11 benchmarks.
class TwoPhaseCoordinator {
 public:
  TwoPhaseCoordinator(SimulatedNetwork* network, int coordinator_node)
      : net_(network), node_(coordinator_node) {}

  // `prepare(participant)` returns OK to vote yes; any error aborts the
  // transaction. `finish(participant, commit)` applies or rolls back.
  // Returns OK if committed, kAborted otherwise. Network round trips are
  // charged per participant per phase (in parallel: wall-clock ≈ 2 RTT).
  Status Run(const std::vector<int>& participant_nodes,
             const std::function<Status(int)>& prepare,
             const std::function<void(int, bool)>& finish);

  uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  uint64_t aborts() const { return aborts_.load(std::memory_order_relaxed); }

 private:
  SimulatedNetwork* net_;
  int node_;
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
};

}  // namespace oltap

#endif  // OLTAP_DIST_COORDINATOR_H_
