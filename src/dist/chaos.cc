#include "dist/chaos.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace oltap {

ChaosPlan::ChaosPlan(const Options& options) : options_(options) {
  OLTAP_CHECK(options_.num_nodes >= 2);
  OLTAP_CHECK(options_.rounds >= 1);
  Rng rng(options_.seed);
  double total_weight =
      options_.symmetric_partition_weight +
      options_.asymmetric_partition_weight + options_.crash_weight +
      options_.noise_only_weight;
  OLTAP_CHECK(total_weight > 0);

  rounds_.reserve(options_.rounds);
  for (int r = 0; r < options_.rounds; ++r) {
    Round round;
    double draw = rng.NextDouble() * total_weight;
    if ((draw -= options_.symmetric_partition_weight) < 0) {
      round.kind = Round::Kind::kSymmetricPartition;
    } else if ((draw -= options_.asymmetric_partition_weight) < 0) {
      round.kind = Round::Kind::kAsymmetricPartition;
    } else if ((draw -= options_.crash_weight) < 0) {
      round.kind = Round::Kind::kCrash;
    } else {
      round.kind = Round::Kind::kNoiseOnly;
    }

    switch (round.kind) {
      case Round::Kind::kSymmetricPartition:
      case Round::Kind::kAsymmetricPartition: {
        // Cut away a strict minority so a quorum always survives on the
        // majority side — the invariant the failover layer must exploit.
        int max_minority = (options_.num_nodes - 1) / 2;
        int k = 1 + static_cast<int>(rng.Uniform(
                        static_cast<uint64_t>(std::max(1, max_minority))));
        k = std::min(k, std::max(1, max_minority));
        while (static_cast<int>(round.group.size()) < k) {
          round.group.insert(static_cast<int>(
              rng.Uniform(static_cast<uint64_t>(options_.num_nodes))));
        }
        break;
      }
      case Round::Kind::kCrash:
        round.group.insert(static_cast<int>(
            rng.Uniform(static_cast<uint64_t>(options_.num_nodes))));
        break;
      case Round::Kind::kNoiseOnly:
        break;
    }

    round.faults.drop_probability =
        rng.NextDouble() * options_.max_drop_probability;
    round.faults.duplicate_probability =
        rng.NextDouble() * options_.max_duplicate_probability;
    round.faults.jitter_us = options_.max_jitter_us > 0
                                 ? static_cast<int64_t>(rng.Uniform(
                                       static_cast<uint64_t>(
                                           options_.max_jitter_us) +
                                       1))
                                 : 0;
    // Per-round noise seed derives from the plan seed + round index so a
    // round's drop schedule does not depend on how much traffic earlier
    // rounds generated.
    round.faults.seed = options_.seed * 1000003u + static_cast<uint64_t>(r);
    rounds_.push_back(std::move(round));
  }
}

void ChaosPlan::Install(int i, SimulatedNetwork* net) const {
  const Round& r = rounds_[i];
  net->SetFaults(r.faults);
  std::set<int> rest;
  for (int n = 0; n < options_.num_nodes; ++n) {
    if (r.group.count(n) == 0) rest.insert(n);
  }
  switch (r.kind) {
    case Round::Kind::kSymmetricPartition:
      net->Partition(r.group, rest);
      break;
    case Round::Kind::kAsymmetricPartition:
      net->PartitionOneWay(r.group, rest);
      break;
    case Round::Kind::kCrash:
      for (int n : r.group) net->SetNodeDown(n);
      break;
    case Round::Kind::kNoiseOnly:
      break;
  }
}

void ChaosPlan::Restore(int i, SimulatedNetwork* net) const {
  const Round& r = rounds_[i];
  net->Heal();
  if (r.kind == Round::Kind::kCrash) {
    for (int n : r.group) net->SetNodeUp(n);
  }
  net->ClearFaults();
}

const char* ChaosPlan::KindToString(Round::Kind kind) {
  switch (kind) {
    case Round::Kind::kSymmetricPartition:
      return "part";
    case Round::Kind::kAsymmetricPartition:
      return "apart";
    case Round::Kind::kCrash:
      return "crash";
    case Round::Kind::kNoiseOnly:
      return "noise";
  }
  return "?";
}

std::string ChaosPlan::Describe() const {
  std::string out;
  for (size_t i = 0; i < rounds_.size(); ++i) {
    if (i > 0) out += "|";
    const Round& r = rounds_[i];
    out += KindToString(r.kind);
    if (!r.group.empty()) {
      out += "{";
      bool first = true;
      for (int n : r.group) {
        if (!first) out += ",";
        first = false;
        out += std::to_string(n);
      }
      out += "}";
    }
  }
  return out;
}

}  // namespace oltap
