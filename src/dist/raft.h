#ifndef OLTAP_DIST_RAFT_H_
#define OLTAP_DIST_RAFT_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"

namespace oltap {

// One replicated-log entry. Payloads are opaque bytes (the partition layer
// serializes row operations into them).
struct RaftLogEntry {
  uint64_t term = 0;
  std::string payload;

  friend bool operator==(const RaftLogEntry& a, const RaftLogEntry& b) {
    return a.term == b.term && a.payload == b.payload;
  }
};

struct RaftMessage {
  enum class Type : uint8_t {
    kRequestVote,
    kVoteReply,
    kAppendEntries,  // also heartbeat when entries is empty
    kAppendReply,
  };
  Type type = Type::kRequestVote;
  int from = -1;
  int to = -1;
  uint64_t term = 0;

  // kRequestVote
  uint64_t last_log_index = 0;
  uint64_t last_log_term = 0;
  // kVoteReply
  bool granted = false;
  // kAppendEntries
  uint64_t prev_log_index = 0;
  uint64_t prev_log_term = 0;
  uint64_t leader_commit = 0;
  std::vector<RaftLogEntry> entries;
  // kAppendReply
  bool success = false;
  uint64_t match_index = 0;
};

// A single Raft consensus participant (leader election + log replication +
// commit, per the Raft paper), implemented as a pure message-passing state
// machine: callers drive it with Tick() and Receive(), and drain outgoing
// messages with TakeOutbox(). No threads, no clocks — the cluster driver
// (dist/cluster.h) supplies time and the network, which makes safety
// properties deterministically testable (the same style etcd's raft tests
// use). This is the replication substrate Kudu [24] runs under every
// tablet.
class RaftNode {
 public:
  enum class Role : uint8_t { kFollower, kCandidate, kLeader };

  // Ticks are abstract; election timeouts are drawn uniformly from
  // [election_timeout, 2*election_timeout) and heartbeats sent every
  // election_timeout/3 ticks.
  RaftNode(int id, int cluster_size, uint64_t seed,
           int election_timeout_ticks = 10);

  int id() const { return id_; }
  Role role() const { return role_; }
  uint64_t term() const { return term_; }
  uint64_t commit_index() const { return commit_index_; }
  // 1-based log access; index 0 is the empty sentinel.
  uint64_t last_log_index() const { return log_.size(); }
  const RaftLogEntry& entry(uint64_t index) const { return log_[index - 1]; }

  // Advances timers by one tick (may start an election or send
  // heartbeats).
  void Tick();

  // Processes one incoming message.
  void Receive(const RaftMessage& msg);

  // Appends a client command to the leader's log; false if not leader.
  bool Propose(std::string payload);

  // Drains messages produced since the last call.
  std::vector<RaftMessage> TakeOutbox();

  // Drains entries newly committed since the last call (in order).
  std::vector<RaftLogEntry> TakeNewlyCommitted();

 private:
  void BecomeFollower(uint64_t term);
  void BecomeCandidate();
  void BecomeLeader();
  void SendAppendEntries(int peer);
  void BroadcastAppendEntries();
  void MaybeAdvanceCommit();
  void ResetElectionTimer();
  uint64_t TermAt(uint64_t index) const {
    return index == 0 ? 0 : log_[index - 1].term;
  }

  const int id_;
  const int cluster_size_;
  const int election_timeout_;
  Rng rng_;

  Role role_ = Role::kFollower;
  uint64_t term_ = 0;
  int voted_for_ = -1;
  std::vector<RaftLogEntry> log_;
  uint64_t commit_index_ = 0;
  uint64_t applied_index_ = 0;  // high-water of TakeNewlyCommitted

  int ticks_since_heard_ = 0;
  int current_timeout_ = 0;
  int ticks_since_heartbeat_ = 0;
  // Voter ids, not a count: the network may deliver a VoteReply twice,
  // and a duplicated grant must not be double-counted toward majority.
  std::set<int> votes_from_;

  // Leader replication state (1-based).
  std::vector<uint64_t> next_index_;
  std::vector<uint64_t> match_index_;

  std::vector<RaftMessage> outbox_;
};

}  // namespace oltap

#endif  // OLTAP_DIST_RAFT_H_
