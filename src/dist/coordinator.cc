#include "dist/coordinator.h"

#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/failpoint.h"
#include "obs/metrics.h"

namespace oltap {
namespace {

void Backoff(const RetryPolicy& retry, int attempt) {
  int64_t us = retry.BackoffMicros(attempt);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void CountRetry(const char* counter_name, std::atomic<uint64_t>* local) {
  local->fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Default()->GetCounter(counter_name)->Add(1);
}

}  // namespace

Status TwoPhaseCoordinator::Run(
    const std::vector<int>& participant_nodes,
    const std::function<Status(int)>& prepare,
    const std::function<void(int, bool)>& finish) {
  const size_t n = participant_nodes.size();
  std::vector<Status> votes(n);
  // Set only when a participant never answered PREPARE within the retry
  // budget — a participant's own DeadlineExceeded vote is a definite NO,
  // not indecision.
  std::vector<char> unresponsive(n, 0);

  // One delivery attempt of a message to `p`: breaker first (a node known
  // dead is shed without touching the network), then the lossy fabric,
  // then an optional in-flight-loss failpoint. Returns OK when the
  // message arrived.
  auto send = [&](int p, size_t bytes, const char* loss_failpoint) -> Status {
    if (options_.breakers != nullptr) {
      OLTAP_RETURN_NOT_OK(options_.breakers->Allow(p));
    }
    Status sent = net_->TryTransfer(node_, p, bytes);
    if (sent.ok() && loss_failpoint != nullptr) {
      Failpoint& fp = FailpointRegistry::Get().Register(loss_failpoint);
      if (fp.IsActive()) sent = fp.Evaluate();
    }
    if (options_.breakers != nullptr) {
      if (sent.ok()) {
        options_.breakers->RecordSuccess(p);
      } else {
        options_.breakers->RecordFailure(p);
      }
    }
    return sent;
  };

  // Phase 1: PREPARE in parallel with per-participant retry under the
  // backoff + deadline budget. A request lost in flight never reaches the
  // participant; a *reply* lost on the way back redelivers PREPARE, so
  // `prepare` must be idempotent on a lossy fabric.
  {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers.emplace_back([&, i] {
        int p = participant_nodes[i];
        Stopwatch sw;
        for (int attempt = 0;; ++attempt) {
          Status sent = send(p, 64, "2pc.prepare.timeout");
          if (sent.ok()) {
            votes[i] = prepare(p);
            sent = net_->TryTransfer(p, node_, 16);
            if (sent.ok()) break;
          }
          CountRetry("2pc.prepare_retries", &prepare_retries_);
          if (!options_.retry.ShouldRetry(attempt + 1, sw.ElapsedMicros())) {
            // Silence past the budget — including a vote we never heard —
            // is indecision; abort is the only safe presumption.
            unresponsive[i] = 1;
            votes[i] = Status::DeadlineExceeded(
                "participant " + std::to_string(p) +
                " unresponsive to PREPARE");
            break;
          }
          Backoff(options_.retry, attempt);
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }
  bool commit = true;
  bool indecision = false;
  for (size_t i = 0; i < n; ++i) {
    if (!votes[i].ok()) commit = false;
    if (unresponsive[i] != 0) indecision = true;
  }

  // Phase 2: broadcast the decision until each participant ACKs or the
  // retry budget runs out. The decision is already fixed, so redelivery
  // after a lost ACK is always identical.
  {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers.emplace_back([&, i] {
        int p = participant_nodes[i];
        Stopwatch sw;
        for (int attempt = 0;; ++attempt) {
          Status acked = send(p, 16, nullptr);
          if (acked.ok()) {
            finish(p, commit);
            acked = OLTAP_FAILPOINT_STATUS("2pc.ack.lost");
            if (acked.ok()) acked = net_->TryTransfer(p, node_, 16);
            if (acked.ok()) break;
          }
          CountRetry("2pc.finish_retries", &finish_retries_);
          if (!options_.retry.ShouldRetry(attempt + 1, sw.ElapsedMicros())) {
            unacked_finishes_.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          Backoff(options_.retry, attempt);
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }

  auto* registry = obs::MetricsRegistry::Default();
  if (commit) {
    commits_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* commit_count = registry->GetCounter("2pc.commits");
    commit_count->Add(1);
    return Status::OK();
  }
  aborts_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* abort_count = registry->GetCounter("2pc.aborts");
  abort_count->Add(1);
  if (indecision) {
    indecision_aborts_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* indecision_count =
        registry->GetCounter("2pc.indecision_aborts");
    indecision_count->Add(1);
    return Status::Aborted("2PC aborted: participant unresponsive");
  }
  return Status::Aborted("2PC participant voted no");
}

}  // namespace oltap
