#include "dist/coordinator.h"

#include <thread>

namespace oltap {

Status TwoPhaseCoordinator::Run(
    const std::vector<int>& participant_nodes,
    const std::function<Status(int)>& prepare,
    const std::function<void(int, bool)>& finish) {
  const size_t n = participant_nodes.size();
  std::vector<Status> votes(n);

  // Phase 1: PREPARE in parallel.
  {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers.emplace_back([&, i] {
        int p = participant_nodes[i];
        net_->Transfer(node_, p, 64);
        votes[i] = prepare(p);
        net_->Transfer(p, node_, 16);
      });
    }
    for (std::thread& t : workers) t.join();
  }
  bool commit = true;
  for (const Status& v : votes) {
    if (!v.ok()) commit = false;
  }

  // Phase 2: COMMIT/ABORT in parallel.
  {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers.emplace_back([&, i] {
        int p = participant_nodes[i];
        net_->Transfer(node_, p, 16);
        finish(p, commit);
        net_->Transfer(p, node_, 16);
      });
    }
    for (std::thread& t : workers) t.join();
  }

  if (commit) {
    commits_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  aborts_.fetch_add(1, std::memory_order_relaxed);
  return Status::Aborted("2PC participant voted no");
}

}  // namespace oltap
