#include "dist/coordinator.h"

#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace oltap {
namespace {

void Backoff(const RetryPolicy& retry, int attempt) {
  int64_t us = retry.BackoffMicros(attempt);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

Status TwoPhaseCoordinator::Run(
    const std::vector<int>& participant_nodes,
    const std::function<Status(int)>& prepare,
    const std::function<void(int, bool)>& finish) {
  const size_t n = participant_nodes.size();
  std::vector<Status> votes(n);
  // Set only when a participant never answered PREPARE within the retry
  // budget — a participant's own DeadlineExceeded vote is a definite NO,
  // not indecision.
  std::vector<char> unresponsive(n, 0);

  // Phase 1: PREPARE in parallel with per-participant retry. A request
  // lost in flight never reaches the participant, so `prepare` runs at
  // most once per delivered request.
  {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers.emplace_back([&, i] {
        int p = participant_nodes[i];
        for (int attempt = 0;; ++attempt) {
          net_->Transfer(node_, p, 64);
          if (!OLTAP_FAILPOINT_STATUS("2pc.prepare.timeout").ok()) {
            prepare_retries_.fetch_add(1, std::memory_order_relaxed);
            {
              static obs::Counter* c =
                  obs::MetricsRegistry::Default()->GetCounter("2pc.prepare_retries");
              c->Add(1);
            }
            if (attempt + 1 >= options_.retry.max_attempts) {
              unresponsive[i] = 1;
              votes[i] = Status::DeadlineExceeded(
                  "participant " + std::to_string(p) +
                  " unresponsive to PREPARE");
              break;
            }
            Backoff(options_.retry, attempt);
            continue;
          }
          votes[i] = prepare(p);
          net_->Transfer(p, node_, 16);
          break;
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }
  bool commit = true;
  bool indecision = false;
  for (size_t i = 0; i < n; ++i) {
    if (!votes[i].ok()) commit = false;
    if (unresponsive[i] != 0) indecision = true;
  }

  // Phase 2: broadcast the decision until each participant ACKs or the
  // retry budget runs out. The decision is already fixed, so redelivery
  // after a lost ACK is always identical.
  {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers.emplace_back([&, i] {
        int p = participant_nodes[i];
        for (int attempt = 0;; ++attempt) {
          net_->Transfer(node_, p, 16);
          finish(p, commit);
          if (!OLTAP_FAILPOINT_STATUS("2pc.ack.lost").ok()) {
            finish_retries_.fetch_add(1, std::memory_order_relaxed);
            {
              static obs::Counter* c =
                  obs::MetricsRegistry::Default()->GetCounter("2pc.finish_retries");
              c->Add(1);
            }
            if (attempt + 1 >= options_.retry.max_attempts) {
              unacked_finishes_.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            Backoff(options_.retry, attempt);
            continue;
          }
          net_->Transfer(p, node_, 16);
          break;
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }

  auto* registry = obs::MetricsRegistry::Default();
  if (commit) {
    commits_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* commit_count = registry->GetCounter("2pc.commits");
    commit_count->Add(1);
    return Status::OK();
  }
  aborts_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* abort_count = registry->GetCounter("2pc.aborts");
  abort_count->Add(1);
  if (indecision) {
    indecision_aborts_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* indecision_count =
        registry->GetCounter("2pc.indecision_aborts");
    indecision_count->Add(1);
    return Status::Aborted("2PC aborted: participant unresponsive");
  }
  return Status::Aborted("2PC participant voted no");
}

}  // namespace oltap
