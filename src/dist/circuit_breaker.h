#ifndef OLTAP_DIST_CIRCUIT_BREAKER_H_
#define OLTAP_DIST_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace oltap {

// Per-remote-node circuit breaker (the Nygard pattern every RPC mesh
// ships): a node that keeps timing out is declared dead for a cooldown so
// callers shed its traffic in O(1) instead of burning a full retry budget
// per call while a partition lasts.
//
// States: kClosed (healthy, calls pass) → kOpen after
// `failure_threshold` consecutive failures (calls rejected kUnavailable
// without touching the network) → kHalfOpen after `open_cooldown_us`
// (up to `half_open_probes` trial calls pass) → kClosed on a probe
// success, back to kOpen on a probe failure.
class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  struct Options {
    int failure_threshold = 3;      // consecutive failures to trip
    int64_t open_cooldown_us = 10'000;  // open → half-open delay
    int half_open_probes = 1;       // concurrent trial calls allowed
    const Clock* clock = nullptr;   // defaults to SystemClock
  };

  explicit CircuitBreaker(const Options& options);

  // OK if the caller may attempt the remote call now (and, in half-open,
  // reserves a probe slot); kUnavailable while the breaker is shedding.
  Status Allow();

  // Outcome of an attempted call admitted by Allow().
  void RecordSuccess();
  void RecordFailure();

  State state() const;
  uint64_t rejected() const { return rejected_.Value(); }

 private:
  // Open → half-open promotion once the cooldown elapsed. Caller holds mu_.
  void MaybePromoteLocked(int64_t now_us);

  Options options_;
  const Clock* clock_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int probes_in_flight_ = 0;
  int64_t opened_at_us_ = 0;
  obs::Counter rejected_;
};

const char* CircuitBreakerStateToString(CircuitBreaker::State s);

// One breaker per remote node, plus the obs surface: gauge
// `dist.breaker_open` tracks how many breakers are currently open, and
// counters `dist.breaker.trips` / `dist.breaker.rejected` make shed
// traffic visible in SHOW STATS.
class CircuitBreakerSet {
 public:
  CircuitBreakerSet(int num_nodes, const CircuitBreaker::Options& options);

  CircuitBreaker* ForNode(int node) { return breakers_[node].get(); }
  int num_nodes() const { return static_cast<int>(breakers_.size()); }

  // Convenience wrappers keeping the obs gauge in sync with state
  // transitions (the breaker itself is obs-agnostic so it unit-tests
  // without the registry).
  Status Allow(int node);
  void RecordSuccess(int node);
  void RecordFailure(int node);

  // Breakers currently open (recomputed, not cached).
  int open_count() const;

 private:
  void SyncGauge();

  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
};

}  // namespace oltap

#endif  // OLTAP_DIST_CIRCUIT_BREAKER_H_
