#ifndef OLTAP_DIST_NETWORK_H_
#define OLTAP_DIST_NETWORK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace oltap {

// Wall-clock network model for the threaded distributed engine: a message
// between distinct nodes costs base latency plus a size-proportional term,
// charged by blocking the calling thread. Intra-node calls are free. This
// stands in for the real datacenter fabric (DESIGN.md §5); the scale-out
// experiment's shape depends only on the relative cost of network hops vs.
// local work, which the model preserves.
//
// The fabric can be made adversarial: a seeded, deterministic fault plan
// (per-link drop/duplicate probability and latency jitter — jitter is what
// reorders messages in a latency-charging model) plus runtime-installable
// symmetric or asymmetric partitions and node crashes. TryTransfer /
// TryRoundTrip surface loss as kUnavailable so callers can retry, fail
// over, or trip a circuit breaker instead of silently blocking; the legacy
// void Transfer/RoundTrip remain for fault-free cost charging and always
// deliver.
class SimulatedNetwork {
 public:
  struct Options {
    int64_t base_latency_us = 100;  // one-way
    int64_t per_kb_us = 5;
  };

  // Probabilistic link faults. All randomness comes from one Rng seeded
  // here, so the full drop/duplicate/jitter schedule is a deterministic
  // function of (seed, call sequence) — E15 and the chaos torture test
  // depend on that reproducibility.
  struct FaultOptions {
    double drop_probability = 0.0;       // message vanishes in flight
    double duplicate_probability = 0.0;  // cost (and obs) charged twice
    int64_t jitter_us = 0;               // extra one-way delay in [0, jitter]
    uint64_t seed = 42;
  };

  explicit SimulatedNetwork(const Options& options) : options_(options) {}
  SimulatedNetwork() : SimulatedNetwork(Options{}) {}

  // Blocks for the one-way transfer cost from `from` to `to`. Always
  // delivers (ignores the fault plan) — fault-oblivious callers keep
  // their exact pre-chaos semantics.
  void Transfer(int from, int to, size_t bytes);

  // Round trip: request of `request_bytes`, reply of `reply_bytes`.
  void RoundTrip(int from, int to, size_t request_bytes, size_t reply_bytes);

  // Fault-observing transfer: returns kUnavailable when the link is cut
  // (partition / crashed endpoint) or the fault plan drops the message.
  // Latency (with jitter) is still charged on loss — the sender waited
  // for an answer that never came.
  Status TryTransfer(int from, int to, size_t bytes);
  Status TryRoundTrip(int from, int to, size_t request_bytes,
                      size_t reply_bytes);

  // Installs the probabilistic fault plan / removes it.
  void SetFaults(const FaultOptions& faults);
  void ClearFaults();

  // Cuts every link between `group_a` and `group_b`, both directions
  // (symmetric partition). Replaces any previously installed cut.
  void Partition(const std::set<int>& group_a, const std::set<int>& group_b);
  // Asymmetric partition: only messages from `from_group` to `to_group`
  // are cut (the pathological half-open link real fabrics produce).
  void PartitionOneWay(const std::set<int>& from_group,
                       const std::set<int>& to_group);
  // Restores full connectivity (crashed nodes stay down).
  void Heal();

  // Crash / restart a node: all links touching it are cut.
  void SetNodeDown(int node);
  void SetNodeUp(int node);

  // True when `from` can currently reach `to` (partition + crash state
  // only; probabilistic drops are transient and not reported here).
  bool Reachable(int from, int to) const;

  uint64_t messages() const { return messages_.Value(); }
  uint64_t bytes() const { return bytes_.Value(); }
  uint64_t dropped() const { return dropped_.Value(); }
  uint64_t duplicated() const { return duplicated_.Value(); }

  // Zeroes the per-instance counters (the global registry's net.* counters
  // are untouched) — lets a multi-phase benchmark report per-phase traffic
  // from a cached engine. Multi-phase *global* deltas should instead
  // snapshot-and-diff the registry (see bench_scaleout).
  void Reset() {
    messages_.Reset();
    bytes_.Reset();
    dropped_.Reset();
    duplicated_.Reset();
  }

 private:
  // Blocks for the one-way cost incl. jitter; returns false if the
  // message was lost (cut link or probabilistic drop).
  bool Deliver(int from, int to, size_t bytes);
  bool LinkCut(int from, int to) const;

  Options options_;
  obs::Counter messages_;
  obs::Counter bytes_;
  obs::Counter dropped_;
  obs::Counter duplicated_;

  mutable std::mutex mu_;  // guards fault state + rng
  bool faults_active_ = false;
  FaultOptions faults_;
  Rng rng_{42};
  bool partitioned_ = false;
  bool one_way_ = false;
  std::set<int> cut_from_;
  std::set<int> cut_to_;
  std::set<int> down_;
};

}  // namespace oltap

#endif  // OLTAP_DIST_NETWORK_H_
