#ifndef OLTAP_DIST_NETWORK_H_
#define OLTAP_DIST_NETWORK_H_

#include <cstdint>

#include "obs/metrics.h"

namespace oltap {

// Wall-clock network model for the threaded distributed engine: a message
// between distinct nodes costs base latency plus a size-proportional term,
// charged by blocking the calling thread. Intra-node calls are free. This
// stands in for the real datacenter fabric (DESIGN.md §5); the scale-out
// experiment's shape depends only on the relative cost of network hops vs.
// local work, which the model preserves.
class SimulatedNetwork {
 public:
  struct Options {
    int64_t base_latency_us = 100;  // one-way
    int64_t per_kb_us = 5;
  };

  explicit SimulatedNetwork(const Options& options) : options_(options) {}
  SimulatedNetwork() : SimulatedNetwork(Options{}) {}

  // Blocks for the one-way transfer cost from `from` to `to`.
  void Transfer(int from, int to, size_t bytes);

  // Round trip: request of `request_bytes`, reply of `reply_bytes`.
  void RoundTrip(int from, int to, size_t request_bytes, size_t reply_bytes);

  uint64_t messages() const { return messages_.Value(); }
  uint64_t bytes() const { return bytes_.Value(); }

  // Zeroes the per-instance counters (the global registry's net.* counters
  // are untouched) — lets a multi-phase benchmark report per-phase traffic
  // from a cached engine.
  void Reset() {
    messages_.Reset();
    bytes_.Reset();
  }

 private:
  Options options_;
  obs::Counter messages_;
  obs::Counter bytes_;
};

}  // namespace oltap

#endif  // OLTAP_DIST_NETWORK_H_
