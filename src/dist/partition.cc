#include "dist/partition.h"

#include <algorithm>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"
#include "exec/operators.h"

namespace oltap {

DistributedEngine::DistributedEngine(Schema schema, const Options& options)
    : schema_(std::move(schema)),
      options_(options),
      rf_(std::min(options.replication_factor, options.num_nodes)),
      net_(options.net) {
  OLTAP_CHECK(options_.num_nodes >= 1);
  OLTAP_CHECK(options_.num_partitions >= 1);
  OLTAP_CHECK(schema_.HasKey()) << "distributed tables require a primary key";
  tablets_.reserve(options_.num_partitions);
  for (int p = 0; p < options_.num_partitions; ++p) {
    auto tablet = std::make_unique<Tablet>();
    for (int r = 0; r < rf_; ++r) {
      tablet->replicas.push_back(std::make_unique<ColumnTable>(schema_));
    }
    tablets_.push_back(std::move(tablet));
  }
}

int DistributedEngine::PartitionOf(const std::string& key) const {
  return static_cast<int>(HashString(key) %
                          static_cast<uint64_t>(options_.num_partitions));
}

std::vector<int> DistributedEngine::ReplicaNodes(int partition) const {
  std::vector<int> nodes;
  nodes.reserve(rf_);
  for (int r = 0; r < rf_; ++r) {
    nodes.push_back((partition + r) % options_.num_nodes);
  }
  return nodes;
}

size_t DistributedEngine::ApproxRowBytes(const Row& row) {
  size_t bytes = 16;
  for (const Value& v : row) {
    bytes += v.type() == ValueType::kString ? 16 + v.AsString().size() : 8;
  }
  return bytes;
}

Status DistributedEngine::InsertFrom(int client_node, const Row& row) {
  std::string key = EncodeKey(schema_, row);
  int p = PartitionOf(key);
  int leader = LeaderNode(p);
  size_t bytes = ApproxRowBytes(row);
  net_.RoundTrip(client_node, leader, bytes, 16);
  Tablet& tablet = *tablets_[p];
  std::lock_guard<std::mutex> lock(tablet.mu);
  if (rf_ > 1) {
    // Followers replicate in parallel; the cost is one round trip.
    net_.RoundTrip(leader, (p + 1) % options_.num_nodes, bytes, 16);
  }
  Timestamp ts = NextTs();
  Status st = tablet.replicas[0]->InsertCommitted(row, ts);
  if (!st.ok()) return st;
  for (int r = 1; r < rf_; ++r) {
    Status fs = tablet.replicas[r]->InsertCommitted(row, ts);
    OLTAP_CHECK(fs.ok()) << "replica divergence: " << fs.ToString();
  }
  return Status::OK();
}

Status DistributedEngine::UpdateFrom(int client_node, const Row& new_row) {
  std::string key = EncodeKey(schema_, new_row);
  int p = PartitionOf(key);
  int leader = LeaderNode(p);
  size_t bytes = ApproxRowBytes(new_row);
  net_.RoundTrip(client_node, leader, bytes, 16);
  Tablet& tablet = *tablets_[p];
  std::lock_guard<std::mutex> lock(tablet.mu);
  if (rf_ > 1) net_.RoundTrip(leader, (p + 1) % options_.num_nodes, bytes, 16);
  Timestamp ts = NextTs();
  Status st = tablet.replicas[0]->UpdateCommitted(key, new_row, ts);
  if (!st.ok()) return st;
  for (int r = 1; r < rf_; ++r) {
    Status fs = tablet.replicas[r]->UpdateCommitted(key, new_row, ts);
    OLTAP_CHECK(fs.ok()) << "replica divergence: " << fs.ToString();
  }
  return Status::OK();
}

Status DistributedEngine::DeleteFrom(int client_node, const Row& key_row) {
  std::string key = EncodeKey(schema_, key_row);
  int p = PartitionOf(key);
  int leader = LeaderNode(p);
  net_.RoundTrip(client_node, leader, 32, 16);
  Tablet& tablet = *tablets_[p];
  std::lock_guard<std::mutex> lock(tablet.mu);
  if (rf_ > 1) net_.RoundTrip(leader, (p + 1) % options_.num_nodes, 32, 16);
  Timestamp ts = NextTs();
  Status st = tablet.replicas[0]->DeleteCommitted(key, ts);
  if (!st.ok()) return st;
  for (int r = 1; r < rf_; ++r) {
    Status fs = tablet.replicas[r]->DeleteCommitted(key, ts);
    OLTAP_CHECK(fs.ok()) << "replica divergence: " << fs.ToString();
  }
  return Status::OK();
}

bool DistributedEngine::LookupFrom(int client_node, const Row& key_row,
                                   Row* out) {
  std::string key = EncodeKey(schema_, key_row);
  int p = PartitionOf(key);
  net_.RoundTrip(client_node, LeaderNode(p), 32, 64);
  return tablets_[p]->replicas[0]->Lookup(key, current_ts(), out);
}

double DistributedEngine::SumWhere(int filter_col, CompareOp op,
                                   int64_t constant, int agg_col) {
  Timestamp read_ts = current_ts();
  std::vector<double> node_sums(options_.num_nodes, 0);
  std::vector<std::thread> workers;
  workers.reserve(options_.num_nodes);
  for (int node = 0; node < options_.num_nodes; ++node) {
    workers.emplace_back([&, node] {
      net_.Transfer(/*coordinator=*/0, node, 64);
      double sum = 0;
      for (int p = 0; p < options_.num_partitions; ++p) {
        if (LeaderNode(p) != node) continue;
        ColumnTable::Snapshot snap =
            tablets_[p]->replicas[0]->GetSnapshot(read_ts);
        // Main fragment: packed scan + gather.
        BitVector sel;
        snap.main->VisibleMask(read_ts, &sel);
        if (snap.main->num_rows() > 0) {
          BitVector hits;
          snap.main->column(filter_col)
              .ScanCompare(op, Value::Int64(constant), &hits);
          sel.And(hits);
          std::vector<double> vals;
          snap.main->column(agg_col).GatherDoubles(&sel, &vals, nullptr);
          for (double v : vals) sum += v;
        }
        // Delta rows.
        auto eval = [&](uint32_t, const Row& row) {
          const Value& f = row[filter_col];
          if (f.is_null()) return;
          int64_t x = f.AsInt64();
          bool hit = false;
          switch (op) {
            case CompareOp::kEq:
              hit = x == constant;
              break;
            case CompareOp::kNe:
              hit = x != constant;
              break;
            case CompareOp::kLt:
              hit = x < constant;
              break;
            case CompareOp::kLe:
              hit = x <= constant;
              break;
            case CompareOp::kGt:
              hit = x > constant;
              break;
            case CompareOp::kGe:
              hit = x >= constant;
              break;
          }
          if (hit && !row[agg_col].is_null()) sum += row[agg_col].AsDouble();
        };
        if (snap.frozen != nullptr) snap.frozen->ForEachVisible(read_ts, eval);
        snap.delta->ForEachVisible(read_ts, eval);
      }
      net_.Transfer(node, 0, 64);
      node_sums[node] = sum;
    });
  }
  for (std::thread& t : workers) t.join();
  double total = 0;
  for (double s : node_sums) total += s;
  return total;
}

size_t DistributedEngine::TotalRows() {
  Timestamp read_ts = current_ts();
  size_t total = 0;
  for (int p = 0; p < options_.num_partitions; ++p) {
    ColumnTable::Snapshot snap = tablets_[p]->replicas[0]->GetSnapshot(read_ts);
    BitVector sel;
    snap.main->VisibleMask(read_ts, &sel);
    total += sel.CountSet();
    auto count = [&](uint32_t, const Row&) { ++total; };
    if (snap.frozen != nullptr) snap.frozen->ForEachVisible(read_ts, count);
    snap.delta->ForEachVisible(read_ts, count);
  }
  return total;
}

bool DistributedEngine::CheckReplicasConsistent() {
  Timestamp read_ts = current_ts();
  for (int p = 0; p < options_.num_partitions; ++p) {
    Tablet& tablet = *tablets_[p];
    std::vector<std::vector<Row>> contents(tablet.replicas.size());
    for (size_t r = 0; r < tablet.replicas.size(); ++r) {
      ColumnTable::Snapshot snap = tablet.replicas[r]->GetSnapshot(read_ts);
      BitVector sel;
      snap.main->VisibleMask(read_ts, &sel);
      for (size_t i = sel.FindNextSet(0); i < sel.size();
           i = sel.FindNextSet(i + 1)) {
        contents[r].push_back(snap.main->GetRow(static_cast<RowId>(i)));
      }
      auto collect = [&](uint32_t, const Row& row) {
        contents[r].push_back(row);
      };
      if (snap.frozen != nullptr) {
        snap.frozen->ForEachVisible(read_ts, collect);
      }
      snap.delta->ForEachVisible(read_ts, collect);
      std::sort(contents[r].begin(), contents[r].end(),
                [](const Row& a, const Row& b) {
                  return HashKeyOf(a) < HashKeyOf(b);
                });
    }
    for (size_t r = 1; r < contents.size(); ++r) {
      if (contents[r].size() != contents[0].size()) return false;
      for (size_t i = 0; i < contents[0].size(); ++i) {
        if (HashKeyOf(contents[r][i]) != HashKeyOf(contents[0][i])) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace oltap
