#include "dist/partition.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"
#include "exec/operators.h"

namespace oltap {
namespace {

struct DistCounters {
  obs::Counter* retries;
  obs::Counter* leader_failovers;
  obs::Counter* read_failovers;
  obs::Counter* quorum_failures;
};

DistCounters& GlobalDistCounters() {
  static DistCounters c = {
      obs::MetricsRegistry::Default()->GetCounter("net.retries"),
      obs::MetricsRegistry::Default()->GetCounter("dist.leader_failovers"),
      obs::MetricsRegistry::Default()->GetCounter("dist.read_failovers"),
      obs::MetricsRegistry::Default()->GetCounter(
          "dist.write_quorum_failures"),
  };
  return c;
}

}  // namespace

DistributedEngine::DistributedEngine(Schema schema, const Options& options)
    : schema_(std::move(schema)),
      options_(options),
      rf_(std::min(options.replication_factor, options.num_nodes)),
      net_(options.net),
      breakers_(options.num_nodes, options.breaker) {
  OLTAP_CHECK(options_.num_nodes >= 1);
  OLTAP_CHECK(options_.num_partitions >= 1);
  OLTAP_CHECK(schema_.HasKey()) << "distributed tables require a primary key";
  tablets_.reserve(options_.num_partitions);
  for (int p = 0; p < options_.num_partitions; ++p) {
    auto tablet = std::make_unique<Tablet>();
    for (int r = 0; r < rf_; ++r) {
      tablet->replicas.push_back(std::make_unique<ColumnTable>(schema_));
    }
    tablet->applied.assign(rf_, 0);
    tablet->applied_ts.assign(rf_, 0);
    tablets_.push_back(std::move(tablet));
  }
}

int DistributedEngine::PartitionOf(const std::string& key) const {
  return static_cast<int>(HashString(key) %
                          static_cast<uint64_t>(options_.num_partitions));
}

std::vector<int> DistributedEngine::ReplicaNodes(int partition) const {
  std::vector<int> nodes;
  nodes.reserve(rf_);
  for (int r = 0; r < rf_; ++r) {
    nodes.push_back((partition + r) % options_.num_nodes);
  }
  return nodes;
}

int DistributedEngine::CurrentLeaderNode(int partition) {
  Tablet& tablet = *tablets_[partition];
  std::lock_guard<std::mutex> lock(tablet.mu);
  return ReplicaNodes(partition)[tablet.leader_r];
}

size_t DistributedEngine::ApproxRowBytes(const Row& row) {
  size_t bytes = 16;
  for (const Value& v : row) {
    bytes += v.type() == ValueType::kString ? 16 + v.AsString().size() : 8;
  }
  return bytes;
}

Status DistributedEngine::Rpc(int from, int to, size_t request_bytes,
                              size_t reply_bytes) {
  if (from == to) return Status::OK();
  OLTAP_RETURN_NOT_OK(breakers_.Allow(to));
  Stopwatch sw;
  for (int attempt = 0;; ++attempt) {
    Status st = net_.TryRoundTrip(from, to, request_bytes, reply_bytes);
    if (st.ok()) {
      breakers_.RecordSuccess(to);
      return st;
    }
    if (!options_.rpc_retry.ShouldRetry(attempt + 1, sw.ElapsedMicros())) {
      breakers_.RecordFailure(to);
      return st;
    }
    rpc_retries_.fetch_add(1, std::memory_order_relaxed);
    GlobalDistCounters().retries->Add(1);
    int64_t backoff_us = options_.rpc_retry.BackoffMicros(attempt);
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
  }
}

void DistributedEngine::ApplyLogLocked(Tablet& tablet, int r) {
  while (tablet.applied[r] < tablet.log.size()) {
    const Op& op = tablet.log[tablet.applied[r]];
    Status fs;
    switch (op.kind) {
      case Op::Kind::kInsert:
        fs = tablet.replicas[r]->InsertCommitted(op.row, op.ts);
        break;
      case Op::Kind::kUpdate:
        fs = tablet.replicas[r]->UpdateCommitted(op.key, op.row, op.ts);
        break;
      case Op::Kind::kDelete:
        fs = tablet.replicas[r]->DeleteCommitted(op.key, op.ts);
        break;
    }
    OLTAP_CHECK(fs.ok()) << "replica divergence: " << fs.ToString();
    ++tablet.applied[r];
    tablet.applied_ts[r] = op.ts;
  }
}

Status DistributedEngine::FailoverLeaderLocked(int partition, Tablet& tablet,
                                               int client_node) {
  std::vector<int> nodes = ReplicaNodes(partition);
  for (int step = 1; step < rf_; ++step) {
    int r = (tablet.leader_r + step) % rf_;
    int node = nodes[r];
    if (!net_.Reachable(client_node, node)) continue;
    if (tablet.applied[r] < tablet.log.size()) {
      // A stale candidate must first catch up from some fully-applied
      // replica it can reach; otherwise promoting it would silently drop
      // committed writes.
      int donor = -1;
      for (int f = 0; f < rf_; ++f) {
        if (tablet.applied[f] == tablet.log.size() &&
            net_.Reachable(nodes[f], node)) {
          donor = f;
          break;
        }
      }
      if (donor < 0) continue;
      size_t backlog = tablet.log.size() - tablet.applied[r];
      net_.Transfer(nodes[donor], node, 64 * backlog);
      ApplyLogLocked(tablet, r);
    }
    tablet.leader_r = r;
    leader_failovers_.fetch_add(1, std::memory_order_relaxed);
    GlobalDistCounters().leader_failovers->Add(1);
    return Status::OK();
  }
  return Status::Unavailable("no reachable caught-up replica for partition " +
                             std::to_string(partition));
}

Status DistributedEngine::ReplicatedWrite(int client_node, Op::Kind kind,
                                          std::string key, const Row& row) {
  int p = PartitionOf(key);
  size_t bytes = kind == Op::Kind::kDelete ? 32 : ApproxRowBytes(row);
  Tablet& tablet = *tablets_[p];
  std::lock_guard<std::mutex> lock(tablet.mu);
  std::vector<int> nodes = ReplicaNodes(p);

  // Reach the tablet leader, failing over to a surviving replica when the
  // current one is unreachable after the retry budget.
  Status rpc = Rpc(client_node, nodes[tablet.leader_r], bytes, 16);
  if (!rpc.ok()) {
    OLTAP_RETURN_NOT_OK(FailoverLeaderLocked(p, tablet, client_node));
    OLTAP_RETURN_NOT_OK(Rpc(client_node, nodes[tablet.leader_r], bytes, 16));
  }
  int leader_node = nodes[tablet.leader_r];

  // Majority ack check BEFORE applying anything: an OK result must mean
  // "durable on a quorum", a failure must mean "no effect" — the chaos
  // torture test holds the engine to exactly that contract.
  int acks = 1;  // the leader itself
  int first_follower = -1;
  for (int r = 0; r < rf_; ++r) {
    if (r == tablet.leader_r) continue;
    if (first_follower < 0) first_follower = r;
    if (net_.Reachable(leader_node, nodes[r])) ++acks;
  }
  if (rf_ > 1) {
    // Followers replicate in parallel; the cost is one round trip.
    net_.TryRoundTrip(leader_node, nodes[first_follower], bytes, 16);
  }
  if (acks < rf_ / 2 + 1) {
    quorum_failures_.fetch_add(1, std::memory_order_relaxed);
    GlobalDistCounters().quorum_failures->Add(1);
    return Status::Unavailable("write quorum unreachable (" +
                               std::to_string(acks) + "/" +
                               std::to_string(rf_) + " acks)");
  }

  Timestamp ts = NextTs();
  Status st;
  switch (kind) {
    case Op::Kind::kInsert:
      st = tablet.replicas[tablet.leader_r]->InsertCommitted(row, ts);
      break;
    case Op::Kind::kUpdate:
      st = tablet.replicas[tablet.leader_r]->UpdateCommitted(key, row, ts);
      break;
    case Op::Kind::kDelete:
      st = tablet.replicas[tablet.leader_r]->DeleteCommitted(key, ts);
      break;
  }
  if (!st.ok()) return st;

  tablet.log.push_back(Op{kind, std::move(key), row, ts});
  tablet.applied[tablet.leader_r] = tablet.log.size();
  tablet.applied_ts[tablet.leader_r] = ts;
  // Synchronously apply to every reachable follower (replaying any
  // backlog it accumulated while unreachable); the rest stay stale until
  // the partition heals.
  for (int r = 0; r < rf_; ++r) {
    if (r == tablet.leader_r) continue;
    if (net_.Reachable(leader_node, nodes[r])) ApplyLogLocked(tablet, r);
  }
  return Status::OK();
}

Status DistributedEngine::InsertFrom(int client_node, const Row& row) {
  return ReplicatedWrite(client_node, Op::Kind::kInsert,
                         EncodeKey(schema_, row), row);
}

Status DistributedEngine::UpdateFrom(int client_node, const Row& new_row) {
  return ReplicatedWrite(client_node, Op::Kind::kUpdate,
                         EncodeKey(schema_, new_row), new_row);
}

Status DistributedEngine::DeleteFrom(int client_node, const Row& key_row) {
  return ReplicatedWrite(client_node, Op::Kind::kDelete,
                         EncodeKey(schema_, key_row), key_row);
}

bool DistributedEngine::LookupFrom(int client_node, const Row& key_row,
                                   Row* out) {
  std::string key = EncodeKey(schema_, key_row);
  int p = PartitionOf(key);
  Tablet& tablet = *tablets_[p];
  std::lock_guard<std::mutex> lock(tablet.mu);
  net_.RoundTrip(client_node, ReplicaNodes(p)[tablet.leader_r], 32, 64);
  return tablet.replicas[tablet.leader_r]->Lookup(key, current_ts(), out);
}

Result<Row> DistributedEngine::FailoverLookup(int client_node,
                                              const Row& key_row) {
  std::string key = EncodeKey(schema_, key_row);
  int p = PartitionOf(key);
  Tablet& tablet = *tablets_[p];
  std::lock_guard<std::mutex> lock(tablet.mu);
  std::vector<int> nodes = ReplicaNodes(p);

  Status st = Rpc(client_node, nodes[tablet.leader_r], 32, 64);
  if (st.ok()) {
    Row out;
    if (tablet.replicas[tablet.leader_r]->Lookup(key, current_ts(), &out)) {
      return out;
    }
    return Status::NotFound("key not found");
  }

  // Leader unreachable: fall back to a surviving replica whose data is
  // within the staleness bound, reading at its applied high-water mark
  // (a consistent-but-possibly-stale snapshot).
  Timestamp now_ts = current_ts();
  for (int step = 1; step < rf_; ++step) {
    int r = (tablet.leader_r + step) % rf_;
    if (!net_.Reachable(client_node, nodes[r])) continue;
    int64_t staleness =
        static_cast<int64_t>(now_ts) - static_cast<int64_t>(
                                           tablet.applied_ts[r]);
    if (tablet.applied[r] < tablet.log.size() &&
        staleness > options_.max_read_staleness) {
      continue;
    }
    if (!Rpc(client_node, nodes[r], 32, 64).ok()) continue;
    read_failovers_.fetch_add(1, std::memory_order_relaxed);
    GlobalDistCounters().read_failovers->Add(1);
    Row out;
    if (tablet.replicas[r]->Lookup(key, tablet.applied_ts[r], &out)) {
      return out;
    }
    return Status::NotFound("key not found (stale replica read)");
  }
  return Status::Unavailable(
      "no replica reachable within the staleness bound");
}

void DistributedEngine::CatchUpReplicas() {
  for (int p = 0; p < options_.num_partitions; ++p) {
    Tablet& tablet = *tablets_[p];
    std::lock_guard<std::mutex> lock(tablet.mu);
    std::vector<int> nodes = ReplicaNodes(p);
    int leader_node = nodes[tablet.leader_r];
    for (int r = 0; r < rf_; ++r) {
      if (r == tablet.leader_r) continue;
      if (tablet.applied[r] >= tablet.log.size()) continue;
      if (!net_.Reachable(leader_node, nodes[r])) continue;
      size_t backlog = tablet.log.size() - tablet.applied[r];
      net_.Transfer(leader_node, nodes[r], 64 * backlog);
      ApplyLogLocked(tablet, r);
    }
  }
}

double DistributedEngine::SumWhere(int filter_col, CompareOp op,
                                   int64_t constant, int agg_col) {
  Timestamp read_ts = current_ts();
  std::vector<double> node_sums(options_.num_nodes, 0);
  std::vector<std::thread> workers;
  workers.reserve(options_.num_nodes);
  for (int node = 0; node < options_.num_nodes; ++node) {
    workers.emplace_back([&, node] {
      net_.Transfer(/*coordinator=*/0, node, 64);
      double sum = 0;
      for (int p = 0; p < options_.num_partitions; ++p) {
        if (LeaderNode(p) != node) continue;
        Tablet& tablet = *tablets_[p];
        ColumnTable* leader;
        {
          std::lock_guard<std::mutex> lock(tablet.mu);
          leader = tablet.replicas[tablet.leader_r].get();
        }
        ColumnTable::Snapshot snap = leader->GetSnapshot(read_ts);
        // Main fragment: packed scan + gather.
        BitVector sel;
        snap.main->VisibleMask(read_ts, &sel);
        if (snap.main->num_rows() > 0) {
          BitVector hits;
          snap.main->column(filter_col)
              .ScanCompare(op, Value::Int64(constant), &hits);
          sel.And(hits);
          std::vector<double> vals;
          snap.main->column(agg_col).GatherDoubles(&sel, &vals, nullptr);
          for (double v : vals) sum += v;
        }
        // Delta rows.
        auto eval = [&](uint32_t, const Row& row) {
          const Value& f = row[filter_col];
          if (f.is_null()) return;
          int64_t x = f.AsInt64();
          bool hit = false;
          switch (op) {
            case CompareOp::kEq:
              hit = x == constant;
              break;
            case CompareOp::kNe:
              hit = x != constant;
              break;
            case CompareOp::kLt:
              hit = x < constant;
              break;
            case CompareOp::kLe:
              hit = x <= constant;
              break;
            case CompareOp::kGt:
              hit = x > constant;
              break;
            case CompareOp::kGe:
              hit = x >= constant;
              break;
          }
          if (hit && !row[agg_col].is_null()) sum += row[agg_col].AsDouble();
        };
        if (snap.frozen != nullptr) snap.frozen->ForEachVisible(read_ts, eval);
        snap.delta->ForEachVisible(read_ts, eval);
      }
      net_.Transfer(node, 0, 64);
      node_sums[node] = sum;
    });
  }
  for (std::thread& t : workers) t.join();
  double total = 0;
  for (double s : node_sums) total += s;
  return total;
}

size_t DistributedEngine::TotalRows() {
  Timestamp read_ts = current_ts();
  size_t total = 0;
  for (int p = 0; p < options_.num_partitions; ++p) {
    Tablet& tablet = *tablets_[p];
    ColumnTable* leader;
    {
      std::lock_guard<std::mutex> lock(tablet.mu);
      leader = tablet.replicas[tablet.leader_r].get();
    }
    ColumnTable::Snapshot snap = leader->GetSnapshot(read_ts);
    BitVector sel;
    snap.main->VisibleMask(read_ts, &sel);
    total += sel.CountSet();
    auto count = [&](uint32_t, const Row&) { ++total; };
    if (snap.frozen != nullptr) snap.frozen->ForEachVisible(read_ts, count);
    snap.delta->ForEachVisible(read_ts, count);
  }
  return total;
}

bool DistributedEngine::CheckReplicasConsistent() {
  Timestamp read_ts = current_ts();
  for (int p = 0; p < options_.num_partitions; ++p) {
    Tablet& tablet = *tablets_[p];
    std::vector<std::vector<Row>> contents(tablet.replicas.size());
    for (size_t r = 0; r < tablet.replicas.size(); ++r) {
      ColumnTable::Snapshot snap = tablet.replicas[r]->GetSnapshot(read_ts);
      BitVector sel;
      snap.main->VisibleMask(read_ts, &sel);
      for (size_t i = sel.FindNextSet(0); i < sel.size();
           i = sel.FindNextSet(i + 1)) {
        contents[r].push_back(snap.main->GetRow(static_cast<RowId>(i)));
      }
      auto collect = [&](uint32_t, const Row& row) {
        contents[r].push_back(row);
      };
      if (snap.frozen != nullptr) {
        snap.frozen->ForEachVisible(read_ts, collect);
      }
      snap.delta->ForEachVisible(read_ts, collect);
      std::sort(contents[r].begin(), contents[r].end(),
                [](const Row& a, const Row& b) {
                  return HashKeyOf(a) < HashKeyOf(b);
                });
    }
    for (size_t r = 1; r < contents.size(); ++r) {
      if (contents[r].size() != contents[0].size()) return false;
      for (size_t i = 0; i < contents[0].size(); ++i) {
        if (HashKeyOf(contents[r][i]) != HashKeyOf(contents[0][i])) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace oltap
