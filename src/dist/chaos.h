#ifndef OLTAP_DIST_CHAOS_H_
#define OLTAP_DIST_CHAOS_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "dist/network.h"

namespace oltap {

// A pre-generated, seeded schedule of cluster faults: each round picks one
// structural fault (symmetric/asymmetric partition, node crash, or pure
// link noise) plus per-round probabilistic link faults, all derived from
// one Rng at construction. Same (seed, options) ⇒ byte-identical schedule,
// which is what makes the chaos torture test and E15 reproducible — the
// determinism is itself under test (ChaosPlanDeterminism).
//
// The driver loop is: Install(i, net) → run traffic → Restore(i, net) →
// let the system re-converge → next round.
class ChaosPlan {
 public:
  struct Options {
    int num_nodes = 4;
    int rounds = 24;
    uint64_t seed = 42;
    // Relative weights of the structural fault drawn each round.
    double symmetric_partition_weight = 0.4;
    double asymmetric_partition_weight = 0.2;
    double crash_weight = 0.2;
    double noise_only_weight = 0.2;
    // Upper bounds for the per-round link-noise draw.
    double max_drop_probability = 0.05;
    double max_duplicate_probability = 0.02;
    int64_t max_jitter_us = 200;
  };

  struct Round {
    enum class Kind : uint8_t {
      kSymmetricPartition = 0,
      kAsymmetricPartition = 1,
      kCrash = 2,
      kNoiseOnly = 3,
    };
    Kind kind = Kind::kNoiseOnly;
    // kSymmetric/kAsymmetricPartition: minority side (cut away from the
    // rest; for asymmetric, messages *from* this group are the ones lost).
    // kCrash: the single crashed node.
    std::set<int> group;
    SimulatedNetwork::FaultOptions faults;  // per-round link noise
  };

  explicit ChaosPlan(const Options& options);

  int num_rounds() const { return static_cast<int>(rounds_.size()); }
  const Round& round(int i) const { return rounds_[i]; }

  // Applies round i's structural fault + link noise to `net`.
  void Install(int i, SimulatedNetwork* net) const;
  // Heals the partition, restarts the crashed node, clears link noise.
  void Restore(int i, SimulatedNetwork* net) const;

  // Compact human/JSON-safe schedule description, e.g.
  // "part{1,3}|crash{2}|noise" — goes into BENCH_*.json so fault-injected
  // perf numbers stay attributable to their exact schedule.
  std::string Describe() const;

  static const char* KindToString(Round::Kind kind);

 private:
  Options options_;
  std::vector<Round> rounds_;
};

}  // namespace oltap

#endif  // OLTAP_DIST_CHAOS_H_
