#include "common/status.h"

namespace oltap {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace oltap
