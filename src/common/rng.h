#ifndef OLTAP_COMMON_RNG_H_
#define OLTAP_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace oltap {

// Deterministic, seedable PRNG (xoshiro256**). All workload generators and
// tests use this so runs are reproducible; never std::random_device in
// library code.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);
  // Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);
  // Uniform in [0, 1).
  double NextDouble();
  // True with probability p.
  bool Bernoulli(double p);

  // Zipfian-distributed value in [0, n). theta in (0,1); 0.99 ≈ YCSB default.
  // Uses the Gray et al. rejection-free method with cached constants.
  uint64_t Zipf(uint64_t n, double theta = 0.99);

  // TPC-C NURand non-uniform random, per the spec: NURand(A, x, y).
  int64_t NURand(int64_t a, int64_t x, int64_t y);

  // Random lowercase ASCII string with length in [min_len, max_len].
  std::string AlphaString(size_t min_len, size_t max_len);
  // Random digit string of exactly len characters.
  std::string DigitString(size_t len);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  struct ZipfState {
    uint64_t n = 0;
    double theta = 0;
    double zetan = 0;
    double alpha = 0;
    double eta = 0;
    double zeta2 = 0;
  };

  uint64_t s_[4];
  ZipfState zipf_;
  int64_t nurand_c_ = -1;
};

}  // namespace oltap

#endif  // OLTAP_COMMON_RNG_H_
