#include "common/arena.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace oltap {

Arena::Arena(size_t initial_block_size, size_t max_block_size)
    : initial_block_size_(initial_block_size),
      max_block_size_(max_block_size),
      next_block_size_(initial_block_size) {
  OLTAP_CHECK(initial_block_size > 0);
  OLTAP_CHECK(max_block_size >= initial_block_size);
}

Arena::Block* Arena::AddBlock(size_t min_size) {
  size_t size = std::max(next_block_size_, min_size);
  next_block_size_ = std::min(next_block_size_ * 2, max_block_size_);
  Block block;
  block.data = std::make_unique<uint8_t[]>(size);
  block.size = size;
  blocks_.push_back(std::move(block));
  return &blocks_.back();
}

void* Arena::Allocate(size_t size, size_t alignment) {
  OLTAP_DCHECK(alignment != 0 && (alignment & (alignment - 1)) == 0);
  std::lock_guard<std::mutex> lock(mu_);
  Block* block = blocks_.empty() ? nullptr : &blocks_.back();
  size_t padded = 0;
  if (block != nullptr) {
    uintptr_t base = reinterpret_cast<uintptr_t>(block->data.get());
    uintptr_t cur = base + block->used;
    uintptr_t aligned = (cur + alignment - 1) & ~(alignment - 1);
    padded = (aligned - cur) + size;
    if (block->used + padded > block->size) block = nullptr;
  }
  if (block == nullptr) {
    // A fresh block from make_unique is suitably aligned for any fundamental
    // alignment; over-allocate to cover extended alignments.
    block = AddBlock(size + alignment);
    uintptr_t base = reinterpret_cast<uintptr_t>(block->data.get());
    uintptr_t aligned = (base + alignment - 1) & ~(alignment - 1);
    padded = (aligned - base) + size;
  }
  uintptr_t cur =
      reinterpret_cast<uintptr_t>(block->data.get()) + block->used;
  uintptr_t aligned = (cur + alignment - 1) & ~(alignment - 1);
  block->used += padded;
  bytes_allocated_ += size;
  return reinterpret_cast<void*>(aligned);
}

void* Arena::AllocateAndCopy(const void* data, size_t size) {
  void* mem = Allocate(size == 0 ? 1 : size);
  if (size > 0) std::memcpy(mem, data, size);
  return mem;
}

size_t Arena::bytes_reserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

size_t Arena::bytes_allocated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_allocated_;
}

void Arena::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_.clear();
  next_block_size_ = initial_block_size_;
  bytes_allocated_ = 0;
}

}  // namespace oltap
