#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace oltap {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  OLTAP_DCHECK(n > 0);
  // Lemire's nearly-divisionless bounded random.
  __uint128_t m = static_cast<__uint128_t>(Next()) * n;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < n) {
    uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(Next()) * n;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  OLTAP_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::Zipf(uint64_t n, double theta) {
  OLTAP_DCHECK(n > 0);
  if (zipf_.n != n || zipf_.theta != theta) {
    zipf_.n = n;
    zipf_.theta = theta;
    zipf_.zetan = Zeta(n, theta);
    zipf_.zeta2 = Zeta(2, theta);
    zipf_.alpha = 1.0 / (1.0 - theta);
    zipf_.eta = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
                (1.0 - zipf_.zeta2 / zipf_.zetan);
  }
  double u = NextDouble();
  double uz = u * zipf_.zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  uint64_t v = static_cast<uint64_t>(
      double(n) * std::pow(zipf_.eta * u - zipf_.eta + 1.0, zipf_.alpha));
  return v >= n ? n - 1 : v;
}

int64_t Rng::NURand(int64_t a, int64_t x, int64_t y) {
  if (nurand_c_ < 0) nurand_c_ = UniformRange(0, a);
  return (((UniformRange(0, a) | UniformRange(x, y)) + nurand_c_) %
          (y - x + 1)) +
         x;
}

std::string Rng::AlphaString(size_t min_len, size_t max_len) {
  size_t len = min_len + Uniform(max_len - min_len + 1);
  std::string out(len, 'a');
  for (char& c : out) c = static_cast<char>('a' + Uniform(26));
  return out;
}

std::string Rng::DigitString(size_t len) {
  std::string out(len, '0');
  for (char& c : out) c = static_cast<char>('0' + Uniform(10));
  return out;
}

}  // namespace oltap
