#ifndef OLTAP_COMMON_TYPES_H_
#define OLTAP_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace oltap {

// Logical position of a row within a table's storage (column-store rowid or
// delta offset). 32 bits bounds a single table fragment at 4B rows, which is
// ample for an in-memory engine; the distributed layer shards well before.
using RowId = uint32_t;
inline constexpr RowId kInvalidRowId = std::numeric_limits<RowId>::max();

// MVCC timestamps. The global timestamp oracle hands out monotonically
// increasing commit timestamps. While a transaction is active, versions it
// wrote carry (kTxnIdFlag | txn_id) in begin/end fields so concurrent
// readers can tell "uncommitted, owned by txn X" from a real timestamp.
using Timestamp = uint64_t;
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max() >> 1;  // below the txn-id flag
inline constexpr Timestamp kTxnIdFlag = uint64_t{1} << 63;

inline constexpr bool IsTxnId(Timestamp t) { return (t & kTxnIdFlag) != 0; }
inline constexpr uint64_t TxnIdOf(Timestamp t) { return t & ~kTxnIdFlag; }
inline constexpr Timestamp MakeTxnMarker(uint64_t txn_id) {
  return kTxnIdFlag | txn_id;
}

}  // namespace oltap

#endif  // OLTAP_COMMON_TYPES_H_
