#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace oltap {

ThreadPool::ThreadPool(size_t num_threads) {
  OLTAP_CHECK(num_threads > 0);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    OLTAP_CHECK(!shutdown_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForChunked(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunked(
    size_t n, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t num_chunks = std::min(n, threads_.size());
  if (num_chunks <= 1) {
    fn(0, n);
    return;
  }
  // `done` is counted under `done_mu` (not an atomic): the waiter below
  // must not be able to observe the final count — and destroy this stack
  // frame — until the finishing worker has released the mutex and is done
  // touching the captured state.
  size_t done = 0;
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t chunk = (n + num_chunks - 1) / num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    size_t begin = c * chunk;
    size_t end = std::min(n, begin + chunk);
    Submit([&, begin, end] {
      fn(begin, end);
      std::lock_guard<std::mutex> lock(done_mu);
      if (++done == num_chunks) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == num_chunks; });
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace oltap
