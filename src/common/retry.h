#ifndef OLTAP_COMMON_RETRY_H_
#define OLTAP_COMMON_RETRY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace oltap {

// Bounded exponential backoff for retrying lossy operations (2PC RPCs,
// replication sends). Attempt numbering is 0-based: BackoffMicros(0) is
// the wait after the first failed attempt.
struct RetryPolicy {
  int max_attempts = 3;  // total tries, including the first; >= 1
  int64_t initial_backoff_us = 100;
  double multiplier = 2.0;
  int64_t max_backoff_us = 10'000;
  // Total wall-clock budget across all attempts (0 = attempts-only). A
  // retry loop gives up once this much time has elapsed since the first
  // try, even with attempts left — an overloaded cluster must fail calls
  // in bounded time instead of stacking backoffs.
  int64_t deadline_us = 0;

  int64_t BackoffMicros(int attempt) const {
    if (initial_backoff_us <= 0) return 0;
    double b = static_cast<double>(initial_backoff_us) *
               std::pow(multiplier, attempt);
    double capped = std::min(b, static_cast<double>(max_backoff_us));
    return static_cast<int64_t>(capped);
  }

  // True if attempt `next_attempt` (0-based) may still run given time
  // `elapsed_us` already spent.
  bool ShouldRetry(int next_attempt, int64_t elapsed_us) const {
    if (next_attempt >= max_attempts) return false;
    if (deadline_us > 0 && elapsed_us >= deadline_us) return false;
    return true;
  }
};

}  // namespace oltap

#endif  // OLTAP_COMMON_RETRY_H_
