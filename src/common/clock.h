#ifndef OLTAP_COMMON_CLOCK_H_
#define OLTAP_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace oltap {

// Clock abstraction: schedulers and the distributed simulator take a Clock*
// so tests can drive virtual time deterministically while benchmarks use
// wall time.
class Clock {
 public:
  virtual ~Clock() = default;
  // Monotonic time in microseconds.
  virtual int64_t NowMicros() const = 0;
};

// Real monotonic clock.
class SystemClock final : public Clock {
 public:
  int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // Shared process-wide instance (stateless).
  static SystemClock* Get() {
    static SystemClock* instance = new SystemClock();
    return instance;
  }
};

// Manually-advanced clock for deterministic tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_acquire);
  }

  void AdvanceMicros(int64_t delta) {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }
  void SetMicros(int64_t t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<int64_t> now_;
};

// Scoped stopwatch over an arbitrary Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock* clock = SystemClock::Get())
      : clock_(clock), start_(clock->NowMicros()) {}

  int64_t ElapsedMicros() const { return clock_->NowMicros() - start_; }
  double ElapsedSeconds() const { return ElapsedMicros() * 1e-6; }
  void Restart() { start_ = clock_->NowMicros(); }

 private:
  const Clock* clock_;
  int64_t start_;
};

}  // namespace oltap

#endif  // OLTAP_COMMON_CLOCK_H_
