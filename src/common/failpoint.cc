#include "common/failpoint.h"

namespace oltap {

Status Failpoint::Evaluate() {
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check under the lock: Disable may have raced the caller's
  // IsActive() fast path.
  if (!active_.load(std::memory_order_relaxed)) return Status::OK();
  ++hits_;
  if (skip_remaining_ > 0) {
    --skip_remaining_;
    return Status::OK();
  }
  if (config_.probability < 1.0 && !rng_.Bernoulli(config_.probability)) {
    return Status::OK();
  }
  ++fires_;
  if (fires_remaining_ > 0 && --fires_remaining_ == 0) {
    // Exhausted: disarm so the site goes back to zero-cost.
    active_.store(false, std::memory_order_relaxed);
  }
  return config_.status;
}

void Failpoint::Enable(const FailpointConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  skip_remaining_ = config.skip;
  fires_remaining_ = config.max_fires;
  hits_ = 0;
  fires_ = 0;
  rng_ = Rng(config.seed);
  active_.store(true, std::memory_order_relaxed);
}

uint64_t Failpoint::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t Failpoint::fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_;
}

FailpointRegistry& FailpointRegistry::Get() {
  static FailpointRegistry* instance = new FailpointRegistry();
  return *instance;
}

Failpoint& FailpointRegistry::Register(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<Failpoint>(name)).first;
  }
  return *it->second;
}

Failpoint* FailpointRegistry::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? nullptr : it->second.get();
}

void FailpointRegistry::Enable(const std::string& name,
                               const FailpointConfig& config) {
  Register(name).Enable(config);
}

void FailpointRegistry::Disable(const std::string& name) {
  Failpoint* fp = Find(name);
  if (fp != nullptr) fp->Disable();
}

void FailpointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, fp] : points_) fp->Disable();
}

std::vector<std::string> FailpointRegistry::ActiveList() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> active;
  for (auto& [name, fp] : points_) {
    if (fp->IsActive()) active.push_back(name);
  }
  return active;
}

}  // namespace oltap
