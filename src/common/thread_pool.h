#ifndef OLTAP_COMMON_THREAD_POOL_H_
#define OLTAP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace oltap {

// Fixed-size worker pool used by parallel scans, the merge pipeline, and the
// workload manager. FIFO queue; tasks must not block indefinitely on other
// queued tasks (the scheduler layer handles priorities and admission above
// this).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` for execution. Never blocks.
  void Submit(std::function<void()> fn);

  // Enqueues and returns a future for the result.
  template <typename F>
  auto SubmitWithResult(F&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    Submit([task]() { (*task)(); });
    return fut;
  }

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  // Chunks indices so small n does not oversubscribe. Each index still
  // dispatches through the std::function — for tight loops prefer
  // ParallelForChunked, which makes one call per contiguous range.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Runs fn(begin, end) over a partition of [0, n) — one call per chunk,
  // one chunk per task — and waits for completion. The callee owns the
  // inner loop, so the per-index indirect-call overhead of ParallelFor
  // disappears and the body can keep per-chunk state in registers.
  void ParallelForChunked(size_t n,
                          const std::function<void(size_t, size_t)>& fn);

  // Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace oltap

#endif  // OLTAP_COMMON_THREAD_POOL_H_
