#ifndef OLTAP_COMMON_ARENA_H_
#define OLTAP_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace oltap {

// Bump-pointer arena allocator for row payloads and MVCC version chains.
//
// Allocations are never individually freed; all memory is released when the
// arena is destroyed (or Reset). Blocks double in size up to `max_block_size`
// so that small tables stay small and large ingests amortize allocation.
//
// Thread safety: Allocate() is guarded by a mutex (the skip-list row store
// allocates from multiple writer threads). For single-threaded bulk loads
// the lock is uncontended and cheap.
class Arena {
 public:
  explicit Arena(size_t initial_block_size = 4096,
                 size_t max_block_size = 1 << 20);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `size` bytes aligned to `alignment` (a power of two).
  // The returned memory is zero-initialized only if the block was fresh;
  // callers must not rely on its contents.
  void* Allocate(size_t size, size_t alignment = 8);

  // Copies `size` bytes of `data` into the arena, returning the copy.
  void* AllocateAndCopy(const void* data, size_t size);

  // Constructs a T in arena memory. T must be trivially destructible (the
  // arena never runs destructors).
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::New requires trivially destructible types");
    void* mem = Allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  // Total bytes reserved from the system (>= bytes handed out).
  size_t bytes_reserved() const;
  // Total bytes handed out to callers.
  size_t bytes_allocated() const;

  // Frees all blocks and returns to the initial state.
  void Reset();

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  // Appends a block of at least min_size bytes. Caller holds mu_.
  Block* AddBlock(size_t min_size);

  const size_t initial_block_size_;
  const size_t max_block_size_;

  mutable std::mutex mu_;
  std::vector<Block> blocks_;
  size_t next_block_size_;
  size_t bytes_allocated_ = 0;
};

}  // namespace oltap

#endif  // OLTAP_COMMON_ARENA_H_
