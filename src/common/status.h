#ifndef OLTAP_COMMON_STATUS_H_
#define OLTAP_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace oltap {

// Error categories used across the library. Mirrors the Arrow/absl style of
// carrying a coarse machine-readable code plus a human-readable message.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kAborted,         // transaction aborts (conflicts, first-committer-wins)
  kDeadlineExceeded,
  kUnavailable,     // e.g. raft leader unknown, node unreachable
  kResourceExhausted,  // admission control shed the request (overload)
  kCorruption,      // log / storage integrity violations
  kNotImplemented,
  kInternal,
};

// Returns a stable lowercase name for `code` ("ok", "aborted", ...).
const char* StatusCodeToString(StatusCode code);

// A cheap, copyable success-or-error value. OK status carries no allocation.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T>: either a value or an error Status. Modeled after arrow::Result.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : repr_(std::move(value)) {}             // NOLINT
  Result(Status status) : repr_(std::move(status)) {}      // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  T& value() & { return std::get<T>(repr_); }
  const T& value() const& { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

// Propagates a non-OK Status out of the enclosing function.
#define OLTAP_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::oltap::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

// Evaluates a Result<T> expression, propagating error or binding the value.
#define OLTAP_ASSIGN_OR_RETURN(lhs, expr)          \
  OLTAP_ASSIGN_OR_RETURN_IMPL(                     \
      OLTAP_CONCAT_NAME(_result_, __LINE__), lhs, expr)
#define OLTAP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()
#define OLTAP_CONCAT_NAME(a, b) OLTAP_CONCAT_NAME_INNER(a, b)
#define OLTAP_CONCAT_NAME_INNER(a, b) a##b

}  // namespace oltap

#endif  // OLTAP_COMMON_STATUS_H_
