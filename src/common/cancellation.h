#ifndef OLTAP_COMMON_CANCELLATION_H_
#define OLTAP_COMMON_CANCELLATION_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"
#include "common/status.h"

namespace oltap {

// Cooperative cancellation + deadline shared between a query submitter
// and the worker executing it. Long-running work polls Check() at batch
// boundaries (one atomic load + one clock read) and unwinds with the
// returned status; the scheduler also consults the token before dispatch
// so work whose deadline passed while queued never runs at all.
class CancellationToken {
 public:
  // No deadline; only explicit Cancel() can stop the work.
  CancellationToken() : clock_(SystemClock::Get()) {}

  // `deadline_us` is absolute on `clock` (0 = none).
  CancellationToken(const Clock* clock, int64_t deadline_us)
      : clock_(clock), deadline_us_(deadline_us) {}

  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool has_deadline() const { return deadline_us_ > 0; }
  int64_t deadline_us() const { return deadline_us_; }

  // OK while the work may keep running; kAborted after Cancel();
  // kDeadlineExceeded once the deadline has passed.
  Status Check() const {
    if (cancelled()) return Status::Aborted("query cancelled");
    if (has_deadline() && clock_->NowMicros() > deadline_us_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  const Clock* clock_;
  const int64_t deadline_us_ = 0;
  std::atomic<bool> cancelled_{false};
};

}  // namespace oltap

#endif  // OLTAP_COMMON_CANCELLATION_H_
