#include "common/bitvector.h"

#include <bit>

#include "common/logging.h"

namespace oltap {

BitVector::BitVector(size_t n, bool initial) { Resize(n, initial); }

void BitVector::Resize(size_t n, bool fill) {
  size_t old_size = size_;
  size_ = n;
  words_.resize((n + 63) / 64, fill ? ~uint64_t{0} : 0);
  if (fill && old_size < n && old_size % 64 != 0) {
    // Bits [old_size, end of old last word) were masked to 0; refill them.
    size_t w = old_size >> 6;
    words_[w] |= ~uint64_t{0} << (old_size & 63);
  }
  MaskTail();
}

void BitVector::MaskTail() {
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (size_ & 63)) - 1;
  }
}

size_t BitVector::CountSet() const {
  size_t n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

size_t BitVector::CountSetPrefix(size_t end) const {
  OLTAP_DCHECK(end <= size_);
  size_t n = 0;
  size_t full_words = end >> 6;
  for (size_t i = 0; i < full_words; ++i) n += std::popcount(words_[i]);
  if (end & 63) {
    uint64_t mask = (uint64_t{1} << (end & 63)) - 1;
    n += std::popcount(words_[full_words] & mask);
  }
  return n;
}

size_t BitVector::FindNextSet(size_t from) const {
  if (from >= size_) return size_;
  size_t w = from >> 6;
  uint64_t word = words_[w] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (word != 0) {
      size_t pos = (w << 6) + static_cast<size_t>(std::countr_zero(word));
      return pos < size_ ? pos : size_;
    }
    if (++w >= words_.size()) return size_;
    word = words_[w];
  }
}

void BitVector::And(const BitVector& other) {
  OLTAP_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::Or(const BitVector& other) {
  OLTAP_DCHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::Not() {
  for (uint64_t& w : words_) w = ~w;
  MaskTail();
}

void BitVector::SetAll() {
  for (uint64_t& w : words_) w = ~uint64_t{0};
  MaskTail();
}

void BitVector::ClearAll() {
  for (uint64_t& w : words_) w = 0;
}

void BitVector::SetRange(size_t lo, size_t hi) {
  OLTAP_DCHECK(lo <= hi && hi <= size_);
  if (lo >= hi) return;
  size_t first_word = lo >> 6;
  size_t last_word = (hi - 1) >> 6;
  uint64_t first_mask = ~uint64_t{0} << (lo & 63);
  uint64_t last_mask = ~uint64_t{0} >> (63 - ((hi - 1) & 63));
  if (first_word == last_word) {
    words_[first_word] |= first_mask & last_mask;
    return;
  }
  words_[first_word] |= first_mask;
  for (size_t w = first_word + 1; w < last_word; ++w) {
    words_[w] = ~uint64_t{0};
  }
  words_[last_word] |= last_mask;
}

void BitVector::AppendSetIndices(std::vector<uint32_t>* out) const {
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      out->push_back(static_cast<uint32_t>((w << 6) + bit));
      word &= word - 1;
    }
  }
}

}  // namespace oltap
