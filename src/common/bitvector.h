#ifndef OLTAP_COMMON_BITVECTOR_H_
#define OLTAP_COMMON_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oltap {

// Dense bit vector used for selection vectors, null masks, and positional
// delete vectors. Bit i of word i/64 is bit (i%64), LSB-first.
//
// Not thread-safe for concurrent mutation; concurrent readers are fine once
// construction/mutation has completed (the delta store publishes delete
// vectors with external synchronization).
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t n, bool initial = false);

  size_t size() const { return size_; }

  void Resize(size_t n, bool fill = false);

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Assign(size_t i, bool v) {
    if (v) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  // Number of set bits.
  size_t CountSet() const;
  // Number of set bits in [0, end).
  size_t CountSetPrefix(size_t end) const;

  // Index of the first set bit at or after `from`; size() if none.
  size_t FindNextSet(size_t from) const;

  // this &= other / this |= other. Sizes must match.
  void And(const BitVector& other);
  void Or(const BitVector& other);
  // Flips every bit (tail bits beyond size() stay zero).
  void Not();

  void SetAll();
  void ClearAll();
  // Sets bits [lo, hi), word-at-a-time (RLE scans fill long runs).
  void SetRange(size_t lo, size_t hi);

  // Appends the indices of all set bits to `out`.
  void AppendSetIndices(std::vector<uint32_t>* out) const;

  // Raw word access for SWAR scan kernels.
  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }
  size_t num_words() const { return words_.size(); }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  // Zeroes bits at positions >= size_ in the last word.
  void MaskTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace oltap

#endif  // OLTAP_COMMON_BITVECTOR_H_
