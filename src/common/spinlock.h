#ifndef OLTAP_COMMON_SPINLOCK_H_
#define OLTAP_COMMON_SPINLOCK_H_

#include <atomic>

namespace oltap {

// Tiny test-and-test-and-set spinlock for short critical sections in hot
// structures (version-chain install, delta append). Satisfies Lockable so it
// works with std::lock_guard.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        // Busy-wait; critical sections are a handful of instructions.
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace oltap

#endif  // OLTAP_COMMON_SPINLOCK_H_
