#ifndef OLTAP_COMMON_HASH_H_
#define OLTAP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace oltap {

// 64-bit mixing and hashing utilities used by hash joins, hash aggregation,
// dictionaries, and partition routing. Quality matters more than raw speed
// here because probe chains dominate; we use a splitmix64-style finalizer
// and an FNV-1a-with-mix string hash.

inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t HashInt64(int64_t v) {
  return Mix64(static_cast<uint64_t>(v));
}

inline uint64_t HashDouble(double v) {
  // Normalize -0.0 to +0.0 so equal values hash equally.
  if (v == 0.0) v = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix64(bits);
}

inline uint64_t HashBytes(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  // Consume 8 bytes at a time, then the tail.
  while (len >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    h = (h ^ chunk) * 0x100000001b3ULL;
    h = Mix64(h);
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    h = (h ^ *p) * 0x100000001b3ULL;
    ++p;
    --len;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

// Combines two hashes (order-dependent), for multi-column keys.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace oltap

#endif  // OLTAP_COMMON_HASH_H_
