#ifndef OLTAP_COMMON_LOGGING_H_
#define OLTAP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace oltap {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Process-wide minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Stream-style log sink. Emits on destruction; aborts the process for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace oltap

#define OLTAP_LOG(level)                                              \
  ::oltap::internal::LogMessage(::oltap::LogLevel::k##level, __FILE__, \
                                __LINE__)

// Invariant checks. OLTAP_CHECK is always on; OLTAP_DCHECK compiles out in
// NDEBUG builds. Both abort with file/line on failure.
#define OLTAP_CHECK(cond)                                      \
  if (!(cond))                                                 \
  OLTAP_LOG(Fatal) << "Check failed: " #cond " "

#ifdef NDEBUG
#define OLTAP_DCHECK(cond) \
  if (false) OLTAP_LOG(Fatal) << ""
#else
#define OLTAP_DCHECK(cond) OLTAP_CHECK(cond)
#endif

#define OLTAP_CHECK_OK(expr)                                  \
  do {                                                        \
    ::oltap::Status _st = (expr);                             \
    OLTAP_CHECK(_st.ok()) << _st.ToString();                  \
  } while (0)

#endif  // OLTAP_COMMON_LOGGING_H_
