#ifndef OLTAP_COMMON_FAILPOINT_H_
#define OLTAP_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace oltap {

// Fault-injection sites ("failpoints") compiled into library code, in the
// style of FreeBSD fail(9) / TiKV fail-rs. A site is declared inline with
// OLTAP_FAILPOINT("wal.append.torn"); tests arm it through the global
// registry with a count / probability / error-status trigger. When a site
// is not armed its entire cost is one relaxed atomic load and a
// predictable branch, so failpoints stay in release builds.

// How an armed failpoint decides whether a given hit fires.
struct FailpointConfig {
  // Hits to pass through untouched before the site becomes eligible to
  // fire ("fail the 7th WAL append").
  int skip = 0;
  // Fire at most this many times, then disarm automatically; <= 0 means
  // unlimited (fire until Disable).
  int max_fires = 1;
  // Chance that an eligible hit fires. Draws come from a deterministic
  // per-failpoint Rng seeded below, so runs are reproducible.
  double probability = 1.0;
  // The error the firing site injects.
  Status status = Status::Internal("injected failure");
  uint64_t seed = 42;
};

// One named injection site. Instances live forever in the registry;
// call sites cache a reference in a function-local static.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}

  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }

  // The only cost paid on un-armed hot paths: a relaxed atomic load.
  bool IsActive() const { return active_.load(std::memory_order_relaxed); }

  // Records a hit and applies the trigger (skip, then probability, then
  // max_fires). Returns the configured error when firing, OK otherwise.
  // Thread-safe; counters are only maintained while armed.
  Status Evaluate();

  void Enable(const FailpointConfig& config);
  void Disable() { active_.store(false, std::memory_order_relaxed); }

  // Hits / fires since the last Enable.
  uint64_t hits() const;
  uint64_t fires() const;

 private:
  const std::string name_;
  std::atomic<bool> active_{false};

  mutable std::mutex mu_;
  FailpointConfig config_;
  int skip_remaining_ = 0;
  int fires_remaining_ = 0;  // <= 0 means unlimited
  uint64_t hits_ = 0;
  uint64_t fires_ = 0;
  Rng rng_{42};
};

// Process-wide name -> Failpoint map. Registration is idempotent and
// thread-safe; failpoints are never destroyed (sites hold references).
class FailpointRegistry {
 public:
  static FailpointRegistry& Get();

  Failpoint& Register(const std::string& name);

  // nullptr if no site with this name has been registered or enabled yet.
  Failpoint* Find(const std::string& name);

  // Arms `name`, registering it on the fly (tests may arm before the
  // first hit registers the site).
  void Enable(const std::string& name, const FailpointConfig& config);
  void Disable(const std::string& name);
  void DisableAll();

  // Names of every currently-armed failpoint, sorted. Test fixtures use
  // this to assert no site leaked past a test's lifetime.
  std::vector<std::string> ActiveList();

 private:
  FailpointRegistry() = default;

  std::mutex mu_;
  std::map<std::string, std::unique_ptr<Failpoint>> points_;
};

// RAII arm/disarm for tests.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, const FailpointConfig& config)
      : name_(std::move(name)) {
    FailpointRegistry::Get().Enable(name_, config);
  }
  ~ScopedFailpoint() { FailpointRegistry::Get().Disable(name_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  const std::string name_;
};

}  // namespace oltap

// Declares a failpoint inside a function returning Status or Result<T>:
// when the armed site fires, the injected error is returned from the
// enclosing function. Inactive cost: one relaxed atomic load + branch.
#define OLTAP_FAILPOINT(name)                                  \
  do {                                                         \
    static ::oltap::Failpoint& _oltap_fp =                     \
        ::oltap::FailpointRegistry::Get().Register(name);      \
    if (_oltap_fp.IsActive()) {                                \
      ::oltap::Status _oltap_fp_st = _oltap_fp.Evaluate();     \
      if (!_oltap_fp_st.ok()) return _oltap_fp_st;             \
    }                                                          \
  } while (0)

// Expression form for sites that need custom fault handling (torn writes,
// lost messages): evaluates to the fired Status, or OK when the site is
// inactive or elects not to fire this hit.
#define OLTAP_FAILPOINT_STATUS(name)                           \
  ([]() -> ::oltap::Status {                                   \
    static ::oltap::Failpoint& _oltap_fp =                     \
        ::oltap::FailpointRegistry::Get().Register(name);      \
    if (!_oltap_fp.IsActive()) return ::oltap::Status::OK();   \
    return _oltap_fp.Evaluate();                               \
  }())

#endif  // OLTAP_COMMON_FAILPOINT_H_
