#include "sched/workload_manager.h"

#include <algorithm>

#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace oltap {

namespace {

obs::Gauge* QueueDepthGauge(QueryClass qc) {
  static obs::Gauge* oltp =
      obs::MetricsRegistry::Default()->GetGauge("wm.queue_depth.oltp");
  static obs::Gauge* olap =
      obs::MetricsRegistry::Default()->GetGauge("wm.queue_depth.olap");
  return qc == QueryClass::kOltp ? oltp : olap;
}

}  // namespace

const char* SchedulingPolicyToString(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kOltpPriority:
      return "oltp-priority";
    case SchedulingPolicy::kReservedWorkers:
      return "reserved-workers";
  }
  return "?";
}

WorkloadManager::WorkloadManager(const Options& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : SystemClock::Get()) {
  OLTAP_CHECK(options_.num_workers > 0);
  if (options_.policy == SchedulingPolicy::kReservedWorkers) {
    OLTAP_CHECK(options_.reserved_oltp_workers > 0 &&
                options_.reserved_oltp_workers < options_.num_workers)
        << "reserved workers must leave room for OLAP";
  }
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkloadManager::~WorkloadManager() { Shutdown(); }

void WorkloadManager::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Workers exit immediately on shutdown; fail whatever they left queued
  // so no submitter blocks on a promise that will never resolve.
  std::vector<std::unique_ptr<Task>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto* q : {&oltp_queue_, &olap_queue_}) {
      while (!q->empty()) {
        orphans.push_back(std::move(q->front()));
        q->pop_front();
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& task : orphans) {
      memory_in_use_ -= std::min(memory_in_use_, task->est_memory_bytes);
    }
  }
  for (auto& task : orphans) {
    task->done.set_value(
        Status::Unavailable("workload manager shut down before task ran"));
  }
  drain_cv_.notify_all();
}

size_t WorkloadManager::memory_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_in_use_;
}

std::future<Status> WorkloadManager::Submit(QueryClass qc,
                                            std::function<void()> work) {
  return SubmitCancellable(
             qc, /*deadline_us=*/0,
             [w = std::move(work)](const CancellationToken&) {
               w();
               return Status::OK();
             })
      .done;
}

WorkloadManager::Submission WorkloadManager::SubmitCancellable(
    QueryClass qc, int64_t deadline_us, CancellableWork work) {
  QuerySpec spec;
  spec.deadline_us = deadline_us;
  return SubmitBudgeted(
      qc, spec,
      [w = std::move(work)](const CancellationToken& token, const QueryGrant&) {
        return w(token);
      });
}

WorkloadManager::Submission WorkloadManager::SubmitBudgeted(
    QueryClass qc, const QuerySpec& spec, BudgetedWork work) {
  auto task = std::make_unique<Task>();
  task->qc = qc;
  task->work = std::move(work);
  task->est_memory_bytes = spec.est_memory_bytes;
  task->submit_us = clock_->NowMicros();
  task->token = std::make_shared<CancellationToken>(
      clock_,
      spec.deadline_us > 0 ? task->submit_us + spec.deadline_us : 0);

  Submission sub;
  sub.done = task->done.get_future();
  sub.token = task->token;

  auto shed = [&](std::string why) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* shed_count =
        obs::MetricsRegistry::Default()->GetCounter("sched.shed");
    shed_count->Add(1);
    return Status::ResourceExhausted(std::move(why));
  };

  Status admit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status injected = OLTAP_FAILPOINT_STATUS("wm.admit.reject");
    size_t queue_limit = qc == QueryClass::kOltp
                             ? options_.oltp_admission_limit
                             : options_.olap_admission_limit;
    auto& queue = qc == QueryClass::kOltp ? oltp_queue_ : olap_queue_;
    if (shutdown_) {
      admit = Status::Unavailable("workload manager is shut down");
    } else if (!injected.ok()) {
      admit = injected;
    } else if (queue_limit > 0 && queue.size() >= queue_limit) {
      // Bounded admission queue: shedding beats unbounded queueing — a
      // rejected query can be retried, a queued-forever one holds its
      // client's resources while missing its deadline anyway.
      if (qc == QueryClass::kOlap) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter* rejected =
            obs::MetricsRegistry::Default()->GetCounter("wm.rejected_olap");
        rejected->Add(1);
      }
      admit = shed(qc == QueryClass::kOltp ? "OLTP admission queue full"
                                           : "OLAP admission queue full");
    } else if (qc == QueryClass::kOlap && options_.memory_budget_bytes > 0 &&
               task->est_memory_bytes > 0 &&
               memory_in_use_ + task->est_memory_bytes >
                   options_.memory_budget_bytes) {
      // Soft memory budget: only OLAP is shed for memory — transactional
      // work is small and is the class overload protection exists to
      // protect.
      admit = shed("memory budget exhausted");
    }
    if (admit.ok()) {
      task->grant.max_dop = options_.max_parallel_dop;
      if (qc == QueryClass::kOlap && options_.olap_degrade_threshold > 0 &&
          queue.size() >= options_.olap_degrade_threshold) {
        // Pressure short of shedding: admit, but tell the query to run
        // with a reduced batch budget (sampled / small-batch scan) and
        // throttled intra-query parallelism so analytics bend before
        // OLTP latency breaks.
        task->grant.degraded = true;
        task->grant.batch_budget_rows = options_.degraded_batch_rows;
        task->grant.max_dop = options_.degraded_dop;
        degraded_.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter* degraded_count =
            obs::MetricsRegistry::Default()->GetCounter("sched.degraded");
        degraded_count->Add(1);
      }
      memory_in_use_ += task->est_memory_bytes;
      admitted_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* admitted_count =
          obs::MetricsRegistry::Default()->GetCounter("sched.admitted");
      admitted_count->Add(1);
      queue.push_back(std::move(task));
      QueueDepthGauge(qc)->Set(static_cast<int64_t>(queue.size()));
    }
  }
  if (!admit.ok()) {
    task->done.set_value(std::move(admit));
    return sub;
  }
  cv_.notify_all();
  return sub;
}

std::unique_ptr<WorkloadManager::Task> WorkloadManager::NextTask(
    size_t worker_index, std::unique_lock<std::mutex>* lock) {
  while (true) {
    if (shutdown_) return nullptr;
    std::deque<std::unique_ptr<Task>>* source = nullptr;
    switch (options_.policy) {
      case SchedulingPolicy::kFifo: {
        // One logical FIFO: pick the older head of the two queues.
        if (!oltp_queue_.empty() && !olap_queue_.empty()) {
          source = oltp_queue_.front()->submit_us <=
                           olap_queue_.front()->submit_us
                       ? &oltp_queue_
                       : &olap_queue_;
        } else if (!oltp_queue_.empty()) {
          source = &oltp_queue_;
        } else if (!olap_queue_.empty()) {
          source = &olap_queue_;
        }
        break;
      }
      case SchedulingPolicy::kOltpPriority:
        if (!oltp_queue_.empty()) {
          source = &oltp_queue_;
        } else if (!olap_queue_.empty()) {
          source = &olap_queue_;
        }
        break;
      case SchedulingPolicy::kReservedWorkers:
        if (worker_index < options_.reserved_oltp_workers) {
          if (!oltp_queue_.empty()) source = &oltp_queue_;
        } else {
          if (!olap_queue_.empty()) source = &olap_queue_;
        }
        break;
    }
    if (source != nullptr) {
      std::unique_ptr<Task> task = std::move(source->front());
      source->pop_front();
      QueueDepthGauge(task->qc)->Set(static_cast<int64_t>(source->size()));
      return task;
    }
    cv_.wait(*lock);
  }
}

void WorkloadManager::WorkerLoop(size_t worker_index) {
  while (true) {
    std::unique_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task = NextTask(worker_index, &lock);
      if (task == nullptr) return;
      ++active_;
    }
    // A query cancelled or past its deadline while queued completes
    // without running — this is what lets Drain() make progress through
    // an OLAP flood instead of executing every stale query.
    Status result = task->token->Check();
    if (result.ok()) {
      result = task->work(*task->token, task->grant);
    } else if (result.code() == StatusCode::kDeadlineExceeded) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter* expired =
          obs::MetricsRegistry::Default()->GetCounter("wm.expired_in_queue");
      expired->Add(1);
    }
    int64_t latency = clock_->NowMicros() - task->submit_us;
    Record(task->qc, latency);
    task->done.set_value(std::move(result));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      memory_in_use_ -= std::min(memory_in_use_, task->est_memory_bytes);
      if (active_ == 0 &&
          (shutdown_ || (oltp_queue_.empty() && olap_queue_.empty()))) {
        drain_cv_.notify_all();
      }
    }
  }
}

void WorkloadManager::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // During shutdown workers exit without emptying the queues (Shutdown
  // fails the orphans), so only require that no task is still running.
  drain_cv_.wait(lock, [this] {
    return active_ == 0 &&
           (shutdown_ || (oltp_queue_.empty() && olap_queue_.empty()));
  });
}

void WorkloadManager::Record(QueryClass qc, int64_t latency_us) {
  static obs::Histogram* oltp_lat =
      obs::MetricsRegistry::Default()->GetHistogram("wm.latency_us.oltp");
  static obs::Histogram* olap_lat =
      obs::MetricsRegistry::Default()->GetHistogram("wm.latency_us.olap");
  (qc == QueryClass::kOltp ? oltp_lat : olap_lat)
      ->Record(latency_us > 0 ? static_cast<uint64_t>(latency_us) : 0);
  LatencyShard& shard =
      latency_shards_[obs::ThreadShardIndex() % kLatencyShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.samples[static_cast<int>(qc)].push_back(latency_us);
}

LatencySummary WorkloadManager::StatsFor(QueryClass qc) const {
  std::vector<int64_t> lat;
  for (LatencyShard& shard : latency_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    const std::vector<int64_t>& s = shard.samples[static_cast<int>(qc)];
    lat.insert(lat.end(), s.begin(), s.end());
  }
  LatencySummary s;
  s.count = lat.size();
  if (lat.empty()) return s;
  std::sort(lat.begin(), lat.end());
  double total = 0;
  for (int64_t v : lat) total += static_cast<double>(v);
  s.mean_us = total / static_cast<double>(lat.size());
  auto pct = [&](double p) {
    size_t idx = static_cast<size_t>(p * static_cast<double>(lat.size() - 1));
    return lat[idx];
  };
  s.p50_us = pct(0.50);
  s.p95_us = pct(0.95);
  s.p99_us = pct(0.99);
  s.p999_us = pct(0.999);
  s.max_us = lat.back();
  return s;
}

}  // namespace oltap
