#include "sched/workload_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace oltap {

const char* SchedulingPolicyToString(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kOltpPriority:
      return "oltp-priority";
    case SchedulingPolicy::kReservedWorkers:
      return "reserved-workers";
  }
  return "?";
}

WorkloadManager::WorkloadManager(const Options& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : SystemClock::Get()) {
  OLTAP_CHECK(options_.num_workers > 0);
  if (options_.policy == SchedulingPolicy::kReservedWorkers) {
    OLTAP_CHECK(options_.reserved_oltp_workers > 0 &&
                options_.reserved_oltp_workers < options_.num_workers)
        << "reserved workers must leave room for OLAP";
  }
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkloadManager::~WorkloadManager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::future<Status> WorkloadManager::Submit(QueryClass qc,
                                            std::function<void()> work) {
  auto task = std::make_unique<Task>();
  task->qc = qc;
  task->work = std::move(work);
  task->submit_us = clock_->NowMicros();
  std::future<Status> fut = task->done.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (qc == QueryClass::kOlap && options_.olap_admission_limit > 0 &&
        olap_queue_.size() >= options_.olap_admission_limit) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      task->done.set_value(
          Status::Unavailable("OLAP admission limit reached"));
      return fut;
    }
    (qc == QueryClass::kOltp ? oltp_queue_ : olap_queue_)
        .push_back(std::move(task));
  }
  cv_.notify_all();
  return fut;
}

std::unique_ptr<WorkloadManager::Task> WorkloadManager::NextTask(
    size_t worker_index, std::unique_lock<std::mutex>* lock) {
  while (true) {
    if (shutdown_) return nullptr;
    std::deque<std::unique_ptr<Task>>* source = nullptr;
    switch (options_.policy) {
      case SchedulingPolicy::kFifo: {
        // One logical FIFO: pick the older head of the two queues.
        if (!oltp_queue_.empty() && !olap_queue_.empty()) {
          source = oltp_queue_.front()->submit_us <=
                           olap_queue_.front()->submit_us
                       ? &oltp_queue_
                       : &olap_queue_;
        } else if (!oltp_queue_.empty()) {
          source = &oltp_queue_;
        } else if (!olap_queue_.empty()) {
          source = &olap_queue_;
        }
        break;
      }
      case SchedulingPolicy::kOltpPriority:
        if (!oltp_queue_.empty()) {
          source = &oltp_queue_;
        } else if (!olap_queue_.empty()) {
          source = &olap_queue_;
        }
        break;
      case SchedulingPolicy::kReservedWorkers:
        if (worker_index < options_.reserved_oltp_workers) {
          if (!oltp_queue_.empty()) source = &oltp_queue_;
        } else {
          if (!olap_queue_.empty()) source = &olap_queue_;
        }
        break;
    }
    if (source != nullptr) {
      std::unique_ptr<Task> task = std::move(source->front());
      source->pop_front();
      return task;
    }
    cv_.wait(*lock);
  }
}

void WorkloadManager::WorkerLoop(size_t worker_index) {
  while (true) {
    std::unique_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task = NextTask(worker_index, &lock);
      if (task == nullptr) return;
      ++active_;
    }
    task->work();
    int64_t latency = clock_->NowMicros() - task->submit_us;
    Record(task->qc, latency);
    task->done.set_value(Status::OK());
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (oltp_queue_.empty() && olap_queue_.empty() && active_ == 0) {
        drain_cv_.notify_all();
      }
    }
  }
}

void WorkloadManager::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] {
    return oltp_queue_.empty() && olap_queue_.empty() && active_ == 0;
  });
}

void WorkloadManager::Record(QueryClass qc, int64_t latency_us) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  latencies_[static_cast<int>(qc)].push_back(latency_us);
}

LatencySummary WorkloadManager::StatsFor(QueryClass qc) const {
  std::vector<int64_t> lat;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    lat = latencies_[static_cast<int>(qc)];
  }
  LatencySummary s;
  s.count = lat.size();
  if (lat.empty()) return s;
  std::sort(lat.begin(), lat.end());
  double total = 0;
  for (int64_t v : lat) total += static_cast<double>(v);
  s.mean_us = total / static_cast<double>(lat.size());
  auto pct = [&](double p) {
    size_t idx = static_cast<size_t>(p * static_cast<double>(lat.size() - 1));
    return lat[idx];
  };
  s.p50_us = pct(0.50);
  s.p95_us = pct(0.95);
  s.p99_us = pct(0.99);
  s.max_us = lat.back();
  return s;
}

}  // namespace oltap
