#include "sched/merge_daemon.h"

#include <chrono>

namespace oltap {

MergeDaemon::MergeDaemon(Catalog* catalog, TransactionManager* tm,
                         const Options& options)
    : catalog_(catalog), tm_(tm), options_(options) {
  if (options_.autostart) {
    thread_ = std::thread([this] { Loop(); });
  }
}

MergeDaemon::~MergeDaemon() { Stop(); }

void MergeDaemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

size_t MergeDaemon::RunOnce() {
  size_t merged = 0;
  Timestamp merge_ts = tm_->oracle()->CurrentReadTs();
  Timestamp horizon = tm_->OldestActiveSnapshot();
  for (Table* table : catalog_->AllTables()) {
    if (!table->Mergeable()) continue;
    ColumnTable* ct = table->column_table();
    if (ct == nullptr || ct->delta_size() < options_.delta_row_threshold) {
      continue;
    }
    table->MergeDelta(merge_ts, horizon);
    ++merged;
    merges_.fetch_add(1, std::memory_order_relaxed);
  }
  return merged;
}

void MergeDaemon::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    RunOnce();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_; });
  }
}

}  // namespace oltap
