#include "sched/merge_daemon.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "obs/metrics.h"

namespace oltap {

MergeDaemon::MergeDaemon(Catalog* catalog, TransactionManager* tm,
                         const Options& options)
    : catalog_(catalog), tm_(tm), options_(options) {
  if (options_.autostart) {
    thread_ = std::thread([this] { Loop(); });
  }
}

MergeDaemon::~MergeDaemon() { Stop(); }

void MergeDaemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

size_t MergeDaemon::RunOnce() {
  auto* registry = obs::MetricsRegistry::Default();
  static obs::Counter* runs = registry->GetCounter("merge.runs");
  static obs::Counter* tables_merged =
      registry->GetCounter("merge.tables_merged");
  static obs::Counter* rows_merged = registry->GetCounter("merge.rows_merged");
  static obs::Counter* bytes_merged =
      registry->GetCounter("merge.bytes_merged");
  static obs::Gauge* delta_rows = registry->GetGauge("storage.delta_rows");
  static obs::Gauge* freshness =
      registry->GetGauge("storage.freshness_lag_us");
  runs->Add(1);

  size_t merged = 0;
  int64_t now_us = SystemClock::Get()->NowMicros();
  int64_t max_lag_us = 0;
  int64_t unmerged_rows = 0;
  Timestamp merge_ts = tm_->oracle()->CurrentReadTs();
  Timestamp horizon = tm_->OldestActiveSnapshot();
  for (Table* table : catalog_->AllTables()) {
    if (!table->Mergeable()) continue;
    ColumnTable* ct = table->column_table();
    if (ct == nullptr) continue;
    size_t delta_rows_before = ct->delta_size();
    if (delta_rows_before < options_.delta_row_threshold) {
      unmerged_rows += static_cast<int64_t>(delta_rows_before);
      max_lag_us = std::max(max_lag_us, ct->DeltaAgeMicros(now_us));
      continue;
    }
    size_t bytes_before = ct->MemoryBytes();
    table->MergeDelta(merge_ts, horizon);
    ++merged;
    merges_.fetch_add(1, std::memory_order_relaxed);
    tables_merged->Add(1);
    rows_merged->Add(delta_rows_before);
    bytes_merged->Add(bytes_before);
    unmerged_rows += static_cast<int64_t>(ct->delta_size());
    max_lag_us = std::max(max_lag_us, ct->DeltaAgeMicros(now_us));
  }
  delta_rows->Set(unmerged_rows);
  freshness->Set(max_lag_us);
  return merged;
}

void MergeDaemon::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    RunOnce();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_; });
  }
}

}  // namespace oltap
