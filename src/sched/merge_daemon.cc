#include "sched/merge_daemon.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "obs/metrics.h"
#include "storage/freshness.h"
#include "view/view.h"

namespace oltap {

MergeDaemon::MergeDaemon(Catalog* catalog, TransactionManager* tm,
                         const Options& options)
    : catalog_(catalog), tm_(tm), options_(options) {
  if (options_.autostart) {
    thread_ = std::thread([this] { Loop(); });
  }
}

MergeDaemon::~MergeDaemon() { Stop(); }

void MergeDaemon::Start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void MergeDaemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

size_t MergeDaemon::RunOnce() {
  auto* registry = obs::MetricsRegistry::Default();
  static obs::Counter* runs = registry->GetCounter("merge.runs");
  static obs::Counter* tables_merged =
      registry->GetCounter("merge.tables_merged");
  static obs::Counter* rows_merged = registry->GetCounter("merge.rows_merged");
  static obs::Counter* bytes_merged =
      registry->GetCounter("merge.bytes_merged");
  static obs::Gauge* delta_rows = registry->GetGauge("storage.delta_rows");
  static obs::Gauge* freshness =
      registry->GetGauge("storage.freshness_lag_us");
  runs->Add(1);

  // Maintain DEFERRED materialized views first: view maintenance reads
  // base pre-states at the view cursors, and applying pending changes now
  // advances those cursors so the merge below can GC more aggressively.
  if (views_ != nullptr) views_->MaintainAll();

  size_t merged = 0;
  Timestamp merge_ts = tm_->oracle()->CurrentReadTs();
  Timestamp horizon = tm_->OldestActiveSnapshot();
  if (views_ != nullptr) horizon = std::min(horizon, views_->GcHorizon());
  for (Table* table : catalog_->AllTables()) {
    if (!table->Mergeable()) continue;
    ColumnTable* ct = table->column_table();
    if (ct == nullptr) continue;
    size_t delta_rows_before = ct->delta_size();
    if (delta_rows_before < options_.delta_row_threshold) continue;
    size_t bytes_before = ct->MemoryBytes();
    table->MergeDelta(merge_ts, horizon);
    ++merged;
    merges_.fetch_add(1, std::memory_order_relaxed);
    tables_merged->Add(1);
    rows_merged->Add(delta_rows_before);
    bytes_merged->Add(bytes_before);
  }
  int64_t now_us = SystemClock::Get()->NowMicros();
  FreshnessSummary fresh = ProbeFreshness(*catalog_, now_us);
  delta_rows->Set(fresh.delta_rows);
  freshness->Set(fresh.max_lag_us);
  return merged;
}

void MergeDaemon::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    RunOnce();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_; });
  }
}

}  // namespace oltap
