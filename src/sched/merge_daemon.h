#ifndef OLTAP_SCHED_MERGE_DAEMON_H_
#define OLTAP_SCHED_MERGE_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "storage/catalog.h"
#include "txn/transaction_manager.h"

namespace oltap {

namespace view {
class ViewManager;
}  // namespace view

// Background delta-merge scheduler: the automated version of the merge
// every surveyed delta/main engine runs (HANA's mergedog, BLU ingest
// consolidation, MemSQL background merger). Wakes periodically, merges any
// table whose delta exceeds a row threshold, always respecting the
// transaction manager's oldest active snapshot so merges never GC state a
// live reader needs.
class MergeDaemon {
 public:
  struct Options {
    // Merge a table when its delta holds at least this many rows.
    size_t delta_row_threshold = 8192;
    // Polling period.
    int64_t interval_ms = 50;
    // Start the background thread. With false the daemon is a passive
    // policy object driven via RunOnce (tests, engine-managed scheduling).
    bool autostart = true;
  };

  MergeDaemon(Catalog* catalog, TransactionManager* tm,
              const Options& options);
  ~MergeDaemon();

  MergeDaemon(const MergeDaemon&) = delete;
  MergeDaemon& operator=(const MergeDaemon&) = delete;

  // Starts the background thread when constructed with autostart=false
  // (e.g. to attach a view manager first). No-op if already running.
  void Start();

  // Stops the background thread (also called by the destructor).
  void Stop();

  // Attaches a view manager: each tick then also maintains DEFERRED
  // materialized views and bounds the merge GC horizon by the view
  // cursors. Call before any tick runs (i.e. construct with
  // autostart=false or set immediately after construction).
  void set_view_manager(view::ViewManager* views) { views_ = views; }

  // Runs one merge pass synchronously (what the thread does every tick);
  // returns the number of tables merged. Usable without Start for tests
  // and for engines that drive merging from their own scheduler.
  size_t RunOnce();

  uint64_t merges_performed() const {
    return merges_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  Catalog* catalog_;
  TransactionManager* tm_;
  view::ViewManager* views_ = nullptr;
  Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<uint64_t> merges_{0};
  std::thread thread_;
};

}  // namespace oltap

#endif  // OLTAP_SCHED_MERGE_DAEMON_H_
