#ifndef OLTAP_SCHED_WORKLOAD_MANAGER_H_
#define OLTAP_SCHED_WORKLOAD_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/clock.h"
#include "common/status.h"

namespace oltap {

// Query classes of a mixed operational-analytics workload: short
// transactional statements vs. long analytic scans. The classification is
// declared by the submitter (the planner layer knows which is which).
enum class QueryClass : uint8_t { kOltp = 0, kOlap = 1 };

// Scheduling policies for mixed workloads (Psaroudakis et al. [32]: "a
// battle of data freshness, flexibility, and scheduling"):
//  - kFifo: one shared queue — analytic floods starve OLTP (the baseline
//    failure mode).
//  - kOltpPriority: two queues, OLTP always dispatched first; OLAP uses
//    whatever is left.
//  - kReservedWorkers: hard isolation — R workers serve only OLTP, the
//    rest only OLAP. Protects OLTP latency at the cost of analytic
//    flexibility.
enum class SchedulingPolicy : uint8_t {
  kFifo = 0,
  kOltpPriority = 1,
  kReservedWorkers = 2,
};

const char* SchedulingPolicyToString(SchedulingPolicy p);

// What admission granted: full service, or degraded execution under
// overload. Degraded OLAP should shrink its batches to
// `batch_budget_rows` (or sample) and cap its intra-query parallelism at
// `max_dop` so it yields the CPU and memory that OLTP needs. Namespace
// scope (not nested) so the SQL layer can take it by reference without
// pulling in the scheduler header's innards; `WorkloadManager::QueryGrant`
// remains valid via an in-class alias.
struct QueryGrant {
  bool degraded = false;
  size_t batch_budget_rows = 0;  // 0 = unconstrained
  // Ceiling on this query's degree of parallelism (workers incl. the
  // query thread). 0 = no cap; 1 = serial.
  size_t max_dop = 0;
};

// Latency distribution summary in microseconds. Percentiles are exact
// (computed from every recorded sample, not from log buckets), so p999 is
// meaningful even for runs of a few thousand queries.
struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0;
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
  int64_t p999_us = 0;
  int64_t max_us = 0;
};

// Admission-controlled worker pool implementing the three policies.
// Latency is measured submit→completion (queueing included — that is the
// quantity workload management exists to protect).
//
// Every query carries a CancellationToken: cooperative work polls
// Check() and unwinds; queries whose deadline passes while still queued
// are completed with kDeadlineExceeded without ever running, so an OLAP
// flood drains instead of wedging Drain(). Failpoint site:
// "wm.admit.reject" fails admission with the injected status.
//
// Overload protection (PR 4): both classes have bounded admission queues
// and submissions may declare an estimated memory footprint against a
// soft engine-wide budget. When a bound is hit the manager *sheds* the
// request with kResourceExhausted (OLAP first — OLTP is never shed for
// memory, only for its own queue bound); before shedding, OLAP work is
// *degraded* — admitted with a QueryGrant telling it to run with a
// smaller batch budget / sampled scan — so analytic throughput bends
// before OLTP latency breaks. Counters: sched.admitted / sched.shed /
// sched.degraded.
class WorkloadManager {
 public:
  struct Options {
    size_t num_workers = 4;
    SchedulingPolicy policy = SchedulingPolicy::kFifo;
    // kReservedWorkers: how many workers are OLTP-only.
    size_t reserved_oltp_workers = 1;
    // Shed OLAP submissions beyond this queue depth (0 = unlimited).
    size_t olap_admission_limit = 0;
    // Shed OLTP submissions beyond this queue depth (0 = unlimited) —
    // even the protected class needs a backstop against total collapse.
    size_t oltp_admission_limit = 0;
    // OLAP admitted while its queue is at least this deep is *degraded*
    // (QueryGrant::degraded, batch budget below). 0 = never degrade.
    size_t olap_degrade_threshold = 0;
    // Batch-size budget handed to degraded OLAP work (rows per batch the
    // executor should drop to; a sampled scan is the extreme case).
    size_t degraded_batch_rows = 1024;
    // Intra-query DOP granted to normally admitted OLAP (0 = uncapped:
    // the session's max_dop knob rules).
    size_t max_parallel_dop = 0;
    // DOP granted to *degraded* OLAP: parallelism is the first thing
    // overload takes away (default 1 = serial), before batch budgets or
    // shedding, so analytic CPU appetite bends ahead of OLTP latency.
    size_t degraded_dop = 1;
    // Soft memory budget over declared QuerySpec::est_memory_bytes of
    // queued + running work. OLAP beyond it is shed; OLTP is exempt.
    // 0 = unlimited.
    size_t memory_budget_bytes = 0;
    const Clock* clock = nullptr;  // defaults to SystemClock
  };

  // Declared resource needs of a submission.
  struct QuerySpec {
    int64_t deadline_us = 0;        // relative to now; 0 = none
    size_t est_memory_bytes = 0;    // charged against memory_budget_bytes
  };

  // Historical nested name for the admission grant (now at namespace
  // scope so it can be forward-declared).
  using QueryGrant = oltap::QueryGrant;

  // Work that observes its token; the returned status resolves the
  // submission future (kDeadlineExceeded / kAborted when the work
  // cooperatively stopped early).
  using CancellableWork = std::function<Status(const CancellationToken&)>;

  // Work that additionally observes its admission grant (degraded mode).
  using BudgetedWork =
      std::function<Status(const CancellationToken&, const QueryGrant&)>;

  // Handle returned by SubmitCancellable: the completion future plus the
  // token through which the submitter can cancel the query.
  struct Submission {
    std::future<Status> done;
    std::shared_ptr<CancellationToken> token;
  };

  explicit WorkloadManager(const Options& options);
  ~WorkloadManager();

  WorkloadManager(const WorkloadManager&) = delete;
  WorkloadManager& operator=(const WorkloadManager&) = delete;

  // Enqueues work. The future resolves when the task finishes; it resolves
  // immediately with kUnavailable if admission control rejects it or the
  // pool is already shut down.
  std::future<Status> Submit(QueryClass qc, std::function<void()> work);

  // Deadline-aware, cancellable submission. `deadline_us` is relative to
  // now (0 = no deadline).
  Submission SubmitCancellable(QueryClass qc, int64_t deadline_us,
                               CancellableWork work);

  // Full-control submission: deadline, declared memory, and a grant the
  // work can consult for degraded execution. The future resolves with
  // kResourceExhausted when admission sheds the request.
  Submission SubmitBudgeted(QueryClass qc, const QuerySpec& spec,
                            BudgetedWork work);

  // Stops the workers and fails every still-queued task with
  // kUnavailable. Idempotent; the destructor calls it. After Shutdown,
  // Submit cleanly returns kUnavailable instead of enqueueing into a
  // dead pool.
  void Shutdown();

  // Blocks until all workers are idle and both queues are empty — or,
  // once Shutdown has been requested (workers stop without emptying the
  // queues), until every in-flight task has finished.
  void Drain();

  LatencySummary StatsFor(QueryClass qc) const;
  uint64_t rejected_olap() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  // Queries completed with kDeadlineExceeded before dispatch.
  uint64_t expired_in_queue() const {
    return expired_.load(std::memory_order_relaxed);
  }
  // Overload-protection telemetry (mirrored into sched.* obs counters).
  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  uint64_t degraded_admissions() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  // Declared memory of queued + running work (soft budget bookkeeping).
  size_t memory_in_use() const;

 private:
  struct Task {
    QueryClass qc;
    BudgetedWork work;
    QueryGrant grant;
    size_t est_memory_bytes = 0;
    std::shared_ptr<CancellationToken> token;
    std::promise<Status> done;
    int64_t submit_us = 0;
  };

  void WorkerLoop(size_t worker_index);
  // Pops the next task for this worker per policy; null on shutdown.
  std::unique_ptr<Task> NextTask(size_t worker_index,
                                 std::unique_lock<std::mutex>* lock);
  void Record(QueryClass qc, int64_t latency_us);

  Options options_;
  const Clock* clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drain_cv_;
  std::deque<std::unique_ptr<Task>> oltp_queue_;
  std::deque<std::unique_ptr<Task>> olap_queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  size_t memory_in_use_ = 0;  // guarded by mu_

  // Latency samples are sharded by recording thread so concurrent workers
  // never serialize on one stats mutex (the single shared vector showed up
  // as a contention point once the concurrent driver drove dozens of
  // completions per millisecond). StatsFor merges the shards.
  static constexpr size_t kLatencyShards = 16;
  struct alignas(64) LatencyShard {
    std::mutex mu;
    std::vector<int64_t> samples[2];
  };
  mutable LatencyShard latency_shards_[kLatencyShards];

  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> degraded_{0};
  std::vector<std::thread> workers_;
};

}  // namespace oltap

#endif  // OLTAP_SCHED_WORKLOAD_MANAGER_H_
