#include "sql/parser.h"

#include <cctype>

#include "sql/lexer.h"

namespace oltap {
namespace sql {
namespace {

ParseExprPtr MakeExpr(ParseExpr::Kind kind) {
  auto e = std::make_unique<ParseExpr>();
  e->kind = kind;
  return e;
}

// Deep copy, used by the BETWEEN/IN rewrites which reference the subject
// expression more than once.
ParseExprPtr CloneExpr(const ParseExpr& e) {
  auto copy = std::make_unique<ParseExpr>();
  copy->kind = e.kind;
  copy->qualifier = e.qualifier;
  copy->name = e.name;
  copy->int_val = e.int_val;
  copy->double_val = e.double_val;
  copy->str_val = e.str_val;
  copy->op = e.op;
  for (const auto& arg : e.args) copy->args.push_back(CloneExpr(*arg));
  return copy;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (AcceptKeyword("EXPLAIN")) {
      stmt.explain = true;
      if (AcceptKeyword("ANALYZE")) stmt.analyze = true;
      if (!Peek().IsKeyword("SELECT")) {
        return Err(stmt.analyze ? "EXPLAIN ANALYZE supports SELECT only"
                                : "EXPLAIN supports SELECT only");
      }
    }
    if (Peek().IsKeyword("SHOW")) {
      Advance();
      OLTAP_RETURN_NOT_OK(ExpectKeyword("STATS"));
      stmt.kind = Statement::Kind::kShowStats;
      if (Peek().IsSymbol(";")) Advance();
      if (Peek().kind != Token::Kind::kEnd) {
        return Err("unexpected trailing input");
      }
      return stmt;
    }
    if (Peek().IsKeyword("ANALYZE")) {
      // Top-level ANALYZE [<table>] (distinct from the EXPLAIN ANALYZE
      // prefix handled above): collect optimizer statistics.
      Advance();
      stmt.kind = Statement::Kind::kAnalyze;
      stmt.analyze_stmt = std::make_unique<AnalyzeStmt>();
      if (Peek().kind == Token::Kind::kIdent) {
        stmt.analyze_stmt->table = Advance().text;
      }
      if (Peek().IsSymbol(";")) Advance();
      if (Peek().kind != Token::Kind::kEnd) {
        return Err("unexpected trailing input");
      }
      return stmt;
    }
    if (Peek().IsKeyword("CHECKPOINT")) {
      // CHECKPOINT: run one synchronous checkpoint round now.
      Advance();
      stmt.kind = Statement::Kind::kCheckpoint;
      if (Peek().IsSymbol(";")) Advance();
      if (Peek().kind != Token::Kind::kEnd) {
        return Err("unexpected trailing input");
      }
      return stmt;
    }
    if (Peek().IsKeyword("SET")) {
      Advance();
      stmt.kind = Statement::Kind::kSet;
      stmt.set = std::make_unique<SetStmt>();
      OLTAP_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
      OLTAP_RETURN_NOT_OK(ExpectSymbol("="));
      std::string value;
      if (Peek().kind == Token::Kind::kIdent) {
        value = Advance().text;
      } else if (Peek().kind == Token::Kind::kInt) {
        value = std::to_string(Advance().int_val);
      } else if (Peek().kind == Token::Kind::kString) {
        value = Advance().text;
      } else {
        return Err("expected a value after SET " + name + " =");
      }
      auto lower = [](std::string s) {
        for (char& c : s) {
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        return s;
      };
      stmt.set->name = lower(std::move(name));
      stmt.set->value = lower(std::move(value));
      if (Peek().IsSymbol(";")) Advance();
      if (Peek().kind != Token::Kind::kEnd) {
        return Err("unexpected trailing input");
      }
      return stmt;
    }
    if (Peek().IsKeyword("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      auto sel = ParseSelect();
      if (!sel.ok()) return sel.status();
      stmt.select = std::move(sel).value();
    } else if (Peek().IsKeyword("INSERT")) {
      stmt.kind = Statement::Kind::kInsert;
      auto ins = ParseInsert();
      if (!ins.ok()) return ins.status();
      stmt.insert = std::move(ins).value();
    } else if (Peek().IsKeyword("UPDATE")) {
      stmt.kind = Statement::Kind::kUpdate;
      auto upd = ParseUpdate();
      if (!upd.ok()) return upd.status();
      stmt.update = std::move(upd).value();
    } else if (Peek().IsKeyword("DELETE")) {
      stmt.kind = Statement::Kind::kDelete;
      auto del = ParseDelete();
      if (!del.ok()) return del.status();
      stmt.del = std::move(del).value();
    } else if (Peek().IsKeyword("CREATE") &&
               Peek(1).IsKeyword("MATERIALIZED")) {
      stmt.kind = Statement::Kind::kCreateView;
      auto crt = ParseCreateView();
      if (!crt.ok()) return crt.status();
      stmt.create_view = std::move(crt).value();
    } else if (Peek().IsKeyword("CREATE")) {
      stmt.kind = Statement::Kind::kCreateTable;
      auto crt = ParseCreate();
      if (!crt.ok()) return crt.status();
      stmt.create = std::move(crt).value();
    } else if (Peek().IsKeyword("REFRESH")) {
      stmt.kind = Statement::Kind::kRefreshView;
      Advance();
      OLTAP_RETURN_NOT_OK(ExpectKeyword("MATERIALIZED"));
      OLTAP_RETURN_NOT_OK(ExpectKeyword("VIEW"));
      stmt.refresh_view = std::make_unique<RefreshViewStmt>();
      auto name = ExpectIdent();
      if (!name.ok()) return name.status();
      stmt.refresh_view->name = std::move(name).value();
    } else {
      return Err("expected a statement keyword");
    }
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().kind != Token::Kind::kEnd) {
      return Err("unexpected trailing input");
    }
    return stmt;
  }

  Result<ParseExprPtr> ParseStandaloneExpr() {
    auto e = ParseExprTop();
    if (!e.ok()) return e.status();
    if (Peek().kind != Token::Kind::kEnd) {
      return Err("unexpected trailing input after expression");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AcceptKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(msg + " (near offset " +
                                   std::to_string(Peek().offset) + ")");
  }
  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) return Err(std::string("expected '") + s + "'");
    return Status::OK();
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) return Err(std::string("expected ") + kw);
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != Token::Kind::kIdent) return Err("expected identifier");
    return Advance().text;
  }

  // ---- Expressions ----

  Result<ParseExprPtr> ParseExprTop() { return ParseOr(); }

  Result<ParseExprPtr> ParseOr() {
    auto left = ParseAnd();
    if (!left.ok()) return left;
    while (AcceptKeyword("OR")) {
      auto right = ParseAnd();
      if (!right.ok()) return right;
      auto e = MakeExpr(ParseExpr::Kind::kBinary);
      e->op = "OR";
      e->args.push_back(std::move(left).value());
      e->args.push_back(std::move(right).value());
      left = std::move(e);
    }
    return left;
  }

  Result<ParseExprPtr> ParseAnd() {
    auto left = ParseNot();
    if (!left.ok()) return left;
    while (AcceptKeyword("AND")) {
      auto right = ParseNot();
      if (!right.ok()) return right;
      auto e = MakeExpr(ParseExpr::Kind::kBinary);
      e->op = "AND";
      e->args.push_back(std::move(left).value());
      e->args.push_back(std::move(right).value());
      left = std::move(e);
    }
    return left;
  }

  Result<ParseExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      auto inner = ParseNot();
      if (!inner.ok()) return inner;
      auto e = MakeExpr(ParseExpr::Kind::kUnaryNot);
      e->args.push_back(std::move(inner).value());
      return Result<ParseExprPtr>(std::move(e));
    }
    return ParseComparison();
  }

  Result<ParseExprPtr> ParseComparison() {
    auto left = ParseAdditive();
    if (!left.ok()) return left;
    // [NOT] BETWEEN lo AND hi  — rewritten to (l >= lo AND l <= hi).
    bool negated = false;
    if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("BETWEEN")) {
      Advance();
      negated = true;
    }
    if (AcceptKeyword("BETWEEN")) {
      auto lo = ParseAdditive();
      if (!lo.ok()) return lo;
      OLTAP_RETURN_NOT_OK(ExpectKeyword("AND"));
      auto hi = ParseAdditive();
      if (!hi.ok()) return hi;
      ParseExprPtr subject = std::move(left).value();
      auto ge = MakeExpr(ParseExpr::Kind::kBinary);
      ge->op = ">=";
      ge->args.push_back(CloneExpr(*subject));
      ge->args.push_back(std::move(lo).value());
      auto le = MakeExpr(ParseExpr::Kind::kBinary);
      le->op = "<=";
      le->args.push_back(std::move(subject));
      le->args.push_back(std::move(hi).value());
      auto both = MakeExpr(ParseExpr::Kind::kBinary);
      both->op = "AND";
      both->args.push_back(std::move(ge));
      both->args.push_back(std::move(le));
      if (negated) {
        auto n = MakeExpr(ParseExpr::Kind::kUnaryNot);
        n->args.push_back(std::move(both));
        return Result<ParseExprPtr>(std::move(n));
      }
      return Result<ParseExprPtr>(std::move(both));
    }
    if (negated) return Err("expected BETWEEN after NOT");
    // [NOT] IN (e1, e2, ...)  — rewritten to an OR chain of equalities.
    bool in_negated = false;
    if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("IN")) {
      Advance();
      in_negated = true;
    }
    if (AcceptKeyword("IN")) {
      OLTAP_RETURN_NOT_OK(ExpectSymbol("("));
      ParseExprPtr subject = std::move(left).value();
      ParseExprPtr chain;
      while (true) {
        auto item = ParseExprTop();
        if (!item.ok()) return item;
        auto eq = MakeExpr(ParseExpr::Kind::kBinary);
        eq->op = "=";
        eq->args.push_back(CloneExpr(*subject));
        eq->args.push_back(std::move(item).value());
        if (chain == nullptr) {
          chain = std::move(eq);
        } else {
          auto both = MakeExpr(ParseExpr::Kind::kBinary);
          both->op = "OR";
          both->args.push_back(std::move(chain));
          both->args.push_back(std::move(eq));
          chain = std::move(both);
        }
        if (!AcceptSymbol(",")) break;
      }
      OLTAP_RETURN_NOT_OK(ExpectSymbol(")"));
      if (in_negated) {
        auto n = MakeExpr(ParseExpr::Kind::kUnaryNot);
        n->args.push_back(std::move(chain));
        return Result<ParseExprPtr>(std::move(n));
      }
      return Result<ParseExprPtr>(std::move(chain));
    }
    if (in_negated) return Err("expected IN after NOT");
    if (Peek().IsKeyword("IS")) {
      Advance();
      bool negated = AcceptKeyword("NOT");
      OLTAP_RETURN_NOT_OK(ExpectKeyword("NULL"));
      auto e = MakeExpr(ParseExpr::Kind::kIsNull);
      e->args.push_back(std::move(left).value());
      if (negated) {
        auto n = MakeExpr(ParseExpr::Kind::kUnaryNot);
        n->args.push_back(std::move(e));
        return Result<ParseExprPtr>(std::move(n));
      }
      return Result<ParseExprPtr>(std::move(e));
    }
    static const char* kOps[] = {"=", "<>", "<=", ">=", "<", ">"};
    for (const char* op : kOps) {
      if (Peek().IsSymbol(op)) {
        Advance();
        auto right = ParseAdditive();
        if (!right.ok()) return right;
        auto e = MakeExpr(ParseExpr::Kind::kBinary);
        e->op = op;
        e->args.push_back(std::move(left).value());
        e->args.push_back(std::move(right).value());
        return Result<ParseExprPtr>(std::move(e));
      }
    }
    return left;
  }

  Result<ParseExprPtr> ParseAdditive() {
    auto left = ParseMultiplicative();
    if (!left.ok()) return left;
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      std::string op = Advance().text;
      auto right = ParseMultiplicative();
      if (!right.ok()) return right;
      auto e = MakeExpr(ParseExpr::Kind::kBinary);
      e->op = op;
      e->args.push_back(std::move(left).value());
      e->args.push_back(std::move(right).value());
      left = std::move(e);
    }
    return left;
  }

  Result<ParseExprPtr> ParseMultiplicative() {
    auto left = ParseUnary();
    if (!left.ok()) return left;
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      std::string op = Advance().text;
      auto right = ParseUnary();
      if (!right.ok()) return right;
      auto e = MakeExpr(ParseExpr::Kind::kBinary);
      e->op = op;
      e->args.push_back(std::move(left).value());
      e->args.push_back(std::move(right).value());
      left = std::move(e);
    }
    return left;
  }

  Result<ParseExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner;
      auto e = MakeExpr(ParseExpr::Kind::kUnaryMinus);
      e->args.push_back(std::move(inner).value());
      return Result<ParseExprPtr>(std::move(e));
    }
    return ParsePrimary();
  }

  Result<ParseExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case Token::Kind::kInt: {
        Advance();
        auto e = MakeExpr(ParseExpr::Kind::kIntLit);
        e->int_val = t.int_val;
        return Result<ParseExprPtr>(std::move(e));
      }
      case Token::Kind::kDouble: {
        Advance();
        auto e = MakeExpr(ParseExpr::Kind::kDoubleLit);
        e->double_val = t.double_val;
        return Result<ParseExprPtr>(std::move(e));
      }
      case Token::Kind::kString: {
        Advance();
        auto e = MakeExpr(ParseExpr::Kind::kStringLit);
        e->str_val = t.text;
        return Result<ParseExprPtr>(std::move(e));
      }
      case Token::Kind::kSymbol:
        if (t.text == "(") {
          Advance();
          auto inner = ParseExprTop();
          if (!inner.ok()) return inner;
          OLTAP_RETURN_NOT_OK(ExpectSymbol(")"));
          return inner;
        }
        if (t.text == "*") {
          Advance();
          return Result<ParseExprPtr>(MakeExpr(ParseExpr::Kind::kStar));
        }
        return Err("unexpected symbol in expression");
      case Token::Kind::kIdent: {
        if (t.upper == "NULL") {
          Advance();
          return Result<ParseExprPtr>(MakeExpr(ParseExpr::Kind::kNullLit));
        }
        // Function call?
        if (Peek(1).IsSymbol("(")) {
          std::string fn = t.upper;
          Advance();
          Advance();  // '('
          auto e = MakeExpr(ParseExpr::Kind::kCall);
          e->name = fn;
          if (!Peek().IsSymbol(")")) {
            while (true) {
              auto arg = ParseExprTop();
              if (!arg.ok()) return arg;
              e->args.push_back(std::move(arg).value());
              if (!AcceptSymbol(",")) break;
            }
          }
          OLTAP_RETURN_NOT_OK(ExpectSymbol(")"));
          return Result<ParseExprPtr>(std::move(e));
        }
        // [qualifier.]column
        Advance();
        auto e = MakeExpr(ParseExpr::Kind::kIdent);
        e->name = t.text;
        if (AcceptSymbol(".")) {
          auto col = ExpectIdent();
          if (!col.ok()) return col.status();
          e->qualifier = e->name;
          e->name = std::move(col).value();
        }
        return Result<ParseExprPtr>(std::move(e));
      }
      case Token::Kind::kEnd:
        return Err("unexpected end of input in expression");
    }
    return Err("unexpected token");
  }

  // ---- Statements ----

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    OLTAP_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();
    if (AcceptKeyword("DISTINCT")) stmt->distinct = true;
    while (true) {
      SelectItem item;
      auto e = ParseExprTop();
      if (!e.ok()) return e.status();
      item.expr = std::move(e).value();
      if (AcceptKeyword("AS")) {
        auto alias = ExpectIdent();
        if (!alias.ok()) return alias.status();
        item.alias = std::move(alias).value();
      } else if (Peek().kind == Token::Kind::kIdent &&
                 !Peek().IsKeyword("FROM")) {
        item.alias = Advance().text;
      }
      stmt->items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    OLTAP_RETURN_NOT_OK(ExpectKeyword("FROM"));
    {
      auto tr = ParseTableRef();
      if (!tr.ok()) return tr.status();
      stmt->tables.push_back(std::move(tr).value());
    }
    while (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
      AcceptKeyword("INNER");
      OLTAP_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      auto tr = ParseTableRef();
      if (!tr.ok()) return tr.status();
      TableRef ref = std::move(tr).value();
      OLTAP_RETURN_NOT_OK(ExpectKeyword("ON"));
      auto on = ParseExprTop();
      if (!on.ok()) return on.status();
      ref.join_on = std::move(on).value();
      stmt->tables.push_back(std::move(ref));
    }
    if (AcceptKeyword("WHERE")) {
      auto w = ParseExprTop();
      if (!w.ok()) return w.status();
      stmt->where = std::move(w).value();
    }
    if (AcceptKeyword("GROUP")) {
      OLTAP_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        auto g = ParseExprTop();
        if (!g.ok()) return g.status();
        stmt->group_by.push_back(std::move(g).value());
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("HAVING")) {
      auto h = ParseExprTop();
      if (!h.ok()) return h.status();
      stmt->having = std::move(h).value();
    }
    if (AcceptKeyword("ORDER")) {
      OLTAP_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        auto o = ParseExprTop();
        if (!o.ok()) return o.status();
        item.expr = std::move(o).value();
        if (AcceptKeyword("DESC")) {
          item.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != Token::Kind::kInt) return Err("expected LIMIT count");
      stmt->limit = Advance().int_val;
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    auto name = ExpectIdent();
    if (!name.ok()) return name.status();
    TableRef ref;
    ref.name = std::move(name).value();
    ref.alias = ref.name;
    if (AcceptKeyword("AS")) {
      auto alias = ExpectIdent();
      if (!alias.ok()) return alias.status();
      ref.alias = std::move(alias).value();
    } else if (Peek().kind == Token::Kind::kIdent && !IsClauseKeyword(Peek())) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  static bool IsClauseKeyword(const Token& t) {
    static const char* kClauses[] = {"JOIN",  "INNER", "ON",    "WHERE",
                                     "GROUP", "ORDER", "LIMIT", "SET"};
    for (const char* kw : kClauses) {
      if (t.IsKeyword(kw)) return true;
    }
    return false;
  }

  Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    OLTAP_RETURN_NOT_OK(ExpectKeyword("INSERT"));
    OLTAP_RETURN_NOT_OK(ExpectKeyword("INTO"));
    auto stmt = std::make_unique<InsertStmt>();
    auto name = ExpectIdent();
    if (!name.ok()) return name.status();
    stmt->table = std::move(name).value();
    OLTAP_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    while (true) {
      OLTAP_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<ParseExprPtr> row;
      while (true) {
        auto e = ParseExprTop();
        if (!e.ok()) return e.status();
        row.push_back(std::move(e).value());
        if (!AcceptSymbol(",")) break;
      }
      OLTAP_RETURN_NOT_OK(ExpectSymbol(")"));
      stmt->rows.push_back(std::move(row));
      if (!AcceptSymbol(",")) break;
    }
    return stmt;
  }

  Result<std::unique_ptr<UpdateStmt>> ParseUpdate() {
    OLTAP_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
    auto stmt = std::make_unique<UpdateStmt>();
    auto name = ExpectIdent();
    if (!name.ok()) return name.status();
    stmt->table = std::move(name).value();
    OLTAP_RETURN_NOT_OK(ExpectKeyword("SET"));
    while (true) {
      auto col = ExpectIdent();
      if (!col.ok()) return col.status();
      OLTAP_RETURN_NOT_OK(ExpectSymbol("="));
      auto e = ParseExprTop();
      if (!e.ok()) return e.status();
      stmt->sets.emplace_back(std::move(col).value(), std::move(e).value());
      if (!AcceptSymbol(",")) break;
    }
    if (AcceptKeyword("WHERE")) {
      auto w = ParseExprTop();
      if (!w.ok()) return w.status();
      stmt->where = std::move(w).value();
    }
    return stmt;
  }

  Result<std::unique_ptr<DeleteStmt>> ParseDelete() {
    OLTAP_RETURN_NOT_OK(ExpectKeyword("DELETE"));
    OLTAP_RETURN_NOT_OK(ExpectKeyword("FROM"));
    auto stmt = std::make_unique<DeleteStmt>();
    auto name = ExpectIdent();
    if (!name.ok()) return name.status();
    stmt->table = std::move(name).value();
    if (AcceptKeyword("WHERE")) {
      auto w = ParseExprTop();
      if (!w.ok()) return w.status();
      stmt->where = std::move(w).value();
    }
    return stmt;
  }

  Result<std::unique_ptr<CreateTableStmt>> ParseCreate() {
    OLTAP_RETURN_NOT_OK(ExpectKeyword("CREATE"));
    OLTAP_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<CreateTableStmt>();
    auto name = ExpectIdent();
    if (!name.ok()) return name.status();
    stmt->name = std::move(name).value();
    OLTAP_RETURN_NOT_OK(ExpectSymbol("("));
    while (true) {
      if (Peek().IsKeyword("PRIMARY")) {
        Advance();
        OLTAP_RETURN_NOT_OK(ExpectKeyword("KEY"));
        OLTAP_RETURN_NOT_OK(ExpectSymbol("("));
        while (true) {
          auto col = ExpectIdent();
          if (!col.ok()) return col.status();
          stmt->key_columns.push_back(std::move(col).value());
          if (!AcceptSymbol(",")) break;
        }
        OLTAP_RETURN_NOT_OK(ExpectSymbol(")"));
      } else {
        auto col = ExpectIdent();
        if (!col.ok()) return col.status();
        auto type = ExpectIdent();
        if (!type.ok()) return type.status();
        std::string ty;
        for (char c : *type) {
          ty += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        }
        ColumnDef def;
        def.name = std::move(col).value();
        if (ty == "BIGINT" || ty == "INT" || ty == "INTEGER") {
          def.type = ValueType::kInt64;
        } else if (ty == "DOUBLE" || ty == "FLOAT" || ty == "REAL" ||
                   ty == "DECIMAL" || ty == "NUMERIC") {
          def.type = ValueType::kDouble;
        } else if (ty == "TEXT" || ty == "STRING" || ty == "VARCHAR" ||
                   ty == "CHAR") {
          def.type = ValueType::kString;
        } else {
          return Err("unknown type: " + ty);
        }
        // Optional length: VARCHAR(16) — parsed and ignored.
        if (AcceptSymbol("(")) {
          if (Peek().kind != Token::Kind::kInt) return Err("expected length");
          Advance();
          OLTAP_RETURN_NOT_OK(ExpectSymbol(")"));
        }
        if (AcceptKeyword("NOT")) {
          OLTAP_RETURN_NOT_OK(ExpectKeyword("NULL"));
          def.nullable = false;
        }
        stmt->columns.push_back(std::move(def));
      }
      if (!AcceptSymbol(",")) break;
    }
    OLTAP_RETURN_NOT_OK(ExpectSymbol(")"));
    if (AcceptKeyword("FORMAT")) {
      auto fmt = ExpectIdent();
      if (!fmt.ok()) return fmt.status();
      std::string f;
      for (char c : *fmt) {
        f += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      }
      if (f == "ROW") {
        stmt->format = TableFormat::kRow;
      } else if (f == "COLUMN") {
        stmt->format = TableFormat::kColumn;
      } else if (f == "DUAL") {
        stmt->format = TableFormat::kDual;
      } else {
        return Err("unknown format: " + f);
      }
    }
    return stmt;
  }

  // CREATE MATERIALIZED VIEW <name> [SYNC | DEFERRED [STALENESS <us>]]
  // AS SELECT ...
  Result<std::unique_ptr<CreateViewStmt>> ParseCreateView() {
    OLTAP_RETURN_NOT_OK(ExpectKeyword("CREATE"));
    OLTAP_RETURN_NOT_OK(ExpectKeyword("MATERIALIZED"));
    OLTAP_RETURN_NOT_OK(ExpectKeyword("VIEW"));
    auto stmt = std::make_unique<CreateViewStmt>();
    auto name = ExpectIdent();
    if (!name.ok()) return name.status();
    stmt->name = std::move(name).value();
    if (AcceptKeyword("SYNC")) {
      stmt->sync = true;
    } else if (AcceptKeyword("DEFERRED")) {
      stmt->sync = false;
      if (AcceptKeyword("STALENESS")) {
        if (Peek().kind != Token::Kind::kInt) {
          return Err("STALENESS expects microseconds");
        }
        stmt->max_staleness_us = Advance().int_val;
      }
    }
    OLTAP_RETURN_NOT_OK(ExpectKeyword("AS"));
    if (!Peek().IsKeyword("SELECT")) {
      return Err("materialized view definition must be a SELECT");
    }
    auto sel = ParseSelect();
    if (!sel.ok()) return sel.status();
    stmt->select = std::move(sel).value();
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& text) {
  auto tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStatement();
}

Result<ParseExprPtr> ParseExpression(const std::string& text) {
  auto tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStandaloneExpr();
}

}  // namespace sql
}  // namespace oltap
