#ifndef OLTAP_SQL_PLANNER_H_
#define OLTAP_SQL_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "exec/operators.h"
#include "opt/feedback.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace oltap {
namespace sql {

// Planner knobs. With the optimizer on (the default), joins are reordered
// by the cost-based DPsize search over catalog statistics, scans and joins
// carry cardinality/cost estimates, and dual-format scans get an explicit
// access path. With it off, plans are built exactly as before this layer
// existed: left-deep joins in FROM order, no estimates, byte-identical
// EXPLAIN output.
struct PlannerOptions {
  bool use_optimizer = true;
  // Estimation-feedback memo (may be null): supplies remembered join
  // orders and measured scan cardinalities, receives the chosen order.
  opt::PlanFeedback* feedback = nullptr;
  // Morsel-parallel execution: worker pool plus the degree of parallelism
  // granted to this query (workers incl. the query thread). Parallel
  // operators are substituted only on the optimizer path, and only when
  // `exec_pool` is set and `max_dop >= 2`; results remain byte-identical
  // to serial execution at any DOP.
  ThreadPool* exec_pool = nullptr;
  size_t max_dop = 1;
};

// A bound, executable SELECT plan.
struct PlannedQuery {
  PhysicalOpPtr root;
  std::vector<std::string> output_names;

  // Optimizer metadata (defaults when planned with use_optimizer=false).
  bool optimized = false;
  std::string fingerprint;           // canonical statement text
  std::vector<int> join_order;       // FROM indices in join order
  // The scan operator of each FROM relation (indexed by FROM position),
  // owned by `root`; used to harvest actual-vs-estimated cardinalities.
  std::vector<const ScanOp*> scans;
};

// Plans a SELECT statement: binds names, pushes single-table predicate
// conjuncts into scans, orders joins (cost-based when the optimizer is on,
// FROM order otherwise), lowers GROUP BY / aggregates, ORDER BY, and
// LIMIT. Reads run at `read_ts`.
Result<PlannedQuery> PlanSelect(const SelectStmt& stmt, const Catalog& catalog,
                                Timestamp read_ts,
                                const PlannerOptions& options = {});

// Binds an expression against a single table's schema (UPDATE/DELETE
// predicates and SET expressions). Aggregates are rejected.
Result<ExprPtr> BindOverSchema(const ParseExpr& e, const Schema& schema,
                               const std::string& alias);

// True if the parse tree contains an aggregate function call.
bool ContainsAggregate(const ParseExpr& e);

// Canonical statement text used as the feedback/plan-memo key.
std::string StatementFingerprint(const SelectStmt& stmt);

}  // namespace sql
}  // namespace oltap

#endif  // OLTAP_SQL_PLANNER_H_
