#ifndef OLTAP_SQL_PLANNER_H_
#define OLTAP_SQL_PLANNER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "exec/operators.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace oltap {
namespace sql {

// A bound, executable SELECT plan.
struct PlannedQuery {
  PhysicalOpPtr root;
  std::vector<std::string> output_names;
};

// Plans a SELECT statement: binds names, pushes single-table predicate
// conjuncts into scans, builds left-deep hash joins in FROM order, lowers
// GROUP BY / aggregates, ORDER BY, and LIMIT. Reads run at `read_ts`.
Result<PlannedQuery> PlanSelect(const SelectStmt& stmt, const Catalog& catalog,
                                Timestamp read_ts);

// Binds an expression against a single table's schema (UPDATE/DELETE
// predicates and SET expressions). Aggregates are rejected.
Result<ExprPtr> BindOverSchema(const ParseExpr& e, const Schema& schema,
                               const std::string& alias);

// True if the parse tree contains an aggregate function call.
bool ContainsAggregate(const ParseExpr& e);

}  // namespace sql
}  // namespace oltap

#endif  // OLTAP_SQL_PLANNER_H_
