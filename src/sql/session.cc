#include "sql/session.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/clock.h"
#include "common/logging.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "opt/stats.h"
#include "sched/workload_manager.h"
#include "sql/parser.h"
#include "storage/column_store.h"
#include "storage/freshness.h"

namespace oltap {
namespace {

// Coerces a literal/computed value to a column type (int <-> double).
Result<Value> CoerceTo(const Value& v, ValueType type) {
  if (v.is_null()) return Value::Null(type);
  if (v.type() == type) return v;
  if (type == ValueType::kDouble && v.type() == ValueType::kInt64) {
    return Value::Double(static_cast<double>(v.AsInt64()));
  }
  if (type == ValueType::kInt64 && v.type() == ValueType::kDouble) {
    return Value::Int64(static_cast<int64_t>(v.AsDouble()));
  }
  return Status::InvalidArgument(
      std::string("cannot coerce ") + ValueTypeToString(v.type()) + " to " +
      ValueTypeToString(type));
}

}  // namespace

std::string QueryResult::ToString(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  size_t shown = std::min(rows.size(), max_rows);
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      cells[r][c] = rows[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  auto pad = [&](const std::string& s, size_t w) {
    out += s;
    out.append(w - s.size(), ' ');
    out += "  ";
  };
  for (size_t c = 0; c < columns.size(); ++c) pad(columns[c], widths[c]);
  out += "\n";
  for (size_t c = 0; c < columns.size(); ++c) {
    out.append(widths[c], '-');
    out += "  ";
  }
  out += "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) pad(cells[r][c], widths[c]);
    out += "\n";
  }
  if (rows.size() > shown) {
    out += "... (" + std::to_string(rows.size()) + " rows total)\n";
  }
  return out;
}

Database::Database(Wal* wal) : txn_(&catalog_, wal) {
  // Synchronous view maintenance rides the commit-ack hook: it fires once
  // a client commit is durable and visible, on the committing thread.
  txn_.SetCommitHook([this](const std::vector<Table*>& tables, Timestamp ts) {
    views_.OnCommit(tables, ts);
  });
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  return ExecuteImpl(sql, nullptr);
}

Result<QueryResult> Database::Execute(const std::string& sql,
                                      const QueryGrant& grant) {
  return ExecuteImpl(sql, &grant);
}

Result<QueryResult> Database::ExecuteImpl(const std::string& sql,
                                          const QueryGrant* grant) {
  OLTAP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (stmt.kind == sql::Statement::Kind::kCreateTable) {
    return RunCreate(*stmt.create);
  }
  if (stmt.kind == sql::Statement::Kind::kCreateView) {
    OLTAP_RETURN_NOT_OK(views_.Create(*stmt.create_view));
    return QueryResult{};
  }
  if (stmt.kind == sql::Statement::Kind::kRefreshView) {
    OLTAP_RETURN_NOT_OK(views_.Refresh(stmt.refresh_view->name));
    return QueryResult{};
  }
  if (stmt.kind == sql::Statement::Kind::kCheckpoint) {
    // Non-transactional: the checkpoint pins its own snapshot.
    return RunCheckpoint();
  }
  std::unique_ptr<Transaction> txn = txn_.Begin();
  auto result = RunStatement(txn.get(), stmt, grant);
  if (!result.ok()) {
    txn_.Abort(txn.get());
    return result;
  }
  OLTAP_RETURN_NOT_OK(txn_.Commit(txn.get()));
  return result;
}

Result<QueryResult> Database::ExecuteIn(Transaction* txn,
                                        const std::string& sql) {
  OLTAP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (stmt.kind == sql::Statement::Kind::kCreateTable ||
      stmt.kind == sql::Statement::Kind::kCreateView ||
      stmt.kind == sql::Statement::Kind::kRefreshView) {
    return Status::FailedPrecondition("DDL is not transactional");
  }
  return RunStatement(txn, stmt);
}

Result<QueryResult> Database::RunStatement(Transaction* txn,
                                           const sql::Statement& s,
                                           const QueryGrant* grant) {
  switch (s.kind) {
    case sql::Statement::Kind::kSelect:
      return RunSelect(txn, *s.select, s.explain, s.analyze, grant);
    case sql::Statement::Kind::kInsert:
      return RunInsert(txn, *s.insert);
    case sql::Statement::Kind::kUpdate:
      return RunUpdate(txn, *s.update);
    case sql::Statement::Kind::kDelete:
      return RunDelete(txn, *s.del);
    case sql::Statement::Kind::kCreateTable:
      return RunCreate(*s.create);
    case sql::Statement::Kind::kCreateView:
    case sql::Statement::Kind::kRefreshView:
      return Status::FailedPrecondition("view DDL is not transactional");
    case sql::Statement::Kind::kShowStats:
      return RunShowStats();
    case sql::Statement::Kind::kAnalyze:
      return RunAnalyze(txn, *s.analyze_stmt);
    case sql::Statement::Kind::kSet:
      return RunSet(*s.set);
    case sql::Statement::Kind::kCheckpoint:
      return Status::FailedPrecondition("CHECKPOINT is not transactional");
  }
  return Status::Internal("unhandled statement");
}

namespace {

// One result row per profile node: operator (indented by depth), planner
// estimate (NULL when the plan carried none), rows, batches, inclusive
// time in milliseconds.
void FlattenProfile(const obs::QueryProfile::Node& node, int depth,
                    std::vector<Row>* out) {
  std::string label(static_cast<size_t>(depth) * 2, ' ');
  label += node.name;
  // llround matches the %.0f formatting EXPLAIN uses for the same number.
  Value est = node.est_rows < 0 ? Value::Null()
                                : Value::Int64(std::llround(node.est_rows));
  out->push_back(Row{Value::String(std::move(label)), std::move(est),
                     Value::Int64(static_cast<int64_t>(node.rows)),
                     Value::Int64(static_cast<int64_t>(node.batches)),
                     Value::Double(static_cast<double>(node.time_ns) * 1e-6)});
  for (const obs::QueryProfile::Node& child : node.children) {
    FlattenProfile(child, depth + 1, out);
  }
}

// Harvests estimate-vs-actual samples from an executed plan for the
// feedback loop. `scans` maps each FROM relation to its scan operator.
void CollectOpSamples(const PhysicalOp* op,
                      const std::vector<const ScanOp*>& scans,
                      std::vector<opt::OpSample>* out) {
  if (op->est_rows() >= 0) {
    opt::OpSample s;
    s.est_rows = op->est_rows();
    s.actual_rows = static_cast<double>(op->op_stats().rows);
    for (size_t i = 0; i < scans.size(); ++i) {
      if (scans[i] == op) s.scan_from_index = static_cast<int>(i);
    }
    out->push_back(s);
  }
  for (const PhysicalOp* child : op->Children()) {
    CollectOpSamples(child, scans, out);
  }
}

// Plan cost for base-vs-view comparison: the most expensive node (est_cost
// is cumulative per subtree, so the root of the costed region dominates).
// -1 when the plan carries no estimates.
double MaxPlanCost(const PhysicalOp* op) {
  double cost = op->est_cost();
  for (const PhysicalOp* child : op->Children()) {
    cost = std::max(cost, MaxPlanCost(child));
  }
  return cost;
}

}  // namespace

Result<QueryResult> Database::RunSelect(Transaction* txn,
                                        const sql::SelectStmt& s,
                                        bool explain, bool analyze,
                                        const QueryGrant* grant) {
  sql::PlannerOptions popts;
  popts.use_optimizer = optimizer_enabled();
  popts.feedback = &feedback_;

  // Effective degree of parallelism: the session knob (0 = auto: pool
  // threads + the query thread) capped by the admission grant, so an
  // overloaded or degraded scheduler throttles analytic parallelism
  // before OLTP latency suffers.
  ThreadPool* pool = exec_pool();
  if (pool != nullptr) {
    size_t dop = max_dop();
    if (dop == 0) dop = pool->num_threads() + 1;
    if (grant != nullptr && grant->max_dop > 0 && grant->max_dop < dop) {
      dop = grant->max_dop;
      static obs::Counter* limited =
          obs::MetricsRegistry::Default()->GetCounter(
              "exec.morsel.dop_limited");
      limited->Add(1);
    }
    if (dop >= 2) {
      popts.exec_pool = pool;
      popts.max_dop = dop;
    }
  }
  OLTAP_ASSIGN_OR_RETURN(
      sql::PlannedQuery plan,
      sql::PlanSelect(s, catalog_, txn->begin_ts(), popts));

  // Cost-based view routing: if a materialized view subsumes this query
  // (within the session staleness bound), plan the rewritten query too and
  // take whichever plan is cheaper.
  std::string routed_view;
  if (view_routing_enabled() && optimizer_enabled()) {
    if (auto route = views_.TryRoute(s, max_staleness_us())) {
      auto vplan =
          sql::PlanSelect(route->rewritten, catalog_, txn->begin_ts(), popts);
      if (vplan.ok()) {
        double base_cost = MaxPlanCost(plan.root.get());
        double view_cost = MaxPlanCost(vplan->root.get());
        // Missing estimates (optimizer fallback paths) default to the
        // view: its plan reads precomputed results.
        if (base_cost < 0 || view_cost < 0 || view_cost <= base_cost) {
          plan = std::move(vplan).value();
          routed_view = route->view;
          obs::MetricsRegistry::Default()->GetCounter("view.routed")->Add(1);
        }
      }
    }
  }

  auto observe = [&]() {
    if (!plan.optimized || plan.fingerprint.empty()) return;
    std::vector<opt::OpSample> samples;
    CollectOpSamples(plan.root.get(), plan.scans, &samples);
    feedback_.Observe(plan.fingerprint, samples);
  };
  QueryResult result;
  if (explain && analyze) {
    // Execute for real, then report the per-operator profile instead of
    // the query output.
    ExecutePlan(plan.root.get());
    observe();
    obs::QueryProfile profile = BuildQueryProfile(plan.root.get());
    result.columns = {"operator", "est_rows", "rows", "batches", "time_ms"};
    FlattenProfile(profile.root, 0, &result.rows);
    result.affected = result.rows.size();
    return result;
  }
  if (explain) {
    result.columns = {"plan"};
    if (!routed_view.empty()) {
      result.rows.push_back(Row{Value::String(
          "routed via materialized view " + routed_view)});
    }
    std::string text = ExplainPlan(plan.root.get());
    // One output row per plan line.
    size_t start = 0;
    while (start < text.size()) {
      size_t nl = text.find('\n', start);
      if (nl == std::string::npos) nl = text.size();
      result.rows.push_back(
          Row{Value::String(text.substr(start, nl - start))});
      start = nl + 1;
    }
    result.affected = result.rows.size();
    return result;
  }
  result.columns = std::move(plan.output_names);
  result.rows = ExecutePlan(plan.root.get());
  observe();
  result.affected = result.rows.size();
  return result;
}

Result<QueryResult> Database::RunAnalyze(Transaction* txn,
                                         const sql::AnalyzeStmt& s) {
  std::vector<Table*> targets;
  if (!s.table.empty()) {
    Table* table = catalog_.GetTable(s.table);
    if (table == nullptr) {
      return Status::NotFound("unknown table: " + s.table);
    }
    targets.push_back(table);
  } else {
    targets = catalog_.AllTables();
    std::sort(targets.begin(), targets.end(),
              [](const Table* a, const Table* b) {
                return a->name() < b->name();
              });
  }
  QueryResult result;
  result.columns = {"table", "rows"};
  auto* counter =
      obs::MetricsRegistry::Default()->GetCounter("opt.analyze_runs");
  for (Table* table : targets) {
    opt::TableStats stats = opt::AnalyzeTable(*table, txn->begin_ts());
    int64_t rows = static_cast<int64_t>(stats.row_count);
    catalog_.SetTableStats(
        table->name(),
        std::make_shared<const opt::TableStats>(std::move(stats)));
    counter->Add(1);
    result.rows.push_back(Row{Value::String(table->name()),
                              Value::Int64(rows)});
  }
  result.affected = result.rows.size();
  return result;
}

Result<QueryResult> Database::RunSet(const sql::SetStmt& s) {
  auto parse_bool = [&](bool* out) -> Status {
    if (s.value == "on" || s.value == "true" || s.value == "1") {
      *out = true;
    } else if (s.value == "off" || s.value == "false" || s.value == "0") {
      *out = false;
    } else {
      return Status::InvalidArgument("SET " + s.name +
                                     " expects on or off, got: " + s.value);
    }
    return Status::OK();
  };
  QueryResult result;
  if (s.name == "optimizer") {
    bool on;
    OLTAP_RETURN_NOT_OK(parse_bool(&on));
    set_optimizer_enabled(on);
    return result;
  }
  if (s.name == "view_routing") {
    bool on;
    OLTAP_RETURN_NOT_OK(parse_bool(&on));
    set_view_routing_enabled(on);
    return result;
  }
  if (s.name == "max_staleness") {
    if (s.value == "off" || s.value == "-1") {
      set_max_staleness_us(-1);
      return result;
    }
    char* end = nullptr;
    long long us = std::strtoll(s.value.c_str(), &end, 10);
    if (end == s.value.c_str() || *end != '\0' || us < 0) {
      return Status::InvalidArgument(
          "SET max_staleness expects microseconds or off, got: " + s.value);
    }
    set_max_staleness_us(us);
    return result;
  }
  if (s.name == "max_dop") {
    if (s.value == "auto" || s.value == "0") {
      set_max_dop(0);
      return result;
    }
    char* end = nullptr;
    long long dop = std::strtoll(s.value.c_str(), &end, 10);
    if (end == s.value.c_str() || *end != '\0' || dop < 1) {
      return Status::InvalidArgument(
          "SET max_dop expects a positive worker count or auto, got: " +
          s.value);
    }
    set_max_dop(static_cast<size_t>(dop));
    return result;
  }
  if (s.name == "checkpoint_interval_us") {
    // 0 or off stops the background daemon; > 0 (re)starts it with the
    // new time trigger.
    if (s.value == "off" || s.value == "0") {
      if (CheckpointDaemon* d = checkpointer()) {
        d->set_interval_us(0);
        d->Stop();
      }
      return result;
    }
    char* end = nullptr;
    long long us = std::strtoll(s.value.c_str(), &end, 10);
    if (end == s.value.c_str() || *end != '\0' || us <= 0) {
      return Status::InvalidArgument(
          "SET checkpoint_interval_us expects microseconds or off, got: " +
          s.value);
    }
    CheckpointDaemon* d = EnsureCheckpointer();
    d->set_interval_us(us);
    d->Start();
    return result;
  }
  if (s.name == "wal_segment_bytes") {
    if (wal() == nullptr) {
      return Status::FailedPrecondition(
          "SET wal_segment_bytes requires a WAL-backed database");
    }
    char* end = nullptr;
    long long bytes = std::strtoll(s.value.c_str(), &end, 10);
    if (end == s.value.c_str() || *end != '\0' || bytes < 0) {
      return Status::InvalidArgument(
          "SET wal_segment_bytes expects a byte count, got: " + s.value);
    }
    wal()->set_segment_bytes(static_cast<uint64_t>(bytes));
    return result;
  }
  return Status::InvalidArgument("unknown setting: " + s.name);
}

CheckpointDaemon* Database::checkpointer() {
  std::lock_guard<std::mutex> lock(checkpointer_mu_);
  return checkpointer_.get();
}

CheckpointDaemon* Database::EnsureCheckpointer() {
  std::lock_guard<std::mutex> lock(checkpointer_mu_);
  if (checkpointer_ == nullptr) {
    CheckpointDaemon::Options options;
    options.interval_us = 0;  // triggers armed by SET / the driver
    checkpointer_ = std::make_unique<CheckpointDaemon>(&catalog_, &txn_,
                                                       wal(), options);
    // Views interact with checkpoints in two ways: their change-log
    // cursors pin WAL truncation (delta-join maintenance re-reads
    // history), and their definitions travel in the image as DDL while
    // their backing tables stay out of it (restore re-runs the DDL,
    // which rebuilds the backings from the restored bases).
    checkpointer_->set_extra_pin([this] { return views_.GcHorizon(); });
    checkpointer_->set_view_ddls([this] { return views_.ViewDdls(); });
    checkpointer_->set_exclude_tables([this] { return views_.ViewNames(); });
  }
  return checkpointer_.get();
}

Result<QueryResult> Database::RunCheckpoint() {
  CheckpointDaemon* d = EnsureCheckpointer();
  OLTAP_ASSIGN_OR_RETURN(CheckpointDaemon::CheckpointResult r,
                         d->CheckpointNow());
  QueryResult result;
  result.columns = {"checkpoint_id", "ts", "bytes", "wal_truncated"};
  result.rows.push_back(Row{Value::Int64(static_cast<int64_t>(r.id)),
                            Value::Int64(static_cast<int64_t>(r.ts)),
                            Value::Int64(static_cast<int64_t>(r.bytes)),
                            Value::Int64(static_cast<int64_t>(r.wal_truncated))});
  result.affected = 1;
  return result;
}

Result<QueryResult> Database::RunShowStats() {
  auto* registry = obs::MetricsRegistry::Default();
  // Refresh the storage gauges from this catalog so SHOW STATS reports
  // live freshness even without a merge daemon running.
  int64_t now_us = SystemClock::Get()->NowMicros();
  FreshnessSummary fresh = ProbeFreshness(catalog_, now_us);
  registry->GetGauge("storage.delta_rows")->Set(fresh.delta_rows);
  registry->GetGauge("storage.freshness_lag_us")->Set(fresh.max_lag_us);
  // Refresh wal.sealed from this database's own log (the gauge is also
  // set at seal time, but that write may have come from another Wal).
  if (Wal* w = wal()) {
    registry->GetGauge("wal.sealed")->Set(w->sealed() ? 1 : 0);
    registry->GetGauge("wal.segments")
        ->Set(static_cast<int64_t>(w->num_segments()));
    registry->GetGauge("wal.retained_bytes")
        ->Set(static_cast<int64_t>(w->size()));
  }
  // Checkpoint freshness from this database's own daemon (if created).
  if (CheckpointDaemon* d = checkpointer()) {
    registry->GetGauge("ckpt.age_us")->Set(d->AgeMicros(now_us));
    registry->GetGauge("ckpt.last_ts")
        ->Set(static_cast<int64_t>(d->last_checkpoint_ts()));
  }

  obs::MetricsSnapshot snap = registry->Snapshot();
  QueryResult result;
  result.columns = {"metric", "value"};
  for (const auto& [name, v] : snap.counters) {
    result.rows.push_back(
        Row{Value::String(name), Value::Int64(static_cast<int64_t>(v))});
  }
  for (const auto& [name, v] : snap.gauges) {
    result.rows.push_back(Row{Value::String(name), Value::Int64(v)});
  }
  for (const auto& [name, h] : snap.histograms) {
    auto add = [&](const char* suffix, Value value) {
      result.rows.push_back(
          Row{Value::String(name + suffix), std::move(value)});
    };
    add(".count", Value::Int64(static_cast<int64_t>(h.count)));
    add(".mean", Value::Double(h.mean));
    add(".p50", Value::Int64(static_cast<int64_t>(h.p50)));
    add(".p95", Value::Int64(static_cast<int64_t>(h.p95)));
    add(".p99", Value::Int64(static_cast<int64_t>(h.p99)));
    add(".p999", Value::Int64(static_cast<int64_t>(h.p999)));
    add(".max", Value::Int64(static_cast<int64_t>(h.max)));
  }

  // Per-table optimizer-statistics freshness. `.rows` reports the analyzed
  // row count, so it only appears once a table has been analyzed;
  // `.mods_since_analyze` is live for every table (the full mod count when
  // never analyzed) — it is the staleness signal, and a table that was
  // never analyzed is maximally stale.
  std::vector<std::string> table_names = catalog_.TableNames();
  std::sort(table_names.begin(), table_names.end());
  for (const std::string& name : table_names) {
    std::shared_ptr<const opt::TableStats> stats =
        catalog_.GetTableStats(name);
    Table* table = catalog_.GetTable(name);
    if (stats != nullptr) {
      result.rows.push_back(
          Row{Value::String("stats." + name + ".rows"),
              Value::Int64(static_cast<int64_t>(stats->row_count))});
    }
    uint64_t mods = table->mod_count() -
                    (stats != nullptr ? stats->mod_count_at_analyze : 0);
    result.rows.push_back(
        Row{Value::String("stats." + name + ".mods_since_analyze"),
            Value::Int64(static_cast<int64_t>(mods))});
  }

  // Per-view freshness: row count, pending base changes, staleness.
  views_.AppendStatsRows(&result.rows);
  result.affected = result.rows.size();
  return result;
}

Result<QueryResult> Database::RunInsert(Transaction* txn,
                                        const sql::InsertStmt& s) {
  if (views_.IsView(s.table)) {
    return Status::InvalidArgument("cannot INSERT into materialized view " +
                                   s.table);
  }
  Table* table = catalog_.GetTable(s.table);
  if (table == nullptr) return Status::NotFound("unknown table: " + s.table);
  const Schema& schema = table->schema();
  QueryResult result;
  for (const auto& exprs : s.rows) {
    if (exprs.size() != schema.num_columns()) {
      return Status::InvalidArgument("INSERT arity mismatch");
    }
    Row row;
    row.reserve(exprs.size());
    for (size_t c = 0; c < exprs.size(); ++c) {
      // Literal expressions only need an empty scope.
      OLTAP_ASSIGN_OR_RETURN(
          ExprPtr bound, sql::BindOverSchema(*exprs[c], Schema(), s.table));
      Value v = bound->EvalRow(Row{});
      OLTAP_ASSIGN_OR_RETURN(Value coerced,
                             CoerceTo(v, schema.column(c).type));
      if (coerced.is_null() && !schema.column(c).nullable) {
        return Status::InvalidArgument("NULL in NOT NULL column " +
                                       schema.column(c).name);
      }
      row.push_back(std::move(coerced));
    }
    OLTAP_RETURN_NOT_OK(txn->Insert(table, std::move(row)));
    ++result.affected;
  }
  return result;
}

Result<QueryResult> Database::RunUpdate(Transaction* txn,
                                        const sql::UpdateStmt& s) {
  if (views_.IsView(s.table)) {
    return Status::InvalidArgument("cannot UPDATE materialized view " +
                                   s.table);
  }
  Table* table = catalog_.GetTable(s.table);
  if (table == nullptr) return Status::NotFound("unknown table: " + s.table);
  const Schema& schema = table->schema();
  if (!schema.HasKey()) {
    return Status::FailedPrecondition("UPDATE requires a primary key");
  }
  ExprPtr where;
  if (s.where != nullptr) {
    OLTAP_ASSIGN_OR_RETURN(where,
                           sql::BindOverSchema(*s.where, schema, s.table));
  }
  struct SetOp {
    int column;
    ExprPtr expr;
  };
  std::vector<SetOp> sets;
  for (const auto& [col, pe] : s.sets) {
    int idx = schema.FindColumn(col);
    if (idx < 0) return Status::NotFound("unknown column: " + col);
    OLTAP_ASSIGN_OR_RETURN(ExprPtr e,
                           sql::BindOverSchema(*pe, schema, s.table));
    sets.push_back({idx, std::move(e)});
  }

  // Collect matching rows (sees own writes), then apply.
  std::vector<Row> matches;
  txn->Scan(table, [&](const Row& row) {
    if (where != nullptr) {
      Value v = where->EvalRow(row);
      if (v.is_null() || !v.AsBool()) return;
    }
    matches.push_back(row);
  });
  QueryResult result;
  for (const Row& old_row : matches) {
    Row new_row = old_row;
    for (const SetOp& op : sets) {
      Value v = op.expr->EvalRow(old_row);
      OLTAP_ASSIGN_OR_RETURN(
          Value coerced, CoerceTo(v, schema.column(op.column).type));
      new_row[op.column] = std::move(coerced);
    }
    if (EncodeKey(schema, new_row) != EncodeKey(schema, old_row)) {
      return Status::InvalidArgument("UPDATE must not modify the primary key");
    }
    OLTAP_RETURN_NOT_OK(txn->Update(table, std::move(new_row)));
    ++result.affected;
  }
  return result;
}

Result<QueryResult> Database::RunDelete(Transaction* txn,
                                        const sql::DeleteStmt& s) {
  if (views_.IsView(s.table)) {
    return Status::InvalidArgument("cannot DELETE from materialized view " +
                                   s.table);
  }
  Table* table = catalog_.GetTable(s.table);
  if (table == nullptr) return Status::NotFound("unknown table: " + s.table);
  const Schema& schema = table->schema();
  if (!schema.HasKey()) {
    return Status::FailedPrecondition("DELETE requires a primary key");
  }
  ExprPtr where;
  if (s.where != nullptr) {
    OLTAP_ASSIGN_OR_RETURN(where,
                           sql::BindOverSchema(*s.where, schema, s.table));
  }
  std::vector<std::string> keys;
  txn->Scan(table, [&](const Row& row) {
    if (where != nullptr) {
      Value v = where->EvalRow(row);
      if (v.is_null() || !v.AsBool()) return;
    }
    keys.push_back(EncodeKey(schema, row));
  });
  QueryResult result;
  for (std::string& key : keys) {
    OLTAP_RETURN_NOT_OK(txn->DeleteByKey(table, std::move(key)));
    ++result.affected;
  }
  return result;
}

Result<QueryResult> Database::RunCreate(const sql::CreateTableStmt& s) {
  SchemaBuilder builder;
  for (const ColumnDef& c : s.columns) {
    switch (c.type) {
      case ValueType::kInt64:
        builder.AddInt64(c.name, c.nullable);
        break;
      case ValueType::kDouble:
        builder.AddDouble(c.name, c.nullable);
        break;
      case ValueType::kString:
        builder.AddString(c.name, c.nullable);
        break;
    }
  }
  if (!s.key_columns.empty()) builder.SetKey(s.key_columns);
  OLTAP_RETURN_NOT_OK(
      catalog_.CreateTable(s.name, builder.Build(), s.format));
  QueryResult result;
  result.affected = 0;
  return result;
}

Result<Wal::ReplayStats> Database::RecoverFromWal(const std::string& wal_data,
                                                  ThreadPool* pool) {
  Wal::ReplayOptions options;
  options.idempotent = true;
  OLTAP_ASSIGN_OR_RETURN(
      Wal::ReplayStats stats,
      Wal::ReplayParallel(wal_data, &catalog_, pool, options));
  txn_.AdvanceTo(stats.max_commit_ts);
  // WAL replay bypasses the transaction path, so the in-memory change logs
  // and view cursors do not reflect the recovered rows. Every materialized
  // view is stale-on-recover: rebuild from the recovered bases.
  OLTAP_RETURN_NOT_OK(views_.RebuildAllAfterRecovery());
  return stats;
}

Result<Database::RecoveryReport> Database::RecoverFromCheckpointStore(
    const CheckpointStore& store, const std::string& wal_data,
    ThreadPool* pool) {
  RecoveryReport report;
  Result<CheckpointStore::Image> image =
      SelectRecoveryImage(store, &report.fallbacks);
  if (report.fallbacks > 0) {
    obs::MetricsRegistry::Default()
        ->GetCounter("ckpt.fallbacks")
        ->Add(report.fallbacks);
  }
  if (!image.ok()) {
    if (!image.status().IsNotFound()) return image.status();
    // Nothing usable in the store (all images torn, or the daemon never
    // completed a round): full WAL replay over pre-created tables.
    OLTAP_ASSIGN_OR_RETURN(report.stats, RecoverFromWal(wal_data, pool));
    report.tail_txns = report.stats.txns_applied;
    return report;
  }

  CheckpointContents contents;
  OLTAP_ASSIGN_OR_RETURN(
      Wal::ReplayStats ckpt_stats,
      RestoreCheckpoint(image->data, &catalog_, &contents, pool));

  // Validate the carried view DDL up front: the tail replay must skip the
  // views' backing tables (their WAL records are maintenance output;
  // re-running the DDL below rebuilds them from the recovered bases).
  std::vector<sql::Statement> view_stmts;
  Wal::ReplayOptions options;
  for (const std::string& ddl : contents.view_ddls) {
    OLTAP_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(ddl));
    if (stmt.kind != sql::Statement::Kind::kCreateView) {
      return Status::Corruption("checkpoint view section holds a non-view "
                                "statement: " + ddl);
    }
    options.skip_tables.push_back(stmt.create_view->name);
    view_stmts.push_back(std::move(stmt));
  }

  options.idempotent = true;
  options.skip_through_ts = contents.ts;
  OLTAP_ASSIGN_OR_RETURN(
      Wal::ReplayStats tail_stats,
      Wal::ReplayParallel(wal_data, &catalog_, pool, options));

  report.stats.txns_applied = ckpt_stats.txns_applied + tail_stats.txns_applied;
  report.stats.ops_applied = ckpt_stats.ops_applied + tail_stats.ops_applied;
  report.stats.max_commit_ts =
      std::max(ckpt_stats.max_commit_ts, tail_stats.max_commit_ts);
  report.stats.truncated_tail = tail_stats.truncated_tail;
  report.checkpoint_id = image->id;
  report.checkpoint_ts = contents.ts;
  report.tail_txns = tail_stats.txns_applied;
  txn_.AdvanceTo(report.stats.max_commit_ts);

  // Re-run the view DDL carried in the image: each CREATE re-registers the
  // view, re-creates its backing table, and runs the initial build over
  // the just-recovered bases — the same stale-on-recover rebuild
  // RecoverFromWal does, driven from the image instead of live registry
  // state.
  for (const sql::Statement& stmt : view_stmts) {
    if (views_.IsView(stmt.create_view->name)) continue;  // re-entrant run
    OLTAP_RETURN_NOT_OK(views_.Create(*stmt.create_view));
  }
  return report;
}

size_t Database::MergeAll() {
  size_t total = 0;
  Timestamp merge_ts = txn_.oracle()->CurrentReadTs();
  // Delta-join maintenance reads base pre-states at each view's cursor;
  // merges must not garbage-collect versions those snapshots still need.
  Timestamp horizon =
      std::min(txn_.OldestActiveSnapshot(), views_.GcHorizon());
  for (Table* table : catalog_.AllTables()) {
    if (table->Mergeable()) {
      total += table->MergeDelta(merge_ts, horizon);
    }
  }
  return total;
}

}  // namespace oltap
