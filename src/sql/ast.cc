#include "sql/ast.h"

namespace oltap {
namespace sql {

std::string ParseExpr::ToString() const {
  switch (kind) {
    case Kind::kIdent:
      return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kIntLit:
      return std::to_string(int_val);
    case Kind::kDoubleLit:
      return std::to_string(double_val);
    case Kind::kStringLit:
      return "'" + str_val + "'";
    case Kind::kNullLit:
      return "NULL";
    case Kind::kStar:
      return "*";
    case Kind::kBinary:
      return "(" + args[0]->ToString() + " " + op + " " +
             args[1]->ToString() + ")";
    case Kind::kUnaryNot:
      return "NOT " + args[0]->ToString();
    case Kind::kUnaryMinus:
      return "-" + args[0]->ToString();
    case Kind::kCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kIsNull:
      return args[0]->ToString() + " IS NULL";
  }
  return "?";
}

}  // namespace sql
}  // namespace oltap
