#ifndef OLTAP_SQL_LEXER_H_
#define OLTAP_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace oltap {
namespace sql {

struct Token {
  enum class Kind : uint8_t {
    kIdent,    // unquoted identifier or keyword (text uppercased in `upper`)
    kInt,
    kDouble,
    kString,   // 'single quoted' with '' escaping
    kSymbol,   // ( ) , . * = <> < <= > >= + - /
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;   // original text (identifier case preserved)
  std::string upper;  // uppercased text for keyword matching
  int64_t int_val = 0;
  double double_val = 0;
  size_t offset = 0;  // byte position, for error messages

  bool IsKeyword(const char* kw) const {
    return kind == Kind::kIdent && upper == kw;
  }
  bool IsSymbol(const char* s) const {
    return kind == Kind::kSymbol && text == s;
  }
};

// Tokenizes `sql`. Appends a kEnd token on success.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace sql
}  // namespace oltap

#endif  // OLTAP_SQL_LEXER_H_
