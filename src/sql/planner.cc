#include "sql/planner.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/logging.h"
#include "exec/parallel/morsel.h"
#include "exec/parallel/parallel_agg.h"
#include "exec/parallel/parallel_join.h"
#include "exec/parallel/parallel_scan.h"
#include "obs/metrics.h"
#include "opt/cardinality.h"
#include "opt/cost_model.h"
#include "opt/join_order.h"
#include "opt/stats.h"

namespace oltap {
namespace sql {
namespace {

bool IsAggregateName(const std::string& fn) {
  return fn == "COUNT" || fn == "SUM" || fn == "MIN" || fn == "MAX" ||
         fn == "AVG";
}

// Name-resolution scope: the concatenated columns of the FROM tables.
struct BindScope {
  struct Col {
    std::string alias;  // table alias
    std::string name;
    ValueType type;
  };
  std::vector<Col> cols;

  Result<int> Find(const std::string& qualifier,
                   const std::string& name) const {
    int found = -1;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].name != name) continue;
      if (!qualifier.empty() && cols[i].alias != qualifier) continue;
      if (found >= 0) {
        return Status::InvalidArgument("ambiguous column: " + name);
      }
      found = static_cast<int>(i);
    }
    if (found < 0) {
      return Status::InvalidArgument(
          "unknown column: " +
          (qualifier.empty() ? name : qualifier + "." + name));
    }
    return found;
  }
};

// Binds a scalar (non-aggregate) parse expression against the scope.
Result<ExprPtr> Bind(const ParseExpr& e, const BindScope& scope) {
  switch (e.kind) {
    case ParseExpr::Kind::kIdent: {
      OLTAP_ASSIGN_OR_RETURN(int idx, scope.Find(e.qualifier, e.name));
      return Expr::Column(idx, scope.cols[idx].type);
    }
    case ParseExpr::Kind::kIntLit:
      return Expr::Constant(Value::Int64(e.int_val));
    case ParseExpr::Kind::kDoubleLit:
      return Expr::Constant(Value::Double(e.double_val));
    case ParseExpr::Kind::kStringLit:
      return Expr::Constant(Value::String(e.str_val));
    case ParseExpr::Kind::kNullLit:
      return Expr::Constant(Value::Null());
    case ParseExpr::Kind::kStar:
      return Status::InvalidArgument("* is only valid in COUNT(*)");
    case ParseExpr::Kind::kUnaryNot: {
      OLTAP_ASSIGN_OR_RETURN(ExprPtr inner, Bind(*e.args[0], scope));
      return Expr::Not(std::move(inner));
    }
    case ParseExpr::Kind::kUnaryMinus: {
      OLTAP_ASSIGN_OR_RETURN(ExprPtr inner, Bind(*e.args[0], scope));
      return Expr::Arith(Expr::Kind::kSub,
                         Expr::Constant(Value::Int64(0)), std::move(inner));
    }
    case ParseExpr::Kind::kIsNull: {
      OLTAP_ASSIGN_OR_RETURN(ExprPtr inner, Bind(*e.args[0], scope));
      return Expr::IsNull(std::move(inner));
    }
    case ParseExpr::Kind::kCall:
      if (IsAggregateName(e.name)) {
        return Status::InvalidArgument(
            "aggregate not allowed in this context: " + e.name);
      }
      return Status::InvalidArgument("unknown function: " + e.name);
    case ParseExpr::Kind::kBinary: {
      OLTAP_ASSIGN_OR_RETURN(ExprPtr l, Bind(*e.args[0], scope));
      OLTAP_ASSIGN_OR_RETURN(ExprPtr r, Bind(*e.args[1], scope));
      if (e.op == "AND") return Expr::And(std::move(l), std::move(r));
      if (e.op == "OR") return Expr::Or(std::move(l), std::move(r));
      if (e.op == "+") {
        return Expr::Arith(Expr::Kind::kAdd, std::move(l), std::move(r));
      }
      if (e.op == "-") {
        return Expr::Arith(Expr::Kind::kSub, std::move(l), std::move(r));
      }
      if (e.op == "*") {
        return Expr::Arith(Expr::Kind::kMul, std::move(l), std::move(r));
      }
      if (e.op == "/") {
        return Expr::Arith(Expr::Kind::kDiv, std::move(l), std::move(r));
      }
      CompareOp op;
      if (e.op == "=") {
        op = CompareOp::kEq;
      } else if (e.op == "<>") {
        op = CompareOp::kNe;
      } else if (e.op == "<") {
        op = CompareOp::kLt;
      } else if (e.op == "<=") {
        op = CompareOp::kLe;
      } else if (e.op == ">") {
        op = CompareOp::kGt;
      } else if (e.op == ">=") {
        op = CompareOp::kGe;
      } else {
        return Status::InvalidArgument("unknown operator: " + e.op);
      }
      return Expr::Compare(op, std::move(l), std::move(r));
    }
  }
  return Status::Internal("unhandled parse expression");
}

// Column indices referenced by a bound expression.
void CollectColumns(const ExprPtr& e, std::vector<int>* out) {
  if (e == nullptr) return;
  if (e->kind() == Expr::Kind::kColumn) out->push_back(e->column_index());
  for (const ExprPtr& c : e->children()) CollectColumns(c, out);
}

// Shifts every column reference in a bound expression by -offset (combined
// scope index → table-local index).
ExprPtr ShiftColumns(const ExprPtr& e, int offset) {
  if (e->kind() == Expr::Kind::kColumn) {
    return Expr::Column(e->column_index() - offset, e->result_type());
  }
  switch (e->kind()) {
    case Expr::Kind::kConst:
      return e;
    case Expr::Kind::kCompare:
      return Expr::Compare(e->compare_op(),
                           ShiftColumns(e->children()[0], offset),
                           ShiftColumns(e->children()[1], offset));
    case Expr::Kind::kAnd:
      return Expr::And(ShiftColumns(e->children()[0], offset),
                       ShiftColumns(e->children()[1], offset));
    case Expr::Kind::kOr:
      return Expr::Or(ShiftColumns(e->children()[0], offset),
                      ShiftColumns(e->children()[1], offset));
    case Expr::Kind::kNot:
      return Expr::Not(ShiftColumns(e->children()[0], offset));
    case Expr::Kind::kIsNull:
      return Expr::IsNull(ShiftColumns(e->children()[0], offset));
    default:
      return Expr::Arith(e->kind(), ShiftColumns(e->children()[0], offset),
                         ShiftColumns(e->children()[1], offset));
  }
}

// Rewrites column references through an arbitrary index map (combined
// scope index → plan output position after join reordering).
ExprPtr RemapGlobal(const ExprPtr& e, const std::vector<int>& map) {
  if (e->kind() == Expr::Kind::kColumn) {
    return Expr::Column(map[static_cast<size_t>(e->column_index())],
                        e->result_type());
  }
  switch (e->kind()) {
    case Expr::Kind::kConst:
      return e;
    case Expr::Kind::kCompare:
      return Expr::Compare(e->compare_op(), RemapGlobal(e->children()[0], map),
                           RemapGlobal(e->children()[1], map));
    case Expr::Kind::kAnd:
      return Expr::And(RemapGlobal(e->children()[0], map),
                       RemapGlobal(e->children()[1], map));
    case Expr::Kind::kOr:
      return Expr::Or(RemapGlobal(e->children()[0], map),
                      RemapGlobal(e->children()[1], map));
    case Expr::Kind::kNot:
      return Expr::Not(RemapGlobal(e->children()[0], map));
    case Expr::Kind::kIsNull:
      return Expr::IsNull(RemapGlobal(e->children()[0], map));
    default:
      return Expr::Arith(e->kind(), RemapGlobal(e->children()[0], map),
                         RemapGlobal(e->children()[1], map));
  }
}

// The pushable (column <op> const) conjuncts of a table-local predicate,
// mirroring the split ScanOp::Open performs — the cost model prices the
// zone-map pruning these would get.
std::vector<Expr::ColumnPredicate> PushablePreds(const ExprPtr& pred) {
  std::vector<Expr::ColumnPredicate> out;
  if (pred == nullptr) return out;
  std::vector<ExprPtr> conjuncts;
  Expr::SplitConjuncts(pred, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    Expr::ColumnPredicate cp;
    if (c->AsColumnPredicate(&cp)) out.push_back(cp);
  }
  return out;
}

struct FromTable {
  const Table* table;
  std::string alias;
  int offset;  // first combined column index
  int width;
};

}  // namespace

std::string StatementFingerprint(const SelectStmt& stmt) {
  std::string fp = "SELECT ";
  if (stmt.distinct) fp += "DISTINCT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) fp += ", ";
    fp += stmt.items[i].expr->ToString();
    if (!stmt.items[i].alias.empty()) fp += " AS " + stmt.items[i].alias;
  }
  fp += " FROM ";
  for (size_t i = 0; i < stmt.tables.size(); ++i) {
    if (i > 0) fp += ", ";
    fp += stmt.tables[i].name;
    if (!stmt.tables[i].alias.empty() &&
        stmt.tables[i].alias != stmt.tables[i].name) {
      fp += " " + stmt.tables[i].alias;
    }
    if (stmt.tables[i].join_on != nullptr) {
      fp += " ON " + stmt.tables[i].join_on->ToString();
    }
  }
  if (stmt.where != nullptr) fp += " WHERE " + stmt.where->ToString();
  if (!stmt.group_by.empty()) {
    fp += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) fp += ", ";
      fp += stmt.group_by[i]->ToString();
    }
  }
  if (stmt.having != nullptr) fp += " HAVING " + stmt.having->ToString();
  if (!stmt.order_by.empty()) {
    fp += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) fp += ", ";
      fp += stmt.order_by[i].expr->ToString();
      if (stmt.order_by[i].descending) fp += " DESC";
    }
  }
  if (stmt.limit >= 0) fp += " LIMIT " + std::to_string(stmt.limit);
  return fp;
}

bool ContainsAggregate(const ParseExpr& e) {
  if (e.kind == ParseExpr::Kind::kCall && IsAggregateName(e.name)) {
    return true;
  }
  for (const auto& a : e.args) {
    if (ContainsAggregate(*a)) return true;
  }
  return false;
}

Result<ExprPtr> BindOverSchema(const ParseExpr& e, const Schema& schema,
                               const std::string& alias) {
  BindScope scope;
  for (const ColumnDef& c : schema.columns()) {
    scope.cols.push_back({alias, c.name, c.type});
  }
  return Bind(e, scope);
}

Result<PlannedQuery> PlanSelect(const SelectStmt& stmt,
                                const Catalog& catalog, Timestamp read_ts,
                                const PlannerOptions& options) {
  // ---- Resolve FROM tables and build the combined scope. ----
  BindScope scope;
  std::vector<FromTable> from;
  for (const TableRef& ref : stmt.tables) {
    Table* table = catalog.GetTable(ref.name);
    if (table == nullptr) {
      return Status::NotFound("unknown table: " + ref.name);
    }
    FromTable ft;
    ft.table = table;
    ft.alias = ref.alias;
    ft.offset = static_cast<int>(scope.cols.size());
    ft.width = static_cast<int>(table->schema().num_columns());
    for (const ColumnDef& c : table->schema().columns()) {
      scope.cols.push_back({ref.alias, c.name, c.type});
    }
    from.push_back(ft);
  }

  // ---- Bind WHERE and classify conjuncts per table. ----
  std::vector<ExprPtr> table_preds(from.size());
  std::vector<ExprPtr> residual;
  if (stmt.where != nullptr) {
    if (ContainsAggregate(*stmt.where)) {
      return Status::InvalidArgument("aggregates not allowed in WHERE");
    }
    OLTAP_ASSIGN_OR_RETURN(ExprPtr where, Bind(*stmt.where, scope));
    std::vector<ExprPtr> conjuncts;
    Expr::SplitConjuncts(where, &conjuncts);
    for (const ExprPtr& c : conjuncts) {
      std::vector<int> cols;
      CollectColumns(c, &cols);
      int owner = -1;
      bool single = true;
      for (int col : cols) {
        int t = -1;
        for (size_t i = 0; i < from.size(); ++i) {
          if (col >= from[i].offset && col < from[i].offset + from[i].width) {
            t = static_cast<int>(i);
          }
        }
        if (owner == -1) owner = t;
        if (t != owner) single = false;
      }
      if (single && owner >= 0) {
        ExprPtr local = ShiftColumns(c, from[owner].offset);
        table_preds[owner] = table_preds[owner] == nullptr
                                 ? local
                                 : Expr::And(table_preds[owner], local);
      } else if (owner == -1) {
        // Constant predicate: attach to the first table.
        table_preds[0] = table_preds[0] == nullptr
                             ? c
                             : Expr::And(table_preds[0], c);
      } else {
        residual.push_back(c);
      }
    }
  }

  auto* metrics = obs::MetricsRegistry::Default();
  metrics->GetCounter("opt.plans")->Add(1);

  PlannedQuery out;
  out.optimized = options.use_optimizer;
  out.scans.assign(from.size(), nullptr);

  PhysicalOpPtr plan;
  // Combined-scope column index → plan output position. Empty means
  // identity (the FROM-order planner below concatenates tables in scope
  // order, so no rewrite is needed).
  std::vector<int> global_to_plan;

  // Morsel-parallel substitution: optimizer path only (SET optimizer=off
  // must reproduce the historical plans byte for byte), and only when the
  // session supplied a pool and the admission grant left DOP >= 2.
  const bool par_enabled = options.use_optimizer &&
                           options.exec_pool != nullptr &&
                           options.max_dop >= 2;
  const ParallelContext pctx{options.exec_pool, options.max_dop};
  bool any_parallel = false;

  if (!options.use_optimizer) {
    // ---- Scans and left-deep joins in FROM order (optimizer off). ----
    // This block is the planner exactly as it was before the optimizer
    // existed; SET optimizer = off must reproduce its plans — and their
    // EXPLAIN text — byte for byte.
    plan = std::make_unique<ScanOp>(from[0].table, read_ts, table_preds[0]);
    for (size_t i = 1; i < stmt.tables.size(); ++i) {
      if (stmt.tables[i].join_on == nullptr) {
        return Status::InvalidArgument("missing ON clause");
      }
      OLTAP_ASSIGN_OR_RETURN(ExprPtr on,
                             Bind(*stmt.tables[i].join_on, scope));
      std::vector<ExprPtr> on_terms;
      Expr::SplitConjuncts(on, &on_terms);
      std::vector<int> build_keys, probe_keys;
      std::vector<ExprPtr> post_join;
      const int offset = from[i].offset;
      const int width = from[i].width;
      for (const ExprPtr& term : on_terms) {
        // Look for equality between an accumulated column and a new-table
        // column.
        bool handled = false;
        if (term->kind() == Expr::Kind::kCompare &&
            term->compare_op() == CompareOp::kEq) {
          const ExprPtr& l = term->children()[0];
          const ExprPtr& r = term->children()[1];
          if (l->kind() == Expr::Kind::kColumn &&
              r->kind() == Expr::Kind::kColumn) {
            int lc = l->column_index(), rc = r->column_index();
            bool l_new = lc >= offset && lc < offset + width;
            bool r_new = rc >= offset && rc < offset + width;
            if (l_new != r_new) {
              int build = l_new ? rc : lc;
              int probe = (l_new ? lc : rc) - offset;
              if (build < offset) {
                build_keys.push_back(build);
                probe_keys.push_back(probe);
                handled = true;
              }
            }
          }
        }
        if (!handled) post_join.push_back(term);
      }
      if (build_keys.empty()) {
        return Status::InvalidArgument(
            "JOIN requires at least one equality between the joined tables");
      }
      PhysicalOpPtr scan = std::make_unique<ScanOp>(
          from[i].table, read_ts, table_preds[i]);
      plan = std::make_unique<HashJoinOp>(std::move(plan), std::move(scan),
                                          std::move(build_keys),
                                          std::move(probe_keys));
      if (!post_join.empty()) {
        plan = std::make_unique<FilterOp>(std::move(plan),
                                          Expr::CombineConjuncts(post_join));
      }
    }
    if (!residual.empty()) {
      plan = std::make_unique<FilterOp>(std::move(plan),
                                        Expr::CombineConjuncts(residual));
    }
  } else {
    // ---- Cost-based path: pooled join graph, DPsize ordering, costed
    // scans with access-path selection, estimate annotations. ----
    metrics->GetCounter("opt.plans_optimized")->Add(1);
    out.fingerprint = StatementFingerprint(stmt);

    auto owner_of = [&](int col) {
      int t = -1;
      for (size_t i = 0; i < from.size(); ++i) {
        if (col >= from[i].offset && col < from[i].offset + from[i].width) {
          t = static_cast<int>(i);
        }
      }
      return t;
    };

    // Per-relation statistics and post-local-predicate cardinalities.
    // Measured actuals from the feedback memo override estimates.
    std::vector<std::shared_ptr<const opt::TableStats>> stats(from.size());
    std::vector<double> rel_rows(from.size());
    std::optional<opt::PlanFeedback::Entry> fb;
    if (options.feedback != nullptr) {
      fb = options.feedback->Lookup(out.fingerprint);
    }
    bool used_actuals = false;
    for (size_t i = 0; i < from.size(); ++i) {
      stats[i] = catalog.GetTableStats(from[i].table->name());
      double base = static_cast<double>(from[i].table->ApproxRowCount());
      opt::CardinalityEstimator est(stats[i].get(), base);
      rel_rows[i] = est.EstimateRows(table_preds[i]);
      if (fb.has_value() && i < fb->scan_actual_rows.size() &&
          fb->scan_actual_rows[i] >= 0) {
        rel_rows[i] = fb->scan_actual_rows[i];
        used_actuals = true;
      }
    }

    // Pool the ON-clause terms once against the combined scope, keeping
    // the FROM-order planner's validation (each join needs an equality
    // with an earlier table) so rejected statements stay rejected.
    struct EqEdge {
      int ta, tb;  // FROM indices
      int ga, gb;  // combined-scope columns
      double sel;  // equi-join selectivity
      bool applied = false;
    };
    std::vector<EqEdge> edges;
    std::vector<ExprPtr> late_filters;  // non-key ON terms + residual
    auto add_edge = [&](int tl, int tr, int lc, int rc) {
      double sel = opt::EquiJoinSelectivity(
          stats[tl].get(), lc - from[tl].offset,
          static_cast<double>(from[tl].table->ApproxRowCount()),
          stats[tr].get(), rc - from[tr].offset,
          static_cast<double>(from[tr].table->ApproxRowCount()));
      edges.push_back({tl, tr, lc, rc, sel});
    };
    for (size_t i = 1; i < stmt.tables.size(); ++i) {
      if (stmt.tables[i].join_on == nullptr) {
        return Status::InvalidArgument("missing ON clause");
      }
      OLTAP_ASSIGN_OR_RETURN(ExprPtr on,
                             Bind(*stmt.tables[i].join_on, scope));
      std::vector<ExprPtr> on_terms;
      Expr::SplitConjuncts(on, &on_terms);
      const int offset = from[i].offset;
      const int width = from[i].width;
      bool any_eq = false;
      for (const ExprPtr& term : on_terms) {
        bool is_edge = false;
        if (term->kind() == Expr::Kind::kCompare &&
            term->compare_op() == CompareOp::kEq) {
          const ExprPtr& l = term->children()[0];
          const ExprPtr& r = term->children()[1];
          if (l->kind() == Expr::Kind::kColumn &&
              r->kind() == Expr::Kind::kColumn) {
            int lc = l->column_index(), rc = r->column_index();
            int tl = owner_of(lc), tr = owner_of(rc);
            if (tl != tr && tl >= 0 && tr >= 0) {
              add_edge(tl, tr, lc, rc);
              is_edge = true;
              bool l_new = lc >= offset && lc < offset + width;
              bool r_new = rc >= offset && rc < offset + width;
              if (l_new != r_new && (l_new ? rc : lc) < offset) {
                any_eq = true;
              }
            }
          }
        }
        if (!is_edge) late_filters.push_back(term);
      }
      if (!any_eq) {
        return Status::InvalidArgument(
            "JOIN requires at least one equality between the joined tables");
      }
    }
    // Cross-table equalities from WHERE become join keys/edges as well.
    for (const ExprPtr& c : residual) {
      bool is_edge = false;
      if (c->kind() == Expr::Kind::kCompare &&
          c->compare_op() == CompareOp::kEq) {
        const ExprPtr& l = c->children()[0];
        const ExprPtr& r = c->children()[1];
        if (l->kind() == Expr::Kind::kColumn &&
            r->kind() == Expr::Kind::kColumn) {
          int lc = l->column_index(), rc = r->column_index();
          int tl = owner_of(lc), tr = owner_of(rc);
          if (tl != tr && tl >= 0 && tr >= 0) {
            add_edge(tl, tr, lc, rc);
            is_edge = true;
          }
        }
      }
      if (!is_edge) late_filters.push_back(c);
    }

    const opt::CostModel cm;

    // Join order: the memoized order when one is still valid, cost-based
    // search otherwise (DPsize up to 8 relations, greedy above).
    std::vector<int> order(from.size());
    std::iota(order.begin(), order.end(), 0);
    if (from.size() > 1) {
      if (fb.has_value() && fb->order.size() == from.size()) {
        order = fb->order;
        metrics->GetCounter("opt.order_cache_hits")->Add(1);
      } else {
        opt::JoinGraph graph;
        graph.rel_rows = rel_rows;
        for (const EqEdge& e : edges) {
          graph.edges.push_back({e.ta, e.tb, e.sel});
        }
        order = opt::OrderJoins(graph, cm).order;
        if (used_actuals) {
          metrics->GetCounter("opt.feedback_replans")->Add(1);
        }
        if (options.feedback != nullptr) {
          options.feedback->RememberOrder(out.fingerprint, order);
        }
      }
    }
    out.join_order = order;

    // Estimated rows after each join prefix along the chosen order.
    std::vector<double> interm(order.size());
    {
      std::vector<bool> seen(from.size(), false);
      double rows = rel_rows[order[0]];
      interm[0] = rows;
      seen[order[0]] = true;
      for (size_t p = 1; p < order.size(); ++p) {
        int r = order[p];
        double sel = 1.0;
        for (const EqEdge& e : edges) {
          if ((e.ta == r && seen[e.tb]) || (e.tb == r && seen[e.ta])) {
            sel *= e.sel;
          }
        }
        rows = rows * rel_rows[r] * sel;
        interm[p] = rows;
        seen[r] = true;
      }
    }

    // Costed scan with access-path selection (explicit side only for
    // dual-format tables; other formats have exactly one).
    auto make_scan = [&](int t) -> PhysicalOpPtr {
      opt::CostModel::ScanDecision d =
          cm.CostScan(*from[t].table, read_ts, PushablePreds(table_preds[t]),
                      rel_rows[t]);
      ScanOp::Path path = ScanOp::Path::kAuto;
      if (from[t].table->format() == TableFormat::kDual) {
        path = d.path == opt::AccessPath::kRow ? ScanOp::Path::kRow
                                               : ScanOp::Path::kColumn;
        metrics
            ->GetCounter(path == ScanOp::Path::kRow ? "opt.path_row"
                                                    : "opt.path_column")
            ->Add(1);
      }
      // Morsel-parallel scan for large columnar reads. The feedback
      // memo's scan slot stays null (actual cardinality harvesting is a
      // serial-scan feature; estimates degrade gracefully without it).
      if (par_enabled && path != ScanOp::Path::kRow &&
          from[t].table->column_table() != nullptr &&
          from[t].table->ApproxRowCount() >= kMinParallelScanRows) {
        auto pscan = std::make_unique<ParallelScanOp>(
            from[t].table, read_ts, table_preds[t], std::vector<int>{},
            pctx);
        pscan->set_estimates(rel_rows[t], d.cost);
        any_parallel = true;
        return pscan;
      }
      auto scan = std::make_unique<ScanOp>(from[t].table, read_ts,
                                           table_preds[t],
                                           std::vector<int>{}, path);
      scan->set_estimates(rel_rows[t], d.cost);
      out.scans[static_cast<size_t>(t)] = scan.get();
      return scan;
    };

    global_to_plan.assign(scope.cols.size(), -1);
    std::vector<bool> placed(from.size(), false);
    plan = make_scan(order[0]);
    double cum_cost = plan->est_cost();
    for (int j = 0; j < from[order[0]].width; ++j) {
      global_to_plan[static_cast<size_t>(from[order[0]].offset + j)] = j;
    }
    int plan_width = from[order[0]].width;
    placed[order[0]] = true;
    for (size_t p = 1; p < order.size(); ++p) {
      int r = order[p];
      // Every pooled equality with exactly one side on the new relation
      // and the other already placed becomes a hash key here.
      std::vector<int> build_keys, probe_keys;
      for (EqEdge& e : edges) {
        if (e.applied) continue;
        int rg = -1, og = -1;
        if (e.ta == r && placed[e.tb]) {
          rg = e.ga;
          og = e.gb;
        } else if (e.tb == r && placed[e.ta]) {
          rg = e.gb;
          og = e.ga;
        }
        if (rg < 0) continue;
        build_keys.push_back(global_to_plan[static_cast<size_t>(og)]);
        probe_keys.push_back(rg - from[r].offset);
        e.applied = true;
      }
      auto scan = make_scan(r);
      cum_cost += scan->est_cost() +
                  cm.CostHashJoin(interm[p - 1], rel_rows[r], interm[p]).cost;
      PhysicalOpPtr join;
      if (par_enabled && dynamic_cast<MorselSource*>(scan.get()) != nullptr) {
        // Probe side is morsel-parallel: partitioned parallel build +
        // in-worker probe, fused into the scan's morsel pipeline.
        join = std::make_unique<ParallelHashJoinOp>(
            std::move(plan), std::move(scan), std::move(build_keys),
            std::move(probe_keys), pctx);
        any_parallel = true;
      } else {
        join = std::make_unique<HashJoinOp>(
            std::move(plan), std::move(scan), std::move(build_keys),
            std::move(probe_keys));
      }
      join->set_estimates(interm[p], cum_cost);
      plan = std::move(join);
      for (int j = 0; j < from[r].width; ++j) {
        global_to_plan[static_cast<size_t>(from[r].offset + j)] =
            plan_width + j;
      }
      plan_width += from[r].width;
      placed[r] = true;
    }

    // Non-key ON terms and the remaining residual run above the joins,
    // rewritten into plan positions.
    if (!late_filters.empty()) {
      std::vector<ExprPtr> remapped;
      remapped.reserve(late_filters.size());
      for (const ExprPtr& c : late_filters) {
        remapped.push_back(RemapGlobal(c, global_to_plan));
      }
      ExprPtr pred = Expr::CombineConjuncts(remapped);
      if (par_enabled && dynamic_cast<MorselSource*>(plan.get()) != nullptr) {
        plan = std::make_unique<ParallelFilterOp>(std::move(plan),
                                                  std::move(pred), pctx);
        any_parallel = true;
      } else {
        plan = std::make_unique<FilterOp>(std::move(plan), std::move(pred));
      }
    }
  }

  // After join reordering the plan's output columns are in join order,
  // not scope order; every later scope-bound expression goes through this
  // rewrite (identity when global_to_plan is empty).
  auto remap_out = [&](ExprPtr e) -> ExprPtr {
    return global_to_plan.empty() ? e : RemapGlobal(e, global_to_plan);
  };

  // ---- SELECT list: expand *, detect aggregation. ----
  std::vector<const SelectItem*> items;
  std::vector<SelectItem> expanded;
  if (stmt.items.size() == 1 &&
      stmt.items[0].expr->kind == ParseExpr::Kind::kStar) {
    for (const BindScope::Col& c : scope.cols) {
      SelectItem item;
      auto ident = std::make_unique<ParseExpr>();
      ident->kind = ParseExpr::Kind::kIdent;
      ident->qualifier = c.alias;
      ident->name = c.name;
      item.expr = std::move(ident);
      item.alias = c.name;
      expanded.push_back(std::move(item));
    }
    for (const SelectItem& item : expanded) items.push_back(&item);
  } else {
    for (const SelectItem& item : stmt.items) items.push_back(&item);
  }

  bool has_agg = !stmt.group_by.empty();
  for (const SelectItem* item : items) {
    if (ContainsAggregate(*item->expr)) has_agg = true;
  }

  std::vector<std::string> names;
  if (!has_agg) {
    if (stmt.having != nullptr) {
      return Status::InvalidArgument(
          "HAVING requires GROUP BY or aggregates");
    }
    std::vector<ExprPtr> projections;
    for (const SelectItem* item : items) {
      OLTAP_ASSIGN_OR_RETURN(ExprPtr e, Bind(*item->expr, scope));
      projections.push_back(remap_out(std::move(e)));
      names.push_back(item->alias.empty() ? item->expr->ToString()
                                          : item->alias);
    }
    plan = std::make_unique<ProjectOp>(std::move(plan),
                                       std::move(projections));
  } else {
    // Bind group keys.
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_texts;
    for (const ParseExprPtr& g : stmt.group_by) {
      OLTAP_ASSIGN_OR_RETURN(ExprPtr e, Bind(*g, scope));
      group_exprs.push_back(remap_out(std::move(e)));
      group_texts.push_back(g->ToString());
    }
    // Each select item is either a group expression or a single aggregate.
    struct OutputRef {
      bool is_group;
      size_t index;  // into group_exprs or aggs
    };
    std::vector<AggSpec> aggs;
    std::vector<OutputRef> refs;
    for (const SelectItem* item : items) {
      const ParseExpr& pe = *item->expr;
      names.push_back(item->alias.empty() ? pe.ToString() : item->alias);
      if (pe.kind == ParseExpr::Kind::kCall && IsAggregateName(pe.name)) {
        AggSpec spec;
        if (pe.name == "COUNT") {
          if (pe.args.size() == 1 &&
              pe.args[0]->kind == ParseExpr::Kind::kStar) {
            spec.fn = AggSpec::Fn::kCountStar;
          } else if (pe.args.size() == 1) {
            spec.fn = AggSpec::Fn::kCount;
            OLTAP_ASSIGN_OR_RETURN(spec.arg, Bind(*pe.args[0], scope));
            spec.arg = remap_out(std::move(spec.arg));
          } else {
            return Status::InvalidArgument("COUNT takes one argument");
          }
        } else {
          if (pe.args.size() != 1) {
            return Status::InvalidArgument(pe.name + " takes one argument");
          }
          if (pe.name == "SUM") {
            spec.fn = AggSpec::Fn::kSum;
          } else if (pe.name == "MIN") {
            spec.fn = AggSpec::Fn::kMin;
          } else if (pe.name == "MAX") {
            spec.fn = AggSpec::Fn::kMax;
          } else {
            spec.fn = AggSpec::Fn::kAvg;
          }
          OLTAP_ASSIGN_OR_RETURN(spec.arg, Bind(*pe.args[0], scope));
          spec.arg = remap_out(std::move(spec.arg));
        }
        refs.push_back({false, aggs.size()});
        aggs.push_back(std::move(spec));
      } else {
        // Must match a GROUP BY expression textually.
        std::string text = pe.ToString();
        auto it = std::find(group_texts.begin(), group_texts.end(), text);
        if (it == group_texts.end()) {
          return Status::InvalidArgument(
              "select item is neither aggregate nor grouped: " + text);
        }
        refs.push_back(
            {true, static_cast<size_t>(it - group_texts.begin())});
      }
    }
    size_t num_groups = group_exprs.size();

    // Bind HAVING against the aggregate output: aggregate calls become
    // (possibly hidden) aggregate columns, group expressions become key
    // columns; anything else must be literal structure over those.
    ExprPtr having;
    if (stmt.having != nullptr) {
      std::function<Result<ExprPtr>(const ParseExpr&)> bind_having =
          [&](const ParseExpr& pe) -> Result<ExprPtr> {
        if (pe.kind == ParseExpr::Kind::kCall && IsAggregateName(pe.name)) {
          AggSpec spec;
          if (pe.name == "COUNT" && pe.args.size() == 1 &&
              pe.args[0]->kind == ParseExpr::Kind::kStar) {
            spec.fn = AggSpec::Fn::kCountStar;
          } else {
            if (pe.args.size() != 1) {
              return Status::InvalidArgument(pe.name + " takes one argument");
            }
            if (pe.name == "COUNT") {
              spec.fn = AggSpec::Fn::kCount;
            } else if (pe.name == "SUM") {
              spec.fn = AggSpec::Fn::kSum;
            } else if (pe.name == "MIN") {
              spec.fn = AggSpec::Fn::kMin;
            } else if (pe.name == "MAX") {
              spec.fn = AggSpec::Fn::kMax;
            } else {
              spec.fn = AggSpec::Fn::kAvg;
            }
            OLTAP_ASSIGN_OR_RETURN(spec.arg, Bind(*pe.args[0], scope));
            spec.arg = remap_out(std::move(spec.arg));
          }
          ValueType out_type = spec.OutputType();
          aggs.push_back(std::move(spec));
          return Expr::Column(static_cast<int>(num_groups + aggs.size() - 1),
                              out_type);
        }
        std::string text = pe.ToString();
        auto it = std::find(group_texts.begin(), group_texts.end(), text);
        if (it != group_texts.end()) {
          size_t g = static_cast<size_t>(it - group_texts.begin());
          return Expr::Column(static_cast<int>(g),
                              group_exprs[g]->result_type());
        }
        switch (pe.kind) {
          case ParseExpr::Kind::kIntLit:
            return Expr::Constant(Value::Int64(pe.int_val));
          case ParseExpr::Kind::kDoubleLit:
            return Expr::Constant(Value::Double(pe.double_val));
          case ParseExpr::Kind::kStringLit:
            return Expr::Constant(Value::String(pe.str_val));
          case ParseExpr::Kind::kNullLit:
            return Expr::Constant(Value::Null());
          case ParseExpr::Kind::kUnaryNot: {
            OLTAP_ASSIGN_OR_RETURN(ExprPtr inner, bind_having(*pe.args[0]));
            return Expr::Not(std::move(inner));
          }
          case ParseExpr::Kind::kIsNull: {
            OLTAP_ASSIGN_OR_RETURN(ExprPtr inner, bind_having(*pe.args[0]));
            return Expr::IsNull(std::move(inner));
          }
          case ParseExpr::Kind::kBinary: {
            OLTAP_ASSIGN_OR_RETURN(ExprPtr l, bind_having(*pe.args[0]));
            OLTAP_ASSIGN_OR_RETURN(ExprPtr r, bind_having(*pe.args[1]));
            if (pe.op == "AND") return Expr::And(std::move(l), std::move(r));
            if (pe.op == "OR") return Expr::Or(std::move(l), std::move(r));
            if (pe.op == "+") {
              return Expr::Arith(Expr::Kind::kAdd, std::move(l),
                                 std::move(r));
            }
            if (pe.op == "-") {
              return Expr::Arith(Expr::Kind::kSub, std::move(l),
                                 std::move(r));
            }
            if (pe.op == "*") {
              return Expr::Arith(Expr::Kind::kMul, std::move(l),
                                 std::move(r));
            }
            if (pe.op == "/") {
              return Expr::Arith(Expr::Kind::kDiv, std::move(l),
                                 std::move(r));
            }
            CompareOp op;
            if (pe.op == "=") {
              op = CompareOp::kEq;
            } else if (pe.op == "<>") {
              op = CompareOp::kNe;
            } else if (pe.op == "<") {
              op = CompareOp::kLt;
            } else if (pe.op == "<=") {
              op = CompareOp::kLe;
            } else if (pe.op == ">") {
              op = CompareOp::kGt;
            } else {
              op = CompareOp::kGe;
            }
            return Expr::Compare(op, std::move(l), std::move(r));
          }
          default:
            return Status::InvalidArgument(
                "HAVING must reference aggregates or GROUP BY columns: " +
                text);
        }
      };
      OLTAP_ASSIGN_OR_RETURN(having, bind_having(*stmt.having));
    }

    if (par_enabled && dynamic_cast<MorselSource*>(plan.get()) != nullptr &&
        AggsParallelMergeable(aggs)) {
      // Thread-local pre-aggregation per morsel, merged in slot order —
      // exact for COUNT/SUM(int)/MIN/MAX. Order-sensitive float folds
      // (AVG, SUM over doubles) keep the serial aggregate below, which is
      // still bit-exact because the parallel child reproduces the serial
      // row stream.
      plan = std::make_unique<ParallelHashAggOp>(
          std::move(plan), std::move(group_exprs), aggs, pctx);
    } else {
      plan = std::make_unique<HashAggOp>(std::move(plan),
                                         std::move(group_exprs), aggs);
    }
    if (having != nullptr) {
      plan = std::make_unique<FilterOp>(std::move(plan), std::move(having));
    }
    // Re-project into select order (dropping hidden HAVING aggregates).
    std::vector<ExprPtr> projections;
    std::vector<ValueType> agg_output = plan->OutputTypes();
    for (const OutputRef& ref : refs) {
      size_t idx = ref.is_group ? ref.index : num_groups + ref.index;
      projections.push_back(
          Expr::Column(static_cast<int>(idx), agg_output[idx]));
    }
    plan = std::make_unique<ProjectOp>(std::move(plan),
                                       std::move(projections));
  }

  if (stmt.distinct) {
    // SELECT DISTINCT: group on every output column, no aggregates.
    std::vector<ValueType> out_types = plan->OutputTypes();
    std::vector<ExprPtr> keys;
    keys.reserve(out_types.size());
    for (size_t i = 0; i < out_types.size(); ++i) {
      keys.push_back(Expr::Column(static_cast<int>(i), out_types[i]));
    }
    plan = std::make_unique<HashAggOp>(std::move(plan), std::move(keys),
                                       std::vector<AggSpec>{});
  }

  // ---- ORDER BY / LIMIT over the projected output. ----
  if (!stmt.order_by.empty()) {
    std::vector<SortOp::SortKey> keys;
    for (const OrderItem& item : stmt.order_by) {
      int col = -1;
      const ParseExpr& pe = *item.expr;
      if (pe.kind == ParseExpr::Kind::kIntLit) {
        // ORDER BY <position>, 1-based.
        if (pe.int_val < 1 || pe.int_val > static_cast<int64_t>(names.size())) {
          return Status::InvalidArgument("ORDER BY position out of range");
        }
        col = static_cast<int>(pe.int_val - 1);
      } else {
        std::string text = pe.ToString();
        for (size_t i = 0; i < names.size(); ++i) {
          if (names[i] == text) col = static_cast<int>(i);
        }
        if (col < 0) {
          // Also try matching the un-aliased item text.
          size_t i = 0;
          for (const SelectItem* item2 : items) {
            if (item2->expr->ToString() == text) col = static_cast<int>(i);
            ++i;
          }
        }
        if (col < 0) {
          return Status::InvalidArgument(
              "ORDER BY must reference a select-list column: " + text);
        }
      }
      keys.push_back({col, item.descending});
    }
    if (stmt.limit >= 0) {
      // Fuse ORDER BY + LIMIT into a bounded-heap Top-N.
      plan = std::make_unique<TopNOp>(std::move(plan), std::move(keys),
                                      static_cast<size_t>(stmt.limit));
    } else {
      plan = std::make_unique<SortOp>(std::move(plan), std::move(keys));
    }
  } else if (stmt.limit >= 0) {
    plan = std::make_unique<LimitOp>(std::move(plan),
                                     static_cast<size_t>(stmt.limit));
  }

  if (any_parallel) {
    metrics->GetCounter("exec.morsel.parallel_queries")->Add(1);
  }
  out.root = std::move(plan);
  out.output_names = std::move(names);
  return out;
}

}  // namespace sql
}  // namespace oltap
