#include "sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace oltap {
namespace sql {

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      t.kind = Token::Kind::kIdent;
      t.text = input.substr(start, i - start);
      t.upper = t.text;
      for (char& ch : t.upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (input[j] == '+' || input[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          is_double = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        }
      }
      t.text = input.substr(start, i - start);
      if (is_double) {
        t.kind = Token::Kind::kDouble;
        t.double_val = std::stod(t.text);
      } else {
        t.kind = Token::Kind::kInt;
        errno = 0;
        t.int_val = std::strtoll(t.text.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          return Status::InvalidArgument("integer literal out of range: " +
                                         t.text);
        }
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(input[i++]);
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal");
      }
      t.kind = Token::Kind::kString;
      t.text = value;
      tokens.push_back(std::move(t));
      continue;
    }
    // Multi-char symbols first.
    auto sym = [&](const std::string& s) {
      t.kind = Token::Kind::kSymbol;
      t.text = s;
      tokens.push_back(t);
      i += s.size();
    };
    if (c == '<') {
      if (i + 1 < n && input[i + 1] == '=') {
        sym("<=");
      } else if (i + 1 < n && input[i + 1] == '>') {
        sym("<>");
      } else {
        sym("<");
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < n && input[i + 1] == '=') {
        sym(">=");
      } else {
        sym(">");
      }
      continue;
    }
    if (c == '!' && i + 1 < n && input[i + 1] == '=') {
      sym("!=");
      tokens.back().text = "<>";  // normalize
      continue;
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case '.':
      case '*':
      case '=':
      case '+':
      case '-':
      case '/':
      case ';':
        sym(std::string(1, c));
        continue;
      default:
        return Status::InvalidArgument(
            std::string("unexpected character '") + c + "' at offset " +
            std::to_string(i));
    }
  }
  Token end;
  end.kind = Token::Kind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace oltap
