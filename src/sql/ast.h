#ifndef OLTAP_SQL_AST_H_
#define OLTAP_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/schema.h"
#include "storage/table.h"

namespace oltap {
namespace sql {

// Parsed, name-unresolved expression. The planner binds identifiers to
// column indices and lowers this into the executable oltap::Expr tree.
struct ParseExpr {
  enum class Kind : uint8_t {
    kIdent,       // [qualifier.]name
    kIntLit,
    kDoubleLit,
    kStringLit,
    kNullLit,
    kStar,        // only inside COUNT(*)
    kBinary,      // op in {=,<>,<,<=,>,>=,AND,OR,+,-,*,/}
    kUnaryNot,
    kUnaryMinus,
    kCall,        // aggregate: COUNT/SUM/MIN/MAX/AVG
    kIsNull,      // args[0] IS [NOT] NULL (negated=>wrapped in kUnaryNot)
  };

  Kind kind = Kind::kNullLit;
  std::string qualifier;  // kIdent: optional table alias
  std::string name;       // kIdent: column; kCall: function (uppercased)
  int64_t int_val = 0;
  double double_val = 0;
  std::string str_val;
  std::string op;  // kBinary operator token
  std::vector<std::unique_ptr<ParseExpr>> args;

  std::string ToString() const;
};

using ParseExprPtr = std::unique_ptr<ParseExpr>;

struct SelectItem {
  ParseExprPtr expr;
  std::string alias;  // empty = derived from expression
};

struct TableRef {
  std::string name;
  std::string alias;      // empty = name
  ParseExprPtr join_on;   // null for the first table
};

struct OrderItem {
  ParseExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> tables;
  ParseExprPtr where;
  std::vector<ParseExprPtr> group_by;
  ParseExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = none
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<ParseExprPtr>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ParseExprPtr>> sets;
  ParseExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ParseExprPtr where;
};

struct CreateTableStmt {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::string> key_columns;
  TableFormat format = TableFormat::kColumn;
};

// CREATE MATERIALIZED VIEW <name> [SYNC | DEFERRED [STALENESS <us>]]
// AS SELECT ... — join or GROUP BY/aggregate view over base tables,
// maintained incrementally from their change logs (src/view/).
struct CreateViewStmt {
  std::string name;
  bool sync = true;               // SYNC (default): maintained at commit
  int64_t max_staleness_us = -1;  // DEFERRED STALENESS bound; -1 = none
  std::unique_ptr<SelectStmt> select;
};

// REFRESH MATERIALIZED VIEW <name>: full rebuild from the base tables.
struct RefreshViewStmt {
  std::string name;
};

// ANALYZE [<table>]: collect optimizer statistics (all tables when no
// table is named).
struct AnalyzeStmt {
  std::string table;  // empty = every table in the catalog
};

// SET <name> = <value>: session/database knobs (currently `optimizer`).
struct SetStmt {
  std::string name;   // lowercased
  std::string value;  // lowercased
};

struct Statement {
  enum class Kind : uint8_t {
    kSelect,
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
    kCreateView,   // CREATE MATERIALIZED VIEW ... AS SELECT ...
    kRefreshView,  // REFRESH MATERIALIZED VIEW <name>
    kShowStats,  // SHOW STATS: engine metrics snapshot, no table access
    kAnalyze,    // ANALYZE: collect optimizer statistics
    kSet,        // SET <knob> = <value>
    kCheckpoint,  // CHECKPOINT: synchronous checkpoint round
  };
  Kind kind = Kind::kSelect;
  bool explain = false;  // EXPLAIN SELECT ...: plan only, no execution
  bool analyze = false;  // EXPLAIN ANALYZE: execute, report per-op profile
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create;
  std::unique_ptr<CreateViewStmt> create_view;
  std::unique_ptr<RefreshViewStmt> refresh_view;
  std::unique_ptr<AnalyzeStmt> analyze_stmt;
  std::unique_ptr<SetStmt> set;
};

}  // namespace sql
}  // namespace oltap

#endif  // OLTAP_SQL_AST_H_
