#ifndef OLTAP_SQL_PARSER_H_
#define OLTAP_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace oltap {
namespace sql {

// Parses one SQL statement (optionally ';'-terminated) of the supported
// subset:
//   SELECT ... FROM t [JOIN u ON ...]* [WHERE ...] [GROUP BY ...]
//     [ORDER BY ...] [LIMIT n]
//   INSERT INTO t VALUES (...), (...)
//   UPDATE t SET c = e, ... [WHERE ...]
//   DELETE FROM t [WHERE ...]
//   CREATE TABLE t (c TYPE [NOT NULL], ..., PRIMARY KEY (...)) [FORMAT f]
Result<Statement> Parse(const std::string& sql);

// Parses a standalone scalar expression (tests and tooling).
Result<ParseExprPtr> ParseExpression(const std::string& text);

}  // namespace sql
}  // namespace oltap

#endif  // OLTAP_SQL_PARSER_H_
