#ifndef OLTAP_SQL_SESSION_H_
#define OLTAP_SQL_SESSION_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "opt/feedback.h"
#include "sql/planner.h"
#include "storage/catalog.h"
#include "txn/checkpoint.h"
#include "txn/checkpoint_daemon.h"
#include "txn/transaction_manager.h"
#include "txn/wal.h"
#include "view/view.h"

namespace oltap {

struct QueryGrant;  // sched/workload_manager.h

// Result of a SQL statement: rows + column names for queries, an affected
// count for DML/DDL.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  size_t affected = 0;

  // Pretty-printed table (examples / debugging).
  std::string ToString(size_t max_rows = 25) const;
};

// The embeddable database facade: catalog + snapshot-isolation transaction
// manager + SQL front end. This is the object the examples and the
// CH-benCHmark driver construct.
//
// Execute() runs one autocommit statement. ExecuteIn() runs a statement
// inside a caller-managed transaction: DML is buffered in the transaction;
// SELECT sees the transaction's begin snapshot (UPDATE/DELETE row selection
// additionally sees the transaction's own writes, via Transaction::Scan).
class Database {
 public:
  explicit Database(Wal* wal = nullptr);

  Catalog* catalog() { return &catalog_; }
  TransactionManager* txn_manager() { return &txn_; }
  // The WAL this database logs commits to (nullptr when running without
  // durability). Callers that only probe health should use wal()->sealed()
  // / wal()->size(), not buffer().
  Wal* wal() const { return txn_.wal(); }

  Result<QueryResult> Execute(const std::string& sql);
  // Execute under a workload-manager admission grant: SELECTs cap their
  // degree of parallelism at grant.max_dop (degraded grants typically
  // force serial execution), leaving results unchanged.
  Result<QueryResult> Execute(const std::string& sql,
                              const QueryGrant& grant);
  Result<QueryResult> ExecuteIn(Transaction* txn, const std::string& sql);

  // Replays a serialized WAL into this database (tables must already
  // exist) and fast-forwards the timestamp oracle so new snapshots see the
  // recovered state. Replay is idempotent for keyed tables, so recovery
  // that crashed partway can simply run again over the same database.
  // With a non-null `pool`, replay runs partitioned by table on the pool
  // (same state, bounded by the largest table instead of the sum).
  Result<Wal::ReplayStats> RecoverFromWal(const std::string& wal_data,
                                          ThreadPool* pool = nullptr);

  // The online checkpoint daemon for this database, created on first use
  // (SQL CHECKPOINT, SET checkpoint_interval_us, or the workload driver)
  // and wired to this database's catalog, transaction manager, WAL, and
  // view registry (views pin truncation and ride the image as DDL).
  // Returned pointer stays valid for the database's lifetime.
  CheckpointDaemon* EnsureCheckpointer();
  // nullptr until EnsureCheckpointer was called.
  CheckpointDaemon* checkpointer();

  struct RecoveryReport {
    Wal::ReplayStats stats;       // combined checkpoint + tail replay
    uint64_t checkpoint_id = 0;   // 0 = recovered without a checkpoint
    Timestamp checkpoint_ts = 0;
    size_t fallbacks = 0;  // torn images/manifest entries skipped over
    size_t tail_txns = 0;  // transactions replayed from the WAL tail
  };

  // Bounded recovery: pick the newest valid image from `store` (falling
  // back past torn images and a torn manifest), restore it — catalog and
  // views are rebuilt from the image, so this works on a freshly
  // constructed Database — then replay only the WAL tail past the
  // checkpoint. When the store holds no usable image, degrades to full
  // WAL replay (tables must then already exist, as in RecoverFromWal).
  Result<RecoveryReport> RecoverFromCheckpointStore(
      const CheckpointStore& store, const std::string& wal_data,
      ThreadPool* pool = nullptr);

  // Merges every mergeable table's delta into its main, respecting the
  // oldest active snapshot. Returns total rows across new mains.
  size_t MergeAll();

  // Cost-based optimizer toggle (SQL: SET optimizer = on|off). Defaults
  // on; off restores the historical FROM-order planner byte for byte.
  bool optimizer_enabled() const {
    return optimizer_enabled_.load(std::memory_order_relaxed);
  }
  void set_optimizer_enabled(bool on) {
    optimizer_enabled_.store(on, std::memory_order_relaxed);
  }

  opt::PlanFeedback* plan_feedback() { return &feedback_; }

  // Materialized views: registry, incremental maintainer, and router.
  view::ViewManager* view_manager() { return &views_; }

  // Routing of queries onto materialized views (SQL: SET view_routing =
  // on|off). Only consulted when the optimizer is on.
  bool view_routing_enabled() const {
    return view_routing_.load(std::memory_order_relaxed);
  }
  void set_view_routing_enabled(bool on) {
    view_routing_.store(on, std::memory_order_relaxed);
  }

  // Session staleness bound in microseconds for routing onto DEFERRED
  // views (SQL: SET max_staleness = <us> | off). -1 = unbounded.
  int64_t max_staleness_us() const {
    return max_staleness_us_.load(std::memory_order_relaxed);
  }
  void set_max_staleness_us(int64_t us) {
    max_staleness_us_.store(us, std::memory_order_relaxed);
  }

  // Morsel-parallel execution. Queries parallelize only once a worker
  // pool is attached; the session knob (SQL: SET max_dop = <n> | auto)
  // picks the requested DOP, and a workload-manager grant may cap it
  // lower per query. 0 = auto: pool threads + the query thread.
  void set_exec_pool(ThreadPool* pool) {
    exec_pool_.store(pool, std::memory_order_relaxed);
  }
  ThreadPool* exec_pool() const {
    return exec_pool_.load(std::memory_order_relaxed);
  }
  void set_max_dop(size_t dop) {
    max_dop_.store(dop, std::memory_order_relaxed);
  }
  size_t max_dop() const {
    return max_dop_.load(std::memory_order_relaxed);
  }

 private:
  Result<QueryResult> ExecuteImpl(const std::string& sql,
                                  const QueryGrant* grant);
  Result<QueryResult> RunStatement(Transaction* txn, const sql::Statement& s,
                                   const QueryGrant* grant = nullptr);
  // CHECKPOINT: one synchronous round on the (lazily created) daemon.
  Result<QueryResult> RunCheckpoint();
  Result<QueryResult> RunSelect(Transaction* txn, const sql::SelectStmt& s,
                                bool explain, bool analyze,
                                const QueryGrant* grant = nullptr);
  // SHOW STATS: one row per metric from the global registry (histograms
  // expand to .count/.mean/.p50/.p95/.p99/.p999/.max rows), with storage
  // freshness gauges refreshed from this database's catalog first, plus
  // per-table optimizer-statistics freshness (stats.<table>.*).
  Result<QueryResult> RunShowStats();
  // ANALYZE [<table>]: collect optimizer statistics into the catalog.
  Result<QueryResult> RunAnalyze(Transaction* txn, const sql::AnalyzeStmt& s);
  Result<QueryResult> RunSet(const sql::SetStmt& s);
  Result<QueryResult> RunInsert(Transaction* txn, const sql::InsertStmt& s);
  Result<QueryResult> RunUpdate(Transaction* txn, const sql::UpdateStmt& s);
  Result<QueryResult> RunDelete(Transaction* txn, const sql::DeleteStmt& s);
  Result<QueryResult> RunCreate(const sql::CreateTableStmt& s);

  Catalog catalog_;
  TransactionManager txn_;
  std::atomic<bool> optimizer_enabled_{true};
  std::atomic<bool> view_routing_{true};
  std::atomic<int64_t> max_staleness_us_{-1};
  std::atomic<ThreadPool*> exec_pool_{nullptr};
  std::atomic<size_t> max_dop_{0};  // 0 = auto (pool threads + 1)
  opt::PlanFeedback feedback_;
  view::ViewManager views_{&catalog_, &txn_};
  // Declared after views_/txn_/catalog_: the daemon references all three,
  // so it must destroy (and join its thread) first.
  std::mutex checkpointer_mu_;
  std::unique_ptr<CheckpointDaemon> checkpointer_;
};

}  // namespace oltap

#endif  // OLTAP_SQL_SESSION_H_
