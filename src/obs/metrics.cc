#include "obs/metrics.h"

#include <bit>

namespace oltap {
namespace obs {

size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void Histogram::Record(uint64_t value) {
#ifndef OLTAP_OBS_DISABLED
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value &&
         !max_.compare_exchange_weak(prev, value,
                                     std::memory_order_relaxed)) {
  }
#else
  (void)value;
#endif
}

size_t Histogram::BucketOf(uint64_t v) {
  return static_cast<size_t>(std::bit_width(v));  // 0 for v == 0
}

uint64_t Histogram::BucketUpper(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~0ULL;
  return (1ULL << i) - 1;
}

HistogramSnapshot Histogram::Snapshot() const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  HistogramSnapshot s;
  s.count = total;
  if (total == 0) return s;
  s.max = max_.load(std::memory_order_relaxed);
  s.mean = static_cast<double>(sum_.load(std::memory_order_relaxed)) /
           static_cast<double>(total);
  auto percentile = [&](double q) -> uint64_t {
    // Rank of the q-quantile observation, then the upper edge of the
    // bucket containing it (clamped to the recorded max).
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen > rank) return std::min(BucketUpper(i), s.max);
    }
    return s.max;
  };
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  s.p999 = percentile(0.999);
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

namespace {

// Metrics that must appear in every export (SHOW STATS, bench JSON) even
// before the first event — the dashboard contract, not an allowlist:
// subsystems may register more at runtime.
void RegisterCoreMetrics(MetricsRegistry* r) {
  for (const char* name :
       {"txn.commits", "txn.aborts", "wal.records", "wal.bytes",
        "wal.batches", "wal.fsyncs",
        "mvcc.versions_installed", "mvcc.conflicts", "exec.queries",
        "exec.rows_out", "sharedscan.attached", "sharedscan.chunks",
        "merge.runs", "merge.tables_merged", "merge.rows_merged",
        "merge.bytes_merged", "wm.rejected_olap", "wm.expired_in_queue",
        "2pc.commits", "2pc.aborts", "2pc.prepare_retries",
        "2pc.finish_retries", "2pc.indecision_aborts", "net.messages",
        "net.bytes", "net.dropped", "net.duplicated", "net.retries",
        "raft.messages", "dist.breaker.trips", "dist.breaker.rejected",
        "dist.leader_failovers", "dist.read_failovers",
        "dist.write_quorum_failures", "sched.admitted", "sched.shed",
        "sched.degraded", "opt.plans", "opt.plans_optimized",
        "opt.analyze_runs", "opt.order_cache_hits",
        "opt.plan_invalidations", "opt.feedback_replans", "opt.path_row",
        "opt.path_column", "view.maintain_runs", "view.changes_applied",
        "view.rebuilds", "view.group_recomputes", "view.routed",
        "view.route_considered", "ckpt.written", "ckpt.failed",
        "ckpt.fallbacks", "wal.truncated_bytes"}) {
    r->GetCounter(name);
  }
  for (const char* name :
       {"wm.queue_depth.oltp", "wm.queue_depth.olap", "storage.delta_rows",
        "storage.freshness_lag_us", "dist.breaker_open", "wal.sealed",
        "wal.segments", "wal.retained_bytes", "ckpt.age_us",
        "ckpt.last_ts"}) {
    r->GetGauge(name);
  }
  for (const char* name :
       {"wal.append_ns", "wal.fsync_ns", "wal.batch_size",
        "wal.group_wait_us", "txn.commit_ns",
        "wm.latency_us.oltp", "wm.latency_us.olap", "opt.qerror_x100",
        "view.maintain_ns", "view.freshness_lag_us", "ckpt.duration_us"}) {
    r->GetHistogram(name);
  }
}

}  // namespace

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* instance = [] {
    auto* r = new MetricsRegistry();
    RegisterCoreMetrics(r);
    return r;
  }();
  return instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->Value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace oltap
