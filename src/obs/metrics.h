#ifndef OLTAP_OBS_METRICS_H_
#define OLTAP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace oltap {
namespace obs {

// Engine-wide metrics: cache-line-sharded lock-free counters, gauges, and
// log-bucketed latency histograms, collected in a named registry and
// exported as text/JSON (obs/exporter.h) or through SQL (`SHOW STATS`).
//
// Hot-path cost: one relaxed atomic add on a thread-private cache line
// (counters), or one relaxed add into a shared bucket (histograms). Call
// sites cache the metric pointer in a function-local static so the
// registry lock is paid once per site, not per event. Building with
// -DOLTAP_OBS_DISABLED compiles every mutation into a no-op (E14 measures
// the delta).

// Index of this thread's shard, stable for the thread's lifetime and
// shared across all sharded metrics.
size_t ThreadShardIndex();

inline constexpr size_t kCounterShards = 16;

// Monotonically increasing event count. Add() touches only the calling
// thread's shard line, so concurrent writers never bounce a cache line;
// Value() sums the shards (reads may race with writers — the total is a
// consistent-enough snapshot for monitoring, never torn).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
#ifndef OLTAP_OBS_DISABLED
    shards_[ThreadShardIndex() % kCounterShards].v.fetch_add(
        n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kCounterShards];
};

// Last-writer-wins instantaneous value (queue depths, delta sizes,
// freshness lag).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) {
#ifndef OLTAP_OBS_DISABLED
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void Add(int64_t d) {
#ifndef OLTAP_OBS_DISABLED
    v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Point-in-time view of a histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double mean = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
  uint64_t max = 0;
};

// Log-bucketed latency histogram: bucket i holds values whose bit width
// is i (i.e. [2^(i-1), 2^i)), so 64 buckets cover the full uint64 range
// with ~2x relative error — the standard trade every production latency
// tracker makes (HdrHistogram coarse mode, Prometheus log buckets).
// Record() is one relaxed fetch_add per of bucket/sum/count plus a CAS
// loop for the max; percentiles are reconstructed from bucket counts at
// snapshot time.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);

  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  static size_t BucketOf(uint64_t v);
  // Largest value bucket `i` can hold.
  static uint64_t BucketUpper(size_t i);

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// A full registry snapshot, sorted by metric name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

// Name -> metric registry. Get* registers on first use and returns a
// pointer that stays valid for the registry's lifetime, so hot paths do
//   static Counter* c = MetricsRegistry::Default()->GetCounter("x");
// and never touch the registry lock again.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every subsystem reports into. Its core
  // metric names are pre-registered so exports list them (at zero) even
  // before the first event.
  static MetricsRegistry* Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric (bench phase boundaries).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace oltap

#endif  // OLTAP_OBS_METRICS_H_
