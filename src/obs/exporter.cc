#include "obs/exporter.h"

#include <cstdio>

namespace oltap {
namespace obs {
namespace {

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

// Metric names are dot-separated identifiers, but escape defensively so
// the output is always valid JSON.
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string HistogramJson(const HistogramSnapshot& h) {
  std::string out = "{";
  out += "\"count\":" + std::to_string(h.count);
  out += ",\"mean\":" + FormatDouble(h.mean);
  out += ",\"p50\":" + std::to_string(h.p50);
  out += ",\"p95\":" + std::to_string(h.p95);
  out += ",\"p99\":" + std::to_string(h.p99);
  out += ",\"p999\":" + std::to_string(h.p999);
  out += ",\"max\":" + std::to_string(h.max);
  out += "}";
  return out;
}

}  // namespace

std::string RenderText(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    out += "counter " + name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    out += "gauge " + name + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out += "histogram " + name + " count=" + std::to_string(h.count) +
           " mean=" + FormatDouble(h.mean) + " p50=" + std::to_string(h.p50) +
           " p95=" + std::to_string(h.p95) + " p99=" + std::to_string(h.p99) +
           " p999=" + std::to_string(h.p999) + " max=" + std::to_string(h.max) +
           "\n";
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snap) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += JsonString(name) + ":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += JsonString(name) + ":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += JsonString(name) + ":" + HistogramJson(h);
  }
  out += "}}";
  return out;
}

std::string RenderText(const MetricsRegistry& registry) {
  return RenderText(registry.Snapshot());
}

std::string RenderJson(const MetricsRegistry& registry) {
  return RenderJson(registry.Snapshot());
}

}  // namespace obs
}  // namespace oltap
