#ifndef OLTAP_OBS_TRACE_H_
#define OLTAP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace oltap {
namespace obs {

// Monotonic nanoseconds, the time base for all spans and latency
// histograms.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// RAII span: measures the enclosing scope and adds the elapsed
// nanoseconds to a raw accumulator and/or a latency histogram. With
// OLTAP_OBS_DISABLED the constructor and destructor compile to nothing
// (not even a clock read).
class ScopedTimer {
 public:
  explicit ScopedTimer(uint64_t* sink_ns, Histogram* hist = nullptr)
#ifndef OLTAP_OBS_DISABLED
      : sink_(sink_ns), hist_(hist), start_(MonotonicNanos()) {
  }
#else
  {
    (void)sink_ns;
    (void)hist;
  }
#endif
  explicit ScopedTimer(Histogram* hist) : ScopedTimer(nullptr, hist) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
#ifndef OLTAP_OBS_DISABLED
    uint64_t elapsed = MonotonicNanos() - start_;
    if (sink_ != nullptr) *sink_ += elapsed;
    if (hist_ != nullptr) hist_->Record(elapsed);
#endif
  }

 private:
#ifndef OLTAP_OBS_DISABLED
  uint64_t* sink_;
  Histogram* hist_;
  uint64_t start_;
#endif
};

// Per-operator execution statistics, accumulated by the instrumented
// pull API (PhysicalOp::OpenTimed / NextBatchTimed). Times are
// *inclusive*: an operator's span covers its children's work too, the
// way EXPLAIN ANALYZE conventionally reports.
struct OpStats {
  uint64_t rows = 0;      // rows emitted
  uint64_t batches = 0;   // NextBatch calls that produced output
  uint64_t open_ns = 0;   // time inside Open (build/sort/materialize)
  uint64_t next_ns = 0;   // time inside all NextBatch calls

  uint64_t total_ns() const { return open_ns + next_ns; }
  void Reset() { *this = OpStats{}; }
};

// The profile of one executed query: the operator tree annotated with
// rows/batches/time per operator. Built from a finished physical plan
// (exec/executor.h: BuildQueryProfile) and rendered by EXPLAIN ANALYZE.
struct QueryProfile {
  struct Node {
    std::string name;  // operator self-description
    uint64_t rows = 0;
    uint64_t batches = 0;
    uint64_t time_ns = 0;  // inclusive
    // Planner row estimate for est-vs-actual reporting; < 0 = none.
    double est_rows = -1;
    std::vector<Node> children;
  };
  Node root;

  // Indented one-line-per-operator rendering:
  //   HashAgg(...) rows=5 batches=1 time=1.234ms
  std::string Render() const;
};

}  // namespace obs
}  // namespace oltap

#endif  // OLTAP_OBS_TRACE_H_
