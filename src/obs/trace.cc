#include "obs/trace.h"

#include <cstdio>

namespace oltap {
namespace obs {
namespace {

void RenderInto(const QueryProfile::Node& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.name);
  char buf[96];
  if (node.est_rows >= 0) {
    std::snprintf(buf, sizeof(buf), " est_rows=%.0f", node.est_rows);
    out->append(buf);
  }
  std::snprintf(buf, sizeof(buf),
                " rows=%llu batches=%llu time=%.3fms",
                static_cast<unsigned long long>(node.rows),
                static_cast<unsigned long long>(node.batches),
                static_cast<double>(node.time_ns) * 1e-6);
  out->append(buf);
  out->push_back('\n');
  for (const QueryProfile::Node& child : node.children) {
    RenderInto(child, depth + 1, out);
  }
}

}  // namespace

std::string QueryProfile::Render() const {
  std::string out;
  RenderInto(root, 0, &out);
  return out;
}

}  // namespace obs
}  // namespace oltap
