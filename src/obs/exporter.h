#ifndef OLTAP_OBS_EXPORTER_H_
#define OLTAP_OBS_EXPORTER_H_

#include <string>

#include "obs/metrics.h"

namespace oltap {
namespace obs {

// One metric per line, sorted by name:
//   counter wal.records 12
//   gauge wm.queue_depth.oltp 0
//   histogram wal.append_ns count=12 mean=830.1 p50=511 p95=2047 ...
std::string RenderText(const MetricsSnapshot& snap);

// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":...}}}
std::string RenderJson(const MetricsSnapshot& snap);

// Convenience overloads snapshotting the registry first.
std::string RenderText(const MetricsRegistry& registry);
std::string RenderJson(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace oltap

#endif  // OLTAP_OBS_EXPORTER_H_
