#ifndef OLTAP_STORAGE_ZONE_MAP_H_
#define OLTAP_STORAGE_ZONE_MAP_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "storage/bitpack.h"

namespace oltap {

// In-memory storage index (Oracle Database In-Memory's term) / zone map:
// per-block min/max over a column segment, letting scans skip blocks that
// cannot satisfy a predicate. Works on raw int64 values or on dictionary
// codes (order-preserving encodings keep min/max meaningful).
class ZoneMap {
 public:
  static constexpr size_t kDefaultZoneRows = 1024;

  ZoneMap() = default;

  // Builds zones over `values`; entries where `nulls` is set are ignored.
  static ZoneMap Build(const std::vector<int64_t>& values,
                       const BitVector* nulls,
                       size_t zone_rows = kDefaultZoneRows);
  static ZoneMap BuildFromCodes(const std::vector<uint32_t>& codes,
                                const BitVector* nulls,
                                size_t zone_rows = kDefaultZoneRows);
  static ZoneMap BuildFromDoubles(const std::vector<double>& values,
                                  const BitVector* nulls,
                                  size_t zone_rows = kDefaultZoneRows);

  size_t num_zones() const { return zones_.size(); }
  size_t zone_rows() const { return zone_rows_; }

  // True if zone `z` could contain a row satisfying `v <op> constant`
  // (constant in the same domain the map was built over; doubles compare
  // against the stored double bounds).
  bool ZoneMayMatch(size_t z, CompareOp op, double constant) const;

  // True if at least one zone may match (whole-segment pruning).
  bool AnyZoneMayMatch(CompareOp op, double constant) const;

  // Min/max across all zones; false if the segment is all-null/empty.
  bool GlobalBounds(double* min, double* max) const;

  // Bounds of one zone; false if the zone holds only NULLs.
  bool ZoneBounds(size_t z, double* min, double* max) const {
    const Zone& zone = zones_[z];
    if (!zone.has_value) return false;
    *min = zone.min;
    *max = zone.max;
    return true;
  }

 private:
  struct Zone {
    double min = 0;
    double max = 0;
    bool has_value = false;
  };

  template <typename T>
  static ZoneMap BuildImpl(const std::vector<T>& values,
                           const BitVector* nulls, size_t zone_rows);

  std::vector<Zone> zones_;
  size_t zone_rows_ = kDefaultZoneRows;
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_ZONE_MAP_H_
