#include "storage/freshness.h"

#include <algorithm>

#include "storage/catalog.h"
#include "storage/table.h"

namespace oltap {

FreshnessSummary ProbeFreshness(const Catalog& catalog, int64_t now_us) {
  FreshnessSummary out;
  for (Table* table : catalog.AllTables()) {
    ColumnTable* ct = table->column_table();
    if (ct == nullptr) continue;
    out.delta_rows += static_cast<int64_t>(ct->delta_size());
    out.max_lag_us = std::max(out.max_lag_us, ct->DeltaAgeMicros(now_us));
  }
  return out;
}

}  // namespace oltap
