#include "storage/table.h"

#include <algorithm>

#include "common/clock.h"
#include "common/logging.h"

namespace oltap {

const char* TableFormatToString(TableFormat f) {
  switch (f) {
    case TableFormat::kRow:
      return "ROW";
    case TableFormat::kColumn:
      return "COLUMN";
    case TableFormat::kDual:
      return "DUAL";
  }
  return "?";
}

Table::Table(std::string name, Schema schema, TableFormat format)
    : name_(std::move(name)), schema_(std::move(schema)), format_(format) {
  switch (format_) {
    case TableFormat::kRow:
      row_ = std::make_unique<RowTable>(schema_);
      break;
    case TableFormat::kColumn:
      column_ = std::make_unique<ColumnTable>(schema_);
      break;
    case TableFormat::kDual:
      dual_ = std::make_unique<DualTable>(schema_);
      break;
  }
}

Status Table::InsertCommitted(const Row& row, Timestamp ts) {
  Status s = Status::Internal("bad format");
  switch (format_) {
    case TableFormat::kRow:
      s = row_->InsertCommitted(row, ts);
      break;
    case TableFormat::kColumn:
      s = column_->InsertCommitted(row, ts);
      break;
    case TableFormat::kDual:
      s = dual_->InsertCommitted(row, ts);
      break;
  }
  if (s.ok()) {
    mod_count_.fetch_add(1, std::memory_order_relaxed);
    if (ChangeLog* log = change_log()) {
      log->Append({ChangeLog::Kind::kInsert, row, ts,
                   SystemClock::Get()->NowMicros()});
    }
  }
  return s;
}

Status Table::DeleteCommitted(std::string_view key, Timestamp ts) {
  // Pre-image for the change log, captured before the engine applies the
  // delete (the delta-aggregate paths need the deleted row's values).
  Row pre;
  bool have_pre = false;
  ChangeLog* log = change_log();
  if (log != nullptr) have_pre = Lookup(key, ts, &pre);
  Status s = Status::Internal("bad format");
  switch (format_) {
    case TableFormat::kRow:
      s = row_->DeleteCommitted(key, ts);
      break;
    case TableFormat::kColumn:
      s = column_->DeleteCommitted(key, ts);
      break;
    case TableFormat::kDual:
      s = dual_->DeleteCommitted(key, ts);
      break;
  }
  if (s.ok()) {
    mod_count_.fetch_add(1, std::memory_order_relaxed);
    if (log != nullptr && have_pre) {
      log->Append({ChangeLog::Kind::kDelete, std::move(pre), ts,
                   SystemClock::Get()->NowMicros()});
    }
  }
  return s;
}

Status Table::UpdateCommitted(std::string_view key, const Row& new_row,
                              Timestamp ts) {
  Row pre;
  bool have_pre = false;
  ChangeLog* log = change_log();
  if (log != nullptr) have_pre = Lookup(key, ts, &pre);
  Status s = Status::Internal("bad format");
  switch (format_) {
    case TableFormat::kRow:
      s = row_->UpdateCommitted(key, new_row, ts);
      break;
    case TableFormat::kColumn:
      s = column_->UpdateCommitted(key, new_row, ts);
      break;
    case TableFormat::kDual:
      s = dual_->UpdateCommitted(key, new_row, ts);
      break;
  }
  if (s.ok()) {
    mod_count_.fetch_add(1, std::memory_order_relaxed);
    if (log != nullptr) {
      // Update = delete(pre-image) + insert(new), same commit ts; the
      // delete is appended first so replay order matches apply order.
      int64_t now = SystemClock::Get()->NowMicros();
      if (have_pre) {
        log->Append({ChangeLog::Kind::kDelete, std::move(pre), ts, now});
      }
      log->Append({ChangeLog::Kind::kInsert, new_row, ts, now});
    }
  }
  return s;
}

bool Table::Lookup(std::string_view key, Timestamp read_ts, Row* out) const {
  switch (format_) {
    case TableFormat::kRow:
      return row_->Lookup(key, read_ts, out);
    case TableFormat::kColumn:
      return column_->Lookup(key, read_ts, out);
    case TableFormat::kDual:
      return dual_->Lookup(key, read_ts, out);
  }
  return false;
}

Timestamp Table::LastWriteTs(std::string_view key) const {
  switch (format_) {
    case TableFormat::kRow:
      return row_->LastWriteTs(key);
    case TableFormat::kColumn:
      return column_->LastWriteTs(key);
    case TableFormat::kDual:
      return dual_->LastWriteTs(key);
  }
  return 0;
}

void Table::ScanVisible(Timestamp read_ts,
                        const std::function<void(const Row&)>& fn) const {
  if (format_ == TableFormat::kRow) {
    row_->ScanVisible(read_ts, fn);
    return;
  }
  std::optional<ColumnTable::Snapshot> snap = GetColumnSnapshot(read_ts);
  OLTAP_DCHECK(snap.has_value());
  const MainFragment& main = *snap->main;
  BitVector visible;
  main.VisibleMask(read_ts, &visible);
  for (size_t r = visible.FindNextSet(0); r < visible.size();
       r = visible.FindNextSet(r + 1)) {
    fn(main.GetRow(static_cast<RowId>(r)));
  }
  if (snap->frozen != nullptr) {
    snap->frozen->ForEachVisible(
        read_ts, [&](uint32_t, const Row& row) { fn(row); });
  }
  snap->delta->ForEachVisible(read_ts,
                              [&](uint32_t, const Row& row) { fn(row); });
}

size_t Table::ScanRange(std::string_view start_key, size_t limit,
                        Timestamp read_ts,
                        const std::function<void(const Row&)>& fn) const {
  const RowTable* rows = row_table();
  if (rows != nullptr) {
    return rows->ScanRange(start_key, limit, read_ts, fn);
  }
  // Columnar-only: collect matching keys via a full visible scan, then
  // emit the first `limit` in key order (the cost E4 quantifies).
  std::vector<std::pair<std::string, Row>> matches;
  ScanVisible(read_ts, [&](const Row& row) {
    std::string key = EncodeKey(schema_, row);
    if (key >= start_key) matches.emplace_back(std::move(key), row);
  });
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t n = std::min(limit, matches.size());
  for (size_t i = 0; i < n; ++i) fn(matches[i].second);
  return n;
}

std::optional<ColumnTable::Snapshot> Table::GetColumnSnapshot(
    Timestamp read_ts) const {
  switch (format_) {
    case TableFormat::kRow:
      return std::nullopt;
    case TableFormat::kColumn:
      return column_->GetSnapshot(read_ts);
    case TableFormat::kDual:
      return dual_->GetColumnSnapshot(read_ts);
  }
  return std::nullopt;
}

size_t Table::MergeDelta(Timestamp merge_ts, Timestamp gc_horizon) {
  switch (format_) {
    case TableFormat::kRow:
      return 0;
    case TableFormat::kColumn:
      return column_->MergeDelta(merge_ts, gc_horizon);
    case TableFormat::kDual:
      return dual_->MergeDelta(merge_ts, gc_horizon);
  }
  return 0;
}

size_t Table::CountVisible(Timestamp read_ts) const {
  size_t n = 0;
  ScanVisible(read_ts, [&n](const Row&) { ++n; });
  return n;
}

Status Table::BulkLoadToMain(const std::vector<Row>& rows, Timestamp ts) {
  ColumnTable* ct = column_table();
  if (ct == nullptr) {
    return Status::FailedPrecondition("BulkLoadToMain requires a column side");
  }
  if (format_ == TableFormat::kDual) {
    // Keep the mirrors consistent: load the row side too.
    for (const Row& r : rows) {
      OLTAP_RETURN_NOT_OK(dual_->row_side()->InsertCommitted(r, ts));
    }
  }
  Status s = ct->BulkLoadToMain(rows, ts);
  if (s.ok()) mod_count_.fetch_add(rows.size(), std::memory_order_relaxed);
  return s;
}

size_t Table::ApproxRowCount() const {
  const RowTable* rt = row_table();
  if (rt != nullptr) return rt->num_keys();
  const ColumnTable* ct = column_table();
  if (ct != nullptr) return ct->main_size() + ct->delta_size();
  return 0;
}

ChangeLog* Table::EnsureChangeLog() {
  ChangeLog* log = change_log_ptr_.load(std::memory_order_acquire);
  if (log != nullptr) return log;
  std::lock_guard<std::mutex> lock(change_log_init_mu_);
  if (change_log_holder_ == nullptr) {
    change_log_holder_ = std::make_unique<ChangeLog>();
    change_log_ptr_.store(change_log_holder_.get(),
                          std::memory_order_release);
  }
  return change_log_holder_.get();
}

RowTable* Table::row_table() {
  if (format_ == TableFormat::kRow) return row_.get();
  if (format_ == TableFormat::kDual) return dual_->row_side();
  return nullptr;
}
const RowTable* Table::row_table() const {
  return const_cast<Table*>(this)->row_table();
}

ColumnTable* Table::column_table() {
  if (format_ == TableFormat::kColumn) return column_.get();
  if (format_ == TableFormat::kDual) return dual_->column_side();
  return nullptr;
}
const ColumnTable* Table::column_table() const {
  return const_cast<Table*>(this)->column_table();
}

}  // namespace oltap
