#include "storage/dual_table.h"

#include <algorithm>

#include "common/logging.h"

namespace oltap {

RowTable::RowTable(Schema schema) : store_(std::move(schema)) {}

std::string RowTable::KeyFor(const Row& row) {
  const Schema& s = store_.schema();
  if (s.HasKey()) return EncodeKey(s, row);
  // Keyless tables get a monotone internal key: append-only semantics.
  uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::string key(8, '\0');
  for (int i = 0; i < 8; ++i) {
    key[i] = static_cast<char>((seq >> (56 - 8 * i)) & 0xff);
  }
  return key;
}

Status RowTable::InsertCommitted(const Row& row, Timestamp ts) {
  if (row.size() != store_.schema().num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  std::string key = KeyFor(row);
  RowStore::Entry* entry = store_.GetOrCreate(key);
  while (true) {
    RowVersion* head = entry->head.load(std::memory_order_acquire);
    if (head != nullptr && VersionVisible(*head, ts, /*self_txn_id=*/0)) {
      return Status::AlreadyExists("duplicate primary key");
    }
    auto* v = new RowVersion(row);
    v->begin.store(ts, std::memory_order_relaxed);
    if (RowStore::InstallVersion(entry, head, v)) return Status::OK();
    delete v;  // concurrent install won the race; re-examine
  }
}

Status RowTable::DeleteCommitted(std::string_view key, Timestamp ts) {
  RowStore::Entry* entry = store_.Get(key);
  if (entry == nullptr) return Status::NotFound("key not found");
  RowVersion* head = entry->head.load(std::memory_order_acquire);
  if (head == nullptr || !VersionVisible(*head, ts, 0)) {
    return Status::NotFound("key not live");
  }
  Timestamp expected = kMaxTimestamp;
  if (!head->end.compare_exchange_strong(expected, ts,
                                         std::memory_order_acq_rel)) {
    return Status::Aborted("concurrent write to key");
  }
  return Status::OK();
}

Status RowTable::UpdateCommitted(std::string_view key, const Row& new_row,
                                 Timestamp ts) {
  RowStore::Entry* entry = store_.Get(key);
  if (entry == nullptr) return Status::NotFound("key not found");
  RowVersion* head = entry->head.load(std::memory_order_acquire);
  if (head == nullptr || !VersionVisible(*head, ts, 0)) {
    return Status::NotFound("key not live");
  }
  Timestamp expected = kMaxTimestamp;
  if (!head->end.compare_exchange_strong(expected, ts,
                                         std::memory_order_acq_rel)) {
    return Status::Aborted("concurrent write to key");
  }
  auto* v = new RowVersion(new_row);
  v->begin.store(ts, std::memory_order_relaxed);
  if (!RowStore::InstallVersion(entry, head, v)) {
    // Another committed writer should be impossible once we closed `head`,
    // but stay safe: undo is not possible, so surface corruption loudly.
    delete v;
    return Status::Internal("version chain raced after delete stamp");
  }
  return Status::OK();
}

bool RowTable::Lookup(std::string_view key, Timestamp read_ts,
                      Row* out) const {
  const RowStore::Entry* entry = store_.Get(key);
  if (entry == nullptr) return false;
  for (const RowVersion* v = entry->head.load(std::memory_order_acquire);
       v != nullptr; v = v->next) {
    if (VersionVisible(*v, read_ts, 0)) {
      *out = v->data;
      return true;
    }
  }
  return false;
}

Timestamp RowTable::LastWriteTs(std::string_view key) const {
  const RowStore::Entry* entry = store_.Get(key);
  if (entry == nullptr) return 0;
  const RowVersion* head = entry->head.load(std::memory_order_acquire);
  if (head == nullptr) return 0;
  Timestamp begin = head->begin.load(std::memory_order_acquire);
  Timestamp end = head->end.load(std::memory_order_acquire);
  Timestamp last = IsTxnId(begin) ? 0 : begin;
  if (!IsTxnId(end) && end != kMaxTimestamp) last = std::max(last, end);
  return last;
}

void RowTable::ScanVisible(Timestamp read_ts,
                           const std::function<void(const Row&)>& fn) const {
  RowStore::Iterator it(&store_);
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    for (const RowVersion* v =
             it.entry()->head.load(std::memory_order_acquire);
         v != nullptr; v = v->next) {
      if (VersionVisible(*v, read_ts, 0)) {
        fn(v->data);
        break;
      }
    }
  }
}

size_t RowTable::ScanRange(std::string_view start_key, size_t limit,
                           Timestamp read_ts,
                           const std::function<void(const Row&)>& fn) const {
  RowStore::Iterator it(&store_);
  size_t visited = 0;
  for (it.Seek(start_key); it.Valid() && visited < limit; it.Next()) {
    for (const RowVersion* v =
             it.entry()->head.load(std::memory_order_acquire);
         v != nullptr; v = v->next) {
      if (VersionVisible(*v, read_ts, 0)) {
        fn(v->data);
        ++visited;
        break;
      }
    }
  }
  return visited;
}

DualTable::DualTable(Schema schema) : row_(schema), column_(schema) {}

Status DualTable::InsertCommitted(const Row& row, Timestamp ts) {
  OLTAP_RETURN_NOT_OK(row_.InsertCommitted(row, ts));
  Status col = column_.InsertCommitted(row, ts);
  // The mirrors run identical checks against identical state; divergence
  // would mean the formats are out of sync, which must never happen.
  OLTAP_CHECK(col.ok()) << "dual-format divergence: " << col.ToString();
  return Status::OK();
}

Status DualTable::DeleteCommitted(std::string_view key, Timestamp ts) {
  OLTAP_RETURN_NOT_OK(row_.DeleteCommitted(key, ts));
  Status col = column_.DeleteCommitted(key, ts);
  OLTAP_CHECK(col.ok()) << "dual-format divergence: " << col.ToString();
  return Status::OK();
}

Status DualTable::UpdateCommitted(std::string_view key, const Row& new_row,
                                  Timestamp ts) {
  OLTAP_RETURN_NOT_OK(row_.UpdateCommitted(key, new_row, ts));
  Status col = column_.UpdateCommitted(key, new_row, ts);
  OLTAP_CHECK(col.ok()) << "dual-format divergence: " << col.ToString();
  return Status::OK();
}

}  // namespace oltap
