#include "storage/value.h"

#include "common/logging.h"

namespace oltap {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  if (null_ || other.null_) {
    if (null_ && other.null_) return 0;
    return null_ ? -1 : 1;
  }
  if (type_ == ValueType::kString || other.type_ == ValueType::kString) {
    OLTAP_DCHECK(type_ == ValueType::kString &&
                 other.type_ == ValueType::kString)
        << "comparing string to numeric";
    return str_.compare(other.str_) < 0   ? -1
           : str_.compare(other.str_) > 0 ? 1
                                          : 0;
  }
  if (type_ == ValueType::kInt64 && other.type_ == ValueType::kInt64) {
    return i64_ < other.i64_ ? -1 : i64_ > other.i64_ ? 1 : 0;
  }
  double a = AsDouble();
  double b = other.AsDouble();
  return a < b ? -1 : a > b ? 1 : 0;
}

uint64_t Value::Hash() const {
  if (null_) return 0x9ae16a3b2f90404fULL;
  switch (type_) {
    case ValueType::kInt64:
      return HashInt64(i64_);
    case ValueType::kDouble:
      return HashDouble(f64_);
    case ValueType::kString:
      return HashString(str_);
  }
  return 0;
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case ValueType::kInt64:
      return std::to_string(i64_);
    case ValueType::kDouble: {
      std::string s = std::to_string(f64_);
      return s;
    }
    case ValueType::kString:
      return str_;
  }
  return "?";
}

}  // namespace oltap
