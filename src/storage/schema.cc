#include "storage/schema.h"

#include "common/logging.h"

namespace oltap {

Schema::Schema(std::vector<ColumnDef> columns, std::vector<int> key_columns)
    : columns_(std::move(columns)), key_columns_(std::move(key_columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    auto [it, inserted] =
        by_name_.emplace(columns_[i].name, static_cast<int>(i));
    OLTAP_CHECK(inserted) << "duplicate column name: " << columns_[i].name;
  }
  for (int k : key_columns_) {
    OLTAP_CHECK(k >= 0 && static_cast<size_t>(k) < columns_.size());
  }
}

int Schema::FindColumn(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeToString(columns_[i].type);
    if (!columns_[i].nullable) out += " NOT NULL";
  }
  out += ")";
  return out;
}

SchemaBuilder& SchemaBuilder::SetKey(const std::vector<std::string>& names) {
  key_.clear();
  for (const std::string& n : names) {
    int idx = -1;
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (cols_[i].name == n) idx = static_cast<int>(i);
    }
    OLTAP_CHECK(idx >= 0) << "key column not found: " << n;
    key_.push_back(idx);
  }
  return *this;
}

}  // namespace oltap
