#include "storage/dictionary.h"

#include <algorithm>

#include "common/logging.h"

namespace oltap {

Dictionary Dictionary::FromSortedDistinct(
    std::vector<std::string> distinct_sorted) {
#ifndef NDEBUG
  for (size_t i = 1; i < distinct_sorted.size(); ++i) {
    OLTAP_DCHECK(distinct_sorted[i - 1] < distinct_sorted[i])
        << "dictionary input not sorted/distinct";
  }
#endif
  Dictionary d;
  d.values_ = std::move(distinct_sorted);
  return d;
}

Dictionary Dictionary::Build(const std::vector<std::string>& values) {
  std::vector<std::string> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return FromSortedDistinct(std::move(sorted));
}

int64_t Dictionary::Encode(std::string_view s) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), s);
  if (it == values_.end() || *it != s) return -1;
  return it - values_.begin();
}

uint32_t Dictionary::LowerBound(std::string_view s) const {
  auto it = std::lower_bound(values_.begin(), values_.end(), s);
  return static_cast<uint32_t>(it - values_.begin());
}

uint32_t Dictionary::UpperBound(std::string_view s) const {
  auto it = std::upper_bound(
      values_.begin(), values_.end(), s,
      [](std::string_view a, const std::string& b) { return a < b; });
  return static_cast<uint32_t>(it - values_.begin());
}

size_t Dictionary::MemoryBytes() const {
  size_t total = values_.capacity() * sizeof(std::string);
  for (const std::string& v : values_) total += v.capacity();
  return total;
}

}  // namespace oltap
