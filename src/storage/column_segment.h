#ifndef OLTAP_STORAGE_COLUMN_SEGMENT_H_
#define OLTAP_STORAGE_COLUMN_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitvector.h"
#include "storage/bitpack.h"
#include "storage/dictionary.h"
#include "storage/value.h"
#include "storage/zone_map.h"

namespace oltap {

// Immutable, read-optimized storage for one column of a columnar main
// fragment. Built once (bulk load or merge), then scanned concurrently
// without synchronization.
//
// Encodings, per the surveyed systems (compression trades bits for
// chronons [15]):
//  - INT64: run-length encoding when runs are long (clustered/sorted
//    data); else frame-of-reference — codes = value - min, bit-packed —
//    when the value range fits 31 bits; raw array otherwise.
//  - STRING: order-preserving dictionary + bit-packed codes (HANA/BLU).
//  - DOUBLE: raw array (floats are scanned scalar, as in practice).
// Every segment carries a null bitmap (if any nulls) and a zone map.
class ColumnSegment {
 public:
  enum class Encoding : uint8_t { kRaw, kPacked, kRle, kDictionary };

  ColumnSegment() = default;

  static ColumnSegment BuildInt64(const std::vector<int64_t>& values,
                                  const BitVector* nulls = nullptr);
  // As BuildInt64 but never chooses RLE (benchmark ablations).
  static ColumnSegment BuildInt64NoRle(const std::vector<int64_t>& values,
                                       const BitVector* nulls = nullptr);
  static ColumnSegment BuildDouble(const std::vector<double>& values,
                                   const BitVector* nulls = nullptr);
  static ColumnSegment BuildString(const std::vector<std::string>& values,
                                   const BitVector* nulls = nullptr);
  // Dispatches on type; `values[i]` must match `type` or be NULL.
  static ColumnSegment Build(ValueType type, const std::vector<Value>& values);

  ValueType type() const { return type_; }
  size_t size() const { return size_; }
  bool has_nulls() const { return has_nulls_; }
  bool IsNull(size_t i) const { return has_nulls_ && nulls_.Get(i); }

  // Point accessors (OLTP-style tuple reconstruction). Callers must check
  // IsNull first; values for null slots are unspecified.
  int64_t GetInt64(size_t i) const;
  double GetDouble(size_t i) const;
  std::string_view GetString(size_t i) const;
  Value GetValue(size_t i) const;

  // Evaluates `column <op> constant` over the whole segment into a
  // selection bitvector (one bit per row; NULL rows never match). Uses the
  // dictionary / frame-of-reference rewrite plus the SWAR packed kernel
  // when the encoding allows, scalar otherwise.
  void ScanCompare(CompareOp op, const Value& constant, BitVector* out) const;

  // Zone-pruned variant: the in-memory storage index in action. Consults
  // the zone map and runs the packed kernel only over zones that may
  // match; on data with any clustering this skips most of the segment.
  // Output is identical to ScanCompare. Falls back to the full scan for
  // encodings without a code-space rewrite (raw int64, double).
  // `zones_pruned`, if given, receives the number of skipped zones.
  void ScanCompareZoned(CompareOp op, const Value& constant, BitVector* out,
                        size_t* zones_pruned = nullptr) const;

  // Bulk decode of int64/double content into `out[i]` for selected rows;
  // used by vectorized aggregation. `sel` may be null (all rows).
  void GatherDoubles(const BitVector* sel, std::vector<double>* out,
                     std::vector<uint32_t>* row_ids) const;

  const ZoneMap& zone_map() const { return zone_map_; }
  // Dictionary for string segments, nullptr otherwise.
  const Dictionary* dictionary() const { return dict_.get(); }
  // True if the int64 segment is bit-packed (frame-of-reference).
  bool int64_packed() const { return int64_packed_; }
  Encoding encoding() const;
  // Number of runs in an RLE segment (tests/ablation diagnostics).
  size_t num_runs() const { return rle_values_.size(); }

  size_t MemoryBytes() const;

 private:
  static ColumnSegment BuildInt64Impl(const std::vector<int64_t>& values,
                                      const BitVector* nulls, bool allow_rle);

  void ScanInt64(CompareOp op, int64_t constant, BitVector* out) const;
  void ScanDouble(CompareOp op, double constant, BitVector* out) const;
  void ScanString(CompareOp op, std::string_view constant,
                  BitVector* out) const;
  // Clears bits of null rows in `out`.
  void ApplyNullMask(BitVector* out) const;
  // Fills `out` with all non-null rows set.
  void AllNonNull(BitVector* out) const;

  ValueType type_ = ValueType::kInt64;
  size_t size_ = 0;
  bool has_nulls_ = false;
  BitVector nulls_;

  // INT64 encodings.
  bool int64_packed_ = false;
  bool int64_rle_ = false;
  int64_t for_base_ = 0;  // frame-of-reference base (minimum value)
  PackedArray packed_;    // also holds string dictionary codes
  std::vector<int64_t> raw_i64_;
  // RLE: run r covers rows [rle_starts_[r], rle_starts_[r+1]) with value
  // rle_values_[r]; rle_starts_ has a trailing sentinel == size().
  std::vector<int64_t> rle_values_;
  std::vector<uint32_t> rle_starts_;

  // DOUBLE.
  std::vector<double> raw_f64_;

  // STRING.
  std::shared_ptr<Dictionary> dict_;

  ZoneMap zone_map_;
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_COLUMN_SEGMENT_H_
