#include "storage/row_store.h"

#include <cstdlib>
#include <new>

#include "common/hash.h"
#include "common/logging.h"

namespace oltap {

RowStore::RowStore(Schema schema) : schema_(std::move(schema)) {
  head_ = NewEntry("", kMaxHeight);
}

RowStore::~RowStore() {
  Entry* node = head_;
  while (node != nullptr) {
    Entry* next = node->next[0].load(std::memory_order_relaxed);
    // Free the version chain.
    RowVersion* v = node->head.load(std::memory_order_relaxed);
    while (v != nullptr) {
      RowVersion* older = v->next;
      delete v;
      v = older;
    }
    node->~Entry();
    // Destroy the tail of the tower (placement-constructed in NewEntry).
    std::free(node);
    node = next;
  }
}

RowStore::Entry* RowStore::NewEntry(std::string_view key, int height) {
  size_t size =
      sizeof(Entry) + sizeof(std::atomic<Entry*>) * (height - 1);
  void* mem = std::malloc(size);
  OLTAP_CHECK(mem != nullptr);
  Entry* e = new (mem) Entry();
  e->key.assign(key.data(), key.size());
  e->height = height;
  for (int i = 1; i < height; ++i) {
    new (&e->next[i]) std::atomic<Entry*>(nullptr);
  }
  return e;
}

int RowStore::RandomHeight() {
  uint64_t seed =
      height_seed_.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
  uint64_t r = Mix64(seed);
  int height = 1;
  // p = 1/4 per level.
  while (height < kMaxHeight && (r & 3) == 0) {
    ++height;
    r >>= 2;
  }
  return height;
}

RowStore::Entry* RowStore::FindGreaterOrEqual(std::string_view target,
                                              Entry** prev) const {
  Entry* x = head_;
  int level = max_height_.load(std::memory_order_relaxed) - 1;
  while (true) {
    Entry* next = x->next[level].load(std::memory_order_acquire);
    if (next != nullptr && next->key < target) {
      x = next;
    } else {
      if (prev != nullptr) prev[level] = x;
      if (level == 0) return next;
      --level;
    }
  }
}

RowStore::Entry* RowStore::Get(std::string_view key) const {
  Entry* node = FindGreaterOrEqual(key, nullptr);
  if (node != nullptr && node->key == key) return node;
  return nullptr;
}

RowStore::Entry* RowStore::GetOrCreate(std::string_view key) {
  Entry* prev[kMaxHeight];
  while (true) {
    Entry* node = FindGreaterOrEqual(key, prev);
    if (node != nullptr && node->key == key) return node;

    int height = RandomHeight();
    int cur_max = max_height_.load(std::memory_order_relaxed);
    if (height > cur_max) {
      // Raise the list height; racing raises are harmless (CAS keeps max).
      for (int h = cur_max; h < height; ++h) prev[h] = head_;
      while (cur_max < height &&
             !max_height_.compare_exchange_weak(cur_max, height,
                                                std::memory_order_relaxed)) {
      }
    }

    Entry* e = NewEntry(key, height);
    // Link bottom-up; a level-0 failure means a racing insert of (possibly)
    // the same key, so restart from the search. The successor load must be
    // acquire: the ordering recheck below reads expected->key, which is
    // only safe against a concurrently *published* entry if this load
    // synchronizes with the publisher's release CAS.
    e->next[0].store(prev[0]->next[0].load(std::memory_order_acquire),
                     std::memory_order_relaxed);
    Entry* expected = e->next[0].load(std::memory_order_relaxed);
    // Recheck ordering: a racing insert may have placed a node between
    // prev[0] and its successor — including one with *this* key (<=, not
    // <: linking in front of a racing equal node would duplicate it; the
    // retry's search returns the existing entry instead).
    if ((expected != nullptr && expected->key <= key) ||
        !prev[0]->next[0].compare_exchange_strong(
            expected, e, std::memory_order_release)) {
      e->~Entry();
      std::free(e);
      continue;  // retry from scratch
    }
    num_entries_.fetch_add(1, std::memory_order_relaxed);

    for (int level = 1; level < height; ++level) {
      while (true) {
        Entry* p = prev[level];
        Entry* succ = p->next[level].load(std::memory_order_acquire);
        // Skip forward if new nodes were linked at this level meanwhile.
        while (succ != nullptr && succ->key < e->key) {
          p = succ;
          succ = p->next[level].load(std::memory_order_acquire);
        }
        if (succ == e) break;  // someone already linked us? impossible; safe.
        e->next[level].store(succ, std::memory_order_relaxed);
        if (p->next[level].compare_exchange_strong(
                succ, e, std::memory_order_release)) {
          break;
        }
      }
    }
    return e;
  }
}

bool RowStore::InstallVersion(Entry* entry, RowVersion* expected_head,
                              RowVersion* v) {
  v->next = expected_head;
  return entry->head.compare_exchange_strong(expected_head, v,
                                             std::memory_order_acq_rel);
}

RowStore::Iterator::Iterator(const RowStore* store) : store_(store) {}

void RowStore::Iterator::Seek(std::string_view target) {
  node_ = store_->FindGreaterOrEqual(target, nullptr);
}

void RowStore::Iterator::SeekToFirst() {
  node_ = store_->head_->next[0].load(std::memory_order_acquire);
}

void RowStore::Iterator::Next() {
  OLTAP_DCHECK(Valid());
  node_ = node_->next[0].load(std::memory_order_acquire);
}

}  // namespace oltap
