#ifndef OLTAP_STORAGE_ROW_STORE_H_
#define OLTAP_STORAGE_ROW_STORE_H_

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

#include "storage/row.h"
#include "storage/schema.h"

namespace oltap {

// In-memory row store keyed on the encoded primary key, backed by a
// lock-free skip list (the MemSQL design [26]): readers never take latches,
// writers insert towers with per-level CAS. Each entry anchors an MVCC
// version chain (newest first); transaction policy (who may install or
// finalize versions) lives in txn/, this class provides the mechanisms.
//
// Entries are never physically removed while the store is alive — deletes
// are logical (version end timestamps), matching the multi-version designs
// surveyed (DB2 BLU "deletes are logical operations"). All memory is
// reclaimed on destruction.
class RowStore {
 public:
  // Skip-list node. Public so scans and the transaction manager can walk
  // chains without an extra indirection.
  struct Entry {
    std::string key;
    std::atomic<RowVersion*> head{nullptr};
    int height = 1;
    // Tower of forward pointers; allocated inline after the struct.
    std::atomic<Entry*> next[1];
  };

  explicit RowStore(Schema schema);
  ~RowStore();

  RowStore(const RowStore&) = delete;
  RowStore& operator=(const RowStore&) = delete;

  const Schema& schema() const { return schema_; }

  // Returns the entry for `key`, inserting an empty one if absent.
  // Lock-free; safe from any number of threads.
  Entry* GetOrCreate(std::string_view key);

  // Returns the entry for `key` or nullptr. Wait-free readers.
  Entry* Get(std::string_view key) const;

  // Atomically pushes `v` as the new chain head if the current head is
  // `expected_head`; on success v->next == expected_head. Returns false on
  // a concurrent install (caller re-reads the head and decides: write-write
  // conflict in MVCC terms).
  static bool InstallVersion(Entry* entry, RowVersion* expected_head,
                             RowVersion* v);

  // Number of distinct keys ever inserted.
  size_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

  // Ordered forward iterator over entries (key order). Safe concurrently
  // with inserts; may or may not observe entries inserted while iterating.
  class Iterator {
   public:
    explicit Iterator(const RowStore* store);

    bool Valid() const { return node_ != nullptr; }
    // Positions at the first entry with key >= target.
    void Seek(std::string_view target);
    void SeekToFirst();
    void Next();

    const std::string& key() const { return node_->key; }
    Entry* entry() const { return node_; }

   private:
    const RowStore* store_;
    Entry* node_ = nullptr;
  };

 private:
  static constexpr int kMaxHeight = 16;

  Entry* NewEntry(std::string_view key, int height);
  int RandomHeight();
  // Finds the first node with key >= target; fills prev[] towers if given.
  Entry* FindGreaterOrEqual(std::string_view target,
                            Entry** prev) const;

  Schema schema_;
  Entry* head_;  // sentinel with empty key and kMaxHeight tower
  std::atomic<int> max_height_{1};
  std::atomic<uint64_t> height_seed_{0x2545F4914F6CDD1DULL};
  std::atomic<size_t> num_entries_{0};
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_ROW_STORE_H_
