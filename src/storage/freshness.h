#ifndef OLTAP_STORAGE_FRESHNESS_H_
#define OLTAP_STORAGE_FRESHNESS_H_

#include <cstdint>

namespace oltap {

class Catalog;

// One catalog-wide freshness probe shared by SHOW STATS, the merge
// daemon, the concurrent driver's end-of-run report, and the view
// subsystem's staleness gauges — the quantity is "how stale would an
// analytic query on main-only data be", i.e. the age of the oldest
// unmerged delta append.
struct FreshnessSummary {
  int64_t max_lag_us = 0;   // oldest delta append age across tables
  int64_t delta_rows = 0;   // unmerged delta rows across tables
};

FreshnessSummary ProbeFreshness(const Catalog& catalog, int64_t now_us);

}  // namespace oltap

#endif  // OLTAP_STORAGE_FRESHNESS_H_
