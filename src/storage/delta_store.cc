#include "storage/delta_store.h"

#include "common/clock.h"
#include "common/logging.h"

namespace oltap {

uint32_t DeltaStore::Append(Row row, Timestamp commit_ts) {
  std::unique_lock lock(mu_);
  if (rows_.empty()) first_append_us_ = SystemClock::Get()->NowMicros();
  rows_.push_back(std::move(row));
  insert_ts_.push_back(commit_ts);
  delete_ts_.push_back(kMaxTimestamp);
  return static_cast<uint32_t>(rows_.size() - 1);
}

void DeltaStore::MarkDeleted(uint32_t idx, Timestamp ts) {
  std::unique_lock lock(mu_);
  OLTAP_DCHECK(idx < rows_.size());
  if (ts < delete_ts_[idx]) delete_ts_[idx] = ts;
}

size_t DeltaStore::size() const {
  std::shared_lock lock(mu_);
  return rows_.size();
}

bool DeltaStore::VisibleAt(uint32_t idx, Timestamp read_ts) const {
  std::shared_lock lock(mu_);
  if (idx >= rows_.size()) return false;
  return insert_ts_[idx] <= read_ts && delete_ts_[idx] > read_ts;
}

bool DeltaStore::GetIfVisible(uint32_t idx, Timestamp read_ts,
                              Row* out) const {
  std::shared_lock lock(mu_);
  if (idx >= rows_.size()) return false;
  if (insert_ts_[idx] > read_ts || delete_ts_[idx] <= read_ts) return false;
  *out = rows_[idx];
  return true;
}

void DeltaStore::ForEachVisible(
    Timestamp read_ts,
    const std::function<void(uint32_t, const Row&)>& fn) const {
  std::shared_lock lock(mu_);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (insert_ts_[i] <= read_ts && delete_ts_[i] > read_ts) {
      fn(static_cast<uint32_t>(i), rows_[i]);
    }
  }
}

void DeltaStore::SnapshotTimestamps(std::vector<Timestamp>* insert_ts,
                                    std::vector<Timestamp>* delete_ts) const {
  std::shared_lock lock(mu_);
  insert_ts->assign(insert_ts_.begin(), insert_ts_.end());
  delete_ts->assign(delete_ts_.begin(), delete_ts_.end());
}

Row DeltaStore::GetRaw(uint32_t idx) const {
  std::shared_lock lock(mu_);
  OLTAP_DCHECK(idx < rows_.size());
  return rows_[idx];
}

int64_t DeltaStore::OldestAppendMicros() const {
  std::shared_lock lock(mu_);
  return rows_.empty() ? 0 : first_append_us_;
}

size_t DeltaStore::MemoryBytes() const {
  std::shared_lock lock(mu_);
  size_t total = rows_.size() * (sizeof(Row) + 2 * sizeof(Timestamp));
  for (const Row& r : rows_) {
    total += r.capacity() * sizeof(Value);
  }
  return total;
}

}  // namespace oltap
