#include "storage/column_store.h"

#include <algorithm>

#include "common/logging.h"

namespace oltap {

MainFragment::MainFragment(std::vector<ColumnSegment> columns,
                           size_t num_rows, Timestamp build_ts,
                           std::vector<Timestamp> insert_ts)
    : columns_(std::move(columns)),
      num_rows_(num_rows),
      build_ts_(build_ts),
      insert_ts_(std::move(insert_ts)),
      deleted_(num_rows) {
  OLTAP_CHECK(insert_ts_.empty() || insert_ts_.size() == num_rows_);
  max_insert_ts_ = build_ts_;
  for (Timestamp t : insert_ts_) max_insert_ts_ = std::max(max_insert_ts_, t);
}

void MainFragment::MarkDeleted(RowId rid, Timestamp ts) {
  std::unique_lock lock(delete_mu_);
  OLTAP_DCHECK(rid < num_rows_);
  deleted_.Set(rid);
  auto [it, inserted] = delete_ts_.emplace(rid, ts);
  if (!inserted && ts < it->second) it->second = ts;
}

bool MainFragment::VisibleAt(RowId rid, Timestamp read_ts) const {
  if (rid >= num_rows_) return false;
  if (!insert_ts_.empty()) {
    if (insert_ts_[rid] > read_ts) return false;
  } else if (build_ts_ > read_ts) {
    return false;
  }
  std::shared_lock lock(delete_mu_);
  if (!deleted_.Get(rid)) return true;
  auto it = delete_ts_.find(rid);
  return it != delete_ts_.end() && it->second > read_ts;
}

void MainFragment::VisibleMask(Timestamp read_ts, BitVector* out) const {
  {
    std::shared_lock lock(delete_mu_);
    *out = deleted_;
    out->Not();
    // Rows deleted after read_ts are still visible at read_ts.
    for (const auto& [rid, ts] : delete_ts_) {
      if (ts > read_ts) out->Set(rid);
    }
  }
  if (read_ts >= max_insert_ts_) return;  // fast path: everything inserted
  if (!insert_ts_.empty()) {
    for (size_t i = 0; i < num_rows_; ++i) {
      if (insert_ts_[i] > read_ts) out->Clear(i);
    }
  } else if (build_ts_ > read_ts) {
    out->ClearAll();
  }
}

size_t MainFragment::num_deleted() const {
  std::shared_lock lock(delete_mu_);
  return delete_ts_.size();
}

Row MainFragment::GetRow(RowId rid) const {
  Row row;
  row.reserve(columns_.size());
  for (const ColumnSegment& col : columns_) {
    row.push_back(col.GetValue(rid));
  }
  return row;
}

void MainFragment::SnapshotDeletes(
    std::unordered_map<RowId, Timestamp>* out) const {
  std::shared_lock lock(delete_mu_);
  *out = delete_ts_;
}

size_t MainFragment::MemoryBytes() const {
  size_t total = 0;
  for (const ColumnSegment& c : columns_) total += c.MemoryBytes();
  total += deleted_.num_words() * sizeof(uint64_t);
  total += insert_ts_.capacity() * sizeof(Timestamp);
  return total;
}

ColumnTable::ColumnTable(Schema schema)
    : schema_(std::move(schema)),
      keyed_(schema_.HasKey()),
      main_(std::make_shared<MainFragment>()),
      delta_(std::make_shared<DeltaStore>()) {}

ColumnTable::Snapshot ColumnTable::GetSnapshot(Timestamp read_ts) const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return Snapshot{main_, frozen_delta_, delta_, read_ts};
}

const DeltaStore* ColumnTable::DeltaFor(const Location& loc) const {
  OLTAP_DCHECK(loc.in_delta);
  if (loc.gen == delta_gen_) return delta_.get();
  OLTAP_DCHECK(loc.gen + 1 == delta_gen_ && frozen_delta_ != nullptr);
  return frozen_delta_.get();
}

DeltaStore* ColumnTable::DeltaFor(const Location& loc) {
  return const_cast<DeltaStore*>(
      static_cast<const ColumnTable*>(this)->DeltaFor(loc));
}

bool ColumnTable::NewestLive(const KeyEntry& e, Timestamp ts,
                             Location* loc) const {
  if (e.versions.empty()) return false;
  const Location& newest = e.versions.back();
  bool live = newest.in_delta ? DeltaFor(newest)->VisibleAt(newest.idx, ts)
                              : main_->VisibleAt(newest.idx, ts);
  if (live && loc != nullptr) *loc = newest;
  return live;
}

bool ColumnTable::ReadAt(const Location& loc, Timestamp read_ts,
                         Row* out) const {
  if (loc.in_delta) {
    return DeltaFor(loc)->GetIfVisible(loc.idx, read_ts, out);
  }
  if (!main_->VisibleAt(loc.idx, read_ts)) return false;
  *out = main_->GetRow(loc.idx);
  return true;
}

Status ColumnTable::InsertCommitted(const Row& row, Timestamp ts) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  if (!keyed_) {
    std::shared_lock lock(index_mu_);  // pin delta_ against merge republish
    delta_->Append(row, ts);
    return Status::OK();
  }
  std::string key = EncodeKey(schema_, row);
  std::unique_lock lock(index_mu_);
  KeyEntry& entry = key_index_[key];
  if (NewestLive(entry, ts, nullptr)) {
    return Status::AlreadyExists("duplicate primary key");
  }
  uint32_t idx = delta_->Append(row, ts);
  entry.versions.push_back(Location{true, delta_gen_, idx});
  entry.last_write_ts = ts;
  return Status::OK();
}

Status ColumnTable::DeleteCommitted(std::string_view key, Timestamp ts) {
  if (!keyed_) return Status::FailedPrecondition("table has no primary key");
  std::unique_lock lock(index_mu_);
  auto it = key_index_.find(std::string(key));
  if (it == key_index_.end()) return Status::NotFound("key not found");
  Location loc;
  if (!NewestLive(it->second, ts, &loc)) {
    return Status::NotFound("key not live");
  }
  if (loc.in_delta) {
    DeltaFor(loc)->MarkDeleted(loc.idx, ts);
  } else {
    main_->MarkDeleted(loc.idx, ts);
  }
  it->second.last_write_ts = ts;
  return Status::OK();
}

Status ColumnTable::UpdateCommitted(std::string_view key, const Row& new_row,
                                    Timestamp ts) {
  if (!keyed_) return Status::FailedPrecondition("table has no primary key");
  OLTAP_DCHECK(EncodeKey(schema_, new_row) == key)
      << "update must preserve the primary key";
  std::unique_lock lock(index_mu_);
  auto it = key_index_.find(std::string(key));
  if (it == key_index_.end()) return Status::NotFound("key not found");
  KeyEntry& entry = it->second;
  Location loc;
  if (!NewestLive(entry, ts, &loc)) {
    return Status::NotFound("key not live");
  }
  if (loc.in_delta) {
    DeltaFor(loc)->MarkDeleted(loc.idx, ts);
  } else {
    main_->MarkDeleted(loc.idx, ts);
  }
  uint32_t idx = delta_->Append(new_row, ts);
  entry.versions.push_back(Location{true, delta_gen_, idx});
  entry.last_write_ts = ts;
  return Status::OK();
}

bool ColumnTable::Lookup(std::string_view key, Timestamp read_ts,
                         Row* out) const {
  if (!keyed_) return false;
  std::shared_lock lock(index_mu_);
  auto it = key_index_.find(std::string(key));
  if (it == key_index_.end()) return false;
  const KeyEntry& entry = it->second;
  // Newest-to-oldest: the first version visible at read_ts wins.
  for (auto v = entry.versions.rbegin(); v != entry.versions.rend(); ++v) {
    if (ReadAt(*v, read_ts, out)) return true;
  }
  return false;
}

Timestamp ColumnTable::LastWriteTs(std::string_view key) const {
  if (!keyed_) return 0;
  std::shared_lock lock(index_mu_);
  auto it = key_index_.find(std::string(key));
  return it == key_index_.end() ? 0 : it->second.last_write_ts;
}

Status ColumnTable::BulkLoadToMain(const std::vector<Row>& rows,
                                   Timestamp ts) {
  std::unique_lock lock(index_mu_);
  std::lock_guard<std::mutex> snap_lock(snap_mu_);
  if (main_->num_rows() != 0 || delta_->size() != 0) {
    return Status::FailedPrecondition("BulkLoadToMain requires empty table");
  }
  size_t n = rows.size();
  std::vector<ColumnSegment> segments;
  segments.reserve(schema_.num_columns());
  std::vector<Value> column_values(n);
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    for (size_t r = 0; r < n; ++r) {
      OLTAP_CHECK(rows[r].size() == schema_.num_columns());
      column_values[r] = rows[r][c];
    }
    segments.push_back(
        ColumnSegment::Build(schema_.column(c).type, column_values));
  }
  auto fresh = std::make_shared<MainFragment>(std::move(segments), n, ts);
  if (keyed_) {
    key_index_.clear();
    key_index_.reserve(n);
    for (size_t r = 0; r < n; ++r) {
      std::string key = EncodeKey(schema_, rows[r]);
      KeyEntry& entry = key_index_[key];
      if (!entry.versions.empty()) {
        return Status::AlreadyExists("duplicate primary key in bulk load");
      }
      entry.versions.push_back(
          Location{false, 0, static_cast<uint32_t>(r)});
      entry.last_write_ts = ts;
    }
  }
  main_ = std::move(fresh);
  return Status::OK();
}

size_t ColumnTable::main_size() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return main_->num_rows();
}

size_t ColumnTable::delta_size() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  size_t n = delta_->size();
  if (frozen_delta_ != nullptr) n += frozen_delta_->size();
  return n;
}

size_t ColumnTable::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  size_t total = main_->MemoryBytes() + delta_->MemoryBytes();
  if (frozen_delta_ != nullptr) total += frozen_delta_->MemoryBytes();
  return total;
}

int64_t ColumnTable::DeltaAgeMicros(int64_t now_us) const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  int64_t oldest = 0;  // 0 = no unmerged rows
  if (frozen_delta_ != nullptr) {
    int64_t t = frozen_delta_->OldestAppendMicros();
    if (t > 0) oldest = t;
  }
  int64_t t = delta_->OldestAppendMicros();
  if (t > 0 && (oldest == 0 || t < oldest)) oldest = t;
  if (oldest == 0) return 0;
  return now_us > oldest ? now_us - oldest : 0;
}

}  // namespace oltap
