#include "storage/bitpack.h"

#include <bit>

#include "common/logging.h"

namespace oltap {

int BitsForMax(uint32_t max_value) {
  int bits = 1;
  while ((uint64_t{1} << bits) <= max_value) ++bits;
  return bits;
}

PackedArray PackedArray::Pack(const std::vector<uint32_t>& codes,
                              int code_bits) {
  OLTAP_CHECK(code_bits >= 1 && code_bits <= 31);
  PackedArray p;
  p.code_bits_ = code_bits;
  p.field_bits_ = code_bits + 1;
  p.codes_per_word_ = 64 / static_cast<size_t>(p.field_bits_);
  p.code_mask_ = (uint32_t{1} << code_bits) - 1;
  p.size_ = codes.size();

  uint64_t guard = 0;
  uint64_t lsb = 0;
  for (size_t s = 0; s < p.codes_per_word_; ++s) {
    guard |= uint64_t{1} << (s * p.field_bits_ + code_bits);
    lsb |= uint64_t{1} << (s * p.field_bits_);
  }
  p.guard_mask_ = guard;
  p.field_lsb_mask_ = lsb;

  size_t num_words =
      (codes.size() + p.codes_per_word_ - 1) / p.codes_per_word_;
  p.words_.assign(num_words, 0);
  for (size_t i = 0; i < codes.size(); ++i) {
    OLTAP_DCHECK(codes[i] <= p.code_mask_) << "code does not fit";
    size_t word = i / p.codes_per_word_;
    size_t slot = i % p.codes_per_word_;
    p.words_[word] |= static_cast<uint64_t>(codes[i])
                      << (slot * p.field_bits_);
  }
  return p;
}

void PackedArray::ScanGe(uint32_t constant, BitVector* out) const {
  out->Resize(size_);
  out->ClearAll();
  if (size_ == 0) return;
  if (constant == 0) {
    out->SetAll();
    return;
  }
  if (constant > code_mask_) return;  // nothing can be >= constant

  // Replicate the constant into every field.
  uint64_t c_repl = 0;
  for (size_t s = 0; s < codes_per_word_; ++s) {
    c_repl |= static_cast<uint64_t>(constant) << (s * field_bits_);
  }

  const int shift_to_guard = code_bits_;
  for (size_t w = 0; w < words_.size(); ++w) {
    // Borrow-free SWAR compare: guard survives iff field >= constant.
    uint64_t d = (words_[w] | guard_mask_) - c_repl;
    uint64_t g = d & guard_mask_;
    size_t base = w * codes_per_word_;
    while (g != 0) {
      int bit = std::countr_zero(g);
      size_t slot = static_cast<size_t>(bit - shift_to_guard) /
                    static_cast<size_t>(field_bits_);
      size_t idx = base + slot;
      if (idx < size_) out->Set(idx);
      g &= g - 1;
    }
  }
}

void PackedArray::ScanRangeWindow(uint32_t lo, uint32_t hi, size_t begin,
                                  size_t end, BitVector* out) const {
  OLTAP_DCHECK(out->size() == size_);
  OLTAP_DCHECK(begin <= end && end <= size_);
  if (begin >= end || lo > hi || lo > code_mask_) return;
  hi = std::min(hi, code_mask_);

  // Partial leading/trailing slots evaluated per value; whole interior
  // words via the SWAR kernel.
  size_t first_full_word = (begin + codes_per_word_ - 1) / codes_per_word_;
  size_t last_full_word = end / codes_per_word_;

  auto scalar = [&](size_t from, size_t to) {
    for (size_t i = from; i < to; ++i) {
      uint32_t c = Get(i);
      if (c >= lo && c <= hi) out->Set(i);
    }
  };
  if (first_full_word >= last_full_word) {
    scalar(begin, end);
    return;
  }
  scalar(begin, first_full_word * codes_per_word_);
  scalar(last_full_word * codes_per_word_, end);

  uint64_t lo_repl = 0, hi1_repl = 0;
  bool check_hi = hi < code_mask_;
  for (size_t s = 0; s < codes_per_word_; ++s) {
    lo_repl |= static_cast<uint64_t>(lo) << (s * field_bits_);
    if (check_hi) {
      hi1_repl |= static_cast<uint64_t>(hi + 1) << (s * field_bits_);
    }
  }
  const int shift_to_guard = code_bits_;
  for (size_t w = first_full_word; w < last_full_word; ++w) {
    uint64_t x = words_[w] | guard_mask_;
    // Guard set in g iff code >= lo; cleared in g_hi iff code <= hi.
    uint64_t g = lo == 0 ? guard_mask_ : (x - lo_repl) & guard_mask_;
    if (check_hi) g &= ~(x - hi1_repl);
    size_t base = w * codes_per_word_;
    while (g != 0) {
      int bit = std::countr_zero(g);
      size_t slot = static_cast<size_t>(bit - shift_to_guard) /
                    static_cast<size_t>(field_bits_);
      out->Set(base + slot);
      g &= g - 1;
    }
  }
}

void PackedArray::Scan(CompareOp op, uint32_t constant, BitVector* out) const {
  switch (op) {
    case CompareOp::kGe:
      ScanGe(constant, out);
      return;
    case CompareOp::kLt:
      ScanGe(constant, out);
      out->Not();
      return;
    case CompareOp::kGt:
      if (constant >= code_mask_) {
        out->Resize(size_);
        out->ClearAll();
        return;
      }
      ScanGe(constant + 1, out);
      return;
    case CompareOp::kLe:
      if (constant >= code_mask_) {
        out->Resize(size_);
        out->SetAll();
        return;
      }
      ScanGe(constant + 1, out);
      out->Not();
      return;
    case CompareOp::kEq: {
      ScanGe(constant, out);
      if (constant < code_mask_) {
        BitVector ge_next;
        ScanGe(constant + 1, &ge_next);
        ge_next.Not();
        out->And(ge_next);
      }
      return;
    }
    case CompareOp::kNe: {
      Scan(CompareOp::kEq, constant, out);
      out->Not();
      return;
    }
  }
}

void PackedArray::ScanRange(uint32_t lo, uint32_t hi, BitVector* out) const {
  if (hi < lo) {
    out->Resize(size_);
    out->ClearAll();
    return;
  }
  ScanGe(lo, out);
  if (hi < code_mask_) {
    BitVector above;
    ScanGe(hi + 1, &above);
    above.Not();
    out->And(above);
  }
}

void PackedArray::ScanScalar(CompareOp op, uint32_t constant,
                             BitVector* out) const {
  out->Resize(size_);
  out->ClearAll();
  for (size_t i = 0; i < size_; ++i) {
    uint32_t v = Get(i);
    bool hit = false;
    switch (op) {
      case CompareOp::kEq:
        hit = v == constant;
        break;
      case CompareOp::kNe:
        hit = v != constant;
        break;
      case CompareOp::kLt:
        hit = v < constant;
        break;
      case CompareOp::kLe:
        hit = v <= constant;
        break;
      case CompareOp::kGt:
        hit = v > constant;
        break;
      case CompareOp::kGe:
        hit = v >= constant;
        break;
    }
    if (hit) out->Set(i);
  }
}

}  // namespace oltap
