#ifndef OLTAP_STORAGE_COLUMN_STORE_H_
#define OLTAP_STORAGE_COLUMN_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/column_segment.h"
#include "storage/delta_store.h"
#include "storage/row.h"
#include "storage/schema.h"

namespace oltap {

// An immutable columnar fragment (the read-optimized "main") plus its
// mutable positional delete side-structure (Héman et al.'s positional
// updates [14]: deletes against the main never rewrite segments, they stamp
// a rowid with the deleting commit timestamp).
//
// Rows additionally carry an insert timestamp (the DB2 BLU TSN / HANA CTS
// vector design) so that snapshots older than recently merged rows remain
// correct; `insert_ts` may be empty, meaning every row was created at
// build_ts. The common fast path (read_ts >= max_insert_ts) skips all
// per-row checks.
class MainFragment {
 public:
  MainFragment() = default;
  MainFragment(std::vector<ColumnSegment> columns, size_t num_rows,
               Timestamp build_ts, std::vector<Timestamp> insert_ts = {});

  MainFragment(const MainFragment&) = delete;
  MainFragment& operator=(const MainFragment&) = delete;

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnSegment& column(size_t i) const { return columns_[i]; }
  Timestamp build_ts() const { return build_ts_; }
  Timestamp max_insert_ts() const { return max_insert_ts_; }
  // Commit timestamp of the insert that created `rid`.
  Timestamp InsertTsOf(RowId rid) const {
    return insert_ts_.empty() ? build_ts_ : insert_ts_[rid];
  }

  // Stamps `rid` deleted at `ts` (keeps the earliest ts if racing).
  void MarkDeleted(RowId rid, Timestamp ts);

  bool VisibleAt(RowId rid, Timestamp read_ts) const;

  // Writes the visibility mask at read_ts: bit set = row visible. O(rows/64)
  // plus the (small) set of deleted rows on the fast path.
  void VisibleMask(Timestamp read_ts, BitVector* out) const;

  size_t num_deleted() const;

  // Reconstructs a full row (tuple reconstruction across segments).
  Row GetRow(RowId rid) const;

  // Merge support: copies the delete map.
  void SnapshotDeletes(std::unordered_map<RowId, Timestamp>* out) const;

  size_t MemoryBytes() const;

 private:
  std::vector<ColumnSegment> columns_;
  size_t num_rows_ = 0;
  Timestamp build_ts_ = 0;
  Timestamp max_insert_ts_ = 0;
  std::vector<Timestamp> insert_ts_;  // empty = all rows at build_ts_

  mutable std::shared_mutex delete_mu_;
  BitVector deleted_;
  std::unordered_map<RowId, Timestamp> delete_ts_;
};

// Columnar table with the delta/main lifecycle every surveyed column store
// uses (HANA, DB2 BLU, MemSQL, Kudu): committed writes land in the row-wise
// DeltaStore; an explicit MergeDelta() folds delta + positional deletes
// into a fresh immutable main; scans read (main ∪ frozen-delta ∪ delta) at
// read_ts through a Snapshot that pins the structures via shared_ptr, so
// merges never invalidate running queries.
//
// Writes here are *committed* writes: the transaction layer buffers
// uncommitted changes in its write set and applies them at commit with the
// commit timestamp (write-write conflicts are detected against
// LastWriteTs). This is the standard collect-updates-in-a-writable-store
// design the tutorial describes for column stores.
class ColumnTable {
 public:
  explicit ColumnTable(Schema schema);

  const Schema& schema() const { return schema_; }

  // A consistent view of the table. Rows visible = main rows live at
  // read_ts, plus frozen-delta rows (merge in progress when taken), plus
  // delta rows, all filtered by [insert_ts, delete_ts).
  struct Snapshot {
    std::shared_ptr<const MainFragment> main;
    std::shared_ptr<const DeltaStore> frozen;  // null unless merging
    std::shared_ptr<const DeltaStore> delta;
    Timestamp read_ts = 0;
  };
  Snapshot GetSnapshot(Timestamp read_ts) const;

  // ---- Committed-write API (transaction layer / bulk load) ----

  // Fails with AlreadyExists if the primary key is live at `ts`.
  Status InsertCommitted(const Row& row, Timestamp ts);
  // Fails with NotFound if the key is not live.
  Status DeleteCommitted(std::string_view key, Timestamp ts);
  // Delete + insert of the new image under one key entry.
  Status UpdateCommitted(std::string_view key, const Row& new_row,
                         Timestamp ts);

  // Point read at read_ts through the key index (walks version history).
  bool Lookup(std::string_view key, Timestamp read_ts, Row* out) const;

  // Commit timestamp of the last write (insert/update/delete) to `key`;
  // 0 if never written. Used for first-committer-wins validation.
  Timestamp LastWriteTs(std::string_view key) const;

  // Loads `rows` directly into a fresh main fragment. Only valid while the
  // table is empty; the fast path for benchmark/bulk ingest.
  Status BulkLoadToMain(const std::vector<Row>& rows, Timestamp ts);

  // Folds delta + positional deletes into a new main fragment (merge.cc).
  // `gc_horizon` is the oldest read timestamp any current or future
  // snapshot may use (i.e. the transaction manager's oldest active
  // snapshot); rows deleted before it are physically dropped. Returns the
  // number of live rows in the new main. Serialized internally; concurrent
  // reads and writes proceed throughout.
  size_t MergeDelta(Timestamp merge_ts, Timestamp gc_horizon);
  size_t MergeDelta(Timestamp merge_ts) {
    return MergeDelta(merge_ts, merge_ts);
  }

  size_t main_size() const;
  size_t delta_size() const;
  size_t num_merges() const {
    return num_merges_.load(std::memory_order_relaxed);
  }
  size_t MemoryBytes() const;

  // Age in micros (relative to `now_us`, same clock as SystemClock) of the
  // oldest unmerged delta row, across the live and frozen deltas; 0 when
  // the deltas are empty. This is the table's OLAP freshness lag.
  int64_t DeltaAgeMicros(int64_t now_us) const;

 private:
  friend class MergeJob;

  // Where a version of a key lives. `gen` disambiguates the two deltas that
  // can be alive during a merge: gen == delta_gen_ is the current delta,
  // gen == delta_gen_ - 1 is the frozen one.
  struct Location {
    bool in_delta = true;
    uint32_t gen = 0;
    uint32_t idx = 0;
  };
  struct KeyEntry {
    // Version locations, oldest→newest. Merge compacts this.
    std::vector<Location> versions;
    Timestamp last_write_ts = 0;
  };

  // Requires shared index lock held. Returns whether the newest version of
  // `e` is live (not deleted) as of `ts`, and its location.
  bool NewestLive(const KeyEntry& e, Timestamp ts, Location* loc) const;

  // Reads a row at `loc` if visible at read_ts (callers hold the index
  // lock so merge cannot republish concurrently).
  bool ReadAt(const Location& loc, Timestamp read_ts, Row* out) const;

  // Resolves the delta store for a delta location (current or frozen).
  const DeltaStore* DeltaFor(const Location& loc) const;
  DeltaStore* DeltaFor(const Location& loc);

  Schema schema_;
  bool keyed_ = false;

  mutable std::shared_mutex index_mu_;
  std::unordered_map<std::string, KeyEntry> key_index_;

  mutable std::mutex snap_mu_;  // guards the shared_ptrs below
  std::shared_ptr<MainFragment> main_;
  std::shared_ptr<DeltaStore> delta_;
  std::shared_ptr<DeltaStore> frozen_delta_;  // non-null during merge
  uint32_t delta_gen_ = 0;

  std::mutex merge_mu_;  // one merge at a time
  std::atomic<size_t> num_merges_{0};
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_COLUMN_STORE_H_
