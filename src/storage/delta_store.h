#ifndef OLTAP_STORAGE_DELTA_STORE_H_
#define OLTAP_STORAGE_DELTA_STORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/types.h"
#include "storage/row.h"

namespace oltap {

// Write-optimized, row-wise delta of a columnar table: the "differential
// file" [29,16] that every surveyed column store pairs with its read-
// optimized main (HANA delta, BLU ingest buffers, MemSQL row store feeding
// the column store). Committed inserts append here with their commit
// timestamp; deletes stamp a delete timestamp; the merge process folds the
// delta into a fresh main fragment.
//
// Thread safety: appends/deletes take the writer lock; readers take the
// shared lock per call. Deltas are kept small by merging, so lock
// granularity is not the bottleneck (and the E3 benchmark measures exactly
// this delta-size effect).
class DeltaStore {
 public:
  DeltaStore() = default;

  DeltaStore(const DeltaStore&) = delete;
  DeltaStore& operator=(const DeltaStore&) = delete;

  // Appends a committed row; returns its delta index.
  uint32_t Append(Row row, Timestamp commit_ts);

  // Stamps delta row `idx` deleted at `ts`. Idempotent-safe: keeps the
  // earliest delete.
  void MarkDeleted(uint32_t idx, Timestamp ts);

  // Number of rows ever appended (including deleted ones).
  size_t size() const;

  // True if `idx` is visible at `read_ts` (inserted at or before, not yet
  // deleted).
  bool VisibleAt(uint32_t idx, Timestamp read_ts) const;

  // Copies row `idx` into *out if visible at read_ts; returns visibility.
  bool GetIfVisible(uint32_t idx, Timestamp read_ts, Row* out) const;

  // Invokes fn(idx, row) for every row visible at read_ts, in insertion
  // order. The row reference is only valid during the callback.
  void ForEachVisible(Timestamp read_ts,
                      const std::function<void(uint32_t, const Row&)>& fn) const;

  // Merge support: snapshot of per-row timestamps (index-aligned).
  void SnapshotTimestamps(std::vector<Timestamp>* insert_ts,
                          std::vector<Timestamp>* delete_ts) const;
  // Copies row `idx` regardless of visibility (merge reads everything).
  Row GetRaw(uint32_t idx) const;

  size_t MemoryBytes() const;

  // Wall-clock micros of the first append into this (empty-at-the-time)
  // store, or 0 if nothing was ever appended. Deltas are replaced wholesale
  // at merge, so this is exactly the age of the oldest unmerged row — the
  // freshness lag an OLAP snapshot pays relative to the merged main.
  int64_t OldestAppendMicros() const;

 private:
  mutable std::shared_mutex mu_;
  std::deque<Row> rows_;
  std::deque<Timestamp> insert_ts_;
  std::deque<Timestamp> delete_ts_;  // kMaxTimestamp while live
  int64_t first_append_us_ = 0;
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_DELTA_STORE_H_
