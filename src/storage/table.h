#ifndef OLTAP_STORAGE_TABLE_H_
#define OLTAP_STORAGE_TABLE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "storage/change_log.h"
#include "storage/column_store.h"
#include "storage/dual_table.h"
#include "storage/row.h"
#include "storage/schema.h"

namespace oltap {

// Physical organization of a table — the central design axis of the
// tutorial's survey ("row-based, column-oriented, or hybrid").
enum class TableFormat : uint8_t {
  kRow,      // skip-list row store only (pure OLTP engine)
  kColumn,   // delta + columnar main only (HANA/BLU-style single store)
  kDual,     // both mirrors, transactionally consistent (Oracle DBIM)
};

const char* TableFormatToString(TableFormat f);

// Unified table facade over the three storage engines. All mutating calls
// are *committed* writes stamped with a commit timestamp; the transaction
// layer (txn/) buffers uncommitted changes and drives these at commit.
class Table {
 public:
  Table(std::string name, Schema schema, TableFormat format);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  TableFormat format() const { return format_; }

  Status InsertCommitted(const Row& row, Timestamp ts);
  Status DeleteCommitted(std::string_view key, Timestamp ts);
  Status UpdateCommitted(std::string_view key, const Row& new_row,
                         Timestamp ts);

  bool Lookup(std::string_view key, Timestamp read_ts, Row* out) const;
  Timestamp LastWriteTs(std::string_view key) const;

  // Row-wise scan of all rows visible at read_ts (any format). The
  // columnar engines reconstruct tuples; the vectorized/columnar execution
  // paths in exec/ bypass this and scan segments directly.
  void ScanVisible(Timestamp read_ts,
                   const std::function<void(const Row&)>& fn) const;

  // Ordered range scan over the row mirror (kRow/kDual): up to `limit`
  // visible rows with key >= start_key, in key order. Falls back to a
  // filtered full scan for kColumn (which has no ordered access path —
  // exactly the asymmetry experiment E4 measures). Returns rows visited.
  size_t ScanRange(std::string_view start_key, size_t limit,
                   Timestamp read_ts,
                   const std::function<void(const Row&)>& fn) const;

  // Columnar snapshot for batch scans; nullopt for kRow tables.
  std::optional<ColumnTable::Snapshot> GetColumnSnapshot(
      Timestamp read_ts) const;

  // True when the format has a delta/main lifecycle to merge.
  bool Mergeable() const { return format_ != TableFormat::kRow; }
  // Folds the columnar delta into the main; no-op (returns 0) for kRow.
  size_t MergeDelta(Timestamp merge_ts, Timestamp gc_horizon);

  // Number of rows visible at read_ts. O(n) over delta + deletes; cheap
  // enough for planning heuristics and tests.
  size_t CountVisible(Timestamp read_ts) const;

  // O(1) physical row-count estimate for the planner: row-mirror key count
  // when one exists, main+delta size otherwise (counts not-yet-GCed
  // deletes, which is acceptable for costing).
  size_t ApproxRowCount() const;

  // Committed modifications (inserts + updates + deletes) since creation.
  // ANALYZE snapshots this counter; the delta against the live value is
  // the staleness signal SHOW STATS reports per table.
  uint64_t mod_count() const {
    return mod_count_.load(std::memory_order_relaxed);
  }

  // Fast bulk ingest into an empty kColumn table's main fragment.
  // Bypasses the change log: views over a bulk-loaded table must be
  // REFRESHed (the view subsystem does this on creation anyway).
  Status BulkLoadToMain(const std::vector<Row>& rows, Timestamp ts);

  // Activates the logical change log (idempotent) and returns it. Called
  // once per subscribing view; committed writes start appending insert/
  // delete entries from that point on.
  ChangeLog* EnsureChangeLog();
  // Null until EnsureChangeLog — one relaxed atomic load on the write
  // path when no view subscribes.
  ChangeLog* change_log() const {
    return change_log_ptr_.load(std::memory_order_acquire);
  }

  // Engine accessors for specialized paths (may be null depending on
  // format).
  RowTable* row_table();
  const RowTable* row_table() const;
  ColumnTable* column_table();
  const ColumnTable* column_table() const;

 private:
  std::string name_;
  Schema schema_;
  TableFormat format_;

  std::unique_ptr<RowTable> row_;       // kRow
  std::unique_ptr<ColumnTable> column_; // kColumn
  std::unique_ptr<DualTable> dual_;     // kDual

  std::atomic<uint64_t> mod_count_{0};

  std::mutex change_log_init_mu_;
  std::unique_ptr<ChangeLog> change_log_holder_;
  std::atomic<ChangeLog*> change_log_ptr_{nullptr};
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_TABLE_H_
