#include "storage/row.h"

#include <cstring>

#include "common/logging.h"

namespace oltap {
namespace {

void AppendInt64BigEndian(std::string* out, int64_t v) {
  // Bias so that negative values order before positive under memcmp.
  uint64_t u = static_cast<uint64_t>(v) ^ (uint64_t{1} << 63);
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((u >> shift) & 0xff));
  }
}

void AppendDoubleOrdered(std::string* out, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  // IEEE-754 total-order trick: flip all bits for negatives, sign bit for
  // non-negatives.
  if (bits & (uint64_t{1} << 63)) {
    bits = ~bits;
  } else {
    bits ^= uint64_t{1} << 63;
  }
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((bits >> shift) & 0xff));
  }
}

void AppendStringEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '\0') {
      out->push_back('\0');
      out->push_back('\x01');
    } else {
      out->push_back(c);
    }
  }
  out->push_back('\0');
  out->push_back('\0');
}

void AppendValue(std::string* out, const Value& v) {
  // Null sorts first via a 0x00 tag; non-null values get 0x01.
  if (v.is_null()) {
    out->push_back('\0');
    return;
  }
  out->push_back('\x01');
  switch (v.type()) {
    case ValueType::kInt64:
      AppendInt64BigEndian(out, v.AsInt64());
      break;
    case ValueType::kDouble:
      AppendDoubleOrdered(out, v.AsDouble());
      break;
    case ValueType::kString:
      AppendStringEscaped(out, v.AsString());
      break;
  }
}

}  // namespace

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

std::string EncodeKey(const Schema& schema, const Row& row) {
  OLTAP_DCHECK(schema.HasKey());
  return EncodeKeyColumns(row, schema.key_columns());
}

std::string EncodeKeyColumns(const Row& row, const std::vector<int>& cols) {
  std::string out;
  out.reserve(cols.size() * 9);
  for (int c : cols) {
    OLTAP_DCHECK(c >= 0 && static_cast<size_t>(c) < row.size());
    AppendValue(&out, row[c]);
  }
  return out;
}

bool VersionVisible(const RowVersion& v, Timestamp read_ts,
                    uint64_t self_txn_id) {
  Timestamp begin = v.begin.load(std::memory_order_acquire);
  if (IsTxnId(begin)) {
    // Uncommitted insert: visible only to its own transaction.
    if (TxnIdOf(begin) != self_txn_id) return false;
  } else if (begin > read_ts) {
    return false;  // created after our snapshot
  }
  Timestamp end = v.end.load(std::memory_order_acquire);
  if (IsTxnId(end)) {
    // Uncommitted delete: already invisible to the deleting transaction,
    // still visible to everyone else.
    return TxnIdOf(end) != self_txn_id;
  }
  return end > read_ts;
}

}  // namespace oltap
