#include "storage/pax_page.h"

#include <algorithm>

#include "common/logging.h"

namespace oltap {

void RowLayout::AppendRow(const int64_t* values) {
  data_.insert(data_.end(), values, values + num_columns_);
  ++num_rows_;
}

void RowLayout::GetRow(size_t r, int64_t* out) const {
  const int64_t* base = &data_[r * num_columns_];
  for (size_t c = 0; c < num_columns_; ++c) out[c] = base[c];
}

int64_t RowLayout::SumColumn(size_t c) const {
  int64_t sum = 0;
  for (size_t r = 0; r < num_rows_; ++r) sum += data_[r * num_columns_ + c];
  return sum;
}

int64_t RowLayout::SumWhere(size_t filter_col, int64_t threshold,
                            size_t sum_col) const {
  int64_t sum = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    const int64_t* base = &data_[r * num_columns_];
    if (base[filter_col] < threshold) sum += base[sum_col];
  }
  return sum;
}

void ColumnLayout::AppendRow(const int64_t* values) {
  for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(values[c]);
  ++num_rows_;
}

void ColumnLayout::GetRow(size_t r, int64_t* out) const {
  for (size_t c = 0; c < cols_.size(); ++c) out[c] = cols_[c][r];
}

int64_t ColumnLayout::SumColumn(size_t c) const {
  int64_t sum = 0;
  for (int64_t v : cols_[c]) sum += v;
  return sum;
}

int64_t ColumnLayout::SumWhere(size_t filter_col, int64_t threshold,
                               size_t sum_col) const {
  const std::vector<int64_t>& f = cols_[filter_col];
  const std::vector<int64_t>& s = cols_[sum_col];
  int64_t sum = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    if (f[r] < threshold) sum += s[r];
  }
  return sum;
}

std::vector<std::vector<int>> ChooseColumnGroups(
    size_t num_columns, const std::vector<std::vector<int>>& query_columns,
    double min_affinity, size_t max_group_width) {
  // Pairwise co-access counts.
  std::vector<std::vector<double>> co(num_columns,
                                      std::vector<double>(num_columns, 0));
  for (const std::vector<int>& q : query_columns) {
    for (int a : q) {
      for (int b : q) {
        if (a != b) co[a][b] += 1;
      }
    }
  }
  std::vector<std::vector<int>> groups;
  for (size_t c = 0; c < num_columns; ++c) {
    groups.push_back({static_cast<int>(c)});
  }
  const double total_queries =
      query_columns.empty() ? 1.0 : static_cast<double>(query_columns.size());
  while (true) {
    double best = 0;
    int best_a = -1, best_b = -1;
    for (size_t a = 0; a < groups.size(); ++a) {
      for (size_t b = a + 1; b < groups.size(); ++b) {
        if (groups[a].size() + groups[b].size() > max_group_width) continue;
        double sum = 0;
        for (int ca : groups[a]) {
          for (int cb : groups[b]) sum += co[ca][cb];
        }
        // Average co-access per cross pair, normalized by workload size.
        double affinity =
            sum / (static_cast<double>(groups[a].size() * groups[b].size()) *
                   total_queries);
        if (affinity > best) {
          best = affinity;
          best_a = static_cast<int>(a);
          best_b = static_cast<int>(b);
        }
      }
    }
    if (best_a < 0 || best < min_affinity) break;
    groups[best_a].insert(groups[best_a].end(), groups[best_b].begin(),
                          groups[best_b].end());
    groups.erase(groups.begin() + best_b);
  }
  for (std::vector<int>& g : groups) std::sort(g.begin(), g.end());
  return groups;
}

GroupedLayout::GroupedLayout(size_t num_columns,
                             std::vector<std::vector<int>> groups)
    : column_group_(num_columns, -1), column_offset_(num_columns, -1) {
  groups_.resize(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    groups_[g].columns = groups[g];
    for (size_t off = 0; off < groups[g].size(); ++off) {
      int c = groups[g][off];
      OLTAP_CHECK(c >= 0 && static_cast<size_t>(c) < num_columns);
      OLTAP_CHECK(column_group_[c] == -1) << "column in two groups";
      column_group_[c] = static_cast<int>(g);
      column_offset_[c] = static_cast<int>(off);
    }
  }
  for (size_t c = 0; c < num_columns; ++c) {
    OLTAP_CHECK(column_group_[c] >= 0) << "column not in any group";
  }
}

void GroupedLayout::AppendRow(const int64_t* values) {
  for (Group& g : groups_) {
    for (int c : g.columns) g.data.push_back(values[c]);
  }
  ++num_rows_;
}

int64_t GroupedLayout::Get(size_t r, size_t c) const {
  const Group& g = groups_[column_group_[c]];
  return g.data[r * g.columns.size() + column_offset_[c]];
}

void GroupedLayout::Update(size_t r, size_t c, int64_t v) {
  Group& g = groups_[column_group_[c]];
  g.data[r * g.columns.size() + column_offset_[c]] = v;
}

void GroupedLayout::GetRow(size_t r, int64_t* out) const {
  for (const Group& g : groups_) {
    const int64_t* base = &g.data[r * g.columns.size()];
    for (size_t off = 0; off < g.columns.size(); ++off) {
      out[g.columns[off]] = base[off];
    }
  }
}

int64_t GroupedLayout::SumColumn(size_t c) const {
  const Group& g = groups_[column_group_[c]];
  const size_t width = g.columns.size();
  const size_t offset = column_offset_[c];
  int64_t sum = 0;
  for (size_t r = 0; r < num_rows_; ++r) sum += g.data[r * width + offset];
  return sum;
}

int64_t GroupedLayout::SumWhere(size_t filter_col, int64_t threshold,
                                size_t sum_col) const {
  const Group& fg = groups_[column_group_[filter_col]];
  const Group& sg = groups_[column_group_[sum_col]];
  const size_t fw = fg.columns.size(), fo = column_offset_[filter_col];
  const size_t sw = sg.columns.size(), so = column_offset_[sum_col];
  int64_t sum = 0;
  for (size_t r = 0; r < num_rows_; ++r) {
    if (fg.data[r * fw + fo] < threshold) sum += sg.data[r * sw + so];
  }
  return sum;
}

PaxLayout::PaxLayout(size_t num_columns, size_t page_bytes)
    : num_columns_(num_columns),
      rows_per_page_(page_bytes / (num_columns * sizeof(int64_t))) {
  OLTAP_CHECK(rows_per_page_ > 0) << "page too small for schema";
}

void PaxLayout::AppendRow(const int64_t* values) {
  if (pages_.empty() || pages_.back().used == rows_per_page_) {
    Page page;
    page.data.resize(num_columns_ * rows_per_page_);
    pages_.push_back(std::move(page));
  }
  Page& page = pages_.back();
  for (size_t c = 0; c < num_columns_; ++c) {
    page.data[c * rows_per_page_ + page.used] = values[c];
  }
  ++page.used;
  ++num_rows_;
}

void PaxLayout::GetRow(size_t r, int64_t* out) const {
  const Page& page = pages_[r / rows_per_page_];
  size_t slot = r % rows_per_page_;
  for (size_t c = 0; c < num_columns_; ++c) {
    out[c] = page.data[c * rows_per_page_ + slot];
  }
}

void PaxLayout::Update(size_t r, size_t c, int64_t v) {
  pages_[r / rows_per_page_].data[c * rows_per_page_ + r % rows_per_page_] = v;
}

int64_t PaxLayout::Get(size_t r, size_t c) const {
  return pages_[r / rows_per_page_].data[c * rows_per_page_ +
                                         r % rows_per_page_];
}

int64_t PaxLayout::SumColumn(size_t c) const {
  int64_t sum = 0;
  for (const Page& page : pages_) {
    const int64_t* mini = &page.data[c * rows_per_page_];
    for (size_t i = 0; i < page.used; ++i) sum += mini[i];
  }
  return sum;
}

int64_t PaxLayout::SumWhere(size_t filter_col, int64_t threshold,
                            size_t sum_col) const {
  int64_t sum = 0;
  for (const Page& page : pages_) {
    const int64_t* f = &page.data[filter_col * rows_per_page_];
    const int64_t* s = &page.data[sum_col * rows_per_page_];
    for (size_t i = 0; i < page.used; ++i) {
      if (f[i] < threshold) sum += s[i];
    }
  }
  return sum;
}

}  // namespace oltap
