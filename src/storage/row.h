#ifndef OLTAP_STORAGE_ROW_H_
#define OLTAP_STORAGE_ROW_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace oltap {

// A materialized row: one Value per schema column, in schema order.
using Row = std::vector<Value>;

// Renders "(v1, v2, ...)" for debugging and example output.
std::string RowToString(const Row& row);

// Encodes the primary-key columns of `row` into a memcmp-ordered byte
// string: int64 as biased big-endian, double via an order-preserving bit
// flip, strings with 0x00 0x01 escaping and a 0x00 0x00 terminator (so
// composite keys compare componentwise). This is the skip-list key.
std::string EncodeKey(const Schema& schema, const Row& row);

// Encodes an arbitrary column subset (used by secondary lookups and the
// distributed router, which hashes encoded keys).
std::string EncodeKeyColumns(const Row& row, const std::vector<int>& cols);

// One MVCC version of a row. Version chains hang off row-store entries,
// newest first. `begin`/`end` hold either a commit timestamp or a
// transaction marker (kTxnIdFlag | txn_id) while the writing transaction is
// in flight — see common/types.h. DB2 BLU-style multi-versioning: deletes
// finalize `end`, updates append a fresh version at the head.
struct RowVersion {
  std::atomic<Timestamp> begin{0};
  std::atomic<Timestamp> end{kMaxTimestamp};
  RowVersion* next = nullptr;  // older version, immutable once linked
  Row data;

  RowVersion() = default;
  explicit RowVersion(Row r) : data(std::move(r)) {}
};

// Snapshot-isolation visibility: a version is visible at `read_ts` to
// transaction `self_txn_id` iff it was created by a transaction that
// committed at or before read_ts (or by self), and not yet deleted at
// read_ts (deletions by self count immediately).
bool VersionVisible(const RowVersion& v, Timestamp read_ts,
                    uint64_t self_txn_id);

}  // namespace oltap

#endif  // OLTAP_STORAGE_ROW_H_
