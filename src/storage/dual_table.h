#ifndef OLTAP_STORAGE_DUAL_TABLE_H_
#define OLTAP_STORAGE_DUAL_TABLE_H_

#include <atomic>
#include <functional>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "storage/column_store.h"
#include "storage/row.h"
#include "storage/row_store.h"
#include "storage/schema.h"

namespace oltap {

// Committed-write row engine: a thin transactional veneer over the
// lock-free skip list. Versions carry final commit timestamps (the
// transaction layer validates and orders commits before applying). This is
// the OLTP-optimized mirror of the dual-format design and the standalone
// `kRow` table format.
class RowTable {
 public:
  explicit RowTable(Schema schema);

  const Schema& schema() const { return store_.schema(); }

  Status InsertCommitted(const Row& row, Timestamp ts);
  Status DeleteCommitted(std::string_view key, Timestamp ts);
  Status UpdateCommitted(std::string_view key, const Row& new_row,
                         Timestamp ts);

  bool Lookup(std::string_view key, Timestamp read_ts, Row* out) const;

  // Commit timestamp of the last write to `key`; 0 if never written.
  Timestamp LastWriteTs(std::string_view key) const;

  // Invokes fn for every row visible at read_ts, in key order.
  void ScanVisible(Timestamp read_ts,
                   const std::function<void(const Row&)>& fn) const;

  // Ordered short-range scan: visits up to `limit` visible rows with
  // encoded key >= start_key, in key order — the skip list's signature
  // OLTP access path (TPC-C "next orders of this district"), which
  // hash-indexed columnar tables cannot serve without a full scan.
  // Returns the number of rows visited.
  size_t ScanRange(std::string_view start_key, size_t limit,
                   Timestamp read_ts,
                   const std::function<void(const Row&)>& fn) const;

  size_t num_keys() const { return store_.num_entries(); }
  RowStore* store() { return &store_; }
  const RowStore* store() const { return &store_; }

 private:
  // Key for a row: the schema key, or an internal sequence for keyless
  // tables (append-only, e.g. TPC-C HISTORY).
  std::string KeyFor(const Row& row);

  RowStore store_;
  std::atomic<uint64_t> seq_{0};
};

// Dual-format table (Oracle Database In-Memory [22] / fractured mirrors
// [33]): the same data maintained simultaneously in a row mirror (OLTP
// point access through the skip list) and a columnar mirror (delta + main,
// analytic scans). Every committed write applies to both mirrors at the
// same commit timestamp, so the two formats are transactionally consistent
// at every read timestamp — the paper's "both formats are simultaneously
// active and strict transactional consistency is guaranteed".
class DualTable {
 public:
  explicit DualTable(Schema schema);

  const Schema& schema() const { return row_.schema(); }

  Status InsertCommitted(const Row& row, Timestamp ts);
  Status DeleteCommitted(std::string_view key, Timestamp ts);
  Status UpdateCommitted(std::string_view key, const Row& new_row,
                         Timestamp ts);

  // Point reads are served from the row mirror.
  bool Lookup(std::string_view key, Timestamp read_ts, Row* out) const {
    return row_.Lookup(key, read_ts, out);
  }
  Timestamp LastWriteTs(std::string_view key) const {
    return row_.LastWriteTs(key);
  }

  // Analytic scans are served from the columnar mirror.
  ColumnTable::Snapshot GetColumnSnapshot(Timestamp read_ts) const {
    return column_.GetSnapshot(read_ts);
  }

  size_t MergeDelta(Timestamp merge_ts, Timestamp gc_horizon) {
    return column_.MergeDelta(merge_ts, gc_horizon);
  }

  RowTable* row_side() { return &row_; }
  ColumnTable* column_side() { return &column_; }
  const ColumnTable* column_side() const { return &column_; }

 private:
  RowTable row_;
  ColumnTable column_;
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_DUAL_TABLE_H_
