#ifndef OLTAP_STORAGE_BITPACK_H_
#define OLTAP_STORAGE_BITPACK_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"

namespace oltap {

// Comparison operators understood by the packed-scan kernels.
enum class CompareOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

// Minimum bits needed to represent values in [0, max_value].
int BitsForMax(uint32_t max_value);

// Fixed-width bit-packed code array with a SWAR (SIMD-within-a-register)
// scan path — the portable equivalent of the SIMD-scan technique of
// Willhalm et al. [42] that HANA and BLU build their column scans on.
//
// Layout: each code occupies a field of `field_bits` = code_bits + 1 bits
// (one guard bit for borrow-free SWAR comparison); fields never straddle
// 64-bit word boundaries, so a word holds 64 / field_bits codes and scans
// process that many codes per arithmetic operation.
class PackedArray {
 public:
  PackedArray() = default;

  // Packs `codes`; every code must fit in `code_bits` (<= 31).
  static PackedArray Pack(const std::vector<uint32_t>& codes, int code_bits);

  size_t size() const { return size_; }
  int code_bits() const { return code_bits_; }
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  uint32_t Get(size_t i) const {
    size_t word = i / codes_per_word_;
    size_t slot = i % codes_per_word_;
    return static_cast<uint32_t>(
               words_[word] >> (slot * field_bits_)) &
           code_mask_;
  }

  // Evaluates `code <op> constant` over all codes, writing one bit per code
  // into `out` (resized to size()). Uses the word-parallel kernel: ~8/k
  // codes per subtract for k-bit codes.
  void Scan(CompareOp op, uint32_t constant, BitVector* out) const;

  // Sets out bits for lo <= code <= hi over indexes [begin, end) only,
  // leaving bits outside the window untouched. `out` must already be sized
  // to size(). Zone-skipping scans call this per surviving zone; every
  // comparison operator decomposes into at most two inclusive code ranges.
  void ScanRangeWindow(uint32_t lo, uint32_t hi, size_t begin, size_t end,
                       BitVector* out) const;

  // Evaluates lo <= code <= hi (the shape dictionary rewrite produces for
  // string ranges). Degenerate ranges yield an empty selection.
  void ScanRange(uint32_t lo, uint32_t hi, BitVector* out) const;

  // Reference scalar implementation (used by tests and as the baseline in
  // the E2 benchmark).
  void ScanScalar(CompareOp op, uint32_t constant, BitVector* out) const;

 private:
  // Sets out bit i for each field whose guard bit is set in `ge_mask`
  // semantics; helper for Scan.
  void ScanGe(uint32_t constant, BitVector* out) const;

  std::vector<uint64_t> words_;
  size_t size_ = 0;
  int code_bits_ = 0;
  int field_bits_ = 0;
  size_t codes_per_word_ = 0;
  uint32_t code_mask_ = 0;
  uint64_t guard_mask_ = 0;   // guard (top) bit of every field
  uint64_t field_lsb_mask_ = 0;  // bit 0 of every field
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_BITPACK_H_
