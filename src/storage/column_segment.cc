#include "storage/column_segment.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace oltap {
namespace {

// Applies `op` to the comparison result sign (cmp = v - c conceptually).
bool EvalCompare(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

}  // namespace

namespace {

// Builds the int64 encoding into `seg` (helper shared by the RLE-allowed
// and RLE-suppressed entry points).
constexpr size_t kMinAvgRunForRle = 8;

}  // namespace

ColumnSegment ColumnSegment::BuildInt64NoRle(
    const std::vector<int64_t>& values, const BitVector* nulls) {
  ColumnSegment seg = BuildInt64Impl(values, nulls, /*allow_rle=*/false);
  return seg;
}

ColumnSegment ColumnSegment::BuildInt64(const std::vector<int64_t>& values,
                                        const BitVector* nulls) {
  return BuildInt64Impl(values, nulls, /*allow_rle=*/true);
}

ColumnSegment ColumnSegment::BuildInt64Impl(
    const std::vector<int64_t>& values, const BitVector* nulls,
    bool allow_rle) {
  ColumnSegment seg;
  seg.type_ = ValueType::kInt64;
  seg.size_ = values.size();
  if (nulls != nullptr && nulls->CountSet() > 0) {
    seg.has_nulls_ = true;
    seg.nulls_ = *nulls;
  }
  // Run-length encode when the data is clustered enough (and null-free:
  // nulls would fragment runs and complicate per-run evaluation).
  if (allow_rle && !seg.has_nulls_ && !values.empty()) {
    size_t runs = 1;
    for (size_t i = 1; i < values.size(); ++i) {
      if (values[i] != values[i - 1]) ++runs;
    }
    if (values.size() / runs >= kMinAvgRunForRle) {
      seg.int64_rle_ = true;
      seg.rle_values_.reserve(runs);
      seg.rle_starts_.reserve(runs + 1);
      for (size_t i = 0; i < values.size(); ++i) {
        if (i == 0 || values[i] != values[i - 1]) {
          seg.rle_values_.push_back(values[i]);
          seg.rle_starts_.push_back(static_cast<uint32_t>(i));
        }
      }
      seg.rle_starts_.push_back(static_cast<uint32_t>(values.size()));
      seg.zone_map_ = ZoneMap::Build(values, nullptr);
      return seg;
    }
  }
  // Determine the non-null range for frame-of-reference.
  bool any = false;
  int64_t lo = 0, hi = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (seg.has_nulls_ && seg.nulls_.Get(i)) continue;
    if (!any) {
      lo = hi = values[i];
      any = true;
    } else {
      lo = std::min(lo, values[i]);
      hi = std::max(hi, values[i]);
    }
  }
  uint64_t range = any ? static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo)
                       : 0;
  if (any && range <= 0x7fffffffULL) {
    seg.int64_packed_ = true;
    seg.for_base_ = lo;
    std::vector<uint32_t> codes(values.size(), 0);
    for (size_t i = 0; i < values.size(); ++i) {
      if (seg.has_nulls_ && seg.nulls_.Get(i)) continue;
      codes[i] = static_cast<uint32_t>(values[i] - lo);
    }
    int bits = BitsForMax(static_cast<uint32_t>(range));
    seg.packed_ = PackedArray::Pack(codes, bits);
  } else {
    seg.raw_i64_ = values;
  }
  seg.zone_map_ = ZoneMap::Build(values, seg.has_nulls_ ? &seg.nulls_ : nullptr);
  return seg;
}

ColumnSegment ColumnSegment::BuildDouble(const std::vector<double>& values,
                                         const BitVector* nulls) {
  ColumnSegment seg;
  seg.type_ = ValueType::kDouble;
  seg.size_ = values.size();
  if (nulls != nullptr && nulls->CountSet() > 0) {
    seg.has_nulls_ = true;
    seg.nulls_ = *nulls;
  }
  seg.raw_f64_ = values;
  seg.zone_map_ =
      ZoneMap::BuildFromDoubles(values, seg.has_nulls_ ? &seg.nulls_ : nullptr);
  return seg;
}

ColumnSegment ColumnSegment::BuildString(const std::vector<std::string>& values,
                                         const BitVector* nulls) {
  ColumnSegment seg;
  seg.type_ = ValueType::kString;
  seg.size_ = values.size();
  if (nulls != nullptr && nulls->CountSet() > 0) {
    seg.has_nulls_ = true;
    seg.nulls_ = *nulls;
  }
  // Dictionary over non-null values only.
  std::vector<std::string> non_null;
  non_null.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (seg.has_nulls_ && seg.nulls_.Get(i)) continue;
    non_null.push_back(values[i]);
  }
  seg.dict_ = std::make_shared<Dictionary>(Dictionary::Build(non_null));
  std::vector<uint32_t> codes(values.size(), 0);
  for (size_t i = 0; i < values.size(); ++i) {
    if (seg.has_nulls_ && seg.nulls_.Get(i)) continue;
    int64_t code = seg.dict_->Encode(values[i]);
    OLTAP_DCHECK(code >= 0);
    codes[i] = static_cast<uint32_t>(code);
  }
  uint32_t max_code = seg.dict_->size() > 0 ? seg.dict_->size() - 1 : 0;
  seg.packed_ = PackedArray::Pack(codes, BitsForMax(max_code));
  seg.zone_map_ = ZoneMap::BuildFromCodes(
      codes, seg.has_nulls_ ? &seg.nulls_ : nullptr);
  return seg;
}

ColumnSegment ColumnSegment::Build(ValueType type,
                                   const std::vector<Value>& values) {
  BitVector nulls(values.size());
  bool any_null = false;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null()) {
      nulls.Set(i);
      any_null = true;
    }
  }
  const BitVector* nulls_ptr = any_null ? &nulls : nullptr;
  switch (type) {
    case ValueType::kInt64: {
      std::vector<int64_t> v(values.size(), 0);
      for (size_t i = 0; i < values.size(); ++i) {
        if (!values[i].is_null()) v[i] = values[i].AsInt64();
      }
      return BuildInt64(v, nulls_ptr);
    }
    case ValueType::kDouble: {
      std::vector<double> v(values.size(), 0);
      for (size_t i = 0; i < values.size(); ++i) {
        if (!values[i].is_null()) v[i] = values[i].AsDouble();
      }
      return BuildDouble(v, nulls_ptr);
    }
    case ValueType::kString: {
      std::vector<std::string> v(values.size());
      for (size_t i = 0; i < values.size(); ++i) {
        if (!values[i].is_null()) v[i] = values[i].AsString();
      }
      return BuildString(v, nulls_ptr);
    }
  }
  return ColumnSegment();
}

int64_t ColumnSegment::GetInt64(size_t i) const {
  OLTAP_DCHECK(type_ == ValueType::kInt64);
  if (int64_rle_) {
    // Last run whose start <= i.
    auto it = std::upper_bound(rle_starts_.begin(), rle_starts_.end(),
                               static_cast<uint32_t>(i));
    return rle_values_[(it - rle_starts_.begin()) - 1];
  }
  if (int64_packed_) {
    return for_base_ + static_cast<int64_t>(packed_.Get(i));
  }
  return raw_i64_[i];
}

ColumnSegment::Encoding ColumnSegment::encoding() const {
  if (type_ == ValueType::kString) return Encoding::kDictionary;
  if (int64_rle_) return Encoding::kRle;
  if (int64_packed_) return Encoding::kPacked;
  return Encoding::kRaw;
}

double ColumnSegment::GetDouble(size_t i) const {
  OLTAP_DCHECK(type_ == ValueType::kDouble);
  return raw_f64_[i];
}

std::string_view ColumnSegment::GetString(size_t i) const {
  OLTAP_DCHECK(type_ == ValueType::kString);
  return dict_->Decode(packed_.Get(i));
}

Value ColumnSegment::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null(type_);
  switch (type_) {
    case ValueType::kInt64:
      return Value::Int64(GetInt64(i));
    case ValueType::kDouble:
      return Value::Double(GetDouble(i));
    case ValueType::kString:
      return Value::String(std::string(GetString(i)));
  }
  return Value();
}

void ColumnSegment::ApplyNullMask(BitVector* out) const {
  if (!has_nulls_) return;
  BitVector non_null = nulls_;
  non_null.Not();
  out->And(non_null);
}

void ColumnSegment::AllNonNull(BitVector* out) const {
  out->Resize(size_);
  out->SetAll();
  ApplyNullMask(out);
}

void ColumnSegment::ScanInt64(CompareOp op, int64_t constant,
                              BitVector* out) const {
  if (int64_rle_) {
    // One predicate evaluation per run; matching runs fill word-at-a-time.
    out->Resize(size_);
    out->ClearAll();
    for (size_t r = 0; r < rle_values_.size(); ++r) {
      int64_t v = rle_values_[r];
      int cmp = v < constant ? -1 : v > constant ? 1 : 0;
      if (EvalCompare(op, cmp)) {
        out->SetRange(rle_starts_[r], rle_starts_[r + 1]);
      }
    }
    return;
  }
  if (int64_packed_) {
    // Rewrite into code space. Constants outside the observed range get
    // handled by the boundary cases below.
    uint32_t max_code = packed_.size() > 0
                            ? (uint32_t{1} << packed_.code_bits()) - 1
                            : 0;
    int64_t max_domain = for_base_ + static_cast<int64_t>(max_code);
    if (constant < for_base_) {
      switch (op) {
        case CompareOp::kLt:
        case CompareOp::kLe:
        case CompareOp::kEq:
          out->Resize(size_);
          out->ClearAll();
          return;
        default:
          AllNonNull(out);
          return;
      }
    }
    if (constant > max_domain) {
      switch (op) {
        case CompareOp::kGt:
        case CompareOp::kGe:
        case CompareOp::kEq:
          out->Resize(size_);
          out->ClearAll();
          return;
        default:
          AllNonNull(out);
          return;
      }
    }
    packed_.Scan(op, static_cast<uint32_t>(constant - for_base_), out);
    ApplyNullMask(out);
    return;
  }
  out->Resize(size_);
  out->ClearAll();
  for (size_t i = 0; i < size_; ++i) {
    if (has_nulls_ && nulls_.Get(i)) continue;
    int64_t v = raw_i64_[i];
    int cmp = v < constant ? -1 : v > constant ? 1 : 0;
    if (EvalCompare(op, cmp)) out->Set(i);
  }
}

void ColumnSegment::ScanDouble(CompareOp op, double constant,
                               BitVector* out) const {
  out->Resize(size_);
  out->ClearAll();
  for (size_t i = 0; i < size_; ++i) {
    if (has_nulls_ && nulls_.Get(i)) continue;
    double v = raw_f64_[i];
    int cmp = v < constant ? -1 : v > constant ? 1 : 0;
    if (EvalCompare(op, cmp)) out->Set(i);
  }
}

void ColumnSegment::ScanString(CompareOp op, std::string_view constant,
                               BitVector* out) const {
  const Dictionary& dict = *dict_;
  uint32_t n = dict.size();
  switch (op) {
    case CompareOp::kEq: {
      int64_t code = dict.Encode(constant);
      if (code < 0) {
        out->Resize(size_);
        out->ClearAll();
        return;
      }
      packed_.Scan(CompareOp::kEq, static_cast<uint32_t>(code), out);
      break;
    }
    case CompareOp::kNe: {
      int64_t code = dict.Encode(constant);
      if (code < 0) {
        AllNonNull(out);
        return;
      }
      packed_.Scan(CompareOp::kNe, static_cast<uint32_t>(code), out);
      break;
    }
    case CompareOp::kLt:
    case CompareOp::kGe: {
      uint32_t lb = dict.LowerBound(constant);
      // codes < lb  <=>  value < constant (order-preserving dictionary).
      if (op == CompareOp::kLt) {
        if (lb == 0) {
          out->Resize(size_);
          out->ClearAll();
          return;
        }
        packed_.ScanRange(0, lb - 1, out);
      } else {
        if (lb >= n) {
          out->Resize(size_);
          out->ClearAll();
          return;
        }
        packed_.ScanRange(lb, n == 0 ? 0 : n - 1, out);
      }
      break;
    }
    case CompareOp::kLe:
    case CompareOp::kGt: {
      uint32_t ub = dict.UpperBound(constant);
      // codes < ub  <=>  value <= constant.
      if (op == CompareOp::kLe) {
        if (ub == 0) {
          out->Resize(size_);
          out->ClearAll();
          return;
        }
        packed_.ScanRange(0, ub - 1, out);
      } else {
        if (ub >= n) {
          out->Resize(size_);
          out->ClearAll();
          return;
        }
        packed_.ScanRange(ub, n == 0 ? 0 : n - 1, out);
      }
      break;
    }
  }
  ApplyNullMask(out);
}

void ColumnSegment::ScanCompare(CompareOp op, const Value& constant,
                                BitVector* out) const {
  if (constant.is_null()) {
    // SQL semantics: comparisons with NULL match nothing.
    out->Resize(size_);
    out->ClearAll();
    return;
  }
  switch (type_) {
    case ValueType::kInt64:
      if (constant.type() == ValueType::kDouble) {
        // Compare in double space against the raw values.
        out->Resize(size_);
        out->ClearAll();
        for (size_t i = 0; i < size_; ++i) {
          if (IsNull(i)) continue;
          double v = static_cast<double>(GetInt64(i));
          double c = constant.AsDouble();
          int cmp = v < c ? -1 : v > c ? 1 : 0;
          if (EvalCompare(op, cmp)) out->Set(i);
        }
        return;
      }
      ScanInt64(op, constant.AsInt64(), out);
      return;
    case ValueType::kDouble:
      ScanDouble(op, constant.AsDouble(), out);
      return;
    case ValueType::kString:
      OLTAP_DCHECK(constant.type() == ValueType::kString);
      ScanString(op, constant.AsStringView(), out);
      return;
  }
}

namespace {

// An inclusive code-space range plus its value-space image for zone tests.
struct CodeRange {
  uint32_t code_lo;
  uint32_t code_hi;
  double value_lo;
  double value_hi;
};

}  // namespace

void ColumnSegment::ScanCompareZoned(CompareOp op, const Value& constant,
                                     BitVector* out,
                                     size_t* zones_pruned) const {
  if (zones_pruned != nullptr) *zones_pruned = 0;
  // Decompose into at most two inclusive code ranges; fall back when the
  // encoding has no code space to range over.
  std::vector<CodeRange> ranges;
  bool rewritable = false;

  if (!constant.is_null() && type_ == ValueType::kInt64 && int64_packed_ &&
      constant.type() == ValueType::kInt64) {
    rewritable = true;
    uint32_t max_code = (uint32_t{1} << packed_.code_bits()) - 1;
    int64_t dom_lo = for_base_;
    int64_t dom_hi = for_base_ + static_cast<int64_t>(max_code);
    auto add = [&](int64_t lo, int64_t hi) {
      lo = std::max(lo, dom_lo);
      hi = std::min(hi, dom_hi);
      if (lo > hi) return;
      ranges.push_back(CodeRange{static_cast<uint32_t>(lo - for_base_),
                                 static_cast<uint32_t>(hi - for_base_),
                                 static_cast<double>(lo),
                                 static_cast<double>(hi)});
    };
    int64_t c = constant.AsInt64();
    switch (op) {
      case CompareOp::kEq:
        add(c, c);
        break;
      case CompareOp::kNe:
        if (c > INT64_MIN) add(dom_lo, c - 1);
        if (c < INT64_MAX) add(c + 1, dom_hi);
        break;
      case CompareOp::kLt:
        if (c > INT64_MIN) add(dom_lo, c - 1);
        break;
      case CompareOp::kLe:
        add(dom_lo, c);
        break;
      case CompareOp::kGt:
        if (c < INT64_MAX) add(c + 1, dom_hi);
        break;
      case CompareOp::kGe:
        add(c, dom_hi);
        break;
    }
  } else if (!constant.is_null() && type_ == ValueType::kString &&
             constant.type() == ValueType::kString && dict_ != nullptr &&
             dict_->size() > 0) {
    rewritable = true;
    uint32_t n = dict_->size();
    auto add = [&](int64_t lo, int64_t hi) {
      lo = std::max<int64_t>(lo, 0);
      hi = std::min<int64_t>(hi, n - 1);
      if (lo > hi) return;
      // String zone maps are built over codes, so value == code space.
      ranges.push_back(CodeRange{static_cast<uint32_t>(lo),
                                 static_cast<uint32_t>(hi),
                                 static_cast<double>(lo),
                                 static_cast<double>(hi)});
    };
    std::string_view s = constant.AsStringView();
    switch (op) {
      case CompareOp::kEq: {
        int64_t code = dict_->Encode(s);
        if (code >= 0) add(code, code);
        break;
      }
      case CompareOp::kNe: {
        int64_t code = dict_->Encode(s);
        if (code < 0) {
          add(0, n - 1);
        } else {
          add(0, code - 1);
          add(code + 1, n - 1);
        }
        break;
      }
      case CompareOp::kLt:
        add(0, static_cast<int64_t>(dict_->LowerBound(s)) - 1);
        break;
      case CompareOp::kLe:
        add(0, static_cast<int64_t>(dict_->UpperBound(s)) - 1);
        break;
      case CompareOp::kGt:
        add(dict_->UpperBound(s), n - 1);
        break;
      case CompareOp::kGe:
        add(dict_->LowerBound(s), n - 1);
        break;
    }
  }

  if (!rewritable) {
    ScanCompare(op, constant, out);
    return;
  }

  out->Resize(size_);
  out->ClearAll();
  const size_t zone_rows = zone_map_.zone_rows();
  const size_t num_zones = zone_map_.num_zones();
  std::vector<bool> zone_used(num_zones, false);
  for (const CodeRange& range : ranges) {
    for (size_t z = 0; z < num_zones; ++z) {
      double zmin, zmax;
      if (!zone_map_.ZoneBounds(z, &zmin, &zmax)) continue;  // all NULL
      if (zmax < range.value_lo || zmin > range.value_hi) continue;
      zone_used[z] = true;
      size_t begin = z * zone_rows;
      size_t end = std::min(size_, begin + zone_rows);
      packed_.ScanRangeWindow(range.code_lo, range.code_hi, begin, end, out);
    }
  }
  if (zones_pruned != nullptr) {
    for (size_t z = 0; z < num_zones; ++z) {
      if (!zone_used[z]) ++*zones_pruned;
    }
  }
  ApplyNullMask(out);
}

void ColumnSegment::GatherDoubles(const BitVector* sel,
                                  std::vector<double>* out,
                                  std::vector<uint32_t>* row_ids) const {
  out->clear();
  if (row_ids != nullptr) row_ids->clear();
  auto emit = [&](size_t i) {
    if (IsNull(i)) return;
    double v = type_ == ValueType::kDouble
                   ? raw_f64_[i]
                   : static_cast<double>(GetInt64(i));
    out->push_back(v);
    if (row_ids != nullptr) row_ids->push_back(static_cast<uint32_t>(i));
  };
  if (sel == nullptr) {
    for (size_t i = 0; i < size_; ++i) emit(i);
  } else {
    for (size_t i = sel->FindNextSet(0); i < sel->size();
         i = sel->FindNextSet(i + 1)) {
      emit(i);
    }
  }
}

size_t ColumnSegment::MemoryBytes() const {
  size_t total = packed_.MemoryBytes();
  total += raw_i64_.capacity() * sizeof(int64_t);
  total += rle_values_.capacity() * sizeof(int64_t);
  total += rle_starts_.capacity() * sizeof(uint32_t);
  total += raw_f64_.capacity() * sizeof(double);
  total += nulls_.num_words() * sizeof(uint64_t);
  if (dict_ != nullptr) total += dict_->MemoryBytes();
  return total;
}

}  // namespace oltap
