// Delta→main merge for ColumnTable: the LSM-style reorganization step
// ("differential files" [29,16]) that folds the writable row-wise delta and
// the positional delete vector into a fresh, fully re-encoded columnar main
// fragment (dictionaries rebuilt, frame-of-reference re-based, zone maps
// recomputed).
//
// The merge runs in three phases so readers and writers never block:
//   1. Freeze  — swap in an empty delta; the old one becomes the frozen
//                delta, still readable and delete-able via Location.gen.
//   2. Build   — construct the new main from (old main minus GC-able
//                deletes) + frozen delta, without any table-wide lock.
//   3. Publish — under the index lock, re-apply deletes that raced with the
//                build, rewrite key-index locations, and swap the main in.
// Snapshots taken at any point remain valid: they pin the structures they
// saw via shared_ptr.

#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "storage/column_store.h"

namespace oltap {

class MergeJob {
 public:
  MergeJob(ColumnTable* table, Timestamp merge_ts, Timestamp gc_horizon)
      : t_(table), merge_ts_(merge_ts), horizon_(gc_horizon) {}

  size_t Run() {
    std::lock_guard<std::mutex> merge_lock(t_->merge_mu_);
    {
      // Nothing to do if the delta is empty and the main carries no deletes.
      std::lock_guard<std::mutex> snap_lock(t_->snap_mu_);
      if (t_->delta_->size() == 0 && t_->main_->num_deleted() == 0) {
        return t_->main_->num_rows();
      }
    }
    Freeze();
    Build();
    Publish();
    t_->num_merges_.fetch_add(1, std::memory_order_relaxed);
    return new_main_->num_rows();
  }

 private:
  void Freeze() {
    std::unique_lock index_lock(t_->index_mu_);
    std::lock_guard<std::mutex> snap_lock(t_->snap_mu_);
    frozen_ = t_->delta_;
    frozen_gen_ = t_->delta_gen_;
    t_->frozen_delta_ = frozen_;
    t_->delta_ = std::make_shared<DeltaStore>();
    ++t_->delta_gen_;
    old_main_ = t_->main_;
  }

  void Build() {
    old_main_->SnapshotDeletes(&main_deletes_at_build_);
    frozen_->SnapshotTimestamps(&delta_insert_ts_, &delta_deletes_at_build_);

    const size_t n_old = old_main_->num_rows();
    const size_t n_delta = delta_insert_ts_.size();
    main_to_new_.assign(n_old, kInvalidRowId);
    delta_to_new_.assign(n_delta, kInvalidRowId);

    // Decide which rows survive. A deleted row is physically dropped only
    // if no current or future snapshot (read_ts >= horizon_) can see it.
    std::vector<Timestamp> new_insert_ts;
    struct CarriedDelete {
      RowId new_rid;
      Timestamp ts;
    };
    std::vector<CarriedDelete> carried;
    RowId next = 0;
    for (size_t r = 0; r < n_old; ++r) {
      auto del = main_deletes_at_build_.find(static_cast<RowId>(r));
      if (del != main_deletes_at_build_.end() && del->second < horizon_) {
        continue;  // drop
      }
      main_to_new_[r] = next;
      if (del != main_deletes_at_build_.end()) {
        carried.push_back({next, del->second});
      }
      new_insert_ts.push_back(old_main_->InsertTsOf(static_cast<RowId>(r)));
      ++next;
    }
    for (size_t d = 0; d < n_delta; ++d) {
      if (delta_deletes_at_build_[d] < horizon_) continue;  // drop
      delta_to_new_[d] = next;
      if (delta_deletes_at_build_[d] != kMaxTimestamp) {
        carried.push_back({next, delta_deletes_at_build_[d]});
      }
      new_insert_ts.push_back(delta_insert_ts_[d]);
      ++next;
    }

    const size_t n_new = next;
    const Schema& schema = t_->schema_;
    std::vector<ColumnSegment> segments;
    segments.reserve(schema.num_columns());
    std::vector<Value> column_values(n_new);
    // Materialize delta rows once (row-wise store), then build column-wise.
    std::vector<Row> delta_rows(n_delta);
    for (size_t d = 0; d < n_delta; ++d) {
      if (delta_to_new_[d] != kInvalidRowId) {
        delta_rows[d] = frozen_->GetRaw(static_cast<uint32_t>(d));
      }
    }
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      // The first merge starts from an empty main with no column
      // segments; don't form a reference into its empty vector.
      if (n_old > 0) {
        const ColumnSegment& old_col = old_main_->column(c);
        for (size_t r = 0; r < n_old; ++r) {
          if (main_to_new_[r] != kInvalidRowId) {
            column_values[main_to_new_[r]] =
                old_col.GetValue(static_cast<RowId>(r));
          }
        }
      }
      for (size_t d = 0; d < n_delta; ++d) {
        if (delta_to_new_[d] != kInvalidRowId) {
          column_values[delta_to_new_[d]] = delta_rows[d][c];
        }
      }
      segments.push_back(
          ColumnSegment::Build(schema.column(c).type, column_values));
    }

    new_main_ = std::make_shared<MainFragment>(
        std::move(segments), n_new, merge_ts_, std::move(new_insert_ts));
    for (const CarriedDelete& cd : carried) {
      new_main_->MarkDeleted(cd.new_rid, cd.ts);
    }
  }

  void Publish() {
    std::unique_lock index_lock(t_->index_mu_);

    // Deletes that committed during Build targeted the old structures (the
    // key index still pointed there). Re-read and forward them.
    std::unordered_map<RowId, Timestamp> main_deletes_now;
    old_main_->SnapshotDeletes(&main_deletes_now);
    for (const auto& [rid, ts] : main_deletes_now) {
      auto before = main_deletes_at_build_.find(rid);
      if (before != main_deletes_at_build_.end() && before->second <= ts) {
        continue;  // already carried (or dropped pre-horizon)
      }
      if (main_to_new_[rid] != kInvalidRowId) {
        new_main_->MarkDeleted(main_to_new_[rid], ts);
      }
    }
    std::vector<Timestamp> unused_ins, delta_deletes_now;
    frozen_->SnapshotTimestamps(&unused_ins, &delta_deletes_now);
    for (size_t d = 0; d < delta_deletes_now.size(); ++d) {
      if (delta_deletes_now[d] != kMaxTimestamp &&
          delta_deletes_at_build_[d] == kMaxTimestamp &&
          delta_to_new_[d] != kInvalidRowId) {
        new_main_->MarkDeleted(delta_to_new_[d], delta_deletes_now[d]);
      }
    }

    // Rewrite key-index locations: old-main and frozen-delta versions now
    // live in the new main (or are gone).
    if (t_->keyed_) {
      for (auto it = t_->key_index_.begin(); it != t_->key_index_.end();) {
        auto& versions = it->second.versions;
        std::vector<ColumnTable::Location> rewritten;
        rewritten.reserve(versions.size());
        for (const ColumnTable::Location& loc : versions) {
          if (!loc.in_delta) {
            RowId mapped = main_to_new_[loc.idx];
            if (mapped != kInvalidRowId) {
              rewritten.push_back({false, 0, mapped});
            }
          } else if (loc.gen == frozen_gen_) {
            RowId mapped = delta_to_new_[loc.idx];
            if (mapped != kInvalidRowId) {
              rewritten.push_back({false, 0, mapped});
            }
          } else {
            rewritten.push_back(loc);  // current delta, untouched
          }
        }
        if (rewritten.empty()) {
          it = t_->key_index_.erase(it);
        } else {
          versions = std::move(rewritten);
          ++it;
        }
      }
    }

    std::lock_guard<std::mutex> snap_lock(t_->snap_mu_);
    t_->main_ = new_main_;
    t_->frozen_delta_.reset();
  }

  ColumnTable* t_;
  const Timestamp merge_ts_;
  const Timestamp horizon_;

  std::shared_ptr<MainFragment> old_main_;
  std::shared_ptr<DeltaStore> frozen_;
  uint32_t frozen_gen_ = 0;

  std::unordered_map<RowId, Timestamp> main_deletes_at_build_;
  std::vector<Timestamp> delta_insert_ts_;
  std::vector<Timestamp> delta_deletes_at_build_;
  std::vector<RowId> main_to_new_;
  std::vector<RowId> delta_to_new_;
  std::shared_ptr<MainFragment> new_main_;
};

size_t ColumnTable::MergeDelta(Timestamp merge_ts, Timestamp gc_horizon) {
  MergeJob job(this, merge_ts, gc_horizon);
  return job.Run();
}

}  // namespace oltap
