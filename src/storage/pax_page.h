#ifndef OLTAP_STORAGE_PAX_PAGE_H_
#define OLTAP_STORAGE_PAX_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace oltap {

// Physical-layout study structures for experiment E1 (row vs. column vs.
// PAX), after Ailamaki et al. [3]. These are deliberately minimal,
// fixed-width (int64) in-memory layouts so the benchmark isolates pure
// memory-access patterns: NSM interleaves all columns per row, DSM stores
// each column contiguously, PAX groups rows into pages with per-column
// "minipages" (column locality within a page, row locality across one
// page fetch).
//
// All three expose the same API: append, point read of a full row, point
// update of one cell, sum of one column, and a filtered sum (selection on
// one column, aggregation of another).

// N-ary storage model: row-major interleaved.
class RowLayout {
 public:
  explicit RowLayout(size_t num_columns) : num_columns_(num_columns) {}

  void AppendRow(const int64_t* values);
  void GetRow(size_t r, int64_t* out) const;
  void Update(size_t r, size_t c, int64_t v) { data_[r * num_columns_ + c] = v; }
  int64_t Get(size_t r, size_t c) const { return data_[r * num_columns_ + c]; }

  int64_t SumColumn(size_t c) const;
  // SUM(sum_col) WHERE filter_col < threshold.
  int64_t SumWhere(size_t filter_col, int64_t threshold, size_t sum_col) const;

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return num_columns_; }

 private:
  size_t num_columns_;
  size_t num_rows_ = 0;
  std::vector<int64_t> data_;
};

// Decomposition storage model: one contiguous array per column.
class ColumnLayout {
 public:
  explicit ColumnLayout(size_t num_columns) : cols_(num_columns) {}

  void AppendRow(const int64_t* values);
  void GetRow(size_t r, int64_t* out) const;
  void Update(size_t r, size_t c, int64_t v) { cols_[c][r] = v; }
  int64_t Get(size_t r, size_t c) const { return cols_[c][r]; }

  int64_t SumColumn(size_t c) const;
  int64_t SumWhere(size_t filter_col, int64_t threshold, size_t sum_col) const;

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return cols_.size(); }

 private:
  std::vector<std::vector<int64_t>> cols_;
  size_t num_rows_ = 0;
};

// Column-grouped (hybrid vertically partitioned) layout, after Jindal et
// al. [17] and data morphing [11]: columns that are co-accessed are stored
// interleaved within a group; groups are stored separately. With one group
// per column this degenerates to DSM; with a single group it is NSM. The
// E1 benchmark uses it to show the middle of the layout spectrum: scans
// touching exactly one group run at columnar speed, scans spanning groups
// pay partial-row overfetch.
class GroupedLayout {
 public:
  // `groups` partitions [0, num_columns): e.g. {{0,1},{2,3,4}}.
  GroupedLayout(size_t num_columns, std::vector<std::vector<int>> groups);

  void AppendRow(const int64_t* values);
  void GetRow(size_t r, int64_t* out) const;
  void Update(size_t r, size_t c, int64_t v);
  int64_t Get(size_t r, size_t c) const;

  int64_t SumColumn(size_t c) const;
  int64_t SumWhere(size_t filter_col, int64_t threshold, size_t sum_col) const;

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return column_group_.size(); }
  // Which group column c lives in, and at which offset inside the group.
  int group_of(size_t c) const { return column_group_[c]; }

 private:
  struct Group {
    std::vector<int> columns;       // schema columns in this group
    std::vector<int64_t> data;      // interleaved rows of the group
  };

  std::vector<Group> groups_;
  std::vector<int> column_group_;   // column -> group index
  std::vector<int> column_offset_;  // column -> offset within its group row
  size_t num_rows_ = 0;
};

// Data morphing [11]: derives a column grouping from an observed query
// workload. Each workload entry is the set of columns one query touches;
// columns that are frequently co-accessed end up in the same group, so the
// resulting GroupedLayout serves the workload with minimal overfetch.
//
// Greedy agglomerative scheme: start with singleton groups, repeatedly
// merge the pair of groups with the highest co-access affinity (queries
// touching columns in both, normalized by merged width), stop when no pair
// clears `min_affinity` or groups would exceed `max_group_width`.
std::vector<std::vector<int>> ChooseColumnGroups(
    size_t num_columns, const std::vector<std::vector<int>>& query_columns,
    double min_affinity = 0.25, size_t max_group_width = 4);

// PAX: pages of `page_bytes`, each divided into per-column minipages.
class PaxLayout {
 public:
  explicit PaxLayout(size_t num_columns, size_t page_bytes = 16 * 1024);

  void AppendRow(const int64_t* values);
  void GetRow(size_t r, int64_t* out) const;
  void Update(size_t r, size_t c, int64_t v);
  int64_t Get(size_t r, size_t c) const;

  int64_t SumColumn(size_t c) const;
  int64_t SumWhere(size_t filter_col, int64_t threshold, size_t sum_col) const;

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return num_columns_; }
  size_t rows_per_page() const { return rows_per_page_; }

 private:
  struct Page {
    // Minipage for column c occupies [c * rows_per_page, (c+1) * rows_per_page).
    std::vector<int64_t> data;
    size_t used = 0;  // rows filled
  };

  size_t num_columns_;
  size_t rows_per_page_;
  size_t num_rows_ = 0;
  std::vector<Page> pages_;
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_PAX_PAGE_H_
