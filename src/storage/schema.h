#ifndef OLTAP_STORAGE_SCHEMA_H_
#define OLTAP_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace oltap {

// A column definition within a table schema.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
  bool nullable = true;
};

// Immutable table schema: ordered column definitions plus the primary-key
// column set. All storage engines, the planner, and the workload generators
// share this.
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<ColumnDef> columns, std::vector<int> key_columns = {});

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  // Index of `name`, or -1.
  int FindColumn(const std::string& name) const;

  // Primary-key column indices (empty = no declared key; row store then
  // keys on an internal sequence).
  const std::vector<int>& key_columns() const { return key_columns_; }
  bool HasKey() const { return !key_columns_.empty(); }

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::vector<int> key_columns_;
  std::unordered_map<std::string, int> by_name_;
};

// Convenience builder used by tests, examples, and workload schemas.
class SchemaBuilder {
 public:
  SchemaBuilder& AddInt64(const std::string& name, bool nullable = true) {
    cols_.push_back({name, ValueType::kInt64, nullable});
    return *this;
  }
  SchemaBuilder& AddDouble(const std::string& name, bool nullable = true) {
    cols_.push_back({name, ValueType::kDouble, nullable});
    return *this;
  }
  SchemaBuilder& AddString(const std::string& name, bool nullable = true) {
    cols_.push_back({name, ValueType::kString, nullable});
    return *this;
  }
  // Declares the primary key by column names (must already be added).
  SchemaBuilder& SetKey(const std::vector<std::string>& names);

  Schema Build() const { return Schema(cols_, key_); }

 private:
  std::vector<ColumnDef> cols_;
  std::vector<int> key_;
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_SCHEMA_H_
