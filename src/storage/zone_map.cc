#include "storage/zone_map.h"

#include <algorithm>

#include "common/logging.h"

namespace oltap {

template <typename T>
ZoneMap ZoneMap::BuildImpl(const std::vector<T>& values,
                           const BitVector* nulls, size_t zone_rows) {
  OLTAP_CHECK(zone_rows > 0);
  ZoneMap zm;
  zm.zone_rows_ = zone_rows;
  size_t n = values.size();
  zm.zones_.resize((n + zone_rows - 1) / zone_rows);
  for (size_t i = 0; i < n; ++i) {
    if (nulls != nullptr && nulls->Get(i)) continue;
    Zone& z = zm.zones_[i / zone_rows];
    double v = static_cast<double>(values[i]);
    if (!z.has_value) {
      z.min = z.max = v;
      z.has_value = true;
    } else {
      z.min = std::min(z.min, v);
      z.max = std::max(z.max, v);
    }
  }
  return zm;
}

ZoneMap ZoneMap::Build(const std::vector<int64_t>& values,
                       const BitVector* nulls, size_t zone_rows) {
  return BuildImpl(values, nulls, zone_rows);
}

ZoneMap ZoneMap::BuildFromCodes(const std::vector<uint32_t>& codes,
                                const BitVector* nulls, size_t zone_rows) {
  return BuildImpl(codes, nulls, zone_rows);
}

ZoneMap ZoneMap::BuildFromDoubles(const std::vector<double>& values,
                                  const BitVector* nulls, size_t zone_rows) {
  return BuildImpl(values, nulls, zone_rows);
}

bool ZoneMap::ZoneMayMatch(size_t z, CompareOp op, double constant) const {
  OLTAP_DCHECK(z < zones_.size());
  const Zone& zone = zones_[z];
  if (!zone.has_value) return false;  // all nulls: no comparison matches
  switch (op) {
    case CompareOp::kEq:
      return zone.min <= constant && constant <= zone.max;
    case CompareOp::kNe:
      // Only prunable if every value equals the constant.
      return !(zone.min == constant && zone.max == constant);
    case CompareOp::kLt:
      return zone.min < constant;
    case CompareOp::kLe:
      return zone.min <= constant;
    case CompareOp::kGt:
      return zone.max > constant;
    case CompareOp::kGe:
      return zone.max >= constant;
  }
  return true;
}

bool ZoneMap::AnyZoneMayMatch(CompareOp op, double constant) const {
  for (size_t z = 0; z < zones_.size(); ++z) {
    if (ZoneMayMatch(z, op, constant)) return true;
  }
  return false;
}

bool ZoneMap::GlobalBounds(double* min, double* max) const {
  bool any = false;
  for (const Zone& z : zones_) {
    if (!z.has_value) continue;
    if (!any) {
      *min = z.min;
      *max = z.max;
      any = true;
    } else {
      *min = std::min(*min, z.min);
      *max = std::max(*max, z.max);
    }
  }
  return any;
}

}  // namespace oltap
