#ifndef OLTAP_STORAGE_CATALOG_H_
#define OLTAP_STORAGE_CATALOG_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace oltap {

namespace opt {
struct TableStats;  // opt/stats.h — the catalog only stores the handle
}  // namespace opt

// Name → table registry shared by the transaction manager, planner, and
// workload drivers. Table objects are stable for the catalog's lifetime
// (DROP is intentionally unsupported: none of the surveyed experiments
// needs it and it would complicate snapshot pinning for little value).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status CreateTable(const std::string& name, Schema schema,
                     TableFormat format) {
    std::unique_lock lock(mu_);
    auto [it, inserted] = tables_.emplace(
        name, std::make_unique<Table>(name, std::move(schema), format));
    if (!inserted) return Status::AlreadyExists("table exists: " + name);
    return Status::OK();
  }

  // Narrow escape hatch for failed CREATE MATERIALIZED VIEW cleanup ONLY:
  // removes a table that was just created and never handed out. General
  // DROP stays unsupported (Table pointers are assumed stable).
  void DropTable(const std::string& name) {
    std::unique_lock lock(mu_);
    tables_.erase(name);
    stats_.erase(name);
  }

  Table* GetTable(const std::string& name) const {
    std::shared_lock lock(mu_);
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : it->second.get();
  }

  std::vector<std::string> TableNames() const {
    std::shared_lock lock(mu_);
    std::vector<std::string> names;
    names.reserve(tables_.size());
    for (const auto& [name, table] : tables_) names.push_back(name);
    return names;
  }

  std::vector<Table*> AllTables() const {
    std::shared_lock lock(mu_);
    std::vector<Table*> out;
    out.reserve(tables_.size());
    for (const auto& [name, table] : tables_) out.push_back(table.get());
    return out;
  }

  // Optimizer statistics attached by ANALYZE. Snapshots are immutable;
  // readers hold them by shared_ptr so a concurrent re-ANALYZE never
  // invalidates an in-flight plan.
  void SetTableStats(const std::string& name,
                     std::shared_ptr<const opt::TableStats> stats) {
    std::unique_lock lock(mu_);
    stats_[name] = std::move(stats);
  }

  std::shared_ptr<const opt::TableStats> GetTableStats(
      const std::string& name) const {
    std::shared_lock lock(mu_);
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : it->second;
  }

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::shared_ptr<const opt::TableStats>>
      stats_;
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_CATALOG_H_
