#ifndef OLTAP_STORAGE_DICTIONARY_H_
#define OLTAP_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oltap {

// Order-preserving string dictionary (the HANA / DB2 BLU design): distinct
// values are stored sorted, so code order == value order and range
// predicates on strings rewrite to integer code-range predicates that the
// packed-scan kernels evaluate without decompression.
//
// Main-store dictionaries are immutable; the delta store keeps raw values
// and dictionaries are rebuilt during merge (the standard delta/main
// lifecycle).
class Dictionary {
 public:
  Dictionary() = default;

  // `distinct_sorted` must be sorted and deduplicated (CHECKed in debug).
  static Dictionary FromSortedDistinct(std::vector<std::string> distinct_sorted);

  // Builds from arbitrary values: sorts, dedups, and returns the dictionary.
  static Dictionary Build(const std::vector<std::string>& values);

  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }
  bool empty() const { return values_.empty(); }

  std::string_view Decode(uint32_t code) const { return values_[code]; }

  // Exact code of `s`, or -1 if not in the dictionary.
  int64_t Encode(std::string_view s) const;

  // First code whose value >= s (== size() if none). With UpperBound this
  // turns any comparison predicate into a code range.
  uint32_t LowerBound(std::string_view s) const;
  // First code whose value > s.
  uint32_t UpperBound(std::string_view s) const;

  // Approximate heap footprint, for merge accounting.
  size_t MemoryBytes() const;

 private:
  std::vector<std::string> values_;
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_DICTIONARY_H_
