#ifndef OLTAP_STORAGE_CHANGE_LOG_H_
#define OLTAP_STORAGE_CHANGE_LOG_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "storage/row.h"

namespace oltap {

// Logical change log a Table appends to once a subscriber (the view
// maintainer) activates it. Every committed write becomes one or two
// entries: insert -> kInsert(new row); delete -> kDelete(pre-image);
// update -> kDelete(pre-image) then kInsert(new row), both stamped with
// the same commit timestamp. Consumers pull half-open timestamp windows
// (since, through] and trim what every subscriber has applied.
//
// Entries are appended during the commit apply phase, i.e. strictly
// before the commit becomes visible. Once the visible watermark reaches
// W, every change with ts <= W is therefore present — a consumer that
// collects through its own snapshot timestamp sees a complete prefix.
class ChangeLog {
 public:
  enum class Kind : uint8_t { kInsert, kDelete };

  struct Change {
    Kind kind;
    Row row;        // new row for kInsert, pre-image for kDelete
    Timestamp ts;   // commit timestamp
    int64_t wall_us; // wall-clock at append, for staleness gauges
  };

  void Append(Change c) {
    std::lock_guard<std::mutex> lock(mu_);
    log_.push_back(std::move(c));
  }

  // Appends all changes with since < ts <= through, in append order.
  void Collect(Timestamp since, Timestamp through,
               std::vector<Change>* out) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Change& c : log_) {
      if (c.ts > since && c.ts <= through) out->push_back(c);
    }
  }

  // Drops every entry with ts <= through (all subscribers applied them).
  // Entries are appended in apply order, which tracks but does not equal
  // timestamp order across independent commits, so this filters rather
  // than popping a prefix.
  void TrimThrough(Timestamp through) {
    std::lock_guard<std::mutex> lock(mu_);
    log_.erase(std::remove_if(
                   log_.begin(), log_.end(),
                   [through](const Change& c) { return c.ts <= through; }),
               log_.end());
  }

  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_.size();
  }

  // Entries a subscriber with cursor `since` has not applied yet.
  size_t PendingSince(Timestamp since) const {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const Change& c : log_) {
      if (c.ts > since) ++n;
    }
    return n;
  }

  // Age in microseconds of the oldest entry past `since`; 0 when none.
  int64_t OldestPendingMicrosSince(Timestamp since, int64_t now_us) const {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t oldest = 0;
    for (const Change& c : log_) {
      if (c.ts > since && (oldest == 0 || c.wall_us < oldest)) {
        oldest = c.wall_us;
      }
    }
    if (oldest == 0) return 0;
    int64_t age = now_us - oldest;
    return age > 0 ? age : 0;
  }

 private:
  mutable std::mutex mu_;
  std::deque<Change> log_;
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_CHANGE_LOG_H_
