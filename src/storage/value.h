#ifndef OLTAP_STORAGE_VALUE_H_
#define OLTAP_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/hash.h"

namespace oltap {

// Column types supported by the engine. Kept deliberately small: the
// surveyed systems' architectural trade-offs (layout, compression, MVCC,
// scans) are fully exercised by integers, doubles, and strings.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

const char* ValueTypeToString(ValueType t);

// A single typed cell. Used on OLTP paths (point reads/writes, row store)
// and as the scalar currency of the expression interpreter; analytic scans
// operate on columnar batches instead and never materialize Values per cell.
class Value {
 public:
  Value() : type_(ValueType::kInt64), null_(true), i64_(0), f64_(0) {}

  static Value Null(ValueType t = ValueType::kInt64) {
    Value v;
    v.type_ = t;
    return v;
  }
  static Value Int64(int64_t x) {
    Value v;
    v.type_ = ValueType::kInt64;
    v.null_ = false;
    v.i64_ = x;
    return v;
  }
  static Value Double(double x) {
    Value v;
    v.type_ = ValueType::kDouble;
    v.null_ = false;
    v.f64_ = x;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = ValueType::kString;
    v.null_ = false;
    v.str_ = std::move(s);
    return v;
  }
  static Value Bool(bool b) { return Int64(b ? 1 : 0); }

  ValueType type() const { return type_; }
  bool is_null() const { return null_; }

  int64_t AsInt64() const { return i64_; }
  double AsDouble() const {
    return type_ == ValueType::kDouble ? f64_ : static_cast<double>(i64_);
  }
  const std::string& AsString() const { return str_; }
  std::string_view AsStringView() const { return str_; }
  bool AsBool() const { return !null_ && AsInt64() != 0; }

  // Total order: NULL < everything; cross-numeric comparisons promote to
  // double; comparing string to numeric is a caller bug (DCHECKed).
  int Compare(const Value& other) const;

  uint64_t Hash() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return a.Compare(b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }
  friend bool operator<=(const Value& a, const Value& b) {
    return a.Compare(b) <= 0;
  }
  friend bool operator>(const Value& a, const Value& b) {
    return a.Compare(b) > 0;
  }
  friend bool operator>=(const Value& a, const Value& b) {
    return a.Compare(b) >= 0;
  }

 private:
  ValueType type_;
  bool null_;
  int64_t i64_;
  double f64_;
  std::string str_;
};

}  // namespace oltap

#endif  // OLTAP_STORAGE_VALUE_H_
