#include "workload/telemetry.h"

#include "common/logging.h"
#include "txn/transaction_manager.h"

namespace oltap {

TelemetryWorkload::TelemetryWorkload(Database* db, const Config& config)
    : db_(db), config_(config), rng_(config.seed) {
  static const char* kMetricNames[] = {
      "cpu.util",      "mem.used",      "disk.read_bps", "disk.write_bps",
      "net.rx_bps",    "net.tx_bps",    "io.latency_ms", "gc.pause_ms",
      "req.rate",      "err.rate",      "queue.depth",   "fan.rpm"};
  for (int h = 0; h < config_.num_hosts; ++h) {
    hosts_.push_back("host-" + std::to_string(h));
  }
  for (int m = 0; m < config_.num_metrics && m < 12; ++m) {
    metrics_.push_back(kMetricNames[m]);
  }
}

Status TelemetryWorkload::CreateTable() {
  return db_->catalog()->CreateTable(
      "metrics",
      SchemaBuilder()
          .AddInt64("seq", false)
          .AddInt64("ts", false)
          .AddString("host", false)
          .AddString("metric", false)
          .AddDouble("value")
          .SetKey({"seq"})
          .Build(),
      config_.format);
}

Status TelemetryWorkload::IngestBatch(int64_t base_ts, int count) {
  Table* metrics = db_->catalog()->GetTable("metrics");
  OLTAP_CHECK(metrics != nullptr);
  auto txn = db_->txn_manager()->Begin();
  for (int i = 0; i < count; ++i) {
    const std::string& host =
        hosts_[rng_.Zipf(hosts_.size(), 0.9)];
    const std::string& metric = metrics_[rng_.Uniform(metrics_.size())];
    OLTAP_RETURN_NOT_OK(txn->Insert(
        metrics, Row{Value::Int64(next_seq_++), Value::Int64(base_ts + i),
                     Value::String(host), Value::String(metric),
                     Value::Double(rng_.NextDouble() * 100.0)}));
  }
  OLTAP_RETURN_NOT_OK(db_->txn_manager()->Commit(txn.get()));
  rows_ingested_ += count;
  return Status::OK();
}

std::string TelemetryWorkload::AvgByMetricSince(int64_t ts_lo) {
  return "SELECT metric, COUNT(*) AS samples, AVG(value) AS avg_value, "
         "MAX(value) AS max_value FROM metrics WHERE ts >= " +
         std::to_string(ts_lo) +
         " GROUP BY metric ORDER BY avg_value DESC";
}

std::string TelemetryWorkload::HottestHosts(int64_t ts_lo, int limit) {
  return "SELECT host, COUNT(*) AS samples, AVG(value) AS avg_value "
         "FROM metrics WHERE ts >= " +
         std::to_string(ts_lo) +
         " GROUP BY host ORDER BY avg_value DESC LIMIT " +
         std::to_string(limit);
}

std::string TelemetryWorkload::MetricHistogram(const std::string& metric) {
  return "SELECT host, COUNT(*) AS samples FROM metrics WHERE metric = '" +
         metric + "' GROUP BY host ORDER BY samples DESC LIMIT 10";
}

}  // namespace oltap
