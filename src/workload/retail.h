#ifndef OLTAP_WORKLOAD_RETAIL_H_
#define OLTAP_WORKLOAD_RETAIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sql/session.h"

namespace oltap {

// Social-media retail analytics — the tutorial's second motivating
// scenario: a stream of product mentions with sentiment scores arrives
// from social platforms, and merchandisers want *immediate* surge
// detection to catch product trends while they are happening.
//
// Schema: mentions(seq PK, ts, product, region, sentiment). The generator
// can inject a "surge" (one product spiking in one region) to give the
// trend queries something to find.
class RetailWorkload {
 public:
  struct Config {
    int num_products = 200;
    int num_regions = 8;
    TableFormat format = TableFormat::kColumn;
    uint64_t seed = 11;
  };

  RetailWorkload(Database* db, const Config& config);

  Status CreateTable();

  // Ingests `count` mentions at logical time `base_ts`. If `surge_product`
  // >= 0, ~30% of the batch targets that product (a viral spike).
  Status IngestBatch(int64_t base_ts, int count, int surge_product = -1);

  // Trending products within a recent window.
  static std::string TrendingSince(int64_t ts_lo, int limit);
  // Sentiment breakdown per region for one product.
  static std::string ProductByRegion(int product_id);
  // Surge score: mention count in the recent window.
  static std::string SurgeScore(int64_t recent_lo, int limit);

  int64_t rows_ingested() const { return rows_ingested_; }
  std::string product_name(int id) const {
    return "product-" + std::to_string(id);
  }

 private:
  Database* db_;
  Config config_;
  Rng rng_;
  int64_t next_seq_ = 1;
  int64_t rows_ingested_ = 0;
};

}  // namespace oltap

#endif  // OLTAP_WORKLOAD_RETAIL_H_
