#include "workload/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/hash.h"
#include "sched/merge_daemon.h"
#include "storage/column_store.h"
#include "storage/freshness.h"
#include "txn/checkpoint_daemon.h"
#include "txn/log_writer.h"
#include "txn/wal.h"

namespace oltap {

const char* TxnKindToString(TxnKind k) {
  switch (k) {
    case TxnKind::kNewOrder:
      return "new_order";
    case TxnKind::kPayment:
      return "payment";
    case TxnKind::kOrderStatus:
      return "order_status";
    case TxnKind::kDelivery:
      return "delivery";
    case TxnKind::kStockLevel:
      return "stock_level";
  }
  return "unknown";
}

ConcurrentDriver::ConcurrentDriver(CHBenchmark* bench,
                                   const DriverOptions& options)
    : bench_(bench), options_(options) {}

uint64_t ConcurrentDriver::OpSeed(uint64_t driver_seed, size_t worker,
                                  size_t index) {
  return Mix64(driver_seed ^ Mix64((static_cast<uint64_t>(worker) << 32) |
                                   static_cast<uint64_t>(index)));
}

TxnKind ConcurrentDriver::KindFor(uint64_t op_seed) {
  // First draw of the op's private Rng, mapped through the TPC-C mix
  // (45/43/4/4/4). ExecuteOp consumes the same draw before the argument
  // draws, so stream construction and execution stay in lockstep.
  Rng rng(op_seed);
  uint64_t pick = rng.Uniform(100);
  if (pick < 45) return TxnKind::kNewOrder;
  if (pick < 88) return TxnKind::kPayment;
  if (pick < 92) return TxnKind::kOrderStatus;
  if (pick < 96) return TxnKind::kDelivery;
  return TxnKind::kStockLevel;
}

std::vector<TxnOp> ConcurrentDriver::MakeStream(uint64_t driver_seed,
                                                size_t worker, size_t ops) {
  std::vector<TxnOp> stream;
  stream.reserve(ops);
  for (size_t i = 0; i < ops; ++i) {
    uint64_t s = OpSeed(driver_seed, worker, i);
    stream.push_back(TxnOp{KindFor(s), s});
  }
  return stream;
}

void ConcurrentDriver::ExecuteOp(const TxnOp& op, int64_t home_w,
                                 WorkerResult* result) {
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    // Fresh Rng per attempt: a retried op replays the *same* arguments
    // instead of continuing the stream (determinism under aborts).
    Rng rng(op.seed);
    (void)rng.Uniform(100);  // the kind draw; already resolved into op.kind
    Status st;
    NewOrderAck ack;
    switch (op.kind) {
      case TxnKind::kNewOrder:
        st = bench_->NewOrder(&rng, home_w, &ack);
        if (st.ok()) {
          ++result->stats.new_order;
          if (options_.audit_commits) result->acks.push_back(ack);
        }
        break;
      case TxnKind::kPayment:
        st = bench_->Payment(&rng, home_w);
        if (st.ok()) ++result->stats.payment;
        break;
      case TxnKind::kOrderStatus:
        st = bench_->OrderStatus(&rng, home_w);
        if (st.ok()) ++result->stats.order_status;
        break;
      case TxnKind::kDelivery:
        st = bench_->Delivery(&rng, home_w);
        if (st.ok()) ++result->stats.delivery;
        break;
      case TxnKind::kStockLevel:
        st = bench_->StockLevel(&rng, home_w);
        if (st.ok()) ++result->stats.stock_level;
        break;
    }
    if (st.ok()) return;
    if (st.code() == StatusCode::kAborted) {
      ++result->stats.aborts;
      continue;
    }
    ++result->failed;
    return;
  }
  // Every attempt aborted: count the op as failed so it still shows up in
  // the ledger (total committed + failed == ops issued) instead of
  // vanishing from every counter except aborts.
  ++result->failed;
}

DriverReport ConcurrentDriver::Run() {
  const size_t wm_workers =
      options_.wm_workers != 0 ? options_.wm_workers
                               : options_.oltp_workers + options_.olap_workers;
  WorkloadManager::Options wm_opts;
  wm_opts.num_workers = wm_workers;
  wm_opts.policy = options_.policy;
  wm_opts.reserved_oltp_workers =
      std::min(options_.oltp_workers, wm_workers > 1 ? wm_workers - 1 : 1);
  wm_opts.max_parallel_dop = options_.olap_max_dop;
  wm_opts.degraded_dop = options_.degraded_dop;
  wm_opts.olap_degrade_threshold = options_.olap_degrade_threshold;
  WorkloadManager wm(wm_opts);

  std::unique_ptr<MergeDaemon> merger;
  if (options_.run_merge_daemon) {
    MergeDaemon::Options mopts;
    mopts.delta_row_threshold = options_.merge_delta_threshold;
    mopts.interval_ms = options_.merge_interval_ms;
    mopts.autostart = false;
    merger = std::make_unique<MergeDaemon>(bench_->db()->catalog(),
                                           bench_->db()->txn_manager(), mopts);
    // Ticks also maintain DEFERRED materialized views and respect the
    // view GC horizon.
    merger->set_view_manager(bench_->db()->view_manager());
    merger->Start();
  }

  const int64_t duration_us = options_.duration_ms * 1000;
  const int64_t num_warehouses = bench_->config().warehouses;

  DriverReport report;
  report.workers.resize(options_.oltp_workers);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> olap_completed{0};
  std::atomic<uint64_t> olap_failed{0};

  // Group commit for the duration of the run: the driver owns the writer,
  // the transaction manager routes commit durability through it.
  Wal* wal = bench_->db()->wal();
  std::unique_ptr<LogWriter> log_writer;
  if (options_.group_commit && wal != nullptr) {
    LogWriter::Options lw_opts;
    lw_opts.max_batch = options_.group_max_batch;
    lw_opts.persist_interval_us = options_.group_persist_interval_us;
    log_writer = std::make_unique<LogWriter>(wal, lw_opts);
    bench_->db()->txn_manager()->SetLogWriter(log_writer.get());
  }

  // Online checkpointing for the run: the database's own daemon (so SQL
  // CHECKPOINT and SHOW STATS see the same instance), armed with the
  // driver's triggers. Started after the log writer is installed, so the
  // unacked-batch truncation pin is live from the first round.
  CheckpointDaemon* checkpointer = nullptr;
  if (options_.run_checkpoint_daemon) {
    if (wal != nullptr && options_.wal_segment_bytes > 0) {
      wal->set_segment_bytes(options_.wal_segment_bytes);
    }
    checkpointer = bench_->db()->EnsureCheckpointer();
    checkpointer->set_interval_us(options_.checkpoint_interval_us);
    checkpointer->set_wal_trigger_bytes(options_.checkpoint_wal_trigger_bytes);
    checkpointer->set_truncate_wal(options_.checkpoint_truncate_wal);
    checkpointer->Start();
  }

  // A sealed WAL dooms every future commit; clients that observe it stop
  // issuing ops and the run reports a clear abort instead of grinding
  // every remaining op through its retry budget.
  std::atomic<bool> run_aborted{false};
  auto abort_run_if_sealed = [&] {
    if (!options_.abort_on_sealed_wal || wal == nullptr) return false;
    if (!wal->sealed()) return false;
    if (!run_aborted.exchange(true, std::memory_order_acq_rel)) {
      report.abort_reason =
          "WAL sealed mid-run (torn append): later commits cannot become "
          "durable";
    }
    return true;
  };

  Stopwatch sw;

  // Closed-loop OLTP clients: one in-flight transaction each, submitted
  // through admission control, then think time.
  std::vector<std::thread> oltp_threads;
  oltp_threads.reserve(options_.oltp_workers);
  for (size_t worker = 0; worker < options_.oltp_workers; ++worker) {
    oltp_threads.emplace_back([&, worker] {
      WorkerResult* result = &report.workers[worker];
      int64_t home_w = 0;
      if (options_.bind_home_warehouse) {
        home_w = static_cast<int64_t>(worker % num_warehouses) + 1;
      }
      for (size_t index = 0;; ++index) {
        if (run_aborted.load(std::memory_order_acquire)) break;
        if (duration_us > 0) {
          if (sw.ElapsedMicros() >= duration_us) break;
        } else if (index >= options_.ops_per_worker) {
          break;
        }
        uint64_t s = OpSeed(options_.seed, worker, index);
        TxnOp op{KindFor(s), s};
        bool executed = false;
        std::future<Status> done =
            wm.Submit(QueryClass::kOltp, [&, op] {
              executed = true;
              ExecuteOp(op, home_w, result);
            });
        Status st = done.get();
        ++result->ops_issued;
        if (!st.ok() && !executed) ++result->failed;
        if (abort_run_if_sealed()) break;
        if (options_.think_time_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(options_.think_time_us));
        }
      }
    });
  }

  // OLAP clients: cycle the CH query set (staggered starting points so two
  // clients do not run the same query in lockstep). At least one query per
  // client even in very short fixed-ops runs.
  const size_t num_queries = CHBenchmark::Queries().size();
  std::vector<std::thread> olap_threads;
  olap_threads.reserve(options_.olap_workers);
  for (size_t worker = 0; worker < options_.olap_workers; ++worker) {
    olap_threads.emplace_back([&, worker] {
      size_t qi = (worker * 7) % num_queries;
      do {
        size_t q = qi;
        // Budgeted submission: the admission grant caps the query's
        // degree of parallelism (degraded admissions run serial), so
        // overload throttles analytic DOP before shedding.
        WorkloadManager::Submission sub = wm.SubmitBudgeted(
            QueryClass::kOlap, WorkloadManager::QuerySpec{},
            [&, q](const CancellationToken&, const QueryGrant& grant) {
              auto res = bench_->RunQuery(q, &grant);
              return res.ok() ? Status::OK() : res.status();
            });
        Status st = sub.done.get();
        if (st.ok()) {
          olap_completed.fetch_add(1, std::memory_order_relaxed);
        } else {
          olap_failed.fetch_add(1, std::memory_order_relaxed);
        }
        qi = (qi + 1) % num_queries;
        if (duration_us > 0 && sw.ElapsedMicros() >= duration_us) break;
      } while (!stop.load(std::memory_order_acquire) &&
               !run_aborted.load(std::memory_order_acquire));
    });
  }

  for (auto& t : oltp_threads) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : olap_threads) t.join();
  wm.Drain();

  report.duration_s = sw.ElapsedSeconds();

  if (merger != nullptr) {
    merger->Stop();
    report.merges = merger->merges_performed();
  }

  // Checkpointer stops after the merge daemon (its snapshot pin is gone,
  // so a final merge round is unconstrained) and before the log writer
  // (truncation only drops segments below the writer's pending pin, but
  // stopping in this order means the last round sees a quiesced queue).
  if (checkpointer != nullptr) {
    checkpointer->Stop();
    CheckpointDaemon::Stats cs = checkpointer->stats();
    report.checkpoints = cs.written;
    report.checkpoint_age_us =
        checkpointer->AgeMicros(SystemClock::Get()->NowMicros());
    report.wal_truncated_bytes = cs.truncated_bytes;
  }
  if (wal != nullptr) {
    report.wal_segments = wal->num_segments();
    report.wal_retained_bytes = wal->size();
  }

  // Shutdown ordering for group commit: clients joined, admission queues
  // drained, merge daemon stopped — nothing can submit a commit anymore —
  // so the writer's final batch drains (or deterministically fails, if
  // the log sealed) before it is detached and destroyed.
  if (log_writer != nullptr) {
    log_writer->Stop();
    bench_->db()->txn_manager()->SetLogWriter(nullptr);
    log_writer.reset();
  }
  report.aborted = run_aborted.load(std::memory_order_acquire);

  for (const WorkerResult& w : report.workers) {
    report.txns.Accumulate(w.stats);
    report.oltp_failed += w.failed;
  }
  report.olap_completed = olap_completed.load(std::memory_order_relaxed);
  report.olap_failed = olap_failed.load(std::memory_order_relaxed);
  if (report.duration_s > 0) {
    report.oltp_txn_per_s = report.txns.total() / report.duration_s;
    report.olap_queries_per_s = report.olap_completed / report.duration_s;
  }
  uint64_t attempts = report.txns.total() + report.txns.aborts;
  report.abort_rate =
      attempts > 0 ? static_cast<double>(report.txns.aborts) / attempts : 0;
  report.oltp_latency = wm.StatsFor(QueryClass::kOltp);
  report.olap_latency = wm.StatsFor(QueryClass::kOlap);

  // Freshness lag at run end: oldest unmerged delta across the TPC-C
  // tables (same quantity merge_daemon / SHOW STATS publish).
  int64_t now_us = SystemClock::Get()->NowMicros();
  report.freshness_lag_us =
      ProbeFreshness(*bench_->db()->catalog(), now_us).max_lag_us;
  return report;
}

}  // namespace oltap
