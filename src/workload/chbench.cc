#include "workload/chbench.h"

#include <algorithm>

#include "common/logging.h"
#include "txn/transaction_manager.h"

namespace oltap {
namespace {

// Column indices per table, in schema order (kept in one place so the
// native transactions stay readable).
namespace wh {
enum { kId, kName, kState, kTax, kYtd };
}
namespace dist_col {
enum { kWId, kId, kName, kTax, kYtd, kNextOId };
}
namespace cust {
enum {
  kWId,
  kDId,
  kId,
  kFirst,
  kLast,
  kState,
  kCredit,
  kDiscount,
  kBalance,
  kYtdPayment,
  kPaymentCnt
};
}
namespace hist {
enum { kCWId, kCDId, kCId, kWId, kDId, kDate, kAmount };
}
namespace nord {
enum { kWId, kDId, kOId };
}
namespace ord {
enum { kWId, kDId, kId, kCId, kEntryD, kCarrierId, kOlCnt };
}
namespace oline {
enum {
  kWId,
  kDId,
  kOId,
  kNumber,
  kIId,
  kSupplyWId,
  kDeliveryD,
  kQuantity,
  kAmount
};
}
namespace item_col {
enum { kId, kName, kPrice, kData };
}
namespace stock_col {
enum { kWId, kIId, kQuantity, kYtd, kOrderCnt, kRemoteCnt };
}

// Encodes a primary key for `table` from the key values in declared key
// order.
std::string MakeKey(const Table* table, const std::vector<Value>& key_vals) {
  const Schema& schema = table->schema();
  OLTAP_DCHECK(schema.key_columns().size() == key_vals.size());
  Row row(schema.num_columns());
  for (size_t i = 0; i < key_vals.size(); ++i) {
    row[schema.key_columns()[i]] = key_vals[i];
  }
  return EncodeKeyColumns(row, schema.key_columns());
}

constexpr int64_t kLoadDate = 1'000'000;
constexpr int64_t kNowDate = 2'000'000;

const char* kStates[] = {"CA", "NY", "TX", "WA", "IL",
                         "MA", "OR", "FL", "CO", "GA"};

}  // namespace

CHBenchmark::CHBenchmark(Database* db, const CHConfig& config)
    : db_(db), config_(config) {
  delivery_cursor_.reserve(static_cast<size_t>(config_.warehouses) *
                           config_.districts_per_warehouse);
  for (int i = 0;
       i < config_.warehouses * config_.districts_per_warehouse; ++i) {
    delivery_cursor_.push_back(std::make_unique<std::atomic<int64_t>>(1));
  }
}

Table* CHBenchmark::T(TableId id) const {
  Table* t = tables_[id].load(std::memory_order_acquire);
  if (t != nullptr) return t;
  static const char* kTableNames[kNumTables] = {
      "warehouse", "district",  "customer", "history", "neworder",
      "orders",    "orderline", "item",     "stock"};
  t = db_->catalog()->GetTable(kTableNames[id]);
  OLTAP_CHECK(t != nullptr) << "missing table " << kTableNames[id];
  // Benign race: concurrent resolvers store the same stable pointer.
  tables_[id].store(t, std::memory_order_release);
  return t;
}

Status CHBenchmark::CreateTables() {
  Catalog* cat = db_->catalog();
  TableFormat f = config_.format;
  OLTAP_RETURN_NOT_OK(cat->CreateTable(
      "warehouse",
      SchemaBuilder()
          .AddInt64("w_id", false)
          .AddString("w_name")
          .AddString("w_state")
          .AddDouble("w_tax")
          .AddDouble("w_ytd")
          .SetKey({"w_id"})
          .Build(),
      f));
  OLTAP_RETURN_NOT_OK(cat->CreateTable(
      "district",
      SchemaBuilder()
          .AddInt64("d_w_id", false)
          .AddInt64("d_id", false)
          .AddString("d_name")
          .AddDouble("d_tax")
          .AddDouble("d_ytd")
          .AddInt64("d_next_o_id")
          .SetKey({"d_w_id", "d_id"})
          .Build(),
      f));
  OLTAP_RETURN_NOT_OK(cat->CreateTable(
      "customer",
      SchemaBuilder()
          .AddInt64("c_w_id", false)
          .AddInt64("c_d_id", false)
          .AddInt64("c_id", false)
          .AddString("c_first")
          .AddString("c_last")
          .AddString("c_state")
          .AddString("c_credit")
          .AddDouble("c_discount")
          .AddDouble("c_balance")
          .AddDouble("c_ytd_payment")
          .AddInt64("c_payment_cnt")
          .SetKey({"c_w_id", "c_d_id", "c_id"})
          .Build(),
      f));
  OLTAP_RETURN_NOT_OK(cat->CreateTable(
      "history",
      SchemaBuilder()
          .AddInt64("h_c_w_id")
          .AddInt64("h_c_d_id")
          .AddInt64("h_c_id")
          .AddInt64("h_w_id")
          .AddInt64("h_d_id")
          .AddInt64("h_date")
          .AddDouble("h_amount")
          .Build(),
      f));
  OLTAP_RETURN_NOT_OK(cat->CreateTable(
      "neworder",
      SchemaBuilder()
          .AddInt64("no_w_id", false)
          .AddInt64("no_d_id", false)
          .AddInt64("no_o_id", false)
          .SetKey({"no_w_id", "no_d_id", "no_o_id"})
          .Build(),
      f));
  OLTAP_RETURN_NOT_OK(cat->CreateTable(
      "orders",
      SchemaBuilder()
          .AddInt64("o_w_id", false)
          .AddInt64("o_d_id", false)
          .AddInt64("o_id", false)
          .AddInt64("o_c_id")
          .AddInt64("o_entry_d")
          .AddInt64("o_carrier_id")  // NULL until delivered
          .AddInt64("o_ol_cnt")
          .SetKey({"o_w_id", "o_d_id", "o_id"})
          .Build(),
      f));
  OLTAP_RETURN_NOT_OK(cat->CreateTable(
      "orderline",
      SchemaBuilder()
          .AddInt64("ol_w_id", false)
          .AddInt64("ol_d_id", false)
          .AddInt64("ol_o_id", false)
          .AddInt64("ol_number", false)
          .AddInt64("ol_i_id")
          .AddInt64("ol_supply_w_id")
          .AddInt64("ol_delivery_d")  // NULL until delivered
          .AddInt64("ol_quantity")
          .AddDouble("ol_amount")
          .SetKey({"ol_w_id", "ol_d_id", "ol_o_id", "ol_number"})
          .Build(),
      f));
  OLTAP_RETURN_NOT_OK(cat->CreateTable(
      "item",
      SchemaBuilder()
          .AddInt64("i_id", false)
          .AddString("i_name")
          .AddDouble("i_price")
          .AddString("i_data")
          .SetKey({"i_id"})
          .Build(),
      f));
  OLTAP_RETURN_NOT_OK(cat->CreateTable(
      "stock",
      SchemaBuilder()
          .AddInt64("s_w_id", false)
          .AddInt64("s_i_id", false)
          .AddInt64("s_quantity")
          .AddInt64("s_ytd")
          .AddInt64("s_order_cnt")
          .AddInt64("s_remote_cnt")
          .SetKey({"s_w_id", "s_i_id"})
          .Build(),
      f));
  return Status::OK();
}

Status CHBenchmark::Load() {
  Rng rng(config_.seed);
  const int W = config_.warehouses;
  const int D = config_.districts_per_warehouse;
  const int C = config_.customers_per_district;
  const int I = config_.items;
  const int O = config_.initial_orders_per_district;

  // Items.
  {
    std::vector<Row> rows;
    rows.reserve(I);
    for (int64_t i = 1; i <= I; ++i) {
      rows.push_back(Row{Value::Int64(i),
                         Value::String("item-" + rng.AlphaString(6, 14)),
                         Value::Double(1.0 + rng.NextDouble() * 99.0),
                         Value::String(rng.AlphaString(26, 50))});
    }
    OLTAP_RETURN_NOT_OK(T(kItem)->BulkLoadToMain(rows, 0));
  }
  // Warehouses + stock.
  {
    std::vector<Row> wrows;
    std::vector<Row> srows;
    srows.reserve(static_cast<size_t>(W) * I);
    for (int64_t w = 1; w <= W; ++w) {
      wrows.push_back(Row{Value::Int64(w),
                          Value::String("wh-" + rng.AlphaString(6, 10)),
                          Value::String(kStates[rng.Uniform(10)]),
                          Value::Double(rng.NextDouble() * 0.2),
                          Value::Double(300000.0)});
      for (int64_t i = 1; i <= I; ++i) {
        srows.push_back(Row{Value::Int64(w), Value::Int64(i),
                            Value::Int64(rng.UniformRange(10, 100)),
                            Value::Int64(0), Value::Int64(0),
                            Value::Int64(0)});
      }
    }
    OLTAP_RETURN_NOT_OK(T(kWarehouse)->BulkLoadToMain(wrows, 0));
    OLTAP_RETURN_NOT_OK(T(kStock)->BulkLoadToMain(srows, 0));
  }
  // Districts, customers, orders (+lines, new-orders), history.
  std::vector<Row> drows, crows, hrows, orows, olrows, norows;
  for (int64_t w = 1; w <= W; ++w) {
    for (int64_t d = 1; d <= D; ++d) {
      drows.push_back(Row{Value::Int64(w), Value::Int64(d),
                          Value::String("dist-" + rng.AlphaString(6, 10)),
                          Value::Double(rng.NextDouble() * 0.2),
                          Value::Double(30000.0),
                          Value::Int64(O + 1)});
      for (int64_t c = 1; c <= C; ++c) {
        crows.push_back(Row{Value::Int64(w), Value::Int64(d), Value::Int64(c),
                            Value::String(rng.AlphaString(8, 16)),
                            Value::String("CUST" + rng.DigitString(4)),
                            Value::String(kStates[rng.Uniform(10)]),
                            Value::String(rng.Bernoulli(0.1) ? "BC" : "GC"),
                            Value::Double(rng.NextDouble() * 0.5),
                            Value::Double(-10.0), Value::Double(10.0),
                            Value::Int64(1)});
        hrows.push_back(Row{Value::Int64(w), Value::Int64(d), Value::Int64(c),
                            Value::Int64(w), Value::Int64(d),
                            Value::Int64(kLoadDate), Value::Double(10.0)});
      }
      int64_t first_undelivered =
          1 + static_cast<int64_t>(
                  static_cast<double>(O) * (1.0 - config_.undelivered_fraction));
      DeliveryCursor(w, d).store(first_undelivered);
      for (int64_t o = 1; o <= O; ++o) {
        bool delivered = o < first_undelivered;
        int64_t ol_cnt = rng.UniformRange(5, 15);
        orows.push_back(Row{
            Value::Int64(w), Value::Int64(d), Value::Int64(o),
            Value::Int64(rng.UniformRange(1, C)), Value::Int64(kLoadDate + o),
            delivered ? Value::Int64(rng.UniformRange(1, 10))
                      : Value::Null(ValueType::kInt64),
            Value::Int64(ol_cnt)});
        if (!delivered) {
          norows.push_back(
              Row{Value::Int64(w), Value::Int64(d), Value::Int64(o)});
        }
        for (int64_t l = 1; l <= ol_cnt; ++l) {
          int64_t qty = rng.UniformRange(1, 10);
          olrows.push_back(Row{
              Value::Int64(w), Value::Int64(d), Value::Int64(o),
              Value::Int64(l), Value::Int64(rng.UniformRange(1, I)),
              Value::Int64(w),
              delivered ? Value::Int64(kLoadDate + o + 1)
                        : Value::Null(ValueType::kInt64),
              Value::Int64(qty),
              Value::Double(static_cast<double>(qty) *
                            (1.0 + rng.NextDouble() * 99.0))});
        }
      }
    }
  }
  OLTAP_RETURN_NOT_OK(T(kDistrict)->BulkLoadToMain(drows, 0));
  OLTAP_RETURN_NOT_OK(T(kCustomer)->BulkLoadToMain(crows, 0));
  OLTAP_RETURN_NOT_OK(T(kHistory)->BulkLoadToMain(hrows, 0));
  OLTAP_RETURN_NOT_OK(T(kOrders)->BulkLoadToMain(orows, 0));
  OLTAP_RETURN_NOT_OK(T(kOrderLine)->BulkLoadToMain(olrows, 0));
  OLTAP_RETURN_NOT_OK(T(kNewOrderTable)->BulkLoadToMain(norows, 0));
  return Status::OK();
}

Status CHBenchmark::NewOrder(Rng* rng, int64_t home_w, NewOrderAck* ack) {
  Table* district = T(kDistrict);
  Table* customer = T(kCustomer);
  Table* orders = T(kOrders);
  Table* neworder = T(kNewOrderTable);
  Table* orderline = T(kOrderLine);
  Table* item = T(kItem);
  Table* stock = T(kStock);

  int64_t w = home_w != 0 ? home_w : rng->UniformRange(1, config_.warehouses);
  int64_t d = rng->UniformRange(1, config_.districts_per_warehouse);
  int64_t c = rng->UniformRange(1, config_.customers_per_district);

  auto txn = db_->txn_manager()->Begin();

  Row drow;
  if (!txn->Get(district, MakeKey(district, {Value::Int64(w), Value::Int64(d)}),
                &drow)) {
    return Status::Internal("district missing");
  }
  int64_t o_id = drow[dist_col::kNextOId].AsInt64();
  drow[dist_col::kNextOId] = Value::Int64(o_id + 1);
  OLTAP_RETURN_NOT_OK(txn->Update(district, drow));

  Row crow;
  if (!txn->Get(customer,
                MakeKey(customer, {Value::Int64(w), Value::Int64(d),
                                   Value::Int64(c)}),
                &crow)) {
    return Status::Internal("customer missing");
  }

  int64_t ol_cnt = rng->UniformRange(5, 15);
  OLTAP_RETURN_NOT_OK(txn->Insert(
      orders, Row{Value::Int64(w), Value::Int64(d), Value::Int64(o_id),
                  Value::Int64(c), Value::Int64(kNowDate),
                  Value::Null(ValueType::kInt64), Value::Int64(ol_cnt)}));
  OLTAP_RETURN_NOT_OK(txn->Insert(
      neworder, Row{Value::Int64(w), Value::Int64(d), Value::Int64(o_id)}));

  for (int64_t l = 1; l <= ol_cnt; ++l) {
    int64_t i_id = rng->UniformRange(1, config_.items);
    int64_t supply_w = w;
    if (config_.warehouses > 1 && rng->Bernoulli(config_.remote_item_prob)) {
      do {
        supply_w = rng->UniformRange(1, config_.warehouses);
      } while (supply_w == w);
    }
    Row irow;
    if (!txn->Get(item, MakeKey(item, {Value::Int64(i_id)}), &irow)) {
      return Status::Internal("item missing");
    }
    Row srow;
    if (!txn->Get(stock,
                  MakeKey(stock, {Value::Int64(supply_w), Value::Int64(i_id)}),
                  &srow)) {
      return Status::Internal("stock missing");
    }
    int64_t qty = rng->UniformRange(1, 10);
    int64_t s_qty = srow[stock_col::kQuantity].AsInt64();
    srow[stock_col::kQuantity] =
        Value::Int64(s_qty >= qty + 10 ? s_qty - qty : s_qty - qty + 91);
    srow[stock_col::kYtd] =
        Value::Int64(srow[stock_col::kYtd].AsInt64() + qty);
    srow[stock_col::kOrderCnt] =
        Value::Int64(srow[stock_col::kOrderCnt].AsInt64() + 1);
    if (supply_w != w) {
      srow[stock_col::kRemoteCnt] =
          Value::Int64(srow[stock_col::kRemoteCnt].AsInt64() + 1);
    }
    OLTAP_RETURN_NOT_OK(txn->Update(stock, srow));

    double amount = static_cast<double>(qty) *
                    irow[item_col::kPrice].AsDouble();
    OLTAP_RETURN_NOT_OK(txn->Insert(
        orderline,
        Row{Value::Int64(w), Value::Int64(d), Value::Int64(o_id),
            Value::Int64(l), Value::Int64(i_id), Value::Int64(supply_w),
            Value::Null(ValueType::kInt64), Value::Int64(qty),
            Value::Double(amount)}));
  }
  Status st = db_->txn_manager()->Commit(txn.get());
  if (st.ok() && ack != nullptr) {
    ack->w = w;
    ack->d = d;
    ack->o_id = o_id;
  }
  return st;
}

Status CHBenchmark::Payment(Rng* rng, int64_t home_w) {
  Table* warehouse = T(kWarehouse);
  Table* district = T(kDistrict);
  Table* customer = T(kCustomer);
  Table* history = T(kHistory);

  int64_t w = home_w != 0 ? home_w : rng->UniformRange(1, config_.warehouses);
  int64_t d = rng->UniformRange(1, config_.districts_per_warehouse);
  int64_t c = rng->UniformRange(1, config_.customers_per_district);
  // Default 15%: customer pays through a remote warehouse/district.
  int64_t c_w = w, c_d = d;
  if (config_.warehouses > 1 && rng->Bernoulli(config_.remote_payment_prob)) {
    do {
      c_w = rng->UniformRange(1, config_.warehouses);
    } while (c_w == w);
    c_d = rng->UniformRange(1, config_.districts_per_warehouse);
  }
  double amount = 1.0 + rng->NextDouble() * 4999.0;

  auto txn = db_->txn_manager()->Begin();
  Row wrow;
  if (!txn->Get(warehouse, MakeKey(warehouse, {Value::Int64(w)}), &wrow)) {
    return Status::Internal("warehouse missing");
  }
  wrow[wh::kYtd] = Value::Double(wrow[wh::kYtd].AsDouble() + amount);
  OLTAP_RETURN_NOT_OK(txn->Update(warehouse, wrow));

  Row drow;
  if (!txn->Get(district,
                MakeKey(district, {Value::Int64(w), Value::Int64(d)}),
                &drow)) {
    return Status::Internal("district missing");
  }
  drow[dist_col::kYtd] = Value::Double(drow[dist_col::kYtd].AsDouble() + amount);
  OLTAP_RETURN_NOT_OK(txn->Update(district, drow));

  Row crow;
  if (!txn->Get(customer,
                MakeKey(customer, {Value::Int64(c_w), Value::Int64(c_d),
                                   Value::Int64(c)}),
                &crow)) {
    return Status::Internal("customer missing");
  }
  crow[cust::kBalance] = Value::Double(crow[cust::kBalance].AsDouble() - amount);
  crow[cust::kYtdPayment] =
      Value::Double(crow[cust::kYtdPayment].AsDouble() + amount);
  crow[cust::kPaymentCnt] =
      Value::Int64(crow[cust::kPaymentCnt].AsInt64() + 1);
  OLTAP_RETURN_NOT_OK(txn->Update(customer, crow));

  OLTAP_RETURN_NOT_OK(txn->Insert(
      history, Row{Value::Int64(c_w), Value::Int64(c_d), Value::Int64(c),
                   Value::Int64(w), Value::Int64(d), Value::Int64(kNowDate),
                   Value::Double(amount)}));
  return db_->txn_manager()->Commit(txn.get());
}

Status CHBenchmark::OrderStatus(Rng* rng, int64_t home_w) {
  Table* district = T(kDistrict);
  Table* customer = T(kCustomer);
  Table* orders = T(kOrders);
  Table* orderline = T(kOrderLine);

  int64_t w = home_w != 0 ? home_w : rng->UniformRange(1, config_.warehouses);
  int64_t d = rng->UniformRange(1, config_.districts_per_warehouse);
  int64_t c = rng->UniformRange(1, config_.customers_per_district);

  auto txn = db_->txn_manager()->Begin();
  Row crow;
  if (!txn->Get(customer,
                MakeKey(customer, {Value::Int64(w), Value::Int64(d),
                                   Value::Int64(c)}),
                &crow)) {
    return Status::Internal("customer missing");
  }
  Row drow;
  if (!txn->Get(district,
                MakeKey(district, {Value::Int64(w), Value::Int64(d)}),
                &drow)) {
    return Status::Internal("district missing");
  }
  int64_t next_o = drow[dist_col::kNextOId].AsInt64();
  if (next_o > 1) {
    int64_t lo = std::max<int64_t>(1, next_o - 20);
    int64_t o_id = rng->UniformRange(lo, next_o - 1);
    Row orow;
    if (txn->Get(orders,
                 MakeKey(orders, {Value::Int64(w), Value::Int64(d),
                                  Value::Int64(o_id)}),
                 &orow)) {
      int64_t ol_cnt = orow[ord::kOlCnt].AsInt64();
      for (int64_t l = 1; l <= ol_cnt; ++l) {
        Row olrow;
        txn->Get(orderline,
                 MakeKey(orderline, {Value::Int64(w), Value::Int64(d),
                                     Value::Int64(o_id), Value::Int64(l)}),
                 &olrow);
      }
    }
  }
  return db_->txn_manager()->Commit(txn.get());
}

Status CHBenchmark::Delivery(Rng* rng, int64_t home_w) {
  Table* neworder = T(kNewOrderTable);
  Table* orders = T(kOrders);
  Table* orderline = T(kOrderLine);
  Table* customer = T(kCustomer);

  int64_t w = home_w != 0 ? home_w : rng->UniformRange(1, config_.warehouses);
  int64_t carrier = rng->UniformRange(1, 10);

  auto txn = db_->txn_manager()->Begin();
  std::vector<std::pair<int64_t, int64_t>> advanced;  // (district, o_id)
  for (int64_t d = 1; d <= config_.districts_per_warehouse; ++d) {
    int64_t o_id = DeliveryCursor(w, d).load(std::memory_order_acquire);
    std::string no_key = MakeKey(
        neworder, {Value::Int64(w), Value::Int64(d), Value::Int64(o_id)});
    Row no_row;
    if (!txn->Get(neworder, no_key, &no_row)) continue;  // nothing to deliver
    OLTAP_RETURN_NOT_OK(txn->DeleteByKey(neworder, no_key));

    Row orow;
    if (!txn->Get(orders,
                  MakeKey(orders, {Value::Int64(w), Value::Int64(d),
                                   Value::Int64(o_id)}),
                  &orow)) {
      return Status::Internal("order missing for delivery");
    }
    orow[ord::kCarrierId] = Value::Int64(carrier);
    OLTAP_RETURN_NOT_OK(txn->Update(orders, orow));

    double total = 0;
    int64_t ol_cnt = orow[ord::kOlCnt].AsInt64();
    for (int64_t l = 1; l <= ol_cnt; ++l) {
      Row olrow;
      if (!txn->Get(orderline,
                    MakeKey(orderline, {Value::Int64(w), Value::Int64(d),
                                        Value::Int64(o_id), Value::Int64(l)}),
                    &olrow)) {
        continue;
      }
      olrow[oline::kDeliveryD] = Value::Int64(kNowDate);
      total += olrow[oline::kAmount].AsDouble();
      OLTAP_RETURN_NOT_OK(txn->Update(orderline, olrow));
    }

    int64_t c = orow[ord::kCId].AsInt64();
    Row crow;
    if (txn->Get(customer,
                 MakeKey(customer, {Value::Int64(w), Value::Int64(d),
                                    Value::Int64(c)}),
                 &crow)) {
      crow[cust::kBalance] =
          Value::Double(crow[cust::kBalance].AsDouble() + total);
      OLTAP_RETURN_NOT_OK(txn->Update(customer, crow));
    }
    advanced.emplace_back(d, o_id);
  }
  Status st = db_->txn_manager()->Commit(txn.get());
  if (st.ok()) {
    for (auto [d, o_id] : advanced) {
      // Only advance past the order we actually delivered.
      int64_t expected = o_id;
      DeliveryCursor(w, d).compare_exchange_strong(expected, o_id + 1,
                                                   std::memory_order_acq_rel);
    }
  }
  return st;
}

Status CHBenchmark::StockLevel(Rng* rng, int64_t home_w) {
  Table* district = T(kDistrict);
  Table* orderline = T(kOrderLine);
  Table* stock = T(kStock);

  int64_t w = home_w != 0 ? home_w : rng->UniformRange(1, config_.warehouses);
  int64_t d = rng->UniformRange(1, config_.districts_per_warehouse);
  int64_t threshold = rng->UniformRange(10, 20);

  auto txn = db_->txn_manager()->Begin();
  Row drow;
  if (!txn->Get(district,
                MakeKey(district, {Value::Int64(w), Value::Int64(d)}),
                &drow)) {
    return Status::Internal("district missing");
  }
  int64_t next_o = drow[dist_col::kNextOId].AsInt64();
  int64_t first_o = std::max<int64_t>(1, next_o - 20);
  // Ordered range scan over the district's recent order lines (the
  // skip-list access path dual/row formats provide); a generous limit
  // covers 20 orders × ≤15 lines, with a district-boundary filter.
  std::vector<int64_t> items;
  txn->ScanRange(
      orderline,
      MakeKey(orderline, {Value::Int64(w), Value::Int64(d),
                          Value::Int64(first_o), Value::Int64(1)}),
      20 * 15, [&](const Row& olrow) {
        if (olrow[oline::kWId].AsInt64() != w ||
            olrow[oline::kDId].AsInt64() != d ||
            olrow[oline::kOId].AsInt64() >= next_o) {
          return;
        }
        items.push_back(olrow[oline::kIId].AsInt64());
      });
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  int64_t low = 0;
  for (int64_t i_id : items) {
    Row srow;
    if (txn->Get(stock, MakeKey(stock, {Value::Int64(w), Value::Int64(i_id)}),
                 &srow)) {
      if (srow[stock_col::kQuantity].AsInt64() < threshold) ++low;
    }
  }
  (void)low;
  return db_->txn_manager()->Commit(txn.get());
}

Status CHBenchmark::RunMixed(Rng* rng, CHTxnStats* stats, int max_retries,
                             int64_t home_w) {
  uint64_t pick = rng->Uniform(100);
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    Status st;
    if (pick < 45) {
      st = NewOrder(rng, home_w);
      if (st.ok()) ++stats->new_order;
    } else if (pick < 88) {
      st = Payment(rng, home_w);
      if (st.ok()) ++stats->payment;
    } else if (pick < 92) {
      st = OrderStatus(rng, home_w);
      if (st.ok()) ++stats->order_status;
    } else if (pick < 96) {
      st = Delivery(rng, home_w);
      if (st.ok()) ++stats->delivery;
    } else {
      st = StockLevel(rng, home_w);
      if (st.ok()) ++stats->stock_level;
    }
    if (st.ok()) return st;
    if (!st.IsAborted()) return st;
    ++stats->aborts;
  }
  return Status::Aborted("retries exhausted");
}

const std::vector<CHBenchmark::AnalyticQuery>& CHBenchmark::Queries() {
  static const std::vector<AnalyticQuery>* kQueries =
      new std::vector<AnalyticQuery>{
          {"A1-pricing-summary",
           "SELECT ol_number, SUM(ol_quantity) AS sum_qty, "
           "SUM(ol_amount) AS sum_amount, AVG(ol_quantity) AS avg_qty, "
           "AVG(ol_amount) AS avg_amount, COUNT(*) AS count_order "
           "FROM orderline WHERE ol_delivery_d > 1000000 "
           "GROUP BY ol_number ORDER BY ol_number"},
          {"A2-undelivered-revenue",
           "SELECT o_w_id, o_d_id, SUM(ol_amount) AS revenue "
           "FROM orders JOIN orderline ON ol_w_id = o_w_id AND "
           "ol_d_id = o_d_id AND ol_o_id = o_id "
           "WHERE o_carrier_id IS NULL "
           "GROUP BY o_w_id, o_d_id ORDER BY revenue DESC LIMIT 10"},
          {"A3-order-size-distribution",
           "SELECT o_ol_cnt, COUNT(*) AS order_count FROM orders "
           "GROUP BY o_ol_cnt ORDER BY o_ol_cnt"},
          {"A4-revenue-by-state",
           "SELECT c_state, SUM(ol_amount) AS revenue "
           "FROM customer JOIN orders ON o_w_id = c_w_id AND "
           "o_d_id = c_d_id AND o_c_id = c_id "
           "JOIN orderline ON ol_w_id = o_w_id AND ol_d_id = o_d_id AND "
           "ol_o_id = o_id "
           "GROUP BY c_state ORDER BY revenue DESC"},
          {"A5-quantity-band-revenue",
           "SELECT SUM(ol_amount) AS revenue FROM orderline "
           "WHERE ol_quantity >= 3 AND ol_quantity <= 7"},
          {"A6-supply-warehouse-volume",
           "SELECT ol_supply_w_id, COUNT(*) AS lines, "
           "SUM(ol_amount) AS revenue FROM orderline "
           "GROUP BY ol_supply_w_id ORDER BY ol_supply_w_id"},
          {"A7-carrier-performance",
           "SELECT o_carrier_id, COUNT(*) AS orders_delivered "
           "FROM orders WHERE o_carrier_id >= 1 "
           "GROUP BY o_carrier_id ORDER BY o_carrier_id"},
          {"A8-top-customers",
           "SELECT c_w_id, c_d_id, c_id, c_last, c_balance FROM customer "
           "ORDER BY c_balance DESC LIMIT 10"},
          {"A9-premium-item-revenue",
           "SELECT SUM(ol_amount) AS revenue "
           "FROM item JOIN orderline ON ol_i_id = i_id "
           "WHERE i_price > 75.0"},
          {"A10-stock-pressure",
           "SELECT s_w_id, SUM(s_ytd) AS total_ytd, "
           "AVG(s_quantity) AS avg_quantity FROM stock "
           "GROUP BY s_w_id ORDER BY s_w_id"},
          {"A11-district-tax-ytd",
           "SELECT d_w_id, SUM(d_ytd) AS ytd FROM district "
           "GROUP BY d_w_id ORDER BY d_w_id"},
          {"A12-popular-items",
           "SELECT ol_i_id, COUNT(*) AS times_ordered, "
           "SUM(ol_quantity) AS total_qty FROM orderline "
           "GROUP BY ol_i_id ORDER BY times_ordered DESC, ol_i_id LIMIT 20"},
          {"A13-heavy-customers",
           "SELECT o_w_id, o_d_id, o_c_id, COUNT(*) AS orders_placed "
           "FROM orders WHERE o_ol_cnt BETWEEN 8 AND 15 "
           "GROUP BY o_w_id, o_d_id, o_c_id HAVING COUNT(*) >= 2 "
           "ORDER BY orders_placed DESC, o_w_id, o_d_id, o_c_id LIMIT 15"},
      };
  return *kQueries;
}

Result<QueryResult> CHBenchmark::RunQuery(size_t index,
                                          const QueryGrant* grant) {
  OLTAP_CHECK(index < Queries().size());
  if (grant != nullptr) {
    return db_->Execute(Queries()[index].sql, *grant);
  }
  return db_->Execute(Queries()[index].sql);
}

}  // namespace oltap
