#ifndef OLTAP_WORKLOAD_CHBENCH_H_
#define OLTAP_WORKLOAD_CHBENCH_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sql/session.h"

namespace oltap {

// CH-benCHmark [6]: TPC-C's transactional schema and transaction mix,
// with TPC-H-style analytic queries running over the same live tables —
// the mixed-workload benchmark the tutorial names for OLTAP systems.
//
// Scale is configurable and defaults far below spec cardinalities so the
// full suite loads in milliseconds; the *shape* of the workload (hot
// district counters, secondary-table fan-out, scan/join/agg analytics over
// live data) is preserved. Deviations from spec are documented per method.
struct CHConfig {
  int warehouses = 2;
  int districts_per_warehouse = 10;
  int customers_per_district = 100;
  int items = 1000;
  int initial_orders_per_district = 50;
  // Fraction of initially loaded orders still awaiting delivery.
  double undelivered_fraction = 0.3;
  // Spec: 1% of NewOrder lines are supplied by a remote warehouse and 15%
  // of Payments go through a remote customer. Configurable so the
  // concurrent driver's determinism mode can pin every write to the
  // worker's home warehouse (0.0 = fully partitionable workload).
  double remote_item_prob = 0.01;
  double remote_payment_prob = 0.15;
  TableFormat format = TableFormat::kDual;
  uint64_t seed = 42;
};

// Per-transaction-type counters for a mixed run. NOT thread-safe: each
// worker thread accumulates into its own instance and the driver merges
// them with Accumulate() after the workers join (sharing one instance
// across threads is a data race and undercounts).
struct CHTxnStats {
  uint64_t new_order = 0;
  uint64_t payment = 0;
  uint64_t order_status = 0;
  uint64_t delivery = 0;
  uint64_t stock_level = 0;
  uint64_t aborts = 0;

  uint64_t total() const {
    return new_order + payment + order_status + delivery + stock_level;
  }

  void Accumulate(const CHTxnStats& o) {
    new_order += o.new_order;
    payment += o.payment;
    order_status += o.order_status;
    delivery += o.delivery;
    stock_level += o.stock_level;
    aborts += o.aborts;
  }
};

// Acknowledgement of a committed NewOrder: the primary key of the order
// the transaction created. The concurrent driver's commit audit records
// these and checks every acknowledged order against a post-run scan.
struct NewOrderAck {
  int64_t w = 0;
  int64_t d = 0;
  int64_t o_id = 0;
};

// Thread-safety: after Load() completes, the five transactions and
// RunQuery may be called from any number of threads concurrently, each
// thread with its own Rng and CHTxnStats. Table handles are resolved once
// and cached (the per-call catalog lookups showed up as shared-lock
// contention under the concurrent driver); the delivery cursors are
// per-district atomics.
class CHBenchmark {
 public:
  CHBenchmark(Database* db, const CHConfig& config);

  // Creates the nine TPC-C tables in the configured format.
  Status CreateTables();

  // Loads initial data (warehouses, districts, customers, items, stock,
  // orders + order lines + new-orders, history).
  Status Load();

  // ---- The five TPC-C transactions (native transaction API). Each
  // returns kAborted on a serialization conflict; RunMixed retries.
  // `home_w` != 0 pins the transaction's warehouse (TPC-C terminals have a
  // home warehouse; the driver's determinism mode relies on it), 0 draws
  // it uniformly. ----

  // Deviation from spec: no 1% intentional rollback; remote items per
  // config (default 1%). `ack` (optional) receives the created order's key
  // on success.
  Status NewOrder(Rng* rng, int64_t home_w = 0, NewOrderAck* ack = nullptr);
  // Deviation: customer always selected by id (no last-name path); remote
  // customer per config (default 15%).
  Status Payment(Rng* rng, int64_t home_w = 0);
  // Deviation: order selected uniformly from the customer's district's
  // recent orders rather than "customer's most recent order".
  Status OrderStatus(Rng* rng, int64_t home_w = 0);
  Status Delivery(Rng* rng, int64_t home_w = 0);
  Status StockLevel(Rng* rng, int64_t home_w = 0);

  // Runs one transaction drawn from the TPC-C mix
  // (45/43/4/4/4 = NewOrder/Payment/OrderStatus/Delivery/StockLevel),
  // retrying serialization aborts up to `max_retries`.
  Status RunMixed(Rng* rng, CHTxnStats* stats, int max_retries = 5,
                  int64_t home_w = 0);

  // ---- Analytic query set: 13 queries adapted from CH-benCHmark to the
  // engine's SQL subset (EXPERIMENTS.md documents the mapping). ----
  struct AnalyticQuery {
    std::string name;
    std::string sql;
  };
  static const std::vector<AnalyticQuery>& Queries();

  // With a non-null `grant`, the query runs under that admission grant
  // (degraded grants cap its degree of parallelism).
  Result<QueryResult> RunQuery(size_t index,
                               const QueryGrant* grant = nullptr);

  Database* db() { return db_; }
  const CHConfig& config() const { return config_; }

 private:
  // Stable table handles, resolved lazily from the catalog and cached
  // (Table pointers never move for the catalog's lifetime). Keeps the
  // transactions off the catalog's shared lock.
  enum TableId {
    kWarehouse,
    kDistrict,
    kCustomer,
    kHistory,
    kNewOrderTable,
    kOrders,
    kOrderLine,
    kItem,
    kStock,
    kNumTables,
  };

  Table* T(TableId id) const;

  Database* db_;
  CHConfig config_;
  mutable std::atomic<Table*> tables_[kNumTables] = {};
  // First undelivered order id per (warehouse, district); driver-side
  // delivery cursor (spec: "oldest undelivered NEW-ORDER").
  std::vector<std::unique_ptr<std::atomic<int64_t>>> delivery_cursor_;

  std::atomic<int64_t>& DeliveryCursor(int64_t w, int64_t d) {
    return *delivery_cursor_[static_cast<size_t>(
        (w - 1) * config_.districts_per_warehouse + (d - 1))];
  }
};

}  // namespace oltap

#endif  // OLTAP_WORKLOAD_CHBENCH_H_
