#ifndef OLTAP_WORKLOAD_CHBENCH_H_
#define OLTAP_WORKLOAD_CHBENCH_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sql/session.h"

namespace oltap {

// CH-benCHmark [6]: TPC-C's transactional schema and transaction mix,
// with TPC-H-style analytic queries running over the same live tables —
// the mixed-workload benchmark the tutorial names for OLTAP systems.
//
// Scale is configurable and defaults far below spec cardinalities so the
// full suite loads in milliseconds; the *shape* of the workload (hot
// district counters, secondary-table fan-out, scan/join/agg analytics over
// live data) is preserved. Deviations from spec are documented per method.
struct CHConfig {
  int warehouses = 2;
  int districts_per_warehouse = 10;
  int customers_per_district = 100;
  int items = 1000;
  int initial_orders_per_district = 50;
  // Fraction of initially loaded orders still awaiting delivery.
  double undelivered_fraction = 0.3;
  TableFormat format = TableFormat::kDual;
  uint64_t seed = 42;
};

// Per-transaction-type counters for a mixed run.
struct CHTxnStats {
  uint64_t new_order = 0;
  uint64_t payment = 0;
  uint64_t order_status = 0;
  uint64_t delivery = 0;
  uint64_t stock_level = 0;
  uint64_t aborts = 0;

  uint64_t total() const {
    return new_order + payment + order_status + delivery + stock_level;
  }
};

class CHBenchmark {
 public:
  CHBenchmark(Database* db, const CHConfig& config);

  // Creates the nine TPC-C tables in the configured format.
  Status CreateTables();

  // Loads initial data (warehouses, districts, customers, items, stock,
  // orders + order lines + new-orders, history).
  Status Load();

  // ---- The five TPC-C transactions (native transaction API). Each
  // returns kAborted on a serialization conflict; RunMixed retries. ----

  // Deviation from spec: no 1% intentional rollback; remote items 1%.
  Status NewOrder(Rng* rng);
  // Deviation: customer always selected by id (no last-name path).
  Status Payment(Rng* rng);
  // Deviation: order selected uniformly from the customer's district's
  // recent orders rather than "customer's most recent order".
  Status OrderStatus(Rng* rng);
  Status Delivery(Rng* rng);
  Status StockLevel(Rng* rng);

  // Runs one transaction drawn from the TPC-C mix
  // (45/43/4/4/4 = NewOrder/Payment/OrderStatus/Delivery/StockLevel),
  // retrying serialization aborts up to `max_retries`.
  Status RunMixed(Rng* rng, CHTxnStats* stats, int max_retries = 5);

  // ---- Analytic query set: 13 queries adapted from CH-benCHmark to the
  // engine's SQL subset (EXPERIMENTS.md documents the mapping). ----
  struct AnalyticQuery {
    std::string name;
    std::string sql;
  };
  static const std::vector<AnalyticQuery>& Queries();

  Result<QueryResult> RunQuery(size_t index);

  Database* db() { return db_; }
  const CHConfig& config() const { return config_; }

 private:
  // Encoded-key helpers for the native transactions.
  Table* T(const char* name) const;

  Database* db_;
  CHConfig config_;
  // First undelivered order id per (warehouse, district); driver-side
  // delivery cursor (spec: "oldest undelivered NEW-ORDER").
  std::vector<std::unique_ptr<std::atomic<int64_t>>> delivery_cursor_;

  std::atomic<int64_t>& DeliveryCursor(int64_t w, int64_t d) {
    return *delivery_cursor_[static_cast<size_t>(
        (w - 1) * config_.districts_per_warehouse + (d - 1))];
  }
};

}  // namespace oltap

#endif  // OLTAP_WORKLOAD_CHBENCH_H_
