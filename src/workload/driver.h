#ifndef OLTAP_WORKLOAD_DRIVER_H_
#define OLTAP_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sched/workload_manager.h"
#include "workload/chbench.h"

namespace oltap {

// Concurrent end-to-end driver: N closed-loop OLTP clients running the
// five TPC-C transactions against their home warehouses, concurrently with
// M OLAP clients cycling the CH analytic query set through the full SQL
// stack — every request admitted through one WorkloadManager, with the
// merge daemon keeping deltas bounded in the background. This is the
// mixed-workload harness the paper's surveyed systems are evaluated with
// (CH-benCHmark), and the thing that first exposed the engine's
// cross-thread contention points.
//
// Determinism: each worker's workload is a precomputed stream of
// (kind, seed) ops. The transaction kind and every argument the
// transaction draws derive from the op's private Rng(seed), so the stream
// is a pure function of (driver seed, worker index) — independent of
// scheduling, thread count, and wall time. With home-warehouse binding and
// remote probabilities zeroed the workers' write sets are disjoint, so the
// committed database state is also a pure function of the seed (the
// determinism test relies on exactly this).

// The five TPC-C transaction kinds, for precomputed op streams.
enum class TxnKind : uint8_t {
  kNewOrder = 0,
  kPayment,
  kOrderStatus,
  kDelivery,
  kStockLevel,
};

const char* TxnKindToString(TxnKind k);

// One precomputed workload op: which transaction to run and the seed of
// the private Rng that produces all of its arguments.
struct TxnOp {
  TxnKind kind;
  uint64_t seed;
};

struct DriverOptions {
  size_t oltp_workers = 8;
  size_t olap_workers = 2;
  // WorkloadManager pool size; 0 = oltp_workers + olap_workers.
  size_t wm_workers = 0;
  SchedulingPolicy policy = SchedulingPolicy::kOltpPriority;

  // Intra-query DOP granted to normally admitted OLAP queries (0 = leave
  // the session knob in charge) and to degraded admissions (1 = serial).
  // Only meaningful when the database has an exec pool attached.
  size_t olap_max_dop = 0;
  size_t degraded_dop = 1;
  // OLAP admitted while its queue is at least this deep is degraded:
  // its grant carries degraded_dop instead of olap_max_dop. 0 = never.
  size_t olap_degrade_threshold = 0;

  // Timed mode: run for this long. 0 = fixed-ops mode (each OLTP worker
  // runs exactly ops_per_worker ops — the deterministic configuration).
  int64_t duration_ms = 0;
  size_t ops_per_worker = 200;

  uint64_t seed = 42;

  // Pin worker i to warehouse (i % warehouses) + 1. Combined with zeroed
  // remote probabilities in CHConfig this makes worker write sets
  // disjoint.
  bool bind_home_warehouse = false;

  // TPC-C-style client think time between ops (closed-loop keying/think
  // delay). 0 = saturating clients. On few-core hosts think time is what
  // lets added clients overlap instead of time-slicing one saturated CPU.
  int64_t think_time_us = 0;

  // Background merge daemon (delta -> main) during the run.
  bool run_merge_daemon = true;
  size_t merge_delta_threshold = 512;
  int64_t merge_interval_ms = 5;

  // Serialization-abort retries per op.
  int max_retries = 5;

  // Record a NewOrderAck for every acknowledged NewOrder commit (the
  // zero-lost-commits audit consumes these).
  bool audit_commits = false;

  // Group commit: install a dedicated log writer on the database's
  // transaction manager for the duration of the run (no-op when the
  // database has no WAL). Commits then ack after their batch's single
  // fsync instead of one fsync each. The driver owns the writer and
  // stops it after clients, admission queues, and the merge daemon have
  // drained, so no commit is in flight when the writer goes away.
  bool group_commit = false;
  size_t group_max_batch = 64;
  int64_t group_persist_interval_us = 100;

  // When the WAL seals mid-run (torn append — every later commit is
  // doomed), abort the whole run with a clear report instead of letting
  // every remaining op fail its way through the retry budget.
  bool abort_on_sealed_wal = true;

  // Online checkpoint daemon during the run: consistent SI checkpoints
  // concurrent with the workload, with WAL segment truncation behind the
  // pinned horizon. Uses the database's own daemon (EnsureCheckpointer),
  // so SQL CHECKPOINT / SHOW STATS observe the same instance.
  bool run_checkpoint_daemon = false;
  int64_t checkpoint_interval_us = 50'000;
  uint64_t checkpoint_wal_trigger_bytes = 0;  // 0 = time trigger only
  // Truncate covered WAL segments after each checkpoint. Off retains the
  // full log (equivalence tests recover both ways and compare).
  bool checkpoint_truncate_wal = true;
  // Rotate the database's WAL into segments of this size for the run
  // (0 = leave the WAL's segmentation as configured).
  uint64_t wal_segment_bytes = 0;
};

// Per-OLTP-worker outcome.
struct WorkerResult {
  CHTxnStats stats;          // committed txns + aborted attempts
  uint64_t ops_issued = 0;   // ops submitted (committed or exhausted)
  // Ops that never committed: non-abort failures (admission, internal)
  // plus ops whose every retry aborted. Invariant per worker:
  // committed + failed == ops_issued.
  uint64_t failed = 0;
  std::vector<NewOrderAck> acks;  // audit_commits only
};

struct DriverReport {
  double duration_s = 0;
  double oltp_txn_per_s = 0;       // committed txns / duration
  double olap_queries_per_s = 0;
  CHTxnStats txns;                 // merged across workers
  // Ops that never committed (non-abort failures + retry-exhausted ops),
  // merged across workers: txns.total() + oltp_failed == ops issued.
  uint64_t oltp_failed = 0;
  uint64_t olap_completed = 0;
  uint64_t olap_failed = 0;
  // aborted attempts / (aborted attempts + commits)
  double abort_rate = 0;
  // Submit -> completion, through WorkloadManager admission.
  LatencySummary oltp_latency;
  LatencySummary olap_latency;
  // Max delta age across mergeable tables at run end (the freshness lag
  // an analytic query on main-only data would observe).
  int64_t freshness_lag_us = 0;
  uint64_t merges = 0;
  // Checkpoint/WAL-retention state at run end (run_checkpoint_daemon;
  // the wal_* fields fill whenever the database has a WAL).
  uint64_t checkpoints = 0;          // successful rounds during the run
  int64_t checkpoint_age_us = -1;    // age of the newest checkpoint; -1 = none
  uint64_t wal_segments = 0;
  uint64_t wal_retained_bytes = 0;
  uint64_t wal_truncated_bytes = 0;  // dropped by truncation during the run
  // Set when the run stopped early (sealed WAL): clients quit issuing ops
  // as soon as they observed the condition. Counters above still hold the
  // work completed before the abort.
  bool aborted = false;
  std::string abort_reason;
  std::vector<WorkerResult> workers;
};

class ConcurrentDriver {
 public:
  // `bench` must be loaded (CreateTables + Load done). The driver does not
  // own it; one driver run per instance.
  ConcurrentDriver(CHBenchmark* bench, const DriverOptions& options);

  // The seed of op `index` in worker `worker`'s stream (pure function).
  static uint64_t OpSeed(uint64_t driver_seed, size_t worker, size_t index);
  // The kind op `index` resolves to (first draw of its private Rng,
  // mapped through the TPC-C 45/43/4/4/4 mix).
  static TxnKind KindFor(uint64_t op_seed);
  // First `ops` ops of worker `worker`'s stream.
  static std::vector<TxnOp> MakeStream(uint64_t driver_seed, size_t worker,
                                       size_t ops);

  // Runs the configured workload to completion and reports. Blocking.
  DriverReport Run();

 private:
  // Executes one op with abort retries; accumulates into `result`.
  void ExecuteOp(const TxnOp& op, int64_t home_w, WorkerResult* result);

  CHBenchmark* bench_;
  DriverOptions options_;
};

}  // namespace oltap

#endif  // OLTAP_WORKLOAD_DRIVER_H_
