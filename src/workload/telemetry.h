#ifndef OLTAP_WORKLOAD_TELEMETRY_H_
#define OLTAP_WORKLOAD_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sql/session.h"

namespace oltap {

// Machine-data analytics workload — the tutorial's first motivating
// scenario: a data center emits a continuous stream of metrics from hosts,
// VMs, and network ports, and operators need ad-hoc aggregates over the
// most recent data *while ingest continues* (no ETL lag).
//
// Schema: metrics(seq PK, ts, host, metric, value). Hosts and metric names
// are drawn Zipf-skewed (a few chatty hosts dominate, like real fleets).
class TelemetryWorkload {
 public:
  struct Config {
    int num_hosts = 50;
    int num_metrics = 12;
    TableFormat format = TableFormat::kColumn;
    uint64_t seed = 7;
  };

  TelemetryWorkload(Database* db, const Config& config);

  Status CreateTable();

  // Appends `count` readings stamped with logical time `base_ts` onward
  // (one SI transaction per batch — the continuous-INGEST pattern).
  Status IngestBatch(int64_t base_ts, int count);

  // Ad-hoc real-time queries over live data.
  static std::string AvgByMetricSince(int64_t ts_lo);
  static std::string HottestHosts(int64_t ts_lo, int limit);
  static std::string MetricHistogram(const std::string& metric);

  int64_t rows_ingested() const { return rows_ingested_; }

 private:
  Database* db_;
  Config config_;
  Rng rng_;
  int64_t next_seq_ = 1;
  int64_t rows_ingested_ = 0;
  std::vector<std::string> hosts_;
  std::vector<std::string> metrics_;
};

}  // namespace oltap

#endif  // OLTAP_WORKLOAD_TELEMETRY_H_
