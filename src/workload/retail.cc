#include "workload/retail.h"

#include "common/logging.h"
#include "txn/transaction_manager.h"

namespace oltap {

RetailWorkload::RetailWorkload(Database* db, const Config& config)
    : db_(db), config_(config), rng_(config.seed) {}

Status RetailWorkload::CreateTable() {
  return db_->catalog()->CreateTable(
      "mentions",
      SchemaBuilder()
          .AddInt64("seq", false)
          .AddInt64("ts", false)
          .AddString("product", false)
          .AddString("region", false)
          .AddDouble("sentiment")
          .SetKey({"seq"})
          .Build(),
      config_.format);
}

Status RetailWorkload::IngestBatch(int64_t base_ts, int count,
                                   int surge_product) {
  Table* mentions = db_->catalog()->GetTable("mentions");
  OLTAP_CHECK(mentions != nullptr);
  auto txn = db_->txn_manager()->Begin();
  for (int i = 0; i < count; ++i) {
    int product;
    double sentiment;
    if (surge_product >= 0 && rng_.Bernoulli(0.3)) {
      product = surge_product;
      sentiment = 0.5 + rng_.NextDouble() * 0.5;  // surges skew positive
    } else {
      product = static_cast<int>(rng_.Zipf(config_.num_products, 0.8));
      sentiment = rng_.NextDouble() * 2.0 - 1.0;
    }
    std::string region = "region-" + std::to_string(
        rng_.Uniform(config_.num_regions));
    OLTAP_RETURN_NOT_OK(txn->Insert(
        mentions,
        Row{Value::Int64(next_seq_++), Value::Int64(base_ts + i),
            Value::String(product_name(product)), Value::String(region),
            Value::Double(sentiment)}));
  }
  OLTAP_RETURN_NOT_OK(db_->txn_manager()->Commit(txn.get()));
  rows_ingested_ += count;
  return Status::OK();
}

std::string RetailWorkload::TrendingSince(int64_t ts_lo, int limit) {
  return "SELECT product, COUNT(*) AS mentions_count, "
         "AVG(sentiment) AS avg_sentiment FROM mentions WHERE ts >= " +
         std::to_string(ts_lo) +
         " GROUP BY product ORDER BY mentions_count DESC LIMIT " +
         std::to_string(limit);
}

std::string RetailWorkload::ProductByRegion(int product_id) {
  return "SELECT region, COUNT(*) AS mentions_count, "
         "AVG(sentiment) AS avg_sentiment FROM mentions "
         "WHERE product = 'product-" +
         std::to_string(product_id) +
         "' GROUP BY region ORDER BY mentions_count DESC";
}

std::string RetailWorkload::SurgeScore(int64_t recent_lo, int limit) {
  return "SELECT product, COUNT(*) AS recent_mentions FROM mentions "
         "WHERE ts >= " +
         std::to_string(recent_lo) +
         " GROUP BY product ORDER BY recent_mentions DESC LIMIT " +
         std::to_string(limit);
}

}  // namespace oltap
