#ifndef OLTAP_VIEW_VIEW_H_
#define OLTAP_VIEW_VIEW_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "exec/operators.h"
#include "sql/ast.h"
#include "storage/catalog.h"
#include "storage/change_log.h"
#include "txn/transaction_manager.h"

namespace oltap {
namespace view {

// A registered materialized view: its validated definition, the backing
// catalog table that stores its rows (queryable under the view's name),
// and the incremental-maintenance cursor.
//
// Supported shapes (validated at CREATE):
//  - join views:       SELECT cols FROM t1 JOIN t2 ON ... [WHERE ...],
//    select list = plain column refs covering every base's primary key;
//  - aggregate views:  SELECT group-cols + aggs FROM ... GROUP BY ...,
//    aggregates over single columns (or COUNT(*)), at least one group
//    column (it becomes the backing primary key).
// WHERE/ON must decompose into single-table conjuncts plus cross-table
// equality join edges; the join graph must be connected. DISTINCT,
// HAVING, ORDER BY, LIMIT, views-over-views, and self-joins are
// rejected.
struct ViewDef {
  std::string name;
  bool sync = true;               // maintained at commit vs daemon cadence
  int64_t max_staleness_us = -1;  // routing bound for DEFERRED; -1 = none

  sql::SelectStmt select;   // the definition (owned)
  std::string fingerprint;  // canonical text of `select`

  Table* backing = nullptr;
  std::vector<Table*> bases;          // FROM order
  std::vector<std::string> aliases;   // FROM aliases (default: table name)

  // WHERE/ON decomposition.
  struct Edge {
    int lt, lc, rt, rc;  // bases[lt].col(lc) == bases[rt].col(rc)
  };
  std::vector<Edge> edges;
  std::vector<std::vector<sql::ParseExprPtr>> local_preds;  // per base
  std::vector<std::vector<ExprPtr>> local_bound;            // per base
  // Canonical "table.col op ..." texts of local conjuncts, for routing
  // subsumption checks.
  std::vector<std::string> local_pred_texts;

  // Delta-join processing order starting from each base (connected
  // extension over `edges`).
  std::vector<std::vector<int>> join_orders;

  // Select-list mapping. For join views every item is a group (plain
  // column); for aggregate views items interleave group refs and
  // aggregates in user order — the backing schema mirrors that order,
  // then appends __rows and the per-aggregate hidden state.
  struct ItemOut {
    bool is_agg = false;
    int agg_idx = -1;  // into `aggs` when is_agg
    int table = -1;    // base table / column when a group ref
    int col = -1;
    std::string name_out;  // backing column name (== query output name)
  };
  std::vector<ItemOut> items;

  bool is_aggregate = false;
  struct AggDef {
    AggSpec::Fn fn = AggSpec::Fn::kCountStar;
    int table = -1;  // -1 for COUNT(*)
    int col = -1;
    std::string text;      // canonical "SUM(table.col)" matching key
    ValueType out_type = ValueType::kInt64;
    int visible_idx = -1;  // backing column holding the finalized value
    int count_idx = -1;    // non-null count state (visible col for COUNT)
    int sum_idx = -1;      // running sum state (SUM/AVG only)
    bool sum_is_int = false;
    // MIN/MAX and double-typed SUM/AVG cannot subtract a delete exactly;
    // groups they belong to are recomputed from the bases on delete.
    bool recompute_on_delete = false;
  };
  std::vector<AggDef> aggs;
  int rows_idx = -1;  // backing __rows column (aggregate views)

  // Definition query augmented with the hidden-state aggregates; its
  // output order equals the backing schema order. For join views this is
  // just the definition.
  sql::SelectStmt build_query;

  // Maintenance state. `mu` serializes maintainers (sync commits,
  // daemon ticks, REFRESH); `applied_ts` is the cursor — every base
  // change with ts <= applied_ts is folded in. The cursor is only
  // advanced after the maintenance transaction commits, so a failed or
  // crashed maintenance round leaves no torn state: the next round
  // replays the same window.
  std::mutex mu;
  std::atomic<Timestamp> applied_ts{0};
  std::atomic<int64_t> last_maintain_wall_us{0};
};

// Registry + maintainer + router for materialized views. One per
// Database; installed as the TransactionManager's commit hook for
// synchronous maintenance.
class ViewManager {
 public:
  ViewManager(Catalog* catalog, TransactionManager* tm)
      : catalog_(catalog), tm_(tm) {}

  // Validates the definition, creates the backing table (named after the
  // view), subscribes the base change logs, and runs the initial build.
  Status Create(const sql::CreateViewStmt& stmt);

  // Full rebuild from the bases (REFRESH MATERIALIZED VIEW).
  Status Refresh(const std::string& name);

  // Incremental maintenance of one view / of every view with pending
  // changes. MaintainAll returns the number of views that applied work.
  Status Maintain(const std::string& name);
  size_t MaintainAll();

  // TransactionManager commit hook: synchronously maintains every SYNC
  // view whose bases intersect the committed tables. Runs on the
  // committing thread after the commit is durable and visible.
  void OnCommit(const std::vector<Table*>& tables, Timestamp commit_ts);

  // After WAL recovery the in-memory cursors and change logs are gone;
  // every view is stale-on-recover and rebuilt from the recovered bases.
  Status RebuildAllAfterRecovery();

  bool IsView(const std::string& name) const;
  std::vector<std::string> ViewNames() const;
  size_t num_views() const;

  // Re-parseable CREATE MATERIALIZED VIEW statements for every registered
  // view (definition rendered from the canonical fingerprint). The
  // checkpoint daemon embeds these in each image so recovery from an
  // empty catalog can re-create the views — re-running the DDL rebuilds
  // each backing table from the restored bases, which is why backing
  // tables are excluded from the image itself.
  std::vector<std::string> ViewDdls() const;

  // GC horizon merges must respect: delta-join reads pre-state snapshots
  // at each view's cursor. kMax when no views exist.
  Timestamp GcHorizon() const;

  // Staleness of a view right now: age of its oldest unapplied base
  // change (0 when fully applied).
  int64_t StalenessMicros(const std::string& name, int64_t now_us) const;

  // Cost-based routing: if `stmt`'s join/aggregate shape subsumes a
  // registered view whose staleness passes `max_staleness_us` (session
  // knob; -1 = unbounded) and the view's own bound, returns the query
  // rewritten over the backing table. The caller cost-compares the two
  // plans and picks the cheaper.
  struct Route {
    std::string view;
    int64_t staleness_us = 0;
    sql::SelectStmt rewritten;
  };
  std::optional<Route> TryRoute(const sql::SelectStmt& stmt,
                                int64_t max_staleness_us) const;

  // SHOW STATS rows: view.<name>.rows / .pending / .staleness_us.
  void AppendStatsRows(std::vector<Row>* rows) const;

 private:
  Status MaintainLocked(ViewDef* v);
  Status RefreshLocked(ViewDef* v);
  ViewDef* Find(const std::string& name) const;
  // Trims each of v's base change logs up to the minimum cursor across
  // every view subscribing that base. Takes the registry lock shared;
  // caller must not hold it.
  void TrimLogs(const ViewDef& v) const;

  Catalog* catalog_;
  TransactionManager* tm_;

  mutable std::shared_mutex mu_;  // registry: guards views_ vector
  std::vector<std::unique_ptr<ViewDef>> views_;
};

}  // namespace view
}  // namespace oltap

#endif  // OLTAP_VIEW_VIEW_H_
