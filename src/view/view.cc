#include "view/view.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "sql/planner.h"

namespace oltap {
namespace view {

namespace {

// Set while a maintenance/refresh transaction commits so the commit hook
// does not recurse into OnCommit (view backing tables are never bases,
// but the guard also makes accidental cycles structurally impossible).
thread_local bool t_in_maintenance = false;

struct MaintenanceScope {
  bool prev;
  MaintenanceScope() : prev(t_in_maintenance) { t_in_maintenance = true; }
  ~MaintenanceScope() { t_in_maintenance = prev; }
};

// ---------------------------------------------------------------------------
// Parse-tree helpers (clone / construct). The sql AST uses unique_ptr
// throughout, so routing rewrites and recompute filters build fresh trees.
// ---------------------------------------------------------------------------

sql::ParseExprPtr CloneExpr(const sql::ParseExpr& e) {
  auto out = std::make_unique<sql::ParseExpr>();
  out->kind = e.kind;
  out->qualifier = e.qualifier;
  out->name = e.name;
  out->int_val = e.int_val;
  out->double_val = e.double_val;
  out->str_val = e.str_val;
  out->op = e.op;
  out->args.reserve(e.args.size());
  for (const auto& a : e.args) out->args.push_back(CloneExpr(*a));
  return out;
}

sql::SelectStmt CloneSelect(const sql::SelectStmt& s) {
  sql::SelectStmt out;
  out.distinct = s.distinct;
  for (const auto& it : s.items) {
    sql::SelectItem item;
    item.expr = CloneExpr(*it.expr);
    item.alias = it.alias;
    out.items.push_back(std::move(item));
  }
  for (const auto& t : s.tables) {
    sql::TableRef ref;
    ref.name = t.name;
    ref.alias = t.alias;
    if (t.join_on) ref.join_on = CloneExpr(*t.join_on);
    out.tables.push_back(std::move(ref));
  }
  if (s.where) out.where = CloneExpr(*s.where);
  for (const auto& g : s.group_by) out.group_by.push_back(CloneExpr(*g));
  if (s.having) out.having = CloneExpr(*s.having);
  for (const auto& o : s.order_by) {
    sql::OrderItem oi;
    oi.expr = CloneExpr(*o.expr);
    oi.descending = o.descending;
    out.order_by.push_back(std::move(oi));
  }
  out.limit = s.limit;
  return out;
}

sql::ParseExprPtr MakeIdent(std::string qualifier, std::string name) {
  auto e = std::make_unique<sql::ParseExpr>();
  e->kind = sql::ParseExpr::Kind::kIdent;
  e->qualifier = std::move(qualifier);
  e->name = std::move(name);
  return e;
}

sql::ParseExprPtr MakeAnd(sql::ParseExprPtr a, sql::ParseExprPtr b) {
  auto e = std::make_unique<sql::ParseExpr>();
  e->kind = sql::ParseExpr::Kind::kBinary;
  e->op = "AND";
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

sql::ParseExprPtr MakeEq(sql::ParseExprPtr a, sql::ParseExprPtr b) {
  auto e = std::make_unique<sql::ParseExpr>();
  e->kind = sql::ParseExpr::Kind::kBinary;
  e->op = "=";
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

sql::ParseExprPtr MakeIsNull(sql::ParseExprPtr arg) {
  auto e = std::make_unique<sql::ParseExpr>();
  e->kind = sql::ParseExpr::Kind::kIsNull;
  e->args.push_back(std::move(arg));
  return e;
}

sql::ParseExprPtr LiteralOf(const Value& v) {
  auto e = std::make_unique<sql::ParseExpr>();
  if (v.is_null()) {
    e->kind = sql::ParseExpr::Kind::kNullLit;
    return e;
  }
  switch (v.type()) {
    case ValueType::kInt64:
      e->kind = sql::ParseExpr::Kind::kIntLit;
      e->int_val = v.AsInt64();
      break;
    case ValueType::kDouble:
      e->kind = sql::ParseExpr::Kind::kDoubleLit;
      e->double_val = v.AsDouble();
      break;
    case ValueType::kString:
      e->kind = sql::ParseExpr::Kind::kStringLit;
      e->str_val = v.AsString();
      break;
  }
  return e;
}

// Aggregate call with one argument (or * when arg is null).
sql::ParseExprPtr MakeAggCall(const std::string& fn, sql::ParseExprPtr arg) {
  auto e = std::make_unique<sql::ParseExpr>();
  e->kind = sql::ParseExpr::Kind::kCall;
  e->name = fn;
  if (!arg) {
    auto star = std::make_unique<sql::ParseExpr>();
    star->kind = sql::ParseExpr::Kind::kStar;
    arg = std::move(star);
  }
  e->args.push_back(std::move(arg));
  return e;
}

void FlattenConjuncts(const sql::ParseExpr* e,
                      std::vector<const sql::ParseExpr*>* out) {
  if (e->kind == sql::ParseExpr::Kind::kBinary && e->op == "AND") {
    FlattenConjuncts(e->args[0].get(), out);
    FlattenConjuncts(e->args[1].get(), out);
    return;
  }
  out->push_back(e);
}

// ---------------------------------------------------------------------------
// Name resolution over the FROM list.
// ---------------------------------------------------------------------------

struct Binding {
  std::vector<Table*> tables;
  std::vector<std::string> aliases;
  std::map<std::string, int> by_alias;

  bool Resolve(const std::string& qualifier, const std::string& name, int* t,
               int* c) const {
    if (!qualifier.empty()) {
      auto it = by_alias.find(qualifier);
      if (it == by_alias.end()) return false;
      int col = tables[it->second]->schema().FindColumn(name);
      if (col < 0) return false;
      *t = it->second;
      *c = col;
      return true;
    }
    int found_t = -1, found_c = -1;
    for (size_t i = 0; i < tables.size(); ++i) {
      int col = tables[i]->schema().FindColumn(name);
      if (col < 0) continue;
      if (found_t >= 0) return false;  // ambiguous
      found_t = static_cast<int>(i);
      found_c = col;
    }
    if (found_t < 0) return false;
    *t = found_t;
    *c = found_c;
    return true;
  }
};

// Alias-independent canonical text: identifiers render as the resolved
// "<base table name>.<column>", everything else mirrors ParseExpr::ToString.
// Only self-consistency matters — the same predicate written against any
// alias spelling canonicalizes to the same string.
bool CanonText(const sql::ParseExpr& e, const Binding& b, std::string* out) {
  using K = sql::ParseExpr::Kind;
  switch (e.kind) {
    case K::kIdent: {
      int t, c;
      if (!b.Resolve(e.qualifier, e.name, &t, &c)) return false;
      *out += b.tables[t]->name();
      *out += '.';
      *out += b.tables[t]->schema().column(c).name;
      return true;
    }
    case K::kIntLit:
      *out += std::to_string(e.int_val);
      return true;
    case K::kDoubleLit:
      *out += std::to_string(e.double_val);
      return true;
    case K::kStringLit:
      *out += '\'';
      *out += e.str_val;
      *out += '\'';
      return true;
    case K::kNullLit:
      *out += "NULL";
      return true;
    case K::kStar:
      *out += '*';
      return true;
    case K::kBinary: {
      *out += '(';
      if (!CanonText(*e.args[0], b, out)) return false;
      *out += ' ';
      *out += e.op;
      *out += ' ';
      if (!CanonText(*e.args[1], b, out)) return false;
      *out += ')';
      return true;
    }
    case K::kUnaryNot:
      *out += "(NOT ";
      if (!CanonText(*e.args[0], b, out)) return false;
      *out += ')';
      return true;
    case K::kUnaryMinus:
      *out += "(-";
      if (!CanonText(*e.args[0], b, out)) return false;
      *out += ')';
      return true;
    case K::kCall: {
      *out += e.name;
      *out += '(';
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i) *out += ", ";
        if (!CanonText(*e.args[i], b, out)) return false;
      }
      *out += ')';
      return true;
    }
    case K::kIsNull:
      if (!CanonText(*e.args[0], b, out)) return false;
      *out += " IS NULL";
      return true;
  }
  return false;
}

// Collects the distinct base-table indices an expression references.
bool ReferencedTables(const sql::ParseExpr& e, const Binding& b,
                      std::set<int>* out) {
  if (e.kind == sql::ParseExpr::Kind::kIdent) {
    int t, c;
    if (!b.Resolve(e.qualifier, e.name, &t, &c)) return false;
    out->insert(t);
    return true;
  }
  for (const auto& a : e.args) {
    if (!ReferencedTables(*a, b, out)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// FROM/WHERE decomposition shared by CREATE validation and routing.
// ---------------------------------------------------------------------------

struct LocalPred {
  int table = 0;
  const sql::ParseExpr* expr = nullptr;  // borrowed from the statement
  std::string text;                      // canonical
};

struct Decomposed {
  Binding binding;
  std::vector<ViewDef::Edge> edges;
  std::vector<std::string> edge_texts;  // canonical, one per edge
  std::vector<LocalPred> locals;
};

std::string EdgeText(const Binding& b, const ViewDef::Edge& e) {
  std::string l = b.tables[e.lt]->name() + "." +
                  b.tables[e.lt]->schema().column(e.lc).name;
  std::string r = b.tables[e.rt]->name() + "." +
                  b.tables[e.rt]->schema().column(e.rc).name;
  if (r < l) std::swap(l, r);
  return l + "=" + r;
}

// `is_view` filters out backing tables: a view cannot be defined over (or a
// routed query matched against) another view.
Status Decompose(const sql::SelectStmt& stmt, const Catalog& catalog,
                 const std::function<bool(const std::string&)>& is_view,
                 Decomposed* out) {
  if (stmt.tables.empty()) {
    return Status::InvalidArgument("FROM clause required");
  }
  std::set<std::string> names;
  for (const auto& ref : stmt.tables) {
    Table* t = catalog.GetTable(ref.name);
    if (t == nullptr) return Status::NotFound("no such table: " + ref.name);
    if (is_view && is_view(ref.name)) {
      return Status::InvalidArgument("views over views unsupported: " +
                                     ref.name);
    }
    if (!names.insert(ref.name).second) {
      return Status::InvalidArgument("self-joins unsupported: " + ref.name);
    }
    std::string alias = ref.alias.empty() ? ref.name : ref.alias;
    if (out->binding.by_alias.count(alias)) {
      return Status::InvalidArgument("duplicate table alias: " + alias);
    }
    out->binding.by_alias[alias] =
        static_cast<int>(out->binding.tables.size());
    out->binding.tables.push_back(t);
    out->binding.aliases.push_back(alias);
  }

  std::vector<const sql::ParseExpr*> conjuncts;
  if (stmt.where) FlattenConjuncts(stmt.where.get(), &conjuncts);
  for (const auto& ref : stmt.tables) {
    if (ref.join_on) FlattenConjuncts(ref.join_on.get(), &conjuncts);
  }

  for (const sql::ParseExpr* c : conjuncts) {
    using K = sql::ParseExpr::Kind;
    if (c->kind == K::kBinary && c->op == "=" &&
        c->args[0]->kind == K::kIdent && c->args[1]->kind == K::kIdent) {
      int lt, lc, rt, rc;
      if (!out->binding.Resolve(c->args[0]->qualifier, c->args[0]->name, &lt,
                                &lc) ||
          !out->binding.Resolve(c->args[1]->qualifier, c->args[1]->name, &rt,
                                &rc)) {
        return Status::InvalidArgument("unresolvable column in: " +
                                       c->ToString());
      }
      if (lt != rt) {
        ViewDef::Edge e{lt, lc, rt, rc};
        out->edge_texts.push_back(EdgeText(out->binding, e));
        out->edges.push_back(e);
        continue;
      }
      // same-table equality falls through to the local-predicate path
    }
    std::set<int> refs;
    if (!ReferencedTables(*c, out->binding, &refs)) {
      return Status::InvalidArgument("unresolvable column in: " +
                                     c->ToString());
    }
    if (refs.size() > 1) {
      return Status::InvalidArgument(
          "cross-table predicate is not an equality join edge: " +
          c->ToString());
    }
    LocalPred lp;
    lp.table = refs.empty() ? 0 : *refs.begin();
    lp.expr = c;
    if (!CanonText(*c, out->binding, &lp.text)) {
      return Status::InvalidArgument("unresolvable column in: " +
                                     c->ToString());
    }
    out->locals.push_back(std::move(lp));
  }
  return Status::OK();
}

bool GraphConnected(size_t n, const std::vector<ViewDef::Edge>& edges) {
  if (n <= 1) return true;
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const auto& e : edges) parent[find(e.lt)] = find(e.rt);
  int root = find(0);
  for (size_t i = 1; i < n; ++i) {
    if (find(static_cast<int>(i)) != root) return false;
  }
  return true;
}

// BFS order over the join graph starting at `start` (start excluded).
std::vector<int> JoinOrderFrom(int start, size_t n,
                               const std::vector<ViewDef::Edge>& edges) {
  std::vector<std::vector<int>> adj(n);
  for (const auto& e : edges) {
    adj[e.lt].push_back(e.rt);
    adj[e.rt].push_back(e.lt);
  }
  std::vector<bool> seen(n, false);
  std::vector<int> queue{start}, order;
  seen[start] = true;
  for (size_t head = 0; head < queue.size(); ++head) {
    int cur = queue[head];
    if (cur != start) order.push_back(cur);
    for (int nxt : adj[cur]) {
      if (!seen[nxt]) {
        seen[nxt] = true;
        queue.push_back(nxt);
      }
    }
  }
  return order;
}

// ---------------------------------------------------------------------------
// Value / row utilities.
// ---------------------------------------------------------------------------

bool ValuesEqual(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  return a.Compare(b) == 0;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ValuesEqual(a[i], b[i])) return false;
  }
  return true;
}

// Coerces a build-query output cell into the backing column's type and
// nullability (hidden state columns are non-null: SUM's NULL-on-empty
// finalization becomes a stored zero; AVG's int sums widen to double).
Value CoerceTo(const Value& v, const ColumnDef& col) {
  if (v.is_null()) {
    if (col.nullable) return Value::Null(col.type);
    switch (col.type) {
      case ValueType::kInt64:
        return Value::Int64(0);
      case ValueType::kDouble:
        return Value::Double(0);
      case ValueType::kString:
        return Value::String("");
    }
  }
  if (v.type() == col.type) return v;
  if (col.type == ValueType::kDouble) return Value::Double(v.AsDouble());
  if (col.type == ValueType::kInt64 && v.type() == ValueType::kDouble) {
    return Value::Int64(static_cast<int64_t>(v.AsDouble()));
  }
  return v;
}

Result<Row> CoerceRow(const Row& r, const Schema& schema) {
  if (r.size() != schema.num_columns()) {
    return Status::Internal("view build row width mismatch");
  }
  Row out;
  out.reserve(r.size());
  for (size_t i = 0; i < r.size(); ++i) {
    out.push_back(CoerceTo(r[i], schema.column(i)));
  }
  return out;
}

bool PassesLocal(const ViewDef& v, int table, const Row& row) {
  for (const ExprPtr& e : v.local_bound[table]) {
    if (!e->EvalRow(row).AsBool()) return false;
  }
  return true;
}

Result<std::vector<Row>> RunQueryAt(const sql::SelectStmt& q,
                                    const Catalog& catalog, Timestamp ts) {
  auto plan = sql::PlanSelect(q, catalog, ts);
  if (!plan.ok()) return plan.status();
  return ExecutePlan(plan->root.get());
}

struct AggFnInfo {
  AggSpec::Fn fn;
  bool ok = false;
};

AggFnInfo AggFnFromCall(const sql::ParseExpr& e) {
  AggFnInfo info;
  if (e.kind != sql::ParseExpr::Kind::kCall || e.args.size() != 1) {
    return info;
  }
  const bool star = e.args[0]->kind == sql::ParseExpr::Kind::kStar;
  if (e.name == "COUNT") {
    info.fn = star ? AggSpec::Fn::kCountStar : AggSpec::Fn::kCount;
    info.ok = true;
  } else if (!star && e.name == "SUM") {
    info.fn = AggSpec::Fn::kSum;
    info.ok = true;
  } else if (!star && e.name == "MIN") {
    info.fn = AggSpec::Fn::kMin;
    info.ok = true;
  } else if (!star && e.name == "MAX") {
    info.fn = AggSpec::Fn::kMax;
    info.ok = true;
  } else if (!star && e.name == "AVG") {
    info.fn = AggSpec::Fn::kAvg;
    info.ok = true;
  }
  return info;
}

// Metric handles (preregistered in obs/metrics.cc; GetX is idempotent).
obs::Counter* MaintainRuns() {
  return obs::MetricsRegistry::Default()->GetCounter("view.maintain_runs");
}
obs::Counter* ChangesApplied() {
  return obs::MetricsRegistry::Default()->GetCounter("view.changes_applied");
}
obs::Counter* Rebuilds() {
  return obs::MetricsRegistry::Default()->GetCounter("view.rebuilds");
}
obs::Counter* GroupRecomputes() {
  return obs::MetricsRegistry::Default()->GetCounter(
      "view.group_recomputes");
}
obs::Histogram* MaintainNs() {
  return obs::MetricsRegistry::Default()->GetHistogram("view.maintain_ns");
}
obs::Histogram* FreshnessLagUs() {
  return obs::MetricsRegistry::Default()->GetHistogram(
      "view.freshness_lag_us");
}

}  // namespace

// ---------------------------------------------------------------------------
// CREATE MATERIALIZED VIEW
// ---------------------------------------------------------------------------

Status ViewManager::Create(const sql::CreateViewStmt& stmt) {
  if (stmt.select == nullptr) {
    return Status::InvalidArgument("view definition missing");
  }
  const sql::SelectStmt& sel = *stmt.select;
  if (sel.distinct) {
    return Status::InvalidArgument("DISTINCT unsupported in views");
  }
  if (sel.having) {
    return Status::InvalidArgument("HAVING unsupported in views");
  }
  if (!sel.order_by.empty() || sel.limit >= 0) {
    return Status::InvalidArgument("ORDER BY/LIMIT unsupported in views");
  }

  auto def = std::make_unique<ViewDef>();
  def->name = stmt.name;
  def->sync = stmt.sync;
  def->max_staleness_us = stmt.max_staleness_us;
  def->select = CloneSelect(sel);
  def->fingerprint = sql::StatementFingerprint(sel);

  Decomposed d;
  OLTAP_RETURN_NOT_OK(Decompose(
      sel, *catalog_, [this](const std::string& n) { return IsView(n); },
      &d));
  if (!GraphConnected(d.binding.tables.size(), d.edges)) {
    return Status::InvalidArgument("join graph must be connected");
  }
  // Join edges must connect same-typed columns: delta-join key probes
  // encode values with the partner column's type.
  for (const auto& e : d.edges) {
    if (d.binding.tables[e.lt]->schema().column(e.lc).type !=
        d.binding.tables[e.rt]->schema().column(e.rc).type) {
      return Status::InvalidArgument("join edge joins mismatched types");
    }
  }

  def->bases = d.binding.tables;
  def->aliases = d.binding.aliases;
  def->edges = d.edges;
  const size_t nbases = def->bases.size();
  def->local_preds.resize(nbases);
  def->local_bound.resize(nbases);
  for (const LocalPred& lp : d.locals) {
    auto bound = sql::BindOverSchema(*lp.expr,
                                     def->bases[lp.table]->schema(),
                                     def->aliases[lp.table]);
    if (!bound.ok()) return bound.status();
    def->local_preds[lp.table].push_back(CloneExpr(*lp.expr));
    def->local_bound[lp.table].push_back(std::move(bound).value());
    def->local_pred_texts.push_back(lp.text);
  }
  std::sort(def->local_pred_texts.begin(), def->local_pred_texts.end());
  for (size_t i = 0; i < nbases; ++i) {
    def->join_orders.push_back(
        JoinOrderFrom(static_cast<int>(i), nbases, def->edges));
  }

  // --- Select-list classification. ---
  bool any_agg = false;
  std::set<std::string> out_names;
  for (const auto& item : sel.items) {
    const sql::ParseExpr& e = *item.expr;
    // Unaliased plain columns surface under their bare column name (SQL
    // output-name semantics), so `SELECT t.a ...` is queryable as
    // `SELECT a FROM view`; a qualified default like "t.a" would not be.
    std::string out_name =
        !item.alias.empty()                      ? item.alias
        : e.kind == sql::ParseExpr::Kind::kIdent ? e.name
                                                 : e.ToString();
    if (out_name.rfind("__", 0) == 0) {
      return Status::InvalidArgument("view column names may not start __");
    }
    if (!out_names.insert(out_name).second) {
      return Status::InvalidArgument("duplicate view column: " + out_name);
    }
    ViewDef::ItemOut out;
    out.name_out = out_name;
    if (sql::ContainsAggregate(e)) {
      AggFnInfo fi = AggFnFromCall(e);
      if (!fi.ok) {
        return Status::InvalidArgument(
            "view aggregates must be bare COUNT/SUM/MIN/MAX/AVG calls: " +
            e.ToString());
      }
      any_agg = true;
      ViewDef::AggDef ad;
      ad.fn = fi.fn;
      if (fi.fn != AggSpec::Fn::kCountStar) {
        const sql::ParseExpr& arg = *e.args[0];
        if (arg.kind != sql::ParseExpr::Kind::kIdent ||
            !d.binding.Resolve(arg.qualifier, arg.name, &ad.table,
                               &ad.col)) {
          return Status::InvalidArgument(
              "view aggregate arguments must be plain columns: " +
              e.ToString());
        }
        ValueType at = def->bases[ad.table]->schema().column(ad.col).type;
        if ((fi.fn == AggSpec::Fn::kSum || fi.fn == AggSpec::Fn::kAvg) &&
            at == ValueType::kString) {
          return Status::InvalidArgument("SUM/AVG over string column");
        }
        switch (fi.fn) {
          case AggSpec::Fn::kCount:
            ad.out_type = ValueType::kInt64;
            break;
          case AggSpec::Fn::kAvg:
            ad.out_type = ValueType::kDouble;
            break;
          default:
            ad.out_type = at;
        }
        ad.sum_is_int =
            fi.fn == AggSpec::Fn::kSum && at == ValueType::kInt64;
        // MIN/MAX cannot un-fold a delete; double-typed sums would drift
        // from a recompute (FP addition is order-sensitive). Both fall
        // back to recomputing the affected group from the bases.
        ad.recompute_on_delete =
            fi.fn == AggSpec::Fn::kMin || fi.fn == AggSpec::Fn::kMax ||
            ((fi.fn == AggSpec::Fn::kSum || fi.fn == AggSpec::Fn::kAvg) &&
             at == ValueType::kDouble);
        std::string canon;
        if (!CanonText(e, d.binding, &canon)) {
          return Status::InvalidArgument("unresolvable aggregate: " +
                                         e.ToString());
        }
        ad.text = canon;
      } else {
        ad.out_type = ValueType::kInt64;
        ad.text = "COUNT(*)";
      }
      ad.visible_idx = static_cast<int>(def->items.size());
      out.is_agg = true;
      out.agg_idx = static_cast<int>(def->aggs.size());
      def->aggs.push_back(ad);
    } else {
      if (e.kind != sql::ParseExpr::Kind::kIdent ||
          !d.binding.Resolve(e.qualifier, e.name, &out.table, &out.col)) {
        return Status::InvalidArgument(
            "view select items must be plain columns or aggregates: " +
            e.ToString());
      }
    }
    def->items.push_back(std::move(out));
  }

  def->is_aggregate = any_agg || !sel.group_by.empty();
  std::vector<ColumnDef> cols;
  std::vector<std::string> key_names;

  if (def->is_aggregate) {
    if (sel.group_by.empty()) {
      return Status::InvalidArgument(
          "aggregate views need at least one GROUP BY column");
    }
    // Mirror the planner's contract: non-aggregate select items and GROUP
    // BY entries must correspond textually.
    std::set<std::string> group_texts, item_texts;
    for (const auto& g : sel.group_by) {
      if (g->kind != sql::ParseExpr::Kind::kIdent) {
        return Status::InvalidArgument("GROUP BY must list plain columns");
      }
      group_texts.insert(g->ToString());
    }
    for (size_t k = 0; k < def->items.size(); ++k) {
      if (def->items[k].is_agg) continue;
      item_texts.insert(sel.items[k].expr->ToString());
    }
    if (group_texts != item_texts) {
      return Status::InvalidArgument(
          "GROUP BY columns and non-aggregate select items must match");
    }
    for (size_t k = 0; k < def->items.size(); ++k) {
      const ViewDef::ItemOut& it = def->items[k];
      if (it.is_agg) {
        cols.push_back({it.name_out, def->aggs[it.agg_idx].out_type, true});
      } else {
        const ColumnDef& src =
            def->bases[it.table]->schema().column(it.col);
        cols.push_back({it.name_out, src.type, src.nullable});
        key_names.push_back(it.name_out);
      }
    }
    def->rows_idx = static_cast<int>(cols.size());
    cols.push_back({"__rows", ValueType::kInt64, false});
    for (size_t j = 0; j < def->aggs.size(); ++j) {
      ViewDef::AggDef& ad = def->aggs[j];
      switch (ad.fn) {
        case AggSpec::Fn::kCountStar:
          ad.count_idx = def->rows_idx;
          break;
        case AggSpec::Fn::kCount:
          ad.count_idx = ad.visible_idx;
          break;
        case AggSpec::Fn::kMin:
        case AggSpec::Fn::kMax:
          break;  // no hidden state; deletes recompute
        case AggSpec::Fn::kSum:
        case AggSpec::Fn::kAvg: {
          ad.count_idx = static_cast<int>(cols.size());
          cols.push_back(
              {"__c" + std::to_string(j), ValueType::kInt64, false});
          ad.sum_idx = static_cast<int>(cols.size());
          cols.push_back({"__s" + std::to_string(j),
                          ad.sum_is_int ? ValueType::kInt64
                                        : ValueType::kDouble,
                          false});
          break;
        }
      }
    }
    // Build query = definition + hidden-state aggregates, in backing
    // schema order.
    def->build_query = CloneSelect(sel);
    {
      sql::SelectItem rows_item;
      rows_item.expr = MakeAggCall("COUNT", nullptr);
      rows_item.alias = "__rows";
      def->build_query.items.push_back(std::move(rows_item));
    }
    for (size_t j = 0; j < def->aggs.size(); ++j) {
      const ViewDef::AggDef& ad = def->aggs[j];
      if (ad.fn != AggSpec::Fn::kSum && ad.fn != AggSpec::Fn::kAvg) {
        continue;
      }
      const std::string& col_name =
          def->bases[ad.table]->schema().column(ad.col).name;
      sql::SelectItem c_item;
      c_item.expr = MakeAggCall(
          "COUNT", MakeIdent(def->aliases[ad.table], col_name));
      c_item.alias = "__c" + std::to_string(j);
      def->build_query.items.push_back(std::move(c_item));
      sql::SelectItem s_item;
      s_item.expr =
          MakeAggCall("SUM", MakeIdent(def->aliases[ad.table], col_name));
      s_item.alias = "__s" + std::to_string(j);
      def->build_query.items.push_back(std::move(s_item));
    }
  } else {
    // Join view: the backing key is the union of every base's primary key,
    // which the select list must cover (it makes join rows unique).
    for (size_t i = 0; i < nbases; ++i) {
      const Schema& s = def->bases[i]->schema();
      for (int pk : s.key_columns()) {
        bool covered = false;
        for (const auto& it : def->items) {
          if (it.table == static_cast<int>(i) && it.col == pk) {
            covered = true;
            break;
          }
        }
        if (!covered) {
          return Status::InvalidArgument(
              "join view must select every base primary-key column "
              "(missing " +
              def->bases[i]->name() + "." + s.column(pk).name + ")");
        }
      }
    }
    for (const auto& it : def->items) {
      const ColumnDef& src = def->bases[it.table]->schema().column(it.col);
      cols.push_back({it.name_out, src.type, src.nullable});
      const auto& pks = def->bases[it.table]->schema().key_columns();
      if (std::find(pks.begin(), pks.end(), it.col) != pks.end()) {
        key_names.push_back(it.name_out);
      }
    }
    def->build_query = CloneSelect(sel);
  }

  std::vector<int> key_idx;
  for (const std::string& kn : key_names) {
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].name == kn) {
        key_idx.push_back(static_cast<int>(i));
        break;
      }
    }
  }
  if (key_idx.empty()) {
    return Status::InvalidArgument("view has no usable primary key");
  }

  OLTAP_RETURN_NOT_OK(catalog_->CreateTable(
      def->name, Schema(std::move(cols), std::move(key_idx)),
      TableFormat::kDual));
  def->backing = catalog_->GetTable(def->name);

  // Subscribe before the initial build: changes committed while the build
  // scan runs land in the logs with ts > the build snapshot and are picked
  // up by the first maintenance round.
  for (Table* b : def->bases) b->EnsureChangeLog();

  Status built = RefreshLocked(def.get());
  if (!built.ok()) {
    catalog_->DropTable(def->name);
    return built;
  }

  {
    std::unique_lock lock(mu_);
    for (const auto& v : views_) {
      if (v->name == def->name) {
        lock.unlock();
        catalog_->DropTable(def->name);
        return Status::AlreadyExists("view exists: " + def->name);
      }
    }
    views_.push_back(std::move(def));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Refresh (full rebuild)
// ---------------------------------------------------------------------------

Status ViewManager::RefreshLocked(ViewDef* v) {
  MaintenanceScope scope;
  auto txn = tm_->Begin();
  const Timestamp snapshot = txn->begin_ts();
  const Schema& bs = v->backing->schema();

  Status st = [&]() -> Status {
    std::vector<std::string> keys;
    txn->Scan(v->backing,
              [&](const Row& r) { keys.push_back(EncodeKey(bs, r)); });
    for (std::string& k : keys) {
      OLTAP_RETURN_NOT_OK(txn->DeleteByKey(v->backing, std::move(k)));
    }
    auto rows = RunQueryAt(v->build_query, *catalog_, snapshot);
    if (!rows.ok()) return rows.status();
    for (const Row& r : *rows) {
      auto coerced = CoerceRow(r, bs);
      if (!coerced.ok()) return coerced.status();
      OLTAP_RETURN_NOT_OK(
          txn->Insert(v->backing, std::move(coerced).value()));
    }
    return Status::OK();
  }();
  if (st.ok()) {
    st = tm_->Commit(txn.get());
  } else {
    tm_->Abort(txn.get());
  }
  if (!st.ok()) return st;

  v->applied_ts.store(snapshot, std::memory_order_release);
  v->last_maintain_wall_us.store(SystemClock::Get()->NowMicros(),
                                 std::memory_order_release);
  TrimLogs(*v);
  Rebuilds()->Add(1);
  return Status::OK();
}

Status ViewManager::Refresh(const std::string& name) {
  ViewDef* v = Find(name);
  if (v == nullptr) return Status::NotFound("no such view: " + name);
  std::lock_guard<std::mutex> lock(v->mu);
  return RefreshLocked(v);
}

// ---------------------------------------------------------------------------
// Incremental maintenance
// ---------------------------------------------------------------------------

namespace {

struct SignedRow {
  int sign;  // +1 insert, -1 delete
  Row flat;  // base rows concatenated in FROM order
};

// Expands the change set of one source base into signed full join rows:
//   Δ(T1 ⋈ ... ⋈ Tn) = Σ_i T1^new..T_{i-1}^new ⋈ ΔT_i ⋈ T_{i+1}^old..Tn^old
// Tables before the source read the post-window snapshot (ts_new), tables
// after it read the pre-window snapshot (ts_old); processing sources in
// ascending FROM order makes the final positive row of any key the true
// post-state (used by the join-apply content-update path).
void ExpandSource(const ViewDef& v, int src,
                  const std::vector<ChangeLog::Change>& changes,
                  Timestamp ts_old, Timestamp ts_new,
                  const std::vector<size_t>& offsets,
                  std::vector<SignedRow>* out) {
  struct Partial {
    int sign;
    std::vector<Row> rows;  // indexed by base; bound slots filled
  };
  std::vector<Partial> partials;
  partials.reserve(changes.size());
  const size_t nbases = v.bases.size();
  for (const ChangeLog::Change& c : changes) {
    if (!PassesLocal(v, src, c.row)) continue;
    Partial p;
    p.sign = c.kind == ChangeLog::Kind::kInsert ? 1 : -1;
    p.rows.resize(nbases);
    p.rows[src] = c.row;
    partials.push_back(std::move(p));
  }

  for (int j : v.join_orders[src]) {
    if (partials.empty()) break;
    const Timestamp ts_j = j < src ? ts_new : ts_old;
    Table* tj = v.bases[j];
    const Schema& sj = tj->schema();

    // Edges from j to the already-bound set (join_orders guarantees >= 1;
    // bound set = {src} ∪ prefix of join_orders[src]).
    std::vector<int> jcols;
    std::vector<std::pair<int, int>> others;
    auto bound = [&](int t) {
      if (t == src) return true;
      for (int b : v.join_orders[src]) {
        if (b == j) return false;
        if (b == t) return true;
      }
      return false;
    };
    for (const ViewDef::Edge& e : v.edges) {
      if (e.lt == j && bound(e.rt)) {
        jcols.push_back(e.lc);
        others.emplace_back(e.rt, e.rc);
      } else if (e.rt == j && bound(e.lt)) {
        jcols.push_back(e.rc);
        others.emplace_back(e.lt, e.lc);
      }
    }

    // Point-lookup path when the edge columns cover j's primary key.
    bool point = sj.HasKey();
    for (int pk : sj.key_columns()) {
      if (std::find(jcols.begin(), jcols.end(), pk) == jcols.end()) {
        point = false;
        break;
      }
    }

    std::vector<Partial> next;
    if (point) {
      for (Partial& p : partials) {
        Row key_row(sj.num_columns());
        bool null_probe = false;
        for (size_t k = 0; k < jcols.size(); ++k) {
          const Value& val = p.rows[others[k].first][others[k].second];
          if (val.is_null()) {
            null_probe = true;  // SQL equality: NULL joins nothing
            break;
          }
          key_row[jcols[k]] = val;
        }
        if (null_probe) continue;
        Row fetched;
        if (!tj->Lookup(EncodeKey(sj, key_row), ts_j, &fetched)) continue;
        bool ok = PassesLocal(v, j, fetched);
        for (size_t k = 0; ok && k < jcols.size(); ++k) {
          const Value& a = fetched[jcols[k]];
          const Value& b = p.rows[others[k].first][others[k].second];
          ok = !a.is_null() && a.Compare(b) == 0;
        }
        if (!ok) continue;
        Partial np = p;
        np.rows[j] = std::move(fetched);
        next.push_back(std::move(np));
      }
    } else {
      std::unordered_multimap<std::string, Row> ht;
      tj->ScanVisible(ts_j, [&](const Row& r) {
        if (!PassesLocal(v, j, r)) return;
        for (int c : jcols) {
          if (r[c].is_null()) return;
        }
        ht.emplace(EncodeKeyColumns(r, jcols), r);
      });
      for (Partial& p : partials) {
        Row probe(sj.num_columns());
        bool null_probe = false;
        for (size_t k = 0; k < jcols.size(); ++k) {
          const Value& val = p.rows[others[k].first][others[k].second];
          if (val.is_null()) {
            null_probe = true;
            break;
          }
          probe[jcols[k]] = val;
        }
        if (null_probe) continue;
        auto [lo, hi] = ht.equal_range(EncodeKeyColumns(probe, jcols));
        for (auto it = lo; it != hi; ++it) {
          Partial np = p;
          np.rows[j] = it->second;
          next.push_back(std::move(np));
        }
      }
    }
    partials = std::move(next);
  }

  for (Partial& p : partials) {
    SignedRow sr;
    sr.sign = p.sign;
    sr.flat.resize(offsets.back());
    for (size_t t = 0; t < nbases; ++t) {
      for (size_t c = 0; c < p.rows[t].size(); ++c) {
        sr.flat[offsets[t] + c] = std::move(p.rows[t][c]);
      }
    }
    out->push_back(std::move(sr));
  }
}

}  // namespace

Status ViewManager::MaintainLocked(ViewDef* v) {
  MaintenanceScope scope;
  const int64_t start_us = SystemClock::Get()->NowMicros();
  auto txn = tm_->Begin();
  const Timestamp window_end = txn->begin_ts();
  const Timestamp window_start = v->applied_ts.load(std::memory_order_acquire);
  const size_t nbases = v->bases.size();

  std::vector<std::vector<ChangeLog::Change>> changes(nbases);
  size_t total = 0;
  int64_t oldest_wall = 0;
  for (size_t i = 0; i < nbases; ++i) {
    if (ChangeLog* log = v->bases[i]->change_log()) {
      log->Collect(window_start, window_end, &changes[i]);
      total += changes[i].size();
      for (const auto& c : changes[i]) {
        if (oldest_wall == 0 || c.wall_us < oldest_wall) {
          oldest_wall = c.wall_us;
        }
      }
    }
  }
  if (total == 0) {
    // Nothing to fold, but advancing the cursor matters: it is the GC
    // horizon pre-state reads pin, and it lets the logs trim.
    tm_->Abort(txn.get());
    v->applied_ts.store(window_end, std::memory_order_release);
    TrimLogs(*v);
    return Status::OK();
  }

  // Signed full join rows, sources in ascending FROM order.
  std::vector<size_t> offsets(nbases + 1, 0);
  for (size_t i = 0; i < nbases; ++i) {
    offsets[i + 1] = offsets[i] + v->bases[i]->schema().num_columns();
  }
  std::vector<SignedRow> delta;
  for (size_t i = 0; i < nbases; ++i) {
    if (!changes[i].empty()) {
      ExpandSource(*v, static_cast<int>(i), changes[i], window_start,
                   window_end, offsets, &delta);
    }
  }

  const Schema& bs = v->backing->schema();
  Status st = [&]() -> Status {
    if (!v->is_aggregate) {
      // --- Join view: accumulate net multiplicity per backing key. ---
      struct JoinAcc {
        int net = 0;
        bool has_pos = false;
        Row pos;
      };
      std::map<std::string, JoinAcc> accs;
      for (SignedRow& sr : delta) {
        Row brow(bs.num_columns());
        for (size_t k = 0; k < v->items.size(); ++k) {
          const ViewDef::ItemOut& it = v->items[k];
          brow[k] = sr.flat[offsets[it.table] + it.col];
        }
        JoinAcc& a = accs[EncodeKey(bs, brow)];
        a.net += sr.sign;
        if (sr.sign > 0) {
          a.has_pos = true;
          a.pos = std::move(brow);
        }
      }
      for (auto& [key, a] : accs) {
        Row old;
        const bool exists = txn->Get(v->backing, key, &old);
        if (a.net > 0) {
          OLTAP_RETURN_NOT_OK(exists
                                  ? txn->Update(v->backing, std::move(a.pos))
                                  : txn->Insert(v->backing,
                                                std::move(a.pos)));
        } else if (a.net < 0) {
          if (exists) OLTAP_RETURN_NOT_OK(txn->DeleteByKey(v->backing, key));
        } else if (a.has_pos && exists && !RowsEqual(old, a.pos)) {
          // Same key survived the window but its content changed (update
          // of a non-key column).
          OLTAP_RETURN_NOT_OK(txn->Update(v->backing, std::move(a.pos)));
        }
      }
      return Status::OK();
    }

    // --- Aggregate view: accumulate per-group deltas. ---
    std::vector<size_t> group_items;  // indices into items (== backing col)
    for (size_t k = 0; k < v->items.size(); ++k) {
      if (!v->items[k].is_agg) group_items.push_back(k);
    }
    struct AggAcc {
      Row group_vals;
      int64_t net_rows = 0;
      bool any_delete = false;
      struct PerAgg {
        int64_t cnt = 0;
        int64_t isum = 0;
        double dsum = 0;
        bool best_any = false;
        Value best;
      };
      std::vector<PerAgg> per;
    };
    std::map<std::string, AggAcc> groups;
    for (const SignedRow& sr : delta) {
      Row gvals;
      gvals.reserve(group_items.size());
      for (size_t gi : group_items) {
        const ViewDef::ItemOut& it = v->items[gi];
        gvals.push_back(sr.flat[offsets[it.table] + it.col]);
      }
      AggAcc& g = groups[HashKeyOf(gvals)];
      if (g.per.empty()) {
        g.group_vals = std::move(gvals);
        g.per.resize(v->aggs.size());
      }
      g.net_rows += sr.sign;
      if (sr.sign < 0) g.any_delete = true;
      for (size_t j = 0; j < v->aggs.size(); ++j) {
        const ViewDef::AggDef& ad = v->aggs[j];
        if (ad.fn == AggSpec::Fn::kCountStar) continue;
        const Value& arg = sr.flat[offsets[ad.table] + ad.col];
        if (arg.is_null()) continue;
        AggAcc::PerAgg& pa = g.per[j];
        pa.cnt += sr.sign;
        pa.isum += sr.sign * arg.AsInt64();
        pa.dsum += sr.sign * arg.AsDouble();
        if (sr.sign > 0 &&
            (ad.fn == AggSpec::Fn::kMin || ad.fn == AggSpec::Fn::kMax)) {
          if (!pa.best_any) {
            pa.best_any = true;
            pa.best = arg;
          } else if (ad.fn == AggSpec::Fn::kMin ? arg.Compare(pa.best) < 0
                                                : arg.Compare(pa.best) > 0) {
            pa.best = arg;
          }
        }
      }
    }

    bool any_fragile = false;
    for (const auto& ad : v->aggs) any_fragile |= ad.recompute_on_delete;

    for (auto& [hk, g] : groups) {
      Row probe(bs.num_columns());
      for (size_t k = 0; k < group_items.size(); ++k) {
        probe[group_items[k]] = g.group_vals[k];
      }
      const std::string key = EncodeKey(bs, probe);
      Row old;
      const bool exists = txn->Get(v->backing, key, &old);

      if (g.any_delete && any_fragile) {
        // Recompute this group from the bases at the window-end snapshot:
        // the build query filtered to the group's key values goes through
        // the same planner/aggregation path as a full rebuild, so the
        // resulting row is cell-identical to what REFRESH would store.
        sql::SelectStmt q = CloneSelect(v->build_query);
        for (size_t k = 0; k < group_items.size(); ++k) {
          const ViewDef::ItemOut& it = v->items[group_items[k]];
          auto id = MakeIdent(
              v->aliases[it.table],
              v->bases[it.table]->schema().column(it.col).name);
          sql::ParseExprPtr pred =
              g.group_vals[k].is_null()
                  ? MakeIsNull(std::move(id))
                  : MakeEq(std::move(id), LiteralOf(g.group_vals[k]));
          q.where = q.where ? MakeAnd(std::move(q.where), std::move(pred))
                            : std::move(pred);
        }
        auto rows = RunQueryAt(q, *catalog_, window_end);
        if (!rows.ok()) return rows.status();
        GroupRecomputes()->Add(1);
        if (rows->empty()) {
          if (exists) {
            OLTAP_RETURN_NOT_OK(txn->DeleteByKey(v->backing, key));
          }
        } else if (rows->size() == 1) {
          auto coerced = CoerceRow((*rows)[0], bs);
          if (!coerced.ok()) return coerced.status();
          OLTAP_RETURN_NOT_OK(
              exists ? txn->Update(v->backing, std::move(coerced).value())
                     : txn->Insert(v->backing, std::move(coerced).value()));
        } else {
          return Status::Internal("group recompute returned >1 row");
        }
        continue;
      }

      const int64_t old_rows = exists ? old[v->rows_idx].AsInt64() : 0;
      const int64_t new_rows = old_rows + g.net_rows;
      if (new_rows <= 0) {
        if (exists) OLTAP_RETURN_NOT_OK(txn->DeleteByKey(v->backing, key));
        continue;
      }
      Row nrow = exists ? std::move(old) : std::move(probe);
      nrow[v->rows_idx] = Value::Int64(new_rows);
      for (size_t j = 0; j < v->aggs.size(); ++j) {
        const ViewDef::AggDef& ad = v->aggs[j];
        const AggAcc::PerAgg& pa = g.per[j];
        switch (ad.fn) {
          case AggSpec::Fn::kCountStar:
            nrow[ad.visible_idx] = Value::Int64(new_rows);
            break;
          case AggSpec::Fn::kCount: {
            const int64_t old_c =
                exists ? nrow[ad.visible_idx].AsInt64() : 0;
            nrow[ad.visible_idx] = Value::Int64(old_c + pa.cnt);
            break;
          }
          case AggSpec::Fn::kSum: {
            const int64_t old_c = exists ? nrow[ad.count_idx].AsInt64() : 0;
            const int64_t new_c = old_c + pa.cnt;
            nrow[ad.count_idx] = Value::Int64(new_c);
            if (ad.sum_is_int) {
              const int64_t new_s =
                  (exists ? nrow[ad.sum_idx].AsInt64() : 0) + pa.isum;
              nrow[ad.sum_idx] = Value::Int64(new_s);
              nrow[ad.visible_idx] = new_c > 0
                                         ? Value::Int64(new_s)
                                         : Value::Null(ValueType::kInt64);
            } else {
              const double new_s =
                  (exists ? nrow[ad.sum_idx].AsDouble() : 0) + pa.dsum;
              nrow[ad.sum_idx] = Value::Double(new_s);
              nrow[ad.visible_idx] = new_c > 0
                                         ? Value::Double(new_s)
                                         : Value::Null(ValueType::kDouble);
            }
            break;
          }
          case AggSpec::Fn::kAvg: {
            const int64_t old_c = exists ? nrow[ad.count_idx].AsInt64() : 0;
            const int64_t new_c = old_c + pa.cnt;
            const double new_s =
                (exists ? nrow[ad.sum_idx].AsDouble() : 0) + pa.dsum;
            nrow[ad.count_idx] = Value::Int64(new_c);
            nrow[ad.sum_idx] = Value::Double(new_s);
            nrow[ad.visible_idx] =
                new_c > 0 ? Value::Double(new_s / static_cast<double>(new_c))
                          : Value::Null(ValueType::kDouble);
            break;
          }
          case AggSpec::Fn::kMin:
          case AggSpec::Fn::kMax: {
            // Insert-only on this path (a delete would have forced the
            // recompute branch above).
            Value cur = exists ? nrow[ad.visible_idx]
                               : Value::Null(ad.out_type);
            if (pa.best_any) {
              if (cur.is_null()) {
                cur = pa.best;
              } else if (ad.fn == AggSpec::Fn::kMin
                             ? pa.best.Compare(cur) < 0
                             : pa.best.Compare(cur) > 0) {
                cur = pa.best;
              }
            }
            nrow[ad.visible_idx] = cur;
            break;
          }
        }
      }
      OLTAP_RETURN_NOT_OK(exists ? txn->Update(v->backing, std::move(nrow))
                                 : txn->Insert(v->backing, std::move(nrow)));
    }
    return Status::OK();
  }();

  if (st.ok()) {
    st = tm_->Commit(txn.get());
  } else {
    tm_->Abort(txn.get());
  }
  if (!st.ok()) return st;  // cursor unchanged: next round replays window

  v->applied_ts.store(window_end, std::memory_order_release);
  const int64_t now_us = SystemClock::Get()->NowMicros();
  v->last_maintain_wall_us.store(now_us, std::memory_order_release);
  TrimLogs(*v);
  MaintainRuns()->Add(1);
  ChangesApplied()->Add(total);
  MaintainNs()->Record(
      static_cast<uint64_t>((now_us - start_us) * 1000));
  if (oldest_wall > 0 && now_us > oldest_wall) {
    FreshnessLagUs()->Record(static_cast<uint64_t>(now_us - oldest_wall));
  }
  return Status::OK();
}

Status ViewManager::Maintain(const std::string& name) {
  ViewDef* v = Find(name);
  if (v == nullptr) return Status::NotFound("no such view: " + name);
  std::lock_guard<std::mutex> lock(v->mu);
  return MaintainLocked(v);
}

size_t ViewManager::MaintainAll() {
  std::vector<ViewDef*> all;
  {
    std::shared_lock lock(mu_);
    all.reserve(views_.size());
    for (const auto& v : views_) all.push_back(v.get());
  }
  size_t applied = 0;
  for (ViewDef* v : all) {
    const Timestamp cursor = v->applied_ts.load(std::memory_order_acquire);
    bool pending = false;
    for (Table* b : v->bases) {
      ChangeLog* log = b->change_log();
      if (log != nullptr && log->PendingSince(cursor) > 0) {
        pending = true;
        break;
      }
    }
    std::lock_guard<std::mutex> lock(v->mu);
    Status st = MaintainLocked(v);
    if (!st.ok()) {
      OLTAP_LOG(Warning) << "view maintenance failed for " << v->name << ": "
                         << st.ToString();
    } else if (pending) {
      ++applied;
    }
  }
  return applied;
}

void ViewManager::OnCommit(const std::vector<Table*>& tables, Timestamp) {
  if (t_in_maintenance) return;
  std::vector<ViewDef*> targets;
  {
    std::shared_lock lock(mu_);
    for (const auto& v : views_) {
      if (!v->sync) continue;
      for (Table* b : v->bases) {
        if (std::find(tables.begin(), tables.end(), b) != tables.end()) {
          targets.push_back(v.get());
          break;
        }
      }
    }
  }
  // Registry lock released before taking any per-view mutex (lock-order
  // rule: v->mu is always acquired lock-free of mu_).
  for (ViewDef* v : targets) {
    std::lock_guard<std::mutex> lock(v->mu);
    Status st = MaintainLocked(v);
    if (!st.ok()) {
      // The client commit is already acknowledged; the cursor did not
      // advance, so the next maintenance round replays this window.
      OLTAP_LOG(Warning) << "sync view maintenance failed for " << v->name
                         << ": " << st.ToString();
    }
  }
}

Status ViewManager::RebuildAllAfterRecovery() {
  std::vector<ViewDef*> all;
  {
    std::shared_lock lock(mu_);
    for (const auto& v : views_) all.push_back(v.get());
  }
  Status first;
  for (ViewDef* v : all) {
    std::lock_guard<std::mutex> lock(v->mu);
    Status st = RefreshLocked(v);
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

void ViewManager::TrimLogs(const ViewDef& v) const {
  std::shared_lock lock(mu_);
  for (Table* base : v.bases) {
    ChangeLog* log = base->change_log();
    if (log == nullptr) continue;
    Timestamp min_cursor = kMaxTimestamp;
    for (const auto& other : views_) {
      if (std::find(other->bases.begin(), other->bases.end(), base) ==
          other->bases.end()) {
        continue;
      }
      min_cursor = std::min(
          min_cursor, other->applied_ts.load(std::memory_order_acquire));
    }
    // During CREATE the view is not registered yet; its own cursor bounds
    // the trim.
    min_cursor =
        std::min(min_cursor, v.applied_ts.load(std::memory_order_acquire));
    log->TrimThrough(min_cursor);
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

ViewDef* ViewManager::Find(const std::string& name) const {
  std::shared_lock lock(mu_);
  for (const auto& v : views_) {
    if (v->name == name) return v.get();
  }
  return nullptr;
}

bool ViewManager::IsView(const std::string& name) const {
  return Find(name) != nullptr;
}

std::vector<std::string> ViewManager::ViewNames() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& v : views_) names.push_back(v->name);
  return names;
}

size_t ViewManager::num_views() const {
  std::shared_lock lock(mu_);
  return views_.size();
}

std::vector<std::string> ViewManager::ViewDdls() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> ddls;
  ddls.reserve(views_.size());
  for (const auto& v : views_) {
    std::string ddl = "CREATE MATERIALIZED VIEW " + v->name;
    if (v->sync) {
      ddl += " SYNC";
    } else {
      ddl += " DEFERRED";
      if (v->max_staleness_us >= 0) {
        ddl += " STALENESS " + std::to_string(v->max_staleness_us);
      }
    }
    ddl += " AS " + v->fingerprint;
    ddls.push_back(std::move(ddl));
  }
  return ddls;
}

Timestamp ViewManager::GcHorizon() const {
  std::shared_lock lock(mu_);
  Timestamp horizon = kMaxTimestamp;
  for (const auto& v : views_) {
    horizon =
        std::min(horizon, v->applied_ts.load(std::memory_order_acquire));
  }
  return horizon;
}

int64_t ViewManager::StalenessMicros(const std::string& name,
                                     int64_t now_us) const {
  ViewDef* v = Find(name);
  if (v == nullptr) return 0;
  const Timestamp cursor = v->applied_ts.load(std::memory_order_acquire);
  int64_t lag = 0;
  for (Table* b : v->bases) {
    if (ChangeLog* log = b->change_log()) {
      lag = std::max(lag, log->OldestPendingMicrosSince(cursor, now_us));
    }
  }
  return lag;
}

void ViewManager::AppendStatsRows(std::vector<Row>* rows) const {
  const int64_t now_us = SystemClock::Get()->NowMicros();
  std::shared_lock lock(mu_);
  for (const auto& v : views_) {
    const Timestamp cursor = v->applied_ts.load(std::memory_order_acquire);
    int64_t pending = 0;
    int64_t lag = 0;
    for (Table* b : v->bases) {
      if (ChangeLog* log = b->change_log()) {
        pending += static_cast<int64_t>(log->PendingSince(cursor));
        lag = std::max(lag, log->OldestPendingMicrosSince(cursor, now_us));
      }
    }
    rows->push_back(
        Row{Value::String("view." + v->name + ".rows"),
            Value::Int64(static_cast<int64_t>(
                v->backing->ApproxRowCount()))});
    rows->push_back(Row{Value::String("view." + v->name + ".pending"),
                        Value::Int64(pending)});
    rows->push_back(Row{Value::String("view." + v->name + ".staleness_us"),
                        Value::Int64(lag)});
  }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

namespace {

struct QueryItem {
  bool is_agg = false;
  int t = -1, c = -1;          // non-agg ident
  AggSpec::Fn fn = AggSpec::Fn::kCountStar;
  int at = -1, ac = -1;        // agg argument (-1,-1 for COUNT(*))
};

// Rewrites an expression over the base tables into one over the view's
// backing table: identifiers become the mapped output column, everything
// else clones through. Returns null on any unmappable identifier.
sql::ParseExprPtr RewriteOverView(
    const sql::ParseExpr& e, const Binding& b,
    const std::map<std::pair<int, int>, std::string>& col_map) {
  if (e.kind == sql::ParseExpr::Kind::kIdent) {
    int t, c;
    if (!b.Resolve(e.qualifier, e.name, &t, &c)) return nullptr;
    auto it = col_map.find({t, c});
    if (it == col_map.end()) return nullptr;
    return MakeIdent("", it->second);
  }
  auto out = std::make_unique<sql::ParseExpr>();
  out->kind = e.kind;
  out->qualifier = e.qualifier;
  out->name = e.name;
  out->int_val = e.int_val;
  out->double_val = e.double_val;
  out->str_val = e.str_val;
  out->op = e.op;
  for (const auto& a : e.args) {
    auto ra = RewriteOverView(*a, b, col_map);
    if (ra == nullptr) return nullptr;
    out->args.push_back(std::move(ra));
  }
  return out;
}

}  // namespace

std::optional<ViewManager::Route> ViewManager::TryRoute(
    const sql::SelectStmt& stmt, int64_t max_staleness_us) const {
  if (stmt.distinct || stmt.having) return std::nullopt;
  if (num_views() == 0) return std::nullopt;
  obs::MetricsRegistry::Default()
      ->GetCounter("view.route_considered")
      ->Add(1);

  Decomposed d;
  if (!Decompose(stmt, *catalog_,
                 [this](const std::string& n) { return IsView(n); }, &d)
           .ok()) {
    return std::nullopt;
  }

  // Classify the query's select list and GROUP BY.
  std::vector<QueryItem> qitems;
  bool q_agg = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    const sql::ParseExpr& e = *item.expr;
    QueryItem qi;
    if (sql::ContainsAggregate(e)) {
      AggFnInfo fi = AggFnFromCall(e);
      if (!fi.ok) return std::nullopt;
      qi.is_agg = true;
      qi.fn = fi.fn;
      if (fi.fn != AggSpec::Fn::kCountStar) {
        const sql::ParseExpr& arg = *e.args[0];
        if (arg.kind != sql::ParseExpr::Kind::kIdent ||
            !d.binding.Resolve(arg.qualifier, arg.name, &qi.at, &qi.ac)) {
          return std::nullopt;
        }
      }
      q_agg = true;
    } else {
      if (e.kind != sql::ParseExpr::Kind::kIdent ||
          !d.binding.Resolve(e.qualifier, e.name, &qi.t, &qi.c)) {
        return std::nullopt;
      }
    }
    qitems.push_back(qi);
  }
  std::set<std::pair<int, int>> q_groups;
  for (const auto& g : stmt.group_by) {
    int t, c;
    if (g->kind != sql::ParseExpr::Kind::kIdent ||
        !d.binding.Resolve(g->qualifier, g->name, &t, &c)) {
      return std::nullopt;
    }
    q_groups.insert({t, c});
  }

  // ORDER BY must resolve against the (preserved) output names; exprs are
  // cloned unchanged so the rewritten plan resolves them the same way.
  std::set<std::string> out_names;
  for (const auto& item : stmt.items) {
    out_names.insert(item.alias.empty() ? item.expr->ToString()
                                        : item.alias);
  }
  for (const auto& o : stmt.order_by) {
    if (!out_names.count(o.expr->ToString())) return std::nullopt;
  }

  std::set<std::string> q_base_names;
  for (Table* t : d.binding.tables) q_base_names.insert(t->name());
  std::vector<std::string> q_edge_texts = d.edge_texts;
  std::sort(q_edge_texts.begin(), q_edge_texts.end());

  const int64_t now_us = SystemClock::Get()->NowMicros();

  std::shared_lock lock(mu_);
  for (const auto& vp : views_) {
    const ViewDef& v = *vp;
    // 1. Same base set.
    if (v.bases.size() != d.binding.tables.size()) continue;
    std::set<std::string> v_base_names;
    for (Table* t : v.bases) v_base_names.insert(t->name());
    if (v_base_names != q_base_names) continue;
    // Map the query's FROM index to the view's FROM index by table name
    // (base sets are equal and duplicate-free).
    std::vector<int> q2v(d.binding.tables.size());
    for (size_t i = 0; i < d.binding.tables.size(); ++i) {
      int vi = -1;
      for (size_t k = 0; k < v.bases.size(); ++k) {
        if (v.bases[k] == d.binding.tables[i]) vi = static_cast<int>(k);
      }
      q2v[i] = vi;
    }
    // 2. Same join-edge set (canonical texts are FROM-order independent).
    std::vector<std::string> v_edge_texts;
    {
      Binding vb;
      vb.tables = v.bases;
      for (const auto& e : v.edges) v_edge_texts.push_back(EdgeText(vb, e));
    }
    std::sort(v_edge_texts.begin(), v_edge_texts.end());
    if (v_edge_texts != q_edge_texts) continue;
    // 3. The view's local predicates must all appear in the query
    //    (subsumption); leftovers become residual filters over the view.
    std::multiset<std::string> q_local_texts;
    for (const auto& lp : d.locals) q_local_texts.insert(lp.text);
    bool subsumed = true;
    for (const auto& vt : v.local_pred_texts) {
      auto it = q_local_texts.find(vt);
      if (it == q_local_texts.end()) {
        subsumed = false;
        break;
      }
      q_local_texts.erase(it);
    }
    if (!subsumed) continue;
    std::vector<const sql::ParseExpr*> extras;
    {
      std::multiset<std::string> remaining = q_local_texts;
      for (const auto& lp : d.locals) {
        auto it = remaining.find(lp.text);
        if (it != remaining.end()) {
          extras.push_back(lp.expr);
          remaining.erase(it);
        }
      }
    }

    // (t,c) in query FROM indexing -> view output column name.
    std::map<std::pair<int, int>, std::string> col_map;
    std::map<std::pair<int, int>, const ViewDef::ItemOut*> group_of;
    for (const auto& it : v.items) {
      if (it.is_agg) continue;
      for (size_t qi = 0; qi < q2v.size(); ++qi) {
        if (q2v[qi] == it.table) {
          col_map[{static_cast<int>(qi), it.col}] = it.name_out;
          group_of[{static_cast<int>(qi), it.col}] = &it;
        }
      }
    }

    sql::SelectStmt rewritten;
    bool match = true;

    if (!v.is_aggregate) {
      // Cases A and B: join view; any query (plain or aggregate) whose
      // referenced columns live in the view's select list rewrites 1:1 —
      // view rows are exactly the join rows.
      for (size_t k = 0; k < stmt.items.size(); ++k) {
        auto re = RewriteOverView(*stmt.items[k].expr, d.binding, col_map);
        if (re == nullptr) {
          match = false;
          break;
        }
        sql::SelectItem item;
        item.expr = std::move(re);
        item.alias = stmt.items[k].alias.empty()
                         ? stmt.items[k].expr->ToString()
                         : stmt.items[k].alias;
        rewritten.items.push_back(std::move(item));
      }
      if (match) {
        for (const auto& g : stmt.group_by) {
          auto rg = RewriteOverView(*g, d.binding, col_map);
          if (rg == nullptr) {
            match = false;
            break;
          }
          rewritten.group_by.push_back(std::move(rg));
        }
      }
    } else {
      // Case C: aggregate view; query must aggregate at the same grain.
      if (!q_agg) continue;
      std::set<std::pair<int, int>> v_groups;
      for (const auto& it : v.items) {
        if (it.is_agg) continue;
        for (size_t qi = 0; qi < q2v.size(); ++qi) {
          if (q2v[qi] == it.table) {
            v_groups.insert({static_cast<int>(qi), it.col});
          }
        }
      }
      if (v_groups != q_groups) continue;
      for (size_t k = 0; k < stmt.items.size(); ++k) {
        const QueryItem& qi = qitems[k];
        sql::SelectItem item;
        item.alias = stmt.items[k].alias.empty()
                         ? stmt.items[k].expr->ToString()
                         : stmt.items[k].alias;
        if (qi.is_agg) {
          const ViewDef::AggDef* found = nullptr;
          for (const auto& ad : v.aggs) {
            if (ad.fn != qi.fn) continue;
            if (ad.fn == AggSpec::Fn::kCountStar) {
              found = &ad;
              break;
            }
            if (qi.at >= 0 && q2v[qi.at] == ad.table && qi.ac == ad.col) {
              found = &ad;
              break;
            }
          }
          if (found == nullptr) {
            match = false;
            break;
          }
          item.expr = MakeIdent("", v.items[found->visible_idx].name_out);
        } else {
          auto re =
              RewriteOverView(*stmt.items[k].expr, d.binding, col_map);
          if (re == nullptr) {
            match = false;
            break;
          }
          item.expr = std::move(re);
        }
        rewritten.items.push_back(std::move(item));
      }
      // group_by dropped: the backing table already holds one row per
      // group. Residual filters may only touch group columns (a filter on
      // a group column commutes with the aggregation).
    }
    if (!match) continue;

    sql::ParseExprPtr where;
    for (const sql::ParseExpr* ex : extras) {
      auto re = RewriteOverView(*ex, d.binding, col_map);
      if (re == nullptr) {
        match = false;
        break;
      }
      where = where ? MakeAnd(std::move(where), std::move(re))
                    : std::move(re);
    }
    if (!match) continue;

    // 4. Staleness gate: tightest of the session knob and the view's own
    //    bound.
    int64_t lag = 0;
    {
      const Timestamp cursor = v.applied_ts.load(std::memory_order_acquire);
      for (Table* b : v.bases) {
        if (ChangeLog* log = b->change_log()) {
          lag =
              std::max(lag, log->OldestPendingMicrosSince(cursor, now_us));
        }
      }
    }
    int64_t bound = -1;
    if (max_staleness_us >= 0) bound = max_staleness_us;
    if (v.max_staleness_us >= 0) {
      bound = bound < 0 ? v.max_staleness_us
                        : std::min(bound, v.max_staleness_us);
    }
    if (bound >= 0 && lag > bound) continue;

    sql::TableRef ref;
    ref.name = v.name;
    rewritten.tables.push_back(std::move(ref));
    rewritten.where = std::move(where);
    for (const auto& o : stmt.order_by) {
      sql::OrderItem oi;
      oi.expr = CloneExpr(*o.expr);
      oi.descending = o.descending;
      rewritten.order_by.push_back(std::move(oi));
    }
    rewritten.limit = stmt.limit;

    Route route;
    route.view = v.name;
    route.staleness_us = lag;
    route.rewritten = std::move(rewritten);
    return route;
  }
  return std::nullopt;
}

}  // namespace view
}  // namespace oltap
