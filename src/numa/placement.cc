#include "numa/placement.h"

#include "common/logging.h"

namespace oltap {

const char* PlacementPolicyToString(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kPartitioned:
      return "partitioned";
    case PlacementPolicy::kInterleaved:
      return "interleaved";
    case PlacementPolicy::kSingleNode:
      return "single-node";
  }
  return "?";
}

const char* TaskRoutingToString(TaskRouting r) {
  switch (r) {
    case TaskRouting::kNumaLocal:
      return "numa-local";
    case TaskRouting::kWorkSteal:
      return "work-steal";
  }
  return "?";
}

NumaPartitionedTable::NumaPartitionedTable(const NumaTopology* topo,
                                           size_t num_fragments,
                                           size_t rows_per_fragment,
                                           PlacementPolicy policy, Rng* rng)
    : topo_(topo) {
  OLTAP_CHECK(num_fragments > 0);
  fragments_.resize(num_fragments);
  const int nodes = topo->num_nodes();
  for (size_t f = 0; f < num_fragments; ++f) {
    Fragment& frag = fragments_[f];
    switch (policy) {
      case PlacementPolicy::kPartitioned:
      case PlacementPolicy::kInterleaved:
        // At fragment granularity the two policies coincide; they differ in
        // how routing interacts with them (partition-affine routing only
        // helps when fragments map deterministically, which both do here —
        // kInterleaved additionally shuffles home assignment below).
        frag.home_node = static_cast<int>(f % nodes);
        break;
      case PlacementPolicy::kSingleNode:
        frag.home_node = 0;
        break;
    }
    frag.filter.resize(rows_per_fragment);
    frag.value.resize(rows_per_fragment);
    for (size_t i = 0; i < rows_per_fragment; ++i) {
      frag.filter[i] = static_cast<int64_t>(rng->Uniform(1000));
      frag.value[i] = static_cast<int64_t>(rng->Uniform(1'000'000));
    }
  }
  if (policy == PlacementPolicy::kInterleaved) {
    // Shuffle home nodes so locality-aware routing cannot exploit the
    // assignment pattern beyond node balance.
    std::vector<int> homes;
    homes.reserve(num_fragments);
    for (const Fragment& f : fragments_) homes.push_back(f.home_node);
    rng->Shuffle(&homes);
    for (size_t f = 0; f < num_fragments; ++f) {
      fragments_[f].home_node = homes[f];
    }
  }
}

size_t NumaPartitionedTable::total_rows() const {
  size_t n = 0;
  for (const Fragment& f : fragments_) n += f.filter.size();
  return n;
}

}  // namespace oltap
