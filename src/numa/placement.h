#ifndef OLTAP_NUMA_PLACEMENT_H_
#define OLTAP_NUMA_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "numa/topology.h"

namespace oltap {

// How table fragments are distributed across NUMA nodes — the data-
// placement axis of Psaroudakis et al. [31] and the Oracle DBIM
// NUMA-distributed column store [23, 27].
enum class PlacementPolicy : uint8_t {
  kPartitioned,  // fragment f homed on node f % N (partition-affine)
  kInterleaved,  // round-robin at fragment granularity (OS interleave)
  kSingleNode,   // everything on node 0 (the unaware baseline)
};

const char* PlacementPolicyToString(PlacementPolicy p);

// How scan tasks are routed to worker threads (one worker per node).
enum class TaskRouting : uint8_t {
  kNumaLocal,   // workers only scan fragments homed on their node
  kWorkSteal,   // workers take any fragment (ignores home node)
};

const char* TaskRoutingToString(TaskRouting r);

// A table physically split into fragments, each homed on a NUMA node.
// Numeric-only (the NUMA experiments isolate memory-traffic effects).
class NumaPartitionedTable {
 public:
  // Builds `num_fragments` fragments of `rows_per_fragment` random rows
  // each (filter column uniform in [0, 1000), value column uniform).
  NumaPartitionedTable(const NumaTopology* topo, size_t num_fragments,
                       size_t rows_per_fragment, PlacementPolicy policy,
                       Rng* rng);

  struct Fragment {
    int home_node;
    std::vector<int64_t> filter;
    std::vector<int64_t> value;
  };

  size_t num_fragments() const { return fragments_.size(); }
  const Fragment& fragment(size_t i) const { return fragments_[i]; }
  const NumaTopology& topology() const { return *topo_; }
  size_t total_rows() const;

 private:
  const NumaTopology* topo_;
  std::vector<Fragment> fragments_;
};

}  // namespace oltap

#endif  // OLTAP_NUMA_PLACEMENT_H_
