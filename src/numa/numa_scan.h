#ifndef OLTAP_NUMA_NUMA_SCAN_H_
#define OLTAP_NUMA_NUMA_SCAN_H_

#include <cstdint>
#include <vector>

#include "numa/placement.h"

namespace oltap {

// Result of a NUMA-dispatched parallel scan.
struct NumaScanResult {
  int64_t sum = 0;
  uint64_t local_fragments = 0;
  uint64_t remote_fragments = 0;
  // Fragments scanned by each node's worker.
  std::vector<uint64_t> fragments_per_node;
};

// Runs SELECT SUM(value) WHERE filter < threshold across the table with one
// worker thread per NUMA node. Under kNumaLocal routing each worker scans
// only the fragments homed on its node; under kWorkSteal workers pull
// fragments from a shared queue irrespective of home node, paying the
// simulated remote-access penalty (the scan is repeated per the topology's
// bandwidth ratio — see NumaTopology).
//
// This reproduces the scale-up claim (E9): locality-aware placement plus
// affine routing beats both NUMA-oblivious placement and remote-heavy
// routing, and the single-node placement bottlenecks on one memory
// controller.
NumaScanResult NumaParallelScan(const NumaPartitionedTable& table,
                                int64_t threshold, TaskRouting routing);

}  // namespace oltap

#endif  // OLTAP_NUMA_NUMA_SCAN_H_
