#include "numa/numa_scan.h"

#include <atomic>
#include <thread>
#include <vector>

namespace oltap {
namespace {

// Scans one fragment: SUM(value) WHERE filter < threshold. When the
// scanning worker is remote to the fragment's home node, the scan loop
// re-reads the data (extra passes) to model the reduced remote bandwidth.
int64_t ScanFragment(const NumaPartitionedTable::Fragment& frag,
                     int64_t threshold, int cpu_node,
                     const NumaTopology& topo) {
  const size_t n = frag.filter.size();
  auto one_pass = [&](size_t limit) {
    int64_t sum = 0;
    for (size_t i = 0; i < limit; ++i) {
      if (frag.filter[i] < threshold) sum += frag.value[i];
    }
    return sum;
  };
  int64_t result = one_pass(n);
  if (cpu_node != frag.home_node) {
    // Model remote bandwidth: repeat the pass floor(penalty)-1 times plus a
    // fractional partial pass; discard the redundant sums via volatile so
    // the compiler cannot elide the memory traffic.
    volatile int64_t sink = 0;
    for (int p = 0; p < topo.ExtraFullPasses(); ++p) {
      sink = sink + one_pass(n);
    }
    size_t partial = static_cast<size_t>(topo.FractionalPass() *
                                         static_cast<double>(n));
    sink = sink + one_pass(partial);
    (void)sink;
  }
  return result;
}

}  // namespace

NumaScanResult NumaParallelScan(const NumaPartitionedTable& table,
                                int64_t threshold, TaskRouting routing) {
  const NumaTopology& topo = table.topology();
  const int nodes = topo.num_nodes();
  std::atomic<int64_t> total{0};
  std::atomic<uint64_t> local{0}, remote{0};
  std::atomic<size_t> next{0};
  std::vector<uint64_t> per_node(nodes, 0);

  std::vector<std::thread> workers;
  workers.reserve(nodes);
  for (int node = 0; node < nodes; ++node) {
    workers.emplace_back([&, node] {
      int64_t sum = 0;
      uint64_t my_local = 0, my_remote = 0;
      if (routing == TaskRouting::kNumaLocal) {
        for (size_t f = 0; f < table.num_fragments(); ++f) {
          const auto& frag = table.fragment(f);
          if (frag.home_node != node) continue;
          sum += ScanFragment(frag, threshold, node, topo);
          ++my_local;
        }
      } else {
        while (true) {
          size_t f = next.fetch_add(1, std::memory_order_relaxed);
          if (f >= table.num_fragments()) break;
          const auto& frag = table.fragment(f);
          sum += ScanFragment(frag, threshold, node, topo);
          (frag.home_node == node ? my_local : my_remote) += 1;
        }
      }
      total.fetch_add(sum, std::memory_order_relaxed);
      local.fetch_add(my_local, std::memory_order_relaxed);
      remote.fetch_add(my_remote, std::memory_order_relaxed);
      per_node[node] = my_local + my_remote;
    });
  }
  for (std::thread& t : workers) t.join();

  NumaScanResult result;
  result.sum = total.load();
  result.local_fragments = local.load();
  result.remote_fragments = remote.load();
  result.fragments_per_node = std::move(per_node);
  return result;
}

}  // namespace oltap
