#include "numa/topology.h"

#include <cmath>

#include "common/logging.h"

namespace oltap {

NumaTopology::NumaTopology(int num_nodes, double remote_penalty)
    : num_nodes_(num_nodes), remote_penalty_(remote_penalty) {
  OLTAP_CHECK(num_nodes >= 1);
  OLTAP_CHECK(remote_penalty >= 1.0);
  extra_full_ = static_cast<int>(std::floor(remote_penalty)) - 1;
  fractional_ = remote_penalty - std::floor(remote_penalty);
}

}  // namespace oltap
