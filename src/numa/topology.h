#ifndef OLTAP_NUMA_TOPOLOGY_H_
#define OLTAP_NUMA_TOPOLOGY_H_

#include <cstdint>
#include <vector>

namespace oltap {

// Simulated NUMA topology (DESIGN.md §5): real multi-socket hardware is not
// available, so remote memory accesses are modeled by a bandwidth ratio —
// scanning a fragment homed on a remote node costs `remote_penalty` times
// the local scan work. The policy questions the surveyed systems answer
// (where to place data, where to run tasks) depend only on this relative
// cost, which the model preserves.
class NumaTopology {
 public:
  // `remote_penalty` >= 1.0: e.g. 2.0 means remote bandwidth is half of
  // local (typical 2-hop QPI/UPI figure).
  NumaTopology(int num_nodes, double remote_penalty = 2.0);

  int num_nodes() const { return num_nodes_; }
  double remote_penalty() const { return remote_penalty_; }

  // Cost multiplier for a thread on `cpu_node` touching memory on
  // `mem_node`.
  double AccessCost(int cpu_node, int mem_node) const {
    return cpu_node == mem_node ? 1.0 : remote_penalty_;
  }

  // Number of extra whole passes a remote scan must perform to model the
  // bandwidth ratio (floor(penalty) - 1), plus the fractional remainder in
  // [0,1) applied to a partial pass.
  int ExtraFullPasses() const { return extra_full_; }
  double FractionalPass() const { return fractional_; }

 private:
  int num_nodes_;
  double remote_penalty_;
  int extra_full_;
  double fractional_;
};

}  // namespace oltap

#endif  // OLTAP_NUMA_TOPOLOGY_H_
