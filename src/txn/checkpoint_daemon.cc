#include "txn/checkpoint_daemon.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "txn/log_writer.h"

namespace oltap {
namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

CheckpointDaemon::CheckpointDaemon(Catalog* catalog, TransactionManager* tm,
                                   Wal* wal, const Options& options)
    : catalog_(catalog), tm_(tm), wal_(wal), options_(options) {
  if (options_.keep_images == 0) options_.keep_images = 1;
  if (options_.autostart) Start();
}

CheckpointDaemon::~CheckpointDaemon() { Stop(); }

void CheckpointDaemon::set_extra_pin(std::function<Timestamp()> fn) {
  extra_pin_ = std::move(fn);
}

void CheckpointDaemon::set_view_ddls(
    std::function<std::vector<std::string>()> fn) {
  view_ddls_ = std::move(fn);
}

void CheckpointDaemon::set_exclude_tables(
    std::function<std::vector<std::string>()> fn) {
  exclude_tables_ = std::move(fn);
}

void CheckpointDaemon::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) return;
  if (thread_.joinable()) thread_.join();
  stop_ = false;
  running_ = true;
  thread_ = std::thread(&CheckpointDaemon::Run, this);
}

void CheckpointDaemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(thread_mu_);
  running_ = false;
}

bool CheckpointDaemon::running() const {
  std::lock_guard<std::mutex> lock(thread_mu_);
  return running_;
}

Status CheckpointDaemon::Restart() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (running_) {
    return Status::FailedPrecondition("checkpoint daemon is still running");
  }
  if (thread_.joinable()) thread_.join();
  stop_ = false;
  running_ = true;
  thread_ = std::thread(&CheckpointDaemon::Run, this);
  return Status::OK();
}

void CheckpointDaemon::Run() {
  // Trigger bookkeeping is thread-local: `last_attempt` spaces rounds by
  // the interval even when a round fails (no hot retry loop).
  int64_t last_attempt = NowMicros();
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_) {
    int64_t tick;
    {
      std::lock_guard<std::mutex> olock(options_mu_);
      tick = options_.tick_us;
    }
    cv_.wait_for(lock, std::chrono::microseconds(tick > 0 ? tick : 1000),
                 [&] { return stop_; });
    if (stop_) break;
    lock.unlock();

    // Daemon-thread crash: the thread exits without checkpointing and
    // without touching the store — exactly what a process that loses its
    // checkpointer experiences. Restart() revives it.
    Status crash = OLTAP_FAILPOINT_STATUS("checkpoint.daemon.crash");
    if (!crash.ok()) {
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++stats_.crashes;
      }
      lock.lock();
      running_ = false;
      return;
    }

    int64_t interval;
    uint64_t trigger_bytes;
    {
      std::lock_guard<std::mutex> olock(options_mu_);
      interval = options_.interval_us;
      trigger_bytes = options_.wal_trigger_bytes;
    }
    int64_t now = NowMicros();
    bool due = interval > 0 && now - last_attempt >= interval;
    if (!due && trigger_bytes > 0 && wal_ != nullptr) {
      uint64_t cur = wal_->size();
      uint64_t base = wal_bytes_at_last_ckpt_.load(std::memory_order_relaxed);
      due = cur > base && cur - base >= trigger_bytes;
    }
    if (due) {
      CheckpointNow();  // failures counted in stats; next tick retries
      last_attempt = NowMicros();
    }
    lock.lock();
  }
  running_ = false;
}

Timestamp CheckpointDaemon::PinnedHorizonFor(Timestamp candidate_ts) const {
  Timestamp horizon = candidate_ts;
  horizon = std::min(horizon, tm_->OldestActiveSnapshot());
  if (extra_pin_) horizon = std::min(horizon, extra_pin_());
  LogWriter* lw = tm_->log_writer();
  if (lw != nullptr) horizon = std::min(horizon, lw->MinPendingCommitTs());
  return horizon;
}

Timestamp CheckpointDaemon::PinnedHorizon() const {
  return PinnedHorizonFor(last_ckpt_ts_.load(std::memory_order_acquire));
}

Result<CheckpointDaemon::CheckpointResult> CheckpointDaemon::CheckpointNow() {
  static obs::Counter* written =
      obs::MetricsRegistry::Default()->GetCounter("ckpt.written");
  static obs::Counter* failed =
      obs::MetricsRegistry::Default()->GetCounter("ckpt.failed");
  static obs::Histogram* duration_us =
      obs::MetricsRegistry::Default()->GetHistogram("ckpt.duration_us");
  static obs::Gauge* last_ts_gauge =
      obs::MetricsRegistry::Default()->GetGauge("ckpt.last_ts");

  std::lock_guard<std::mutex> round(round_mu_);
  Options opts;
  {
    std::lock_guard<std::mutex> olock(options_mu_);
    opts = options_;
  }

  int64_t t0 = NowMicros();

  CheckpointWriteOptions wopts;
  if (exclude_tables_) wopts.exclude_tables = exclude_tables_();
  if (view_ddls_) wopts.view_ddls = view_ddls_();

  // The open transaction IS the pin: its begin timestamp sits in the
  // active-snapshot registry for the whole scan, so no concurrent merge
  // garbage-collects a version the snapshot at `ts` still needs.
  Timestamp ts = 0;
  Result<std::string> image = [&]() -> Result<std::string> {
    std::unique_ptr<Transaction> pin = tm_->Begin();
    ts = pin->begin_ts();
    return WriteCheckpoint(*catalog_, ts, wopts);
  }();
  if (!image.ok()) {
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.failed;
    }
    failed->Add(1);
    return image.status();
  }

  bool valid = CheckpointIsValid(*image);

  CheckpointResult result;
  Status install_error = Status::OK();
  {
    std::lock_guard<std::mutex> lock(store_mu_);
    uint64_t id = next_image_id_++;
    result.id = id;
    result.ts = ts;
    result.bytes = image->size();
    store_.images.push_back(
        CheckpointStore::Image{id, ts, std::move(*image)});
    while (store_.images.size() > opts.keep_images) {
      store_.images.erase(store_.images.begin());
    }

    if (!valid) {
      // Crash mid-image-write ("checkpoint.write.torn"): the torn bytes
      // reached the device but the manifest never endorses them, and
      // nothing is truncated — recovery skips the image and replays the
      // longer tail from the previous checkpoint.
      install_error =
          Status::Corruption("checkpoint image torn during write; not endorsed");
    } else {
      std::vector<CheckpointManifestEntry> entries;
      entries.reserve(store_.images.size());
      for (const CheckpointStore::Image& img : store_.images) {
        if (!CheckpointIsValid(img.data)) continue;  // never endorse torn
        CheckpointManifestEntry e;
        e.id = img.id;
        e.ts = img.ts;
        e.checksum = CheckpointChecksum(img.data);
        e.bytes = img.data.size();
        entries.push_back(e);
      }
      std::string manifest = SerializeManifest(entries);
      Status torn = OLTAP_FAILPOINT_STATUS("checkpoint.manifest.torn");
      if (!torn.ok()) {
        // Crash mid-manifest-write: the manifest on the device is garbage.
        // Recovery detects the tear via the manifest self-checksum and
        // falls back to scanning the retained images directly.
        manifest.resize(manifest.size() - std::min<size_t>(7, manifest.size()));
        store_.manifest = std::move(manifest);
        install_error = torn;
      } else {
        store_.manifest = std::move(manifest);
      }
    }

    if (install_error.ok()) {
      last_ckpt_ts_.store(ts, std::memory_order_release);
      last_ckpt_wall_us_.store(NowMicros(), std::memory_order_release);

      // Truncation happens only on fully successful rounds, under the same
      // lock as the install: a crash cut never sees the log truncated
      // against a checkpoint it cannot read back.
      if (opts.truncate_wal && wal_ != nullptr) {
        uint64_t dropped = 0;
        Status st = wal_->TruncateBelow(PinnedHorizonFor(ts), &dropped);
        if (st.ok() && dropped > 0) {
          result.wal_truncated = dropped;
          std::lock_guard<std::mutex> slock(stats_mu_);
          ++stats_.truncations;
          stats_.truncated_bytes += dropped;
        }
        // A truncation failure ("wal.truncate.error") keeps the full log —
        // strictly safe; the next successful round retries.
      }
      wal_bytes_at_last_ckpt_.store(wal_ != nullptr ? wal_->size() : 0,
                                    std::memory_order_release);
    }
  }

  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    if (install_error.ok()) {
      ++stats_.written;
    } else {
      ++stats_.failed;
    }
  }
  if (!install_error.ok()) {
    failed->Add(1);
    return install_error;
  }
  written->Add(1);
  last_ts_gauge->Set(static_cast<int64_t>(ts));
  duration_us->Record(static_cast<uint64_t>(
      std::max<int64_t>(0, NowMicros() - t0)));
  return result;
}

CheckpointStore CheckpointDaemon::StoreCopy() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return store_;
}

CheckpointDaemon::CrashImage CheckpointDaemon::CaptureCrashImage() {
  CrashImage out;
  std::lock_guard<std::mutex> lock(store_mu_);
  // Seal FIRST: in-flight appends serialize with the seal under the Wal
  // mutex, so every commit that acknowledged before this instant has its
  // bytes in the copied buffer, and nothing can acknowledge after it.
  if (wal_ != nullptr) {
    wal_->Seal();
    out.wal = wal_->buffer();
  }
  out.store = store_;
  return out;
}

CheckpointDaemon::Stats CheckpointDaemon::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

Timestamp CheckpointDaemon::last_checkpoint_ts() const {
  return last_ckpt_ts_.load(std::memory_order_acquire);
}

int64_t CheckpointDaemon::AgeMicros(int64_t now_us) const {
  int64_t last = last_ckpt_wall_us_.load(std::memory_order_acquire);
  if (last < 0) return -1;
  return std::max<int64_t>(0, now_us - last);
}

void CheckpointDaemon::set_interval_us(int64_t us) {
  std::lock_guard<std::mutex> lock(options_mu_);
  options_.interval_us = us;
}

void CheckpointDaemon::set_wal_trigger_bytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(options_mu_);
  options_.wal_trigger_bytes = bytes;
}

void CheckpointDaemon::set_truncate_wal(bool on) {
  std::lock_guard<std::mutex> lock(options_mu_);
  options_.truncate_wal = on;
}

int64_t CheckpointDaemon::interval_us() const {
  std::lock_guard<std::mutex> lock(options_mu_);
  return options_.interval_us;
}

}  // namespace oltap
