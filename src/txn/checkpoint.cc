#include "txn/checkpoint.h"

#include <algorithm>
#include <vector>

#include "common/failpoint.h"

namespace oltap {
namespace {

// One WAL record holds a uint16 op count; chunk bulk inserts well below it.
constexpr size_t kRowsPerRecord = 32000;

}  // namespace

Result<std::string> WriteCheckpoint(const Catalog& catalog, Timestamp ts) {
  OLTAP_FAILPOINT("checkpoint.write.error");
  Wal buffer;
  Status write_status;
  std::vector<std::string> names = catalog.TableNames();
  std::sort(names.begin(), names.end());  // deterministic output
  for (const std::string& name : names) {
    const Table* table = catalog.GetTable(name);
    std::vector<WalOp> ops;
    ops.reserve(kRowsPerRecord);
    auto flush = [&] {
      if (!ops.empty()) {
        Status st = buffer.LogCommit(/*txn_id=*/0, ts, ops);
        if (write_status.ok()) write_status = st;
        ops.clear();
      }
    };
    table->ScanVisible(ts, [&](const Row& row) {
      WalOp op;
      op.kind = WalOp::kInsert;
      op.table = name;
      op.row = row;
      ops.push_back(std::move(op));
      if (ops.size() >= kRowsPerRecord) flush();
    });
    flush();
    if (!write_status.ok()) return write_status;
  }
  std::string data = buffer.buffer();
  // Torn-write injection: the tail of the image never reached disk (crash
  // mid-checkpoint). Chopping a few bytes always tears the last record,
  // which restoration reports as Corruption.
  if (!OLTAP_FAILPOINT_STATUS("checkpoint.write.torn").ok()) {
    data.resize(data.size() - std::min<size_t>(data.size(), 5));
  }
  return data;
}

Result<Wal::ReplayStats> RestoreCheckpoint(const std::string& data,
                                           Catalog* catalog) {
  OLTAP_FAILPOINT("checkpoint.restore.error");
  return Wal::Replay(data, catalog);
}

Result<Wal::ReplayStats> RecoverFromCheckpointAndLog(
    const std::string& checkpoint, const std::string& wal_data,
    Catalog* catalog, ThreadPool* pool) {
  // A torn checkpoint is rejected before anything is applied, so the
  // caller can retry an older image against the same catalog.
  if (!Wal::IsWellFormed(checkpoint)) {
    return Status::Corruption("checkpoint is torn");
  }
  OLTAP_ASSIGN_OR_RETURN(Wal::ReplayStats snap_stats,
                         Wal::ReplayParallel(checkpoint, catalog, pool));
  Wal::ReplayOptions tail_options;
  tail_options.skip_through_ts = snap_stats.max_commit_ts;
  OLTAP_ASSIGN_OR_RETURN(
      Wal::ReplayStats tail_stats,
      Wal::ReplayParallel(wal_data, catalog, pool, tail_options));
  tail_stats.txns_applied += snap_stats.txns_applied;
  tail_stats.ops_applied += snap_stats.ops_applied;
  tail_stats.max_commit_ts =
      std::max(tail_stats.max_commit_ts, snap_stats.max_commit_ts);
  return tail_stats;
}

}  // namespace oltap
