#include "txn/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/hash.h"

namespace oltap {
namespace {

// One WAL record holds a uint16 op count; chunk bulk inserts well below it.
constexpr size_t kRowsPerRecord = 32000;

constexpr char kImageMagic[8] = {'O', 'L', 'T', 'A', 'P', 'C', 'K', '2'};
constexpr char kManifestMagic[8] = {'O', 'L', 'T', 'A', 'P', 'M', 'F', '1'};

// Salts distinguish an image checksum from a manifest checksum from the
// WAL's frame checksums, so bytes of one kind can never validate as
// another.
constexpr uint64_t kImageChecksumSalt = 0xc2b2ae3d27d4eb4full;
constexpr uint64_t kManifestChecksumSalt = 0x165667b19e3779f9ull;

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutBytes(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

struct Reader {
  const char* p;
  const char* end;
  bool ok = true;

  bool Need(size_t n) {
    if (static_cast<size_t>(end - p) < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(*p++);
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    }
    p += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    }
    p += 8;
    return v;
  }
  std::string Bytes() {
    uint32_t n = U32();
    if (!Need(n)) return std::string();
    std::string s(p, n);
    p += n;
    return s;
  }
};

// Serialized form of one table's definition in the catalog section.
void PutTableDef(std::string* out, const Table& table) {
  PutBytes(out, table.name());
  PutU8(out, static_cast<uint8_t>(table.format()));
  const Schema& schema = table.schema();
  PutU32(out, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& col : schema.columns()) {
    PutBytes(out, col.name);
    PutU8(out, static_cast<uint8_t>(col.type));
    PutU8(out, col.nullable ? 1 : 0);
  }
  PutU32(out, static_cast<uint32_t>(schema.key_columns().size()));
  for (int k : schema.key_columns()) PutU32(out, static_cast<uint32_t>(k));
}

struct TableDef {
  std::string name;
  TableFormat format = TableFormat::kRow;
  std::vector<ColumnDef> columns;
  std::vector<int> key_columns;
};

bool ReadTableDef(Reader* r, TableDef* out) {
  out->name = r->Bytes();
  out->format = static_cast<TableFormat>(r->U8());
  uint32_t ncols = r->U32();
  if (!r->ok || ncols > (1u << 16)) return false;
  out->columns.clear();
  out->columns.reserve(ncols);
  for (uint32_t c = 0; c < ncols && r->ok; ++c) {
    ColumnDef col;
    col.name = r->Bytes();
    col.type = static_cast<ValueType>(r->U8());
    col.nullable = r->U8() != 0;
    out->columns.push_back(std::move(col));
  }
  uint32_t nkeys = r->U32();
  if (!r->ok || nkeys > ncols) return false;
  out->key_columns.clear();
  out->key_columns.reserve(nkeys);
  for (uint32_t k = 0; k < nkeys && r->ok; ++k) {
    out->key_columns.push_back(static_cast<int>(r->U32()));
  }
  return r->ok;
}

// Compares a serialized table definition with a live table; the
// difference text names the first divergence.
Status MatchSchema(const TableDef& def, const Table& table) {
  auto mismatch = [&](const std::string& what) {
    return Status::Corruption("checkpoint schema mismatch for table " +
                              def.name + ": " + what);
  };
  if (table.format() != def.format) return mismatch("storage format differs");
  const Schema& schema = table.schema();
  if (schema.num_columns() != def.columns.size()) {
    return mismatch("column count " + std::to_string(schema.num_columns()) +
                    " vs " + std::to_string(def.columns.size()));
  }
  for (size_t c = 0; c < def.columns.size(); ++c) {
    const ColumnDef& want = def.columns[c];
    const ColumnDef& have = schema.column(c);
    if (have.name != want.name || have.type != want.type ||
        have.nullable != want.nullable) {
      return mismatch("column " + std::to_string(c) + " (" + have.name +
                      ") differs");
    }
  }
  if (schema.key_columns() != def.key_columns) {
    return mismatch("primary key differs");
  }
  return Status::OK();
}

// Parses the image header + catalog + view sections; on success *r points
// at the data section (whose length was validated by the checksum check).
Status ParseImagePrefix(const std::string& image, Reader* r, Timestamp* ts,
                        std::vector<TableDef>* tables,
                        std::vector<std::string>* view_ddls) {
  if (!CheckpointIsValid(image)) {
    return Status::Corruption("checkpoint is torn");
  }
  r->p = image.data() + sizeof(kImageMagic);
  r->end = image.data() + image.size() - 8;  // trailing checksum
  *ts = r->U64();
  uint32_t ntables = r->U32();
  if (!r->ok || ntables > (1u << 20)) {
    return Status::Corruption("malformed checkpoint catalog section");
  }
  tables->clear();
  tables->reserve(ntables);
  for (uint32_t t = 0; t < ntables; ++t) {
    TableDef def;
    if (!ReadTableDef(r, &def)) {
      return Status::Corruption("malformed checkpoint table definition");
    }
    tables->push_back(std::move(def));
  }
  uint32_t nviews = r->U32();
  if (!r->ok || nviews > (1u << 16)) {
    return Status::Corruption("malformed checkpoint view section");
  }
  view_ddls->clear();
  view_ddls->reserve(nviews);
  for (uint32_t v = 0; v < nviews; ++v) {
    view_ddls->push_back(r->Bytes());
  }
  uint64_t data_len = r->U64();
  if (!r->ok || data_len != static_cast<uint64_t>(r->end - r->p)) {
    return Status::Corruption("malformed checkpoint data section");
  }
  return Status::OK();
}

}  // namespace

uint64_t CheckpointChecksum(const std::string& image) {
  return HashBytes(image.data(), image.size()) ^ kImageChecksumSalt;
}

bool CheckpointIsValid(const std::string& image) {
  if (image.size() < sizeof(kImageMagic) + 8 + 8) return false;
  if (std::memcmp(image.data(), kImageMagic, sizeof(kImageMagic)) != 0) {
    return false;
  }
  const size_t body = image.size() - 8;
  Reader r{image.data() + body, image.data() + image.size()};
  uint64_t want = r.U64();
  return (HashBytes(image.data(), body) ^ kImageChecksumSalt) == want;
}

Result<Timestamp> CheckpointTimestamp(const std::string& image) {
  if (!CheckpointIsValid(image)) {
    return Status::Corruption("checkpoint is torn");
  }
  Reader r{image.data() + sizeof(kImageMagic), image.data() + image.size()};
  return r.U64();
}

Result<std::string> WriteCheckpoint(const Catalog& catalog, Timestamp ts) {
  return WriteCheckpoint(catalog, ts, CheckpointWriteOptions{});
}

Result<std::string> WriteCheckpoint(const Catalog& catalog, Timestamp ts,
                                    const CheckpointWriteOptions& options) {
  OLTAP_FAILPOINT("checkpoint.write.error");
  std::set<std::string> excluded(options.exclude_tables.begin(),
                                 options.exclude_tables.end());
  std::vector<std::string> names = catalog.TableNames();
  std::sort(names.begin(), names.end());  // deterministic output
  names.erase(std::remove_if(names.begin(), names.end(),
                             [&](const std::string& n) {
                               return excluded.count(n) != 0;
                             }),
              names.end());

  std::string image(kImageMagic, sizeof(kImageMagic));
  PutU64(&image, ts);

  // Catalog section: the schemas recovery needs to rebuild every table
  // from an empty catalog.
  PutU32(&image, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    PutTableDef(&image, *catalog.GetTable(name));
  }

  // View section: DDL replayed after the data is restored (the initial
  // build doubles as the rebuild).
  PutU32(&image, static_cast<uint32_t>(options.view_ddls.size()));
  for (const std::string& ddl : options.view_ddls) PutBytes(&image, ddl);

  // Data section: WAL-encoded bulk inserts of every row visible at ts.
  // The per-table scan is the long pole of a checkpoint; the stall
  // failpoint stretches it so tests can overlap a "slow" checkpoint with
  // live DML and merges.
  Wal buffer;
  Status write_status;
  for (const std::string& name : names) {
    // A fired stall sleeps instead of failing — it models a slow scan,
    // not a broken one.
    if (!OLTAP_FAILPOINT_STATUS("checkpoint.scan.stall").ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    const Table* table = catalog.GetTable(name);
    std::vector<WalOp> ops;
    ops.reserve(kRowsPerRecord);
    auto flush = [&] {
      if (!ops.empty()) {
        Status st = buffer.LogCommit(/*txn_id=*/0, ts, ops);
        if (write_status.ok()) write_status = st;
        ops.clear();
      }
    };
    table->ScanVisible(ts, [&](const Row& row) {
      WalOp op;
      op.kind = WalOp::kInsert;
      op.table = name;
      op.row = row;
      ops.push_back(std::move(op));
      if (ops.size() >= kRowsPerRecord) flush();
    });
    flush();
    if (!write_status.ok()) return write_status;
  }
  std::string data = buffer.buffer();
  PutU64(&image, data.size());
  image += data;

  PutU64(&image, HashBytes(image.data(), image.size()) ^ kImageChecksumSalt);

  // Torn-write injection: the tail of the image never reached disk (crash
  // mid-checkpoint). Chopping bytes destroys the trailing whole-image
  // checksum, which CheckpointIsValid reports up front.
  if (!OLTAP_FAILPOINT_STATUS("checkpoint.write.torn").ok()) {
    image.resize(image.size() - std::min<size_t>(image.size(), 5));
  }
  return image;
}

Result<Wal::ReplayStats> RestoreCheckpoint(const std::string& image,
                                           Catalog* catalog,
                                           CheckpointContents* contents,
                                           ThreadPool* pool) {
  OLTAP_FAILPOINT("checkpoint.restore.error");
  Reader r{nullptr, nullptr};
  Timestamp ts = 0;
  std::vector<TableDef> tables;
  std::vector<std::string> view_ddls;
  OLTAP_RETURN_NOT_OK(ParseImagePrefix(image, &r, &ts, &tables, &view_ddls));

  // Schema pass before any data is applied: verify every pre-existing
  // table, then create the missing ones. A mismatch leaves the catalog
  // untouched.
  for (const TableDef& def : tables) {
    if (const Table* existing = catalog->GetTable(def.name)) {
      OLTAP_RETURN_NOT_OK(MatchSchema(def, *existing));
    }
  }
  size_t created = 0, verified = 0;
  for (const TableDef& def : tables) {
    if (catalog->GetTable(def.name) != nullptr) {
      ++verified;
      continue;
    }
    std::vector<int> keys = def.key_columns;
    OLTAP_RETURN_NOT_OK(catalog->CreateTable(
        def.name, Schema(def.columns, std::move(keys)), def.format));
    ++created;
  }

  std::string data(r.p, static_cast<size_t>(r.end - r.p));
  OLTAP_ASSIGN_OR_RETURN(Wal::ReplayStats stats,
                         Wal::ReplayParallel(data, catalog, pool));
  stats.max_commit_ts = std::max(stats.max_commit_ts, ts);
  if (contents != nullptr) {
    contents->ts = ts;
    contents->view_ddls = std::move(view_ddls);
    contents->tables_created = created;
    contents->tables_verified = verified;
  }
  return stats;
}

Result<Wal::ReplayStats> RecoverFromCheckpointAndLog(
    const std::string& checkpoint, const std::string& wal_data,
    Catalog* catalog, ThreadPool* pool) {
  // No checkpoint at all: recovery degrades to a full replay of the
  // retained log (tables must already exist in `catalog`).
  if (checkpoint.empty()) {
    return Wal::ReplayParallel(wal_data, catalog, pool, Wal::ReplayOptions{});
  }
  // A torn checkpoint is rejected before anything is applied, so the
  // caller can retry an older image against the same catalog.
  if (!CheckpointIsValid(checkpoint)) {
    return Status::Corruption("checkpoint is torn");
  }
  CheckpointContents contents;
  OLTAP_ASSIGN_OR_RETURN(
      Wal::ReplayStats snap_stats,
      RestoreCheckpoint(checkpoint, catalog, &contents, pool));
  Wal::ReplayOptions tail_options;
  tail_options.skip_through_ts = contents.ts;
  OLTAP_ASSIGN_OR_RETURN(
      Wal::ReplayStats tail_stats,
      Wal::ReplayParallel(wal_data, catalog, pool, tail_options));
  tail_stats.txns_applied += snap_stats.txns_applied;
  tail_stats.ops_applied += snap_stats.ops_applied;
  tail_stats.max_commit_ts =
      std::max(tail_stats.max_commit_ts, snap_stats.max_commit_ts);
  return tail_stats;
}

std::string SerializeManifest(
    const std::vector<CheckpointManifestEntry>& entries) {
  std::string out(kManifestMagic, sizeof(kManifestMagic));
  PutU32(&out, static_cast<uint32_t>(entries.size()));
  for (const CheckpointManifestEntry& e : entries) {
    PutU64(&out, e.id);
    PutU64(&out, e.ts);
    PutU64(&out, e.checksum);
    PutU64(&out, e.bytes);
  }
  PutU64(&out, HashBytes(out.data(), out.size()) ^ kManifestChecksumSalt);
  return out;
}

Result<std::vector<CheckpointManifestEntry>> ParseManifest(
    const std::string& data) {
  if (data.size() < sizeof(kManifestMagic) + 4 + 8 ||
      std::memcmp(data.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::Corruption("checkpoint manifest is torn");
  }
  const size_t body = data.size() - 8;
  {
    Reader tail{data.data() + body, data.data() + data.size()};
    if ((HashBytes(data.data(), body) ^ kManifestChecksumSalt) !=
        tail.U64()) {
      return Status::Corruption("checkpoint manifest is torn");
    }
  }
  Reader r{data.data() + sizeof(kManifestMagic), data.data() + body};
  uint32_t count = r.U32();
  std::vector<CheckpointManifestEntry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count && r.ok; ++i) {
    CheckpointManifestEntry e;
    e.id = r.U64();
    e.ts = r.U64();
    e.checksum = r.U64();
    e.bytes = r.U64();
    entries.push_back(e);
  }
  if (!r.ok || r.p != r.end) {
    return Status::Corruption("checkpoint manifest is torn");
  }
  return entries;
}

Result<CheckpointStore::Image> SelectRecoveryImage(const CheckpointStore& store,
                                                   size_t* fallbacks) {
  size_t skipped = 0;
  auto find_image = [&](uint64_t id) -> const CheckpointStore::Image* {
    for (const CheckpointStore::Image& img : store.images) {
      if (img.id == id) return &img;
    }
    return nullptr;
  };

  // Primary path: the manifest names the valid chain, newest first.
  if (!store.manifest.empty()) {
    auto parsed = ParseManifest(store.manifest);
    if (parsed.ok()) {
      const std::vector<CheckpointManifestEntry>& entries = parsed.value();
      // Images newer than the newest manifest entry are rounds whose
      // manifest write never completed (crash mid-checkpoint): recovery
      // falls back past them, and they count as such.
      uint64_t endorsed = entries.empty() ? 0 : entries.back().id;
      for (const CheckpointStore::Image& img : store.images) {
        if (img.id > endorsed) ++skipped;
      }
      for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        const CheckpointStore::Image* img = find_image(it->id);
        if (img != nullptr && CheckpointChecksum(img->data) == it->checksum &&
            CheckpointIsValid(img->data)) {
          if (fallbacks != nullptr) *fallbacks = skipped;
          return *img;
        }
        ++skipped;
      }
    } else {
      ++skipped;  // the torn manifest itself
    }
  }

  // Fallback: the manifest is torn (or every entry it names is damaged) —
  // scan the retained images directly, newest first.
  for (auto it = store.images.rbegin(); it != store.images.rend(); ++it) {
    if (CheckpointIsValid(it->data)) {
      // An image the (valid) manifest does not endorse is one whose
      // manifest write never completed: usable, but only via fallback.
      if (fallbacks != nullptr) *fallbacks = skipped;
      return *it;
    }
    ++skipped;
  }
  if (fallbacks != nullptr) *fallbacks = skipped;
  return Status::NotFound("no valid checkpoint image in the store");
}

}  // namespace oltap
