#ifndef OLTAP_TXN_MVCC_H_
#define OLTAP_TXN_MVCC_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/row.h"
#include "storage/row_store.h"
#include "txn/transaction_manager.h"

namespace oltap {

// In-place multi-version concurrency control over the skip-list row store:
// the Hekaton/HyPer-style alternative to the deferred-write manager in
// transaction_manager.h. Writers install version *intents* immediately
// (begin/end fields carry a transaction marker, see common/types.h);
// readers traverse version chains latch-free and simply skip other
// transactions' intents. Commit atomically finalizes all intents with the
// commit timestamp; abort unlinks them.
//
// Write-write conflicts are detected pessimistically at write time (a
// marker or a post-snapshot commit timestamp on the newest version aborts
// the writer), which is first-committer-wins without any commit-time
// validation pass.
class MvccEngine {
 public:
  // The engine shares the oracle with the rest of the system so snapshot
  // timestamps are comparable across engines.
  MvccEngine(RowStore* store, TimestampOracle* oracle);
  ~MvccEngine();

  MvccEngine(const MvccEngine&) = delete;
  MvccEngine& operator=(const MvccEngine&) = delete;

  class Txn {
   public:
    uint64_t id() const { return id_; }
    Timestamp begin_ts() const { return begin_ts_; }

   private:
    friend class MvccEngine;
    struct WriteRecord {
      RowStore::Entry* entry;
      RowVersion* installed;  // new version (intent), may be null (delete)
      RowVersion* closed;     // prior version whose end we stamped, or null
    };
    uint64_t id_ = 0;
    Timestamp begin_ts_ = 0;
    std::vector<WriteRecord> writes_;
    bool finished_ = false;
  };

  std::unique_ptr<Txn> Begin();

  // Snapshot read at the transaction's begin timestamp (sees own intents).
  bool Read(Txn* txn, std::string_view key, Row* out) const;

  // Insert a new row / update an existing one (distinguished by liveness).
  Status Upsert(Txn* txn, std::string_view key, Row row);

  Status Delete(Txn* txn, std::string_view key);

  // Finalizes all intents at a fresh commit timestamp.
  Timestamp Commit(Txn* txn);

  // Unlinks intents and restores closed versions.
  void Abort(Txn* txn);

  uint64_t num_conflicts() const {
    return conflicts_.load(std::memory_order_relaxed);
  }

 private:
  RowStore* store_;
  TimestampOracle* oracle_;
  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> conflicts_{0};

  // Versions unlinked by aborts stay alive (readers may still hold them)
  // and are reclaimed when the engine is destroyed.
  std::mutex garbage_mu_;
  std::vector<RowVersion*> garbage_;
};

}  // namespace oltap

#endif  // OLTAP_TXN_MVCC_H_
