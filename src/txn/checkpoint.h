#ifndef OLTAP_TXN_CHECKPOINT_H_
#define OLTAP_TXN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/catalog.h"
#include "txn/wal.h"

namespace oltap {

// Consistent checkpointing: serializes every row visible at `ts` so
// recovery can start from the checkpoint and replay only the WAL tail,
// instead of replaying history from the beginning — the standard
// checkpoint + log-truncation pattern of in-memory engines.
//
// Image format (version 2):
//   magic "OLTAPCK2"
//   u64   checkpoint timestamp
//   catalog section: every table's name, format, columns, and key, so
//     restoration can rebuild the catalog from nothing;
//   view section: CREATE MATERIALIZED VIEW statements (their backing
//     tables are *excluded* from the catalog/data sections — recovery
//     re-runs the DDL, which rebuilds each view from the restored bases);
//   data section: WAL-encoded bulk-insert records (one per <= 32000 rows)
//     stamped with commit timestamp `ts`, so restoration is ordinary
//     replay;
//   u64   whole-image checksum, salted — a torn or bit-flipped image
//     fails validation up front instead of surfacing mid-restore.
//
// Because data reads go through a snapshot at `ts`, the checkpoint is
// transaction-consistent even while OLTP continues. The caller must hold
// `ts` pinned in the active-snapshot registry for the duration of the
// scan (Begin a transaction and keep it open), or a concurrent merge
// could garbage-collect versions the scan still needs.
//
// Fault injection: "checkpoint.write.error" fails the write outright;
// "checkpoint.write.torn" returns an image truncated mid-write, modeling
// a crash during the checkpoint write — CheckpointIsValid detects the
// tear and the recovery driver falls back to an older checkpoint.

struct CheckpointWriteOptions {
  // Tables to leave out of the catalog + data sections (materialized-view
  // backing tables; their contents are rebuilt by re-running view_ddls).
  std::vector<std::string> exclude_tables;
  // CREATE MATERIALIZED VIEW statements to carry in the view section.
  std::vector<std::string> view_ddls;
};

Result<std::string> WriteCheckpoint(const Catalog& catalog, Timestamp ts);
Result<std::string> WriteCheckpoint(const Catalog& catalog, Timestamp ts,
                                    const CheckpointWriteOptions& options);

// True when `image` carries the v2 magic and its salted whole-image
// checksum matches. Cheap (one hash pass); run before mutating a catalog.
bool CheckpointIsValid(const std::string& image);

// The checkpoint timestamp stored in a valid image header.
Result<Timestamp> CheckpointTimestamp(const std::string& image);

// What RestoreCheckpoint found in the image besides table data.
struct CheckpointContents {
  Timestamp ts = 0;
  std::vector<std::string> view_ddls;
  size_t tables_created = 0;   // created from serialized schemas
  size_t tables_verified = 0;  // already existed with matching schemas
};

// Restores a checkpoint image. Tables missing from `catalog` are created
// from the serialized schemas (recovery from a truly empty catalog);
// tables that already exist must match the serialized schema exactly —
// a mismatch fails with kCorruption before any data is applied. With a
// non-null `pool` the data section replays partitioned by table.
// Failpoint site: "checkpoint.restore.error".
Result<Wal::ReplayStats> RestoreCheckpoint(const std::string& image,
                                           Catalog* catalog,
                                           CheckpointContents* contents = nullptr,
                                           ThreadPool* pool = nullptr);

// Recovery entry point: restore the checkpoint, then replay the WAL tail —
// only records with commit_ts > the checkpoint's timestamp are applied.
// Returns combined stats (max_commit_ts covers the tail). An empty
// `checkpoint` means "no checkpoint": the full log replays into the
// caller's pre-created tables.
//
// A torn checkpoint is detected up front (kCorruption) with `catalog`
// untouched, so falling back to an older image may reuse the catalog. Any
// other failure (a corrupt op body, an unknown table, a failed apply) can
// surface mid-replay with `catalog` partially populated: discard the
// catalog before retrying, or rows would be applied twice.
// With a non-null `pool`, both the checkpoint restore and the tail replay
// run partitioned by table on the pool (Wal::ReplayParallel) — same
// resulting state, recovery time bounded by the largest table instead of
// the sum.
Result<Wal::ReplayStats> RecoverFromCheckpointAndLog(
    const std::string& checkpoint, const std::string& wal_data,
    Catalog* catalog, ThreadPool* pool = nullptr);

// --- Checkpoint chain: versioned images + manifest -----------------------
//
// The checkpoint daemon retains the last few images as a *chain* and
// points at the newest with a checksummed manifest. Recovery reads the
// manifest to find the newest valid image; a torn manifest or a torn
// image falls back automatically — first to older manifest entries, then
// to scanning the retained images directly — trading a longer WAL-tail
// replay for the damage.

struct CheckpointManifestEntry {
  uint64_t id = 0;
  Timestamp ts = 0;
  uint64_t checksum = 0;  // salted whole-image checksum of the image
  uint64_t bytes = 0;
};

// The durable state the daemon maintains: retained images (oldest first)
// plus the serialized manifest. This is what a crash preserves and what
// recovery consumes.
struct CheckpointStore {
  struct Image {
    uint64_t id = 0;
    Timestamp ts = 0;
    std::string data;
  };
  std::vector<Image> images;  // oldest first
  std::string manifest;

  bool empty() const { return images.empty() && manifest.empty(); }
};

// Salted whole-image checksum, as recorded in manifest entries.
uint64_t CheckpointChecksum(const std::string& image);

std::string SerializeManifest(const std::vector<CheckpointManifestEntry>& entries);
// kCorruption on a torn or checksum-failing manifest.
Result<std::vector<CheckpointManifestEntry>> ParseManifest(
    const std::string& data);

// Picks the newest usable image from the store: walk the manifest newest-
// first (entry's image must exist, match the recorded checksum, and pass
// CheckpointIsValid); if the manifest is torn or exhausted, scan the
// retained images newest-first validating each. Every candidate skipped
// counts into *fallbacks (optional). kNotFound when no image qualifies —
// recovery then replays the full retained WAL.
Result<CheckpointStore::Image> SelectRecoveryImage(const CheckpointStore& store,
                                                   size_t* fallbacks = nullptr);

}  // namespace oltap

#endif  // OLTAP_TXN_CHECKPOINT_H_
