#ifndef OLTAP_TXN_CHECKPOINT_H_
#define OLTAP_TXN_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "common/types.h"
#include "storage/catalog.h"
#include "txn/wal.h"

namespace oltap {

// Consistent checkpointing: serializes every row visible at `ts` so
// recovery can start from the checkpoint and replay only the WAL tail,
// instead of replaying history from the beginning — the standard
// checkpoint + log-truncation pattern of in-memory engines.
//
// The checkpoint is encoded as WAL records (one bulk-insert record per
// table) stamped with commit timestamp `ts`, so restoration is ordinary
// replay. Because reads go through a snapshot at `ts`, the checkpoint is
// transaction-consistent even while OLTP continues.
//
// Fault injection: "checkpoint.write.error" fails the write outright;
// "checkpoint.write.torn" returns an image truncated mid-record,
// modeling a crash during the checkpoint write — restoration detects the
// tear and the recovery driver must fall back to an older checkpoint.
Result<std::string> WriteCheckpoint(const Catalog& catalog, Timestamp ts);

// Restores a checkpoint into a fresh catalog (tables must exist, empty).
// Failpoint site: "checkpoint.restore.error".
Result<Wal::ReplayStats> RestoreCheckpoint(const std::string& data,
                                           Catalog* catalog);

// Recovery entry point: restore the checkpoint, then replay the WAL tail —
// only records with commit_ts > the checkpoint's timestamp are applied.
// Returns combined stats (max_commit_ts covers the tail).
//
// A torn checkpoint is detected up front (kCorruption) with `catalog`
// untouched, so falling back to an older image may reuse the catalog. Any
// other failure (a corrupt op body, an unknown table, a failed apply) can
// surface mid-replay with `catalog` partially populated: discard the
// catalog before retrying, or rows would be applied twice.
// With a non-null `pool`, both the checkpoint restore and the tail replay
// run partitioned by table on the pool (Wal::ReplayParallel) — same
// resulting state, recovery time bounded by the largest table instead of
// the sum.
Result<Wal::ReplayStats> RecoverFromCheckpointAndLog(
    const std::string& checkpoint, const std::string& wal_data,
    Catalog* catalog, ThreadPool* pool = nullptr);

}  // namespace oltap

#endif  // OLTAP_TXN_CHECKPOINT_H_
