#include "txn/transaction_manager.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "txn/log_writer.h"
#include "txn/wal.h"

namespace oltap {

Transaction::~Transaction() {
  if (!finished_) mgr_->Abort(this);
}

const Transaction::WriteOp* Transaction::OwnWrite(
    const Table* table, const std::string& key) const {
  auto it = latest_.find({table, key});
  return it == latest_.end() ? nullptr : &ops_[it->second];
}

Status Transaction::Insert(Table* table, Row row) {
  if (row.size() != table->schema().num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  std::string key =
      table->schema().HasKey() ? EncodeKey(table->schema(), row) : "";
  if (!key.empty()) {
    const WriteOp* own = OwnWrite(table, key);
    if (own != nullptr && own->kind != OpKind::kDelete) {
      return Status::AlreadyExists("duplicate key in transaction");
    }
    if (own == nullptr) {
      Row existing;
      if (table->Lookup(key, begin_ts_, &existing)) {
        return Status::AlreadyExists("duplicate primary key");
      }
    }
  }
  ops_.push_back(WriteOp{OpKind::kInsert, table, key, std::move(row)});
  if (!key.empty()) latest_[{table, ops_.back().key}] = ops_.size() - 1;
  return Status::OK();
}

Status Transaction::Update(Table* table, Row new_row) {
  if (!table->schema().HasKey()) {
    return Status::FailedPrecondition("update requires a primary key");
  }
  std::string key = EncodeKey(table->schema(), new_row);
  const WriteOp* own = OwnWrite(table, key);
  if (own != nullptr) {
    if (own->kind == OpKind::kDelete) {
      return Status::NotFound("row deleted in this transaction");
    }
  } else {
    Row existing;
    if (!table->Lookup(key, begin_ts_, &existing)) {
      return Status::NotFound("key not visible");
    }
  }
  ops_.push_back(WriteOp{OpKind::kUpdate, table, key, std::move(new_row)});
  latest_[{table, ops_.back().key}] = ops_.size() - 1;
  return Status::OK();
}

Status Transaction::Delete(Table* table, const Row& key_row) {
  if (!table->schema().HasKey()) {
    return Status::FailedPrecondition("delete requires a primary key");
  }
  return DeleteByKey(table, EncodeKey(table->schema(), key_row));
}

Status Transaction::DeleteByKey(Table* table, std::string key) {
  const WriteOp* own = OwnWrite(table, key);
  if (own != nullptr) {
    if (own->kind == OpKind::kDelete) {
      return Status::NotFound("row already deleted in this transaction");
    }
  } else {
    Row existing;
    if (!table->Lookup(key, begin_ts_, &existing)) {
      return Status::NotFound("key not visible");
    }
  }
  ops_.push_back(WriteOp{OpKind::kDelete, table, std::move(key), Row{}});
  latest_[{table, ops_.back().key}] = ops_.size() - 1;
  return Status::OK();
}

bool Transaction::Get(Table* table, const std::string& key, Row* out) const {
  const WriteOp* own = OwnWrite(table, key);
  if (own != nullptr) {
    if (own->kind == OpKind::kDelete) return false;
    *out = own->row;
    return true;
  }
  return table->Lookup(key, begin_ts_, out);
}

bool Transaction::GetByRow(Table* table, const Row& key_row, Row* out) const {
  return Get(table, EncodeKey(table->schema(), key_row), out);
}

void Transaction::Scan(Table* table,
                       const std::function<void(const Row&)>& fn) const {
  const bool keyed = table->schema().HasKey();
  table->ScanVisible(begin_ts_, [&](const Row& row) {
    if (keyed) {
      const WriteOp* own = OwnWrite(table, EncodeKey(table->schema(), row));
      if (own != nullptr) {
        // Deleted rows vanish; updated rows are emitted from the write set
        // below only if they replace this one (emit the new image here).
        if (own->kind == OpKind::kDelete) return;
        if (own->kind == OpKind::kUpdate) {
          fn(own->row);
          return;
        }
        // kInsert over a visible row cannot validate; fall through.
      }
    }
    fn(row);
  });
  // Own rows not visible in the snapshot (inserted, possibly then updated,
  // within this transaction).
  for (const auto& [table_key, idx] : latest_) {
    if (table_key.first != table) continue;
    const WriteOp& op = ops_[idx];
    if (op.kind == OpKind::kDelete) continue;
    Row existing;
    if (!table->Lookup(op.key, begin_ts_, &existing)) fn(op.row);
  }
  // Keyless appends are never in latest_.
  for (const WriteOp& op : ops_) {
    if (op.table == table && op.kind == OpKind::kInsert && op.key.empty()) {
      fn(op.row);
    }
  }
}

TransactionManager::TransactionManager(Catalog* catalog, Wal* wal)
    : catalog_(catalog), wal_(wal) {}

Timestamp TransactionManager::VisibleWatermark() const {
  // Every allocated commit timestamp is eventually finished (applied or
  // retired), so the contiguous applied prefix converges to the oracle
  // when the system goes idle — no "no in-flight commits" special case.
  return visible_.load(std::memory_order_acquire);
}

Timestamp TransactionManager::AllocateCommitTs() {
  Timestamp ts = oracle_.AllocateCommitTs();
  // Never let allocation lap the ring: slot ts % W must be consumed (i.e.
  // the watermark must have passed ts - W) before we may reuse it. All
  // older timestamps are finished by independent threads, so this spin
  // cannot deadlock; with in-flight commits bounded by the thread count it
  // never triggers in practice.
  while (ts >= visible_.load(std::memory_order_acquire) + kCommitWindow) {
    AdvanceVisible();  // help rather than wait passively
    std::this_thread::yield();
  }
  return ts;
}

void TransactionManager::FinishCommitTs(Timestamp ts) {
  applied_slots_[ts % kCommitWindow].store(ts, std::memory_order_release);
  // StoreLoad barrier: the slot store above and the visible_ load inside
  // AdvanceVisible are different atomics, so without a full fence the load
  // may be served ahead of the store draining the store buffer (x86 allows
  // exactly this). Two finishers of adjacent timestamps could then each
  // miss the other's slot store and both exit without advancing, leaving
  // the watermark stuck below an applied commit.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  AdvanceVisible();
}

void TransactionManager::AdvanceVisible() {
  // Advance the watermark over the contiguous applied prefix. Racing
  // finishers may each advance a piece; the loop re-reads after every CAS
  // so no applied slot is left behind.
  Timestamp v = visible_.load(std::memory_order_acquire);
  while (applied_slots_[(v + 1) % kCommitWindow].load(
             std::memory_order_acquire) == v + 1) {
    if (visible_.compare_exchange_weak(v, v + 1,
                                       std::memory_order_acq_rel)) {
      v = v + 1;
    }
  }
}

void TransactionManager::AdvanceTo(Timestamp ts) {
  oracle_.AdvanceTo(ts);
  Timestamp v = visible_.load(std::memory_order_acquire);
  while (v < ts &&
         !visible_.compare_exchange_weak(v, ts, std::memory_order_acq_rel)) {
  }
}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  uint64_t id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  size_t shard = obs::ThreadShardIndex() % kSnapshotShards;
  Timestamp begin_ts;
  {
    std::lock_guard<std::mutex> lock(snapshot_shards_[shard].mu);
    // The watermark read must happen *inside* the shard lock: a GC sweep
    // (OldestActiveSnapshot) reads the watermark before locking the
    // shards, so a registration it misses can only have locked this shard
    // after the sweep released it — and therefore reads a watermark at
    // least as new as the sweep's, keeping begin_ts >= the sweep's
    // horizon. Reading before locking would open a window in which a
    // concurrent merge could prune versions this snapshot needs.
    begin_ts = visible_.load(std::memory_order_acquire);
    snapshot_shards_[shard].active[begin_ts]++;
  }
  return std::unique_ptr<Transaction>(
      new Transaction(this, id, begin_ts, shard));
}

size_t TransactionManager::StripeFor(const Table* table,
                                     const std::string& key) const {
  uint64_t h = HashCombine(
      Mix64(reinterpret_cast<uintptr_t>(table)), HashString(key));
  return h % kLockStripes;
}

Status TransactionManager::Commit(Transaction* txn) {
  OLTAP_CHECK(!txn->finished_) << "commit on finished transaction";
  static obs::Histogram* commit_ns =
      obs::MetricsRegistry::Default()->GetHistogram("txn.commit_ns");
  obs::ScopedTimer commit_timer(commit_ns);
  auto finish = [&](bool committed) {
    txn->finished_ = true;
    SnapshotShard& shard = snapshot_shards_[txn->snapshot_shard_];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.active.find(txn->begin_ts_);
    OLTAP_DCHECK(it != shard.active.end());
    if (--it->second == 0) shard.active.erase(it);
    (committed ? commits_ : aborts_).fetch_add(1, std::memory_order_relaxed);
    static obs::Counter* commit_count =
        obs::MetricsRegistry::Default()->GetCounter("txn.commits");
    static obs::Counter* abort_count =
        obs::MetricsRegistry::Default()->GetCounter("txn.aborts");
    (committed ? commit_count : abort_count)->Add(1);
  };

  if (txn->ops_.empty()) {
    finish(true);
    return Status::OK();
  }

  // Lock the stripes covering the write set, in order (deadlock-free).
  std::set<size_t> stripes;
  for (const Transaction::WriteOp& op : txn->ops_) {
    stripes.insert(StripeFor(op.table, op.key));
  }
  for (size_t s : stripes) stripes_[s].lock();
  auto unlock_all = [&] {
    for (auto it = stripes.rbegin(); it != stripes.rend(); ++it) {
      stripes_[*it].unlock();
    }
  };

  // First-committer-wins validation per written key. The first op on a key
  // fixes the existence requirement; LastWriteTs detects writes committed
  // after our snapshot.
  Timestamp now = oracle_.CurrentReadTs();
  std::map<std::pair<const Table*, std::string>, Transaction::OpKind> first;
  for (const Transaction::WriteOp& op : txn->ops_) {
    if (op.key.empty()) continue;  // keyless append: conflict-free
    first.try_emplace({op.table, op.key}, op.kind);
  }
  for (const auto& [table_key, kind] : first) {
    Table* table = const_cast<Table*>(table_key.first);
    const std::string& key = table_key.second;
    if (table->LastWriteTs(key) > txn->begin_ts_) {
      unlock_all();
      finish(false);
      return Status::Aborted("write-write conflict on " + table->name());
    }
    Row existing;
    bool live = table->Lookup(key, now, &existing);
    if (kind == Transaction::OpKind::kInsert && live) {
      unlock_all();
      finish(false);
      return Status::Aborted("concurrent insert of same key");
    }
    if (kind != Transaction::OpKind::kInsert && !live) {
      unlock_all();
      finish(false);
      return Status::Aborted("row vanished before commit");
    }
  }

  Timestamp commit_ts = AllocateCommitTs();
  txn->commit_ts_ = commit_ts;

  if (wal_ != nullptr) {
    std::vector<WalOp> wal_ops;
    wal_ops.reserve(txn->ops_.size());
    for (const Transaction::WriteOp& op : txn->ops_) {
      WalOp w;
      w.kind = static_cast<WalOp::Kind>(op.kind);
      w.table = op.table->name();
      w.key = op.key;
      w.row = op.row;
      wal_ops.push_back(std::move(w));
    }
    // Durability point. With a log writer installed this is group commit:
    // serialize here (on the committing thread), enqueue, and block until
    // the batch containing this record is fsynced — the stripe locks stay
    // held, which is safe because only commits with overlapping write
    // sets share a stripe, and those must serialize anyway. In-flight
    // commits are bounded by the thread count, far below kCommitWindow,
    // so blocking here cannot wedge timestamp allocation.
    Status wal_st;
    if (LogWriter* writer = log_writer_.load(std::memory_order_acquire)) {
      wal_st = writer
                   ->SubmitCommit(
                       Wal::SerializeCommitBody(txn->id_, commit_ts, wal_ops))
                   .get();
    } else {
      wal_st = wal_->LogCommit(txn->id_, commit_ts, wal_ops);
    }
    if (!wal_st.ok()) {
      // The commit record never became durable, so the transaction must
      // not apply: retire the timestamp unused (a harmless gap in the
      // commit sequence) and surface the IO error to the caller.
      txn->commit_ts_ = 0;
      FinishCommitTs(commit_ts);
      unlock_all();
      finish(false);
      return wal_st;
    }
  }

  // Apply. Validation plus the stripe locks guarantee success.
  for (const Transaction::WriteOp& op : txn->ops_) {
    Status st;
    switch (op.kind) {
      case Transaction::OpKind::kInsert:
        st = op.table->InsertCommitted(op.row, commit_ts);
        break;
      case Transaction::OpKind::kUpdate:
        st = op.table->UpdateCommitted(op.key, op.row, commit_ts);
        break;
      case Transaction::OpKind::kDelete:
        st = op.table->DeleteCommitted(op.key, commit_ts);
        break;
    }
    OLTAP_CHECK(st.ok()) << "validated commit failed to apply: "
                         << st.ToString();
  }
  FinishCommitTs(commit_ts);

  unlock_all();
  finish(true);
  // Read-your-writes across transactions: don't acknowledge until the
  // watermark covers this commit, so the committer's next Begin is
  // guaranteed to see it (and an acked commit is never invisible to a
  // later snapshot — the concurrent driver's commit audit relies on
  // this). The wait is bounded: only earlier commits that are already
  // past validation can be ahead of us, and no locks are held here. The
  // spin helps (re-runs the advance loop) rather than loading visible_
  // passively, so it cannot hang even if a concurrent finisher's advance
  // missed a slot.
  while (visible_.load(std::memory_order_acquire) < commit_ts) {
    AdvanceVisible();
    std::this_thread::yield();
  }
  // Post-commit hook (synchronous view maintenance): runs at the ack
  // point — durable, visible, no locks held — so a maintenance
  // transaction begun inside the hook reads a snapshot covering this
  // commit. Distinct tables only.
  if (commit_hook_) {
    std::vector<Table*> touched;
    for (const Transaction::WriteOp& op : txn->ops_) {
      if (std::find(touched.begin(), touched.end(), op.table) ==
          touched.end()) {
        touched.push_back(op.table);
      }
    }
    commit_hook_(touched, commit_ts);
  }
  return Status::OK();
}

void TransactionManager::Abort(Transaction* txn) {
  if (txn->finished_) return;
  txn->finished_ = true;
  txn->ops_.clear();
  txn->latest_.clear();
  SnapshotShard& shard = snapshot_shards_[txn->snapshot_shard_];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.active.find(txn->begin_ts_);
    if (it != shard.active.end() && --it->second == 0) {
      shard.active.erase(it);
    }
  }
  aborts_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* abort_count =
      obs::MetricsRegistry::Default()->GetCounter("txn.aborts");
  abort_count->Add(1);
}

Timestamp TransactionManager::OldestActiveSnapshot() const {
  // The GC horizon is the older of the watermark and any live snapshot.
  // Safety against racing Begins relies on lock ordering, not timing:
  // Begin reads the watermark *inside* its shard lock, and this sweep
  // reads the watermark *before* locking any shard. So a registration the
  // sweep misses must have acquired its shard lock after the sweep
  // released it, hence read a watermark >= the value read here — either
  // the sweep sees the registration (horizon <= its begin_ts) or the
  // registration's begin_ts >= this horizon. A too-low (conservative)
  // result is the only race outcome.
  Timestamp horizon = VisibleWatermark();
  for (const SnapshotShard& shard : snapshot_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.active.empty()) {
      horizon = std::min(horizon, shard.active.begin()->first);
    }
  }
  return horizon;
}

}  // namespace oltap
