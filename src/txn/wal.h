#ifndef OLTAP_TXN_WAL_H_
#define OLTAP_TXN_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/catalog.h"
#include "storage/row.h"

namespace oltap {

class ThreadPool;

// One logged DML operation within a committed transaction.
struct WalOp {
  enum Kind : uint8_t { kInsert = 0, kUpdate = 1, kDelete = 2 };
  Kind kind = kInsert;
  std::string table;
  std::string key;  // encoded PK; empty for keyless inserts
  Row row;          // full image for insert/update; empty for delete
};

// Write-ahead log of committed transactions (redo-only: the deferred-write
// transaction manager never applies uncommitted changes, so recovery is a
// pure forward replay — the same simplification Hekaton-style in-memory
// engines make). Records carry a checksum; replay stops at the first torn
// or corrupt record.
//
// Two frame kinds share the log:
//  - a *record* frame holds one commit (len + checksum + body), written by
//    LogCommit — one flush/fsync per commit;
//  - a *batch* frame (high bit of the length word set) holds many commit
//    bodies under ONE checksum covering the whole batch, written by
//    LogCommitBatch — this is the group-commit unit (txn/log_writer.h).
//    The single checksum is what gives torn-batch all-or-nothing
//    semantics: a tear anywhere in the batch fails the checksum, so
//    replay applies none of the batch's commits and no prefix of a torn
//    batch can resurrect. (With per-record framing a mid-batch tear would
//    leave a well-formed prefix of commits that were never acknowledged.)
//
// The log always accumulates into an in-memory buffer; when opened with a
// path it also appends to that file, and LogCommit/LogCommitBatch flush
// (and optionally fsync) before returning.
class Wal {
 public:
  struct Options {
    // fsync the file at the commit durability point. fflush alone hands
    // the record to the OS (survives process death, not OS crash);
    // fsync makes the commit durable across power loss at the cost of a
    // device write per commit (or per batch, under group commit).
    bool fsync_on_commit = false;
  };

  Wal() = default;
  explicit Wal(const Options& options) : options_(options) {}
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (creating or appending) a file-backed log.
  static Result<std::unique_ptr<Wal>> OpenFile(const std::string& path) {
    return OpenFile(path, Options{});
  }
  static Result<std::unique_ptr<Wal>> OpenFile(const std::string& path,
                                               const Options& options);

  // Appends one commit record. Thread-safe; called by the transaction
  // manager at the durability point (after validation, before apply).
  // On a short write, flush/fsync failure, or injected fault (failpoints
  // "wal.append.torn", "wal.append.error", "wal.fsync.error") the record
  // is not durable and the caller must fail the commit. The failed
  // append is undone — buffer and file are trimmed back to the last
  // complete record — so recovery never resurrects the failed
  // transaction. When the partial bytes cannot be removed (a torn append
  // deliberately leaves them; a file trim can fail) the Wal seals
  // instead: every later LogCommit returns kUnavailable, because a
  // commit appended after a tear would be acknowledged yet unreachable
  // by Replay, which stops at the first corrupt record.
  Status LogCommit(uint64_t txn_id, Timestamp commit_ts,
                   const std::vector<WalOp>& ops);

  // Serializes one commit into a record *body* (no frame header) for
  // LogCommitBatch. Pure function, no lock — the group-commit path
  // serializes on the committing threads and batches on the log writer.
  static std::string SerializeCommitBody(uint64_t txn_id, Timestamp commit_ts,
                                         const std::vector<WalOp>& ops);

  // Appends `bodies` (each from SerializeCommitBody) as ONE batch frame —
  // one checksum over the whole batch, one flush, one fsync. All-or-
  // nothing: on any failure (short write, flush/fsync error, injected
  // "wal.batch.torn" / "wal.fsync.error") the entire batch is undone or
  // the log seals, and every commit in the batch must be failed by the
  // caller; no prefix of the batch is ever durable on its own.
  // "wal.fsync.stall" injects a delay before the fsync (commit-latency
  // fault, not a durability fault).
  Status LogCommitBatch(const std::vector<std::string>& bodies);

  // True once a failed append has left the log torn (see LogCommit).
  // Mirrored into the obs gauge "wal.sealed" at seal time so operators
  // see a dead log before the next commit fails.
  bool sealed() const;

  // Serialized bytes logged so far (memory copy; tests and Replay use it).
  std::string buffer() const;

  // Byte length of the serialized log — use instead of buffer() when only
  // the length is needed (buffer() copies the whole log under the mutex).
  size_t size() const;

  // Commits logged (a batch frame counts each body it carries).
  size_t num_records() const;

  struct ReplayStats {
    size_t txns_applied = 0;
    size_t ops_applied = 0;
    Timestamp max_commit_ts = 0;
    bool truncated_tail = false;  // hit a torn/corrupt record and stopped
  };

  struct ReplayOptions {
    // Records with commit_ts <= skip_through_ts are skipped (checkpoint
    // recovery replays only the tail).
    Timestamp skip_through_ts = 0;
    // Idempotent re-run: a keyed op whose table already saw a write to
    // that key at >= the op's commit timestamp is skipped instead of
    // re-applied, so recovery interrupted mid-replay can simply run
    // again over the same catalog (the idempotence the crash-during-
    // recovery tests pin down). Keyless appends carry no identity and
    // are NOT deduplicated — re-running recovery over tables with
    // keyless appends still requires a fresh catalog.
    bool idempotent = false;
  };

  // Replays serialized log `data` into `catalog` (tables must already
  // exist with matching schemas). Unless options.idempotent is set,
  // replay into a fresh catalog.
  static Result<ReplayStats> Replay(const std::string& data, Catalog* catalog,
                                    Timestamp skip_through_ts = 0);
  static Result<ReplayStats> Replay(const std::string& data, Catalog* catalog,
                                    const ReplayOptions& options);

  // Parallel partitioned replay: one decode pass partitions the log's ops
  // by table (preserving log order within each table), then the tables
  // are applied concurrently on `pool`. Ops on different tables commute
  // (keys are table-scoped), so the result is byte-identical to serial
  // Replay; the caller fast-forwards the transaction manager once with
  // AdvanceTo(stats.max_commit_ts) at the end. Unlike serial Replay,
  // nothing is applied if the log references an unknown table (the
  // decode pass fails first).
  static Result<ReplayStats> ReplayParallel(const std::string& data,
                                            Catalog* catalog, ThreadPool* pool,
                                            const ReplayOptions& options);
  static Result<ReplayStats> ReplayParallel(const std::string& data,
                                            Catalog* catalog, ThreadPool* pool);

  // Convenience: reads the file and replays it.
  static Result<ReplayStats> ReplayFile(const std::string& path,
                                        Catalog* catalog);

  // True when every frame in `data` parses with a valid checksum (no torn
  // tail). Scans frames without applying them — use to validate an image
  // before mutating a catalog with Replay.
  static bool IsWellFormed(const std::string& data);

 private:
  // Appends `frame` to buf_ and the file (if any), with flush + optional
  // fsync; on failure rolls back to the pre-append length or seals.
  // Caller holds mu_. `records` is how many commits the frame carries.
  Status AppendFrameLocked(const std::string& frame, size_t records);
  // Marks the log torn and publishes the "wal.sealed" gauge. Caller
  // holds mu_.
  void SealLocked();

  Options options_;
  mutable std::mutex mu_;
  std::string buf_;
  size_t num_records_ = 0;
  bool sealed_ = false;
  std::FILE* file_ = nullptr;
};

}  // namespace oltap

#endif  // OLTAP_TXN_WAL_H_
