#ifndef OLTAP_TXN_WAL_H_
#define OLTAP_TXN_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/catalog.h"
#include "storage/row.h"

namespace oltap {

// One logged DML operation within a committed transaction.
struct WalOp {
  enum Kind : uint8_t { kInsert = 0, kUpdate = 1, kDelete = 2 };
  Kind kind = kInsert;
  std::string table;
  std::string key;  // encoded PK; empty for keyless inserts
  Row row;          // full image for insert/update; empty for delete
};

// Write-ahead log of committed transactions (redo-only: the deferred-write
// transaction manager never applies uncommitted changes, so recovery is a
// pure forward replay — the same simplification Hekaton-style in-memory
// engines make). Records carry a checksum; replay stops at the first torn
// or corrupt record.
//
// The log always accumulates into an in-memory buffer; when opened with a
// path it also appends to that file, and LogCommit flushes before
// returning (group commit is the scheduler layer's concern, not modeled).
class Wal {
 public:
  struct Options {
    // fsync the file at the commit durability point. fflush alone hands
    // the record to the OS (survives process death, not OS crash);
    // fsync makes the commit durable across power loss at the cost of a
    // device write per commit.
    bool fsync_on_commit = false;
  };

  Wal() = default;
  explicit Wal(const Options& options) : options_(options) {}
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (creating or appending) a file-backed log.
  static Result<std::unique_ptr<Wal>> OpenFile(const std::string& path) {
    return OpenFile(path, Options{});
  }
  static Result<std::unique_ptr<Wal>> OpenFile(const std::string& path,
                                               const Options& options);

  // Appends one commit record. Thread-safe; called by the transaction
  // manager at the durability point (after validation, before apply).
  // On a short write, flush/fsync failure, or injected fault (failpoints
  // "wal.append.torn", "wal.append.error", "wal.fsync.error") the record
  // is not durable and the caller must fail the commit. The failed
  // append is undone — buffer and file are trimmed back to the last
  // complete record — so recovery never resurrects the failed
  // transaction. When the partial bytes cannot be removed (a torn append
  // deliberately leaves them; a file trim can fail) the Wal seals
  // instead: every later LogCommit returns kUnavailable, because a
  // commit appended after a tear would be acknowledged yet unreachable
  // by Replay, which stops at the first corrupt record.
  Status LogCommit(uint64_t txn_id, Timestamp commit_ts,
                   const std::vector<WalOp>& ops);

  // True once a failed append has left the log torn (see LogCommit).
  bool sealed() const;

  // Serialized bytes logged so far (memory copy; tests and Replay use it).
  std::string buffer() const;

  size_t num_records() const;

  struct ReplayStats {
    size_t txns_applied = 0;
    size_t ops_applied = 0;
    Timestamp max_commit_ts = 0;
    bool truncated_tail = false;  // hit a torn/corrupt record and stopped
  };

  // Replays serialized log `data` into `catalog` (tables must already
  // exist with matching schemas). Idempotent against already-applied state
  // is NOT assumed: replay into a fresh catalog. Records with
  // commit_ts <= `skip_through_ts` are skipped (checkpoint recovery
  // replays only the tail).
  static Result<ReplayStats> Replay(const std::string& data, Catalog* catalog,
                                    Timestamp skip_through_ts = 0);

  // Convenience: reads the file and replays it.
  static Result<ReplayStats> ReplayFile(const std::string& path,
                                        Catalog* catalog);

  // True when every record frame in `data` parses with a valid checksum
  // (no torn tail). Scans frames without applying them — use to validate
  // an image before mutating a catalog with Replay.
  static bool IsWellFormed(const std::string& data);

 private:
  Options options_;
  mutable std::mutex mu_;
  std::string buf_;
  size_t num_records_ = 0;
  bool sealed_ = false;
  std::FILE* file_ = nullptr;
};

}  // namespace oltap

#endif  // OLTAP_TXN_WAL_H_
