#ifndef OLTAP_TXN_WAL_H_
#define OLTAP_TXN_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/catalog.h"
#include "storage/row.h"

namespace oltap {

class ThreadPool;

// One logged DML operation within a committed transaction.
struct WalOp {
  enum Kind : uint8_t { kInsert = 0, kUpdate = 1, kDelete = 2 };
  Kind kind = kInsert;
  std::string table;
  std::string key;  // encoded PK; empty for keyless inserts
  Row row;          // full image for insert/update; empty for delete
};

// Write-ahead log of committed transactions (redo-only: the deferred-write
// transaction manager never applies uncommitted changes, so recovery is a
// pure forward replay — the same simplification Hekaton-style in-memory
// engines make). Records carry a checksum; replay stops at the first torn
// or corrupt record.
//
// Two frame kinds share the log:
//  - a *record* frame holds one commit (len + checksum + body), written by
//    LogCommit — one flush/fsync per commit;
//  - a *batch* frame (high bit of the length word set) holds many commit
//    bodies under ONE checksum covering the whole batch, written by
//    LogCommitBatch — this is the group-commit unit (txn/log_writer.h).
//    The single checksum is what gives torn-batch all-or-nothing
//    semantics: a tear anywhere in the batch fails the checksum, so
//    replay applies none of the batch's commits and no prefix of a torn
//    batch can resurrect. (With per-record framing a mid-batch tear would
//    leave a well-formed prefix of commits that were never acknowledged.)
//
// The log always accumulates into an in-memory buffer; when opened with a
// path it also appends to that file, and LogCommit/LogCommitBatch flush
// (and optionally fsync) before returning.
//
// Segmentation: with a non-zero segment size the log rotates into
// *segments* at frame boundaries — the active segment seals once it
// reaches the size and a fresh one opens (file-backed logs rotate into
// "<path>.<id>" suffix files). Segments are the unit of truncation: once
// a checkpoint covers every commit in a sealed segment, TruncateBelow
// drops it, bounding both retained log bytes and the recovery replay
// tail. buffer()/size() always cover the *retained* segments only.
class Wal {
 public:
  struct Options {
    // fsync the file at the commit durability point. fflush alone hands
    // the record to the OS (survives process death, not OS crash);
    // fsync makes the commit durable across power loss at the cost of a
    // device write per commit (or per batch, under group commit).
    bool fsync_on_commit = false;
    // Rotate the active segment once it reaches this many bytes
    // (checked after each append, so segments overshoot by at most one
    // frame). 0 = never rotate: the log is one unbounded segment, the
    // pre-segmentation behavior.
    uint64_t segment_bytes = 0;
  };

  // One retained segment, oldest first; the last entry is the active
  // (still-appending) segment.
  struct SegmentInfo {
    uint64_t id = 0;
    Timestamp max_commit_ts = 0;  // newest commit in the segment
    uint64_t bytes = 0;
  };

  Wal() = default;
  explicit Wal(const Options& options) : options_(options) {}
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (creating or appending) a file-backed log.
  static Result<std::unique_ptr<Wal>> OpenFile(const std::string& path) {
    return OpenFile(path, Options{});
  }
  static Result<std::unique_ptr<Wal>> OpenFile(const std::string& path,
                                               const Options& options);

  // Appends one commit record. Thread-safe; called by the transaction
  // manager at the durability point (after validation, before apply).
  // On a short write, flush/fsync failure, or injected fault (failpoints
  // "wal.append.torn", "wal.append.error", "wal.fsync.error") the record
  // is not durable and the caller must fail the commit. The failed
  // append is undone — buffer and file are trimmed back to the last
  // complete record — so recovery never resurrects the failed
  // transaction. When the partial bytes cannot be removed (a torn append
  // deliberately leaves them; a file trim can fail) the Wal seals
  // instead: every later LogCommit returns kUnavailable, because a
  // commit appended after a tear would be acknowledged yet unreachable
  // by Replay, which stops at the first corrupt record.
  Status LogCommit(uint64_t txn_id, Timestamp commit_ts,
                   const std::vector<WalOp>& ops);

  // Serializes one commit into a record *body* (no frame header) for
  // LogCommitBatch. Pure function, no lock — the group-commit path
  // serializes on the committing threads and batches on the log writer.
  static std::string SerializeCommitBody(uint64_t txn_id, Timestamp commit_ts,
                                         const std::vector<WalOp>& ops);

  // Appends `bodies` (each from SerializeCommitBody) as ONE batch frame —
  // one checksum over the whole batch, one flush, one fsync. All-or-
  // nothing: on any failure (short write, flush/fsync error, injected
  // "wal.batch.torn" / "wal.fsync.error") the entire batch is undone or
  // the log seals, and every commit in the batch must be failed by the
  // caller; no prefix of the batch is ever durable on its own.
  // "wal.fsync.stall" injects a delay before the fsync (commit-latency
  // fault, not a durability fault).
  Status LogCommitBatch(const std::vector<std::string>& bodies);

  // True once a failed append has left the log torn (see LogCommit).
  // Mirrored into the obs gauge "wal.sealed" at seal time so operators
  // see a dead log before the next commit fails.
  bool sealed() const;

  // Seals the log explicitly: every later append fails with kUnavailable.
  // Models the device going away — the crash-anywhere torture seals at
  // the kill instant so no commit can acknowledge after the crash cut.
  void Seal();

  // Serialized bytes logged so far across the retained segments (memory
  // copy; tests and Replay use it). Truncated segments are gone — this is
  // exactly the replay tail recovery will walk.
  std::string buffer() const;

  // Byte length of the retained log — use instead of buffer() when only
  // the length is needed (buffer() copies the whole log under the mutex).
  size_t size() const;

  // Commits logged (a batch frame counts each body it carries).
  size_t num_records() const;

  // --- Segmentation & truncation ---

  // Retained segments, oldest first (the last is the active one).
  std::vector<SegmentInfo> Segments() const;
  size_t num_segments() const;

  // Total bytes dropped by TruncateBelow over the log's lifetime.
  uint64_t truncated_bytes() const;

  // Changes the rotation size for future appends (SQL: SET
  // wal_segment_bytes). 0 stops further rotation.
  void set_segment_bytes(uint64_t bytes);

  // Drops the longest prefix of *sealed* segments whose every commit is
  // at or below `horizon` (the active segment never drops). The caller
  // must pass a horizon no newer than its latest durable checkpoint's
  // timestamp — recovery replays the retained tail with skip_through_ts
  // >= the dropped commits, so nothing is lost. Failpoint
  // "wal.truncate.error" fails the call before anything is dropped
  // (crash-before-truncation; retried on the next checkpoint round).
  // On success *dropped_bytes (optional) reports the bytes removed.
  Status TruncateBelow(Timestamp horizon, uint64_t* dropped_bytes = nullptr);

  // The commit timestamp a serialized commit body carries (bodies are
  // what SerializeCommitBody returns and LogCommitBatch consumes). The
  // group-commit writer uses this to expose its oldest still-unpersisted
  // commit as a truncation pin.
  static Timestamp PeekBodyCommitTs(const std::string& body);

  struct ReplayStats {
    size_t txns_applied = 0;
    size_t ops_applied = 0;
    Timestamp max_commit_ts = 0;
    bool truncated_tail = false;  // hit a torn/corrupt record and stopped
  };

  struct ReplayOptions {
    // Records with commit_ts <= skip_through_ts are skipped (checkpoint
    // recovery replays only the tail). 0 skips nothing: live commits
    // start at ts 1, and ts-0 records — a checkpoint image's data section
    // when the snapshot predates the first commit — must still apply.
    Timestamp skip_through_ts = 0;
    // Idempotent re-run: a keyed op whose table already saw a write to
    // that key at >= the op's commit timestamp is skipped instead of
    // re-applied, so recovery interrupted mid-replay can simply run
    // again over the same catalog (the idempotence the crash-during-
    // recovery tests pin down). Keyless appends carry no identity and
    // are NOT deduplicated — re-running recovery over tables with
    // keyless appends still requires a fresh catalog.
    bool idempotent = false;
    // Ops on these tables are dropped without touching the catalog (they
    // need not exist). Checkpoint recovery skips materialized-view
    // backing tables this way: their WAL records are maintenance output,
    // and re-running the carried view DDL rebuilds them from the
    // recovered bases instead.
    std::vector<std::string> skip_tables;
  };

  // Replays serialized log `data` into `catalog` (tables must already
  // exist with matching schemas). Unless options.idempotent is set,
  // replay into a fresh catalog.
  static Result<ReplayStats> Replay(const std::string& data, Catalog* catalog,
                                    Timestamp skip_through_ts = 0);
  static Result<ReplayStats> Replay(const std::string& data, Catalog* catalog,
                                    const ReplayOptions& options);

  // Parallel partitioned replay: one decode pass partitions the log's ops
  // by table (preserving log order within each table), then the tables
  // are applied concurrently on `pool`. Ops on different tables commute
  // (keys are table-scoped), so the result is byte-identical to serial
  // Replay; the caller fast-forwards the transaction manager once with
  // AdvanceTo(stats.max_commit_ts) at the end. Unlike serial Replay,
  // nothing is applied if the log references an unknown table (the
  // decode pass fails first).
  static Result<ReplayStats> ReplayParallel(const std::string& data,
                                            Catalog* catalog, ThreadPool* pool,
                                            const ReplayOptions& options);
  static Result<ReplayStats> ReplayParallel(const std::string& data,
                                            Catalog* catalog, ThreadPool* pool);

  // Convenience: reads the file and replays it.
  static Result<ReplayStats> ReplayFile(const std::string& path,
                                        Catalog* catalog);

  // True when every frame in `data` parses with a valid checksum (no torn
  // tail). Scans frames without applying them — use to validate an image
  // before mutating a catalog with Replay.
  static bool IsWellFormed(const std::string& data);

 private:
  // One sealed (rotated-out, no longer appending) segment.
  struct Segment {
    uint64_t id = 0;
    Timestamp max_commit_ts = 0;
    std::string data;
    std::string file_path;  // empty for memory-only logs
  };

  // Appends `frame` to the active segment and the file (if any), with
  // flush + optional fsync; on failure rolls back to the pre-append
  // length or seals. Caller holds mu_. `records` is how many commits the
  // frame carries; `max_ts` the newest commit timestamp in the frame.
  Status AppendFrameLocked(const std::string& frame, size_t records,
                           Timestamp max_ts);
  // Rotates the active segment out if it reached segment_bytes. Caller
  // holds mu_.
  void MaybeRotateLocked();
  // Publishes wal.segments / wal.retained_bytes. Caller holds mu_.
  void RefreshGaugesLocked();
  // Marks the log torn and publishes the "wal.sealed" gauge. Caller
  // holds mu_.
  void SealLocked();

  Options options_;
  mutable std::mutex mu_;
  std::vector<Segment> sealed_segments_;  // oldest first
  size_t sealed_bytes_ = 0;               // sum over sealed_segments_
  std::string buf_;                       // active segment
  uint64_t active_id_ = 0;
  Timestamp active_max_ts_ = 0;
  uint64_t truncated_bytes_ = 0;
  size_t num_records_ = 0;
  bool sealed_ = false;
  std::FILE* file_ = nullptr;  // active segment's file
  std::string path_;           // base path of a file-backed log
};

}  // namespace oltap

#endif  // OLTAP_TXN_WAL_H_
