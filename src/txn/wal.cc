#include "txn/wal.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oltap {
namespace {

// --- little-endian primitive (de)serialization into a std::string ---

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutBytes(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Reader with bounds checking; any failure flips ok to false.
struct Reader {
  const char* p;
  const char* end;
  bool ok = true;

  bool Need(size_t n) {
    if (static_cast<size_t>(end - p) < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(*p++);
  }
  uint16_t U16() {
    if (!Need(2)) return 0;
    uint16_t v = static_cast<uint8_t>(p[0]) |
                 (static_cast<uint16_t>(static_cast<uint8_t>(p[1])) << 8);
    p += 2;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    }
    p += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    }
    p += 8;
    return v;
  }
  std::string Bytes() {
    uint32_t n = U32();
    if (!Need(n)) return std::string();
    std::string s(p, n);
    p += n;
    return s;
  }
};

enum ValueTag : uint8_t {
  kTagNull = 0,
  kTagInt = 1,
  kTagDouble = 2,
  kTagString = 3,
};

void PutValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    PutU8(out, kTagNull);
    PutU8(out, static_cast<uint8_t>(v.type()));
    return;
  }
  switch (v.type()) {
    case ValueType::kInt64:
      PutU8(out, kTagInt);
      PutU64(out, static_cast<uint64_t>(v.AsInt64()));
      return;
    case ValueType::kDouble: {
      PutU8(out, kTagDouble);
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
      return;
    }
    case ValueType::kString:
      PutU8(out, kTagString);
      PutBytes(out, v.AsString());
      return;
  }
}

Value ReadValue(Reader* r) {
  switch (r->U8()) {
    case kTagNull:
      return Value::Null(static_cast<ValueType>(r->U8()));
    case kTagInt:
      return Value::Int64(static_cast<int64_t>(r->U64()));
    case kTagDouble: {
      uint64_t bits = r->U64();
      double d;
      std::memcpy(&d, &bits, 8);
      return Value::Double(d);
    }
    case kTagString:
      return Value::String(r->Bytes());
    default:
      r->ok = false;
      return Value();
  }
}

std::string SerializeRecord(uint64_t txn_id, Timestamp commit_ts,
                            const std::vector<WalOp>& ops) {
  std::string body;
  PutU64(&body, txn_id);
  PutU64(&body, commit_ts);
  PutU16(&body, static_cast<uint16_t>(ops.size()));
  for (const WalOp& op : ops) {
    PutU8(&body, op.kind);
    PutBytes(&body, op.table);
    PutBytes(&body, op.key);
    PutU16(&body, static_cast<uint16_t>(op.row.size()));
    for (const Value& v : op.row) PutValue(&body, v);
  }
  std::string record;
  PutU32(&record, static_cast<uint32_t>(body.size()));
  PutU64(&record, HashBytes(body.data(), body.size()));
  record += body;
  return record;
}

}  // namespace

Wal::~Wal() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<Wal>> Wal::OpenFile(const std::string& path,
                                           const Options& options) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Unavailable("cannot open WAL file: " + path);
  }
  auto wal = std::make_unique<Wal>(options);
  wal->file_ = f;
  return wal;
}

Status Wal::LogCommit(uint64_t txn_id, Timestamp commit_ts,
                      const std::vector<WalOp>& ops) {
  static obs::Histogram* append_ns =
      obs::MetricsRegistry::Default()->GetHistogram("wal.append_ns");
  obs::ScopedTimer append_timer(append_ns);
  std::string record = SerializeRecord(txn_id, commit_ts, ops);
  std::lock_guard<std::mutex> lock(mu_);
  if (sealed_) {
    return Status::Unavailable("WAL sealed after a failed append");
  }

  // Torn-append injection: only a prefix of the record reaches the log,
  // as if the process died mid-write. The partial bytes stay — they are
  // the crash artifact recovery must stop at — so the log seals itself:
  // Replay stops at the first corrupt record, and a commit appended
  // after the tear would be acknowledged yet silently lost.
  Status torn = OLTAP_FAILPOINT_STATUS("wal.append.torn");
  if (!torn.ok()) {
    std::string prefix = record.substr(0, record.size() / 2);
    buf_ += prefix;
    if (file_ != nullptr) {
      std::fwrite(prefix.data(), 1, prefix.size(), file_);
      std::fflush(file_);
    }
    sealed_ = true;
    return torn;
  }
  // Clean append failure: nothing reaches the log.
  OLTAP_FAILPOINT("wal.append.error");

  const size_t good_size = buf_.size();
  long file_start = -1;
  if (file_ != nullptr) {
    // Where this record begins ("ab" mode appends at end-of-file), so a
    // failed append can be trimmed back off the file.
    std::fseek(file_, 0, SEEK_END);
    file_start = std::ftell(file_);
  }
  // Undoes a failed append: buf_ and the file shrink back to the last
  // complete record, keeping the log appendable. If the file cannot be
  // restored it is torn at an unknown point, so the Wal seals instead.
  auto fail = [&](Status st) {
    buf_.resize(good_size);
    if (file_ != nullptr) {
      std::clearerr(file_);
      bool restored = false;
#if defined(__unix__) || defined(__APPLE__)
      restored = file_start >= 0 && std::fflush(file_) == 0 &&
                 ::ftruncate(fileno(file_), file_start) == 0;
#endif
      if (!restored) sealed_ = true;
    }
    return st;
  };

  buf_ += record;
  if (file_ != nullptr) {
    size_t written = std::fwrite(record.data(), 1, record.size(), file_);
    if (written != record.size()) {
      return fail(Status::Unavailable("short WAL write: " +
                                      std::to_string(written) + " of " +
                                      std::to_string(record.size()) +
                                      " bytes"));
    }
    if (std::fflush(file_) != 0) {
      return fail(Status::Unavailable("WAL flush failed"));
    }
    if (options_.fsync_on_commit) {
      static obs::Histogram* fsync_ns =
          obs::MetricsRegistry::Default()->GetHistogram("wal.fsync_ns");
      obs::ScopedTimer fsync_timer(fsync_ns);
      Status synced = OLTAP_FAILPOINT_STATUS("wal.fsync.error");
      if (!synced.ok()) return fail(synced);
#if defined(__unix__) || defined(__APPLE__)
      if (::fsync(fileno(file_)) != 0) {
        return fail(Status::Unavailable("WAL fsync failed"));
      }
#endif
    }
  }
  ++num_records_;
  static obs::Counter* records =
      obs::MetricsRegistry::Default()->GetCounter("wal.records");
  static obs::Counter* bytes =
      obs::MetricsRegistry::Default()->GetCounter("wal.bytes");
  records->Add(1);
  bytes->Add(record.size());
  return Status::OK();
}

bool Wal::sealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_;
}

bool Wal::IsWellFormed(const std::string& data) {
  Reader outer{data.data(), data.data() + data.size()};
  while (outer.p < outer.end) {
    uint32_t len = outer.U32();
    uint64_t checksum = outer.U64();
    if (!outer.ok || !outer.Need(len)) return false;
    if (HashBytes(outer.p, len) != checksum) return false;
    outer.p += len;
  }
  return true;
}

std::string Wal::buffer() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buf_;
}

size_t Wal::num_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_records_;
}

Result<Wal::ReplayStats> Wal::Replay(const std::string& data,
                                     Catalog* catalog,
                                     Timestamp skip_through_ts) {
  ReplayStats stats;
  Reader outer{data.data(), data.data() + data.size()};
  while (outer.p < outer.end) {
    uint32_t len = outer.U32();
    uint64_t checksum = outer.U64();
    if (!outer.ok || !outer.Need(len)) {
      stats.truncated_tail = true;
      break;
    }
    if (HashBytes(outer.p, len) != checksum) {
      stats.truncated_tail = true;
      break;
    }
    Reader r{outer.p, outer.p + len};
    outer.p += len;

    r.U64();  // txn_id (informational)
    Timestamp commit_ts = r.U64();
    if (commit_ts <= skip_through_ts) continue;  // before the checkpoint
    uint16_t nops = r.U16();
    for (uint16_t i = 0; i < nops && r.ok; ++i) {
      WalOp op;
      op.kind = static_cast<WalOp::Kind>(r.U8());
      op.table = r.Bytes();
      op.key = r.Bytes();
      uint16_t ncols = r.U16();
      op.row.reserve(ncols);
      for (uint16_t c = 0; c < ncols && r.ok; ++c) {
        op.row.push_back(ReadValue(&r));
      }
      if (!r.ok) return Status::Corruption("malformed WAL op");

      Table* table = catalog->GetTable(op.table);
      if (table == nullptr) {
        return Status::NotFound("WAL references unknown table: " + op.table);
      }
      Status st;
      switch (op.kind) {
        case WalOp::kInsert:
          st = table->InsertCommitted(op.row, commit_ts);
          break;
        case WalOp::kUpdate:
          st = table->UpdateCommitted(op.key, op.row, commit_ts);
          break;
        case WalOp::kDelete:
          st = table->DeleteCommitted(op.key, commit_ts);
          break;
      }
      if (!st.ok()) {
        return Status::Corruption("WAL replay apply failed: " + st.ToString());
      }
      ++stats.ops_applied;
    }
    stats.max_commit_ts = std::max(stats.max_commit_ts, commit_ts);
    ++stats.txns_applied;
  }
  return stats;
}

Result<Wal::ReplayStats> Wal::ReplayFile(const std::string& path,
                                         Catalog* catalog) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("WAL file not found: " + path);
  std::string data;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.append(chunk, n);
  }
  std::fclose(f);
  return Replay(data, catalog);
}

}  // namespace oltap
