#include "txn/wal.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <thread>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oltap {
namespace {

// High bit of a frame's length word marks a group-commit batch frame; the
// low 31 bits are the payload length (bodies are far below 2 GiB).
constexpr uint32_t kBatchFlag = 0x80000000u;

// Batch frames salt their checksum so the frame *kind* is checksum-
// protected too: a bit flip on the flag would otherwise reinterpret a
// record frame as a batch (or vice versa) with a still-valid payload
// checksum, turning corruption into a parse error instead of a clean
// torn-tail stop (the WAL fuzz tests pin this down).
constexpr uint64_t kBatchChecksumSalt = 0x9e3779b97f4a7c15ull;

// --- little-endian primitive (de)serialization into a std::string ---

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}
void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
void PutBytes(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Reader with bounds checking; any failure flips ok to false.
struct Reader {
  const char* p;
  const char* end;
  bool ok = true;

  bool Need(size_t n) {
    if (static_cast<size_t>(end - p) < n) {
      ok = false;
      return false;
    }
    return true;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(*p++);
  }
  uint16_t U16() {
    if (!Need(2)) return 0;
    uint16_t v = static_cast<uint8_t>(p[0]) |
                 (static_cast<uint16_t>(static_cast<uint8_t>(p[1])) << 8);
    p += 2;
    return v;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    }
    p += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    }
    p += 8;
    return v;
  }
  std::string Bytes() {
    uint32_t n = U32();
    if (!Need(n)) return std::string();
    std::string s(p, n);
    p += n;
    return s;
  }
};

enum ValueTag : uint8_t {
  kTagNull = 0,
  kTagInt = 1,
  kTagDouble = 2,
  kTagString = 3,
};

void PutValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    PutU8(out, kTagNull);
    PutU8(out, static_cast<uint8_t>(v.type()));
    return;
  }
  switch (v.type()) {
    case ValueType::kInt64:
      PutU8(out, kTagInt);
      PutU64(out, static_cast<uint64_t>(v.AsInt64()));
      return;
    case ValueType::kDouble: {
      PutU8(out, kTagDouble);
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, 8);
      PutU64(out, bits);
      return;
    }
    case ValueType::kString:
      PutU8(out, kTagString);
      PutBytes(out, v.AsString());
      return;
  }
}

Value ReadValue(Reader* r) {
  switch (r->U8()) {
    case kTagNull:
      return Value::Null(static_cast<ValueType>(r->U8()));
    case kTagInt:
      return Value::Int64(static_cast<int64_t>(r->U64()));
    case kTagDouble: {
      uint64_t bits = r->U64();
      double d;
      std::memcpy(&d, &bits, 8);
      return Value::Double(d);
    }
    case kTagString:
      return Value::String(r->Bytes());
    default:
      r->ok = false;
      return Value();
  }
}

std::string FrameRecord(const std::string& body) {
  std::string record;
  PutU32(&record, static_cast<uint32_t>(body.size()));
  PutU64(&record, HashBytes(body.data(), body.size()));
  record += body;
  return record;
}

// One decoded commit, before its ops are applied.
struct DecodedTxn {
  uint64_t txn_id = 0;
  Timestamp commit_ts = 0;
  std::vector<WalOp> ops;
};

// Parses a record body (txn_id, commit_ts, ops). Returns kCorruption on a
// malformed body — the checksum already passed, so this is real damage,
// not a torn tail.
Status ParseBody(const char* data, size_t len, DecodedTxn* out) {
  Reader r{data, data + len};
  out->txn_id = r.U64();
  out->commit_ts = r.U64();
  uint16_t nops = r.U16();
  out->ops.clear();
  out->ops.reserve(nops);
  for (uint16_t i = 0; i < nops && r.ok; ++i) {
    WalOp op;
    op.kind = static_cast<WalOp::Kind>(r.U8());
    op.table = r.Bytes();
    op.key = r.Bytes();
    uint16_t ncols = r.U16();
    op.row.reserve(ncols);
    for (uint16_t c = 0; c < ncols && r.ok; ++c) {
      op.row.push_back(ReadValue(&r));
    }
    if (!r.ok) return Status::Corruption("malformed WAL op");
    out->ops.push_back(std::move(op));
  }
  if (!r.ok) return Status::Corruption("malformed WAL record body");
  return Status::OK();
}

// Applies one op. With `idempotent`, a keyed op the table has already seen
// (a write to that key at >= commit_ts) is skipped — `applied` reports
// whether the op mutated the table.
// Collapses a commit's writes to one net op per key. A transaction may
// write the same key several times (a NewOrder drawing the same item
// twice updates that stock row twice); the live commit applies them in
// order, but every op in the record carries the same commit timestamp, so
// the idempotent skip in ApplyOp would drop everything after the first
// write to a key and lose the later state. The net effect against the
// pre-commit state is what replay must apply:
//   insert, update*      -> insert with the final row
//   insert .. delete     -> nothing (the row never existed before or after)
//   update, update*      -> the last update
//   update .. delete     -> the delete
//   delete .. insert     -> update with the new row (the key pre-existed)
// Keyless ops carry no identity and are kept untouched, in order.
void CollapseDuplicateKeyOps(std::vector<WalOp>* ops) {
  // Fast path: duplicate keyed writes inside one commit are rare.
  std::set<std::pair<std::string_view, std::string_view>> seen;
  bool dup = false;
  for (const WalOp& op : *ops) {
    if (op.key.empty()) continue;
    if (!seen.insert({op.table, op.key}).second) {
      dup = true;
      break;
    }
  }
  if (!dup) return;

  struct Net {
    bool cancelled = false;  // insert..delete: emit nothing
    WalOp op;
  };
  std::map<std::pair<std::string, std::string>, Net> nets;
  std::vector<std::pair<std::string, std::string>> order;  // first touch
  std::vector<WalOp> keyless;
  for (WalOp& op : *ops) {
    if (op.key.empty()) {
      keyless.push_back(std::move(op));
      continue;
    }
    auto id = std::make_pair(op.table, op.key);
    auto it = nets.find(id);
    if (it == nets.end()) {
      order.push_back(id);
      nets[std::move(id)] = Net{false, std::move(op)};
      continue;
    }
    Net& net = it->second;
    if (net.cancelled) {
      // insert..delete..insert: the key still never pre-existed.
      net.cancelled = false;
      net.op = std::move(op);
      continue;
    }
    switch (net.op.kind) {
      case WalOp::kInsert:
        if (op.kind == WalOp::kDelete) {
          net.cancelled = true;
        } else {
          net.op.row = std::move(op.row);  // insert with the final row
        }
        break;
      case WalOp::kUpdate:
        net.op.kind = op.kind == WalOp::kDelete ? WalOp::kDelete
                                                : WalOp::kUpdate;
        net.op.row = std::move(op.row);
        break;
      case WalOp::kDelete:
        // delete..insert: the key pre-existed, so the net is an update.
        net.op.kind = WalOp::kUpdate;
        net.op.row = std::move(op.row);
        break;
    }
  }

  ops->clear();
  for (const auto& id : order) {
    Net& net = nets[id];
    if (!net.cancelled) ops->push_back(std::move(net.op));
  }
  for (WalOp& op : keyless) ops->push_back(std::move(op));
}

Status ApplyOp(Table* table, const WalOp& op, Timestamp commit_ts,
               bool idempotent, bool* applied) {
  *applied = false;
  if (idempotent && !op.key.empty() &&
      table->LastWriteTs(op.key) >= commit_ts) {
    return Status::OK();
  }
  Status st;
  switch (op.kind) {
    case WalOp::kInsert:
      st = table->InsertCommitted(op.row, commit_ts);
      break;
    case WalOp::kUpdate:
      st = table->UpdateCommitted(op.key, op.row, commit_ts);
      break;
    case WalOp::kDelete:
      st = table->DeleteCommitted(op.key, commit_ts);
      break;
  }
  if (!st.ok()) {
    return Status::Corruption("WAL replay apply failed (table=" +
                              table->name() + " kind=" +
                              std::to_string(static_cast<int>(op.kind)) +
                              " commit_ts=" + std::to_string(commit_ts) +
                              "): " + st.ToString());
  }
  *applied = true;
  return st;
}

// Walks the frames of `data`, calling `body_fn(ptr, len)` for every commit
// body in every frame with a valid checksum (a batch frame yields one call
// per sub-record). Stops at the first torn/corrupt frame, setting
// *truncated. body_fn may return an error to abort the walk.
Status ForEachBody(const std::string& data, bool* truncated,
                   const std::function<Status(const char*, size_t)>& body_fn) {
  *truncated = false;
  Reader outer{data.data(), data.data() + data.size()};
  while (outer.p < outer.end) {
    uint32_t raw = outer.U32();
    uint64_t checksum = outer.U64();
    const bool is_batch = (raw & kBatchFlag) != 0;
    const uint32_t len = raw & ~kBatchFlag;
    if (is_batch) checksum ^= kBatchChecksumSalt;
    if (!outer.ok || !outer.Need(len) ||
        HashBytes(outer.p, len) != checksum) {
      *truncated = true;
      return Status::OK();
    }
    const char* payload = outer.p;
    outer.p += len;
    if (!is_batch) {
      OLTAP_RETURN_NOT_OK(body_fn(payload, len));
      continue;
    }
    Reader br{payload, payload + len};
    while (br.p < br.end) {
      uint32_t blen = br.U32();
      if (!br.ok || !br.Need(blen)) {
        // The batch checksum passed but the sub-record structure does
        // not parse: real corruption, not a tear.
        return Status::Corruption("malformed WAL batch frame");
      }
      OLTAP_RETURN_NOT_OK(body_fn(br.p, blen));
      br.p += blen;
    }
  }
  return Status::OK();
}

}  // namespace

Wal::~Wal() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<Wal>> Wal::OpenFile(const std::string& path,
                                           const Options& options) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Unavailable("cannot open WAL file: " + path);
  }
  auto wal = std::make_unique<Wal>(options);
  wal->file_ = f;
  wal->path_ = path;
  return wal;
}

Timestamp Wal::PeekBodyCommitTs(const std::string& body) {
  // Body layout (SerializeCommitBody): u64 txn_id, u64 commit_ts, ...
  Reader r{body.data(), body.data() + body.size()};
  r.U64();  // txn_id
  Timestamp ts = r.U64();
  return r.ok ? ts : 0;
}

std::string Wal::SerializeCommitBody(uint64_t txn_id, Timestamp commit_ts,
                                     const std::vector<WalOp>& ops) {
  std::string body;
  PutU64(&body, txn_id);
  PutU64(&body, commit_ts);
  PutU16(&body, static_cast<uint16_t>(ops.size()));
  for (const WalOp& op : ops) {
    PutU8(&body, op.kind);
    PutBytes(&body, op.table);
    PutBytes(&body, op.key);
    PutU16(&body, static_cast<uint16_t>(op.row.size()));
    for (const Value& v : op.row) PutValue(&body, v);
  }
  return body;
}

void Wal::SealLocked() {
  sealed_ = true;
  static obs::Gauge* sealed_gauge =
      obs::MetricsRegistry::Default()->GetGauge("wal.sealed");
  sealed_gauge->Set(1);
}

void Wal::RefreshGaugesLocked() {
  static obs::Gauge* segments =
      obs::MetricsRegistry::Default()->GetGauge("wal.segments");
  static obs::Gauge* retained =
      obs::MetricsRegistry::Default()->GetGauge("wal.retained_bytes");
  segments->Set(static_cast<int64_t>(sealed_segments_.size() + 1));
  retained->Set(static_cast<int64_t>(sealed_bytes_ + buf_.size()));
}

void Wal::MaybeRotateLocked() {
  if (options_.segment_bytes == 0 || buf_.size() < options_.segment_bytes) {
    return;
  }
  Segment seg;
  seg.id = active_id_;
  seg.max_commit_ts = active_max_ts_;
  seg.data = std::move(buf_);
  if (file_ != nullptr) {
    // The sealed segment keeps its file; the active segment continues in
    // "<base>.<id>". A rotation that cannot open the next file seals the
    // log — appends could not be made durable.
    seg.file_path = active_id_ == 0
                        ? path_
                        : path_ + "." + std::to_string(active_id_);
    std::fclose(file_);
    std::string next = path_ + "." + std::to_string(active_id_ + 1);
    file_ = std::fopen(next.c_str(), "ab");
    if (file_ == nullptr) SealLocked();
  }
  sealed_bytes_ += seg.data.size();
  sealed_segments_.push_back(std::move(seg));
  buf_.clear();
  ++active_id_;
  active_max_ts_ = 0;
  RefreshGaugesLocked();
}

Status Wal::AppendFrameLocked(const std::string& frame, size_t records,
                              Timestamp max_ts) {
  const size_t good_size = buf_.size();
  long file_start = -1;
  if (file_ != nullptr) {
    // Where this frame begins ("ab" mode appends at end-of-file), so a
    // failed append can be trimmed back off the file.
    std::fseek(file_, 0, SEEK_END);
    file_start = std::ftell(file_);
  }
  // Undoes a failed append: buf_ and the file shrink back to the last
  // complete frame, keeping the log appendable. If the file cannot be
  // restored it is torn at an unknown point, so the Wal seals instead.
  auto fail = [&](Status st) {
    buf_.resize(good_size);
    if (file_ != nullptr) {
      std::clearerr(file_);
      bool restored = false;
#if defined(__unix__) || defined(__APPLE__)
      restored = file_start >= 0 && std::fflush(file_) == 0 &&
                 ::ftruncate(fileno(file_), file_start) == 0;
#endif
      if (!restored) SealLocked();
    }
    return st;
  };

  buf_ += frame;
  if (file_ != nullptr) {
    size_t written = std::fwrite(frame.data(), 1, frame.size(), file_);
    if (written != frame.size()) {
      return fail(Status::Unavailable("short WAL write: " +
                                      std::to_string(written) + " of " +
                                      std::to_string(frame.size()) +
                                      " bytes"));
    }
    if (std::fflush(file_) != 0) {
      return fail(Status::Unavailable("WAL flush failed"));
    }
    if (options_.fsync_on_commit) {
      static obs::Histogram* fsync_ns =
          obs::MetricsRegistry::Default()->GetHistogram("wal.fsync_ns");
      obs::ScopedTimer fsync_timer(fsync_ns);
      // Device-stall fault: the fsync eventually succeeds but takes a
      // long time (commit-latency fault, not a durability fault).
      if (!OLTAP_FAILPOINT_STATUS("wal.fsync.stall").ok()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      Status synced = OLTAP_FAILPOINT_STATUS("wal.fsync.error");
      if (!synced.ok()) return fail(synced);
#if defined(__unix__) || defined(__APPLE__)
      if (::fsync(fileno(file_)) != 0) {
        return fail(Status::Unavailable("WAL fsync failed"));
      }
#endif
      static obs::Counter* fsyncs =
          obs::MetricsRegistry::Default()->GetCounter("wal.fsyncs");
      fsyncs->Add(1);
    }
  }
  num_records_ += records;
  active_max_ts_ = std::max(active_max_ts_, max_ts);
  static obs::Counter* record_count =
      obs::MetricsRegistry::Default()->GetCounter("wal.records");
  static obs::Counter* bytes =
      obs::MetricsRegistry::Default()->GetCounter("wal.bytes");
  record_count->Add(records);
  bytes->Add(frame.size());
  MaybeRotateLocked();
  return Status::OK();
}

Status Wal::LogCommit(uint64_t txn_id, Timestamp commit_ts,
                      const std::vector<WalOp>& ops) {
  static obs::Histogram* append_ns =
      obs::MetricsRegistry::Default()->GetHistogram("wal.append_ns");
  obs::ScopedTimer append_timer(append_ns);
  std::string record = FrameRecord(SerializeCommitBody(txn_id, commit_ts, ops));
  std::lock_guard<std::mutex> lock(mu_);
  if (sealed_) {
    return Status::Unavailable("WAL sealed after a failed append");
  }

  // Torn-append injection: only a prefix of the record reaches the log,
  // as if the process died mid-write. The partial bytes stay — they are
  // the crash artifact recovery must stop at — so the log seals itself:
  // Replay stops at the first corrupt record, and a commit appended
  // after the tear would be acknowledged yet silently lost.
  Status torn = OLTAP_FAILPOINT_STATUS("wal.append.torn");
  if (!torn.ok()) {
    std::string prefix = record.substr(0, record.size() / 2);
    buf_ += prefix;
    if (file_ != nullptr) {
      std::fwrite(prefix.data(), 1, prefix.size(), file_);
      std::fflush(file_);
    }
    SealLocked();
    return torn;
  }
  // Clean append failure: nothing reaches the log.
  OLTAP_FAILPOINT("wal.append.error");

  return AppendFrameLocked(record, 1, commit_ts);
}

Status Wal::LogCommitBatch(const std::vector<std::string>& bodies) {
  if (bodies.empty()) return Status::OK();
  static obs::Histogram* append_ns =
      obs::MetricsRegistry::Default()->GetHistogram("wal.append_ns");
  obs::ScopedTimer append_timer(append_ns);

  std::string payload;
  size_t total = 0;
  for (const std::string& body : bodies) total += body.size() + 4;
  payload.reserve(total);
  for (const std::string& body : bodies) PutBytes(&payload, body);
  std::string frame;
  frame.reserve(payload.size() + 12);
  PutU32(&frame, static_cast<uint32_t>(payload.size()) | kBatchFlag);
  PutU64(&frame,
         HashBytes(payload.data(), payload.size()) ^ kBatchChecksumSalt);
  frame += payload;

  std::lock_guard<std::mutex> lock(mu_);
  if (sealed_) {
    return Status::Unavailable("WAL sealed after a failed append");
  }

  // Batch-boundary tear: the process died with only a prefix of the batch
  // frame on disk. Because ONE checksum covers the whole batch, replay
  // rejects the entire frame — no commit in the batch survives, matching
  // the all-failed futures the group committer hands out. The partial
  // bytes stay and the log seals, exactly like a torn single append.
  Status torn = OLTAP_FAILPOINT_STATUS("wal.batch.torn");
  if (!torn.ok()) {
    std::string prefix = frame.substr(0, frame.size() / 2);
    buf_ += prefix;
    if (file_ != nullptr) {
      std::fwrite(prefix.data(), 1, prefix.size(), file_);
      std::fflush(file_);
    }
    SealLocked();
    return torn;
  }

  Timestamp max_ts = 0;
  for (const std::string& body : bodies) {
    max_ts = std::max(max_ts, PeekBodyCommitTs(body));
  }
  Status st = AppendFrameLocked(frame, bodies.size(), max_ts);
  if (st.ok()) {
    static obs::Counter* batches =
        obs::MetricsRegistry::Default()->GetCounter("wal.batches");
    static obs::Histogram* batch_size =
        obs::MetricsRegistry::Default()->GetHistogram("wal.batch_size");
    batches->Add(1);
    batch_size->Record(bodies.size());
  }
  return st;
}

bool Wal::sealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_;
}

void Wal::Seal() {
  std::lock_guard<std::mutex> lock(mu_);
  SealLocked();
}

bool Wal::IsWellFormed(const std::string& data) {
  Reader outer{data.data(), data.data() + data.size()};
  while (outer.p < outer.end) {
    uint32_t raw = outer.U32();
    uint64_t checksum = outer.U64();
    uint32_t len = raw & ~kBatchFlag;
    if ((raw & kBatchFlag) != 0) checksum ^= kBatchChecksumSalt;
    if (!outer.ok || !outer.Need(len)) return false;
    if (HashBytes(outer.p, len) != checksum) return false;
    outer.p += len;
  }
  return true;
}

std::string Wal::buffer() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(sealed_bytes_ + buf_.size());
  for (const Segment& seg : sealed_segments_) out += seg.data;
  out += buf_;
  return out;
}

size_t Wal::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_bytes_ + buf_.size();
}

size_t Wal::num_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_records_;
}

std::vector<Wal::SegmentInfo> Wal::Segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SegmentInfo> out;
  out.reserve(sealed_segments_.size() + 1);
  for (const Segment& seg : sealed_segments_) {
    out.push_back({seg.id, seg.max_commit_ts, seg.data.size()});
  }
  out.push_back({active_id_, active_max_ts_, buf_.size()});
  return out;
}

size_t Wal::num_segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_segments_.size() + 1;
}

uint64_t Wal::truncated_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return truncated_bytes_;
}

void Wal::set_segment_bytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.segment_bytes = bytes;
  MaybeRotateLocked();  // an over-size active segment rotates right away
}

Status Wal::TruncateBelow(Timestamp horizon, uint64_t* dropped_bytes) {
  if (dropped_bytes != nullptr) *dropped_bytes = 0;
  std::lock_guard<std::mutex> lock(mu_);
  // Crash-before-truncation: the call fails with nothing dropped; the
  // segments stay until the next checkpoint round retries.
  OLTAP_FAILPOINT("wal.truncate.error");
  size_t drop = 0;
  uint64_t bytes = 0;
  while (drop < sealed_segments_.size() &&
         sealed_segments_[drop].max_commit_ts <= horizon) {
    bytes += sealed_segments_[drop].data.size();
    if (!sealed_segments_[drop].file_path.empty()) {
      std::remove(sealed_segments_[drop].file_path.c_str());
    }
    ++drop;
  }
  if (drop == 0) return Status::OK();
  sealed_segments_.erase(sealed_segments_.begin(),
                         sealed_segments_.begin() + static_cast<long>(drop));
  sealed_bytes_ -= bytes;
  truncated_bytes_ += bytes;
  if (dropped_bytes != nullptr) *dropped_bytes = bytes;
  static obs::Counter* truncated =
      obs::MetricsRegistry::Default()->GetCounter("wal.truncated_bytes");
  truncated->Add(bytes);
  RefreshGaugesLocked();
  return Status::OK();
}

Result<Wal::ReplayStats> Wal::Replay(const std::string& data,
                                     Catalog* catalog,
                                     Timestamp skip_through_ts) {
  ReplayOptions options;
  options.skip_through_ts = skip_through_ts;
  return Replay(data, catalog, options);
}

Result<Wal::ReplayStats> Wal::Replay(const std::string& data, Catalog* catalog,
                                     const ReplayOptions& options) {
  const std::set<std::string> skipped(options.skip_tables.begin(),
                                      options.skip_tables.end());
  ReplayStats stats;
  DecodedTxn txn;
  Status walk = ForEachBody(
      data, &stats.truncated_tail, [&](const char* p, size_t len) -> Status {
        OLTAP_RETURN_NOT_OK(ParseBody(p, len, &txn));
        // skip_through_ts == 0 skips nothing: live commits start at ts 1,
        // and ts-0 records (a checkpoint image's data section when the
        // snapshot predates the first commit — bulk-loaded state) must
        // still apply.
        if (options.skip_through_ts > 0 &&
            txn.commit_ts <= options.skip_through_ts) {
          return Status::OK();
        }
        CollapseDuplicateKeyOps(&txn.ops);
        for (const WalOp& op : txn.ops) {
          if (skipped.count(op.table) != 0) continue;
          Table* table = catalog->GetTable(op.table);
          if (table == nullptr) {
            return Status::NotFound("WAL references unknown table: " +
                                    op.table);
          }
          bool applied = false;
          OLTAP_RETURN_NOT_OK(
              ApplyOp(table, op, txn.commit_ts, options.idempotent, &applied));
          if (applied) ++stats.ops_applied;
        }
        stats.max_commit_ts = std::max(stats.max_commit_ts, txn.commit_ts);
        ++stats.txns_applied;
        return Status::OK();
      });
  if (!walk.ok()) return walk;
  return stats;
}

Result<Wal::ReplayStats> Wal::ReplayParallel(const std::string& data,
                                             Catalog* catalog,
                                             ThreadPool* pool) {
  return ReplayParallel(data, catalog, pool, ReplayOptions());
}

Result<Wal::ReplayStats> Wal::ReplayParallel(const std::string& data,
                                             Catalog* catalog,
                                             ThreadPool* pool,
                                             const ReplayOptions& options) {
  if (pool == nullptr) return Replay(data, catalog, options);

  // Decode pass: partition every op by table, preserving log order within
  // each table. Ops on different tables commute, so per-table in-order
  // apply reproduces serial replay exactly.
  struct TablePartition {
    Table* table = nullptr;
    std::vector<std::pair<Timestamp, WalOp>> ops;
  };
  std::map<std::string, TablePartition> partitions;

  const std::set<std::string> skipped(options.skip_tables.begin(),
                                      options.skip_tables.end());
  ReplayStats stats;
  DecodedTxn txn;
  Status walk = ForEachBody(
      data, &stats.truncated_tail, [&](const char* p, size_t len) -> Status {
        OLTAP_RETURN_NOT_OK(ParseBody(p, len, &txn));
        // Same ts-0 rule as serial Replay above.
        if (options.skip_through_ts > 0 &&
            txn.commit_ts <= options.skip_through_ts) {
          return Status::OK();
        }
        CollapseDuplicateKeyOps(&txn.ops);
        for (WalOp& op : txn.ops) {
          if (skipped.count(op.table) != 0) continue;
          TablePartition& part = partitions[op.table];
          if (part.table == nullptr) {
            part.table = catalog->GetTable(op.table);
            if (part.table == nullptr) {
              return Status::NotFound("WAL references unknown table: " +
                                      op.table);
            }
          }
          part.ops.emplace_back(txn.commit_ts, std::move(op));
        }
        stats.max_commit_ts = std::max(stats.max_commit_ts, txn.commit_ts);
        ++stats.txns_applied;
        return Status::OK();
      });
  if (!walk.ok()) return walk;

  // Apply pass: one task per table on the pool (deterministic per-table
  // order = log order). Errors are collected per table; the first one
  // (in table-name order, for determinism) is returned.
  std::vector<TablePartition*> work;
  work.reserve(partitions.size());
  for (auto& [name, part] : partitions) work.push_back(&part);
  std::vector<Status> results(work.size());
  std::vector<uint64_t> applied_counts(work.size(), 0);
  pool->ParallelForChunked(work.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      TablePartition* part = work[i];
      for (const auto& [commit_ts, op] : part->ops) {
        bool applied = false;
        Status st =
            ApplyOp(part->table, op, commit_ts, options.idempotent, &applied);
        if (!st.ok()) {
          results[i] = st;
          break;
        }
        if (applied) ++applied_counts[i];
      }
    }
  });
  for (size_t i = 0; i < work.size(); ++i) {
    if (!results[i].ok()) return results[i];
    stats.ops_applied += applied_counts[i];
  }
  return stats;
}

Result<Wal::ReplayStats> Wal::ReplayFile(const std::string& path,
                                         Catalog* catalog) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("WAL file not found: " + path);
  std::string data;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.append(chunk, n);
  }
  std::fclose(f);
  return Replay(data, catalog);
}

}  // namespace oltap
