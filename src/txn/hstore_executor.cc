#include "txn/hstore_executor.h"

#include <algorithm>

#include "common/logging.h"

namespace oltap {

HStoreExecutor::HStoreExecutor(size_t num_partitions) {
  OLTAP_CHECK(num_partitions > 0);
  workers_.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (size_t p = 0; p < num_partitions; ++p) {
    workers_[p]->thread = std::thread([this, p] { WorkerLoop(p); });
  }
}

HStoreExecutor::~HStoreExecutor() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lock(w->mu);
    w->cv.notify_all();
  }
  for (auto& w : workers_) w->thread.join();
}

std::future<Status> HStoreExecutor::Submit(std::vector<int> partitions,
                                           std::function<Status()> work) {
  std::sort(partitions.begin(), partitions.end());
  partitions.erase(std::unique(partitions.begin(), partitions.end()),
                   partitions.end());
  OLTAP_CHECK(!partitions.empty());
  for (int p : partitions) {
    OLTAP_CHECK(p >= 0 && static_cast<size_t>(p) < workers_.size());
  }

  auto job = std::make_shared<Job>();
  job->work = std::move(work);
  job->arrivals_needed = partitions.size();
  std::future<Status> fut = job->done.get_future();

  (partitions.size() == 1 ? single_ : multi_)
      .fetch_add(1, std::memory_order_relaxed);
  inflight_.fetch_add(1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> submit_lock(submit_mu_);
    for (int p : partitions) {
      Worker& w = *workers_[p];
      std::lock_guard<std::mutex> lock(w.mu);
      w.queue.push_back(job);
      w.cv.notify_one();
    }
  }
  return fut;
}

void HStoreExecutor::WorkerLoop(size_t partition) {
  Worker& w = *workers_[partition];
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&] {
        return shutdown_.load(std::memory_order_acquire) || !w.queue.empty();
      });
      if (w.queue.empty()) return;  // shutdown and drained
      job = std::move(w.queue.front());
      w.queue.pop_front();
    }
    bool executes;
    {
      // Rendezvous: the last owner thread to arrive executes the body while
      // the others hold their partitions idle — the multi-partition stall
      // H-Store is famous for.
      std::unique_lock<std::mutex> lock(job->mu);
      executes = (++job->arrived == job->arrivals_needed);
      if (!executes) {
        job->cv.wait(lock, [&] { return job->finished; });
      }
    }
    if (executes) {
      Status st = job->work();
      {
        std::lock_guard<std::mutex> lock(job->mu);
        job->finished = true;
        job->cv.notify_all();
      }
      job->done.set_value(std::move(st));
      if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(drain_mu_);
        drain_cv_.notify_all();
      }
    }
  }
}

void HStoreExecutor::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] {
    return inflight_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace oltap
