#ifndef OLTAP_TXN_CHECKPOINT_DAEMON_H_
#define OLTAP_TXN_CHECKPOINT_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/catalog.h"
#include "txn/checkpoint.h"
#include "txn/transaction_manager.h"
#include "txn/wal.h"

namespace oltap {

// Online checkpointing: a background daemon that takes consistent
// snapshot-isolation checkpoints *while the engine serves traffic*,
// maintains the checkpoint chain + manifest (txn/checkpoint.h), and
// truncates WAL segments the newest durable checkpoint has made
// redundant. This is what turns "recovers after a test" into "runs
// forever": without it the log grows without bound and recovery time
// grows with total history instead of the tail.
//
// One checkpoint round:
//   1. Begin a read-only transaction — its begin timestamp is the
//      checkpoint's snapshot ts, and its registration in the
//      active-snapshot registry is what keeps concurrent merges from
//      garbage-collecting versions the checkpoint scan still needs.
//      (Merges still run and still fold the delta into the main during
//      the scan — the pin only defers version pruning below the
//      snapshot, so the delta store stays bounded under a long
//      checkpoint.)
//   2. WriteCheckpoint at ts, excluding materialized-view backing tables
//      and embedding the view DDL instead (restore re-runs it).
//   3. Validate and install: image + rebuilt manifest swap in under one
//      lock, so a crash cut never observes the image without its
//      manifest entry or vice versa. An image that fails validation
//      ("checkpoint.write.torn" fired — crash mid-image-write) installs
//      WITHOUT a manifest update and truncates nothing: recovery falls
//      back past it to the previous chain entry plus a longer WAL tail.
//   4. Truncate WAL segments wholly at or below the *pinned horizon*:
//        min( checkpoint ts,
//             oldest active snapshot,
//             min materialized-view change-log cursor (extra pin),
//             oldest un-acked group-commit batch ).
//      Only fully successful rounds truncate, so the retained tail
//      always covers everything past the newest *manifest-endorsed*
//      checkpoint.
//
// Failpoints: "checkpoint.daemon.crash" kills the daemon thread (like
// "logwriter.crash"; Restart() revives it), "checkpoint.manifest.torn"
// tears the manifest bytes mid-write, "checkpoint.write.torn" /
// "checkpoint.write.error" / "checkpoint.scan.stall" act inside
// WriteCheckpoint, and "wal.truncate.error" fails the truncation step.
class CheckpointDaemon {
 public:
  struct Options {
    // Time trigger: checkpoint when this much has passed since the last
    // one. <= 0 disables the time trigger.
    int64_t interval_us = 200'000;
    // Byte trigger: checkpoint when the WAL has accumulated this many
    // bytes since the last checkpoint. 0 disables the byte trigger.
    uint64_t wal_trigger_bytes = 0;
    // Daemon poll cadence.
    int64_t tick_us = 1'000;
    // Checkpoint-chain length: older images fall off the chain. >= 1;
    // 2 keeps one fallback generation.
    size_t keep_images = 2;
    // Truncate WAL segments after each successful checkpoint. Off keeps
    // the full log (the equivalence tests compare checkpoint recovery
    // against full replay, which needs the whole history).
    bool truncate_wal = true;
    // Spawn the background thread in the constructor.
    bool autostart = false;
  };

  // `wal` may be null (no durability): checkpoints still accumulate in
  // the store, truncation is a no-op.
  CheckpointDaemon(Catalog* catalog, TransactionManager* tm, Wal* wal,
                   const Options& options);
  ~CheckpointDaemon();  // Stop()

  CheckpointDaemon(const CheckpointDaemon&) = delete;
  CheckpointDaemon& operator=(const CheckpointDaemon&) = delete;

  // Extra truncation pin (min materialized-view change-log cursor);
  // evaluated fresh each round. Install before Start.
  void set_extra_pin(std::function<Timestamp()> fn);
  // View DDL + backing-table providers for the image's view section;
  // evaluated fresh each round. Install before Start.
  void set_view_ddls(std::function<std::vector<std::string>()> fn);
  void set_exclude_tables(std::function<std::vector<std::string>()> fn);

  void Start();
  void Stop();
  bool running() const;
  // Re-spawns the daemon thread after "checkpoint.daemon.crash" or
  // Stop(). kFailedPrecondition while still running.
  Status Restart();

  struct CheckpointResult {
    uint64_t id = 0;
    Timestamp ts = 0;
    uint64_t bytes = 0;            // image size
    uint64_t wal_truncated = 0;    // bytes dropped this round
  };

  // One synchronous checkpoint round (SQL CHECKPOINT; also what the
  // daemon thread runs on trigger). Thread-safe; rounds serialize.
  Result<CheckpointResult> CheckpointNow();

  // Copy of the durable checkpoint state (chain + manifest).
  CheckpointStore StoreCopy() const;

  // A consistent crash cut of (checkpoint store, WAL): the WAL is sealed
  // FIRST — no commit can append (and therefore acknowledge) after the
  // cut — then both sides are copied under the install/truncate lock, so
  // the cut never splits a manifest install or a truncation. This models
  // the durable bytes a real crash at this instant would leave behind;
  // the crash-anywhere torture recovers from exactly this.
  struct CrashImage {
    CheckpointStore store;
    std::string wal;
  };
  CrashImage CaptureCrashImage();

  struct Stats {
    uint64_t written = 0;      // fully successful rounds
    uint64_t failed = 0;       // rounds that errored (incl. torn installs)
    uint64_t crashes = 0;      // daemon-thread crashes (failpoint)
    uint64_t truncations = 0;  // truncation calls that dropped bytes
    uint64_t truncated_bytes = 0;
  };
  Stats stats() const;

  // Snapshot timestamp of the newest manifest-endorsed checkpoint (0 when
  // none yet).
  Timestamp last_checkpoint_ts() const;
  // Microseconds since the newest successful checkpoint completed; -1
  // when none yet. Feeds the ckpt.age_us gauge / SHOW STATS.
  int64_t AgeMicros(int64_t now_us) const;

  // The truncation pin the next round would use (tests assert each
  // component holds the horizon back).
  Timestamp PinnedHorizon() const;

  // Live re-tuning (SQL: SET checkpoint_interval_us).
  void set_interval_us(int64_t us);
  void set_wal_trigger_bytes(uint64_t bytes);
  void set_truncate_wal(bool on);
  int64_t interval_us() const;

 private:
  void Run();
  // The pin with the candidate checkpoint ts folded in. `candidate_ts`
  // is the newest ts truncation may reach.
  Timestamp PinnedHorizonFor(Timestamp candidate_ts) const;

  Catalog* const catalog_;
  TransactionManager* const tm_;
  Wal* const wal_;

  mutable std::mutex options_mu_;
  Options options_;

  std::function<Timestamp()> extra_pin_;
  std::function<std::vector<std::string>()> view_ddls_;
  std::function<std::vector<std::string>()> exclude_tables_;

  // Serializes checkpoint rounds (the scan phase runs outside store_mu_).
  std::mutex round_mu_;

  // Guards store_, the manifest install, and WAL truncation — the
  // "durable device" lock CaptureCrashImage synchronizes with.
  mutable std::mutex store_mu_;
  CheckpointStore store_;
  uint64_t next_image_id_ = 1;
  std::atomic<Timestamp> last_ckpt_ts_{0};
  std::atomic<int64_t> last_ckpt_wall_us_{-1};
  std::atomic<uint64_t> wal_bytes_at_last_ckpt_{0};

  mutable std::mutex stats_mu_;
  Stats stats_;

  mutable std::mutex thread_mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace oltap

#endif  // OLTAP_TXN_CHECKPOINT_DAEMON_H_
