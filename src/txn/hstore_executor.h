#ifndef OLTAP_TXN_HSTORE_EXECUTOR_H_
#define OLTAP_TXN_HSTORE_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace oltap {

// H-Store-style partitioned serial execution [38]: the database is
// pre-partitioned into conflict-free partitions, each owned by exactly one
// worker thread that runs its transactions serially — no locks, no
// versions, no latches on the partition-local data.
//
// Single-partition transactions are the fast path: enqueue and run.
// Multi-partition transactions must rendezvous every involved partition:
// each owner thread parks at a barrier while one of them executes the
// transaction body with exclusive access to all involved partitions. This
// is precisely the cost model that makes H-Store spectacular on
// partitionable workloads and fragile otherwise — experiment E11 sweeps
// the multi-partition fraction to reproduce that cliff.
class HStoreExecutor {
 public:
  explicit HStoreExecutor(size_t num_partitions);
  ~HStoreExecutor();

  HStoreExecutor(const HStoreExecutor&) = delete;
  HStoreExecutor& operator=(const HStoreExecutor&) = delete;

  size_t num_partitions() const { return workers_.size(); }

  // Schedules `work` to run with exclusive access to every partition in
  // `partitions` (deduped internally). The future resolves with the body's
  // status. `work` runs on one of the involved partitions' owner threads.
  std::future<Status> Submit(std::vector<int> partitions,
                             std::function<Status()> work);

  // Blocks until all queued transactions have completed.
  void Drain();

  uint64_t single_partition_txns() const {
    return single_.load(std::memory_order_relaxed);
  }
  uint64_t multi_partition_txns() const {
    return multi_.load(std::memory_order_relaxed);
  }

 private:
  // One queued transaction; shared by every involved partition's queue.
  struct Job {
    std::function<Status()> work;
    std::promise<Status> done;
    std::mutex mu;
    std::condition_variable cv;
    size_t arrivals_needed = 0;
    size_t arrived = 0;
    bool finished = false;
  };

  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::shared_ptr<Job>> queue;
    std::thread thread;
  };

  void WorkerLoop(size_t partition);

  // Serializes multi-queue enqueues so every pair of jobs appears in the
  // same relative order in every queue they share — the property that makes
  // the rendezvous deadlock-free (the earliest-submitted blocked job can
  // always complete).
  std::mutex submit_mu_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> single_{0};
  std::atomic<uint64_t> multi_{0};
  std::atomic<uint64_t> inflight_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace oltap

#endif  // OLTAP_TXN_HSTORE_EXECUTOR_H_
