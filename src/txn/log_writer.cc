#include "txn/log_writer.h"

#include <utility>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace oltap {
namespace {

void RecordWait(const std::chrono::steady_clock::time_point& enqueued) {
  static obs::Histogram* wait_us =
      obs::MetricsRegistry::Default()->GetHistogram("wal.group_wait_us");
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - enqueued)
                .count();
  wait_us->Record(static_cast<uint64_t>(us < 0 ? 0 : us));
}

}  // namespace

LogWriter::LogWriter(Wal* wal, const Options& options)
    : wal_(wal), options_(options) {
  running_ = true;
  thread_ = std::thread(&LogWriter::Run, this);
}

LogWriter::~LogWriter() { Stop(); }

std::future<Status> LogWriter::SubmitCommit(std::string body) {
  Pending p;
  p.body = std::move(body);
  p.enqueued = std::chrono::steady_clock::now();
  std::future<Status> f = p.done.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ || stop_) {
      RecordWait(p.enqueued);
      p.done.set_value(
          Status::Unavailable("log writer is not running; commit not logged"));
      return f;
    }
    queue_.push_back(std::move(p));
  }
  cv_.notify_one();
  return f;
}

void LogWriter::FailBatch(std::vector<Pending>* batch, const Status& st) {
  for (Pending& p : *batch) {
    RecordWait(p.enqueued);
    p.done.set_value(st);
  }
  batch->clear();
}

void LogWriter::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty() && stop_) break;

    // Group window: once the batch has a member, wait up to the persist
    // interval for more to join, unless it fills or shutdown begins.
    if (options_.persist_interval_us > 0) {
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::microseconds(options_.persist_interval_us);
      cv_.wait_until(lock, deadline, [&] {
        return stop_ || queue_.size() >= options_.max_batch;
      });
    }

    std::vector<Pending> batch;
    if (queue_.size() <= options_.max_batch) {
      batch.swap(queue_);
    } else {
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.begin() +
                                           static_cast<long>(options_.max_batch)));
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<long>(options_.max_batch));
    }

    // Writer-thread crash: the batch in hand AND everything queued behind
    // it fail with the injected status (none of it ever reached the log),
    // then the thread exits. Submissions from this point fail fast until
    // Restart().
    Status crash = OLTAP_FAILPOINT_STATUS("logwriter.crash");
    if (!crash.ok()) {
      ++stats_.crashes;
      running_ = false;
      FailBatch(&batch, crash);
      FailBatch(&queue_, crash);
      return;
    }

    lock.unlock();
    std::vector<std::string> bodies;
    bodies.reserve(batch.size());
    for (Pending& p : batch) bodies.push_back(std::move(p.body));
    Status st = wal_->LogCommitBatch(bodies);
    lock.lock();
    // Stats first, futures second: a committer that observes its ack must
    // also observe the batch accounted for.
    ++stats_.batches;
    stats_.commits += batch.size();
    lock.unlock();
    for (Pending& p : batch) {
      RecordWait(p.enqueued);
      p.done.set_value(st);
    }
    lock.lock();
  }
  // Shutdown with an empty queue: nothing in flight remains.
  running_ = false;
}

void LogWriter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // A crashed writer exits leaving its queue behind (new submissions are
  // already rejected); fail the leftovers so no committer blocks forever.
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  FailBatch(&queue_, Status::Unavailable("log writer stopped"));
}

Status LogWriter::Restart() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status::FailedPrecondition("log writer is still running");
  }
  if (thread_.joinable()) thread_.join();
  FailBatch(&queue_, Status::Unavailable("log writer restarted"));
  stop_ = false;
  running_ = true;
  thread_ = std::thread(&LogWriter::Run, this);
  return Status::OK();
}

bool LogWriter::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

Timestamp LogWriter::MinPendingCommitTs() const {
  std::lock_guard<std::mutex> lock(mu_);
  Timestamp min_ts = kMaxTimestamp;
  for (const Pending& p : queue_) {
    min_ts = std::min(min_ts, Wal::PeekBodyCommitTs(p.body));
  }
  return min_ts;
}

LogWriter::Stats LogWriter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace oltap
