#ifndef OLTAP_TXN_LOCK_MANAGER_H_
#define OLTAP_TXN_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace oltap {

// Two-phase-locking baseline: per-key shared/exclusive locks with wait-die
// deadlock avoidance (older transactions — smaller ids — wait; younger ones
// abort). This is the "traditional" concurrency control the multi-version
// designs in the tutorial are compared against: analytic readers block
// writers and vice versa, which experiment E5 measures.
class LockManager {
 public:
  enum class Mode : uint8_t { kShared, kExclusive };

  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Blocks until granted, or returns kAborted (wait-die victim). Re-entrant
  // for a holder; S→X upgrade succeeds when the caller is the sole holder.
  Status Acquire(uint64_t txn_id, const std::string& key, Mode mode);

  // Releases every lock held by `txn_id` (end of the second phase).
  void ReleaseAll(uint64_t txn_id);

  // Diagnostics.
  size_t num_locked_keys() const;
  uint64_t num_waits() const { return waits_.load(std::memory_order_relaxed); }
  uint64_t num_deaths() const {
    return deaths_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kStripes = 64;

  struct LockState {
    std::set<uint64_t> shared;
    uint64_t exclusive = 0;  // holder id, 0 = none
  };
  struct Stripe {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<std::string, LockState> locks;
  };

  size_t StripeFor(const std::string& key) const;
  // True if `txn_id` may be granted `mode` on `state` right now.
  static bool Compatible(const LockState& state, uint64_t txn_id, Mode mode);
  // True if every current conflicting holder is younger than txn_id
  // (wait-die: an older requester may wait).
  static bool MayWait(const LockState& state, uint64_t txn_id, Mode mode);

  Stripe stripes_[kStripes];

  mutable std::mutex held_mu_;
  std::unordered_map<uint64_t, std::vector<std::string>> held_;

  std::atomic<uint64_t> waits_{0};
  std::atomic<uint64_t> deaths_{0};
};

// Conservative (static) 2PL convenience: acquires every declared lock up
// front in sorted order, runs the body, releases. Because all acquisition
// precedes any data access, an abort during acquisition needs no undo —
// the body only runs once fully locked.
class TwoPLSession {
 public:
  explicit TwoPLSession(LockManager* lm) : lm_(lm) {}

  // Returns kAborted if lock acquisition dies; otherwise the body's status.
  Status Run(uint64_t txn_id, const std::vector<std::string>& read_keys,
             const std::vector<std::string>& write_keys,
             const std::function<Status()>& body);

 private:
  LockManager* lm_;
};

}  // namespace oltap

#endif  // OLTAP_TXN_LOCK_MANAGER_H_
