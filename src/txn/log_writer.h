#ifndef OLTAP_TXN_LOG_WRITER_H_
#define OLTAP_TXN_LOG_WRITER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "txn/wal.h"

namespace oltap {

// Group commit: a dedicated log-writer thread that drains queued commit
// records, serializes many of them into ONE batch frame, issues ONE
// flush+fsync for the whole batch (Wal::LogCommitBatch), and only then
// completes the waiting committers' futures. Amortizing the fsync across
// the batch is the classic group-commit trade (terrier's log_manager,
// Aether): per-commit latency grows by at most the persist interval,
// sustained commit throughput stops being bound by device syncs.
//
// Contract with TransactionManager::Commit:
//  - the committer serializes its record (Wal::SerializeCommitBody) on its
//    own thread, submits the body, and blocks on the returned future
//    while still holding its key stripe locks — the commit is not applied
//    and not acknowledged until the future resolves OK, so ack still
//    implies durable;
//  - a batch fails atomically: if the batch's append fails (torn batch,
//    fsync error, sealed log) EVERY future in the batch resolves to that
//    error and none of those commits may be acknowledged or applied. The
//    Wal's single batch checksum enforces the same all-or-nothing on the
//    recovery side.
//
// Failpoint "logwriter.crash" simulates the writer thread dying: the
// current batch and everything queued behind it fail with the injected
// status, the thread exits, and later submissions fail fast with
// kUnavailable until Restart() re-spawns the thread.
class LogWriter {
 public:
  struct Options {
    // Max commits per batch: a full batch is written immediately.
    size_t max_batch = 64;
    // How long the writer waits for more commits to join a non-empty,
    // non-full batch before persisting it (the persist interval; bounds
    // the latency a commit pays for grouping). 0 = persist immediately.
    int64_t persist_interval_us = 100;
  };

  explicit LogWriter(Wal* wal) : LogWriter(wal, Options()) {}
  LogWriter(Wal* wal, const Options& options);
  ~LogWriter();  // calls Stop()

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  // Queues one serialized commit body for the next batch. The future
  // resolves after the batch containing it is durable (OK) or failed
  // (the batch's error). After Stop() or a writer crash, resolves
  // immediately with kUnavailable.
  std::future<Status> SubmitCommit(std::string body);

  // Stops the writer. In-flight and queued commits are drained into a
  // final batch when the log still accepts writes; when it does not
  // (sealed), they fail deterministically with the append error. Safe to
  // call twice.
  void Stop();

  // Re-spawns the writer thread after a crash or Stop(). Fails with
  // kFailedPrecondition if it is still running.
  Status Restart();

  bool running() const;

  // Oldest commit timestamp among queued-but-not-yet-persisted bodies
  // (kMaxTimestamp when the queue is empty). The checkpoint daemon folds
  // this into its WAL-truncation pin: a segment may only drop once no
  // in-flight batch could still need its position in the log. (In
  // practice queued commits are always newer than the checkpoint — the
  // visible watermark trails durability — so this pin is a backstop.)
  Timestamp MinPendingCommitTs() const;

  struct Stats {
    uint64_t batches = 0;
    uint64_t commits = 0;
    uint64_t crashes = 0;
  };
  Stats stats() const;

 private:
  struct Pending {
    std::string body;
    std::promise<Status> done;
    std::chrono::steady_clock::time_point enqueued;
  };

  void Run();
  // Fails every entry of `batch` with `st` and publishes their wait times.
  static void FailBatch(std::vector<Pending>* batch, const Status& st);

  Wal* const wal_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pending> queue_;
  bool stop_ = false;
  bool running_ = false;   // writer thread is live (accepting work)
  std::thread thread_;
  Stats stats_;
};

}  // namespace oltap

#endif  // OLTAP_TXN_LOG_WRITER_H_
