#ifndef OLTAP_TXN_TRANSACTION_MANAGER_H_
#define OLTAP_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/catalog.h"
#include "storage/row.h"
#include "storage/table.h"

namespace oltap {

class LogWriter;
class TransactionManager;
class Wal;

// Monotonic commit-timestamp source. Begin timestamps are the latest
// committed timestamp (snapshot reads); commit timestamps are fresh.
class TimestampOracle {
 public:
  // First commit gets ts 1; ts 0 = "before everything" (bulk loads use it).
  Timestamp AllocateCommitTs() {
    return next_.fetch_add(1, std::memory_order_acq_rel);
  }
  Timestamp CurrentReadTs() const {
    return next_.load(std::memory_order_acquire) - 1;
  }

  // Fast-forwards past `ts` (recovery: replayed commits must precede every
  // new snapshot).
  void AdvanceTo(Timestamp ts) {
    Timestamp cur = next_.load(std::memory_order_acquire);
    while (cur < ts + 1 &&
           !next_.compare_exchange_weak(cur, ts + 1,
                                        std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<Timestamp> next_{1};
};

// A snapshot-isolation transaction with deferred writes: reads see the
// begin-timestamp snapshot overlaid with the transaction's own write set;
// writes are buffered and applied at commit after first-committer-wins
// validation. This is the transaction model the surveyed column-store
// engines expose (BLU, HANA, Oracle DBIM: multi-version reads, optimistic
// write validation, minimal locking).
class Transaction {
 public:
  // Aborts implicitly if neither Commit nor Abort was called.
  ~Transaction();

  uint64_t id() const { return id_; }
  Timestamp begin_ts() const { return begin_ts_; }
  // Commit timestamp; 0 until committed.
  Timestamp commit_ts() const { return commit_ts_; }

  // --- Buffered DML. Keys are encoded primary keys (storage/row.h). ---

  Status Insert(Table* table, Row row);
  Status Update(Table* table, Row new_row);  // key taken from new_row
  Status Delete(Table* table, const Row& key_row);
  Status DeleteByKey(Table* table, std::string key);

  // Point read: own writes first, then the snapshot.
  bool Get(Table* table, const std::string& key, Row* out) const;
  bool GetByRow(Table* table, const Row& key_row, Row* out) const;

  // Row-wise snapshot scan overlaid with own writes (inserted rows appended,
  // deleted rows suppressed, updated rows replaced).
  void Scan(Table* table, const std::function<void(const Row&)>& fn) const;

  // Ordered range scan at the snapshot (key order, up to `limit` rows with
  // key >= start_key). NOTE: unlike Scan, this reads the committed
  // snapshot only — the transaction's own buffered writes are not overlaid
  // (sufficient for the read-mostly TPC-C patterns that need it).
  size_t ScanRange(Table* table, std::string_view start_key, size_t limit,
                   const std::function<void(const Row&)>& fn) const {
    return table->ScanRange(start_key, limit, begin_ts_, fn);
  }

  size_t write_set_size() const { return ops_.size(); }

 private:
  friend class TransactionManager;

  enum class OpKind : uint8_t { kInsert, kUpdate, kDelete };
  struct WriteOp {
    OpKind kind;
    Table* table;
    std::string key;
    Row row;  // empty for deletes
  };

  Transaction(TransactionManager* mgr, uint64_t id, Timestamp begin_ts,
              size_t snapshot_shard)
      : mgr_(mgr),
        id_(id),
        begin_ts_(begin_ts),
        snapshot_shard_(snapshot_shard) {}

  // Newest op for (table, key), or nullptr.
  const WriteOp* OwnWrite(const Table* table, const std::string& key) const;

  TransactionManager* mgr_;
  uint64_t id_;
  Timestamp begin_ts_;
  // Which active-snapshot shard Begin registered this txn in (commit and
  // abort may run on a different thread than Begin, so the shard index
  // travels with the transaction).
  size_t snapshot_shard_ = 0;
  Timestamp commit_ts_ = 0;
  bool finished_ = false;
  std::vector<WriteOp> ops_;
  // (table, key) -> index of newest op in ops_.
  std::map<std::pair<const Table*, std::string>, size_t> latest_;
};

// Creates, validates, and commits transactions. Commit is parallel across
// disjoint key sets: a striped lock table covers the write keys, so only
// conflicting commits serialize (and they would conflict anyway).
//
// Snapshot assignment uses a *visible watermark*, not the raw oracle:
// a commit timestamp becomes readable only once every commit at or below
// it has finished applying its write set, so no snapshot ever observes a
// partially applied transaction.
//
// The watermark and the active-snapshot registry are the two structures
// every Begin/Commit touches, so both are built for concurrency (the
// concurrent TPC-C driver exposed the original single-mutex versions as
// the top contention points):
//  - the watermark is a lock-free ring of applied commit slots: commit
//    timestamps are allocated densely, each finisher marks its slot and
//    CAS-advances the watermark over the contiguous applied prefix, and
//    Begin is a single atomic load;
//  - active snapshots are tracked in per-thread-sharded maps, so Begin
//    and commit/abort of unrelated transactions never share a mutex.
class TransactionManager {
 public:
  explicit TransactionManager(Catalog* catalog, Wal* wal = nullptr);

  // Begins a snapshot transaction at the newest fully-applied timestamp.
  std::unique_ptr<Transaction> Begin();

  // First-committer-wins validation + apply. On kAborted the transaction
  // made no changes. Read-only transactions always commit trivially.
  // On OK the commit is *visible*: every transaction begun after Commit
  // returns reads it (read-your-writes across a session's transactions).
  Status Commit(Transaction* txn);

  // Drops the write set. (Nothing was applied, so nothing to undo.)
  void Abort(Transaction* txn);

  // Oldest begin timestamp among active transactions (== current read ts
  // when none): the GC horizon merges must respect.
  Timestamp OldestActiveSnapshot() const;

  TimestampOracle* oracle() { return &oracle_; }
  Catalog* catalog() { return catalog_; }
  Wal* wal() const { return wal_; }

  // Routes commit durability through a group-commit log writer: when set,
  // Commit serializes its record and blocks on the writer's future instead
  // of calling Wal::LogCommit itself (one fsync per batch instead of per
  // commit). Pass nullptr to restore the direct path. The caller owns the
  // writer and must keep it alive (and Stop() it) around any window where
  // commits may run; swapping mid-commit is safe — each commit reads the
  // pointer once.
  void SetLogWriter(LogWriter* writer) {
    log_writer_.store(writer, std::memory_order_release);
  }
  LogWriter* log_writer() const {
    return log_writer_.load(std::memory_order_acquire);
  }

  // Post-commit hook, invoked after a non-empty commit is durable AND
  // visible (the ack point), with the distinct tables it wrote and its
  // commit timestamp. No locks are held; the hook may begin and commit
  // transactions of its own. The view subsystem uses this for synchronous
  // incremental maintenance. Install before serving traffic; pass nullptr
  // to clear.
  using CommitHook =
      std::function<void(const std::vector<Table*>&, Timestamp)>;
  void SetCommitHook(CommitHook hook) { commit_hook_ = std::move(hook); }

  // Recovery fast-forward: advances the oracle *and* the visible watermark
  // past `ts` (replayed commits were applied directly to storage, so they
  // are fully visible by construction). Must not race live commits —
  // recovery runs before the database serves traffic.
  void AdvanceTo(Timestamp ts);

  uint64_t num_commits() const {
    return commits_.load(std::memory_order_relaxed);
  }
  uint64_t num_aborts() const {
    return aborts_.load(std::memory_order_relaxed);
  }

  // Newest timestamp whose entire commit history is fully applied.
  Timestamp VisibleWatermark() const;

 private:
  friend class Transaction;

  static constexpr size_t kLockStripes = 256;
  // Ring capacity for in-flight commit timestamps. Allocation spins (never
  // deadlocks: older timestamps are finished by independent threads) if it
  // ever runs this far ahead of the watermark — in practice in-flight
  // commits are bounded by the thread count, orders of magnitude below.
  static constexpr size_t kCommitWindow = 4096;
  static constexpr size_t kSnapshotShards = 16;

  struct alignas(64) SnapshotShard {
    mutable std::mutex mu;
    // begin_ts -> count of active txns registered in this shard.
    std::map<Timestamp, int> active;
  };

  size_t StripeFor(const Table* table, const std::string& key) const;
  // Allocates a commit timestamp and marks it in-flight.
  Timestamp AllocateCommitTs();
  // Marks `ts` fully applied, advancing the watermark over the contiguous
  // applied prefix.
  void FinishCommitTs(Timestamp ts);
  // CAS-advances visible_ over the contiguous applied prefix. Safe to call
  // from any thread; spin loops waiting on the watermark call it to help
  // instead of waiting passively.
  void AdvanceVisible();

  Catalog* catalog_;
  Wal* wal_;
  std::atomic<LogWriter*> log_writer_{nullptr};
  TimestampOracle oracle_;
  std::atomic<uint64_t> next_txn_id_{1};

  // Newest timestamp whose entire commit history is applied. Slot ts % W
  // holds ts once that commit finished; stale values from ts - W are
  // harmless because the advance loop compares for exact equality.
  std::atomic<Timestamp> visible_{0};
  std::atomic<Timestamp> applied_slots_[kCommitWindow] = {};

  std::mutex stripes_[kLockStripes];

  SnapshotShard snapshot_shards_[kSnapshotShards];

  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};

  CommitHook commit_hook_;
};

}  // namespace oltap

#endif  // OLTAP_TXN_TRANSACTION_MANAGER_H_
