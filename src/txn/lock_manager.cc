#include "txn/lock_manager.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"

namespace oltap {

size_t LockManager::StripeFor(const std::string& key) const {
  return HashString(key) % kStripes;
}

bool LockManager::Compatible(const LockState& state, uint64_t txn_id,
                             Mode mode) {
  if (mode == Mode::kShared) {
    return state.exclusive == 0 || state.exclusive == txn_id;
  }
  // Exclusive: no other holder of any kind.
  if (state.exclusive != 0 && state.exclusive != txn_id) return false;
  for (uint64_t holder : state.shared) {
    if (holder != txn_id) return false;
  }
  return true;
}

bool LockManager::MayWait(const LockState& state, uint64_t txn_id,
                          Mode mode) {
  // Wait-die: the requester may wait only on strictly younger (larger-id)
  // holders. Any older conflicting holder means the requester dies.
  if (state.exclusive != 0 && state.exclusive != txn_id &&
      state.exclusive < txn_id) {
    return false;
  }
  if (mode == Mode::kExclusive) {
    for (uint64_t holder : state.shared) {
      if (holder != txn_id && holder < txn_id) return false;
    }
  }
  return true;
}

Status LockManager::Acquire(uint64_t txn_id, const std::string& key,
                            Mode mode) {
  Stripe& stripe = stripes_[StripeFor(key)];
  std::unique_lock<std::mutex> lock(stripe.mu);
  bool waited = false;
  while (true) {
    // Re-resolve the entry after every wait: the last releasing holder
    // erases it from the map, destroying any LockState reference held
    // across the sleep.
    LockState& state = stripe.locks[key];
    if (Compatible(state, txn_id, mode)) {
      if (waited) waits_.fetch_add(1, std::memory_order_relaxed);
      if (mode == Mode::kShared) {
        if (state.exclusive != txn_id) state.shared.insert(txn_id);
      } else if (state.exclusive != txn_id) {
        state.shared.erase(txn_id);  // upgrade consumes the shared hold
        state.exclusive = txn_id;
      }
      break;
    }
    if (!MayWait(state, txn_id, mode)) {
      deaths_.fetch_add(1, std::memory_order_relaxed);
      return Status::Aborted("wait-die victim on lock " + key);
    }
    waited = true;
    stripe.cv.wait(lock);
  }
  lock.unlock();
  {
    // Record the key once per (txn, key) for ReleaseAll.
    std::lock_guard<std::mutex> held_lock(held_mu_);
    std::vector<std::string>& keys = held_[txn_id];
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(key);
    }
  }
  return Status::OK();
}

void LockManager::ReleaseAll(uint64_t txn_id) {
  std::vector<std::string> keys;
  {
    std::lock_guard<std::mutex> held_lock(held_mu_);
    auto it = held_.find(txn_id);
    if (it == held_.end()) return;
    keys = std::move(it->second);
    held_.erase(it);
  }
  for (const std::string& key : keys) {
    Stripe& stripe = stripes_[StripeFor(key)];
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.locks.find(key);
    if (it == stripe.locks.end()) continue;
    LockState& state = it->second;
    state.shared.erase(txn_id);
    if (state.exclusive == txn_id) state.exclusive = 0;
    if (state.shared.empty() && state.exclusive == 0) {
      stripe.locks.erase(it);
    }
    stripe.cv.notify_all();
  }
}

size_t LockManager::num_locked_keys() const {
  size_t n = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    n += stripe.locks.size();
  }
  return n;
}

Status TwoPLSession::Run(uint64_t txn_id,
                         const std::vector<std::string>& read_keys,
                         const std::vector<std::string>& write_keys,
                         const std::function<Status()>& body) {
  // Sort the combined lock set so concurrent sessions acquire in the same
  // order; writes dominate reads on the same key.
  std::vector<std::pair<std::string, LockManager::Mode>> locks;
  locks.reserve(read_keys.size() + write_keys.size());
  for (const std::string& k : write_keys) {
    locks.emplace_back(k, LockManager::Mode::kExclusive);
  }
  for (const std::string& k : read_keys) {
    locks.emplace_back(k, LockManager::Mode::kShared);
  }
  std::sort(locks.begin(), locks.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  for (const auto& [key, mode] : locks) {
    // Skip a shared request if the same key was already locked exclusive.
    Status st = lm_->Acquire(txn_id, key, mode);
    if (!st.ok()) {
      lm_->ReleaseAll(txn_id);
      return st;
    }
  }
  Status st = body();
  lm_->ReleaseAll(txn_id);
  return st;
}

}  // namespace oltap
