#include "txn/mvcc.h"

#include <shared_mutex>
#include <unordered_map>

#include "common/logging.h"
#include "obs/metrics.h"

namespace oltap {

namespace {

// Mirrors the engine-local conflict count into the global registry.
void NoteConflict(std::atomic<uint64_t>* local) {
  local->fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* c =
      obs::MetricsRegistry::Default()->GetCounter("mvcc.conflicts");
  c->Add(1);
}

}  // namespace


// Transaction-state side table (the Hekaton postprocessing design): while a
// transaction's intents are being finalized, readers that encounter a
// marker resolve it here; once stamping completes the entry is erased and
// readers simply re-read the now-final fields.
enum class TxnOutcome : uint8_t { kActive, kCommitted, kAborted };
struct TxnStateEntry {
  TxnOutcome outcome = TxnOutcome::kActive;
  Timestamp commit_ts = 0;
};

namespace {

struct StateTable {
  mutable std::shared_mutex mu;
  std::unordered_map<uint64_t, TxnStateEntry> map;

  void Set(uint64_t id, TxnOutcome outcome, Timestamp ts) {
    std::unique_lock lock(mu);
    map[id] = TxnStateEntry{outcome, ts};
  }
  void Erase(uint64_t id) {
    std::unique_lock lock(mu);
    map.erase(id);
  }
  bool Get(uint64_t id, TxnStateEntry* out) const {
    std::shared_lock lock(mu);
    auto it = map.find(id);
    if (it == map.end()) return false;
    *out = it->second;
    return true;
  }
};

// One state table per engine, stored behind the engine pointer. Kept out of
// the header to avoid exposing the map type.
StateTable* TableFor(const MvccEngine* engine) {
  static std::mutex registry_mu;
  static std::unordered_map<const MvccEngine*, StateTable*>* registry =
      new std::unordered_map<const MvccEngine*, StateTable*>();
  std::lock_guard<std::mutex> lock(registry_mu);
  auto [it, inserted] = registry->emplace(engine, nullptr);
  if (inserted) it->second = new StateTable();
  return it->second;
}

}  // namespace

MvccEngine::MvccEngine(RowStore* store, TimestampOracle* oracle)
    : store_(store), oracle_(oracle) {
  TableFor(this);  // eager init
}

MvccEngine::~MvccEngine() {
  std::lock_guard<std::mutex> lock(garbage_mu_);
  for (RowVersion* v : garbage_) delete v;
}

std::unique_ptr<MvccEngine::Txn> MvccEngine::Begin() {
  auto txn = std::unique_ptr<Txn>(new Txn());
  txn->id_ = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  txn->begin_ts_ = oracle_->CurrentReadTs();
  TableFor(this)->Set(txn->id_, TxnOutcome::kActive, 0);
  return txn;
}

namespace {

// Marker-aware visibility with state-table resolution. Retries while a
// finalization is in flight (bounded: stamping is a handful of stores).
bool VisibleResolved(const StateTable& states, const RowVersion& v,
                     Timestamp read_ts, uint64_t self) {
  while (true) {
    Timestamp begin = v.begin.load(std::memory_order_acquire);
    if (IsTxnId(begin)) {
      uint64_t tid = TxnIdOf(begin);
      if (tid != self) {
        TxnStateEntry st;
        if (!states.Get(tid, &st)) continue;  // being stamped; re-read
        if (st.outcome != TxnOutcome::kCommitted) return false;
        if (st.commit_ts > read_ts) return false;
      }
    } else if (begin > read_ts) {
      return false;
    }
    Timestamp end = v.end.load(std::memory_order_acquire);
    if (IsTxnId(end)) {
      uint64_t tid = TxnIdOf(end);
      if (tid == self) return false;  // own delete intent
      TxnStateEntry st;
      if (!states.Get(tid, &st)) continue;
      if (st.outcome == TxnOutcome::kCommitted && st.commit_ts <= read_ts) {
        return false;
      }
      return true;
    }
    return end > read_ts;
  }
}

}  // namespace

bool MvccEngine::Read(Txn* txn, std::string_view key, Row* out) const {
  const RowStore::Entry* entry = store_->Get(key);
  if (entry == nullptr) return false;
  const StateTable& states = *TableFor(this);
  for (const RowVersion* v = entry->head.load(std::memory_order_acquire);
       v != nullptr; v = v->next) {
    if (VisibleResolved(states, *v, txn->begin_ts_, txn->id_)) {
      *out = v->data;
      return true;
    }
  }
  return false;
}

Status MvccEngine::Upsert(Txn* txn, std::string_view key, Row row) {
  OLTAP_CHECK(!txn->finished_);
  RowStore::Entry* entry = store_->GetOrCreate(key);
  RowVersion* head = entry->head.load(std::memory_order_acquire);
  RowVersion* closed = nullptr;

  if (head != nullptr) {
    Timestamp begin = head->begin.load(std::memory_order_acquire);
    Timestamp end = head->end.load(std::memory_order_acquire);
    // Another transaction's intent anywhere on the newest version is a
    // write-write conflict (pessimistic first-committer-wins).
    if (IsTxnId(begin) && TxnIdOf(begin) != txn->id_) {
      NoteConflict(&conflicts_);
      return Status::Aborted("uncommitted write by another transaction");
    }
    if (IsTxnId(end) && TxnIdOf(end) != txn->id_) {
      NoteConflict(&conflicts_);
      return Status::Aborted("uncommitted delete by another transaction");
    }
    // A commit after our snapshot is also a conflict.
    Timestamp last_write = 0;
    if (!IsTxnId(begin)) last_write = begin;
    if (!IsTxnId(end) && end != kMaxTimestamp) {
      last_write = std::max(last_write, end);
    }
    if (last_write > txn->begin_ts_) {
      NoteConflict(&conflicts_);
      return Status::Aborted("write committed after snapshot");
    }
    // Live newest version (own intent or committed): close it.
    bool live = end == kMaxTimestamp;
    if (live) {
      Timestamp expected = kMaxTimestamp;
      if (!head->end.compare_exchange_strong(expected,
                                             MakeTxnMarker(txn->id_),
                                             std::memory_order_acq_rel)) {
        NoteConflict(&conflicts_);
        return Status::Aborted("lost race closing version");
      }
      closed = head;
    }
  }

  auto* v = new RowVersion(std::move(row));
  v->begin.store(MakeTxnMarker(txn->id_), std::memory_order_relaxed);
  if (!RowStore::InstallVersion(entry, head, v)) {
    delete v;
    if (closed != nullptr) {
      closed->end.store(kMaxTimestamp, std::memory_order_release);
    }
    NoteConflict(&conflicts_);
    return Status::Aborted("lost race installing version");
  }
  txn->writes_.push_back(Txn::WriteRecord{entry, v, closed});
  static obs::Counter* installed =
      obs::MetricsRegistry::Default()->GetCounter("mvcc.versions_installed");
  installed->Add(1);
  return Status::OK();
}

Status MvccEngine::Delete(Txn* txn, std::string_view key) {
  OLTAP_CHECK(!txn->finished_);
  RowStore::Entry* entry = store_->Get(key);
  if (entry == nullptr) return Status::NotFound("key not found");
  RowVersion* head = entry->head.load(std::memory_order_acquire);
  if (head == nullptr) return Status::NotFound("key not found");

  Timestamp begin = head->begin.load(std::memory_order_acquire);
  Timestamp end = head->end.load(std::memory_order_acquire);
  if ((IsTxnId(begin) && TxnIdOf(begin) != txn->id_) ||
      (IsTxnId(end) && TxnIdOf(end) != txn->id_)) {
    NoteConflict(&conflicts_);
    return Status::Aborted("uncommitted write by another transaction");
  }
  Timestamp last_write = IsTxnId(begin) ? 0 : begin;
  if (!IsTxnId(end) && end != kMaxTimestamp) {
    last_write = std::max(last_write, end);
  }
  if (last_write > txn->begin_ts_) {
    NoteConflict(&conflicts_);
    return Status::Aborted("write committed after snapshot");
  }
  if (end != kMaxTimestamp) return Status::NotFound("key not live");

  Timestamp expected = kMaxTimestamp;
  if (!head->end.compare_exchange_strong(expected, MakeTxnMarker(txn->id_),
                                         std::memory_order_acq_rel)) {
    NoteConflict(&conflicts_);
    return Status::Aborted("lost race closing version");
  }
  txn->writes_.push_back(Txn::WriteRecord{entry, nullptr, head});
  return Status::OK();
}

Timestamp MvccEngine::Commit(Txn* txn) {
  OLTAP_CHECK(!txn->finished_);
  Timestamp ts = oracle_->AllocateCommitTs();
  StateTable* states = TableFor(this);
  // Publish the outcome first: readers resolving markers now treat every
  // intent of this transaction as committed-at-ts.
  states->Set(txn->id_, TxnOutcome::kCommitted, ts);
  // Stamp fields, then retire the state entry.
  for (const Txn::WriteRecord& w : txn->writes_) {
    if (w.closed != nullptr) {
      w.closed->end.store(ts, std::memory_order_release);
    }
    if (w.installed != nullptr) {
      w.installed->begin.store(ts, std::memory_order_release);
    }
  }
  states->Erase(txn->id_);
  txn->finished_ = true;
  return ts;
}

void MvccEngine::Abort(Txn* txn) {
  if (txn->finished_) return;
  StateTable* states = TableFor(this);
  states->Set(txn->id_, TxnOutcome::kAborted, 0);
  // Undo newest-first so chains restore cleanly under multiple own writes
  // to the same key.
  for (auto it = txn->writes_.rbegin(); it != txn->writes_.rend(); ++it) {
    if (it->installed != nullptr) {
      // Nothing can have been installed above our intent (it would have
      // conflicted), so our version is still the head.
      RowVersion* expected = it->installed;
      bool ok = it->entry->head.compare_exchange_strong(
          expected, it->installed->next, std::memory_order_acq_rel);
      OLTAP_CHECK(ok) << "abort found foreign version above intent";
      // Make the unlinked version permanently invisible for readers that
      // still hold a pointer into the old chain.
      it->installed->begin.store(kMaxTimestamp, std::memory_order_release);
      std::lock_guard<std::mutex> lock(garbage_mu_);
      garbage_.push_back(it->installed);
    }
    if (it->closed != nullptr) {
      it->closed->end.store(kMaxTimestamp, std::memory_order_release);
    }
  }
  states->Erase(txn->id_);
  txn->finished_ = true;
}

}  // namespace oltap
