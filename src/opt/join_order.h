#ifndef OLTAP_OPT_JOIN_ORDER_H_
#define OLTAP_OPT_JOIN_ORDER_H_

#include <cstdint>
#include <vector>

#include "opt/cost_model.h"

namespace oltap {
namespace opt {

// Join enumeration input: one entry per FROM relation with its estimated
// cardinality *after* local predicates, plus the equi-join edges between
// relations (selectivities from EquiJoinSelectivity).
struct JoinGraph {
  struct Edge {
    int a = 0;
    int b = 0;
    double selectivity = 1.0;
  };
  std::vector<double> rel_rows;
  std::vector<Edge> edges;
};

struct JoinOrderResult {
  // Relation indices in join order: order[0] is the initial build side,
  // each subsequent relation is probed against the accumulated result.
  std::vector<int> order;
  // Estimated rows after each prefix: interm_rows[k] = |order[0..k]| join.
  std::vector<double> interm_rows;
  double total_cost = 0;  // sum of hash-join costs (scans are order-free)
  bool used_dp = false;   // DPsize (vs. greedy fallback)
};

// Left-deep join-order search: exhaustive DPsize over subsets for up to
// kDpMaxRelations relations, greedy smallest-intermediate-first above.
// Deterministic: cost ties break toward the lexicographically smallest
// order vector, so equal-cost plans (and re-runs) always pick the same
// order — FROM order wins a fully symmetric tie.
inline constexpr int kDpMaxRelations = 8;
JoinOrderResult OrderJoins(const JoinGraph& graph, const CostModel& cm);

}  // namespace opt
}  // namespace oltap

#endif  // OLTAP_OPT_JOIN_ORDER_H_
