#include "opt/stats.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace oltap {
namespace opt {
namespace {

// Reservoir capacity for histogram construction and bucket count of the
// equi-depth histograms. Sampling is algorithm R with a fixed seed so
// ANALYZE is reproducible run to run.
constexpr size_t kSampleCap = 65536;
constexpr size_t kHistogramBuckets = 32;
constexpr uint64_t kReservoirSeed = 0x5eedf00d;

}  // namespace

void DistinctSketch::Add(uint64_t hash) {
  if (smallest_.size() < kK) {
    smallest_.insert(hash);
    return;
  }
  auto last = std::prev(smallest_.end());
  if (hash >= *last) return;
  if (smallest_.insert(hash).second) smallest_.erase(std::prev(smallest_.end()));
}

uint64_t DistinctSketch::Estimate() const {
  if (smallest_.size() < kK) return smallest_.size();
  // k-th smallest hash normalized to (0, 1]; +1 guards a zero hash.
  double kth = (static_cast<double>(*std::prev(smallest_.end())) + 1.0) /
               std::ldexp(1.0, 64);
  double est = static_cast<double>(kK - 1) / kth;
  return static_cast<uint64_t>(std::llround(est));
}

double ColumnStats::FractionBelow(double c, bool inclusive) const {
  if (!has_range || row_count == null_count) return 0.0;
  if (c < min) return 0.0;
  if (c > max) return 1.0;
  if (max == min) {
    // Single-value column: everything sits at `min`.
    return (c > min || (inclusive && c == min)) ? 1.0 : 0.0;
  }
  if (!bounds.empty()) {
    // Equi-depth: each bucket holds 1/B of the mass. A heavy-hitter value
    // repeats as the upper bound of several consecutive buckets, so count
    // every bucket fully below (or at, when inclusive) c, then interpolate
    // inside the one containing c. Bucket i spans (lower_i, bounds[i]]
    // where lower_i = bounds[i-1] (or min for the first bucket).
    const double per_bucket = 1.0 / static_cast<double>(bounds.size());
    double lower = min;
    size_t i = 0;
    while (i < bounds.size() &&
           (inclusive ? bounds[i] <= c : bounds[i] < c)) {
      lower = bounds[i];
      ++i;
    }
    if (i == bounds.size()) return 1.0;
    double width = bounds[i] - lower;
    double within =
        width <= 0 ? 0.0 : std::clamp((c - lower) / width, 0.0, 1.0);
    return std::clamp((static_cast<double>(i) + within) * per_bucket, 0.0,
                      1.0);
  }
  // No histogram: assume uniform over [min, max].
  return std::clamp((c - min) / (max - min), 0.0, 1.0);
}

TableStats AnalyzeTable(const Table& table, Timestamp read_ts) {
  const Schema& schema = table.schema();
  const size_t ncols = schema.num_columns();

  TableStats ts;
  ts.table = table.name();
  ts.analyze_ts = read_ts;
  // Snapshot the counter *before* scanning so writes racing the scan count
  // as staleness, never as silently-covered rows.
  ts.mod_count_at_analyze = table.mod_count();
  ts.columns.resize(ncols);

  std::vector<DistinctSketch> sketches(ncols);
  std::vector<std::vector<double>> samples(ncols);
  std::vector<uint64_t> numeric_seen(ncols, 0);
  std::mt19937_64 rng(kReservoirSeed);

  table.ScanVisible(read_ts, [&](const Row& row) {
    ++ts.row_count;
    for (size_t c = 0; c < ncols; ++c) {
      ColumnStats& cs = ts.columns[c];
      ++cs.row_count;
      const Value& v = row[c];
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      sketches[c].Add(v.Hash());
      if (v.type() == ValueType::kString) continue;
      double d = v.AsDouble();
      if (!cs.has_range) {
        cs.has_range = true;
        cs.min = cs.max = d;
      } else {
        cs.min = std::min(cs.min, d);
        cs.max = std::max(cs.max, d);
      }
      // Reservoir sample (algorithm R) feeding the equi-depth histogram.
      uint64_t seen = ++numeric_seen[c];
      std::vector<double>& sample = samples[c];
      if (sample.size() < kSampleCap) {
        sample.push_back(d);
      } else {
        uint64_t j = rng() % seen;
        if (j < kSampleCap) sample[j] = d;
      }
    }
  });

  for (size_t c = 0; c < ncols; ++c) {
    ColumnStats& cs = ts.columns[c];
    cs.ndv = sketches[c].Estimate();
    std::vector<double>& sample = samples[c];
    // Too few values to bucket: min/max interpolation is as good.
    if (sample.size() < kHistogramBuckets * 2) continue;
    std::sort(sample.begin(), sample.end());
    cs.bounds.reserve(kHistogramBuckets);
    for (size_t b = 1; b <= kHistogramBuckets; ++b) {
      size_t idx = b * sample.size() / kHistogramBuckets;
      cs.bounds.push_back(sample[std::min(idx, sample.size()) - 1]);
    }
    cs.bounds.back() = cs.max;
  }
  return ts;
}

}  // namespace opt
}  // namespace oltap
