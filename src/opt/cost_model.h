#ifndef OLTAP_OPT_COST_MODEL_H_
#define OLTAP_OPT_COST_MODEL_H_

#include <vector>

#include "exec/expr.h"
#include "storage/table.h"

namespace oltap {
namespace opt {

// Which physical side a scan should read. kAuto preserves the engine's
// historical behavior (column side whenever one exists); the optimizer
// resolves dual-format tables to an explicit side, and benches force the
// wrong side to measure the gap (E16).
enum class AccessPath : uint8_t { kAuto, kRow, kColumn };

const char* AccessPathToString(AccessPath p);

// Unitless cost model. One unit ~= the work of visiting one row through
// the row-wise scan path; the other constants are calibrated against the
// measured ratios of E1 (row vs column scan throughput) and E2 (packed
// kernels), not absolute nanoseconds — only comparisons between plans
// matter.
struct CostModel {
  // Row-wise tuple visit + interpreted predicate (row store, delta rows).
  static constexpr double kRowScanPerRow = 1.0;
  // Packed/SWAR columnar kernel per main row (E1/E2: order-of-magnitude
  // cheaper than row-wise).
  static constexpr double kColumnScanPerRow = 0.08;
  // Tuple reconstruction (gather) per selected output row of a column scan.
  static constexpr double kGatherPerRow = 0.5;
  // Hash-join build per build row and probe per probe row.
  static constexpr double kHashBuildPerRow = 2.0;
  static constexpr double kHashProbePerRow = 1.2;
  // Per emitted join output row.
  static constexpr double kJoinOutputPerRow = 0.3;
  // Hash-join memory footprint per materialized build row (bytes-ish,
  // only used for reporting / sanity in EXPLAIN, not plan choice yet).
  static constexpr double kBuildBytesPerRow = 64.0;

  struct ScanDecision {
    AccessPath path = AccessPath::kAuto;  // resolved side (kAuto = forced)
    double cost = 0;
    double out_rows = 0;
    // Estimated fraction of main-fragment zones a zone-mapped scan must
    // actually touch (1.0 = no pruning expected).
    double zone_survival = 1.0;
  };

  // Costs scanning `table` at `read_ts` with the (table-local) predicate
  // whose pushable conjuncts are `pushed`, expecting `est_out_rows`
  // output rows. Picks the cheaper mirror for dual-format tables.
  ScanDecision CostScan(const Table& table, Timestamp read_ts,
                        const std::vector<Expr::ColumnPredicate>& pushed,
                        double est_out_rows) const;

  struct JoinCost {
    double cost = 0;          // build + probe + output
    double build_bytes = 0;   // estimated build-side footprint
  };
  JoinCost CostHashJoin(double build_rows, double probe_rows,
                        double out_rows) const;
};

// Estimated fraction of zone-mapped main zones that survive the pushed
// predicates (min across conjuncts; 1.0 when nothing prunes). Exposed for
// tests and EXPLAIN diagnostics.
double EstimateZoneSurvival(
    const Table& table, Timestamp read_ts,
    const std::vector<Expr::ColumnPredicate>& pushed);

}  // namespace opt
}  // namespace oltap

#endif  // OLTAP_OPT_COST_MODEL_H_
