#ifndef OLTAP_OPT_FEEDBACK_H_
#define OLTAP_OPT_FEEDBACK_H_

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace oltap {
namespace opt {

// A remembered plan is re-planned once its worst per-operator q-error
// (max(est/actual, actual/est)) exceeds this factor.
inline constexpr double kQErrorReplanThreshold = 4.0;

// One executed operator's estimate-vs-reality sample, harvested from the
// finished plan tree by the session layer.
struct OpSample {
  double est_rows = -1;     // planner estimate; < 0 = operator had none
  double actual_rows = 0;   // rows the operator actually emitted
  // FROM-relation index when this operator is that relation's scan,
  // -1 for joins and other operators. Scan actuals are what re-planning
  // feeds back as corrected base cardinalities.
  int scan_from_index = -1;
};

// Estimation-feedback memo, keyed by a canonical statement fingerprint.
// The planner records the join order it chose; after execution the
// session reports per-operator samples. When the worst q-error crosses
// kQErrorReplanThreshold the memoized order is invalidated and the
// *measured* scan cardinalities are stored, so the next planning of the
// same statement re-runs join ordering with observed numbers instead of
// estimates (counters: opt.plan_invalidations, opt.feedback_replans;
// histogram: opt.qerror_x100).
class PlanFeedback {
 public:
  struct Entry {
    std::vector<int> order;            // memoized join order (FROM indices)
    std::vector<double> scan_actual_rows;  // by FROM index; -1 = unknown
    bool has_actuals = false;
    uint64_t uses = 0;
  };

  std::optional<Entry> Lookup(const std::string& fingerprint);

  // Called by the planner after choosing `order` for this statement.
  void RememberOrder(const std::string& fingerprint, std::vector<int> order);

  // Called after execution. Records every sampled q-error into the obs
  // registry, invalidates the memoized order when the worst q-error
  // exceeds the threshold (stashing scan actuals for the re-plan), and
  // returns that worst q-error (1.0 when nothing was estimated).
  double Observe(const std::string& fingerprint,
                 const std::vector<OpSample>& samples);

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace opt
}  // namespace oltap

#endif  // OLTAP_OPT_FEEDBACK_H_
