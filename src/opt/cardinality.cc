#include "opt/cardinality.h"

#include <algorithm>
#include <cmath>

namespace oltap {
namespace opt {
namespace {

double Clamp01(double s) { return std::clamp(s, 0.0, 1.0); }

}  // namespace

const ColumnStats* CardinalityEstimator::StatsFor(int column) const {
  if (stats_ == nullptr || column < 0 ||
      static_cast<size_t>(column) >= stats_->columns.size()) {
    return nullptr;
  }
  return &stats_->columns[static_cast<size_t>(column)];
}

double CardinalityEstimator::ColumnPredicateSelectivity(
    const Expr::ColumnPredicate& cp) const {
  const ColumnStats* cs = StatsFor(cp.column);
  if (cs == nullptr || cs->row_count == 0) {
    switch (cp.op) {
      case CompareOp::kEq:
        return defaults::kEqSelectivity;
      case CompareOp::kNe:
        return 1.0 - defaults::kEqSelectivity;
      default:
        return defaults::kRangeSelectivity;
    }
  }
  const double nonnull = 1.0 - cs->NullFraction();
  if (nonnull <= 0) return 0.0;  // all-NULL column matches nothing

  // Equality / inequality through NDV (uniform across distinct values).
  auto eq_sel = [&]() -> double {
    if (cs->ndv == 0) return 0.0;
    if (cs->has_range && !cp.constant.is_null() &&
        cp.constant.type() != ValueType::kString) {
      double c = cp.constant.AsDouble();
      if (c < cs->min || c > cs->max) return 0.0;
    }
    return nonnull / static_cast<double>(cs->ndv);
  };

  switch (cp.op) {
    case CompareOp::kEq:
      return Clamp01(eq_sel());
    case CompareOp::kNe:
      return Clamp01(nonnull - eq_sel());
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: {
      if (cp.constant.is_null()) return 0.0;
      if (cp.constant.type() == ValueType::kString || !cs->has_range) {
        return Clamp01(nonnull * defaults::kRangeSelectivity);
      }
      double c = cp.constant.AsDouble();
      bool inclusive = cp.op == CompareOp::kLe || cp.op == CompareOp::kGe;
      double below = cs->FractionBelow(c, inclusive);
      double frac =
          (cp.op == CompareOp::kLt || cp.op == CompareOp::kLe) ? below
                                                               : 1.0 - below;
      return Clamp01(nonnull * frac);
    }
  }
  return defaults::kGenericSelectivity;
}

double CardinalityEstimator::Selectivity(const ExprPtr& pred) const {
  if (pred == nullptr) return 1.0;
  switch (pred->kind()) {
    case Expr::Kind::kAnd:
      return Clamp01(Selectivity(pred->children()[0]) *
                     Selectivity(pred->children()[1]));
    case Expr::Kind::kOr: {
      double a = Selectivity(pred->children()[0]);
      double b = Selectivity(pred->children()[1]);
      return Clamp01(a + b - a * b);
    }
    case Expr::Kind::kNot:
      return Clamp01(1.0 - Selectivity(pred->children()[0]));
    case Expr::Kind::kIsNull: {
      const ExprPtr& child = pred->children()[0];
      if (child->kind() == Expr::Kind::kColumn) {
        const ColumnStats* cs = StatsFor(child->column_index());
        if (cs != nullptr && cs->row_count > 0) return cs->NullFraction();
      }
      return defaults::kIsNullSelectivity;
    }
    case Expr::Kind::kCompare: {
      Expr::ColumnPredicate cp;
      if (pred->AsColumnPredicate(&cp)) {
        return ColumnPredicateSelectivity(cp);
      }
      // col = col within one table, arithmetic comparisons, ...
      return pred->compare_op() == CompareOp::kEq
                 ? defaults::kEqSelectivity
                 : defaults::kGenericSelectivity;
    }
    case Expr::Kind::kConst: {
      // Constant predicate: true keeps everything, false/NULL nothing.
      const Value& v = pred->constant();
      return (!v.is_null() && v.AsBool()) ? 1.0 : 0.0;
    }
    default:
      return defaults::kGenericSelectivity;
  }
}

double EquiJoinSelectivity(const TableStats* lstats, int lcol, double lrows,
                           const TableStats* rstats, int rcol, double rrows) {
  auto ndv_of = [](const TableStats* s, int col, double rows) -> double {
    if (s != nullptr && col >= 0 &&
        static_cast<size_t>(col) < s->columns.size() &&
        s->columns[static_cast<size_t>(col)].ndv > 0) {
      return static_cast<double>(s->columns[static_cast<size_t>(col)].ndv);
    }
    return std::max(rows, 1.0);  // documented fallback: rows stand in
  };
  double ndv = std::max(ndv_of(lstats, lcol, lrows),
                        ndv_of(rstats, rcol, rrows));
  return ndv <= 1.0 ? 1.0 : 1.0 / ndv;
}

}  // namespace opt
}  // namespace oltap
