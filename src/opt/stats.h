#ifndef OLTAP_OPT_STATS_H_
#define OLTAP_OPT_STATS_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/table.h"
#include "storage/value.h"

namespace oltap {
namespace opt {

// KMV (k-minimum-values) distinct sketch: keeps the k smallest 64-bit
// hashes seen. With fewer than k distinct hashes the count is exact;
// beyond that the k-th smallest hash h_k estimates NDV as
// (k-1) / (h_k / 2^64) — the classic bottom-k estimator every surveyed
// optimizer's ANALYZE uses in some form. Deterministic: no sampling, the
// estimate depends only on the value set.
class DistinctSketch {
 public:
  static constexpr size_t kK = 1024;

  void Add(uint64_t hash);
  // Estimated number of distinct values (exact below kK).
  uint64_t Estimate() const;

 private:
  std::set<uint64_t> smallest_;  // at most kK entries, largest evicted
};

// Per-column statistics collected by ANALYZE. Numeric columns (int64,
// double) carry a min/max range and an equi-depth histogram over a
// deterministic reservoir sample; string columns carry NDV and null counts
// only (equality estimates still work through NDV, range estimates fall
// back to the documented defaults in cardinality.h).
struct ColumnStats {
  uint64_t row_count = 0;   // rows seen (including nulls)
  uint64_t null_count = 0;
  uint64_t ndv = 0;         // distinct non-null values (estimated)

  // Numeric domain; false for string columns and all-NULL columns.
  bool has_range = false;
  double min = 0;
  double max = 0;

  // Equi-depth histogram: `bounds[i]` is the upper edge of bucket i; each
  // bucket holds ~1/bounds.size() of the non-null values. Empty when the
  // column had too few values to be worth bucketing.
  std::vector<double> bounds;

  double NullFraction() const {
    return row_count == 0
               ? 0.0
               : static_cast<double>(null_count) /
                     static_cast<double>(row_count);
  }

  // Fraction of non-null values strictly below (or below-or-equal, when
  // `inclusive`) `c`, via the histogram when present, linear interpolation
  // over [min, max] otherwise. Returns a value in [0, 1].
  double FractionBelow(double c, bool inclusive) const;
};

// Table-level statistics snapshot, attached to the catalog by ANALYZE and
// consumed by the cardinality estimator and cost model.
struct TableStats {
  std::string table;
  uint64_t row_count = 0;
  Timestamp analyze_ts = 0;
  // Table::mod_count() at collection time; the difference against the
  // live counter is the staleness SHOW STATS surfaces.
  uint64_t mod_count_at_analyze = 0;
  std::vector<ColumnStats> columns;
};

// Scans the rows visible at `read_ts` and builds full statistics. One pass,
// deterministic (fixed-seed reservoir for histograms), safe on empty
// tables (all counts zero, no histogram).
TableStats AnalyzeTable(const Table& table, Timestamp read_ts);

}  // namespace opt
}  // namespace oltap

#endif  // OLTAP_OPT_STATS_H_
