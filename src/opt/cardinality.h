#ifndef OLTAP_OPT_CARDINALITY_H_
#define OLTAP_OPT_CARDINALITY_H_

#include "exec/expr.h"
#include "opt/stats.h"

namespace oltap {
namespace opt {

// Every magic selectivity constant the optimizer falls back on when
// statistics are missing lives HERE and nowhere else (the stale-stats
// safety contract: a never-analyzed table plans with these, documented,
// defaults instead of dividing by zero).
namespace defaults {
// column = constant with no NDV information (System R's 1/10).
inline constexpr double kEqSelectivity = 0.1;
// column < constant with no range information (System R's 1/3).
inline constexpr double kRangeSelectivity = 1.0 / 3.0;
// column IS NULL with no null-count information.
inline constexpr double kIsNullSelectivity = 0.05;
// Any predicate shape the estimator does not understand.
inline constexpr double kGenericSelectivity = 0.25;
// Rows assumed for a table with no statistics AND no physical row count
// (never happens for catalog tables, but keeps arithmetic finite).
inline constexpr double kDefaultRowCount = 1000.0;
}  // namespace defaults

// Selectivity / cardinality estimation over one table's predicate tree
// (expressions bound to table-local column indices). `stats` may be null
// (never analyzed): everything degrades to the defaults above. `base_rows`
// is the table's current physical row count estimate, always supplied by
// the caller so empty-but-analyzed and grown-since-analyzed tables stay
// sane.
class CardinalityEstimator {
 public:
  CardinalityEstimator(const TableStats* stats, double base_rows)
      : stats_(stats), base_rows_(base_rows < 0 ? 0 : base_rows) {}

  double base_rows() const { return base_rows_; }

  // Selectivity of a (possibly compound) predicate, in [0, 1].
  double Selectivity(const ExprPtr& pred) const;

  // Estimated rows surviving `pred` (null = no predicate).
  double EstimateRows(const ExprPtr& pred) const {
    return pred == nullptr ? base_rows_ : base_rows_ * Selectivity(pred);
  }

 private:
  double ColumnPredicateSelectivity(const Expr::ColumnPredicate& cp) const;
  const ColumnStats* StatsFor(int column) const;

  const TableStats* stats_;
  double base_rows_;
};

// Selectivity of the equi-join l.lcol = r.rcol: 1 / max(NDV_l, NDV_r),
// the textbook containment assumption. Missing stats fall back to the
// side's row count standing in for its NDV (exact for key columns, an
// overestimate of NDV — and therefore a conservative underestimate of the
// join output — otherwise).
double EquiJoinSelectivity(const TableStats* lstats, int lcol, double lrows,
                           const TableStats* rstats, int rcol, double rrows);

}  // namespace opt
}  // namespace oltap

#endif  // OLTAP_OPT_CARDINALITY_H_
