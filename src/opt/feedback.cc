#include "opt/feedback.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace oltap {
namespace opt {
namespace {

// q-error with a +1 smoothing floor so empty results (actual = 0) grade
// against "under one row" instead of dividing by zero.
double QError(double est, double actual) {
  double e = std::max(est, 1.0);
  double a = std::max(actual, 1.0);
  return std::max(e / a, a / e);
}

}  // namespace

std::optional<PlanFeedback::Entry> PlanFeedback::Lookup(
    const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return std::nullopt;
  ++it->second.uses;
  return it->second;
}

void PlanFeedback::RememberOrder(const std::string& fingerprint,
                                 std::vector<int> order) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[fingerprint];
  e.order = std::move(order);
}

double PlanFeedback::Observe(const std::string& fingerprint,
                             const std::vector<OpSample>& samples) {
  auto* registry = obs::MetricsRegistry::Default();
  auto* qhist = registry->GetHistogram("opt.qerror_x100");
  double worst = 1.0;
  for (const OpSample& s : samples) {
    if (s.est_rows < 0) continue;
    double q = QError(s.est_rows, s.actual_rows);
    worst = std::max(worst, q);
    qhist->Record(static_cast<uint64_t>(std::llround(q * 100.0)));
  }
  if (worst <= kQErrorReplanThreshold) return worst;

  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[fingerprint];
  if (!e.order.empty()) {
    e.order.clear();
    registry->GetCounter("opt.plan_invalidations")->Add(1);
  }
  for (const OpSample& s : samples) {
    if (s.scan_from_index < 0) continue;
    size_t idx = static_cast<size_t>(s.scan_from_index);
    if (e.scan_actual_rows.size() <= idx) {
      e.scan_actual_rows.resize(idx + 1, -1.0);
    }
    e.scan_actual_rows[idx] = s.actual_rows;
    e.has_actuals = true;
  }
  return worst;
}

size_t PlanFeedback::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace opt
}  // namespace oltap
