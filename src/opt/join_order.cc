#include "opt/join_order.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace oltap {
namespace opt {
namespace {

// Selectivity product of all edges connecting `r` to the subset `mask`;
// also reports whether any edge connects them.
double EdgeSelectivity(const JoinGraph& g, int r, uint32_t mask,
                       bool* connected) {
  double sel = 1.0;
  *connected = false;
  for (const JoinGraph::Edge& e : g.edges) {
    int other = -1;
    if (e.a == r) other = e.b;
    if (e.b == r) other = e.a;
    if (other < 0) continue;
    if ((mask >> other) & 1u) {
      sel *= e.selectivity;
      *connected = true;
    }
  }
  return sel;
}

// Cost tie within relative epsilon → deterministic lexicographic pick.
bool Better(double cost, const std::vector<int>& order, double best_cost,
            const std::vector<int>& best_order) {
  const double eps = 1e-9 * std::max({1.0, cost, best_cost});
  if (cost < best_cost - eps) return true;
  if (cost > best_cost + eps) return false;
  return order < best_order;
}

JoinOrderResult OrderGreedy(const JoinGraph& g, const CostModel& cm) {
  const int n = static_cast<int>(g.rel_rows.size());
  JoinOrderResult res;
  std::vector<bool> placed(n, false);

  // Seed with the smallest relation (ties → smallest index).
  int first = 0;
  for (int i = 1; i < n; ++i) {
    if (g.rel_rows[i] < g.rel_rows[first]) first = i;
  }
  placed[first] = true;
  res.order.push_back(first);
  res.interm_rows.push_back(g.rel_rows[first]);
  uint32_t mask = 1u << first;

  double rows = g.rel_rows[first];
  for (int step = 1; step < n; ++step) {
    int pick = -1;
    double pick_rows = std::numeric_limits<double>::infinity();
    bool pick_connected = false;
    for (int r = 0; r < n; ++r) {
      if (placed[r]) continue;
      bool connected;
      double sel = EdgeSelectivity(g, r, mask, &connected);
      double out = rows * g.rel_rows[r] * sel;
      // Prefer connected extensions; cross products only when forced.
      if (pick >= 0 && pick_connected && !connected) continue;
      bool upgrade = connected && !pick_connected;
      if (pick < 0 || upgrade || out < pick_rows) {
        pick = r;
        pick_rows = out;
        pick_connected = connected;
      }
    }
    res.total_cost += cm.CostHashJoin(rows, g.rel_rows[pick], pick_rows).cost;
    rows = pick_rows;
    placed[pick] = true;
    mask |= 1u << pick;
    res.order.push_back(pick);
    res.interm_rows.push_back(rows);
  }
  return res;
}

}  // namespace

JoinOrderResult OrderJoins(const JoinGraph& graph, const CostModel& cm) {
  const int n = static_cast<int>(graph.rel_rows.size());
  JoinOrderResult res;
  if (n == 0) return res;
  if (n == 1) {
    res.order = {0};
    res.interm_rows = {graph.rel_rows[0]};
    res.used_dp = true;
    return res;
  }
  if (n > kDpMaxRelations) return OrderGreedy(graph, cm);

  // DPsize over subsets, left-deep: best[S] is the cheapest order whose
  // relations are exactly S, extended one relation at a time.
  const uint32_t full = (1u << n) - 1;
  struct State {
    double cost = std::numeric_limits<double>::infinity();
    double rows = 0;
    std::vector<int> order;
    std::vector<double> interm;
  };
  std::vector<State> best(full + 1);
  for (int r = 0; r < n; ++r) {
    State& s = best[1u << r];
    s.cost = 0;
    s.rows = graph.rel_rows[r];
    s.order = {r};
    s.interm = {s.rows};
  }

  for (uint32_t S = 1; S <= full; ++S) {
    if ((S & (S - 1)) == 0) continue;  // singletons seeded above
    State& cur = best[S];
    // Pass 1: connected extensions only; pass 2 (cross products) runs only
    // if the subset has no connected way to form.
    for (int pass = 0; pass < 2 && cur.order.empty(); ++pass) {
      for (int r = 0; r < n; ++r) {
        if (((S >> r) & 1u) == 0) continue;
        uint32_t prev = S & ~(1u << r);
        const State& p = best[prev];
        if (p.order.empty()) continue;
        bool connected;
        double sel = EdgeSelectivity(graph, r, prev, &connected);
        if (pass == 0 && !connected) continue;
        double rows = p.rows * graph.rel_rows[r] * sel;
        double cost =
            p.cost + cm.CostHashJoin(p.rows, graph.rel_rows[r], rows).cost;
        std::vector<int> order = p.order;
        order.push_back(r);
        if (cur.order.empty() || Better(cost, order, cur.cost, cur.order)) {
          cur.cost = cost;
          cur.rows = rows;
          cur.order = std::move(order);
          cur.interm = p.interm;
          cur.interm.push_back(rows);
        }
      }
    }
  }

  const State& win = best[full];
  res.order = win.order;
  res.interm_rows = win.interm;
  res.total_cost = win.cost;
  res.used_dp = true;
  return res;
}

}  // namespace opt
}  // namespace oltap
