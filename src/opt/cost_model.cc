#include "opt/cost_model.h"

#include <algorithm>

namespace oltap {
namespace opt {

const char* AccessPathToString(AccessPath p) {
  switch (p) {
    case AccessPath::kAuto:
      return "auto";
    case AccessPath::kRow:
      return "row";
    case AccessPath::kColumn:
      return "column";
  }
  return "?";
}

double EstimateZoneSurvival(
    const Table& table, Timestamp read_ts,
    const std::vector<Expr::ColumnPredicate>& pushed) {
  if (pushed.empty()) return 1.0;
  std::optional<ColumnTable::Snapshot> snap =
      table.GetColumnSnapshot(read_ts);
  if (!snap.has_value() || snap->main == nullptr ||
      snap->main->num_rows() == 0) {
    return 1.0;
  }
  const MainFragment& main = *snap->main;
  double survival = 1.0;
  for (const Expr::ColumnPredicate& cp : pushed) {
    if (cp.column < 0 ||
        static_cast<size_t>(cp.column) >= main.num_columns()) {
      continue;
    }
    const ColumnSegment& seg = main.column(static_cast<size_t>(cp.column));
    // ScanCompareZoned only prunes encodings with a code-space rewrite;
    // raw int64 and double segments scan in full regardless of the map.
    if (seg.encoding() == ColumnSegment::Encoding::kRaw) continue;
    if (seg.type() == ValueType::kString) continue;  // code-domain bounds
    if (cp.constant.is_null() || cp.constant.type() == ValueType::kString) {
      continue;
    }
    const ZoneMap& zm = seg.zone_map();
    if (zm.num_zones() == 0) continue;
    size_t matching = 0;
    double c = cp.constant.AsDouble();
    for (size_t z = 0; z < zm.num_zones(); ++z) {
      if (zm.ZoneMayMatch(z, cp.op, c)) ++matching;
    }
    survival = std::min(survival, static_cast<double>(matching) /
                                      static_cast<double>(zm.num_zones()));
  }
  return survival;
}

CostModel::ScanDecision CostModel::CostScan(
    const Table& table, Timestamp read_ts,
    const std::vector<Expr::ColumnPredicate>& pushed,
    double est_out_rows) const {
  est_out_rows = std::max(est_out_rows, 0.0);

  const bool has_row = table.row_table() != nullptr;
  const bool has_col = table.column_table() != nullptr;

  double row_rows = 0;
  if (has_row) {
    row_rows = static_cast<double>(table.row_table()->num_keys());
  }
  double main_rows = 0, delta_rows = 0;
  if (has_col) {
    const ColumnTable* ct = table.column_table();
    main_rows = static_cast<double>(ct->main_size());
    delta_rows = static_cast<double>(ct->delta_size());
  }

  ScanDecision row_side;
  row_side.path = AccessPath::kRow;
  row_side.out_rows = est_out_rows;
  row_side.cost = row_rows * kRowScanPerRow;

  ScanDecision col_side;
  col_side.path = AccessPath::kColumn;
  col_side.out_rows = est_out_rows;
  col_side.zone_survival = has_col
                               ? EstimateZoneSurvival(table, read_ts, pushed)
                               : 1.0;
  col_side.cost = main_rows * kColumnScanPerRow * col_side.zone_survival +
                  delta_rows * kRowScanPerRow +
                  est_out_rows * kGatherPerRow;

  if (has_col && has_row) return col_side.cost <= row_side.cost ? col_side
                                                                : row_side;
  if (has_col) return col_side;
  return row_side;
}

CostModel::JoinCost CostModel::CostHashJoin(double build_rows,
                                            double probe_rows,
                                            double out_rows) const {
  JoinCost jc;
  build_rows = std::max(build_rows, 0.0);
  probe_rows = std::max(probe_rows, 0.0);
  out_rows = std::max(out_rows, 0.0);
  jc.cost = build_rows * kHashBuildPerRow + probe_rows * kHashProbePerRow +
            out_rows * kJoinOutputPerRow;
  jc.build_bytes = build_rows * kBuildBytesPerRow;
  return jc;
}

}  // namespace opt
}  // namespace oltap
