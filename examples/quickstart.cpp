// Quickstart: the embeddable HTAP engine in ~60 lines.
//
//   * create a dual-format table (row mirror for OLTP, column mirror for
//     analytics),
//   * run transactional DML through SQL,
//   * run analytic queries against the same live data,
//   * use an explicit multi-statement transaction,
//   * merge the delta and watch results stay identical.
//
// Build: cmake --build build && ./build/examples/example_quickstart

#include <cstdio>

#include "sql/session.h"

int main() {
  oltap::Database db;

  auto check = [](const oltap::Result<oltap::QueryResult>& r) {
    if (!r.ok()) {
      std::fprintf(stderr, "SQL error: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    return r.value();
  };

  check(db.Execute(
      "CREATE TABLE orders (id BIGINT NOT NULL, customer TEXT, "
      "region TEXT, amount DOUBLE, PRIMARY KEY (id)) FORMAT DUAL"));

  check(db.Execute(
      "INSERT INTO orders VALUES "
      "(1, 'ada',   'eu', 120.0), "
      "(2, 'boole', 'us',  80.0), "
      "(3, 'curie', 'eu', 200.0), "
      "(4, 'dirac', 'us',  60.0), "
      "(5, 'erdos', 'ap', 150.0)"));

  std::printf("-- All orders --\n%s\n",
              check(db.Execute("SELECT * FROM orders ORDER BY id"))
                  .ToString()
                  .c_str());

  std::printf(
      "-- Revenue by region --\n%s\n",
      check(db.Execute("SELECT region, COUNT(*) AS orders_count, "
                       "SUM(amount) AS revenue FROM orders "
                       "GROUP BY region ORDER BY revenue DESC"))
          .ToString()
          .c_str());

  // A multi-statement transaction: both changes commit atomically.
  {
    auto txn = db.txn_manager()->Begin();
    check(db.ExecuteIn(txn.get(),
                       "UPDATE orders SET amount = amount + 5.0 "
                       "WHERE region = 'eu'"));
    check(db.ExecuteIn(txn.get(),
                       "INSERT INTO orders VALUES (6, 'fermi', 'eu', 90.0)"));
    oltap::Status st = db.txn_manager()->Commit(txn.get());
    if (!st.ok()) {
      std::fprintf(stderr, "commit failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::printf(
      "-- After transaction --\n%s\n",
      check(db.Execute("SELECT region, SUM(amount) AS revenue FROM orders "
                       "GROUP BY region ORDER BY region"))
          .ToString()
          .c_str());

  // Merge the write-optimized delta into the read-optimized main; results
  // are identical, scans just got faster.
  size_t rows = db.MergeAll();
  std::printf("merged; main now holds %zu rows across tables\n\n", rows);

  std::printf(
      "-- Same query after merge --\n%s\n",
      check(db.Execute("SELECT region, SUM(amount) AS revenue FROM orders "
                       "GROUP BY region ORDER BY region"))
          .ToString()
          .c_str());
  return 0;
}
