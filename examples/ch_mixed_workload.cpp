// CH-benCHmark mixed run — the canonical OLTAP experiment: TPC-C
// transactions hammering the database while TPC-H-style analytics read the
// same tables, with the delta merge running in between.
//
// Prints transactional throughput, the analytic query set with live
// results, and the abort rate the optimistic transaction layer absorbed.
//
// Build: cmake --build build && ./build/examples/example_ch_mixed_workload

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/clock.h"
#include "workload/chbench.h"

int main() {
  oltap::Database db;
  oltap::CHConfig config;
  config.warehouses = 2;
  config.districts_per_warehouse = 5;
  config.customers_per_district = 50;
  config.items = 500;
  config.initial_orders_per_district = 20;

  oltap::CHBenchmark bench(&db, config);
  if (!bench.CreateTables().ok() || !bench.Load().ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  std::printf("loaded CH-benCHmark: %d warehouses\n\n", config.warehouses);

  // Phase 1: pure transactional burst.
  oltap::CHTxnStats stats;
  {
    oltap::Rng rng(1);
    oltap::Stopwatch timer;
    constexpr int kTxns = 3000;
    for (int i = 0; i < kTxns; ++i) {
      oltap::Status st = bench.RunMixed(&rng, &stats, 10);
      if (!st.ok()) {
        std::fprintf(stderr, "txn failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    double secs = timer.ElapsedSeconds();
    std::printf(
        "phase 1: %d transactions in %.2fs (%.0f txn/s), %llu retries\n"
        "  mix: %llu NewOrder, %llu Payment, %llu OrderStatus, "
        "%llu Delivery, %llu StockLevel\n\n",
        kTxns, secs, kTxns / secs,
        static_cast<unsigned long long>(stats.aborts),
        static_cast<unsigned long long>(stats.new_order),
        static_cast<unsigned long long>(stats.payment),
        static_cast<unsigned long long>(stats.order_status),
        static_cast<unsigned long long>(stats.delivery),
        static_cast<unsigned long long>(stats.stock_level));
  }

  // Phase 2: analytics concurrent with more transactions.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> txns_during{0};
  std::thread oltp([&] {
    oltap::Rng rng(2);
    oltap::CHTxnStats s;
    while (!stop.load(std::memory_order_acquire)) {
      if (bench.RunMixed(&rng, &s, 20).ok()) {
        txns_during.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::printf("phase 2: analytic query set over the live database\n");
  for (size_t q = 0; q < oltap::CHBenchmark::Queries().size(); ++q) {
    oltap::Stopwatch timer;
    auto r = bench.RunQuery(q);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   r.status().ToString().c_str());
      stop.store(true);
      oltp.join();
      return 1;
    }
    std::printf("\n[%s] %.2f ms, %zu rows\n%s",
                oltap::CHBenchmark::Queries()[q].name.c_str(),
                timer.ElapsedMicros() / 1000.0, r->rows.size(),
                r->ToString(5).c_str());
    if (q == 5) {
      size_t merged = db.MergeAll();
      std::printf("\n>>> merged deltas mid-stream (%zu rows in new mains); "
                  "queries continue unaffected\n",
                  merged);
    }
  }
  stop.store(true);
  oltp.join();
  std::printf(
      "\nphase 2 complete: %llu transactions committed while the analytic "
      "set ran — operational analytics on one engine.\n",
      static_cast<unsigned long long>(txns_during.load()));
  return 0;
}
