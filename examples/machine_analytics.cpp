// Machine-data analytics — the tutorial's first motivating scenario (§1):
// a data center streams metrics from hosts while operators run ad-hoc
// aggregates over the freshest data, with no ETL lag.
//
// This example runs a live loop: an ingest thread appends telemetry
// batches transactionally; the main thread plays the operator, asking
// real-time questions between batches; a background merge keeps the
// columnar main fresh. Watch the sample counts in the query results grow
// as ingest proceeds — analytics over data that is seconds old.
//
// Build: cmake --build build && ./build/examples/example_machine_analytics

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "workload/telemetry.h"

int main() {
  oltap::Database db;
  oltap::TelemetryWorkload::Config config;
  config.num_hosts = 40;
  config.num_metrics = 8;
  oltap::TelemetryWorkload telemetry(&db, config);
  if (!telemetry.CreateTable().ok()) return 1;

  std::atomic<bool> stop{false};
  std::atomic<int64_t> logical_time{0};

  // Continuous ingest: 500 readings per batch, like a fleet reporting in.
  std::thread ingester([&] {
    while (!stop.load(std::memory_order_acquire)) {
      int64_t t = logical_time.fetch_add(1000);
      if (!telemetry.IngestBatch(t, 500).ok()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  // Periodic delta merge (the freshness knob).
  std::thread merger([&] {
    while (!stop.load(std::memory_order_acquire)) {
      db.MergeAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  auto run = [&](const char* title, const std::string& sql) {
    auto r = db.Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
      return;
    }
    std::printf("-- %s --\n%s\n", title, r->ToString(8).c_str());
  };

  for (int round = 0; round < 5; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    int64_t now = logical_time.load(std::memory_order_acquire);
    int64_t window = std::max<int64_t>(0, now - 20000);
    std::printf("==== operator round %d (ingested so far: %lld rows) ====\n",
                round + 1,
                static_cast<long long>(telemetry.rows_ingested()));
    run("Average per metric over the recent window",
        oltap::TelemetryWorkload::AvgByMetricSince(window));
    run("Hottest hosts right now",
        oltap::TelemetryWorkload::HottestHosts(window, 5));
  }
  run("Who is emitting cpu.util?",
      oltap::TelemetryWorkload::MetricHistogram("cpu.util"));

  stop.store(true);
  ingester.join();
  merger.join();
  std::printf("done; total rows ingested: %lld\n",
              static_cast<long long>(telemetry.rows_ingested()));
  return 0;
}
