// Social-retail trend detection — the tutorial's second motivating
// scenario (§1): analytic insight on "immediate surges of interest on
// social media platforms to derive targeted product trends in real time".
//
// The example streams background mention traffic, then injects a viral
// surge for one product and shows the trending query catching it within
// one ingest batch — the freshness a warehouse-with-ETL cannot offer.
//
// Build: cmake --build build && ./build/examples/example_retail_trends

#include <cstdio>

#include "workload/retail.h"

int main() {
  oltap::Database db;
  oltap::RetailWorkload::Config config;
  config.num_products = 150;
  config.num_regions = 6;
  oltap::RetailWorkload retail(&db, config);
  if (!retail.CreateTable().ok()) return 1;

  auto show = [&](const char* title, const std::string& sql) {
    auto r = db.Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("-- %s --\n%s\n", title, r->ToString(8).c_str());
  };

  // Phase 1: an hour of ordinary traffic (logical time 0..3600).
  for (int minute = 0; minute < 60; ++minute) {
    if (!retail.IngestBatch(minute * 60, 200).ok()) return 1;
  }
  show("Trending products, last 10 minutes (baseline)",
       oltap::RetailWorkload::TrendingSince(50 * 60, 5));

  // Phase 2: product 42 goes viral.
  std::printf(">>> product-42 starts trending on social media...\n\n");
  for (int minute = 60; minute < 70; ++minute) {
    if (!retail.IngestBatch(minute * 60, 300, /*surge_product=*/42).ok()) {
      return 1;
    }
  }

  show("Trending products, last 10 minutes (during the surge)",
       oltap::RetailWorkload::TrendingSince(60 * 60, 5));
  show("Where is product-42 surging?",
       oltap::RetailWorkload::ProductByRegion(42));
  show("Surge scores (recent mention counts)",
       oltap::RetailWorkload::SurgeScore(60 * 60, 5));

  // The same queries keep working as the delta merges into the main.
  db.MergeAll();
  show("Trending after merge (identical results, faster scans)",
       oltap::RetailWorkload::TrendingSince(60 * 60, 5));

  std::printf("total mentions ingested: %lld\n",
              static_cast<long long>(retail.rows_ingested()));
  return 0;
}
