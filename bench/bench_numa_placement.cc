// E9 — NUMA-aware scale-up: data placement × task routing
// (Psaroudakis et al. [31], Oracle DBIM NUMA distribution [23,27]).
//
// Parallel SUM-WHERE over 64 fragments on a simulated 4-node topology with
// a 2x remote-bandwidth penalty (DESIGN.md §5). Expected shape:
//   partitioned + numa-local  — fastest: all accesses local, all nodes busy.
//   partitioned + work-steal  — slower: stealing crosses sockets and pays
//                               the remote penalty.
//   interleaved + work-steal  — similar to the above (≈1/4 local hits).
//   single-node + numa-local  — worst: one node's "memory controller"
//                               serves everything while three nodes idle.
//   single-node + work-steal  — all nodes busy but ~3/4 of accesses remote.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("numa_placement");

#include <map>
#include <memory>
#include <tuple>

#include "common/rng.h"
#include "numa/numa_scan.h"

namespace oltap {
namespace {

constexpr int kNodes = 4;
constexpr double kRemotePenalty = 2.0;
constexpr size_t kFragments = 64;
constexpr size_t kRowsPerFragment = 200000;

const NumaPartitionedTable& TableFor(PlacementPolicy placement) {
  static NumaTopology* topo = new NumaTopology(kNodes, kRemotePenalty);
  static std::map<int, std::unique_ptr<NumaPartitionedTable>>* cache =
      new std::map<int, std::unique_ptr<NumaPartitionedTable>>();
  int key = static_cast<int>(placement);
  auto it = cache->find(key);
  if (it == cache->end()) {
    Rng rng(17);
    it = cache
             ->emplace(key, std::make_unique<NumaPartitionedTable>(
                                topo, kFragments, kRowsPerFragment,
                                placement, &rng))
             .first;
  }
  return *it->second;
}

void RunCombo(benchmark::State& state, PlacementPolicy placement,
              TaskRouting routing) {
  const NumaPartitionedTable& table = TableFor(placement);
  uint64_t local = 0, remote = 0;
  for (auto _ : state) {
    NumaScanResult r = NumaParallelScan(table, 500, routing);
    benchmark::DoNotOptimize(r.sum);
    local = r.local_fragments;
    remote = r.remote_fragments;
  }
  state.SetItemsProcessed(state.iterations() * table.total_rows());
  state.counters["local_frags"] = static_cast<double>(local);
  state.counters["remote_frags"] = static_cast<double>(remote);
  state.SetLabel(std::string(PlacementPolicyToString(placement)) + "/" +
                 TaskRoutingToString(routing));
}

void BM_PartitionedLocal(benchmark::State& state) {
  RunCombo(state, PlacementPolicy::kPartitioned, TaskRouting::kNumaLocal);
}
void BM_PartitionedSteal(benchmark::State& state) {
  RunCombo(state, PlacementPolicy::kPartitioned, TaskRouting::kWorkSteal);
}
void BM_InterleavedSteal(benchmark::State& state) {
  RunCombo(state, PlacementPolicy::kInterleaved, TaskRouting::kWorkSteal);
}
void BM_SingleNodeLocal(benchmark::State& state) {
  RunCombo(state, PlacementPolicy::kSingleNode, TaskRouting::kNumaLocal);
}
void BM_SingleNodeSteal(benchmark::State& state) {
  RunCombo(state, PlacementPolicy::kSingleNode, TaskRouting::kWorkSteal);
}

BENCHMARK(BM_PartitionedLocal)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PartitionedSteal)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InterleavedSteal)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleNodeLocal)->UseRealTime()->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SingleNodeSteal)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oltap
