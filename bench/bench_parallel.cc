// E21 — Morsel-driven parallel execution (Leis et al., HyPer's
// morsel-driven parallelism; DESIGN.md §10).
//
// Reports three things:
//   (a) scan speedup: a selective scan-aggregate over an N-row columnar
//       table at DOP = hardware_concurrency vs. serial, with the fraction
//       of linear scaling achieved;
//   (b) partitioned join speedup: a hash join whose build and probe sides
//       both come from large parallel scans, same comparison;
//   (c) admission-governed DOP under mixed load: committed-txn p99 for
//       TPC-C clients while CH analytic clients run with grant-governed
//       parallelism on vs. parallelism off. The acceptance bar is that
//       granting analytics all cores through the workload manager (which
//       degrades them to serial when their queue backs up) costs OLTP
//       less than 10% p99.
//
// Reduced mode for CI smoke: OLTAP_PARALLEL_ROWS / OLTAP_PARALLEL_REPS /
// OLTAP_PARALLEL_DURATION_MS shrink the table, timing repetitions, and
// the mixed-load run.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("parallel");

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "sql/session.h"
#include "storage/table.h"
#include "workload/chbench.h"
#include "workload/driver.h"

namespace oltap {
namespace {

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : def;
}

size_t HardwareDop() {
  size_t hw = std::thread::hardware_concurrency();
  return hw < 2 ? 2 : hw;
}

size_t BenchRows() {
  return static_cast<size_t>(EnvInt("OLTAP_PARALLEL_ROWS", 4 << 20));
}

int BenchReps() {
  return static_cast<int>(EnvInt("OLTAP_PARALLEL_REPS", 5));
}

// Database with a fact table and a dimension table, bulk-loaded into the
// columnar main so every timing run scans identical fragments.
//   fact(id, fk, k, v): N rows, fk uniform over the dimension keys,
//                       k uniform [0,100), v uniform [0,1000).
//   dim(id, w):         N/64 rows.
struct ParallelWorld {
  Database db;
  std::unique_ptr<ThreadPool> pool;
  size_t rows;

  ParallelWorld() : rows(BenchRows()) {
    if (!db.Execute("CREATE TABLE fact (id INT, fk INT, k INT, v INT, "
                    "PRIMARY KEY (id)) FORMAT COLUMN")
             .ok()) {
      std::abort();
    }
    if (!db.Execute("CREATE TABLE dim (id INT, w INT, PRIMARY KEY (id)) "
                    "FORMAT COLUMN")
             .ok()) {
      std::abort();
    }
    const size_t dim_rows = std::max<size_t>(1, rows / 64);
    Rng rng(7);
    std::vector<Row> frows;
    frows.reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
      frows.push_back(
          Row{Value::Int64(static_cast<int64_t>(i)),
              Value::Int64(rng.UniformRange(
                  0, static_cast<int64_t>(dim_rows) - 1)),
              Value::Int64(rng.UniformRange(0, 99)),
              Value::Int64(rng.UniformRange(0, 999))});
    }
    if (!db.catalog()->GetTable("fact")->BulkLoadToMain(frows, 0).ok()) {
      std::abort();
    }
    std::vector<Row> drows;
    drows.reserve(dim_rows);
    for (size_t i = 0; i < dim_rows; ++i) {
      drows.push_back(Row{Value::Int64(static_cast<int64_t>(i)),
                          Value::Int64(rng.UniformRange(0, 9))});
    }
    if (!db.catalog()->GetTable("dim")->BulkLoadToMain(drows, 0).ok()) {
      std::abort();
    }
    if (!db.Execute("ANALYZE").ok()) std::abort();
    pool = std::make_unique<ThreadPool>(HardwareDop() - 1);
    db.set_exec_pool(pool.get());
  }

  // Best-of-reps wall time for `sql` at the given DOP.
  int64_t TimeQueryUs(const std::string& sql, size_t dop) {
    if (!db.Execute("SET max_dop = " + std::to_string(dop)).ok()) {
      std::abort();
    }
    int64_t best = INT64_MAX;
    for (int r = 0; r < BenchReps(); ++r) {
      int64_t t0 = SystemClock::Get()->NowMicros();
      auto res = db.Execute(sql);
      int64_t t1 = SystemClock::Get()->NowMicros();
      if (!res.ok()) std::abort();
      best = std::min(best, t1 - t0);
    }
    return best;
  }
};

ParallelWorld& SharedWorld() {
  static ParallelWorld* world = new ParallelWorld();
  return *world;
}

void ReportSpeedup(benchmark::State& state, const std::string& prefix,
                   int64_t serial_us, int64_t parallel_us, size_t dop) {
  double speedup =
      parallel_us > 0
          ? static_cast<double>(serial_us) / static_cast<double>(parallel_us)
          : 0;
  // Ideal speedup is bounded by physical cores, not by the DOP we ask
  // for: on a single-core host the parallel plan can at best tie serial,
  // and the fraction then measures pure morsel/merge overhead.
  size_t hw = std::thread::hardware_concurrency();
  double ideal = static_cast<double>(
      std::max<size_t>(1, std::min(dop, hw < 1 ? 1 : hw)));
  double linear_fraction = speedup / ideal;
  auto* rep = bench::Reporter::Get();
  rep->Metric(prefix + "_serial_us", static_cast<double>(serial_us));
  rep->Metric(prefix + "_parallel_us", static_cast<double>(parallel_us));
  rep->Metric(prefix + "_speedup", speedup);
  rep->Metric(prefix + "_linear_fraction", linear_fraction);
  rep->Metric(prefix + "_dop", static_cast<double>(dop));
  state.counters["speedup"] = speedup;
  state.counters["linear_fraction"] = linear_fraction;
  state.counters["dop"] = static_cast<double>(dop);
}

// (a) Scan-aggregate speedup at core count.
void BM_ParallelScanSpeedup(benchmark::State& state) {
  ParallelWorld& world = SharedWorld();
  const size_t dop = HardwareDop();
  const std::string sql =
      "SELECT COUNT(*), SUM(v), MIN(v), MAX(v) FROM fact WHERE k < 50";
  for (auto _ : state) {
    int64_t serial_us = world.TimeQueryUs(sql, 1);
    int64_t parallel_us = world.TimeQueryUs(sql, dop);
    ReportSpeedup(state, "scan", serial_us, parallel_us, dop);
  }
  state.SetItemsProcessed(state.iterations() * world.rows);
}
BENCHMARK(BM_ParallelScanSpeedup)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// (b) Partitioned hash-join speedup at core count (parallel partitioned
// build over dim, fused probe inside the fact scan's workers).
void BM_ParallelJoinSpeedup(benchmark::State& state) {
  ParallelWorld& world = SharedWorld();
  const size_t dop = HardwareDop();
  const std::string sql =
      "SELECT d.w, COUNT(*), SUM(f.v) FROM dim d "
      "JOIN fact f ON d.id = f.fk WHERE f.k < 50 GROUP BY d.w";
  for (auto _ : state) {
    int64_t serial_us = world.TimeQueryUs(sql, 1);
    int64_t parallel_us = world.TimeQueryUs(sql, dop);
    ReportSpeedup(state, "join", serial_us, parallel_us, dop);
  }
  state.SetItemsProcessed(state.iterations() * world.rows);
}
BENCHMARK(BM_ParallelJoinSpeedup)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// (c) OLTP tail latency under mixed load: grant-governed parallelism on
// (arg 1) vs. parallelism off (arg 0).
void BM_MixedLoadOltpTail(benchmark::State& state) {
  const bool parallel_on = state.range(0) != 0;
  const std::string suffix = parallel_on ? ".parallel_on" : ".parallel_off";
  for (auto _ : state) {
    CHConfig config;
    config.warehouses = 4;
    config.districts_per_warehouse = 10;
    config.customers_per_district = 100;
    config.items = 1000;
    config.initial_orders_per_district = 30;
    Database db;
    CHBenchmark bench(&db, config);
    if (!bench.CreateTables().ok()) std::abort();
    if (!bench.Load().ok()) std::abort();
    db.MergeAll();
    if (!db.Execute("ANALYZE").ok()) std::abort();

    std::unique_ptr<ThreadPool> pool;
    if (parallel_on) {
      pool = std::make_unique<ThreadPool>(HardwareDop() - 1);
      db.set_exec_pool(pool.get());
    }

    DriverOptions opts;
    opts.oltp_workers = 4;
    opts.olap_workers = 3;
    // One admission slot for OLAP: with three closed-loop analytic
    // clients its queue is usually nonempty, so most admissions are
    // degraded — the governed path this experiment measures.
    opts.wm_workers = 5;
    opts.duration_ms = EnvInt("OLTAP_PARALLEL_DURATION_MS", 3000);
    opts.think_time_us = 1000;
    opts.bind_home_warehouse = true;
    opts.policy = SchedulingPolicy::kOltpPriority;
    // Analytics get every core when the system is healthy; the first
    // thing admission takes back under pressure is their parallelism.
    opts.olap_max_dop = parallel_on ? HardwareDop() : 1;
    opts.degraded_dop = 1;
    opts.olap_degrade_threshold = 1;
    ConcurrentDriver driver(&bench, opts);
    DriverReport report = driver.Run();

    auto* rep = bench::Reporter::Get();
    rep->Metric("oltp_p99_us" + suffix,
                static_cast<double>(report.oltp_latency.p99_us));
    rep->Metric("oltp_txn_s" + suffix, report.oltp_txn_per_s);
    rep->Metric("olap_q_s" + suffix, report.olap_queries_per_s);
    rep->Metric("olap_p95_us" + suffix,
                static_cast<double>(report.olap_latency.p95_us));
    state.counters["oltp_p99_us"] =
        static_cast<double>(report.oltp_latency.p99_us);
    state.counters["oltp_txn_s"] = report.oltp_txn_per_s;
    state.counters["olap_q_s"] = report.olap_queries_per_s;
  }
}
BENCHMARK(BM_MixedLoadOltpTail)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

const bool config_reported = [] {
  auto* rep = bench::Reporter::Get();
  rep->Config("rows", static_cast<double>(BenchRows()));
  rep->Config("reps", static_cast<double>(BenchReps()));
  rep->Config("dop", static_cast<double>(HardwareDop()));
  return true;
}();

}  // namespace
}  // namespace oltap
