// E6 — Shared scans: circular scan [12] / clock scan (Crescando [39]) /
// QPipe-style query attach.
//
// With q concurrent scan queries over the same 4M-row fragment:
//   independent — q full passes over the data (cache-thrashing baseline),
//   shared-once — one chunked pass serves all q (cache reuse),
//   clock       — the continuously rotating scan; per-query latency is
//                 bounded by two rotations regardless of q (predictability).
// Expected shape: independent cost grows linearly in q; shared cost grows
// far slower (per-chunk evaluation is the only per-query work); clock
// throughput matches shared while adding the latency bound.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("shared_scan");

#include <future>
#include <memory>

#include "common/rng.h"
#include "exec/shared_scan.h"
#include "storage/table.h"

namespace oltap {
namespace {

constexpr size_t kRows = 4 << 20;

const MainFragment& SharedFragment() {
  static std::shared_ptr<const MainFragment>* frag = [] {
    Schema schema = SchemaBuilder()
                        .AddInt64("id", false)
                        .AddInt64("filter", false)
                        .AddInt64("value", false)
                        .SetKey({"id"})
                        .Build();
    auto* table = new Table("t", schema, TableFormat::kColumn);
    Rng rng(1);
    std::vector<Row> rows;
    rows.reserve(kRows);
    for (size_t i = 0; i < kRows; ++i) {
      rows.push_back(Row{Value::Int64(static_cast<int64_t>(i)),
                         Value::Int64(rng.UniformRange(0, 999)),
                         Value::Int64(rng.UniformRange(0, 100))});
    }
    if (!table->BulkLoadToMain(rows, 1).ok()) std::abort();
    return new std::shared_ptr<const MainFragment>(
        table->GetColumnSnapshot(1)->main);
  }();
  return **frag;
}

std::vector<SimpleAggQuery> MakeQueries(int q) {
  Rng rng(3);
  std::vector<SimpleAggQuery> queries;
  for (int i = 0; i < q; ++i) {
    SimpleAggQuery query;
    query.filter_col = 1;
    query.op = static_cast<CompareOp>(rng.Uniform(6));
    query.constant = rng.UniformRange(0, 999);
    query.agg_col = 2;
    queries.push_back(query);
  }
  return queries;
}

void BM_IndependentScans(benchmark::State& state) {
  const MainFragment& main = SharedFragment();
  auto queries = MakeQueries(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto results = ExecuteIndependent(main, queries);
    benchmark::DoNotOptimize(results[0].sum);
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
  state.counters["queries"] = static_cast<double>(queries.size());
}

void BM_SharedOnePass(benchmark::State& state) {
  const MainFragment& main = SharedFragment();
  auto queries = MakeQueries(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto results = ExecuteSharedOnce(main, queries, 64 * 1024);
    benchmark::DoNotOptimize(results[0].sum);
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
  state.counters["queries"] = static_cast<double>(queries.size());
}

void BM_ClockScanBatch(benchmark::State& state) {
  const MainFragment& main = SharedFragment();
  auto queries = MakeQueries(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ClockScanServer server(&main, 256 * 1024);
    std::vector<std::future<ScanQueryResult>> futures;
    futures.reserve(queries.size());
    for (const SimpleAggQuery& q : queries) {
      futures.push_back(server.Submit(q));
    }
    double sum = 0;
    for (auto& f : futures) sum += f.get().sum;
    benchmark::DoNotOptimize(sum);
    server.Stop();
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
  state.counters["queries"] = static_cast<double>(queries.size());
}

BENCHMARK(BM_IndependentScans)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SharedOnePass)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClockScanBatch)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oltap
