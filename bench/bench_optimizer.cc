// E16 — Cost-based optimization (System R [36] lineage: statistics,
// join ordering, access-path selection).
//
// Two A/B comparisons:
//   1. Join order: a star query written in the worst FROM order (fact
//      first), executed with the optimizer off (FROM-order joins, the
//      pre-optimizer planner) vs. on (DPsize order over ANALYZE stats).
//      Expected: the optimizer builds hash tables on the filtered
//      dimensions instead of the fact table and wins by the ratio of
//      build-side sizes.
//   2. Access path: a selective aggregate over a merged dual-format
//      table with the scan forced to the row mirror, forced to the
//      column mirror, and left to the cost model. Expected: the model
//      picks whichever forced side measured faster.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("optimizer");

#include <memory>
#include <string>

#include "exec/operators.h"
#include "sql/session.h"

namespace oltap {
namespace {

// Star schema: a fact table joining two small, selective dimensions.
constexpr int kFactRows = 100000;
constexpr int kDimARows = 100;
constexpr int kDimBRows = 1000;

Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    auto ok = [](const Result<QueryResult>& r) {
      if (!r.ok()) std::abort();
    };
    ok(d->Execute("CREATE TABLE fact (id BIGINT NOT NULL, a_id BIGINT, "
                  "b_id BIGINT, amount DOUBLE, PRIMARY KEY (id)) "
                  "FORMAT COLUMN"));
    ok(d->Execute("CREATE TABLE dim_a (a_id BIGINT NOT NULL, region TEXT, "
                  "PRIMARY KEY (a_id)) FORMAT ROW"));
    ok(d->Execute("CREATE TABLE dim_b (b_id BIGINT NOT NULL, grp BIGINT, "
                  "PRIMARY KEY (b_id)) FORMAT ROW"));
    ok(d->Execute("CREATE TABLE dual_t (id BIGINT NOT NULL, k BIGINT, "
                  "v DOUBLE, PRIMARY KEY (id)) FORMAT DUAL"));

    std::string sql;
    for (int i = 0; i < kFactRows; ++i) {
      sql += (sql.empty() ? "INSERT INTO fact VALUES " : ", ");
      sql += "(" + std::to_string(i) + ", " + std::to_string(i % kDimARows) +
             ", " + std::to_string(i % kDimBRows) + ", " +
             std::to_string((i % 97) * 1.5) + ")";
      if (i % 500 == 499) {
        ok(d->Execute(sql));
        sql.clear();
      }
    }
    if (!sql.empty()) ok(d->Execute(sql));
    sql.clear();
    for (int i = 0; i < kDimARows; ++i) {
      sql += (sql.empty() ? "INSERT INTO dim_a VALUES " : ", ");
      sql += "(" + std::to_string(i) + ", 'r" + std::to_string(i % 4) + "')";
    }
    ok(d->Execute(sql));
    sql.clear();
    for (int i = 0; i < kDimBRows; ++i) {
      sql += (sql.empty() ? "INSERT INTO dim_b VALUES " : ", ");
      sql += "(" + std::to_string(i) + ", " + std::to_string(i % 10) + ")";
      if (i % 500 == 499) {
        ok(d->Execute(sql));
        sql.clear();
      }
    }
    if (!sql.empty()) ok(d->Execute(sql));
    sql.clear();
    for (int i = 0; i < 50000; ++i) {
      sql += (sql.empty() ? "INSERT INTO dual_t VALUES " : ", ");
      sql += "(" + std::to_string(i) + ", " + std::to_string(i % 1000) +
             ", 1.0)";
      if (i % 500 == 499) {
        ok(d->Execute(sql));
        sql.clear();
      }
    }
    if (!sql.empty()) ok(d->Execute(sql));
    d->MergeAll();
    ok(d->Execute("ANALYZE"));
    return d;
  }();
  return db;
}

// The star query, deliberately written fact-first so FROM order is the
// worst plan (builds a 100k-row hash table, then another full-width one).
const char* kStarQuery =
    "SELECT dim_b.grp, COUNT(*), SUM(fact.amount) "
    "FROM fact JOIN dim_a ON fact.a_id = dim_a.a_id "
    "JOIN dim_b ON fact.b_id = dim_b.b_id "
    "WHERE dim_a.region = 'r0' AND dim_b.grp = 3 "
    "GROUP BY dim_b.grp";

void BM_StarJoin(benchmark::State& state) {
  Database* db = SharedDb();
  const bool optimize = state.range(0) != 0;
  db->set_optimizer_enabled(optimize);
  size_t rows = 0;
  for (auto _ : state) {
    auto r = db->Execute(kStarQuery);
    if (!r.ok()) std::abort();
    rows = r->rows.size();
  }
  db->set_optimizer_enabled(true);
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(state.iterations() * kFactRows);
  state.SetLabel(optimize ? "optimizer=on" : "optimizer=off");
  bench::Reporter::Get()->Metric(
      optimize ? "star_join_on_items_s" : "star_join_off_items_s",
      state.iterations() * static_cast<double>(kFactRows));
}
BENCHMARK(BM_StarJoin)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Access-path A/B: the same selective scan forced down each mirror of the
// dual table, plus the path the cost model actually picks.
void BM_AccessPath(benchmark::State& state) {
  Database* db = SharedDb();
  Table* t = db->catalog()->GetTable("dual_t");
  if (t == nullptr) std::abort();
  Timestamp ts = db->txn_manager()->oracle()->CurrentReadTs();
  ExprPtr pred = Expr::Compare(CompareOp::kEq,
                               Expr::Column(1, ValueType::kInt64),
                               Expr::Constant(Value::Int64(7)));
  auto path = static_cast<ScanOp::Path>(state.range(0));
  size_t n = 0;
  for (auto _ : state) {
    ScanOp scan(t, ts, pred, {}, path);
    n = CollectRows(&scan).size();
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * 50000);
  state.SetLabel(path == ScanOp::Path::kRow      ? "path=row"
                 : path == ScanOp::Path::kColumn ? "path=column"
                                                 : "path=auto");
}
BENCHMARK(BM_AccessPath)
    ->Arg(static_cast<int>(ScanOp::Path::kRow))
    ->Arg(static_cast<int>(ScanOp::Path::kColumn))
    ->Arg(static_cast<int>(ScanOp::Path::kAuto))
    ->Unit(benchmark::kMicrosecond);

// Feedback loop: repeated execution of a statement planned from default
// (no-stats) estimates. The first run misestimates, crosses the q-error
// threshold, and re-plans from measured cardinalities; steady state is
// the corrected plan.
void BM_FeedbackReplan(benchmark::State& state) {
  // A private database: no ANALYZE, so planning starts from defaults.
  static Database* db = [] {
    auto* d = new Database();
    auto ok = [](const Result<QueryResult>& r) {
      if (!r.ok()) std::abort();
    };
    ok(d->Execute("CREATE TABLE f2 (id BIGINT NOT NULL, k BIGINT, "
                  "PRIMARY KEY (id)) FORMAT COLUMN"));
    ok(d->Execute("CREATE TABLE d2 (k BIGINT NOT NULL, t TEXT, "
                  "PRIMARY KEY (k)) FORMAT ROW"));
    std::string sql;
    for (int i = 0; i < 20000; ++i) {
      sql += (sql.empty() ? "INSERT INTO f2 VALUES " : ", ");
      sql += "(" + std::to_string(i) + ", " + std::to_string(i % 50) + ")";
      if (i % 500 == 499) {
        ok(d->Execute(sql));
        sql.clear();
      }
    }
    if (!sql.empty()) ok(d->Execute(sql));
    sql.clear();
    for (int i = 0; i < 50; ++i) {
      sql += (sql.empty() ? "INSERT INTO d2 VALUES " : ", ");
      sql += "(" + std::to_string(i) + ", 'x')";
    }
    ok(d->Execute(sql));
    return d;
  }();
  size_t rows = 0;
  for (auto _ : state) {
    auto r = db->Execute(
        "SELECT f2.id FROM f2 JOIN d2 ON f2.k = d2.k WHERE d2.t = 'x'");
    if (!r.ok()) std::abort();
    rows = r->rows.size();
  }
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_FeedbackReplan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oltap
