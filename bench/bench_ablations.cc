// Ablations for the design choices DESIGN.md calls out.
//
// A. Zone maps (in-memory storage indexes): zone-pruned vs. full packed
//    scan, on clustered (sorted) vs. uniform data. Expected: pruning wins
//    big on clustered data for selective predicates (skips ~all zones),
//    costs nothing on unprunable uniform data, and is irrelevant at high
//    selectivity.
// B. Shared-scan chunk size: the cache-reuse sweet spot. Too-small chunks
//    pay per-chunk dispatch per query; too-large chunks exceed cache and
//    forfeit the sharing benefit.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("ablations");

#include <algorithm>
#include <map>
#include <memory>

#include "common/rng.h"
#include "exec/shared_scan.h"
#include "storage/column_segment.h"
#include "storage/table.h"

namespace oltap {
namespace {

constexpr size_t kRows = 8 << 20;

const ColumnSegment& SegmentFor(bool sorted) {
  static std::map<bool, std::unique_ptr<ColumnSegment>>* cache =
      new std::map<bool, std::unique_ptr<ColumnSegment>>();
  auto it = cache->find(sorted);
  if (it == cache->end()) {
    Rng rng(9);
    std::vector<int64_t> values(kRows);
    for (auto& v : values) v = rng.UniformRange(0, 1 << 20);
    if (sorted) std::sort(values.begin(), values.end());
    // Force frame-of-reference so this ablation isolates the zone map
    // (sorted data would otherwise auto-select RLE, a different — and
    // separately ablated — mechanism).
    it = cache
             ->emplace(sorted, std::make_unique<ColumnSegment>(
                                   ColumnSegment::BuildInt64NoRle(values)))
             .first;
  }
  return *it->second;
}

// range(0): 1 = clustered data, 0 = uniform. range(1): selectivity in
// 1/1000 units for a one-sided predicate.
void BM_ScanFullKernel(benchmark::State& state) {
  const ColumnSegment& seg = SegmentFor(state.range(0) == 1);
  int64_t constant = (1 << 20) * state.range(1) / 1000;
  BitVector out;
  for (auto _ : state) {
    seg.ScanCompare(CompareOp::kLt, Value::Int64(constant), &out);
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.SetLabel(state.range(0) == 1 ? "clustered" : "uniform");
}

void BM_ScanZonePruned(benchmark::State& state) {
  const ColumnSegment& seg = SegmentFor(state.range(0) == 1);
  int64_t constant = (1 << 20) * state.range(1) / 1000;
  BitVector out;
  size_t pruned = 0;
  for (auto _ : state) {
    seg.ScanCompareZoned(CompareOp::kLt, Value::Int64(constant), &out,
                         &pruned);
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["zones_pruned"] = static_cast<double>(pruned);
  state.counters["zones_total"] =
      static_cast<double>(seg.zone_map().num_zones());
  state.SetLabel(state.range(0) == 1 ? "clustered" : "uniform");
}

// C. RLE vs. frame-of-reference on clustered data: the bits-for-chronons
//    trade [15]. RLE evaluates one predicate per run and fills output
//    word-at-a-time; FOR scans every code. Expected: RLE scans clustered
//    data an order of magnitude faster in a fraction of the memory.
struct RlePair {
  std::unique_ptr<ColumnSegment> rle;
  std::unique_ptr<ColumnSegment> packed;
};

const RlePair& RleSegments() {
  static RlePair* pair = [] {
    Rng rng(21);
    std::vector<int64_t> values;
    values.reserve(kRows);
    int64_t v = 0;
    while (values.size() < kRows) {
      v += rng.UniformRange(1, 3);
      size_t run = 16 + rng.Uniform(64);
      for (size_t i = 0; i < run && values.size() < kRows; ++i) {
        values.push_back(v);
      }
    }
    auto* p = new RlePair();
    p->rle = std::make_unique<ColumnSegment>(ColumnSegment::BuildInt64(values));
    p->packed = std::make_unique<ColumnSegment>(
        ColumnSegment::BuildInt64NoRle(values));
    if (p->rle->encoding() != ColumnSegment::Encoding::kRle) std::abort();
    return p;
  }();
  return *pair;
}

void BM_RleScan(benchmark::State& state) {
  const ColumnSegment& seg = *RleSegments().rle;
  BitVector out;
  for (auto _ : state) {
    seg.ScanCompare(CompareOp::kLt, Value::Int64(state.range(0)), &out);
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["bytes"] = static_cast<double>(seg.MemoryBytes());
}

void BM_PackedScanOnRleData(benchmark::State& state) {
  const ColumnSegment& seg = *RleSegments().packed;
  BitVector out;
  for (auto _ : state) {
    seg.ScanCompare(CompareOp::kLt, Value::Int64(state.range(0)), &out);
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["bytes"] = static_cast<double>(seg.MemoryBytes());
}

const MainFragment& SharedScanFragment() {
  static std::shared_ptr<const MainFragment>* frag = [] {
    Schema schema = SchemaBuilder()
                        .AddInt64("id", false)
                        .AddInt64("filter", false)
                        .AddInt64("value", false)
                        .SetKey({"id"})
                        .Build();
    auto* table = new Table("t", schema, TableFormat::kColumn);
    Rng rng(4);
    std::vector<Row> rows;
    rows.reserve(kRows / 4);
    for (size_t i = 0; i < kRows / 4; ++i) {
      rows.push_back(Row{Value::Int64(static_cast<int64_t>(i)),
                         Value::Int64(rng.UniformRange(0, 999)),
                         Value::Int64(rng.UniformRange(0, 100))});
    }
    if (!table->BulkLoadToMain(rows, 1).ok()) std::abort();
    return new std::shared_ptr<const MainFragment>(
        table->GetColumnSnapshot(1)->main);
  }();
  return **frag;
}

void BM_SharedScanChunkSize(benchmark::State& state) {
  const MainFragment& main = SharedScanFragment();
  size_t chunk_rows = static_cast<size_t>(state.range(0));
  Rng rng(6);
  std::vector<SimpleAggQuery> queries;
  for (int i = 0; i < 16; ++i) {
    SimpleAggQuery q;
    q.filter_col = 1;
    q.op = CompareOp::kLt;
    q.constant = rng.UniformRange(0, 999);
    q.agg_col = 2;
    queries.push_back(q);
  }
  for (auto _ : state) {
    auto results = ExecuteSharedOnce(main, queries, chunk_rows);
    benchmark::DoNotOptimize(results[0].sum);
  }
  state.SetItemsProcessed(state.iterations() * queries.size());
  state.counters["chunk_rows"] = static_cast<double>(chunk_rows);
}

BENCHMARK(BM_ScanFullKernel)
    ->Args({1, 1})
    ->Args({1, 100})
    ->Args({1, 900})
    ->Args({0, 1})
    ->Args({0, 100})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScanZonePruned)
    ->Args({1, 1})
    ->Args({1, 100})
    ->Args({1, 900})
    ->Args({0, 1})
    ->Args({0, 100})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RleScan)->Arg(100000)->Arg(250000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PackedScanOnRleData)->Arg(100000)->Arg(250000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SharedScanChunkSize)
    ->Arg(1 << 10)
    ->Arg(1 << 13)
    ->Arg(1 << 16)
    ->Arg(1 << 19)
    ->Arg(1 << 21)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace oltap
