// E8 — Workload management for mixed OLTP/OLAP (Psaroudakis et al. [32]).
//
// A fixed mixed offered load — short OLTP tasks (~50µs) arriving alongside
// long OLAP tasks (~5ms) — is pushed through the three scheduling policies.
// The reported counter is OLTP p95 latency, the quantity workload
// management exists to protect. Expected shape:
//   fifo             — OLTP p95 inflates to OLAP scale (queueing behind
//                      scans),
//   oltp-priority    — OLTP p95 drops sharply; OLAP completion unchanged,
//   reserved-workers — OLTP p95 lowest and most stable; OLAP loses the
//                      reserved capacity. Admission control bounds the
//                      damage of an OLAP flood.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("workload_mgmt");

#include <chrono>
#include <future>
#include <vector>

#include "sched/workload_manager.h"

namespace oltap {
namespace {

void BusyMicros(int64_t us) {
  auto end = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < end) {
  }
}

constexpr int kOltpTasks = 400;
constexpr int kOlapTasks = 40;
constexpr int64_t kOltpWorkUs = 50;
constexpr int64_t kOlapWorkUs = 5000;

void RunPolicy(benchmark::State& state, SchedulingPolicy policy,
               size_t olap_limit) {
  for (auto _ : state) {
    WorkloadManager::Options opts;
    opts.num_workers = 4;
    opts.policy = policy;
    opts.reserved_oltp_workers = 1;
    opts.olap_admission_limit = olap_limit;
    WorkloadManager wm(opts);
    std::vector<std::future<Status>> futures;
    futures.reserve(kOltpTasks + kOlapTasks);
    // Interleave: every 10 OLTP submissions, one OLAP burst.
    int olap_sent = 0;
    for (int i = 0; i < kOltpTasks; ++i) {
      futures.push_back(
          wm.Submit(QueryClass::kOltp, [] { BusyMicros(kOltpWorkUs); }));
      if (i % 10 == 0 && olap_sent < kOlapTasks) {
        ++olap_sent;
        futures.push_back(
            wm.Submit(QueryClass::kOlap, [] { BusyMicros(kOlapWorkUs); }));
      }
    }
    for (auto& f : futures) f.get();
    LatencySummary oltp = wm.StatsFor(QueryClass::kOltp);
    LatencySummary olap = wm.StatsFor(QueryClass::kOlap);
    state.counters["oltp_p95_us"] = static_cast<double>(oltp.p95_us);
    state.counters["oltp_p99_us"] = static_cast<double>(oltp.p99_us);
    state.counters["olap_mean_us"] = olap.mean_us;
    state.counters["olap_rejected"] = static_cast<double>(wm.rejected_olap());
  }
  state.SetLabel(SchedulingPolicyToString(policy));
}

void BM_Fifo(benchmark::State& state) {
  RunPolicy(state, SchedulingPolicy::kFifo, 0);
}
void BM_OltpPriority(benchmark::State& state) {
  RunPolicy(state, SchedulingPolicy::kOltpPriority, 0);
}
void BM_ReservedWorkers(benchmark::State& state) {
  RunPolicy(state, SchedulingPolicy::kReservedWorkers, 0);
}
void BM_FifoWithAdmissionControl(benchmark::State& state) {
  RunPolicy(state, SchedulingPolicy::kFifo, 8);
}

BENCHMARK(BM_Fifo)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_OltpPriority)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ReservedWorkers)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_FifoWithAdmissionControl)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace oltap
