#ifndef OLTAP_BENCH_BENCH_REPORTER_H_
#define OLTAP_BENCH_BENCH_REPORTER_H_

#include <cstdint>
#include <string>

namespace oltap {
namespace bench {

// Writes BENCH_<name>.json into the working directory when the benchmark
// process exits: benchmark name, free-form config entries, free-form
// metrics, and a full snapshot of the global obs metrics registry. The
// google-benchmark binaries link benchmark_main, so there is no custom
// main() to hook — the reporter is a process-wide singleton flushed from
// an atexit handler instead.
//
// Usage (file scope, once per bench binary):
//   OLTAP_BENCH_REPORTER("delta_merge");
// and optionally, anywhere:
//   bench::Reporter::Get()->Config("rows", 1e6);
//   bench::Reporter::Get()->Metric("merge_throughput_rows_s", r);
class Reporter {
 public:
  static Reporter* Get();

  // Names the output file BENCH_<name>.json. Last call wins.
  void SetName(const std::string& name);

  void Config(const std::string& key, const std::string& value);
  void Config(const std::string& key, double value);
  void Metric(const std::string& key, double value);

  // Writes the JSON file now (also runs at exit; idempotent per content).
  void Write();

 private:
  Reporter() = default;
};

// Registers the report at static-initialization time so merely linking the
// translation unit is enough; the atexit flush does the rest.
#define OLTAP_BENCH_REPORTER(name)                                      \
  namespace {                                                           \
  const bool oltap_bench_reporter_registered = [] {                     \
    ::oltap::bench::Reporter::Get()->SetName(name);                     \
    return true;                                                        \
  }();                                                                  \
  }

}  // namespace bench
}  // namespace oltap

#endif  // OLTAP_BENCH_BENCH_REPORTER_H_
