// E2 — Dictionary compression + SIMD-style scans (Willhalm et al. [42],
// HANA [35], DB2 BLU [34]).
//
// Compares three ways to evaluate `col < c` over 8M values:
//   unpacked  — scalar loop over raw int64 (no compression),
//   scalar    — value-at-a-time over bit-packed codes (compression without
//               data parallelism),
//   swar      — the word-parallel packed kernel (this library's portable
//               SIMD-scan equivalent; DESIGN.md §5).
// Expected shape: swar >> unpacked > scalar-packed, with the swar advantage
// growing as code width shrinks (more codes per word). Also measures the
// order-preserving dictionary rewrite for string predicates.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("simd_scan");

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/scan_kernels.h"
#include "storage/bitpack.h"
#include "storage/column_segment.h"

namespace oltap {
namespace {

constexpr size_t kN = 8 << 20;

struct PackedData {
  std::vector<uint32_t> codes;
  std::vector<int64_t> raw;
  PackedArray packed;
};

const PackedData& DataForBits(int bits) {
  static std::map<int, PackedData>* cache = new std::map<int, PackedData>();
  auto it = cache->find(bits);
  if (it == cache->end()) {
    PackedData d;
    uint32_t mask = (uint32_t{1} << bits) - 1;
    Rng rng(bits);
    d.codes.resize(kN);
    d.raw.resize(kN);
    for (size_t i = 0; i < kN; ++i) {
      d.codes[i] = static_cast<uint32_t>(rng.Next()) & mask;
      d.raw[i] = d.codes[i];
    }
    d.packed = PackedArray::Pack(d.codes, bits);
    it = cache->emplace(bits, std::move(d)).first;
  }
  return it->second;
}

// Constant at ~50% selectivity for the given width.
uint32_t MidConstant(int bits) { return (uint32_t{1} << bits) / 2; }

void BM_ScanUnpackedInt64(benchmark::State& state) {
  int bits = static_cast<int>(state.range(0));
  const PackedData& d = DataForBits(bits);
  BitVector out;
  for (auto _ : state) {
    kernels::CompareInt64(d.raw.data(), kN, CompareOp::kLt,
                          MidConstant(bits), &out);
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * kN);
  state.SetBytesProcessed(state.iterations() * kN * sizeof(int64_t));
}

void BM_ScanPackedScalar(benchmark::State& state) {
  int bits = static_cast<int>(state.range(0));
  const PackedData& d = DataForBits(bits);
  BitVector out;
  for (auto _ : state) {
    d.packed.ScanScalar(CompareOp::kLt, MidConstant(bits), &out);
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * kN);
  state.SetBytesProcessed(state.iterations() * d.packed.MemoryBytes());
}

void BM_ScanPackedSwar(benchmark::State& state) {
  int bits = static_cast<int>(state.range(0));
  const PackedData& d = DataForBits(bits);
  BitVector out;
  for (auto _ : state) {
    d.packed.Scan(CompareOp::kLt, MidConstant(bits), &out);
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * kN);
  state.SetBytesProcessed(state.iterations() * d.packed.MemoryBytes());
}

// Selectivity sweep at fixed width: SWAR cost is selectivity-sensitive only
// in the output-bit materialization.
void BM_ScanSwarSelectivity(benchmark::State& state) {
  constexpr int kBits = 10;
  const PackedData& d = DataForBits(kBits);
  uint32_t constant = static_cast<uint32_t>(
      (uint64_t{1} << kBits) * state.range(0) / 100);
  BitVector out;
  for (auto _ : state) {
    d.packed.Scan(CompareOp::kLt, constant, &out);
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * kN);
}

// String predicate via order-preserving dictionary: the range rewrite turns
// a string comparison into a packed integer scan.
void BM_StringPredicateDictionary(benchmark::State& state) {
  static const ColumnSegment* seg = [] {
    Rng rng(3);
    std::vector<std::string> values(kN / 8);
    for (auto& v : values) v = rng.AlphaString(4, 12);
    return new ColumnSegment(ColumnSegment::BuildString(values));
  }();
  BitVector out;
  for (auto _ : state) {
    seg->ScanCompare(CompareOp::kLt, Value::String("m"), &out);
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * (kN / 8));
}

// Baseline: the same predicate over materialized std::string values.
void BM_StringPredicateMaterialized(benchmark::State& state) {
  static const std::vector<std::string>* values = [] {
    Rng rng(3);
    auto* v = new std::vector<std::string>(kN / 8);
    for (auto& s : *v) s = rng.AlphaString(4, 12);
    return v;
  }();
  BitVector out(values->size());
  for (auto _ : state) {
    out.ClearAll();
    for (size_t i = 0; i < values->size(); ++i) {
      if ((*values)[i] < "m") out.Set(i);
    }
    benchmark::DoNotOptimize(out.CountSet());
  }
  state.SetItemsProcessed(state.iterations() * (kN / 8));
}

BENCHMARK(BM_ScanUnpackedInt64)->Arg(4)->Arg(10)->Arg(17)->Arg(27);
BENCHMARK(BM_ScanPackedScalar)->Arg(4)->Arg(10)->Arg(17)->Arg(27);
BENCHMARK(BM_ScanPackedSwar)->Arg(4)->Arg(10)->Arg(17)->Arg(27);
BENCHMARK(BM_ScanSwarSelectivity)->Arg(1)->Arg(10)->Arg(50)->Arg(99);
BENCHMARK(BM_StringPredicateDictionary);
BENCHMARK(BM_StringPredicateMaterialized);

}  // namespace
}  // namespace oltap
