// E5 — Multi-versioning vs. two-phase locking under mixed read/write load
// (DB2 BLU's "multiversioning enables standard isolation with minimal
// locking" [34]; HyPer's snapshot idea [19]).
//
// Workload: N reader threads each scan-aggregate 64 random keys while M
// writer threads update random keys.
//   MVCC/SI: readers never block — reader throughput is nearly flat as
//            writers are added.
//   2PL:     readers take S locks, writers X locks — reader throughput
//            collapses as write contention grows, plus wait-die aborts.

#include <benchmark/benchmark.h>

#include "bench_reporter.h"

OLTAP_BENCH_REPORTER("mvcc_vs_locking");

#include <atomic>
#include <memory>
#include <thread>

#include "common/rng.h"
#include "storage/catalog.h"
#include "txn/lock_manager.h"
#include "txn/transaction_manager.h"

namespace oltap {
namespace {

constexpr int64_t kKeys = 10000;
constexpr int kReadsPerTxn = 64;

Schema BenchSchema() {
  return SchemaBuilder()
      .AddInt64("id", false)
      .AddInt64("v", false)
      .SetKey({"id"})
      .Build();
}

std::string KeyOf(int64_t id) {
  static const Schema schema = BenchSchema();
  return EncodeKey(schema, Row{Value::Int64(id), Value::Int64(0)});
}

struct MvccWorld {
  Catalog catalog;
  std::unique_ptr<TransactionManager> tm;
  Table* table;

  MvccWorld() {
    if (!catalog.CreateTable("t", BenchSchema(), TableFormat::kRow).ok()) {
      std::abort();
    }
    tm = std::make_unique<TransactionManager>(&catalog);
    table = catalog.GetTable("t");
    auto txn = tm->Begin();
    for (int64_t i = 0; i < kKeys; ++i) {
      if (!txn->Insert(table, Row{Value::Int64(i), Value::Int64(1)}).ok()) {
        std::abort();
      }
    }
    if (!tm->Commit(txn.get()).ok()) std::abort();
  }
};

// Reader transactions per second with `writers` background writer threads.
void BM_MvccReadersUnderWriters(benchmark::State& state) {
  int num_writers = static_cast<int>(state.range(0));
  MvccWorld world;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < num_writers; ++w) {
    writers.emplace_back([&world, &stop, w] {
      Rng rng(100 + w);
      while (!stop.load(std::memory_order_acquire)) {
        auto txn = world.tm->Begin();
        int64_t id = rng.UniformRange(0, kKeys - 1);
        Row row;
        if (!txn->Get(world.table, KeyOf(id), &row)) continue;
        row[1] = Value::Int64(row[1].AsInt64() + 1);
        if (!txn->Update(world.table, row).ok()) continue;
        world.tm->Commit(txn.get()).ok();
      }
    });
  }
  Rng rng(7);
  for (auto _ : state) {
    auto txn = world.tm->Begin();
    int64_t sum = 0;
    for (int i = 0; i < kReadsPerTxn; ++i) {
      Row row;
      if (txn->Get(world.table, KeyOf(rng.UniformRange(0, kKeys - 1)),
                   &row)) {
        sum += row[1].AsInt64();
      }
    }
    world.tm->Commit(txn.get()).ok();
    benchmark::DoNotOptimize(sum);
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  state.SetItemsProcessed(state.iterations());
  state.counters["writers"] = num_writers;
}

struct TwoPLWorld {
  Catalog catalog;
  Table* table;
  LockManager lm;
  std::atomic<uint64_t> next_txn{1};
  std::atomic<Timestamp> ts{10};

  TwoPLWorld() {
    if (!catalog.CreateTable("t", BenchSchema(), TableFormat::kRow).ok()) {
      std::abort();
    }
    table = catalog.GetTable("t");
    for (int64_t i = 0; i < kKeys; ++i) {
      if (!table->InsertCommitted(Row{Value::Int64(i), Value::Int64(1)}, 1)
               .ok()) {
        std::abort();
      }
    }
  }
};

void BM_TwoPLReadersUnderWriters(benchmark::State& state) {
  int num_writers = static_cast<int>(state.range(0));
  TwoPLWorld world;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < num_writers; ++w) {
    writers.emplace_back([&world, &stop, w] {
      Rng rng(200 + w);
      TwoPLSession session(&world.lm);
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t txn = world.next_txn.fetch_add(1);
        int64_t id = rng.UniformRange(0, kKeys - 1);
        session
            .Run(txn, {}, {KeyOf(id)},
                 [&] {
                   Row row;
                   Timestamp now =
                       world.ts.fetch_add(1, std::memory_order_acq_rel);
                   if (!world.table->Lookup(KeyOf(id), now, &row)) {
                     return Status::OK();
                   }
                   row[1] = Value::Int64(row[1].AsInt64() + 1);
                   return world.table->UpdateCommitted(KeyOf(id), row,
                                                       now + 1);
                 })
            .ok();
      }
    });
  }
  Rng rng(8);
  TwoPLSession session(&world.lm);
  uint64_t aborted = 0;
  for (auto _ : state) {
    // Conservative 2PL read transaction: S-lock all keys up front.
    std::vector<std::string> read_keys;
    for (int i = 0; i < kReadsPerTxn; ++i) {
      read_keys.push_back(KeyOf(rng.UniformRange(0, kKeys - 1)));
    }
    uint64_t txn = world.next_txn.fetch_add(1);
    Status st = session.Run(txn, read_keys, {}, [&] {
      int64_t sum = 0;
      Timestamp now = world.ts.load(std::memory_order_acquire);
      for (const std::string& k : read_keys) {
        Row row;
        if (world.table->Lookup(k, now, &row)) sum += row[1].AsInt64();
      }
      benchmark::DoNotOptimize(sum);
      return Status::OK();
    });
    if (!st.ok()) ++aborted;
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  state.SetItemsProcessed(state.iterations());
  state.counters["writers"] = num_writers;
  state.counters["reader_aborts"] = static_cast<double>(aborted);
  state.counters["lock_deaths"] = static_cast<double>(world.lm.num_deaths());
}

BENCHMARK(BM_MvccReadersUnderWriters)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TwoPLReadersUnderWriters)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace oltap
